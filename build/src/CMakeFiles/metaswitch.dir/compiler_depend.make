# Empty compiler generated dependencies file for metaswitch.
# This may be replaced when dependencies are built.
