file(REMOVE_RECURSE
  "libmetaswitch.a"
)
