
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/workload.cpp" "src/CMakeFiles/metaswitch.dir/harness/workload.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/harness/workload.cpp.o.d"
  "/root/repo/src/net/endpoint.cpp" "src/CMakeFiles/metaswitch.dir/net/endpoint.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/net/endpoint.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/metaswitch.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/net/network.cpp.o.d"
  "/root/repo/src/net/stats.cpp" "src/CMakeFiles/metaswitch.dir/net/stats.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/net/stats.cpp.o.d"
  "/root/repo/src/proto/amoeba_layer.cpp" "src/CMakeFiles/metaswitch.dir/proto/amoeba_layer.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/proto/amoeba_layer.cpp.o.d"
  "/root/repo/src/proto/causal_layer.cpp" "src/CMakeFiles/metaswitch.dir/proto/causal_layer.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/proto/causal_layer.cpp.o.d"
  "/root/repo/src/proto/confidentiality_layer.cpp" "src/CMakeFiles/metaswitch.dir/proto/confidentiality_layer.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/proto/confidentiality_layer.cpp.o.d"
  "/root/repo/src/proto/fifo_layer.cpp" "src/CMakeFiles/metaswitch.dir/proto/fifo_layer.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/proto/fifo_layer.cpp.o.d"
  "/root/repo/src/proto/integrity_layer.cpp" "src/CMakeFiles/metaswitch.dir/proto/integrity_layer.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/proto/integrity_layer.cpp.o.d"
  "/root/repo/src/proto/link_layers.cpp" "src/CMakeFiles/metaswitch.dir/proto/link_layers.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/proto/link_layers.cpp.o.d"
  "/root/repo/src/proto/noreplay_layer.cpp" "src/CMakeFiles/metaswitch.dir/proto/noreplay_layer.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/proto/noreplay_layer.cpp.o.d"
  "/root/repo/src/proto/priority_layer.cpp" "src/CMakeFiles/metaswitch.dir/proto/priority_layer.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/proto/priority_layer.cpp.o.d"
  "/root/repo/src/proto/reliable_layer.cpp" "src/CMakeFiles/metaswitch.dir/proto/reliable_layer.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/proto/reliable_layer.cpp.o.d"
  "/root/repo/src/proto/sequencer_layer.cpp" "src/CMakeFiles/metaswitch.dir/proto/sequencer_layer.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/proto/sequencer_layer.cpp.o.d"
  "/root/repo/src/proto/token_layer.cpp" "src/CMakeFiles/metaswitch.dir/proto/token_layer.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/proto/token_layer.cpp.o.d"
  "/root/repo/src/proto/vsync_layer.cpp" "src/CMakeFiles/metaswitch.dir/proto/vsync_layer.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/proto/vsync_layer.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/metaswitch.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/sim/scheduler.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/CMakeFiles/metaswitch.dir/sim/simulation.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/sim/simulation.cpp.o.d"
  "/root/repo/src/stack/capture.cpp" "src/CMakeFiles/metaswitch.dir/stack/capture.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/stack/capture.cpp.o.d"
  "/root/repo/src/stack/group.cpp" "src/CMakeFiles/metaswitch.dir/stack/group.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/stack/group.cpp.o.d"
  "/root/repo/src/stack/layer.cpp" "src/CMakeFiles/metaswitch.dir/stack/layer.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/stack/layer.cpp.o.d"
  "/root/repo/src/stack/message.cpp" "src/CMakeFiles/metaswitch.dir/stack/message.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/stack/message.cpp.o.d"
  "/root/repo/src/stack/stack.cpp" "src/CMakeFiles/metaswitch.dir/stack/stack.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/stack/stack.cpp.o.d"
  "/root/repo/src/switch/hybrid.cpp" "src/CMakeFiles/metaswitch.dir/switch/hybrid.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/switch/hybrid.cpp.o.d"
  "/root/repo/src/switch/multiplex_layer.cpp" "src/CMakeFiles/metaswitch.dir/switch/multiplex_layer.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/switch/multiplex_layer.cpp.o.d"
  "/root/repo/src/switch/oracle.cpp" "src/CMakeFiles/metaswitch.dir/switch/oracle.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/switch/oracle.cpp.o.d"
  "/root/repo/src/switch/switch_layer.cpp" "src/CMakeFiles/metaswitch.dir/switch/switch_layer.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/switch/switch_layer.cpp.o.d"
  "/root/repo/src/switch/vsync_switch.cpp" "src/CMakeFiles/metaswitch.dir/switch/vsync_switch.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/switch/vsync_switch.cpp.o.d"
  "/root/repo/src/trace/generators.cpp" "src/CMakeFiles/metaswitch.dir/trace/generators.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/trace/generators.cpp.o.d"
  "/root/repo/src/trace/meta.cpp" "src/CMakeFiles/metaswitch.dir/trace/meta.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/trace/meta.cpp.o.d"
  "/root/repo/src/trace/properties.cpp" "src/CMakeFiles/metaswitch.dir/trace/properties.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/trace/properties.cpp.o.d"
  "/root/repo/src/trace/relations.cpp" "src/CMakeFiles/metaswitch.dir/trace/relations.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/trace/relations.cpp.o.d"
  "/root/repo/src/trace/sp_model.cpp" "src/CMakeFiles/metaswitch.dir/trace/sp_model.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/trace/sp_model.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/metaswitch.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/trace/trace.cpp.o.d"
  "/root/repo/src/util/bytes.cpp" "src/CMakeFiles/metaswitch.dir/util/bytes.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/util/bytes.cpp.o.d"
  "/root/repo/src/util/digest.cpp" "src/CMakeFiles/metaswitch.dir/util/digest.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/util/digest.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/metaswitch.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/metaswitch.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/metaswitch.dir/util/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
