# Empty compiler generated dependencies file for bench_e2e_preservation.
# This may be replaced when dependencies are built.
