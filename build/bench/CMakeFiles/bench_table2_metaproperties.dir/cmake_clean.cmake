file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_metaproperties.dir/bench_table2_metaproperties.cpp.o"
  "CMakeFiles/bench_table2_metaproperties.dir/bench_table2_metaproperties.cpp.o.d"
  "bench_table2_metaproperties"
  "bench_table2_metaproperties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_metaproperties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
