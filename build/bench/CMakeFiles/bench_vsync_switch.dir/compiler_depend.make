# Empty compiler generated dependencies file for bench_vsync_switch.
# This may be replaced when dependencies are built.
