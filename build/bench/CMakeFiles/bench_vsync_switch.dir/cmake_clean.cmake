file(REMOVE_RECURSE
  "CMakeFiles/bench_vsync_switch.dir/bench_vsync_switch.cpp.o"
  "CMakeFiles/bench_vsync_switch.dir/bench_vsync_switch.cpp.o.d"
  "bench_vsync_switch"
  "bench_vsync_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vsync_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
