file(REMOVE_RECURSE
  "CMakeFiles/bench_oracle_ablation.dir/bench_oracle_ablation.cpp.o"
  "CMakeFiles/bench_oracle_ablation.dir/bench_oracle_ablation.cpp.o.d"
  "bench_oracle_ablation"
  "bench_oracle_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oracle_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
