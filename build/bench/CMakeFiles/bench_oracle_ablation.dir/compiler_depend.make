# Empty compiler generated dependencies file for bench_oracle_ablation.
# This may be replaced when dependencies are built.
