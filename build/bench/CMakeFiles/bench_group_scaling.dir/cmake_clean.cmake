file(REMOVE_RECURSE
  "CMakeFiles/bench_group_scaling.dir/bench_group_scaling.cpp.o"
  "CMakeFiles/bench_group_scaling.dir/bench_group_scaling.cpp.o.d"
  "bench_group_scaling"
  "bench_group_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_group_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
