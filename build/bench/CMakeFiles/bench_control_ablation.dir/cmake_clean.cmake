file(REMOVE_RECURSE
  "CMakeFiles/bench_control_ablation.dir/bench_control_ablation.cpp.o"
  "CMakeFiles/bench_control_ablation.dir/bench_control_ablation.cpp.o.d"
  "bench_control_ablation"
  "bench_control_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_control_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
