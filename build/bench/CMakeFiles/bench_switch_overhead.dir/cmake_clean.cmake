file(REMOVE_RECURSE
  "CMakeFiles/bench_switch_overhead.dir/bench_switch_overhead.cpp.o"
  "CMakeFiles/bench_switch_overhead.dir/bench_switch_overhead.cpp.o.d"
  "bench_switch_overhead"
  "bench_switch_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_switch_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
