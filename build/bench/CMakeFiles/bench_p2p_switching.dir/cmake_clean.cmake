file(REMOVE_RECURSE
  "CMakeFiles/bench_p2p_switching.dir/bench_p2p_switching.cpp.o"
  "CMakeFiles/bench_p2p_switching.dir/bench_p2p_switching.cpp.o.d"
  "bench_p2p_switching"
  "bench_p2p_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p2p_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
