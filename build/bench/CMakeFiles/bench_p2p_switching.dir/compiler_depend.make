# Empty compiler generated dependencies file for bench_p2p_switching.
# This may be replaced when dependencies are built.
