file(REMOVE_RECURSE
  "CMakeFiles/test_priority_amoeba.dir/test_priority_amoeba.cpp.o"
  "CMakeFiles/test_priority_amoeba.dir/test_priority_amoeba.cpp.o.d"
  "test_priority_amoeba"
  "test_priority_amoeba.pdb"
  "test_priority_amoeba[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_priority_amoeba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
