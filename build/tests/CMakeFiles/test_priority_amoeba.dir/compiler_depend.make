# Empty compiler generated dependencies file for test_priority_amoeba.
# This may be replaced when dependencies are built.
