file(REMOVE_RECURSE
  "CMakeFiles/test_switch_property_matrix.dir/test_switch_property_matrix.cpp.o"
  "CMakeFiles/test_switch_property_matrix.dir/test_switch_property_matrix.cpp.o.d"
  "test_switch_property_matrix"
  "test_switch_property_matrix.pdb"
  "test_switch_property_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_switch_property_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
