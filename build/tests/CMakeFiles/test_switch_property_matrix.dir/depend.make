# Empty dependencies file for test_switch_property_matrix.
# This may be replaced when dependencies are built.
