file(REMOVE_RECURSE
  "CMakeFiles/test_security_layers.dir/test_security_layers.cpp.o"
  "CMakeFiles/test_security_layers.dir/test_security_layers.cpp.o.d"
  "test_security_layers"
  "test_security_layers.pdb"
  "test_security_layers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_security_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
