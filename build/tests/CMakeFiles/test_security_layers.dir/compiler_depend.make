# Empty compiler generated dependencies file for test_security_layers.
# This may be replaced when dependencies are built.
