file(REMOVE_RECURSE
  "CMakeFiles/test_layer_chain.dir/test_layer_chain.cpp.o"
  "CMakeFiles/test_layer_chain.dir/test_layer_chain.cpp.o.d"
  "test_layer_chain"
  "test_layer_chain.pdb"
  "test_layer_chain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layer_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
