# Empty dependencies file for test_layer_chain.
# This may be replaced when dependencies are built.
