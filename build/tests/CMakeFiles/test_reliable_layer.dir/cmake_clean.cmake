file(REMOVE_RECURSE
  "CMakeFiles/test_reliable_layer.dir/test_reliable_layer.cpp.o"
  "CMakeFiles/test_reliable_layer.dir/test_reliable_layer.cpp.o.d"
  "test_reliable_layer"
  "test_reliable_layer.pdb"
  "test_reliable_layer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reliable_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
