# Empty dependencies file for test_switch_stress.
# This may be replaced when dependencies are built.
