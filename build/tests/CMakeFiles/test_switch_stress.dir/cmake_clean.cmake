file(REMOVE_RECURSE
  "CMakeFiles/test_switch_stress.dir/test_switch_stress.cpp.o"
  "CMakeFiles/test_switch_stress.dir/test_switch_stress.cpp.o.d"
  "test_switch_stress"
  "test_switch_stress.pdb"
  "test_switch_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_switch_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
