file(REMOVE_RECURSE
  "CMakeFiles/test_total_order_protocols.dir/test_total_order_protocols.cpp.o"
  "CMakeFiles/test_total_order_protocols.dir/test_total_order_protocols.cpp.o.d"
  "test_total_order_protocols"
  "test_total_order_protocols.pdb"
  "test_total_order_protocols[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_total_order_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
