# Empty compiler generated dependencies file for test_total_order_protocols.
# This may be replaced when dependencies are built.
