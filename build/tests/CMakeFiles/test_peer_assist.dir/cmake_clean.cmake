file(REMOVE_RECURSE
  "CMakeFiles/test_peer_assist.dir/test_peer_assist.cpp.o"
  "CMakeFiles/test_peer_assist.dir/test_peer_assist.cpp.o.d"
  "test_peer_assist"
  "test_peer_assist.pdb"
  "test_peer_assist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_peer_assist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
