# Empty compiler generated dependencies file for test_peer_assist.
# This may be replaced when dependencies are built.
