file(REMOVE_RECURSE
  "CMakeFiles/test_token_internals.dir/test_token_internals.cpp.o"
  "CMakeFiles/test_token_internals.dir/test_token_internals.cpp.o.d"
  "test_token_internals"
  "test_token_internals.pdb"
  "test_token_internals[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_token_internals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
