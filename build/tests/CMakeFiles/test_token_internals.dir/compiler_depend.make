# Empty compiler generated dependencies file for test_token_internals.
# This may be replaced when dependencies are built.
