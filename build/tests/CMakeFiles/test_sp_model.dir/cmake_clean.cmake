file(REMOVE_RECURSE
  "CMakeFiles/test_sp_model.dir/test_sp_model.cpp.o"
  "CMakeFiles/test_sp_model.dir/test_sp_model.cpp.o.d"
  "test_sp_model"
  "test_sp_model.pdb"
  "test_sp_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
