# Empty dependencies file for test_sp_model.
# This may be replaced when dependencies are built.
