# Empty dependencies file for test_switch_edge_cases.
# This may be replaced when dependencies are built.
