file(REMOVE_RECURSE
  "CMakeFiles/test_switch_edge_cases.dir/test_switch_edge_cases.cpp.o"
  "CMakeFiles/test_switch_edge_cases.dir/test_switch_edge_cases.cpp.o.d"
  "test_switch_edge_cases"
  "test_switch_edge_cases.pdb"
  "test_switch_edge_cases[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_switch_edge_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
