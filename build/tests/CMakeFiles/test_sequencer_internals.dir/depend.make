# Empty dependencies file for test_sequencer_internals.
# This may be replaced when dependencies are built.
