file(REMOVE_RECURSE
  "CMakeFiles/test_sequencer_internals.dir/test_sequencer_internals.cpp.o"
  "CMakeFiles/test_sequencer_internals.dir/test_sequencer_internals.cpp.o.d"
  "test_sequencer_internals"
  "test_sequencer_internals.pdb"
  "test_sequencer_internals[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sequencer_internals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
