file(REMOVE_RECURSE
  "CMakeFiles/test_vsync_switch.dir/test_vsync_switch.cpp.o"
  "CMakeFiles/test_vsync_switch.dir/test_vsync_switch.cpp.o.d"
  "test_vsync_switch"
  "test_vsync_switch.pdb"
  "test_vsync_switch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vsync_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
