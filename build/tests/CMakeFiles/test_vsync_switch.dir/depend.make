# Empty dependencies file for test_vsync_switch.
# This may be replaced when dependencies are built.
