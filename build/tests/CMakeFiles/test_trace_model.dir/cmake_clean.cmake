file(REMOVE_RECURSE
  "CMakeFiles/test_trace_model.dir/test_trace_model.cpp.o"
  "CMakeFiles/test_trace_model.dir/test_trace_model.cpp.o.d"
  "test_trace_model"
  "test_trace_model.pdb"
  "test_trace_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
