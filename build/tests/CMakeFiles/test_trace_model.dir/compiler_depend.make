# Empty compiler generated dependencies file for test_trace_model.
# This may be replaced when dependencies are built.
