file(REMOVE_RECURSE
  "CMakeFiles/test_relations.dir/test_relations.cpp.o"
  "CMakeFiles/test_relations.dir/test_relations.cpp.o.d"
  "test_relations"
  "test_relations.pdb"
  "test_relations[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
