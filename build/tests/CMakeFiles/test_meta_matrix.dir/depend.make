# Empty dependencies file for test_meta_matrix.
# This may be replaced when dependencies are built.
