file(REMOVE_RECURSE
  "CMakeFiles/test_meta_matrix.dir/test_meta_matrix.cpp.o"
  "CMakeFiles/test_meta_matrix.dir/test_meta_matrix.cpp.o.d"
  "test_meta_matrix"
  "test_meta_matrix.pdb"
  "test_meta_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_meta_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
