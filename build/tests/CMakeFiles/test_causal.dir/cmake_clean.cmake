file(REMOVE_RECURSE
  "CMakeFiles/test_causal.dir/test_causal.cpp.o"
  "CMakeFiles/test_causal.dir/test_causal.cpp.o.d"
  "test_causal"
  "test_causal.pdb"
  "test_causal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_causal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
