# Empty compiler generated dependencies file for test_switch_protocol.
# This may be replaced when dependencies are built.
