file(REMOVE_RECURSE
  "CMakeFiles/test_switch_protocol.dir/test_switch_protocol.cpp.o"
  "CMakeFiles/test_switch_protocol.dir/test_switch_protocol.cpp.o.d"
  "test_switch_protocol"
  "test_switch_protocol.pdb"
  "test_switch_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_switch_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
