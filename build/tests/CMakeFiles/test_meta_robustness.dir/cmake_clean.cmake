file(REMOVE_RECURSE
  "CMakeFiles/test_meta_robustness.dir/test_meta_robustness.cpp.o"
  "CMakeFiles/test_meta_robustness.dir/test_meta_robustness.cpp.o.d"
  "test_meta_robustness"
  "test_meta_robustness.pdb"
  "test_meta_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_meta_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
