file(REMOVE_RECURSE
  "CMakeFiles/test_link_layers.dir/test_link_layers.cpp.o"
  "CMakeFiles/test_link_layers.dir/test_link_layers.cpp.o.d"
  "test_link_layers"
  "test_link_layers.pdb"
  "test_link_layers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
