file(REMOVE_RECURSE
  "CMakeFiles/test_vsync_layer.dir/test_vsync_layer.cpp.o"
  "CMakeFiles/test_vsync_layer.dir/test_vsync_layer.cpp.o.d"
  "test_vsync_layer"
  "test_vsync_layer.pdb"
  "test_vsync_layer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vsync_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
