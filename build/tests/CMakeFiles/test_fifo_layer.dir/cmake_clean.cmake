file(REMOVE_RECURSE
  "CMakeFiles/test_fifo_layer.dir/test_fifo_layer.cpp.o"
  "CMakeFiles/test_fifo_layer.dir/test_fifo_layer.cpp.o.d"
  "test_fifo_layer"
  "test_fifo_layer.pdb"
  "test_fifo_layer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fifo_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
