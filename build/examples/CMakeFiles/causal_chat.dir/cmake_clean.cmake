file(REMOVE_RECURSE
  "CMakeFiles/causal_chat.dir/causal_chat.cpp.o"
  "CMakeFiles/causal_chat.dir/causal_chat.cpp.o.d"
  "causal_chat"
  "causal_chat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causal_chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
