# Empty compiler generated dependencies file for online_upgrade.
# This may be replaced when dependencies are built.
