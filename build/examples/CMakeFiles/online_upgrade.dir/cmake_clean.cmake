file(REMOVE_RECURSE
  "CMakeFiles/online_upgrade.dir/online_upgrade.cpp.o"
  "CMakeFiles/online_upgrade.dir/online_upgrade.cpp.o.d"
  "online_upgrade"
  "online_upgrade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
