file(REMOVE_RECURSE
  "CMakeFiles/security_escalation.dir/security_escalation.cpp.o"
  "CMakeFiles/security_escalation.dir/security_escalation.cpp.o.d"
  "security_escalation"
  "security_escalation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_escalation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
