# Empty dependencies file for security_escalation.
# This may be replaced when dependencies are built.
