# Empty compiler generated dependencies file for adaptive_total_order.
# This may be replaced when dependencies are built.
