file(REMOVE_RECURSE
  "CMakeFiles/adaptive_total_order.dir/adaptive_total_order.cpp.o"
  "CMakeFiles/adaptive_total_order.dir/adaptive_total_order.cpp.o.d"
  "adaptive_total_order"
  "adaptive_total_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_total_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
