// net_loop: the protocol stacks from the simulator, running over real UDP.
//
// Builds a reliable-FIFO group whose members are real UDP sockets on
// 127.0.0.1, driven by a sharded epoll executor — the exact same layer
// code the deterministic simulator runs, with only the medium swapped
// underneath the Endpoint. Each member multicasts a stream of numbered
// messages; the loop waits until every copy is delivered everywhere (the
// ReliableLayer's NACK machinery recovers any datagram the kernel
// dropped), then prints per-member delivery counts, transport stats, and a
// final observability summary (loop lag, end-to-end latency percentiles).
//
//   ./net_loop [--nodes N] [--msgs M] [--shards S] [--loopback]
//              [--stats-interval MS] [--stats-out FILE] [--trace-out FILE]
//
// --loopback swaps the UDP sockets for the in-process threaded backend
// (useful where the sandbox forbids sockets; also what CI's TSan job runs).
// --stats-interval renders the live single-line dashboard on stderr every
// MS milliseconds; --stats-out additionally writes the JSONL time-series
// (one line per shard per tick). --trace-out dumps a Chrome/Perfetto trace
// with the per-shard flight view at exit.
//
// Exit codes: 0 = full delivery; 1 = delivery shortfall; 2 = the UDP
// transport's drop accounting disagrees with what was delivered
// (delivered + dropped > sent would mean copies appeared from nowhere).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "rt/loopback_transport.hpp"
#include "rt/rt_group.hpp"
#include "rt/stats/publisher.hpp"
#include "rt/stats/stats_plane.hpp"
#include "rt/udp_transport.hpp"
#include "switch/hybrid.hpp"
#include "telemetry/export.hpp"
#include "telemetry/hub.hpp"

using namespace msw;

int main(int argc, char** argv) {
  std::size_t nodes = 4;
  std::size_t msgs = 200;
  std::size_t shards = 2;
  bool loopback = false;
  long stats_interval_ms = 0;
  std::string stats_out;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = std::stoul(argv[++i]);
    } else if (std::strcmp(argv[i], "--msgs") == 0 && i + 1 < argc) {
      msgs = std::stoul(argv[++i]);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::stoul(argv[++i]);
    } else if (std::strcmp(argv[i], "--loopback") == 0) {
      loopback = true;
    } else if (std::strcmp(argv[i], "--stats-interval") == 0 && i + 1 < argc) {
      stats_interval_ms = std::stol(argv[++i]);
    } else if (std::strcmp(argv[i], "--stats-out") == 0 && i + 1 < argc) {
      stats_out = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    }
  }
  if (!loopback && !UdpTransport::available()) {
    std::printf("UDP loopback unavailable here; falling back to the threaded backend\n");
    loopback = true;
  }

  Executor ex(shards);
  std::unique_ptr<ThreadedTransport> transport;
  if (loopback) {
    transport = std::make_unique<LoopbackTransport>(ex);
  } else {
    transport = std::make_unique<UdpTransport>(ex);
  }

  // The observability plane installs its per-shard loop observers here,
  // before any group (and its timers) exists.
  RtStatsPlane stats(ex, transport.get());

  // Tracing (the Perfetto flight view) needs a hub; the group wires it to
  // the transport's wall clock and registers the node->shard pinning.
  std::unique_ptr<TelemetryHub> hub;
  if (!trace_out.empty()) {
    hub = std::make_unique<TelemetryHub>();
    hub->enable_tracing(1 << 14);
  }

  // One group, pinned to shard 0. The stack is {ReliableLayer, FifoLayer} —
  // identical factory to the simulator runs in tests/.
  RtGroup group(*transport, nodes, make_reliable_fifo_factory(), /*shard=*/0,
                /*capture_trace=*/false, hub.get());
  stats.attach_group(group, "g0");

  if (!loopback) {
    auto& udp = static_cast<UdpTransport&>(*transport);
    std::printf("members:");
    for (std::size_t i = 0; i < nodes; ++i) {
      std::printf(" node%zu=127.0.0.1:%u", i, unsigned{udp.port_of(group.node(i))});
    }
    std::printf("\n");
  }

  ex.start();
  stats.start();
  group.start();

  StatsPublisherConfig pub_cfg;
  pub_cfg.interval = (stats_interval_ms > 0 ? stats_interval_ms : 500) * kMillisecond;
  pub_cfg.jsonl_path = stats_out;
  pub_cfg.dashboard = stats_interval_ms > 0;
  StatsPublisher publisher(stats, pub_cfg);
  const bool publishing = pub_cfg.dashboard || !stats_out.empty();
  if (publishing) publisher.start();

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t m = 0; m < msgs; ++m) {
    for (std::size_t i = 0; i < nodes; ++i) {
      const std::string body = "n" + std::to_string(i) + "#" + std::to_string(m);
      group.send(i, Bytes(body.begin(), body.end()));
    }
  }

  const std::uint64_t expect = std::uint64_t{nodes} * nodes * msgs;
  std::uint64_t got = 0;
  for (int spins = 0; spins < 20000; ++spins) {
    got = group.total_delivered();
    if (got >= expect) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  if (publishing) publisher.stop();
  for (std::size_t i = 0; i < nodes; ++i) {
    std::printf("node%zu delivered %llu\n", i,
                static_cast<unsigned long long>(group.delivered_at(i)));
  }
  std::printf("delivered %llu/%llu app messages in %.3fs over %s (%llu datagrams sent, "
              "%llu dropped by the medium)\n",
              static_cast<unsigned long long>(got), static_cast<unsigned long long>(expect),
              secs, loopback ? "threaded loopback" : "UDP",
              static_cast<unsigned long long>(transport->packets_sent()),
              static_cast<unsigned long long>(transport->packets_dropped()));

  ex.stop();

  // Final stats summary, from a post-stop flush (exact values: the loop
  // threads are joined, so every counter and histogram is settled).
  stats.flush_all();
  const std::vector<StatsSnapshot> snaps = stats.collect();
  const StatsSnapshot::Hist lag = merge_hists(snaps, "rt.loop.lag_us");
  const StatsSnapshot::Hist e2e = merge_hists(snaps, "rt.latency_us.");
  std::printf("stats: delivered=%llu drops=%llu loop_lag_max_us=%llu "
              "e2e_p50_us=%.0f e2e_p99_us=%.0f (%llu samples)\n",
              static_cast<unsigned long long>(got),
              static_cast<unsigned long long>(transport->packets_dropped()),
              static_cast<unsigned long long>(lag.max), e2e.p50, e2e.p99,
              static_cast<unsigned long long>(e2e.count));

  if (hub != nullptr && !trace_out.empty()) {
    std::ofstream os(trace_out, std::ios::binary);
    write_chrome_trace(*hub, os);
    std::printf("trace written to %s\n", trace_out.c_str());
  }

  // UDP drop accounting: every datagram the transport counted as sent
  // either reached a handler, was counted as dropped, or vanished in the
  // kernel (uncounted). delivered + dropped > sent means double counting.
  if (!loopback) {
    const std::uint64_t sent = transport->packets_sent();
    const std::uint64_t delivered_dg = transport->packets_delivered();
    const std::uint64_t dropped = transport->packets_dropped();
    if (delivered_dg + dropped > sent) {
      std::fprintf(stderr,
                   "drop accounting disagrees: delivered %llu + dropped %llu > sent %llu\n",
                   static_cast<unsigned long long>(delivered_dg),
                   static_cast<unsigned long long>(dropped),
                   static_cast<unsigned long long>(sent));
      return 2;
    }
  }
  return got == expect ? 0 : 1;
}
