// net_loop: the protocol stacks from the simulator, running over real UDP.
//
// Builds a reliable-FIFO group whose members are real UDP sockets on
// 127.0.0.1, driven by a sharded epoll executor — the exact same layer
// code the deterministic simulator runs, with only the medium swapped
// underneath the Endpoint. Each member multicasts a stream of numbered
// messages; the loop waits until every copy is delivered everywhere (the
// ReliableLayer's NACK machinery recovers any datagram the kernel
// dropped), then prints per-member delivery counts and transport stats.
//
//   ./net_loop [--nodes N] [--msgs M] [--shards S] [--loopback]
//
// --loopback swaps the UDP sockets for the in-process threaded backend
// (useful where the sandbox forbids sockets; also what CI's TSan job runs).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "rt/loopback_transport.hpp"
#include "rt/rt_group.hpp"
#include "rt/udp_transport.hpp"
#include "switch/hybrid.hpp"

using namespace msw;

int main(int argc, char** argv) {
  std::size_t nodes = 4;
  std::size_t msgs = 200;
  std::size_t shards = 2;
  bool loopback = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = std::stoul(argv[++i]);
    } else if (std::strcmp(argv[i], "--msgs") == 0 && i + 1 < argc) {
      msgs = std::stoul(argv[++i]);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::stoul(argv[++i]);
    } else if (std::strcmp(argv[i], "--loopback") == 0) {
      loopback = true;
    }
  }
  if (!loopback && !UdpTransport::available()) {
    std::printf("UDP loopback unavailable here; falling back to the threaded backend\n");
    loopback = true;
  }

  Executor ex(shards);
  std::unique_ptr<ThreadedTransport> transport;
  if (loopback) {
    transport = std::make_unique<LoopbackTransport>(ex);
  } else {
    transport = std::make_unique<UdpTransport>(ex);
  }

  // One group, pinned to shard 0. The stack is {ReliableLayer, FifoLayer} —
  // identical factory to the simulator runs in tests/.
  RtGroup group(*transport, nodes, make_reliable_fifo_factory());

  if (!loopback) {
    auto& udp = static_cast<UdpTransport&>(*transport);
    std::printf("members:");
    for (std::size_t i = 0; i < nodes; ++i) {
      std::printf(" node%zu=127.0.0.1:%u", i, unsigned{udp.port_of(group.node(i))});
    }
    std::printf("\n");
  }

  ex.start();
  group.start();

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t m = 0; m < msgs; ++m) {
    for (std::size_t i = 0; i < nodes; ++i) {
      const std::string body = "n" + std::to_string(i) + "#" + std::to_string(m);
      group.send(i, Bytes(body.begin(), body.end()));
    }
  }

  const std::uint64_t expect = std::uint64_t{nodes} * nodes * msgs;
  std::uint64_t got = 0;
  for (int spins = 0; spins < 20000; ++spins) {
    got = group.total_delivered();
    if (got >= expect) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  for (std::size_t i = 0; i < nodes; ++i) {
    std::printf("node%zu delivered %llu\n", i,
                static_cast<unsigned long long>(group.delivered_at(i)));
  }
  std::printf("delivered %llu/%llu app messages in %.3fs over %s (%llu datagrams sent, "
              "%llu dropped by the medium)\n",
              static_cast<unsigned long long>(got), static_cast<unsigned long long>(expect),
              secs, loopback ? "threaded loopback" : "UDP",
              static_cast<unsigned long long>(transport->packets_sent()),
              static_cast<unsigned long long>(transport->packets_dropped()));

  ex.stop();
  return got == expect ? 0 : 1;
}
