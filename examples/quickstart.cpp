// Quickstart: a group of five processes running the switching protocol
// over two total-order protocols, one manual switch, zero message loss.
//
//   build/examples/quickstart
//
// Walks through the core API: Simulation -> Network -> Group(factory) ->
// send / on_deliver -> request_switch -> inspect the captured trace.
#include <cstdio>

#include "sim/simulation.hpp"
#include "stack/group.hpp"
#include "switch/hybrid.hpp"
#include "trace/properties.hpp"

using namespace msw;

int main() {
  // 1. A deterministic simulation and a 1990s-style LAN.
  Simulation sim(/*seed=*/7);
  NetConfig net_cfg;  // defaults: 1 ms hops, 10 Mbit/s, per-packet CPU cost
  Network net(sim.scheduler(), sim.fork_rng(), net_cfg);

  // 2. Five processes, each running the same stack: the switching protocol
  //    over {sequencer total order, token-ring total order}.
  Group group(sim, net, 5, make_hybrid_total_order_factory());
  group.start();

  // 3. Deliveries arrive through a callback; every member sees the same
  //    totally-ordered stream.
  group.stack(0).set_on_deliver([&](const MsgId& id, std::span<const Byte> body) {
    std::printf("  [member 0, t=%6.2f ms] delivered %-8s from process %u\n",
                to_ms(sim.now()), to_string(std::span<const Byte>(body)).c_str(), id.sender);
  });

  std::printf("phase 1: three messages on the sequencer protocol\n");
  group.send(1, to_bytes("alpha"));
  group.send(3, to_bytes("bravo"));
  group.send(4, to_bytes("charlie"));
  sim.run_for(500 * kMillisecond);

  // 4. Any member may ask to switch; the SP token does the rest. The
  //    guarantee: every process delivers all sequencer-era messages before
  //    any token-era message, and senders are never blocked meanwhile.
  std::printf("phase 2: member 2 requests a switch to the token protocol\n");
  switch_layer_of(group.stack(2)).request_switch();
  group.send(0, to_bytes("delta"));  // races with the switch — perfectly fine
  sim.run_for(kSecond);

  std::printf("phase 3: three messages on the token protocol\n");
  group.send(2, to_bytes("echo"));
  group.send(1, to_bytes("foxtrot"));
  group.send(0, to_bytes("golf"));
  sim.run_for(kSecond);

  // 5. Inspect the outcome.
  auto& sp = switch_layer_of(group.stack(0));
  std::printf("\nepoch=%llu active protocol=%s, %llu messages delivered in total\n",
              static_cast<unsigned long long>(sp.epoch()),
              sp.active_protocol() == 0 ? "sequencer" : "token",
              static_cast<unsigned long long>(group.total_delivered()));
  std::printf("trace satisfies Total Order: %s\n",
              TotalOrderProperty().holds(group.trace()) ? "yes" : "NO");
  std::printf("trace satisfies No Replay:   %s\n",
              NoReplayProperty().holds(group.trace()) ? "yes" : "NO");
  return 0;
}
