// A fourth scenario beyond the paper's three use cases: a group chat on
// causal broadcast, upgraded at run time.
//
// Causal delivery is the chat invariant — an answer never appears before
// its question. The room runs the switching protocol over two builds of
// the causal stack and upgrades mid-conversation (the on-line upgrade use
// case applied to a causal protocol). Although Causal Order sits OUTSIDE
// the paper's switch-safe class (it is not Delayable — see
// bench_table2_metaproperties), the concrete SP preserves it: all
// old-protocol messages drain before any new-protocol delivery.
//
//   build/examples/causal_chat
#include <cstdio>
#include <string>
#include <vector>

#include "proto/causal_layer.hpp"
#include "proto/reliable_layer.hpp"
#include "sim/simulation.hpp"
#include "stack/group.hpp"
#include "switch/hybrid.hpp"
#include "trace/properties.hpp"

using namespace msw;

namespace {

LayerFactory causal_stack(ReliableConfig cfg = {}) {
  return [cfg](NodeId, const std::vector<NodeId>&) {
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::make_unique<CausalLayer>());
    layers.push_back(std::make_unique<ReliableLayer>(cfg));
    return layers;
  };
}

}  // namespace

int main() {
  Simulation sim(21);
  NetConfig net_cfg;
  net_cfg.loss = 0.05;  // flaky wifi in the meeting room
  Network net(sim.scheduler(), sim.fork_rng(), net_cfg);

  ReliableConfig v2;
  v2.nack_interval = 5 * kMillisecond;  // the upgraded build recovers faster
  Group room(sim, net, 3, make_switch_factory(causal_stack(), causal_stack(v2)));
  room.start();

  const char* names[] = {"alice", "bob", "carol"};
  std::vector<std::vector<std::string>> screens(room.size());
  for (std::size_t i = 0; i < room.size(); ++i) {
    room.stack(i).set_on_deliver([&, i](const MsgId& id, std::span<const Byte> body) {
      screens[i].push_back(std::string(names[id.sender % 3]) + ": " +
                           to_string(std::span<const Byte>(body)));
    });
  }

  // A conversation where each line reacts to the previous one: every send
  // happens after the sender has DELIVERED what it replies to, so the
  // causal chain is real.
  struct Line {
    std::size_t who;
    const char* text;
    Time at;
  };
  const std::vector<Line> script = {
      {0, "does the build pass?", 10 * kMillisecond},
      {1, "yes, all green", 120 * kMillisecond},
      {2, "then let's ship it", 240 * kMillisecond},
      {0, "shipping now", 600 * kMillisecond},   // after the upgrade below
      {1, "confirmed live", 720 * kMillisecond},
  };
  for (const Line& line : script) {
    sim.scheduler().at(line.at, [&room, line] { room.send(line.who, to_bytes(line.text)); });
  }
  // Ops upgrades the protocol in the middle of the conversation.
  sim.scheduler().at(400 * kMillisecond, [&room] {
    std::printf("t=0.400 s  upgrading the causal stack (v1 -> v2), chat keeps flowing\n\n");
    switch_layer_of(room.stack(0)).request_switch();
  });

  sim.run_until(20 * kSecond);

  for (std::size_t i = 0; i < room.size(); ++i) {
    std::printf("%s's screen:\n", names[i]);
    for (const auto& line : screens[i]) std::printf("  %s\n", line.c_str());
  }
  const bool causal_ok = CausalOrderProperty().holds(room.trace());
  bool complete = true;
  for (std::size_t i = 0; i < room.size(); ++i) {
    complete = complete && screens[i].size() == script.size();
  }
  std::printf("\nevery screen shows the full conversation: %s\n", complete ? "yes" : "NO");
  std::printf("no answer ever precedes its question (Causal Order): %s\n",
              causal_ok ? "yes" : "NO");
  std::printf("protocol epoch after upgrade: %llu\n",
              static_cast<unsigned long long>(switch_layer_of(room.stack(0)).epoch()));
  return complete && causal_ok ? 0 : 1;
}
