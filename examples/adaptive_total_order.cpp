// The paper's "Performance" use case (sections 1 and 7): an adaptive
// total-order protocol that always runs the best algorithm for the current
// load. A hysteresis oracle watches the number of active senders and
// switches between the sequencer (best at low load) and the token ring
// (best at high load) as a day-in-the-life load pattern plays out.
//
//   build/examples/adaptive_total_order
#include <cstdio>
#include <vector>

#include "harness/workload.hpp"
#include "sim/simulation.hpp"
#include "stack/group.hpp"
#include "switch/hybrid.hpp"

using namespace msw;

namespace {

NetConfig era_network() {
  NetConfig cfg;
  cfg.cpu_send = 250;
  cfg.cpu_recv = 250;
  return cfg;
}

}  // namespace

int main() {
  Simulation sim(11);
  Network net(sim.scheduler(), sim.fork_rng(), era_network());

  HybridConfig cfg;
  cfg.sequencer.order_cost = 2450;  // the sequencer's serial bottleneck
  cfg.token.token_process_cost = 300;
  cfg.sp.sender_window = 500 * kMillisecond;
  cfg.oracle = [](NodeId) { return std::make_unique<HysteresisOracle>(3, 6, kSecond); };
  Group group(sim, net, 10, make_hybrid_total_order_factory(cfg));
  group.start();

  // A load pattern: quiet morning (2 senders), busy midday (8 senders),
  // quiet evening (2 senders). Each phase lasts 8 simulated seconds.
  struct Phase {
    const char* name;
    std::size_t senders;
  };
  const std::vector<Phase> phases = {{"quiet morning", 2}, {"busy midday", 8},
                                     {"quiet evening", 2}};

  Rng rng = sim.fork_rng();
  const Duration phase_len = 8 * kSecond;
  const auto interval = static_cast<Duration>(1e6 / 50.0);
  for (std::size_t p = 0; p < phases.size(); ++p) {
    const Time begin = static_cast<Time>(p) * phase_len;
    for (std::size_t s = 0; s < phases[p].senders; ++s) {
      Time t = begin + static_cast<Duration>(rng.below(static_cast<std::uint64_t>(interval)));
      while (t < begin + phase_len) {
        sim.scheduler().at(t, [&group, s] { group.send(s, Bytes(64, 'a')); });
        t += std::max<Duration>(
            1, static_cast<Duration>(rng.exponential(static_cast<double>(interval))));
      }
    }
  }

  std::printf("%-10s %-16s %-12s %-10s %s\n", "t(s)", "phase", "protocol", "epoch",
              "mean latency so far (ms)");
  Time window_start = 0;
  for (std::size_t p = 0; p < phases.size(); ++p) {
    for (int tick = 1; tick <= 4; ++tick) {
      const Time t = static_cast<Time>(p) * phase_len + tick * phase_len / 4;
      sim.run_until(t);
      auto& sp = switch_layer_of(group.stack(0));
      const auto tl = trace_latency(group.trace(), window_start, sim.now(), group.size());
      std::printf("%-10.1f %-16s %-12s %-10llu %.2f\n", to_sec(sim.now()), phases[p].name,
                  sp.active_protocol() == 0 ? "sequencer" : "token",
                  static_cast<unsigned long long>(sp.epoch()), tl.latency_ms.mean());
    }
    window_start = sim.now();
  }
  sim.run_for(10 * kSecond);  // drain

  auto& sp = switch_layer_of(group.stack(0));
  std::printf("\nswitches completed: %llu (expected 2: up at midday, back in the evening)\n",
              static_cast<unsigned long long>(sp.stats().switches_completed));
  const auto total = trace_latency(group.trace(), 0, 3 * phase_len, group.size());
  std::printf("deliveries: %zu latency samples, %llu missing — the hybrid used the cheap\n"
              "protocol in every phase without ever stopping the application.\n",
              total.latency_ms.count(), static_cast<unsigned long long>(total.missing_deliveries));
  return 0;
}
