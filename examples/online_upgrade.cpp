// The paper's "On-line Upgrading" use case (section 1): "Protocol
// switching can be used to upgrade networking protocols at run-time
// without having to restart applications. Even minor bug fixes may be
// done in this way."
//
// Here v1 is a plain reliable-FIFO multicast stack and v2 is the upgraded
// build of the same stack (tighter retransmission timers — a plausible bug
// fix). The application keeps a running checksum over everything it
// delivers; the upgrade happens mid-stream and the checksums at every
// member agree, with no restart, no loss, and no duplicate.
//
//   build/examples/online_upgrade
#include <cstdio>
#include <vector>

#include "proto/fifo_layer.hpp"
#include "proto/reliable_layer.hpp"
#include "sim/simulation.hpp"
#include "stack/group.hpp"
#include "switch/hybrid.hpp"
#include "trace/properties.hpp"
#include "util/digest.hpp"

using namespace msw;

namespace {

LayerFactory stack_v1() {
  ReliableConfig cfg;  // v1: leisurely timers
  cfg.nack_interval = 40 * kMillisecond;
  cfg.heartbeat_interval = 200 * kMillisecond;
  return [cfg](NodeId, const std::vector<NodeId>&) {
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::make_unique<FifoLayer>());
    layers.push_back(std::make_unique<ReliableLayer>(cfg));
    return layers;
  };
}

LayerFactory stack_v2() {
  ReliableConfig cfg;  // v2: the "bug fix" — much faster loss recovery
  cfg.nack_interval = 5 * kMillisecond;
  cfg.heartbeat_interval = 25 * kMillisecond;
  return [cfg](NodeId, const std::vector<NodeId>&) {
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::make_unique<FifoLayer>());
    layers.push_back(std::make_unique<ReliableLayer>(cfg));
    return layers;
  };
}

}  // namespace

int main() {
  Simulation sim(3);
  NetConfig net_cfg;
  net_cfg.loss = 0.08;  // a lossy day on the LAN: the fix matters
  Network net(sim.scheduler(), sim.fork_rng(), net_cfg);

  Group group(sim, net, 4, make_switch_factory(stack_v1(), stack_v2()));
  group.start();

  // The application: every member folds delivered bodies into a checksum.
  // The stack is reliable FIFO (per-sender order, not total order), so the
  // fold is commutative: members must agree on the SET of records, each
  // applied exactly once.
  std::vector<std::uint64_t> checksum(group.size(), 0);
  std::vector<std::uint64_t> count(group.size(), 0);
  for (std::size_t i = 0; i < group.size(); ++i) {
    group.stack(i).set_on_deliver([&, i](const MsgId&, std::span<const Byte> body) {
      checksum[i] ^= fnv1a(body);
      ++count[i];
    });
  }

  // A steady application stream: 200 messages over ~2 s.
  for (int k = 0; k < 200; ++k) {
    sim.scheduler().at(k * 10 * kMillisecond, [&group, k] {
      group.send(static_cast<std::size_t>(k % 4), to_bytes("record-" + std::to_string(k)));
    });
  }

  // Ops pushes the upgrade one second in. Nobody restarts anything.
  sim.scheduler().at(kSecond, [&group] {
    std::printf("t=1.000 s  operator initiates the v1 -> v2 upgrade\n");
    switch_layer_of(group.stack(0)).request_switch();
  });

  sim.run_until(30 * kSecond);

  auto& sp = switch_layer_of(group.stack(0));
  std::printf("upgrade complete: epoch=%llu (protocol v%d active)\n",
              static_cast<unsigned long long>(sp.epoch()), sp.active_protocol() + 1);

  bool agree = true;
  for (std::size_t i = 0; i < group.size(); ++i) {
    std::printf("  member %zu: %llu records, checksum %016llx\n", i,
                static_cast<unsigned long long>(count[i]),
                static_cast<unsigned long long>(checksum[i]));
    agree = agree && count[i] == 200 && checksum[i] == checksum[0];
  }
  std::printf("all members delivered all 200 records exactly once: %s\n",
              agree ? "yes" : "NO");
  std::printf("trace satisfies No Replay (no record applied twice): %s\n",
              NoReplayProperty().holds(group.trace()) ? "yes" : "NO");
  return agree ? 0 : 1;
}
