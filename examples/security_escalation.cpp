// The paper's "Security" use case (section 1): "System managers will be
// able to increase security at run-time, for example when an intrusion
// detection system notices unusual behavior, or when it gets close to
// April 1st."
//
// The group starts on a plain (fast, unprotected) reliable multicast
// stack. An attacker node on the same LAN can forge application messages
// — they are delivered. When the intrusion detector fires, the group
// switches at run-time to a protected stack (integrity MAC + encryption,
// same reliable transport underneath). The same forgery is now rejected,
// and an eavesdropper on the wire sees only ciphertext. No process
// restarts; in-flight legitimate traffic is delivered exactly once.
//
//   build/examples/security_escalation
#include <cstdio>
#include <vector>

#include "proto/confidentiality_layer.hpp"
#include "proto/fifo_layer.hpp"
#include "proto/integrity_layer.hpp"
#include "proto/reliable_layer.hpp"
#include "sim/simulation.hpp"
#include "stack/group.hpp"
#include "switch/hybrid.hpp"
#include "util/digest.hpp"

using namespace msw;

namespace {

constexpr std::uint64_t kGroupKey = 0x5eC0DEull;

LayerFactory plain_stack() {
  return [](NodeId, const std::vector<NodeId>&) {
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::make_unique<FifoLayer>());
    layers.push_back(std::make_unique<ReliableLayer>());
    return layers;
  };
}

LayerFactory protected_stack() {
  return [](NodeId, const std::vector<NodeId>&) {
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::make_unique<FifoLayer>());
    layers.push_back(std::make_unique<ReliableLayer>());
    layers.push_back(std::make_unique<IntegrityLayer>(kGroupKey));
    layers.push_back(std::make_unique<ConfidentialityLayer>(kGroupKey ^ 0xC0FFEE));
    return layers;
  };
}

/// Forge a wire frame for the PLAIN protocol claiming to come from
/// `impersonated`: app header + fifo p2p-pass? No — we mimic the exact
/// headers the plain stack would produce for a group message, which any
/// LAN attacker can reproduce since the stack is unauthenticated.
Payload forge_plain_frame(std::uint32_t impersonated, std::uint64_t app_seq,
                        std::uint64_t fifo_seq, std::uint64_t rel_seq,
                        const std::string& text) {
  Message m = Message::group(to_bytes(text));
  AppHeader::push(m, AppHeader{AppHeader::Kind::kData, impersonated, app_seq});
  // SP data header (epoch 0, the plain protocol).
  m.push_header([&](Writer& w) {
    w.u8(0);  // kData
    w.u64(0);  // epoch
    w.u32(impersonated);
    w.u64(999);  // per-epoch seq (diagnostic only)
  });
  // Fifo header.
  m.push_header([&](Writer& w) {
    w.u8(0);  // kData
    w.u32(impersonated);
    w.u64(fifo_seq);
  });
  // Reliable header.
  m.push_header([&](Writer& w) {
    w.u8(0);  // kData
    w.u32(impersonated);
    w.u64(rel_seq);
  });
  // Mux channel of protocol A.
  m.push_header([](Writer& w) { w.u16(0); });
  return m.data;
}

}  // namespace

int main() {
  Simulation sim(13);
  Network net(sim.scheduler(), sim.fork_rng(), NetConfig{});
  Group group(sim, net, 4, make_switch_factory(plain_stack(), protected_stack()));
  group.start();

  const NodeId attacker = net.add_node();
  std::vector<std::string> member0_log;
  group.stack(0).set_on_deliver([&](const MsgId& id, std::span<const Byte> body) {
    member0_log.push_back("from p" + std::to_string(id.sender) + ": " +
                          to_string(std::span<const Byte>(body)));
  });

  std::printf("phase 1: plain protocol — legitimate traffic plus a forgery\n");
  group.send(1, to_bytes("routine report"));
  sim.run_for(200 * kMillisecond);
  // The attacker impersonates member 2 on the unauthenticated stack. It
  // must pick unseen fifo/reliable sequence numbers for the spoofed origin.
  // Member 2 has not sent anything yet, so the forgery must use its next
  // expected sequence numbers (0) to slip through FIFO/reliability.
  net.multicast(attacker, group.members(),
                forge_plain_frame(group.node(2).v, 50, 0, 0, "TRANSFER ALL FUNDS"));
  sim.run_for(300 * kMillisecond);
  const bool forgery_landed =
      !member0_log.empty() && member0_log.back().find("TRANSFER") != std::string::npos;
  std::printf("  forged message delivered at member 0: %s\n", forgery_landed ? "YES" : "no");

  std::printf("phase 2: intrusion detected -> switch to MAC + encryption at run-time\n");
  switch_layer_of(group.stack(0)).request_switch();
  sim.run_for(2 * kSecond);
  auto& sp = switch_layer_of(group.stack(0));
  std::printf("  now on protocol %d (epoch %llu); application never stopped\n",
              sp.active_protocol(), static_cast<unsigned long long>(sp.epoch()));

  std::printf("phase 3: the attacker tries again on the protected protocol\n");
  const std::size_t before = member0_log.size();
  {
    // Same forgery idea, now against channel 1. Without the group key the
    // attacker cannot produce a valid MAC (and cannot even produce
    // plausible ciphertext).
    Message m = Message::group(to_bytes("TRANSFER ALL FUNDS v2"));
    AppHeader::push(m, AppHeader{AppHeader::Kind::kData, group.node(2).v, 51});
    m.push_header([&](Writer& w) {
      w.u8(0);
      w.u64(1);
      w.u32(group.node(2).v);
      w.u64(999);
    });
    m.push_header([&](Writer& w) {  // fifo
      w.u8(0);
      w.u32(group.node(2).v);
      w.u64(2);
    });
    m.push_header([&](Writer& w) {  // reliable
      w.u8(0);
      w.u32(group.node(2).v);
      w.u64(2);
    });
    m.push_header([&](Writer& w) {  // integrity: tag under the WRONG key
      w.u32(group.node(2).v);
      w.u64(mac(0xBADBAD, group.node(2).v, m.data));
    });
    m.push_header([&](Writer& w) { w.u64(7); });  // bogus nonce
    Mux::push(m, 1);
    net.multicast(attacker, group.members(), m.data);
  }
  sim.run_for(500 * kMillisecond);
  std::printf("  forged message delivered at member 0: %s\n",
              member0_log.size() > before ? "YES" : "no");

  std::printf("phase 4: legitimate traffic continues, now confidential on the wire\n");
  group.send(1, to_bytes("quarterly secrets"));
  sim.run_for(500 * kMillisecond);

  std::printf("\nmember 0 delivery log:\n");
  for (const auto& line : member0_log) std::printf("  %s\n", line.c_str());
  const bool ok = forgery_landed && member0_log.size() == before + 1 &&
                  member0_log.back().find("quarterly") != std::string::npos;
  std::printf("\nescalation outcome: %s — the forgery that worked in phase 1 is rejected\n"
              "after the run-time switch, while legitimate traffic flows throughout.\n",
              ok ? "as intended" : "UNEXPECTED");
  return ok ? 0 : 1;
}
