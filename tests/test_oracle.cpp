// Oracle implementations: threshold behaviour, hysteresis dead band, and
// dwell-time suppression.
#include <gtest/gtest.h>

#include "switch/oracle.hpp"

namespace msw {
namespace {

OracleView view(int active, std::size_t senders, Time since_switch = kSecond) {
  OracleView v;
  v.self = NodeId{0};
  v.active_protocol = active;
  v.now = 10 * kSecond;
  v.active_senders = senders;
  v.since_last_switch = since_switch;
  return v;
}

TEST(ManualOracle, NeverSwitches) {
  ManualOracle o;
  EXPECT_FALSE(o.should_switch(view(0, 100)));
  EXPECT_FALSE(o.should_switch(view(1, 0)));
}

TEST(ThresholdOracle, SwitchesUpAtThreshold) {
  ThresholdOracle o(5);
  EXPECT_FALSE(o.should_switch(view(0, 4)));
  EXPECT_TRUE(o.should_switch(view(0, 5)));
  EXPECT_TRUE(o.should_switch(view(0, 9)));
}

TEST(ThresholdOracle, SwitchesDownBelowThreshold) {
  ThresholdOracle o(5);
  EXPECT_TRUE(o.should_switch(view(1, 4)));
  EXPECT_FALSE(o.should_switch(view(1, 5)));
}

TEST(ThresholdOracle, OscillatesAtBoundary) {
  // The failure mode of section 7: load hovering at the threshold flips
  // the oracle every time it is asked.
  ThresholdOracle o(5);
  int flips = 0;
  int active = 0;
  for (int i = 0; i < 10; ++i) {
    const std::size_t load = (i % 2 == 0) ? 5 : 4;  // jitters around 5
    if (o.should_switch(view(active, load))) {
      active = 1 - active;
      ++flips;
    }
  }
  EXPECT_GE(flips, 8);
}

TEST(HysteresisOracle, DeadBandHoldsProtocol) {
  HysteresisOracle o(3, 6, 0);
  // Between low and high, neither direction switches.
  for (std::size_t load = 4; load <= 5; ++load) {
    EXPECT_FALSE(o.should_switch(view(0, load)));
    EXPECT_FALSE(o.should_switch(view(1, load)));
  }
  EXPECT_TRUE(o.should_switch(view(0, 6)));
  EXPECT_TRUE(o.should_switch(view(1, 3)));
}

TEST(HysteresisOracle, JitterInsideBandDoesNotOscillate) {
  HysteresisOracle o(3, 6, 0);
  int active = 0;
  int flips = 0;
  for (int i = 0; i < 20; ++i) {
    const std::size_t load = (i % 2 == 0) ? 5 : 4;
    if (o.should_switch(view(active, load))) {
      active = 1 - active;
      ++flips;
    }
  }
  EXPECT_EQ(flips, 0);
}

TEST(HysteresisOracle, DwellTimeSuppressesEarlySwitch) {
  HysteresisOracle o(3, 6, kSecond);
  EXPECT_FALSE(o.should_switch(view(0, 9, 500 * kMillisecond)));
  EXPECT_TRUE(o.should_switch(view(0, 9, 2 * kSecond)));
}

TEST(HysteresisOracle, ExactlyAtDwellBoundarySwitches) {
  // The guard is `since < min_dwell`: one microsecond short blocks, the
  // boundary itself allows — in both switch directions.
  HysteresisOracle o(3, 6, kSecond);
  EXPECT_FALSE(o.should_switch(view(0, 9, kSecond - 1)));
  EXPECT_TRUE(o.should_switch(view(0, 9, kSecond)));

  HysteresisOracle back(3, 6, kSecond);
  EXPECT_FALSE(back.should_switch(view(1, 1, kSecond - 1)));
  EXPECT_TRUE(back.should_switch(view(1, 1, kSecond)));
}

}  // namespace
}  // namespace msw
