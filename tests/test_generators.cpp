// Trace generators: every family must actually satisfy the properties it
// is documented to satisfy (parameterized across seeds), and corpus traces
// must be pairwise message-disjoint.
#include <gtest/gtest.h>

#include <numeric>

#include "trace/generators.hpp"
#include "trace/properties.hpp"
#include "trace/relations.hpp"

namespace msw {
namespace {

class GeneratorSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSeeds, TotalOrderFamilySatisfiesItsProperties) {
  Rng rng(GetParam());
  GenOptions opts;
  opts.n_procs = 4;
  opts.n_msgs = 6;
  const Trace tr = gen_total_order_trace(rng, opts);
  EXPECT_TRUE(well_formed(tr));
  EXPECT_TRUE(TotalOrderProperty().holds(tr));
  EXPECT_TRUE(NoReplayProperty().holds(tr));
  std::vector<std::uint32_t> group(4);
  std::iota(group.begin(), group.end(), 0);
  EXPECT_TRUE(ReliabilityProperty(group).holds(tr));
}

TEST_P(GeneratorSeeds, PrefixDeliveryStillTotallyOrderedButUnreliable) {
  Rng rng(GetParam());
  GenOptions opts;
  opts.n_procs = 4;
  opts.n_msgs = 8;
  opts.delivery = GenOptions::Delivery::kPrefix;
  const Trace tr = gen_total_order_trace(rng, opts);
  EXPECT_TRUE(TotalOrderProperty().holds(tr));
}

TEST_P(GeneratorSeeds, PriorityFamilySatisfiesPrioritizedDelivery) {
  Rng rng(GetParam());
  GenOptions opts;
  opts.n_procs = 4;
  opts.n_msgs = 6;
  const Trace tr = gen_priority_trace(rng, opts);
  EXPECT_TRUE(well_formed(tr));
  EXPECT_TRUE(PrioritizedDeliveryProperty(0).holds(tr));
  EXPECT_TRUE(TotalOrderProperty().holds(tr));
}

TEST_P(GeneratorSeeds, AmoebaFamilySatisfiesAmoeba) {
  Rng rng(GetParam());
  GenOptions opts;
  opts.n_procs = 4;
  opts.n_msgs = 8;
  const Trace tr = gen_amoeba_trace(rng, opts);
  EXPECT_TRUE(well_formed(tr));
  EXPECT_TRUE(AmoebaProperty().holds(tr));
}

TEST_P(GeneratorSeeds, VsyncFamilySatisfiesVirtualSynchrony) {
  Rng rng(GetParam());
  GenOptions opts;
  opts.n_procs = 4;
  opts.n_msgs = 4;
  const Trace tr = gen_vsync_trace(rng, opts);
  EXPECT_TRUE(well_formed(tr));
  EXPECT_TRUE(VirtualSynchronyProperty().holds(tr));
  EXPECT_TRUE(NoReplayProperty().holds(tr));
}

TEST_P(GeneratorSeeds, ClusterFamilyConfidentialToCluster) {
  Rng rng(GetParam());
  GenOptions opts;
  opts.n_procs = 4;
  opts.n_msgs = 5;
  const std::set<std::uint32_t> cluster = {0, 1};
  const Trace tr = gen_cluster_trace(rng, opts, cluster);
  EXPECT_TRUE(ConfidentialityProperty(cluster).holds(tr));
  EXPECT_TRUE(IntegrityProperty(cluster).holds(tr));
  EXPECT_TRUE(TotalOrderProperty().holds(tr));
}

TEST_P(GeneratorSeeds, SparseFamilySatisfiesNoReplay) {
  Rng rng(GetParam());
  GenOptions opts;
  opts.n_procs = 4;
  opts.n_msgs = 6;
  opts.body_pool = 4;
  const Trace tr = gen_sparse_trace(rng, opts);
  EXPECT_TRUE(well_formed(tr));
  EXPECT_TRUE(NoReplayProperty().holds(tr));
  // Every deliver comes strictly after its send.
  for (std::size_t i = 0; i < tr.size(); ++i) {
    if (!tr[i].is_deliver()) continue;
    bool sent_before = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (tr[j].is_send() && tr[j].msg == tr[i].msg) sent_before = true;
    }
    EXPECT_TRUE(sent_before) << "deliver before send at index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeeds,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(Corpus, TracesArePairwiseMessageDisjoint) {
  Rng rng(4);
  const auto corpus = standard_corpus(rng, 4, 4);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    for (std::size_t j = i + 1; j < corpus.size(); ++j) {
      EXPECT_TRUE(messages_disjoint(corpus[i], corpus[j]))
          << "corpus traces " << i << " and " << j << " share message ids";
    }
  }
}

TEST(Corpus, CoversEveryPropertyNonVacuously) {
  Rng rng(6);
  const auto corpus = standard_corpus(rng, 8, 4);
  for (const auto& prop : standard_properties(4)) {
    std::size_t holding = 0;
    for (const auto& tr : corpus) {
      if (prop->holds(tr)) ++holding;
    }
    EXPECT_GE(holding, 2u) << prop->name() << " has too little corpus support";
  }
}

TEST(Corpus, DeterministicForSeed) {
  Rng a(11), b(11);
  const auto c1 = standard_corpus(a, 2, 4);
  const auto c2 = standard_corpus(b, 2, 4);
  ASSERT_EQ(c1.size(), c2.size());
  for (std::size_t i = 0; i < c1.size(); ++i) EXPECT_EQ(c1[i], c2[i]);
}

}  // namespace
}  // namespace msw
