// The meta-property checker and the Table 2 classification.
//
// Every ✗ entry of the paper's Table 2 is re-derived here twice: once from
// a hand-built minimal witness (deterministic), and once by the corpus
// search (the full matrix test). Every ✓ entry must come back
// counterexample-free over the standard corpus.
#include <gtest/gtest.h>

#include "trace/generators.hpp"
#include "trace/meta.hpp"

namespace msw {
namespace {

MetaCheckResult check_one(const Property& p, const Relation& r, Trace witness,
                          std::uint64_t seed = 1) {
  Rng rng(seed);
  const std::vector<Trace> corpus = {std::move(witness)};
  return check_preservation(p, r, corpus, rng, 64);
}

// ------------------------------------------------- hand-built ✗ witnesses

TEST(MetaWitness, ReliabilityIsNotSafe) {
  // Chop off the deliveries and the sent message is no longer delivered.
  const Trace witness = {send_ev(0, 0), deliver_ev(0, 0, 0), deliver_ev(1, 0, 0)};
  const auto res = check_one(ReliabilityProperty({0, 1}), PrefixRelation(), witness);
  ASSERT_EQ(res.verdict, MetaVerdict::kRefuted);
  ASSERT_TRUE(res.above.has_value());
  EXPECT_LT(res.above->size(), witness.size());
}

TEST(MetaWitness, ReliabilityIsNotSendEnabled) {
  const Trace witness = {send_ev(0, 0), deliver_ev(0, 0, 0), deliver_ev(1, 0, 0)};
  const auto res = check_one(ReliabilityProperty({0, 1}), AppendSendsRelation(), witness);
  EXPECT_EQ(res.verdict, MetaVerdict::kRefuted);
}

TEST(MetaWitness, PrioritizedDeliveryIsNotAsynchronous) {
  // The master's delivery and another's are adjacent, different processes:
  // one swap reverses who was first (the paper's section 5.2 example).
  const Trace witness = {send_ev(1, 0), deliver_ev(0, 1, 0), deliver_ev(2, 1, 0)};
  const auto res = check_one(PrioritizedDeliveryProperty(0), AsyncSwapRelation(), witness);
  ASSERT_EQ(res.verdict, MetaVerdict::kRefuted);
  EXPECT_FALSE(PrioritizedDeliveryProperty(0).holds(*res.above));
}

TEST(MetaWitness, AmoebaIsNotDelayable) {
  // Deliver(own) adjacent to the next Send, same process: swapping them
  // puts two sends back to back (section 5.3).
  const Trace witness = {send_ev(0, 0), deliver_ev(0, 0, 0), send_ev(0, 1),
                         deliver_ev(0, 0, 1)};
  const auto res = check_one(AmoebaProperty(), DelaySwapRelation(), witness);
  EXPECT_EQ(res.verdict, MetaVerdict::kRefuted);
}

TEST(MetaWitness, AmoebaIsNotSendEnabled) {
  // Appending a send while one is outstanding violates the block
  // (section 5.4).
  const Trace witness = {send_ev(0, 0)};
  const auto res = check_one(AmoebaProperty(), AppendSendsRelation(), witness);
  EXPECT_EQ(res.verdict, MetaVerdict::kRefuted);
}

TEST(MetaWitness, VirtualSynchronyIsNotMemoryless) {
  // p moves v1 -> v2 -> v3; q skips v2. Removing the v2 view message makes
  // (v1,v3) a common consecutive pair with different contents (section 6.1).
  const Trace witness = {
      view_deliver_ev(0, 0, 1), view_deliver_ev(1, 0, 1),
      send_ev(0, 100, to_bytes("a")), deliver_ev(0, 0, 100, to_bytes("a")),
      deliver_ev(1, 0, 100, to_bytes("a")),
      view_deliver_ev(0, 0, 2),  // only p installs v2
      send_ev(0, 101, to_bytes("b")), deliver_ev(0, 0, 101, to_bytes("b")),
      view_deliver_ev(0, 0, 3), view_deliver_ev(1, 0, 3),
  };
  ASSERT_TRUE(VirtualSynchronyProperty().holds(witness));
  const auto res = check_one(VirtualSynchronyProperty(), RemoveMessagesRelation(), witness);
  ASSERT_EQ(res.verdict, MetaVerdict::kRefuted);
  EXPECT_FALSE(VirtualSynchronyProperty().holds(*res.above));
}

TEST(MetaWitness, NoReplayIsNotComposable) {
  // Each trace delivers body "x" once (different message ids): the glued
  // trace delivers it twice (section 6.2).
  const Trace tr1 = {send_ev(0, 0, to_bytes("x")), deliver_ev(1, 0, 0, to_bytes("x"))};
  const Trace tr2 = {send_ev(0, 1, to_bytes("x")), deliver_ev(1, 0, 1, to_bytes("x"))};
  Rng rng(1);
  const std::vector<Trace> corpus = {tr1, tr2};
  const auto res = check_composable(NoReplayProperty(), corpus, rng);
  EXPECT_EQ(res.verdict, MetaVerdict::kRefuted);
}

TEST(MetaWitness, AmoebaIsNotComposable) {
  // tr1 ends with an in-flight send by p; tr2 has p sending again. The
  // awaited delivery can never appear in tr2 (its message is not there).
  const Trace tr1 = {send_ev(0, 0)};
  const Trace tr2 = {send_ev(0, 1), deliver_ev(0, 0, 1)};
  Rng rng(1);
  const std::vector<Trace> corpus = {tr1, tr2};
  const auto res = check_composable(AmoebaProperty(), corpus, rng);
  EXPECT_EQ(res.verdict, MetaVerdict::kRefuted);
}

TEST(MetaWitness, VirtualSynchronyIsNotComposable) {
  // tr1's trailing epoch is open and asymmetric; tr2's first marker closes
  // it, exposing the disagreement.
  const Trace tr1 = {view_deliver_ev(0, 0, 1), view_deliver_ev(1, 0, 1),
                     send_ev(0, 100, to_bytes("a")), deliver_ev(0, 0, 100, to_bytes("a"))};
  const Trace tr2 = {view_deliver_ev(0, 0, 2), view_deliver_ev(1, 0, 2)};
  ASSERT_TRUE(VirtualSynchronyProperty().holds(tr1));
  ASSERT_TRUE(VirtualSynchronyProperty().holds(tr2));
  Rng rng(1);
  const std::vector<Trace> corpus = {tr1, tr2};
  const auto res = check_composable(VirtualSynchronyProperty(), corpus, rng);
  EXPECT_EQ(res.verdict, MetaVerdict::kRefuted);
}

// ----------------------------------------------------------- checker basics

TEST(MetaChecker, VacuousWhenNothingHolds) {
  // A corpus where the property never holds yields a vacuous verdict.
  const Trace bad = {deliver_ev(1, 9, 0)};  // untrusted sender
  Rng rng(1);
  const std::vector<Trace> corpus = {bad};
  const auto res = check_preservation(IntegrityProperty({0}), PrefixRelation(), corpus, rng);
  EXPECT_EQ(res.verdict, MetaVerdict::kVacuous);
  EXPECT_EQ(res.traces_used, 0u);
}

TEST(MetaChecker, SupportedReportsPairCount) {
  const Trace good = {send_ev(0, 0), deliver_ev(0, 0, 0)};
  Rng rng(1);
  const std::vector<Trace> corpus = {good};
  const auto res = check_preservation(IntegrityProperty({0}), PrefixRelation(), corpus, rng);
  EXPECT_EQ(res.verdict, MetaVerdict::kSupported);
  EXPECT_GT(res.pairs_checked, 0u);
}

TEST(MetaChecker, ComposableSkipsOverlappingPairs) {
  const Trace tr = {send_ev(0, 0, to_bytes("x")), deliver_ev(1, 0, 0, to_bytes("x"))};
  Rng rng(1);
  const std::vector<Trace> corpus = {tr, tr};  // identical => never disjoint
  const auto res = check_composable(NoReplayProperty(), corpus, rng);
  EXPECT_EQ(res.verdict, MetaVerdict::kVacuous);
}

// ------------------------------------------------------------ the full table

TEST(Table2, FullMatrixMatchesPaper) {
  Rng rng(2026);
  const auto corpus = standard_corpus(rng, 8, 4);
  const auto props = standard_properties(4);
  const auto matrix = compute_meta_matrix(props, corpus, rng, 24);

  // Expected verdicts, rows and columns in the paper's Table 2 order:
  // columns = Safety, Asynchronous, Send Enabled, Delayable, Memoryless,
  // Composable. 'Y' = satisfies the meta-property (no counterexample),
  // 'n' = refuted by an explicit counterexample.
  const std::vector<std::pair<std::string, std::string>> expected = {
      {"Total Order", "YYYYYY"},
      {"Integrity", "YYYYYY"},
      {"Confidentiality", "YYYYYY"},
      {"Reliability", "nYnYYY"},
      {"Prioritized Delivery", "YnYYYY"},
      {"Amoeba", "YYnnYn"},
      {"Virtual Synchrony", "YYYYnn"},
      {"No Replay", "YYYYYn"},
  };
  ASSERT_EQ(matrix.size(), expected.size());
  for (std::size_t r = 0; r < matrix.size(); ++r) {
    EXPECT_EQ(matrix[r].property, expected[r].first);
    for (std::size_t c = 0; c < 6; ++c) {
      const char want = expected[r].second[c];
      const char got = verdict_mark(matrix[r].results[c].verdict);
      EXPECT_EQ(got, want) << matrix[r].property << " / " << meta_matrix_columns()[c]
                           << " (pairs=" << matrix[r].results[c].pairs_checked << ")";
      EXPECT_GT(matrix[r].results[c].traces_used, 0u)
          << matrix[r].property << " had no corpus support for "
          << meta_matrix_columns()[c];
    }
  }
}

TEST(Table2, RefutationsCarryWitnesses) {
  Rng rng(7);
  const auto corpus = standard_corpus(rng, 6, 4);
  const auto props = standard_properties(4);
  const auto matrix = compute_meta_matrix(props, corpus, rng, 24);
  for (const auto& row : matrix) {
    for (std::size_t c = 0; c < 6; ++c) {
      if (row.results[c].verdict == MetaVerdict::kRefuted) {
        ASSERT_TRUE(row.results[c].below.has_value());
        ASSERT_TRUE(row.results[c].above.has_value());
        // The witness is genuine: below holds, above does not.
        const auto& prop = *props[&row - matrix.data()];
        EXPECT_TRUE(prop.holds(*row.results[c].below));
        EXPECT_FALSE(prop.holds(*row.results[c].above));
      }
    }
  }
}

TEST(Table2, SixMetaPropertyClassIsSwitchSafe) {
  // The paper's theorem: properties satisfying all six meta-properties are
  // preserved by SP. Check which standard properties qualify.
  Rng rng(99);
  const auto corpus = standard_corpus(rng, 8, 4);
  const auto props = standard_properties(4);
  const auto matrix = compute_meta_matrix(props, corpus, rng, 24);
  std::vector<std::string> in_class;
  for (const auto& row : matrix) {
    bool all = true;
    for (const auto& res : row.results) {
      if (res.verdict != MetaVerdict::kSupported) all = false;
    }
    if (all) in_class.push_back(row.property);
  }
  EXPECT_EQ(in_class,
            (std::vector<std::string>{"Total Order", "Integrity", "Confidentiality"}));
}

}  // namespace
}  // namespace msw
