// The trace model of section 3: event constructors, well-formedness, and
// trace utilities.
#include <gtest/gtest.h>

#include "trace/trace.hpp"

namespace msw {
namespace {

TEST(TraceModel, EventConstructors) {
  const TraceEvent s = send_ev(1, 5, to_bytes("b"));
  EXPECT_TRUE(s.is_send());
  EXPECT_EQ(s.process, 1u);
  EXPECT_EQ(s.msg.sender, 1u);
  EXPECT_EQ(s.msg.seq, 5u);
  EXPECT_FALSE(s.is_view_marker());

  const TraceEvent d = deliver_ev(2, 1, 5, to_bytes("b"));
  EXPECT_TRUE(d.is_deliver());
  EXPECT_EQ(d.process, 2u);
  EXPECT_EQ(d.msg, s.msg);
}

TEST(TraceModel, ViewMarkers) {
  const TraceEvent v = view_deliver_ev(3, 0, 7);
  EXPECT_TRUE(v.is_view_marker());
  EXPECT_TRUE(v.is_deliver());
  // A view marker and a data message with the same (sender, seq) differ.
  EXPECT_NE(v.msg, deliver_ev(3, 0, 7).msg);
}

TEST(TraceModel, WellFormedRejectsDuplicateSends) {
  Trace ok = {send_ev(0, 0), send_ev(0, 1), deliver_ev(1, 0, 0)};
  EXPECT_TRUE(well_formed(ok));
  Trace bad = {send_ev(0, 0), send_ev(0, 0)};
  EXPECT_FALSE(well_formed(bad));
}

TEST(TraceModel, DuplicateDeliversAreWellFormed) {
  // The model only forbids duplicate *sends*; duplicate deliveries are a
  // property violation (No Replay), not ill-formedness.
  Trace tr = {send_ev(0, 0), deliver_ev(1, 0, 0), deliver_ev(1, 0, 0)};
  EXPECT_TRUE(well_formed(tr));
}

TEST(TraceModel, ProcessesOf) {
  Trace tr = {send_ev(2, 0), deliver_ev(0, 2, 0), deliver_ev(5, 2, 0)};
  EXPECT_EQ(processes_of(tr), (std::vector<std::uint32_t>{0, 2, 5}));
}

TEST(TraceModel, MessagesOfDeduplicates) {
  Trace tr = {send_ev(0, 0), deliver_ev(1, 0, 0), deliver_ev(2, 0, 0), send_ev(0, 1)};
  EXPECT_EQ(messages_of(tr).size(), 2u);
}

TEST(TraceModel, MsgIdOrdering) {
  const MsgId a{0, 1, MsgId::Kind::kData};
  const MsgId b{0, 2, MsgId::Kind::kData};
  const MsgId c{1, 0, MsgId::Kind::kData};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(TraceModel, EventEqualityIgnoresTime) {
  TraceEvent a = send_ev(0, 0);
  TraceEvent b = send_ev(0, 0);
  a.time = 100;
  b.time = 200;
  EXPECT_EQ(a, b);
}

TEST(TraceModel, RenderingIsReadable) {
  Trace tr = {send_ev(0, 0, to_bytes("hi")), deliver_ev(1, 0, 0, to_bytes("hi"))};
  const std::string s = to_string(tr);
  EXPECT_NE(s.find("Send"), std::string::npos);
  EXPECT_NE(s.find("Deliver"), std::string::npos);
  EXPECT_NE(s.find("hi"), std::string::npos);
}

}  // namespace
}  // namespace msw
