// SP over each property-bearing stack, with mid-traffic switches: the
// Figure 1 composition claim exercised per property. Six-meta-property
// properties (and the Reliability-style exceptions) must survive every
// run; the layers' own guarantees (e.g. prioritized delivery WITHIN each
// protocol instance) keep functioning after the switch.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "proto/causal_layer.hpp"
#include "proto/confidentiality_layer.hpp"
#include "proto/fifo_layer.hpp"
#include "proto/integrity_layer.hpp"
#include "proto/noreplay_layer.hpp"
#include "proto/priority_layer.hpp"
#include "proto/reliable_layer.hpp"
#include "switch/hybrid.hpp"

namespace msw {
namespace {

using testing::GroupHarness;

constexpr std::uint64_t kKey = 0xfeed;

/// One reliable-fifo sub-protocol with `extra` layered on top.
template <typename ExtraLayer, typename... Args>
LayerFactory stack_with(Args... args) {
  return [args...](NodeId, const std::vector<NodeId>&) {
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::make_unique<ExtraLayer>(args...));
    layers.push_back(std::make_unique<FifoLayer>());
    layers.push_back(std::make_unique<ReliableLayer>());
    return layers;
  };
}

/// Runs traffic with two switches over SP(factory, factory); returns the
/// harness for property checks.
std::unique_ptr<GroupHarness> run_switched(const LayerFactory& proto, std::uint64_t seed,
                                           int messages = 24) {
  auto h = std::make_unique<GroupHarness>(4, make_switch_factory(proto, proto),
                                          testing::ideal_net(), seed);
  Rng rng(seed * 97 + 1);
  for (int k = 0; k < messages; ++k) {
    const std::size_t sender = rng.index(4);
    h->sim.scheduler().at(static_cast<Time>(rng.below(500)) * kMillisecond,
                          [&h = *h, sender, k] {
                            h.group.send(sender, to_bytes("m" + std::to_string(k)));
                          });
  }
  h->sim.scheduler().at(150 * kMillisecond,
                        [&h = *h] { switch_layer_of(h.group.stack(0)).request_switch(); });
  h->sim.scheduler().at(400 * kMillisecond,
                        [&h = *h] { switch_layer_of(h.group.stack(2)).request_switch(); });
  h->sim.run_for(20 * kSecond);
  return h;
}

class SwitchedStacks : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SwitchedStacks, NoReplayStackStaysReplayFree) {
  auto h = run_switched(stack_with<NoReplayLayer>(), GetParam());
  EXPECT_EQ(switch_layer_of(h->group.stack(0)).epoch(), 2u);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(h->delivered_data(p).size(), 24u) << "member " << p;
  }
  EXPECT_TRUE(NoReplayProperty().holds(h->group.trace()));
}

TEST_P(SwitchedStacks, IntegrityStackDeliversOnlyTrustedTraffic) {
  auto h = run_switched(stack_with<IntegrityLayer>(kKey), GetParam());
  std::set<std::uint32_t> trusted;
  for (std::size_t i = 0; i < 4; ++i) trusted.insert(h->group.node(i).v);
  EXPECT_TRUE(IntegrityProperty(trusted).holds(h->group.trace()));
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(h->delivered_data(p).size(), 24u) << "member " << p;
  }
}

TEST_P(SwitchedStacks, ConfidentialityStackKeepsDecrypting) {
  auto h = run_switched(stack_with<ConfidentialityLayer>(kKey), GetParam());
  // Bodies must round-trip through two independent cipher instances and
  // the switch: every delivered body is one of the sent plaintexts.
  std::set<Bytes> sent_bodies;
  for (const auto& e : h->group.trace()) {
    if (e.is_send()) sent_bodies.insert(e.body);
  }
  std::size_t delivered = 0;
  for (const auto& e : h->group.trace()) {
    if (!e.is_deliver()) continue;
    ++delivered;
    EXPECT_TRUE(sent_bodies.count(e.body)) << "garbled plaintext after switch";
  }
  EXPECT_EQ(delivered, 24u * 4u);
}

TEST_P(SwitchedStacks, CausalStackStaysCausal) {
  const auto causal = [](NodeId, const std::vector<NodeId>&) {
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::make_unique<CausalLayer>());
    layers.push_back(std::make_unique<ReliableLayer>());
    return layers;
  };
  auto h = run_switched(causal, GetParam());
  EXPECT_TRUE(CausalOrderProperty().holds(h->group.trace()));
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(h->delivered_data(p).size(), 24u) << "member " << p;
  }
}

TEST_P(SwitchedStacks, PriorityStackKeepsWorkingPerEpoch) {
  // Prioritized Delivery is NOT asynchronous and can be lost ACROSS a
  // switch; but each instance keeps enforcing it, so messages entirely
  // within one epoch stay master-first. We check functional liveness:
  // everything is delivered everywhere, exactly once.
  auto h = run_switched(stack_with<PriorityLayer>(), GetParam());
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(h->delivered_data(p).size(), 24u) << "member " << p;
  }
  EXPECT_TRUE(NoReplayProperty().holds(h->group.trace()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwitchedStacks, ::testing::Values(1, 2, 3, 4, 5));

TEST(SwitchConfigKnobs, NormalHoldThrottlesIdleTokenTraffic) {
  SwitchConfig slow;
  slow.normal_hold = 20 * kMillisecond;
  HybridConfig fast_cfg;
  HybridConfig slow_cfg;
  slow_cfg.sp = slow;

  GroupHarness fast(3, make_hybrid_total_order_factory(fast_cfg));
  fast.sim.run_for(2 * kSecond);
  GroupHarness held(3, make_hybrid_total_order_factory(slow_cfg));
  held.sim.run_for(2 * kSecond);

  const auto fast_hops = switch_layer_of(fast.group.stack(0)).stats().token_hops;
  const auto held_hops = switch_layer_of(held.group.stack(0)).stats().token_hops;
  EXPECT_LT(held_hops * 3, fast_hops)
      << "normal_hold should slow the idle NORMAL token substantially";
  // And a switch still works under the throttled token.
  switch_layer_of(held.group.stack(1)).request_switch();
  held.sim.run_for(5 * kSecond);
  EXPECT_EQ(switch_layer_of(held.group.stack(1)).epoch(), 1u);
}

}  // namespace
}  // namespace msw
