// ReliableLayer: delivery under loss, NACK/retransmission behaviour,
// heartbeat-driven tail recovery, ack-driven garbage collection.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "proto/reliable_layer.hpp"

namespace msw {
namespace {

using testing::GroupHarness;

std::vector<ReliableLayer*> g_layers;

LayerFactory reliable_only(ReliableConfig cfg = {}) {
  return [cfg](NodeId, const std::vector<NodeId>&) {
    auto layer = std::make_unique<ReliableLayer>(cfg);
    g_layers.push_back(layer.get());
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::move(layer));
    return layers;
  };
}

class ReliableTest : public ::testing::Test {
 protected:
  void SetUp() override { g_layers.clear(); }
};

TEST_F(ReliableTest, NoLossNoControlOverheadBeyondTimers) {
  GroupHarness h(3, reliable_only());
  for (int i = 0; i < 5; ++i) h.group.send(0, to_bytes("m"));
  h.sim.run_for(2 * kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 5u);
  }
  for (ReliableLayer* l : g_layers) {
    EXPECT_EQ(l->stats().nacks_sent, 0u);
    EXPECT_EQ(l->stats().retransmissions, 0u);
  }
}

TEST_F(ReliableTest, AllDeliveredUnderModerateLoss) {
  GroupHarness h(4, reliable_only(), testing::lossy_net(0.15), /*seed=*/21);
  for (std::size_t s = 0; s < 4; ++s) {
    for (int i = 0; i < 8; ++i) {
      h.sim.scheduler().at((i * 4 + s) * 9 * kMillisecond,
                           [&, s] { h.group.send(s, to_bytes("z")); });
    }
  }
  h.sim.run_for(15 * kSecond);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 32u) << "member " << p;
  }
  std::vector<std::uint32_t> ids;
  for (std::size_t i = 0; i < 4; ++i) ids.push_back(h.group.node(i).v);
  EXPECT_TRUE(ReliabilityProperty(ids).holds(h.group.trace()));
}

TEST_F(ReliableTest, LossTriggersNacksAndRetransmissions) {
  GroupHarness h(3, reliable_only(), testing::lossy_net(0.3), /*seed=*/5);
  for (int i = 0; i < 20; ++i) h.group.send(0, to_bytes("r" + std::to_string(i)));
  h.sim.run_for(20 * kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 20u);
  }
  std::uint64_t nacks = 0, retx = 0;
  for (ReliableLayer* l : g_layers) {
    nacks += l->stats().nacks_sent;
    retx += l->stats().retransmissions;
  }
  EXPECT_GT(nacks, 0u);
  EXPECT_GT(retx, 0u);
}

TEST_F(ReliableTest, TailLossRecoveredViaHeartbeat) {
  // Lose ONLY the final message's copies: no later data exposes the gap,
  // so recovery must come from the heartbeat.
  GroupHarness h(3, reliable_only());
  for (int i = 0; i < 3; ++i) h.group.send(0, to_bytes("ok" + std::to_string(i)));
  h.sim.run_for(kSecond);
  // Cut links, send the tail message, restore links after it is lost.
  h.net.set_link_up(h.group.node(0), h.group.node(1), false);
  h.net.set_link_up(h.group.node(0), h.group.node(2), false);
  h.group.send(0, to_bytes("tail"));
  h.sim.run_for(100 * kMillisecond);
  h.net.set_link_up(h.group.node(0), h.group.node(1), true);
  h.net.set_link_up(h.group.node(0), h.group.node(2), true);
  h.sim.run_for(5 * kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 4u) << "member " << p;
  }
}

TEST_F(ReliableTest, NoDuplicateDeliveries) {
  GroupHarness h(3, reliable_only(), testing::lossy_net(0.25), /*seed=*/9);
  for (int i = 0; i < 10; ++i) h.group.send(1, to_bytes("d" + std::to_string(i)));
  h.sim.run_for(15 * kSecond);
  EXPECT_TRUE(NoReplayProperty().holds(h.group.trace()));
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 10u);
  }
}

TEST_F(ReliableTest, GarbageCollectionShrinksBuffer) {
  ReliableConfig cfg;
  cfg.ack_interval = 50 * kMillisecond;
  GroupHarness h(3, reliable_only(cfg));
  for (int i = 0; i < 10; ++i) h.group.send(0, to_bytes("gc"));
  h.sim.run_for(2 * kSecond);
  // After everyone acked, the sender's retransmission buffer is empty.
  EXPECT_EQ(g_layers[0]->stats().buffered_copies, 0u);
}

TEST_F(ReliableTest, BufferRetainedUntilAllAck) {
  ReliableConfig cfg;
  cfg.ack_interval = 50 * kMillisecond;
  GroupHarness h(3, reliable_only(cfg));
  // Partition member 2 so it cannot ack.
  h.net.set_link_up(h.group.node(2), h.group.node(0), false);
  for (int i = 0; i < 4; ++i) h.group.send(0, to_bytes("hold"));
  h.sim.run_for(2 * kSecond);
  EXPECT_EQ(g_layers[0]->stats().buffered_copies, 4u);
  h.net.set_link_up(h.group.node(2), h.group.node(0), true);
  h.sim.run_for(5 * kSecond);
  EXPECT_EQ(g_layers[0]->stats().buffered_copies, 0u);
}

TEST_F(ReliableTest, CrashedMemberDoesNotStallGarbageCollection) {
  // Member 2 crashes permanently (all links cut, both directions). The
  // sender keeps multicasting; once member 2 has been silent past the
  // eviction horizon it stops counting toward the GC quorum, so the
  // retransmission buffer drains instead of growing one copy per send.
  ReliableConfig cfg;
  cfg.ack_interval = 50 * kMillisecond;
  cfg.eviction_horizon = 2 * kSecond;
  GroupHarness h(3, reliable_only(cfg));
  for (std::size_t a = 0; a < 3; ++a) {
    if (a == 2) continue;
    h.net.set_link_up(h.group.node(a), h.group.node(2), false);
    h.net.set_link_up(h.group.node(2), h.group.node(a), false);
  }
  // Steady traffic for 12 s: far more sends than fit any "still waiting for
  // the horizon" window.
  for (int i = 0; i < 120; ++i) {
    h.sim.scheduler().at(i * 100 * kMillisecond, [&] { h.group.send(0, to_bytes("s")); });
  }
  h.sim.run_for(14 * kSecond);
  // Without eviction all 120 copies would be pinned; with it the buffer
  // holds at most the few sends not yet acked by the live members.
  EXPECT_LE(g_layers[0]->stats().buffered_copies, 8u);
  EXPECT_GT(g_layers[0]->stats().members_evicted, 0u);
  // The live members still converged.
  EXPECT_EQ(h.delivered_data(1).size(), 120u);
}

TEST_F(ReliableTest, EvictionIsCountedLossAndReturningMemberResumes) {
  // Eviction is deliberate, counted loss-of-retransmittability: once a
  // crashed member's absence let GC collect the copies, a late return
  // cannot recover them — but new traffic flows to it normally and the
  // group does not wedge or crash on its stale NACKs.
  ReliableConfig cfg;
  cfg.ack_interval = 50 * kMillisecond;
  cfg.eviction_horizon = 2 * kSecond;
  GroupHarness h(3, reliable_only(cfg));
  h.net.set_link_up(h.group.node(0), h.group.node(2), false);
  h.net.set_link_up(h.group.node(2), h.group.node(0), false);
  for (int i = 0; i < 6; ++i) h.group.send(0, to_bytes("back" + std::to_string(i)));
  h.sim.run_for(4 * kSecond);  // member 2 evicted; copies GC'd on member 1's acks
  EXPECT_GT(g_layers[0]->stats().members_evicted, 0u);
  EXPECT_EQ(h.delivered_data(2).size(), 0u);
  EXPECT_EQ(g_layers[0]->stats().buffered_copies, 0u);
  h.net.set_link_up(h.group.node(0), h.group.node(2), true);
  h.net.set_link_up(h.group.node(2), h.group.node(0), true);
  h.group.send(0, to_bytes("resume"));
  h.sim.run_for(6 * kSecond);
  // The old six are gone for member 2 (counted loss); the new message
  // arrives, and nothing deadlocks despite its NACKs for collected seqs.
  EXPECT_EQ(h.delivered_data(2).size(), 1u);
  // Member 2 counts for GC again, and its contiguous ack is stuck at 0
  // (the collected gap is unfillable), so exactly the resume copy stays
  // buffered — back-pressure works, but bounded by the live traffic.
  EXPECT_EQ(g_layers[0]->stats().buffered_copies, 1u);
}

TEST_F(ReliableTest, FirstMessageAfterIdlePeriodSurvivesLoss) {
  // A fully idle group exchanges no frames (no data -> no heartbeats, and
  // the p2p ack path has no origins to ack), so past the eviction horizon
  // every healthy member evicts every other. The first multicast after the
  // quiet period must NOT face an empty GC quorum: here its only copy
  // toward member 1 is lost on the wire, and recovery via heartbeat + NACK
  // takes far longer than the sender's next ack tick. If eviction were not
  // reversed at burst start, the sender would GC the copy immediately and
  // the message would be silently unrecoverable.
  ReliableConfig cfg;
  cfg.eviction_horizon = 2 * kSecond;
  GroupHarness h(3, reliable_only(cfg));
  h.sim.run_for(5 * kSecond);  // idle well past the horizon
  EXPECT_GT(g_layers[0]->stats().members_evicted, 0u);
  h.net.set_link_up(h.group.node(0), h.group.node(1), false);
  h.group.send(0, to_bytes("after-idle"));
  h.sim.run_for(500 * kMillisecond);  // many ack ticks: GC had every chance
  h.net.set_link_up(h.group.node(0), h.group.node(1), true);
  h.sim.run_for(5 * kSecond);
  EXPECT_EQ(h.delivered_data(1).size(), 1u);
  EXPECT_EQ(h.delivered_data(2).size(), 1u);
}

TEST_F(ReliableTest, SentBufferCapEvictsOldest) {
  // With eviction disabled and a partitioned member, the hard cap is the
  // back-stop: the buffer never exceeds max_sent_buffer and evictions are
  // counted.
  ReliableConfig cfg;
  cfg.ack_interval = 50 * kMillisecond;
  cfg.eviction_horizon = 0;  // quorum never shrinks
  cfg.max_sent_buffer = 16;
  GroupHarness h(3, reliable_only(cfg));
  h.net.set_link_up(h.group.node(2), h.group.node(0), false);  // member 2 can't ack
  for (int i = 0; i < 40; ++i) h.group.send(0, to_bytes("cap"));
  h.sim.run_for(3 * kSecond);
  EXPECT_LE(g_layers[0]->stats().buffered_copies, 16u);
  EXPECT_GE(g_layers[0]->stats().buffer_evictions, 24u);
}

TEST_F(ReliableTest, RangeEncodingBeatsLegacyOnWideGaps) {
  // Same deterministic scenario under both encodings: a one-way outage
  // opens a wide gap at member 1, which then NACKs it. The range encoding
  // must spend far fewer control bytes than one u64 per missing sequence.
  const auto run = [](bool legacy) {
    g_layers.clear();
    ReliableConfig cfg;
    cfg.legacy_control = legacy;
    GroupHarness h(3, reliable_only(cfg));
    h.net.set_link_up(h.group.node(0), h.group.node(1), false);
    for (int i = 0; i < 60; ++i) h.group.send(0, to_bytes("w"));
    h.sim.run_for(kSecond);
    h.net.set_link_up(h.group.node(0), h.group.node(1), true);
    h.sim.run_for(5 * kSecond);
    EXPECT_EQ(h.delivered_data(1).size(), 60u) << (legacy ? "legacy" : "range");
    return g_layers[1]->stats().nack_bytes_sent;
  };
  const std::uint64_t range_bytes = run(false);
  const std::uint64_t legacy_bytes = run(true);
  EXPECT_GT(range_bytes, 0u);
  EXPECT_LT(range_bytes * 4, legacy_bytes);
}

TEST_F(ReliableTest, FirstBatchAfterIdlePeriodSurvivesLossBatched) {
  // The post-idle eviction re-admission fix, exercised through the batched
  // data plane: after an idle period every healthy member is provisionally
  // evicted; the first *batched* multicast afterwards must re-admit them
  // before GC can collect the burst's copies, exactly like the scalar
  // send path.
  ReliableConfig cfg;
  cfg.eviction_horizon = 2 * kSecond;
  GroupHarness h(3, reliable_only(cfg));
  h.group.set_batching(true);
  h.sim.run_for(5 * kSecond);  // idle well past the horizon
  EXPECT_GT(g_layers[0]->stats().members_evicted, 0u);
  h.net.set_link_up(h.group.node(0), h.group.node(1), false);
  std::vector<Bytes> burst;
  for (int i = 0; i < 4; ++i) burst.push_back(to_bytes("b" + std::to_string(i)));
  h.group.send_batch(0, std::move(burst));
  h.sim.run_for(500 * kMillisecond);  // many ack ticks: GC had every chance
  h.net.set_link_up(h.group.node(0), h.group.node(1), true);
  h.sim.run_for(5 * kSecond);
  EXPECT_EQ(h.delivered_data(1).size(), 4u);
  EXPECT_EQ(h.delivered_data(2).size(), 4u);
}

TEST_F(ReliableTest, OversizedAckVectorSplitsAcrossFramesBatched) {
  // The ack-vector frame split under the batched path: with the per-frame
  // entry cap lowered below the origin count, one ack tick must emit
  // several frames whose union is the same vector — receivers merge by
  // monotone max, so delivery and GC behave identically to the uncapped
  // run, just with more frames on the wire.
  const auto run = [](std::size_t cap) {
    g_layers.clear();
    ReliableConfig cfg;
    cfg.peer_assist = true;
    cfg.ack_interval = 50 * kMillisecond;
    cfg.max_ack_entries_per_frame = cap;
    GroupHarness h(6, reliable_only(cfg), testing::lossy_net(0.1), /*seed=*/31);
    h.group.set_batching(true);
    for (std::size_t s = 0; s < 6; ++s) {
      std::vector<Bytes> burst;
      for (int i = 0; i < 5; ++i) burst.push_back(to_bytes("s" + std::to_string(i)));
      h.group.send_batch(s, std::move(burst));
    }
    h.sim.run_for(15 * kSecond);
    std::uint64_t frames = 0, entries = 0, buffered = 0;
    for (std::size_t p = 0; p < 6; ++p) {
      EXPECT_EQ(h.delivered_data(p).size(), 30u) << "cap " << cap << " member " << p;
      frames += g_layers[p]->stats().ack_frames_sent;
      entries += g_layers[p]->stats().ack_entries_sent;
      buffered += g_layers[p]->stats().buffered_copies;
    }
    EXPECT_EQ(buffered, 0u) << "stability (GC) must still converge with cap " << cap;
    return std::make_pair(frames, entries);
  };
  const auto [split_frames, split_entries] = run(2);
  const auto [whole_frames, whole_entries] = run(0);
  // Capped at 2 entries, a 6-origin full snapshot needs 3 frames instead
  // of 1, so the capped run pays measurably more frames per entry. (Exact
  // entry equality is not asserted: extra control frames perturb network
  // timing, which can shift what the delta ticks include.)
  EXPECT_GT(split_entries, 0u);
  EXPECT_GT(whole_entries, 0u);
  EXPECT_GT(split_frames * whole_entries, whole_frames * split_entries);
}

TEST_F(ReliableTest, AsymmetricPartitionHealed) {
  GroupHarness h(3, reliable_only());
  // Member 1 misses everything from 0 for a while (one-way outage).
  h.net.set_link_up(h.group.node(0), h.group.node(1), false);
  for (int i = 0; i < 6; ++i) h.group.send(0, to_bytes("p" + std::to_string(i)));
  h.sim.run_for(kSecond);
  EXPECT_EQ(h.delivered_data(1).size(), 0u);
  h.net.set_link_up(h.group.node(0), h.group.node(1), true);
  h.sim.run_for(5 * kSecond);
  EXPECT_EQ(h.delivered_data(1).size(), 6u);
}

}  // namespace
}  // namespace msw
