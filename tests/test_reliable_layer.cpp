// ReliableLayer: delivery under loss, NACK/retransmission behaviour,
// heartbeat-driven tail recovery, ack-driven garbage collection.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "proto/reliable_layer.hpp"

namespace msw {
namespace {

using testing::GroupHarness;

std::vector<ReliableLayer*> g_layers;

LayerFactory reliable_only(ReliableConfig cfg = {}) {
  return [cfg](NodeId, const std::vector<NodeId>&) {
    auto layer = std::make_unique<ReliableLayer>(cfg);
    g_layers.push_back(layer.get());
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::move(layer));
    return layers;
  };
}

class ReliableTest : public ::testing::Test {
 protected:
  void SetUp() override { g_layers.clear(); }
};

TEST_F(ReliableTest, NoLossNoControlOverheadBeyondTimers) {
  GroupHarness h(3, reliable_only());
  for (int i = 0; i < 5; ++i) h.group.send(0, to_bytes("m"));
  h.sim.run_for(2 * kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 5u);
  }
  for (ReliableLayer* l : g_layers) {
    EXPECT_EQ(l->stats().nacks_sent, 0u);
    EXPECT_EQ(l->stats().retransmissions, 0u);
  }
}

TEST_F(ReliableTest, AllDeliveredUnderModerateLoss) {
  GroupHarness h(4, reliable_only(), testing::lossy_net(0.15), /*seed=*/21);
  for (std::size_t s = 0; s < 4; ++s) {
    for (int i = 0; i < 8; ++i) {
      h.sim.scheduler().at((i * 4 + s) * 9 * kMillisecond,
                           [&, s] { h.group.send(s, to_bytes("z")); });
    }
  }
  h.sim.run_for(15 * kSecond);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 32u) << "member " << p;
  }
  std::vector<std::uint32_t> ids;
  for (std::size_t i = 0; i < 4; ++i) ids.push_back(h.group.node(i).v);
  EXPECT_TRUE(ReliabilityProperty(ids).holds(h.group.trace()));
}

TEST_F(ReliableTest, LossTriggersNacksAndRetransmissions) {
  GroupHarness h(3, reliable_only(), testing::lossy_net(0.3), /*seed=*/5);
  for (int i = 0; i < 20; ++i) h.group.send(0, to_bytes("r" + std::to_string(i)));
  h.sim.run_for(20 * kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 20u);
  }
  std::uint64_t nacks = 0, retx = 0;
  for (ReliableLayer* l : g_layers) {
    nacks += l->stats().nacks_sent;
    retx += l->stats().retransmissions;
  }
  EXPECT_GT(nacks, 0u);
  EXPECT_GT(retx, 0u);
}

TEST_F(ReliableTest, TailLossRecoveredViaHeartbeat) {
  // Lose ONLY the final message's copies: no later data exposes the gap,
  // so recovery must come from the heartbeat.
  GroupHarness h(3, reliable_only());
  for (int i = 0; i < 3; ++i) h.group.send(0, to_bytes("ok" + std::to_string(i)));
  h.sim.run_for(kSecond);
  // Cut links, send the tail message, restore links after it is lost.
  h.net.set_link_up(h.group.node(0), h.group.node(1), false);
  h.net.set_link_up(h.group.node(0), h.group.node(2), false);
  h.group.send(0, to_bytes("tail"));
  h.sim.run_for(100 * kMillisecond);
  h.net.set_link_up(h.group.node(0), h.group.node(1), true);
  h.net.set_link_up(h.group.node(0), h.group.node(2), true);
  h.sim.run_for(5 * kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 4u) << "member " << p;
  }
}

TEST_F(ReliableTest, NoDuplicateDeliveries) {
  GroupHarness h(3, reliable_only(), testing::lossy_net(0.25), /*seed=*/9);
  for (int i = 0; i < 10; ++i) h.group.send(1, to_bytes("d" + std::to_string(i)));
  h.sim.run_for(15 * kSecond);
  EXPECT_TRUE(NoReplayProperty().holds(h.group.trace()));
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 10u);
  }
}

TEST_F(ReliableTest, GarbageCollectionShrinksBuffer) {
  ReliableConfig cfg;
  cfg.ack_interval = 50 * kMillisecond;
  GroupHarness h(3, reliable_only(cfg));
  for (int i = 0; i < 10; ++i) h.group.send(0, to_bytes("gc"));
  h.sim.run_for(2 * kSecond);
  // After everyone acked, the sender's retransmission buffer is empty.
  EXPECT_EQ(g_layers[0]->stats().buffered_copies, 0u);
}

TEST_F(ReliableTest, BufferRetainedUntilAllAck) {
  ReliableConfig cfg;
  cfg.ack_interval = 50 * kMillisecond;
  GroupHarness h(3, reliable_only(cfg));
  // Partition member 2 so it cannot ack.
  h.net.set_link_up(h.group.node(2), h.group.node(0), false);
  for (int i = 0; i < 4; ++i) h.group.send(0, to_bytes("hold"));
  h.sim.run_for(2 * kSecond);
  EXPECT_EQ(g_layers[0]->stats().buffered_copies, 4u);
  h.net.set_link_up(h.group.node(2), h.group.node(0), true);
  h.sim.run_for(5 * kSecond);
  EXPECT_EQ(g_layers[0]->stats().buffered_copies, 0u);
}

TEST_F(ReliableTest, AsymmetricPartitionHealed) {
  GroupHarness h(3, reliable_only());
  // Member 1 misses everything from 0 for a while (one-way outage).
  h.net.set_link_up(h.group.node(0), h.group.node(1), false);
  for (int i = 0; i < 6; ++i) h.group.send(0, to_bytes("p" + std::to_string(i)));
  h.sim.run_for(kSecond);
  EXPECT_EQ(h.delivered_data(1).size(), 0u);
  h.net.set_link_up(h.group.node(0), h.group.node(1), true);
  h.sim.run_for(5 * kSecond);
  EXPECT_EQ(h.delivered_data(1).size(), 6u);
}

}  // namespace
}  // namespace msw
