// The trace relations of sections 5-6: each relation generates only traces
// genuinely related to the input, and the helper predicates behave.
#include <gtest/gtest.h>

#include <algorithm>

#include "trace/relations.hpp"

namespace msw {
namespace {

Trace sample_trace() {
  return {send_ev(0, 0, to_bytes("a")), deliver_ev(0, 0, 0, to_bytes("a")),
          deliver_ev(1, 0, 0, to_bytes("a")), send_ev(1, 0, to_bytes("b")),
          deliver_ev(0, 1, 0, to_bytes("b")), deliver_ev(1, 1, 0, to_bytes("b"))};
}

bool is_prefix(const Trace& pre, const Trace& full) {
  if (pre.size() > full.size()) return false;
  return std::equal(pre.begin(), pre.end(), full.begin());
}

TEST(PrefixRelation, GeneratesOnlyPrefixes) {
  Rng rng(1);
  const Trace tr = sample_trace();
  for (const Trace& above : PrefixRelation().relate(tr, rng, 16)) {
    EXPECT_TRUE(is_prefix(above, tr));
    EXPECT_LT(above.size(), tr.size());  // proper prefixes
  }
}

TEST(PrefixRelation, EnumeratesAllWhenSmall) {
  Rng rng(1);
  const Trace tr = sample_trace();
  const auto all = PrefixRelation().relate(tr, rng, 100);
  EXPECT_EQ(all.size(), tr.size());  // lengths 0..n-1
}

TEST(AsyncSwapRelation, SwapsOnlyDifferentProcesses) {
  Rng rng(2);
  const Trace tr = sample_trace();
  for (const Trace& above : AsyncSwapRelation().relate(tr, rng, 32)) {
    ASSERT_EQ(above.size(), tr.size());
    // Per-process subsequences must be untouched.
    for (std::uint32_t p : processes_of(tr)) {
      std::vector<TraceEvent> before, after;
      for (const auto& e : tr) {
        if (e.process == p) before.push_back(e);
      }
      for (const auto& e : above) {
        if (e.process == p) after.push_back(e);
      }
      EXPECT_EQ(before, after) << "process " << p << " subsequence changed";
    }
  }
}

TEST(AsyncSwapRelation, ProducesAtLeastOneVariant) {
  Rng rng(3);
  EXPECT_FALSE(AsyncSwapRelation().relate(sample_trace(), rng, 8).empty());
}

TEST(AsyncSwapRelation, SingleProcessTraceHasNoVariants) {
  Rng rng(3);
  const Trace tr = {send_ev(0, 0), deliver_ev(0, 0, 0), send_ev(0, 1)};
  EXPECT_TRUE(AsyncSwapRelation().relate(tr, rng, 8).empty());
}

TEST(AppendSendsRelation, AppendsOnlySends) {
  Rng rng(4);
  const Trace tr = sample_trace();
  for (const Trace& above : AppendSendsRelation().relate(tr, rng, 8)) {
    ASSERT_GT(above.size(), tr.size());
    EXPECT_TRUE(is_prefix(tr, above));
    for (std::size_t i = tr.size(); i < above.size(); ++i) {
      EXPECT_TRUE(above[i].is_send());
    }
    EXPECT_TRUE(well_formed(above)) << "appended sends must use fresh ids";
  }
}

TEST(DelaySwapRelation, SwapsOnlySameProcessSendDeliverPairs) {
  Rng rng(5);
  const Trace tr = sample_trace();
  for (const Trace& above : DelaySwapRelation().relate(tr, rng, 32)) {
    ASSERT_EQ(above.size(), tr.size());
    // Multiset of events unchanged.
    auto a = tr;
    auto b = above;
    auto cmp = [](const TraceEvent& x, const TraceEvent& y) {
      return std::tie(x.kind, x.process, x.msg) < std::tie(y.kind, y.process, y.msg);
    };
    std::sort(a.begin(), a.end(), cmp);
    std::sort(b.begin(), b.end(), cmp);
    EXPECT_EQ(a, b);
    // Deliver/Deliver order at each process unchanged (only Send<->Deliver
    // pairs may swap).
    for (std::uint32_t p : processes_of(tr)) {
      std::vector<MsgId> before, after;
      for (const auto& e : tr) {
        if (e.process == p && e.is_deliver()) before.push_back(e.msg);
      }
      for (const auto& e : above) {
        if (e.process == p && e.is_deliver()) after.push_back(e.msg);
      }
      EXPECT_EQ(before, after);
    }
  }
}

TEST(DelaySwapRelation, FindsAdjacentPair) {
  Rng rng(6);
  // Deliver(0,own) immediately followed by Send(0,...): swappable.
  const Trace tr = {send_ev(0, 0), deliver_ev(0, 0, 0), send_ev(0, 1)};
  const auto variants = DelaySwapRelation().relate(tr, rng, 8);
  EXPECT_FALSE(variants.empty());
}

TEST(RemoveMessagesRelation, RemovesAllEventsOfVictims) {
  Rng rng(7);
  const Trace tr = sample_trace();
  const auto variants = RemoveMessagesRelation().relate(tr, rng, 32);
  EXPECT_FALSE(variants.empty());
  for (const Trace& above : variants) {
    // Surviving messages keep all their events, in order.
    const auto kept = messages_of(above);
    for (const MsgId& m : kept) {
      std::vector<TraceEvent> before, after;
      for (const auto& e : tr) {
        if (e.msg == m) before.push_back(e);
      }
      for (const auto& e : above) {
        if (e.msg == m) after.push_back(e);
      }
      EXPECT_EQ(before, after);
    }
    EXPECT_LT(above.size(), tr.size() + 1);
  }
}

TEST(RemoveMessagesRelation, SingleRemovalsComeFirst) {
  Rng rng(8);
  const Trace tr = sample_trace();  // 2 messages
  const auto variants = RemoveMessagesRelation().relate(tr, rng, 2);
  ASSERT_EQ(variants.size(), 2u);
  EXPECT_EQ(messages_of(variants[0]).size(), 1u);
  EXPECT_EQ(messages_of(variants[1]).size(), 1u);
}

TEST(Concatenate, PreservesOrder) {
  const Trace a = {send_ev(0, 0)};
  const Trace b = {send_ev(1, 0)};
  const Trace c = concatenate(a, b);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0].msg.sender, 0u);
  EXPECT_EQ(c[1].msg.sender, 1u);
}

TEST(MessagesDisjoint, DetectsOverlap) {
  const Trace a = {send_ev(0, 0)};
  const Trace b = {deliver_ev(2, 0, 0)};
  const Trace c = {send_ev(0, 1)};
  EXPECT_FALSE(messages_disjoint(a, b));
  EXPECT_TRUE(messages_disjoint(a, c));
}

TEST(StandardRelations, FiveInTableOrder) {
  const auto rels = standard_relations();
  ASSERT_EQ(rels.size(), 5u);
  EXPECT_EQ(rels[0]->name(), "Safety");
  EXPECT_EQ(rels[1]->name(), "Asynchronous");
  EXPECT_EQ(rels[2]->name(), "Send Enabled");
  EXPECT_EQ(rels[3]->name(), "Delayable");
  EXPECT_EQ(rels[4]->name(), "Memoryless");
}

}  // namespace
}  // namespace msw
