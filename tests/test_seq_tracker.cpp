// SeqTracker: contiguity, duplicates, gap reporting.
#include <gtest/gtest.h>

#include "util/seq_tracker.hpp"

namespace msw {
namespace {

TEST(SeqTracker, InOrderAdvancesContiguous) {
  SeqTracker t;
  for (std::uint64_t s = 0; s < 10; ++s) {
    EXPECT_TRUE(t.insert(s));
    EXPECT_EQ(t.contiguous(), s + 1);
  }
  EXPECT_FALSE(t.has_gaps());
}

TEST(SeqTracker, DuplicateRejected) {
  SeqTracker t;
  EXPECT_TRUE(t.insert(0));
  EXPECT_FALSE(t.insert(0));
  EXPECT_TRUE(t.insert(5));
  EXPECT_FALSE(t.insert(5));
}

TEST(SeqTracker, GapThenFill) {
  SeqTracker t;
  EXPECT_TRUE(t.insert(0));
  EXPECT_TRUE(t.insert(2));
  EXPECT_EQ(t.contiguous(), 1u);
  EXPECT_TRUE(t.has_gaps());
  EXPECT_TRUE(t.insert(1));
  EXPECT_EQ(t.contiguous(), 3u);
  EXPECT_FALSE(t.has_gaps());
}

TEST(SeqTracker, MissingBelow) {
  SeqTracker t;
  t.insert(0);
  t.insert(3);
  t.insert(5);
  const auto missing = t.missing_below(6, 10);
  EXPECT_EQ(missing, (std::vector<std::uint64_t>{1, 2, 4}));
}

TEST(SeqTracker, MissingBelowRespectsLimit) {
  SeqTracker t;
  t.insert(10);
  const auto missing = t.missing_below(11, 3);
  EXPECT_EQ(missing, (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(SeqTracker, SeenQueries) {
  SeqTracker t;
  t.insert(0);
  t.insert(2);
  EXPECT_TRUE(t.seen(0));
  EXPECT_FALSE(t.seen(1));
  EXPECT_TRUE(t.seen(2));
  EXPECT_FALSE(t.seen(3));
}

TEST(SeqTracker, LongOutOfOrderRun) {
  SeqTracker t;
  // Insert 0..99 in reverse; contiguity resolves only at the end.
  for (std::uint64_t s = 100; s-- > 1;) EXPECT_TRUE(t.insert(s));
  EXPECT_EQ(t.contiguous(), 0u);
  EXPECT_TRUE(t.insert(0));
  EXPECT_EQ(t.contiguous(), 100u);
  EXPECT_EQ(t.sparse_count(), 0u);
}

TEST(SeqTracker, MissingRangesEnumeratesGaps) {
  SeqTracker t;
  t.insert(0);
  t.insert(3);
  t.insert(4);
  t.insert(8);
  const auto ranges = t.missing_ranges(10, 100);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0], (SeqRange{1, 3}));
  EXPECT_EQ(ranges[1], (SeqRange{5, 8}));
  EXPECT_EQ(ranges[2], (SeqRange{9, 10}));
}

TEST(SeqTracker, MissingRangesCoversTailBeyondSparse) {
  // The tail [max(sparse)+1, bound) must come back as one range even when
  // the bound is far past everything seen (heartbeat horizon after a long
  // partition).
  SeqTracker t;
  t.insert(0);
  t.insert(5);
  const auto ranges = t.missing_ranges(1'000'000, 1'000'000);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0], (SeqRange{1, 5}));
  EXPECT_EQ(ranges[1], (SeqRange{6, 1'000'000}));
}

TEST(SeqTracker, MissingRangesRespectsSeqBudget) {
  SeqTracker t;
  t.insert(0);
  t.insert(10);
  // Budget of 5 sequences: [1,6) truncated from [1,10).
  const auto ranges = t.missing_ranges(20, 5);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (SeqRange{1, 6}));
}

TEST(SeqTracker, MissingRangesBudgetSpansRanges) {
  SeqTracker t;
  t.insert(0);
  t.insert(2);  // gap {1}
  t.insert(9);  // gap [3,9)
  const auto ranges = t.missing_ranges(10, 4);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0], (SeqRange{1, 2}));
  EXPECT_EQ(ranges[1], (SeqRange{3, 6}));  // 3 of budget 4 left after {1}
}

TEST(SeqTracker, AdjacentInsertsCoalesceRuns) {
  SeqTracker t;
  t.insert(5);
  t.insert(7);
  EXPECT_EQ(t.sparse_count(), 2u);
  t.insert(6);  // bridges [5,6) and [7,8) into [5,8)
  EXPECT_EQ(t.sparse_count(), 3u);
  const auto ranges = t.missing_ranges(10, 100);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0], (SeqRange{0, 5}));
  EXPECT_EQ(ranges[1], (SeqRange{8, 10}));
  // Filling the prefix absorbs the whole run into contiguous.
  for (std::uint64_t s = 0; s < 5; ++s) EXPECT_TRUE(t.insert(s));
  EXPECT_EQ(t.contiguous(), 8u);
  EXPECT_FALSE(t.has_gaps());
}

TEST(SeqTracker, DuplicatesInsideRunsRejected) {
  SeqTracker t;
  for (std::uint64_t s : {4u, 5u, 6u, 10u}) EXPECT_TRUE(t.insert(s));
  for (std::uint64_t s : {4u, 5u, 6u, 10u}) EXPECT_FALSE(t.insert(s)) << s;
  EXPECT_FALSE(t.seen(3));
  EXPECT_FALSE(t.seen(7));
  EXPECT_TRUE(t.seen(5));
}

TEST(SeqTracker, HugeGapStaysCheap) {
  // 10^9-wide gap with a handful of sparse arrivals: enumeration must be
  // proportional to the runs, not the gap (this test would time out under
  // the old per-sequence scan if the budget were unlimited).
  SeqTracker t;
  t.insert(1'000'000'000);
  t.insert(2'000'000'000);
  const auto ranges = t.missing_ranges(3'000'000'000, ~std::uint64_t{0});
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0], (SeqRange{0, 1'000'000'000}));
  EXPECT_EQ(ranges[1], (SeqRange{1'000'000'001, 2'000'000'000}));
  EXPECT_EQ(ranges[2], (SeqRange{2'000'000'001, 3'000'000'000}));
}

TEST(MissingRangesIn, EnumeratesReorderMapGaps) {
  // The sequencer/token reorder buffers are ordered maps keyed by gseq;
  // gap NACK enumeration walks the keys instead of probing every seq.
  std::map<std::uint64_t, int> held{{3, 0}, {4, 0}, {7, 0}};
  const auto ranges = missing_ranges_in(held, 1, 10, 100);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0], (SeqRange{1, 3}));
  EXPECT_EQ(ranges[1], (SeqRange{5, 7}));
  EXPECT_EQ(ranges[2], (SeqRange{8, 10}));
}

TEST(MissingRangesIn, EmptyMapIsOneRange) {
  std::map<std::uint64_t, int> held;
  const auto ranges = missing_ranges_in(held, 5, 1'000'000, 64);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (SeqRange{5, 69}));  // budget-truncated
}

TEST(MissingRangesIn, IgnoresKeysOutsideWindow) {
  std::map<std::uint64_t, int> held{{1, 0}, {5, 0}, {50, 0}};
  const auto ranges = missing_ranges_in(held, 3, 10, 100);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0], (SeqRange{3, 5}));
  EXPECT_EQ(ranges[1], (SeqRange{6, 10}));
}

}  // namespace
}  // namespace msw
