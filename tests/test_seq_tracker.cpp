// SeqTracker: contiguity, duplicates, gap reporting.
#include <gtest/gtest.h>

#include "util/seq_tracker.hpp"

namespace msw {
namespace {

TEST(SeqTracker, InOrderAdvancesContiguous) {
  SeqTracker t;
  for (std::uint64_t s = 0; s < 10; ++s) {
    EXPECT_TRUE(t.insert(s));
    EXPECT_EQ(t.contiguous(), s + 1);
  }
  EXPECT_FALSE(t.has_gaps());
}

TEST(SeqTracker, DuplicateRejected) {
  SeqTracker t;
  EXPECT_TRUE(t.insert(0));
  EXPECT_FALSE(t.insert(0));
  EXPECT_TRUE(t.insert(5));
  EXPECT_FALSE(t.insert(5));
}

TEST(SeqTracker, GapThenFill) {
  SeqTracker t;
  EXPECT_TRUE(t.insert(0));
  EXPECT_TRUE(t.insert(2));
  EXPECT_EQ(t.contiguous(), 1u);
  EXPECT_TRUE(t.has_gaps());
  EXPECT_TRUE(t.insert(1));
  EXPECT_EQ(t.contiguous(), 3u);
  EXPECT_FALSE(t.has_gaps());
}

TEST(SeqTracker, MissingBelow) {
  SeqTracker t;
  t.insert(0);
  t.insert(3);
  t.insert(5);
  const auto missing = t.missing_below(6, 10);
  EXPECT_EQ(missing, (std::vector<std::uint64_t>{1, 2, 4}));
}

TEST(SeqTracker, MissingBelowRespectsLimit) {
  SeqTracker t;
  t.insert(10);
  const auto missing = t.missing_below(11, 3);
  EXPECT_EQ(missing, (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(SeqTracker, SeenQueries) {
  SeqTracker t;
  t.insert(0);
  t.insert(2);
  EXPECT_TRUE(t.seen(0));
  EXPECT_FALSE(t.seen(1));
  EXPECT_TRUE(t.seen(2));
  EXPECT_FALSE(t.seen(3));
}

TEST(SeqTracker, LongOutOfOrderRun) {
  SeqTracker t;
  // Insert 0..99 in reverse; contiguity resolves only at the end.
  for (std::uint64_t s = 100; s-- > 1;) EXPECT_TRUE(t.insert(s));
  EXPECT_EQ(t.contiguous(), 0u);
  EXPECT_TRUE(t.insert(0));
  EXPECT_EQ(t.contiguous(), 100u);
  EXPECT_EQ(t.sparse_count(), 0u);
}

}  // namespace
}  // namespace msw
