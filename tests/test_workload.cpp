// Workload harness and the statistical Summary helper.
#include <gtest/gtest.h>

#include "harness/workload.hpp"
#include "helpers.hpp"
#include "switch/hybrid.hpp"

namespace msw {
namespace {

TEST(Summary, BasicStatistics) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.percentile(50), 0.0);
}

TEST(Summary, PercentileAfterIncrementalAdds) {
  Summary s;
  s.add(10);
  EXPECT_DOUBLE_EQ(s.percentile(50), 10.0);
  s.add(20);
  s.add(30);
  EXPECT_DOUBLE_EQ(s.percentile(50), 20.0);
}

TEST(Summary, PercentileInterpolatesBetweenOrderStatistics) {
  // Quantile at fractional rank (n-1)p/100, linearly interpolated — not
  // stepped to a single sample like the nearest-rank estimator.
  Summary s;
  s.add(10);
  s.add(20);
  EXPECT_DOUBLE_EQ(s.percentile(50), 15.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 12.5);
  EXPECT_DOUBLE_EQ(s.percentile_nearest(50), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile_nearest(75), 20.0);

  Summary q;
  for (double v : {1.0, 2.0, 3.0, 4.0}) q.add(v);
  EXPECT_DOUBLE_EQ(q.percentile(50), 2.5);
}

TEST(Summary, P99InterpolatesInsteadOfSnappingToMax) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  // rank = 0.99 * 99 = 98.01 -> 99 + 0.01 * (100 - 99).
  EXPECT_NEAR(s.p99(), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(s.percentile_nearest(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(TraceLatency, ComputesPerDeliveryLatency) {
  Trace tr;
  TraceEvent s = send_ev(0, 0);
  s.time = 1000;
  TraceEvent d1 = deliver_ev(0, 0, 0);
  d1.time = 3000;
  TraceEvent d2 = deliver_ev(1, 0, 0);
  d2.time = 5000;
  tr = {s, d1, d2};
  const auto tl = trace_latency(tr, 0, 10'000, 2);
  ASSERT_EQ(tl.latency_ms.count(), 2u);
  EXPECT_DOUBLE_EQ(tl.latency_ms.min(), 2.0);
  EXPECT_DOUBLE_EQ(tl.latency_ms.max(), 4.0);
  EXPECT_EQ(tl.missing_deliveries, 0u);
}

TEST(TraceLatency, WindowExcludesEarlySends) {
  Trace tr;
  TraceEvent s = send_ev(0, 0);
  s.time = 100;  // before the window
  TraceEvent d = deliver_ev(1, 0, 0);
  d.time = 200;
  tr = {s, d};
  const auto tl = trace_latency(tr, 1000, 10'000, 2);
  EXPECT_EQ(tl.latency_ms.count(), 0u);
}

TEST(TraceLatency, CountsMissingDeliveries) {
  Trace tr;
  TraceEvent s = send_ev(0, 0);
  s.time = 1000;
  TraceEvent d = deliver_ev(0, 0, 0);
  d.time = 2000;
  tr = {s, d};
  const auto tl = trace_latency(tr, 0, 10'000, 3);
  EXPECT_EQ(tl.missing_deliveries, 2u);
}

TEST(Workload, DrivesConfiguredLoad) {
  Simulation sim(5);
  Network net(sim.scheduler(), sim.fork_rng(), testing::era_net());
  Group group(sim, net, 6, make_sequencer_factory());
  group.start();

  WorkloadConfig cfg;
  cfg.senders = 3;
  cfg.rate_per_sender = 50;
  cfg.duration = 2 * kSecond;
  cfg.warmup = 200 * kMillisecond;
  cfg.drain = kSecond;
  const auto res = run_workload(sim, group, cfg);

  EXPECT_NEAR(static_cast<double>(res.sent), 300.0, 6.0);  // 3 x 50/s x 2s
  EXPECT_EQ(res.delivered, res.sent * 6);                  // everyone gets all
  EXPECT_EQ(res.missing_deliveries, 0u);
  EXPECT_GT(res.latency_ms.count(), 0u);
  EXPECT_GT(res.latency_ms.mean(), 0.0);
}

TEST(Workload, LatencyReflectsProtocolCost) {
  // Token latency at a single sender must exceed two network hops.
  Simulation sim(5);
  Network net(sim.scheduler(), sim.fork_rng(), testing::era_net());
  Group group(sim, net, 10, make_token_factory());
  group.start();
  WorkloadConfig cfg;
  cfg.senders = 1;
  cfg.duration = 2 * kSecond;
  const auto res = run_workload(sim, group, cfg);
  EXPECT_EQ(res.missing_deliveries, 0u);
  EXPECT_GT(res.latency_ms.mean(), 2.0);
}

}  // namespace
}  // namespace msw
