// End-to-end determinism: the whole stack — scheduler tie-breaking, RNG
// forking, network jitter/loss, protocol timers, SP token rotation — must
// reproduce bit-identical traces for a given seed. Every experiment in
// EXPERIMENTS.md rests on this.
#include <gtest/gtest.h>

#include "harness/workload.hpp"
#include "helpers.hpp"
#include "net/fault.hpp"
#include "switch/hybrid.hpp"
#include "trace/trace.hpp"

namespace msw {
namespace {

using testing::GroupHarness;

Trace run_scenario(std::uint64_t seed) {
  GroupHarness h(5, make_hybrid_total_order_factory(), testing::lossy_net(0.1), seed);
  Rng rng(seed + 1);
  for (int k = 0; k < 30; ++k) {
    const std::size_t sender = rng.index(5);
    h.sim.scheduler().at(static_cast<Time>(rng.below(800)) * kMillisecond, [&h, sender, k] {
      h.group.send(sender, to_bytes("d" + std::to_string(k)));
    });
  }
  h.sim.scheduler().at(300 * kMillisecond,
                       [&h] { switch_layer_of(h.group.stack(2)).request_switch(); });
  h.sim.run_for(20 * kSecond);
  return h.group.trace();
}

bool traces_identical_with_times(const Trace& a, const Trace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i]) || a[i].time != b[i].time) return false;
  }
  return true;
}

TEST(Determinism, IdenticalSeedIdenticalTrace) {
  const Trace first = run_scenario(77);
  const Trace second = run_scenario(77);
  EXPECT_TRUE(traces_identical_with_times(first, second))
      << "a seeded run must be bit-reproducible, timestamps included";
  EXPECT_FALSE(first.empty());
}

TEST(Determinism, DifferentSeedsDiverge) {
  const Trace a = run_scenario(77);
  const Trace b = run_scenario(78);
  EXPECT_FALSE(traces_identical_with_times(a, b))
      << "jitter and loss must actually depend on the seed";
}

TEST(Determinism, WorkloadHarnessIsReproducible) {
  const auto run = [] {
    Simulation sim(9);
    Network net(sim.scheduler(), sim.fork_rng(), testing::era_net());
    Group group(sim, net, 6, make_sequencer_factory());
    group.start();
    WorkloadConfig cfg;
    cfg.senders = 3;
    cfg.duration = 2 * kSecond;
    cfg.poisson = true;
    const auto res = run_workload(sim, group, cfg);
    return std::make_tuple(res.sent, res.delivered, res.latency_ms.mean());
  };
  EXPECT_EQ(run(), run());
}

std::uint64_t faulted_run_digest(std::uint64_t seed, const FaultSchedule& schedule) {
  Simulation sim(seed);
  Network net(sim.scheduler(), sim.fork_rng(), testing::lossy_net(0.05));
  Group group(sim, net, 4, make_hybrid_total_order_factory());
  FaultPlane plane(net, sim.fork_rng(), schedule);
  plane.install();
  group.start();
  for (int k = 0; k < 20; ++k) {
    sim.scheduler().at((30 + k * 40) * kMillisecond,
                       [&group, k] { group.send(k % 4, to_bytes("f" + std::to_string(k))); });
  }
  sim.scheduler().at(350 * kMillisecond,
                     [&group] { switch_layer_of(group.stack(1)).request_switch(); });
  sim.run_for(20 * kSecond);
  return trace_digest(group.trace());
}

TEST(Determinism, IdenticalFaultScheduleIdenticalDigest) {
  // Same seed + same FaultSchedule across two fresh Simulations => the
  // same trace digest; the fault plane's per-link streams must not leak
  // nondeterminism. The fuzzer's minimal reproducers rest on this.
  const auto schedule = FaultSchedule::parse(
      "dup=0.05@40000;reorder=0.1@20000;linkdown@200000:0-2;linkup@450000:0-2;"
      "part@600000:x2;heal@800000:x2;jitter@300000:150000:5000");
  ASSERT_TRUE(schedule.has_value());
  EXPECT_EQ(faulted_run_digest(4242, *schedule), faulted_run_digest(4242, *schedule));
  EXPECT_NE(faulted_run_digest(4242, *schedule), faulted_run_digest(4243, *schedule))
      << "the simulation seed must actually feed the faulted run";

  FaultSchedule harder = *schedule;
  harder.dup_prob = 0.2;
  EXPECT_NE(faulted_run_digest(4242, *schedule), faulted_run_digest(4242, harder))
      << "the schedule's knobs must actually perturb the run";
}

TEST(Determinism, NetworkStatsReproducible) {
  const auto run = [] {
    GroupHarness h(4, make_token_factory(), testing::lossy_net(0.2), 31);
    for (int i = 0; i < 10; ++i) h.group.send(i % 4, to_bytes("n" + std::to_string(i)));
    h.sim.run_for(5 * kSecond);
    const auto& s = h.net.stats();
    return std::make_tuple(s.unicasts_sent, s.multicasts_sent, s.copies_delivered,
                           s.copies_dropped_loss, s.bytes_on_wire);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace msw
