// End-to-end determinism: the whole stack — scheduler tie-breaking, RNG
// forking, network jitter/loss, protocol timers, SP token rotation — must
// reproduce bit-identical traces for a given seed. Every experiment in
// EXPERIMENTS.md rests on this.
#include <gtest/gtest.h>

#include "harness/workload.hpp"
#include "helpers.hpp"
#include "switch/hybrid.hpp"

namespace msw {
namespace {

using testing::GroupHarness;

Trace run_scenario(std::uint64_t seed) {
  GroupHarness h(5, make_hybrid_total_order_factory(), testing::lossy_net(0.1), seed);
  Rng rng(seed + 1);
  for (int k = 0; k < 30; ++k) {
    const std::size_t sender = rng.index(5);
    h.sim.scheduler().at(static_cast<Time>(rng.below(800)) * kMillisecond, [&h, sender, k] {
      h.group.send(sender, to_bytes("d" + std::to_string(k)));
    });
  }
  h.sim.scheduler().at(300 * kMillisecond,
                       [&h] { switch_layer_of(h.group.stack(2)).request_switch(); });
  h.sim.run_for(20 * kSecond);
  return h.group.trace();
}

bool traces_identical_with_times(const Trace& a, const Trace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i]) || a[i].time != b[i].time) return false;
  }
  return true;
}

TEST(Determinism, IdenticalSeedIdenticalTrace) {
  const Trace first = run_scenario(77);
  const Trace second = run_scenario(77);
  EXPECT_TRUE(traces_identical_with_times(first, second))
      << "a seeded run must be bit-reproducible, timestamps included";
  EXPECT_FALSE(first.empty());
}

TEST(Determinism, DifferentSeedsDiverge) {
  const Trace a = run_scenario(77);
  const Trace b = run_scenario(78);
  EXPECT_FALSE(traces_identical_with_times(a, b))
      << "jitter and loss must actually depend on the seed";
}

TEST(Determinism, WorkloadHarnessIsReproducible) {
  const auto run = [] {
    Simulation sim(9);
    Network net(sim.scheduler(), sim.fork_rng(), testing::era_net());
    Group group(sim, net, 6, make_sequencer_factory());
    group.start();
    WorkloadConfig cfg;
    cfg.senders = 3;
    cfg.duration = 2 * kSecond;
    cfg.poisson = true;
    const auto res = run_workload(sim, group, cfg);
    return std::make_tuple(res.sent, res.delivered, res.latency_ms.mean());
  };
  EXPECT_EQ(run(), run());
}

TEST(Determinism, NetworkStatsReproducible) {
  const auto run = [] {
    GroupHarness h(4, make_token_factory(), testing::lossy_net(0.2), 31);
    for (int i = 0; i < 10; ++i) h.group.send(i % 4, to_bytes("n" + std::to_string(i)));
    h.sim.run_for(5 * kSecond);
    const auto& s = h.net.stats();
    return std::make_tuple(s.unicasts_sent, s.multicasts_sent, s.copies_delivered,
                           s.copies_dropped_loss, s.bytes_on_wire);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace msw
