// The adaptive switch policy engine (src/switch/policy/): AutoHysteresis
// dwell control, PolicyOracle protocol scoring, the decision pipeline's
// veto/margin logic, and the engine driving a live hybrid stack — crossover
// under load, low-load stability, and bounded switching under injected
// faults (the section-7 oscillation regression).
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "helpers.hpp"
#include "net/fault.hpp"
#include "switch/hybrid.hpp"
#include "switch/policy/auto_hysteresis.hpp"
#include "switch/policy/policy_oracle.hpp"

namespace msw {
namespace {

using testing::GroupHarness;

SwitchLayer& sl(GroupHarness& h, std::size_t i) { return switch_layer_of(h.group.stack(i)); }

// ------------------------------------------------------------- AutoHysteresis

TEST(AutoHysteresis, InitialDwellAppliesUntilFirstObservation) {
  AutoHysteresis ah;
  EXPECT_EQ(ah.dwell(), kSecond);
  EXPECT_EQ(ah.overhead_mean(), 0);
  ah.observe(20 * kMillisecond);  // 20 ms / 0.004 duty = 5 s
  EXPECT_EQ(ah.dwell(), 5 * kSecond);
}

TEST(AutoHysteresis, DwellScalesWithObservedOverheadMean) {
  AutoHysteresis ah;
  ah.observe(8 * kMillisecond);
  ah.observe(16 * kMillisecond);
  EXPECT_EQ(ah.overhead_mean(), 12 * kMillisecond);
  EXPECT_EQ(ah.dwell(), 3 * kSecond);
}

TEST(AutoHysteresis, DwellClampsToFloorAndCeil) {
  AutoHysteresis cheap;
  cheap.observe(500);  // 0.5 ms -> 125 ms, below the 300 ms floor
  EXPECT_EQ(cheap.dwell(), 300 * kMillisecond);

  AutoHysteresis costly;
  costly.observe(80 * kMillisecond);  // -> 20 s, above the 10 s ceiling
  EXPECT_EQ(costly.dwell(), 10 * kSecond);
}

TEST(AutoHysteresis, RingEvictsOldSpansMostRecentWin) {
  AutoHysteresisConfig cfg;
  cfg.window = 4;
  AutoHysteresis ah(cfg);
  for (int i = 0; i < 4; ++i) ah.observe(2 * kMillisecond);
  EXPECT_EQ(ah.dwell(), 500 * kMillisecond);
  for (int i = 0; i < 4; ++i) ah.observe(4 * kMillisecond);
  // The cheap spans have been fully evicted; only the 4 ms spans remain.
  EXPECT_EQ(ah.overhead_mean(), 4 * kMillisecond);
  EXPECT_EQ(ah.dwell(), kSecond);
}

// ------------------------------------------------------------------- scoring

TEST(PolicyOracle, SequencerScoreRisesWithLoadAndBacklog) {
  PolicyOracle o;
  SignalVector idle;
  SignalVector busy;
  busy.delivered_rate = 300;
  EXPECT_GT(o.score_us(ProtocolKind::kSequencer, busy, 10),
            o.score_us(ProtocolKind::kSequencer, idle, 10));

  SignalVector backlogged = busy;
  backlogged.seq_pending = 10;
  EXPECT_GT(o.score_us(ProtocolKind::kSequencer, backlogged, 10),
            o.score_us(ProtocolKind::kSequencer, busy, 10));
}

TEST(PolicyOracle, OfferedLoadSeesSaturationTheDeliveredRateHides) {
  // Under sequencer saturation the delivered rate clamps at capacity, so a
  // throughput-only utilisation stays politely sub-critical. The offered
  // estimate (own send rate x group active senders) keeps growing.
  PolicyOracle o;
  SignalVector clamped;
  clamped.delivered_rate = 260;  // capacity
  clamped.send_rate = 50;
  clamped.active_senders = 2;
  SignalVector saturated = clamped;
  saturated.active_senders = 8;  // offered 400/s against the same clamp
  EXPECT_GT(o.score_us(ProtocolKind::kSequencer, saturated, 10),
            o.score_us(ProtocolKind::kSequencer, clamped, 10));
}

TEST(PolicyOracle, TokenScoreUsesMeasuredRotationElsePrior) {
  PolicyOracle o;
  SignalVector unmeasured;
  const PolicyPriors pr;
  EXPECT_DOUBLE_EQ(o.score_us(ProtocolKind::kToken, unmeasured, 10),
                   pr.token_base_us + 10 * pr.token_hop_us / 2.0);

  SignalVector measured;
  measured.rotation_us = 40'000;
  EXPECT_DOUBLE_EQ(o.score_us(ProtocolKind::kToken, measured, 10),
                   pr.token_base_us + 20'000);
}

TEST(PolicyOracle, NetInflationScalesModelledBases) {
  // A degraded network (measured via the live ring rotation) must inflate
  // the prior-scored kinds too, or the engine flees toward whichever
  // protocol is blind to the degradation.
  PolicyOracle o;
  SignalVector s;
  const PolicyPriors pr;
  const double base = o.score_us(ProtocolKind::kSequencer, s, 10, 1.0);
  const double inflated = o.score_us(ProtocolKind::kSequencer, s, 10, 2.0);
  EXPECT_DOUBLE_EQ(inflated - base, pr.seq_base_us);
  EXPECT_DOUBLE_EQ(o.score_us(ProtocolKind::kReliableFifo, s, 10, 2.0),
                   2.0 * pr.fifo_base_us);
}

TEST(PolicyOracle, RankingCoversEveryProtocolKind) {
  PolicyOracle o;
  SignalVector s;
  s.delivered_rate = 100;
  s.active_senders = 3;
  for (std::size_t k = 0; k < kProtocolKinds; ++k) {
    EXPECT_GT(o.score_us(static_cast<ProtocolKind>(k), s, 10), 0.0)
        << to_string(static_cast<ProtocolKind>(k));
  }
  EXPECT_EQ(to_string(ProtocolKind::kCausal), "causal");
}

// ------------------------------------------- decision pipeline (synthetic)

OracleView view_at(int active, Time now, Time since, Duration rotation) {
  OracleView v;
  v.self = NodeId{0};
  v.active_protocol = active;
  v.now = now;
  v.since_last_switch = since;
  v.normal_rotation = rotation;
  return v;
}

// An unattached oracle scores for a 1-member group: sequencer-active scores
// exactly seq_base_us = 7000 (no load signals) against the token prior
// 2000 + 1800/2 = 2900, which makes the decision arithmetic exact.

TEST(PolicyOracle, DwellVetoSuppressesEarlySwitchExactlyAtBoundary) {
  // Zero the absolute cost so the 7000-vs-2900 gap clears the default 1.5x
  // margin: the scores say "switch" and only the dwell guard holds it.
  PolicyConfig cfg;
  cfg.switch_cost_us = 0;
  PolicyOracle o(cfg);
  EXPECT_FALSE(o.should_switch(view_at(0, kSecond - 1, kSecond - 1, 0)));
  EXPECT_EQ(o.stats().vetoed_dwell, 1u);
  EXPECT_TRUE(o.should_switch(view_at(0, kSecond, kSecond, 0)));
  EXPECT_EQ(o.stats().switch_decisions, 1u);
}

TEST(PolicyOracle, MarginAndCostBandHoldsNearTies) {
  // Default band (margin 1.5, cost 4000 µs): threshold 1.5*2900 + 4000 =
  // 8350 > 7000 — the gap is real but inside the band, so no switch.
  PolicyOracle held;
  EXPECT_FALSE(held.should_switch(view_at(0, 10 * kSecond, 10 * kSecond, 0)));
  EXPECT_EQ(held.stats().switch_decisions, 0u);

  // The guard is strictly `active > margin*alt + cost`: with margin 1.0 the
  // threshold is 2900 + cost — cost 4100 lands exactly on 7000 and holds,
  // one microsecond less clears.
  PolicyConfig at_boundary;
  at_boundary.switch_margin = 1.0;
  at_boundary.switch_cost_us = 4100;
  PolicyOracle on(at_boundary);
  EXPECT_FALSE(on.should_switch(view_at(0, 10 * kSecond, 10 * kSecond, 0)));

  PolicyConfig just_inside = at_boundary;
  just_inside.switch_cost_us = 4099;
  PolicyOracle in(just_inside);
  EXPECT_TRUE(in.should_switch(view_at(0, 10 * kSecond, 10 * kSecond, 0)));
}

// --------------------------------------------------- the engine in a stack

TEST(PolicyOracle, CrossesOverToTokenUnderHighLoad) {
  HybridConfig cfg;
  cfg.oracle = make_policy_oracle_factory();
  GroupHarness h(8, make_hybrid_total_order_factory(cfg), testing::era_net());
  // 6 senders x 50 msg/s: offered ~300/s against the ~333/s modelled
  // service rate — squarely past the crossover.
  for (std::size_t s = 0; s < 6; ++s) {
    for (int k = 0; k < 175; ++k) {
      h.sim.scheduler().at(s * kMillisecond + k * 20 * kMillisecond,
                           [&h, s] { h.group.send(s, to_bytes("x")); });
    }
  }
  h.sim.run_for(6 * kSecond);
  std::uint64_t switches = 0;
  for (std::size_t i = 0; i < h.group.size(); ++i) {
    switches = std::max(switches, sl(h, i).stats().switches_completed);
    EXPECT_EQ(sl(h, i).active_protocol(), 1) << "member " << i;
  }
  EXPECT_GE(switches, 1u);
  testing::expect_identical_delivery(h);
}

TEST(PolicyOracle, StaysOnSequencerAtLowLoad) {
  HybridConfig cfg;
  cfg.oracle = make_policy_oracle_factory();
  GroupHarness h(8, make_hybrid_total_order_factory(cfg), testing::era_net());
  for (std::size_t s = 0; s < 2; ++s) {
    for (int k = 0; k < 200; ++k) {
      h.sim.scheduler().at(s * kMillisecond + k * 20 * kMillisecond,
                           [&h, s] { h.group.send(s, to_bytes("x")); });
    }
  }
  h.sim.run_for(5 * kSecond);
  for (std::size_t i = 0; i < h.group.size(); ++i) {
    EXPECT_EQ(sl(h, i).stats().switches_completed, 0u) << "member " << i;
    EXPECT_EQ(sl(h, i).active_protocol(), 0) << "member " << i;
  }
}

TEST(PolicyOracle, BoundedSwitchesUnderInjectedFaults) {
  // The oscillation regression: flip-flop load under loss, duplication,
  // reordering, and jitter bursts. A threshold oracle flaps continuously
  // here; the policy engine must hold its switch count to a small bound
  // while still escaping the saturated sequencer.
  HybridConfig cfg;
  cfg.oracle = make_policy_oracle_factory();
  NetConfig net = testing::era_net();
  net.loss = 0.05;
  GroupHarness h(8, make_hybrid_total_order_factory(cfg), net);

  FaultSchedule sched;
  sched.dup_prob = 0.02;
  sched.reorder_prob = 0.05;
  for (Time at : {2 * kSecond, 6 * kSecond}) {
    FaultEvent e;
    e.kind = FaultEvent::Kind::kJitterBurst;
    e.at = at;
    e.duration = kSecond;
    e.magnitude = 5 * kMillisecond;
    sched.events.push_back(e);
  }
  FaultPlane plane(h.net, h.sim.fork_rng(), sched);
  plane.install();

  // 2 <-> 6 senders every 1.5 s for 10 s.
  for (std::size_t s = 0; s < 6; ++s) {
    for (int k = 0; k < 500; ++k) {
      const Time at = s * kMillisecond + k * 20 * kMillisecond;
      const std::size_t active = (at / (1500 * kMillisecond)) % 2 == 1 ? 6 : 2;
      if (s < active) {
        h.sim.scheduler().at(at, [&h, s] { h.group.send(s, to_bytes("x")); });
      }
    }
  }
  h.sim.run_for(14 * kSecond);
  std::uint64_t switches = 0;
  for (std::size_t i = 0; i < h.group.size(); ++i) {
    switches = std::max(switches, sl(h, i).stats().switches_completed);
  }
  EXPECT_GE(switches, 1u);  // it does escape the saturating sequencer
  EXPECT_LE(switches, 4u);  // and does not oscillate
  testing::expect_identical_delivery(h);
}

}  // namespace
}  // namespace msw
