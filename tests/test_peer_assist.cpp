// Peer-assisted reliable multicast (SRM-style) and crash-tolerant view
// changes built on it: a crashed sender's messages are recovered from the
// surviving members, the flush excludes silent members, and Virtual
// Synchrony holds for the survivors.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "proto/reliable_layer.hpp"
#include "proto/vsync_layer.hpp"

namespace msw {
namespace {

using testing::GroupHarness;

std::vector<ReliableLayer*> g_rel;
std::vector<VsyncLayer*> g_vsync;

LayerFactory peer_reliable(ReliableConfig cfg = {}) {
  cfg.peer_assist = true;
  return [cfg](NodeId, const std::vector<NodeId>&) {
    auto l = std::make_unique<ReliableLayer>(cfg);
    g_rel.push_back(l.get());
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::move(l));
    return layers;
  };
}

LayerFactory crash_tolerant_vsync(Duration flush_timeout) {
  return [flush_timeout](NodeId, const std::vector<NodeId>&) {
    VsyncConfig vcfg;
    vcfg.flush_timeout = flush_timeout;
    auto v = std::make_unique<VsyncLayer>(vcfg);
    g_vsync.push_back(v.get());
    ReliableConfig rcfg;
    rcfg.peer_assist = true;
    rcfg.ack_interval = 50 * kMillisecond;
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::move(v));
    layers.push_back(std::make_unique<ReliableLayer>(rcfg));
    return layers;
  };
}

class PeerAssist : public ::testing::Test {
 protected:
  void SetUp() override {
    g_rel.clear();
    g_vsync.clear();
  }
};

TEST_F(PeerAssist, StillReliableUnderLoss) {
  GroupHarness h(4, peer_reliable(), testing::lossy_net(0.2), /*seed=*/23);
  for (int i = 0; i < 20; ++i) h.group.send(i % 4, to_bytes("p" + std::to_string(i)));
  h.sim.run_for(15 * kSecond);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 20u) << "member " << p;
  }
  EXPECT_TRUE(NoReplayProperty().holds(h.group.trace()));
}

TEST_F(PeerAssist, RecoversFromDeadOriginViaPeers) {
  GroupHarness h(4, peer_reliable());
  // Member 3 misses the message because its inbound link from 0 is down,
  // and the origin crashes immediately after sending: only peers ever hold
  // a copy that can reach member 3.
  h.net.set_link_up(h.group.node(0), h.group.node(3), false);
  h.group.send(0, to_bytes("orphan"));
  h.sim.run_for(10 * kMillisecond);  // copies to peers are in flight
  h.net.set_node_up(h.group.node(0), false);
  h.sim.run_for(5 * kSecond);
  EXPECT_EQ(h.delivered_data(3).size(), 1u)
      << "peer-assisted retransmission failed to recover the dead origin's message";
}

TEST_F(PeerAssist, StoreIsGarbageCollectedAtStability) {
  ReliableConfig cfg;
  cfg.ack_interval = 40 * kMillisecond;
  GroupHarness h(3, peer_reliable(cfg));
  for (int i = 0; i < 10; ++i) h.group.send(0, to_bytes("gc" + std::to_string(i)));
  h.sim.run_for(3 * kSecond);
  for (auto* l : g_rel) {
    EXPECT_EQ(l->stats().buffered_copies, 0u) << "stability GC left copies behind";
  }
}

TEST_F(PeerAssist, CrashedMemberDoesNotPinPeerStore) {
  // A silently crashed member never fills its ack-matrix row, which used
  // to hold every origin's store at min_cum = 0 forever. With the eviction
  // horizon it drops out of the stability quorum and the survivors' stores
  // keep draining under continued traffic.
  ReliableConfig cfg;
  cfg.ack_interval = 40 * kMillisecond;
  cfg.eviction_horizon = 2 * kSecond;
  GroupHarness h(4, peer_reliable(cfg));
  h.sim.run_for(50 * kMillisecond);
  h.net.set_node_up(h.group.node(3), false);
  for (int i = 0; i < 100; ++i) {
    h.sim.scheduler().after(i * 100 * kMillisecond,
                            [&, i] { h.group.send(i % 3, to_bytes("s" + std::to_string(i))); });
  }
  h.sim.run_for(12 * kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 100u) << "member " << p;
    // Unbounded pinning would leave ~100 copies in every store; the
    // eviction horizon keeps retention to the not-yet-stable tail.
    EXPECT_LE(g_rel[p]->stats().buffered_copies, 12u) << "member " << p;
    EXPECT_GT(g_rel[p]->stats().members_evicted, 0u) << "member " << p;
  }
}

TEST_F(PeerAssist, StoreCapBoundsRetentionWhenEvictionDisabled) {
  // Back-stop behaviour: eviction off, one member permanently silent, caps
  // keep both the sender buffer and per-origin stores bounded.
  ReliableConfig cfg;
  cfg.ack_interval = 40 * kMillisecond;
  cfg.eviction_horizon = 0;
  cfg.max_sent_buffer = 8;
  cfg.max_store_per_origin = 8;
  GroupHarness h(3, peer_reliable(cfg));
  h.sim.run_for(50 * kMillisecond);
  h.net.set_node_up(h.group.node(2), false);
  for (int i = 0; i < 30; ++i) h.group.send(0, to_bytes("cap"));
  h.sim.run_for(3 * kSecond);
  // Member 0: its own sent buffer (cap 8) + its store of origin-0 copies
  // (cap 8) is the worst case.
  EXPECT_LE(g_rel[0]->stats().buffered_copies, 16u);
  EXPECT_LE(g_rel[1]->stats().buffered_copies, 16u);
  EXPECT_GT(g_rel[0]->stats().buffer_evictions, 0u);
}

TEST_F(PeerAssist, WithoutPeerAssistDeadOriginMeansLoss) {
  // Control: the same scenario with plain origin-only retransmission
  // cannot recover — documenting why peer assistance exists.
  GroupHarness h(4,
                 [](NodeId, const std::vector<NodeId>&) {
                   std::vector<std::unique_ptr<Layer>> layers;
                   layers.push_back(std::make_unique<ReliableLayer>());
                   return layers;
                 });
  h.net.set_link_up(h.group.node(0), h.group.node(3), false);
  h.group.send(0, to_bytes("orphan"));
  h.sim.run_for(300 * kMillisecond);
  h.net.set_node_up(h.group.node(0), false);
  h.net.set_link_up(h.group.node(0), h.group.node(3), true);
  h.sim.run_for(5 * kSecond);
  EXPECT_EQ(h.delivered_data(3).size(), 0u);
}

TEST_F(PeerAssist, CrashTolerantFlushExcludesSilentMember) {
  GroupHarness h(4, crash_tolerant_vsync(300 * kMillisecond));
  h.sim.run_for(100 * kMillisecond);
  // Member 3 crashes silently.
  h.net.set_node_up(h.group.node(3), false);
  // The coordinator still completes the view change, excluding it.
  std::vector<std::uint32_t> everyone;
  for (std::size_t i = 0; i < 4; ++i) everyone.push_back(h.group.node(i).v);
  ASSERT_TRUE(g_vsync[0]->request_view_change(everyone));
  h.sim.run_for(5 * kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(g_vsync[p]->current_view(), 2u) << "member " << p << " wedged";
    EXPECT_EQ(g_vsync[p]->view_members().size(), 3u);
  }
}

TEST_F(PeerAssist, CrashedSendersCountedMessagesSurviveTheCut) {
  GroupHarness h(4, crash_tolerant_vsync(300 * kMillisecond));
  h.sim.run_for(100 * kMillisecond);
  // Member 3 multicasts, but the copy to member 1 is lost; then it crashes.
  h.net.set_link_up(h.group.node(3), h.group.node(1), false);
  h.group.send(3, to_bytes("last words"));
  h.sim.run_for(100 * kMillisecond);
  h.net.set_node_up(h.group.node(3), false);
  h.net.set_link_up(h.group.node(3), h.group.node(1), true);
  // Survivors delivered it except member 1; the flush cut includes it
  // (max over survivors), so member 1 must recover it from a peer before
  // installing the new view.
  std::vector<std::uint32_t> everyone;
  for (std::size_t i = 0; i < 4; ++i) everyone.push_back(h.group.node(i).v);
  ASSERT_TRUE(g_vsync[0]->request_view_change(everyone));
  h.sim.run_for(8 * kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(g_vsync[p]->current_view(), 2u) << "member " << p;
    EXPECT_EQ(h.delivered_data(p).size(), 1u)
        << "member " << p << " missed the crashed sender's counted message";
  }
  EXPECT_TRUE(VirtualSynchronyProperty().holds(h.group.trace()));
}

TEST_F(PeerAssist, SurvivorsStayVirtuallySynchronousAcrossCrash) {
  GroupHarness h(5, crash_tolerant_vsync(300 * kMillisecond), testing::lossy_net(0.05),
                 /*seed=*/37);
  for (int k = 0; k < 20; ++k) {
    h.sim.scheduler().at(k * 10 * kMillisecond,
                         [&, k] { h.group.send(k % 5, to_bytes("t" + std::to_string(k))); });
  }
  h.sim.scheduler().at(150 * kMillisecond,
                       [&] { h.net.set_node_up(h.group.node(4), false); });
  std::vector<std::uint32_t> everyone;
  for (std::size_t i = 0; i < 5; ++i) everyone.push_back(h.group.node(i).v);
  h.sim.scheduler().at(220 * kMillisecond,
                       [&] { g_vsync[0]->request_view_change(everyone); });
  h.sim.run_for(15 * kSecond);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(g_vsync[p]->current_view(), 2u) << "member " << p;
  }
  // Restrict the trace to survivors: their epochs must agree.
  Trace survivors;
  for (const auto& e : h.group.trace()) {
    if (e.process != h.group.node(4).v) survivors.push_back(e);
  }
  EXPECT_TRUE(VirtualSynchronyProperty().holds(survivors));
}

TEST_F(PeerAssist, NoTimeoutMeansFlushWaitsForever) {
  GroupHarness h(3, crash_tolerant_vsync(/*flush_timeout=*/0));
  h.sim.run_for(100 * kMillisecond);
  h.net.set_node_up(h.group.node(2), false);
  std::vector<std::uint32_t> everyone;
  for (std::size_t i = 0; i < 3; ++i) everyone.push_back(h.group.node(i).v);
  ASSERT_TRUE(g_vsync[0]->request_view_change(everyone));
  h.sim.run_for(5 * kSecond);
  // The original semantics: the view change wedges on the crashed member.
  EXPECT_EQ(g_vsync[0]->current_view(), 1u);
  EXPECT_TRUE(g_vsync[0]->flushing());
}

}  // namespace
}  // namespace msw
