// Simulated crypto primitives: digest stability, MAC binding, stream
// cipher reversibility.
#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "util/digest.hpp"

namespace msw {
namespace {

TEST(Digest, Deterministic) {
  const Bytes a = to_bytes("payload");
  EXPECT_EQ(fnv1a(a), fnv1a(a));
}

TEST(Digest, ContentSensitive) {
  EXPECT_NE(fnv1a(to_bytes("payload")), fnv1a(to_bytes("payloae")));
  EXPECT_NE(fnv1a(to_bytes("")), fnv1a(to_bytes("x")));
}

TEST(Mac, VerifiesWithSameInputs) {
  const Bytes body = to_bytes("attack at dawn");
  EXPECT_EQ(mac(123, 7, body), mac(123, 7, body));
}

TEST(Mac, BoundToKey) {
  const Bytes body = to_bytes("attack at dawn");
  EXPECT_NE(mac(123, 7, body), mac(124, 7, body));
}

TEST(Mac, BoundToSender) {
  const Bytes body = to_bytes("attack at dawn");
  EXPECT_NE(mac(123, 7, body), mac(123, 8, body));
}

TEST(Mac, BoundToContent) {
  EXPECT_NE(mac(123, 7, to_bytes("a")), mac(123, 7, to_bytes("b")));
}

TEST(StreamCrypt, RoundTrips) {
  Bytes data = to_bytes("the quick brown fox jumps over the lazy dog");
  const Bytes original = data;
  stream_crypt(99, 1, data);
  EXPECT_NE(data, original);
  stream_crypt(99, 1, data);
  EXPECT_EQ(data, original);
}

TEST(StreamCrypt, WrongKeyDoesNotDecrypt) {
  Bytes data = to_bytes("secret");
  const Bytes original = data;
  stream_crypt(99, 1, data);
  stream_crypt(100, 1, data);
  EXPECT_NE(data, original);
}

TEST(StreamCrypt, NonceChangesCiphertext) {
  Bytes a = to_bytes("same plaintext");
  Bytes b = a;
  stream_crypt(99, 1, a);
  stream_crypt(99, 2, b);
  EXPECT_NE(a, b);
}

TEST(StreamCrypt, EmptyBufferIsNoop) {
  Bytes empty;
  stream_crypt(99, 1, empty);
  EXPECT_TRUE(empty.empty());
}

}  // namespace
}  // namespace msw
