// SP corner cases: switching with zero traffic, requests arriving
// mid-switch, singleton groups, simultaneous oracle opinions, and the
// stats surface.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "switch/hybrid.hpp"

namespace msw {
namespace {

using testing::GroupHarness;

SwitchLayer& sl(GroupHarness& h, std::size_t i) { return switch_layer_of(h.group.stack(i)); }

TEST(SwitchEdge, SwitchWithZeroTraffic) {
  // No messages at all: every count is zero, the drain is trivially
  // satisfied, and the switch still takes exactly three rotations.
  GroupHarness h(4, make_hybrid_total_order_factory());
  h.sim.run_for(100 * kMillisecond);
  sl(h, 0).request_switch();
  h.sim.run_for(2 * kSecond);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sl(h, i).epoch(), 1u);
    EXPECT_EQ(sl(h, i).stats().max_buffered, 0u);
  }
  EXPECT_GT(sl(h, 0).stats().last_switch_duration, 0);
}

TEST(SwitchEdge, RequestDuringSwitchWaitsForNormalToken) {
  GroupHarness h(3, make_hybrid_total_order_factory());
  h.sim.run_for(100 * kMillisecond);
  sl(h, 0).request_switch();
  // Step until member 1 observes the switch in progress, then request from
  // member 1: it must produce a SECOND switch after the first completes.
  bool requested = false;
  for (int i = 0; i < 2000 && !requested; ++i) {
    h.sim.run_for(kMillisecond);
    if (sl(h, 1).switching()) {
      sl(h, 1).request_switch();
      requested = true;
    }
  }
  ASSERT_TRUE(requested);
  h.sim.run_for(5 * kSecond);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sl(h, i).epoch(), 2u) << "member " << i;
    EXPECT_EQ(sl(h, i).active_protocol(), 0);
  }
}

TEST(SwitchEdge, SingletonGroupSwitches) {
  GroupHarness h(1, make_hybrid_total_order_factory());
  h.group.send(0, to_bytes("pre"));
  h.sim.run_for(200 * kMillisecond);
  sl(h, 0).request_switch();
  h.sim.run_for(kSecond);
  EXPECT_EQ(sl(h, 0).epoch(), 1u);
  h.group.send(0, to_bytes("post"));
  h.sim.run_for(kSecond);
  EXPECT_EQ(h.delivered_data(0).size(), 2u);
}

TEST(SwitchEdge, AllOraclesAgreeOnlyTokenHolderInitiates) {
  // Every member's oracle says "switch" simultaneously; exactly one
  // initiation happens per NORMAL token epoch — the others see the new
  // protocol and (for a one-shot threshold oracle on protocol 1) go quiet.
  HybridConfig cfg;
  cfg.oracle = [](NodeId) { return std::make_unique<ThresholdOracle>(1); };
  GroupHarness h(5, make_hybrid_total_order_factory(cfg), testing::era_net());
  // Two steady senders keep active_senders >= 1 through the whole run, so
  // protocol 0 wants out but protocol 1 (>= threshold) wants to stay. (If
  // the traffic stopped, the oracle would legitimately switch back.)
  for (int k = 0; k < 320; ++k) {
    h.sim.scheduler().at(k * 10 * kMillisecond,
                         [&, k] { h.group.send(k % 2, to_bytes("o" + std::to_string(k))); });
  }
  h.sim.run_for(3 * kSecond);
  std::uint64_t initiated = 0;
  for (std::size_t i = 0; i < 5; ++i) initiated += sl(h, i).stats().switches_initiated;
  EXPECT_EQ(initiated, 1u) << "exactly one member may capture the NORMAL token";
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(sl(h, i).epoch(), 1u);
    EXPECT_EQ(sl(h, i).active_protocol(), 1);
  }
}

TEST(SwitchEdge, StatsSurfaceIsCoherent) {
  GroupHarness h(3, make_hybrid_total_order_factory());
  for (int k = 0; k < 9; ++k) h.group.send(k % 3, to_bytes("s" + std::to_string(k)));
  h.sim.run_for(300 * kMillisecond);
  sl(h, 2).request_switch();
  h.sim.run_for(3 * kSecond);
  const auto& stats = sl(h, 2).stats();
  EXPECT_EQ(stats.switches_initiated, 1u);
  EXPECT_EQ(stats.switches_completed, 1u);
  EXPECT_EQ(stats.switch_durations.count(), 1u);
  EXPECT_NEAR(stats.switch_durations.mean(), to_ms(stats.last_switch_duration), 1e-9);
  EXPECT_GE(stats.last_switch_duration, stats.last_local_switch_duration);
  EXPECT_GT(stats.token_hops, 0u);
  EXPECT_EQ(stats.stale_dropped, 0u);  // lossless run: no stale duplicates
}

TEST(SwitchEdge, EpochOfNextSendTracksPrepare) {
  GroupHarness h(3, make_hybrid_total_order_factory());
  h.sim.run_for(100 * kMillisecond);
  EXPECT_EQ(sl(h, 0).epoch_of_next_send(), 0u);
  sl(h, 0).request_switch();
  bool observed = false;
  for (int i = 0; i < 2000 && !observed; ++i) {
    h.sim.run_for(kMillisecond);
    if (sl(h, 0).switching()) {
      EXPECT_EQ(sl(h, 0).epoch_of_next_send(), 1u);
      observed = true;
    }
  }
  EXPECT_TRUE(observed);
  h.sim.run_for(3 * kSecond);
  EXPECT_EQ(sl(h, 0).epoch_of_next_send(), 1u);
}

TEST(SwitchEdge, EpochCounterWrapsAround) {
  // Start one step below the u64 wraparound: the switch goes MAX -> 0 and
  // every token-mode comparison must treat "has switched" as epoch
  // inequality, not ordering (epoch 0 is NOT "older" than epoch MAX).
  HybridConfig cfg;
  cfg.sp.initial_epoch = ~std::uint64_t{0};
  GroupHarness h(3, make_hybrid_total_order_factory(cfg));
  for (int k = 0; k < 4; ++k) h.group.send(k % 3, to_bytes("pre" + std::to_string(k)));
  h.sim.run_for(200 * kMillisecond);
  ASSERT_EQ(sl(h, 0).active_protocol(), 1);  // MAX is odd: token protocol
  sl(h, 0).request_switch();
  h.sim.run_for(3 * kSecond);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sl(h, i).epoch(), 0u) << "member " << i;
    EXPECT_EQ(sl(h, i).active_protocol(), 0);
    EXPECT_FALSE(sl(h, i).switching());
  }
  for (int k = 0; k < 4; ++k) h.group.send(k % 3, to_bytes("post" + std::to_string(k)));
  h.sim.run_for(2 * kSecond);
  EXPECT_EQ(h.delivered_data(0).size(), 8u);
  testing::expect_identical_delivery(h);

  // And once more across the wrap (0 -> 1) for good measure.
  sl(h, 1).request_switch();
  h.sim.run_for(3 * kSecond);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(sl(h, i).epoch(), 1u);
}

TEST(SwitchEdge, BufferedNewEpochReleasedInOrderAfterDrain) {
  // Member 2 is cut off from the sequencer (link 0->2 down) and misses
  // epoch-0 messages, so it cannot finish draining. Members 0 and 1 switch
  // and send epoch-1 traffic on the new protocol; member 2 must buffer it,
  // then — after the link heals and the drain completes — release it in
  // the new protocol's order, identical at every member.
  GroupHarness h(3, make_hybrid_total_order_factory());
  h.sim.run_for(50 * kMillisecond);
  h.net.set_link_up(h.group.node(0), h.group.node(2), false);
  for (int k = 0; k < 3; ++k) h.group.send(0, to_bytes("old" + std::to_string(k)));
  h.sim.run_for(100 * kMillisecond);
  sl(h, 0).request_switch();
  h.sim.run_for(300 * kMillisecond);
  EXPECT_FALSE(sl(h, 0).switching());
  EXPECT_TRUE(sl(h, 2).switching()) << "member 2 cannot drain while cut off";
  for (int k = 0; k < 3; ++k) h.group.send(1, to_bytes("new" + std::to_string(k)));
  h.sim.run_for(300 * kMillisecond);
  EXPECT_TRUE(sl(h, 2).switching());
  EXPECT_GE(sl(h, 2).buffered(), 3u) << "epoch-1 traffic must be buffered, not dropped";
  h.net.set_link_up(h.group.node(0), h.group.node(2), true);
  h.sim.run_for(3 * kSecond);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(sl(h, i).switching()) << "member " << i;
    EXPECT_EQ(sl(h, i).epoch(), 1u);
    EXPECT_EQ(sl(h, i).buffered(), 0u);
  }
  EXPECT_GE(sl(h, 2).stats().max_buffered, 3u);
  EXPECT_EQ(h.delivered_data(2).size(), 6u);
  testing::expect_identical_delivery(h);
}

TEST(SwitchEdge, InitiatorReRequestMidSwitchYieldsSecondSwitch) {
  // A request on the member whose own switch is still in flight must not
  // be lost or double-applied: it initiates exactly one more switch after
  // the current one completes.
  GroupHarness h(3, make_hybrid_total_order_factory());
  h.sim.run_for(100 * kMillisecond);
  sl(h, 0).request_switch();
  bool requested = false;
  for (int i = 0; i < 2000 && !requested; ++i) {
    h.sim.run_for(kMillisecond);
    if (sl(h, 0).switching()) {
      sl(h, 0).request_switch();
      requested = true;
    }
  }
  ASSERT_TRUE(requested);
  h.sim.run_for(5 * kSecond);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sl(h, i).epoch(), 2u) << "member " << i;
    EXPECT_FALSE(sl(h, i).switching());
  }
  EXPECT_EQ(sl(h, 0).stats().switches_initiated, 2u);
}

TEST(SwitchEdge, ActiveSendersWindowDecays) {
  SwitchConfig cfg;
  cfg.sender_window = 100 * kMillisecond;
  HybridConfig hcfg;
  hcfg.sp = cfg;
  GroupHarness h(3, make_hybrid_total_order_factory(hcfg));
  h.group.send(0, to_bytes("one"));
  h.group.send(1, to_bytes("two"));
  h.sim.run_for(50 * kMillisecond);
  EXPECT_EQ(sl(h, 2).active_senders(), 2u);
  h.sim.run_for(500 * kMillisecond);  // window expires
  EXPECT_EQ(sl(h, 2).active_senders(), 0u);
}

TEST(SwitchEdge, SlowRotationDoesNotInflateConsultedSenderCount) {
  // Regression: the sender window must be pruned against *consult time*,
  // not against the last delivery. With a slowed token rotation (normal
  // hold ≫ sender window), a consult arriving long after traffic stopped
  // used to report the stale count — the oracle then saw phantom load
  // exactly when the ring was slow, the worst moment to over-count.
  struct RecordingOracle : Oracle {
    std::vector<std::pair<Time, std::size_t>>* log;
    explicit RecordingOracle(std::vector<std::pair<Time, std::size_t>>* l) : log(l) {}
    bool should_switch(const OracleView& v) override {
      log->push_back({v.now, v.active_senders});
      return false;
    }
  };
  auto log = std::make_shared<std::vector<std::pair<Time, std::size_t>>>();
  HybridConfig hcfg;
  hcfg.sp.sender_window = 100 * kMillisecond;
  hcfg.sp.normal_hold = 300 * kMillisecond;  // rotation ~0.9 s ≫ window
  hcfg.oracle = [log](NodeId) { return std::make_unique<RecordingOracle>(log.get()); };
  GroupHarness h(3, make_hybrid_total_order_factory(hcfg));
  // Both senders stay active for the first 2 s, then go silent.
  for (int k = 0; k < 66; ++k) {
    h.sim.scheduler().at(k * 30 * kMillisecond, [&h, k] {
      h.group.send(k % 2, to_bytes("x" + std::to_string(k)));
    });
  }
  h.sim.run_for(5 * kSecond);
  bool saw_both = false;
  for (const auto& [t, senders] : *log) {
    if (senders == 2) saw_both = true;
    if (t >= 2 * kSecond + 200 * kMillisecond) {
      EXPECT_EQ(senders, 0u) << "stale sender count at t=" << t;
    }
  }
  EXPECT_TRUE(saw_both);
}

TEST(SwitchEdge, DwellClockSeededFromLayerStart) {
  // Regression: with last_switch_time_ defaulting to 0, a group started at
  // a nonzero time base saw since_last_switch == now on the very first
  // consult — vacuously past any dwell guard. The dwell clock must run
  // from layer start.
  Simulation sim(1);
  Network net(sim.scheduler(), sim.fork_rng(), testing::ideal_net());
  sim.run_until(5 * kSecond);  // nonzero time base before the group exists
  HybridConfig cfg;
  // high = 1: a single steady sender makes the oracle want out immediately;
  // only the 2 s dwell (counted from layer start at t = 5 s) holds it.
  cfg.oracle = [](NodeId) { return std::make_unique<HysteresisOracle>(0, 1, 2 * kSecond); };
  Group group(sim, net, 3, make_hybrid_total_order_factory(cfg));
  group.start();
  for (int k = 0; k < 70; ++k) {
    sim.scheduler().at(5 * kSecond + k * 50 * kMillisecond,
                       [&group] { group.send(0, to_bytes("x")); });
  }
  const auto initiated = [&] {
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < group.size(); ++i) {
      n += switch_layer_of(group.stack(i)).stats().switches_initiated;
    }
    return n;
  };
  sim.run_until(6900 * kMillisecond);
  EXPECT_EQ(initiated(), 0u);  // t0 + 2 s = 7 s not reached yet
  sim.run_until(8500 * kMillisecond);
  EXPECT_GE(initiated(), 1u);
}

}  // namespace
}  // namespace msw
