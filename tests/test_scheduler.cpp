// Discrete-event scheduler: ordering, determinism, cancellation, clocks.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/simulation.hpp"

namespace msw {
namespace {

TEST(Scheduler, RunsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(30, [&] { order.push_back(3); });
  s.at(10, [&] { order.push_back(1); });
  s.at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(10, [&] { order.push_back(1); });
  s.at(10, [&] { order.push_back(2); });
  s.at(10, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, AfterIsRelative) {
  Scheduler s;
  Time fired_at = -1;
  s.at(100, [&] { s.after(50, [&] { fired_at = s.now(); }); });
  s.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  const EventId id = s.at(10, [&] { fired = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, CancelUnknownIsNoop) {
  Scheduler s;
  s.cancel(EventId{12345});
  s.cancel(EventId{});
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, DoubleCancelIsNoop) {
  Scheduler s;
  const EventId id = s.at(10, [] {});
  s.cancel(id);
  s.cancel(id);
  s.run();
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler s;
  std::vector<Time> fired;
  s.at(10, [&] { fired.push_back(10); });
  s.at(20, [&] { fired.push_back(20); });
  s.at(30, [&] { fired.push_back(30); });
  s.run_until(20);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20}));
  EXPECT_EQ(s.now(), 20);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Scheduler, RunUntilAdvancesClockWhenIdle) {
  Scheduler s;
  s.run_until(500);
  EXPECT_EQ(s.now(), 500);
}

TEST(Scheduler, EventsScheduledDuringRunExecute) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.after(1, recurse);
  };
  s.after(1, recurse);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), 5);
}

TEST(Scheduler, RunBoundedLimitsExecution) {
  Scheduler s;
  int count = 0;
  for (int i = 0; i < 10; ++i) s.at(i, [&] { ++count; });
  EXPECT_EQ(s.run_bounded(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(s.pending(), 6u);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  s.at(1, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, ExecutedCounter) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.at(i, [] {});
  s.run();
  EXPECT_EQ(s.executed(), 7u);
}

TEST(Scheduler, CancelAfterExecutionIsNoop) {
  // An EventId whose slot has been recycled by a later event must not
  // cancel the new occupant: the generation check protects reused slots.
  Scheduler s;
  const EventId first = s.at(1, [] {});
  s.run();
  bool fired = false;
  s.at(2, [&] { fired = true; });  // reuses the freed slot
  s.cancel(first);                 // stale id: generation mismatch
  s.run();
  EXPECT_TRUE(fired);
}

TEST(Scheduler, StressInterleavedCancelAndSchedule) {
  // 100k events in randomized order with a deterministic LCG, interleaving
  // at()/cancel()/run_bounded() and validating execution order, pending()
  // and executed() against a reference model at every phase boundary.
  Scheduler s;
  std::uint64_t lcg = 0x2545F4914F6CDD1Dull;
  const auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 33;
  };

  constexpr int kEvents = 100'000;
  std::vector<Time> fired_times;  // every handler logs its time here
  fired_times.reserve(kEvents);
  std::vector<bool> done(kEvents, false);
  std::vector<EventId> ids;
  ids.reserve(kEvents);
  std::vector<Time> times;
  times.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    const Time t = static_cast<Time>(next() % 1'000'000);
    times.push_back(t);
    ids.push_back(s.at(t, [&fired_times, &done, t, i] {
      fired_times.push_back(t);
      done[i] = true;
    }));
  }
  EXPECT_EQ(s.pending(), static_cast<std::size_t>(kEvents));

  // Cancel a pseudo-random third of them; every id is still live, so each
  // cancellation must take effect exactly once (double-cancel is a no-op).
  std::vector<bool> cancelled(kEvents, false);
  std::size_t n_cancelled = 0;
  for (int i = 0; i < kEvents; ++i) {
    if (next() % 3 == 0) {
      cancelled[i] = true;
      ++n_cancelled;
      s.cancel(ids[i]);
      s.cancel(ids[i]);  // double cancel must stay a no-op
    }
  }
  EXPECT_EQ(s.pending(), kEvents - n_cancelled);

  // Drain in bounded chunks, interleaving fresh schedules and more probe
  // cancels. A probe that hits an already-executed or already-cancelled id
  // must be a no-op (the generation check rejects it); one that hits a
  // still-pending event is a real cancellation, which the model tracks.
  std::size_t extra = 0;
  while (s.pending() > 0) {
    const std::size_t ran = s.run_bounded(1000);
    EXPECT_LE(ran, 1000u);
    const int probe = static_cast<int>(next() % kEvents);
    s.cancel(ids[probe]);
    if (!cancelled[probe] && !done[probe]) {
      cancelled[probe] = true;
      ++n_cancelled;
    }
    if (extra < 50 && next() % 2 == 0) {
      // New work while draining: must land in-order with the rest.
      const Time t = s.now() + static_cast<Time>(next() % 1000);
      s.at(t, [&fired_times, t] { fired_times.push_back(t); });
      ++extra;
    }
  }

  const std::size_t live = kEvents - n_cancelled;
  EXPECT_EQ(fired_times.size(), live + extra);
  EXPECT_EQ(s.executed(), live + extra);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_TRUE(std::is_sorted(fired_times.begin(), fired_times.end()))
      << "events executed out of time order";

  // Every surviving event fired and every cancelled one did not.
  std::multiset<Time> fired_set(fired_times.begin(), fired_times.end());
  for (int i = 0; i < kEvents; ++i) {
    EXPECT_EQ(done[i], !cancelled[i]) << "event " << i;
    if (!cancelled[i]) {
      const auto it = fired_set.find(times[i]);
      ASSERT_NE(it, fired_set.end()) << "scheduled event never fired";
      fired_set.erase(it);
    }
  }
  EXPECT_EQ(fired_set.size(), extra);
}

TEST(Scheduler, StressTieOrderingUnderSlotReuse) {
  // Same-time events must run in insertion order even when their slots are
  // recycled from cancelled predecessors.
  Scheduler s;
  constexpr int kRounds = 1000;
  std::vector<int> order;
  order.reserve(kRounds);
  std::vector<EventId> doomed;
  for (int i = 0; i < kRounds; ++i) doomed.push_back(s.at(5, [] {}));
  for (const EventId id : doomed) s.cancel(id);
  for (int i = 0; i < kRounds; ++i) {
    s.at(5, [&order, i] { order.push_back(i); });  // reuse freed slots
  }
  s.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kRounds));
  for (int i = 0; i < kRounds; ++i) {
    ASSERT_EQ(order[i], i) << "tie broken out of insertion order";
  }
  EXPECT_EQ(s.executed(), static_cast<std::size_t>(kRounds));
}

TEST(Simulation, ForkedRngsAreIndependent) {
  Simulation sim(77);
  Rng a = sim.fork_rng();
  Rng b = sim.fork_rng();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Simulation, RunForAdvancesRelative) {
  Simulation sim;
  sim.run_for(100);
  sim.run_for(50);
  EXPECT_EQ(sim.now(), 150);
}

}  // namespace
}  // namespace msw
