// Discrete-event scheduler: ordering, determinism, cancellation, clocks.
#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.hpp"
#include "sim/simulation.hpp"

namespace msw {
namespace {

TEST(Scheduler, RunsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(30, [&] { order.push_back(3); });
  s.at(10, [&] { order.push_back(1); });
  s.at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(10, [&] { order.push_back(1); });
  s.at(10, [&] { order.push_back(2); });
  s.at(10, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, AfterIsRelative) {
  Scheduler s;
  Time fired_at = -1;
  s.at(100, [&] { s.after(50, [&] { fired_at = s.now(); }); });
  s.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  const EventId id = s.at(10, [&] { fired = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, CancelUnknownIsNoop) {
  Scheduler s;
  s.cancel(EventId{12345});
  s.cancel(EventId{});
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, DoubleCancelIsNoop) {
  Scheduler s;
  const EventId id = s.at(10, [] {});
  s.cancel(id);
  s.cancel(id);
  s.run();
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler s;
  std::vector<Time> fired;
  s.at(10, [&] { fired.push_back(10); });
  s.at(20, [&] { fired.push_back(20); });
  s.at(30, [&] { fired.push_back(30); });
  s.run_until(20);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20}));
  EXPECT_EQ(s.now(), 20);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Scheduler, RunUntilAdvancesClockWhenIdle) {
  Scheduler s;
  s.run_until(500);
  EXPECT_EQ(s.now(), 500);
}

TEST(Scheduler, EventsScheduledDuringRunExecute) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.after(1, recurse);
  };
  s.after(1, recurse);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), 5);
}

TEST(Scheduler, RunBoundedLimitsExecution) {
  Scheduler s;
  int count = 0;
  for (int i = 0; i < 10; ++i) s.at(i, [&] { ++count; });
  EXPECT_EQ(s.run_bounded(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(s.pending(), 6u);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  s.at(1, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, ExecutedCounter) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.at(i, [] {});
  s.run();
  EXPECT_EQ(s.executed(), 7u);
}

TEST(Simulation, ForkedRngsAreIndependent) {
  Simulation sim(77);
  Rng a = sim.fork_rng();
  Rng b = sim.fork_rng();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Simulation, RunForAdvancesRelative) {
  Simulation sim;
  sim.run_for(100);
  sim.run_for(50);
  EXPECT_EQ(sim.now(), 150);
}

}  // namespace
}  // namespace msw
