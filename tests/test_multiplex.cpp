// Mux tagging and the standalone MultiplexLayer's channel routing.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "switch/multiplex_layer.hpp"

namespace msw {
namespace {

using testing::GroupHarness;

TEST(Mux, TagRoundTrip) {
  Message m = Message::group(to_bytes("x"));
  Mux::push(m, 7);
  EXPECT_EQ(Mux::pop(m), 7u);
  EXPECT_EQ(m.data, to_bytes("x"));
}

TEST(Mux, NestedTags) {
  Message m = Message::group({});
  Mux::push(m, 1);
  Mux::push(m, 2);
  EXPECT_EQ(Mux::pop(m), 2u);
  EXPECT_EQ(Mux::pop(m), 1u);
}

TEST(Mux, PopOnGarbageThrows) {
  Message m = Message::group(to_bytes("a"));
  EXPECT_THROW(Mux::pop(m), DecodeError);
}

std::vector<MultiplexLayer*> g_mux;

LayerFactory mux_stack() {
  return [](NodeId, const std::vector<NodeId>&) {
    auto l = std::make_unique<MultiplexLayer>();
    g_mux.push_back(l.get());
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::move(l));
    return layers;
  };
}

class MultiplexTest : public ::testing::Test {
 protected:
  void SetUp() override { g_mux.clear(); }
};

TEST_F(MultiplexTest, DefaultChannelIsTransparent) {
  GroupHarness h(2, mux_stack());
  h.group.send(0, to_bytes("normal"));
  h.sim.run_for(kSecond);
  EXPECT_EQ(h.delivered_data(1).size(), 1u);
}

TEST_F(MultiplexTest, SideChannelRoutesToHandler) {
  GroupHarness h(2, mux_stack());
  Bytes got;
  g_mux[1]->set_channel_handler(5, [&](Message m) { got = m.data.bytes(); });
  Message side = Message::group(to_bytes("side-data"));
  g_mux[0]->send_on(5, std::move(side));
  h.sim.run_for(kSecond);
  EXPECT_EQ(got, to_bytes("side-data"));
  // Side-channel traffic must NOT surface at the app.
  EXPECT_TRUE(h.delivered_data(1).empty());
}

TEST_F(MultiplexTest, UnroutableChannelDroppedAndCounted) {
  GroupHarness h(2, mux_stack());
  Message side = Message::group(to_bytes("lost"));
  g_mux[0]->send_on(9, std::move(side));
  h.sim.run_for(kSecond);
  EXPECT_EQ(g_mux[1]->dropped_unroutable(), 1u);
}

TEST_F(MultiplexTest, ChannelsAreIndependent) {
  GroupHarness h(2, mux_stack());
  std::vector<int> got_on(3, 0);
  g_mux[1]->set_channel_handler(1, [&](Message) { ++got_on[1]; });
  g_mux[1]->set_channel_handler(2, [&](Message) { ++got_on[2]; });
  g_mux[0]->send_on(1, Message::group(to_bytes("a")));
  g_mux[0]->send_on(2, Message::group(to_bytes("b")));
  g_mux[0]->send_on(1, Message::group(to_bytes("c")));
  h.group.send(0, to_bytes("app"));
  h.sim.run_for(kSecond);
  EXPECT_EQ(got_on[1], 2);
  EXPECT_EQ(got_on[2], 1);
  EXPECT_EQ(h.delivered_data(1).size(), 1u);
}

TEST_F(MultiplexTest, P2pSideChannel) {
  GroupHarness h(3, mux_stack());
  int got = 0;
  g_mux[2]->set_channel_handler(4, [&](Message) { ++got; });
  g_mux[1]->set_channel_handler(4, [&](Message) { ADD_FAILURE() << "wrong destination"; });
  g_mux[0]->send_on(4, Message::p2p(h.group.node(2), to_bytes("direct")));
  h.sim.run_for(kSecond);
  EXPECT_EQ(got, 1);
}

}  // namespace
}  // namespace msw
