// Integration: the sequencer-based and token-based total-order protocols
// deliver every message, in one agreed order, at every member — on ideal
// and lossy networks — and the captured traces satisfy the Table 1
// properties they claim.
#include <gtest/gtest.h>

#include <numeric>

#include "harness/workload.hpp"
#include "helpers.hpp"
#include "switch/hybrid.hpp"

namespace msw {
namespace {

using testing::expect_identical_delivery;
using testing::GroupHarness;

struct ProtoCase {
  const char* name;
  LayerFactory (*make)();
};

LayerFactory make_seq() { return make_sequencer_factory(); }
LayerFactory make_tok() { return make_token_factory(); }

class TotalOrderProtocols : public ::testing::TestWithParam<ProtoCase> {};

TEST_P(TotalOrderProtocols, SingleMessageReachesEveryone) {
  GroupHarness h(4, GetParam().make());
  h.send_and_settle(1, to_bytes("hello"));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(h.delivered_data(i).size(), 1u) << "member " << i;
  }
}

TEST_P(TotalOrderProtocols, ConcurrentSendersAgreeOnOrder) {
  GroupHarness h(5, GetParam().make());
  // Everyone sends a burst at the same instant.
  for (std::size_t i = 0; i < 5; ++i) {
    for (int k = 0; k < 4; ++k) h.group.send(i, to_bytes("m"));
  }
  h.sim.run_for(2 * kSecond);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(h.delivered_data(i).size(), 20u) << "member " << i;
  }
  expect_identical_delivery(h);
  EXPECT_TRUE(TotalOrderProperty().holds(h.group.trace()));
}

TEST_P(TotalOrderProtocols, StaggeredSendersAgreeOnOrder) {
  GroupHarness h(4, GetParam().make());
  for (int k = 0; k < 10; ++k) {
    const std::size_t sender = k % 4;
    h.sim.scheduler().at(k * 7 * kMillisecond,
                         [&, sender] { h.group.send(sender, to_bytes("x")); });
  }
  h.sim.run_for(3 * kSecond);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(h.delivered_data(i).size(), 10u);
  }
  expect_identical_delivery(h);
}

TEST_P(TotalOrderProtocols, SenderDeliversItsOwnMessages) {
  GroupHarness h(3, GetParam().make());
  h.send_and_settle(2, to_bytes("mine"));
  const auto delivered = h.delivered_data(2);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].sender, h.group.node(2).v);
}

TEST_P(TotalOrderProtocols, ReliableUnderLoss) {
  GroupHarness h(4, GetParam().make(), testing::lossy_net(0.1), /*seed=*/42);
  for (std::size_t i = 0; i < 4; ++i) {
    for (int k = 0; k < 5; ++k) {
      h.sim.scheduler().at((k * 4 + i) * 11 * kMillisecond,
                           [&, i] { h.group.send(i, to_bytes("L")); });
    }
  }
  h.sim.run_for(10 * kSecond);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(h.delivered_data(i).size(), 20u) << "member " << i << " lost messages";
  }
  expect_identical_delivery(h);
  EXPECT_TRUE(TotalOrderProperty().holds(h.group.trace()));
}

TEST_P(TotalOrderProtocols, CapturedTraceSatisfiesReliabilityAndTotalOrder) {
  GroupHarness h(3, GetParam().make());
  for (int k = 0; k < 6; ++k) h.group.send(k % 3, to_bytes("p" + std::to_string(k)));
  h.sim.run_for(2 * kSecond);
  std::vector<std::uint32_t> ids;
  for (std::size_t i = 0; i < 3; ++i) ids.push_back(h.group.node(i).v);
  EXPECT_TRUE(ReliabilityProperty(ids).holds(h.group.trace()));
  EXPECT_TRUE(TotalOrderProperty().holds(h.group.trace()));
  EXPECT_TRUE(NoReplayProperty().holds(h.group.trace()));
}

TEST_P(TotalOrderProtocols, GroupOfOneDeliversLocally) {
  GroupHarness h(1, GetParam().make());
  h.send_and_settle(0, to_bytes("solo"));
  EXPECT_EQ(h.delivered_data(0).size(), 1u);
}

TEST_P(TotalOrderProtocols, HighLossEventuallyDelivers) {
  GroupHarness h(3, GetParam().make(), testing::lossy_net(0.35), /*seed=*/7);
  for (int k = 0; k < 5; ++k) h.group.send(0, to_bytes("hl"));
  h.sim.run_for(20 * kSecond);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(h.delivered_data(i).size(), 5u) << "member " << i;
  }
  expect_identical_delivery(h);
}

INSTANTIATE_TEST_SUITE_P(Protocols, TotalOrderProtocols,
                         ::testing::Values(ProtoCase{"sequencer", &make_seq},
                                           ProtoCase{"token", &make_tok}),
                         [](const ::testing::TestParamInfo<ProtoCase>& info) {
                           return info.param.name;
                         });

TEST(ProtocolLatency, SequencerBeatsTokenAtOneSender) {
  // The latency trade-off of section 7, in miniature: with a single active
  // sender the sequencer's two-hop path beats waiting for the token.
  const WorkloadConfig cfg{.senders = 1,
                           .rate_per_sender = 50,
                           .duration = 3 * kSecond,
                           .warmup = 500 * kMillisecond,
                           .drain = kSecond,
                           .body_size = 64,
                           .jitter_phase = true};

  Simulation sim_a(3);
  Network net_a(sim_a.scheduler(), sim_a.fork_rng(), testing::era_net());
  Group seq(sim_a, net_a, 10, make_sequencer_factory());
  seq.start();
  const auto seq_result = run_workload(sim_a, seq, cfg);

  Simulation sim_b(3);
  Network net_b(sim_b.scheduler(), sim_b.fork_rng(), testing::era_net());
  Group tok(sim_b, net_b, 10, make_token_factory());
  tok.start();
  const auto tok_result = run_workload(sim_b, tok, cfg);

  EXPECT_EQ(seq_result.missing_deliveries, 0u);
  EXPECT_EQ(tok_result.missing_deliveries, 0u);
  EXPECT_LT(seq_result.latency_ms.mean(), tok_result.latency_ms.mean());
}

}  // namespace
}  // namespace msw
