// The point-to-point specialization: stop-and-wait and go-back-N ARQ
// links, their trade-off, and protocol switching between them.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "proto/link_layers.hpp"
#include "switch/hybrid.hpp"

namespace msw {
namespace {

using testing::GroupHarness;

std::vector<StopAndWaitLayer*> g_sw;
std::vector<GoBackNLayer*> g_gbn;

LayerFactory stop_and_wait(LinkConfig cfg = {}) {
  return [cfg](NodeId, const std::vector<NodeId>&) {
    auto l = std::make_unique<StopAndWaitLayer>(cfg);
    g_sw.push_back(l.get());
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::move(l));
    return layers;
  };
}

LayerFactory go_back_n(LinkConfig cfg = {}) {
  return [cfg](NodeId, const std::vector<NodeId>&) {
    auto l = std::make_unique<GoBackNLayer>(cfg);
    g_gbn.push_back(l.get());
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::move(l));
    return layers;
  };
}

class LinkLayers : public ::testing::Test {
 protected:
  void SetUp() override {
    g_sw.clear();
    g_gbn.clear();
  }
};

TEST_F(LinkLayers, StopAndWaitDeliversInOrder) {
  GroupHarness h(2, stop_and_wait());
  for (int i = 0; i < 10; ++i) h.group.send(0, to_bytes("s" + std::to_string(i)));
  h.sim.run_for(2 * kSecond);
  const auto got = h.delivered_data(1);
  ASSERT_EQ(got.size(), 10u);
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i].seq, i);
  // Sender's own copies loop back too.
  EXPECT_EQ(h.delivered_data(0).size(), 10u);
}

TEST_F(LinkLayers, StopAndWaitSurvivesLoss) {
  GroupHarness h(2, stop_and_wait(), testing::lossy_net(0.3), /*seed=*/91);
  for (int i = 0; i < 12; ++i) h.group.send(0, to_bytes("l" + std::to_string(i)));
  h.sim.run_for(20 * kSecond);
  EXPECT_EQ(h.delivered_data(1).size(), 12u);
  EXPECT_GT(g_sw[0]->stats().retransmissions, 0u);
  EXPECT_TRUE(NoReplayProperty().holds(h.group.trace()));
}

TEST_F(LinkLayers, StopAndWaitOnePacketInFlight) {
  GroupHarness h(2, stop_and_wait());
  for (int i = 0; i < 5; ++i) h.group.send(0, to_bytes("q" + std::to_string(i)));
  // Immediately after sending, four frames must still be queued.
  EXPECT_EQ(g_sw[0]->queued(), 5u);  // all queued; first already in flight
  h.sim.run_for(kSecond);
  EXPECT_EQ(g_sw[0]->queued(), 0u);
}

TEST_F(LinkLayers, GoBackNDeliversInOrder) {
  GroupHarness h(2, go_back_n());
  for (int i = 0; i < 40; ++i) h.group.send(0, to_bytes("g" + std::to_string(i)));
  h.sim.run_for(2 * kSecond);
  const auto got = h.delivered_data(1);
  ASSERT_EQ(got.size(), 40u);
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i].seq, i);
}

TEST_F(LinkLayers, GoBackNPipelinesWithinWindow) {
  LinkConfig cfg;
  cfg.window = 8;
  GroupHarness h(2, go_back_n(cfg));
  for (int i = 0; i < 20; ++i) h.group.send(0, to_bytes("w" + std::to_string(i)));
  EXPECT_EQ(g_gbn[0]->in_flight(), 8u);
  EXPECT_EQ(g_gbn[0]->queued(), 12u);
  h.sim.run_for(2 * kSecond);
  EXPECT_EQ(g_gbn[0]->in_flight(), 0u);
  EXPECT_EQ(h.delivered_data(1).size(), 20u);
}

TEST_F(LinkLayers, GoBackNSurvivesLoss) {
  GroupHarness h(2, go_back_n(), testing::lossy_net(0.25), /*seed=*/17);
  for (int i = 0; i < 30; ++i) h.group.send(0, to_bytes("x" + std::to_string(i)));
  h.sim.run_for(20 * kSecond);
  EXPECT_EQ(h.delivered_data(1).size(), 30u);
  EXPECT_GT(g_gbn[0]->stats().retransmissions, 0u);
  EXPECT_TRUE(NoReplayProperty().holds(h.group.trace()));
}

TEST_F(LinkLayers, BidirectionalTraffic) {
  GroupHarness h(2, go_back_n());
  for (int i = 0; i < 10; ++i) {
    h.group.send(0, to_bytes("a" + std::to_string(i)));
    h.group.send(1, to_bytes("b" + std::to_string(i)));
  }
  h.sim.run_for(2 * kSecond);
  EXPECT_EQ(h.delivered_data(0).size(), 20u);
  EXPECT_EQ(h.delivered_data(1).size(), 20u);
}

TEST_F(LinkLayers, ThroughputTradeoff) {
  // At a rate beyond 1/RTT, stop-and-wait falls behind; go-back-N keeps
  // up. (RTT here ~2 ms, so 2000 msg/s is far beyond 1/RTT ~ 500/s.)
  auto run = [](const LayerFactory& f) {
    GroupHarness h(2, f, testing::ideal_net(), 3);
    for (int i = 0; i < 200; ++i) {
      h.sim.scheduler().at(i * 500, [&h, i] {  // 0.5 ms apart
        h.group.send(0, to_bytes("t" + std::to_string(i)));
      });
    }
    h.sim.run_until(200 * kMillisecond);  // not enough time for S&W
    return h.delivered_data(1).size();
  };
  g_sw.clear();
  const auto sw_delivered = run(stop_and_wait());
  const auto gbn_delivered = run(go_back_n());
  EXPECT_EQ(gbn_delivered, 200u);
  EXPECT_LT(sw_delivered, 150u) << "stop-and-wait should cap near 1/RTT";
}

TEST_F(LinkLayers, SpSwitchesBetweenLinkProtocols) {
  // The paper's specialization, end to end: SP over the two ARQ links on
  // a 2-member "group", switching mid-stream with no loss or reorder.
  GroupHarness h(2, make_switch_factory(stop_and_wait(), go_back_n()));
  for (int i = 0; i < 30; ++i) {
    h.sim.scheduler().at(i * 5 * kMillisecond,
                         [&, i] { h.group.send(0, to_bytes("p" + std::to_string(i))); });
  }
  h.sim.scheduler().at(70 * kMillisecond,
                       [&] { switch_layer_of(h.group.stack(0)).request_switch(); });
  h.sim.run_for(10 * kSecond);
  EXPECT_EQ(switch_layer_of(h.group.stack(1)).epoch(), 1u);
  const auto got = h.delivered_data(1);
  ASSERT_EQ(got.size(), 30u);
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i].seq, i);
  EXPECT_TRUE(NoReplayProperty().holds(h.group.trace()));
  EXPECT_TRUE(TotalOrderProperty().holds(h.group.trace()));
}

TEST_F(LinkLayers, SwitchUnderLossStillExactlyOnce) {
  GroupHarness h(2, make_switch_factory(stop_and_wait(), go_back_n()),
                 testing::lossy_net(0.2), /*seed=*/47);
  for (int i = 0; i < 15; ++i) {
    h.sim.scheduler().at(i * 8 * kMillisecond,
                         [&, i] { h.group.send(0, to_bytes("z" + std::to_string(i))); });
  }
  h.sim.scheduler().at(60 * kMillisecond,
                       [&] { switch_layer_of(h.group.stack(1)).request_switch(); });
  h.sim.run_for(30 * kSecond);
  EXPECT_EQ(h.delivered_data(1).size(), 15u);
  EXPECT_TRUE(NoReplayProperty().holds(h.group.trace()));
}

}  // namespace
}  // namespace msw
