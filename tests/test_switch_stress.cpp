// Property-based stress sweeps of the switching protocol: randomized
// workloads, switch times, initiators, group sizes, and loss rates — the
// invariants (agreement, total order, exactly-once, epoch convergence,
// drained buffers) must hold on every run.
#include <gtest/gtest.h>

#include <set>

#include "helpers.hpp"
#include "switch/hybrid.hpp"

namespace msw {
namespace {

using testing::GroupHarness;

struct StressCase {
  std::uint64_t seed;
  std::size_t members;
  double loss;
  int switches;
};

std::string case_name(const ::testing::TestParamInfo<StressCase>& info) {
  const auto& c = info.param;
  return "seed" + std::to_string(c.seed) + "_n" + std::to_string(c.members) + "_loss" +
         std::to_string(static_cast<int>(c.loss * 100)) + "_sw" + std::to_string(c.switches);
}

class SwitchStress : public ::testing::TestWithParam<StressCase> {};

SwitchLayer& sl(GroupHarness& h, std::size_t i) { return switch_layer_of(h.group.stack(i)); }

TEST_P(SwitchStress, InvariantsHoldUnderRandomizedRuns) {
  const StressCase c = GetParam();
  GroupHarness h(c.members, make_hybrid_total_order_factory(),
                 c.loss > 0 ? testing::lossy_net(c.loss) : testing::ideal_net(), c.seed);
  Rng rng(c.seed * 7919 + 13);

  // Random traffic: every member sends at random instants over 1.2 s.
  const int messages = 40 + static_cast<int>(rng.index(40));
  for (int k = 0; k < messages; ++k) {
    const std::size_t sender = rng.index(c.members);
    const Time at = static_cast<Time>(rng.below(1200)) * kMillisecond;
    h.sim.scheduler().at(at, [&h, sender, k] {
      h.group.send(sender, to_bytes("s" + std::to_string(k)));
    });
  }
  // Random switches, random initiators, spread over the same window.
  for (int s = 0; s < c.switches; ++s) {
    const std::size_t initiator = rng.index(c.members);
    const Time at = 100 * kMillisecond + static_cast<Time>(rng.below(1000)) * kMillisecond;
    h.sim.scheduler().at(at, [&h, initiator] { sl(h, initiator).request_switch(); });
  }
  h.sim.run_for(c.loss > 0 ? 60 * kSecond : 20 * kSecond);

  // Invariant 1: agreement — identical delivery sequences everywhere.
  const auto reference = h.delivered_data(0);
  EXPECT_EQ(reference.size(), static_cast<std::size_t>(messages));
  for (std::size_t i = 1; i < c.members; ++i) {
    EXPECT_EQ(h.delivered_data(i), reference) << "member " << i << " diverged";
  }
  // Invariant 2: the captured trace satisfies the switch-safe properties.
  EXPECT_TRUE(TotalOrderProperty().holds(h.group.trace()));
  EXPECT_TRUE(NoReplayProperty().holds(h.group.trace()));
  std::vector<std::uint32_t> ids;
  for (std::size_t i = 0; i < c.members; ++i) ids.push_back(h.group.node(i).v);
  EXPECT_TRUE(ReliabilityProperty(ids).holds(h.group.trace()));
  // Invariant 3: every member converged to the same epoch, not mid-switch,
  // with drained buffers.
  const std::uint64_t epoch = sl(h, 0).epoch();
  for (std::size_t i = 0; i < c.members; ++i) {
    EXPECT_EQ(sl(h, i).epoch(), epoch) << "member " << i;
    EXPECT_FALSE(sl(h, i).switching()) << "member " << i;
    EXPECT_EQ(sl(h, i).buffered(), 0u) << "member " << i;
  }
  // Invariant 4: the number of completed switches is consistent: requests
  // may coalesce (only NORMAL-token holders initiate), so completed <=
  // requested, and every completed switch advanced the epoch.
  EXPECT_LE(epoch, static_cast<std::uint64_t>(c.switches));
  EXPECT_EQ(sl(h, 0).stats().switches_completed, epoch);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SwitchStress,
    ::testing::Values(StressCase{1, 3, 0.0, 1}, StressCase{2, 3, 0.0, 3},
                      StressCase{3, 5, 0.0, 2}, StressCase{4, 5, 0.0, 4},
                      StressCase{5, 8, 0.0, 2}, StressCase{6, 2, 0.0, 3},
                      StressCase{7, 10, 0.0, 1}, StressCase{8, 4, 0.1, 2},
                      StressCase{9, 5, 0.15, 3}, StressCase{10, 3, 0.2, 2},
                      StressCase{11, 6, 0.05, 4}, StressCase{12, 4, 0.0, 6}),
    case_name);

TEST(SwitchPartition, SwitchStallsAcrossPartitionAndHeals) {
  // Partition one member away mid-switch: SP cannot complete (the token
  // cannot circulate / the drain cannot finish) until the partition heals;
  // afterwards everything converges with no loss.
  GroupHarness h(4, make_hybrid_total_order_factory());
  for (int k = 0; k < 12; ++k) {
    h.sim.scheduler().at(k * 10 * kMillisecond,
                         [&, k] { h.group.send(k % 4, to_bytes("p" + std::to_string(k))); });
  }
  h.sim.run_for(200 * kMillisecond);
  // Isolate member 2 in both directions.
  for (std::size_t i = 0; i < 4; ++i) {
    if (i == 2) continue;
    h.net.set_link_up(h.group.node(2), h.group.node(i), false);
    h.net.set_link_up(h.group.node(i), h.group.node(2), false);
  }
  switch_layer_of(h.group.stack(0)).request_switch();
  h.sim.run_for(3 * kSecond);
  // The switch cannot have completed at everyone (member 2 is cut off).
  EXPECT_LT(switch_layer_of(h.group.stack(2)).epoch(), 1u);
  // Heal and converge.
  for (std::size_t i = 0; i < 4; ++i) {
    if (i == 2) continue;
    h.net.set_link_up(h.group.node(2), h.group.node(i), true);
    h.net.set_link_up(h.group.node(i), h.group.node(2), true);
  }
  h.sim.run_for(30 * kSecond);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(switch_layer_of(h.group.stack(i)).epoch(), 1u) << "member " << i;
    EXPECT_EQ(h.delivered_data(i).size(), 12u) << "member " << i;
  }
  EXPECT_TRUE(TotalOrderProperty().holds(h.group.trace()));
}

TEST(SwitchPartition, TokenRetransmissionSurvivesBriefOutage) {
  GroupHarness h(3, make_hybrid_total_order_factory());
  h.sim.run_for(100 * kMillisecond);
  // Briefly sever the ring edge 0 -> 1; the SP token retransmits across it.
  h.net.set_link_up(h.group.node(0), h.group.node(1), false);
  h.sim.scheduler().after(200 * kMillisecond, [&] {
    h.net.set_link_up(h.group.node(0), h.group.node(1), true);
  });
  switch_layer_of(h.group.stack(1)).request_switch();
  h.sim.run_for(5 * kSecond);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(switch_layer_of(h.group.stack(i)).epoch(), 1u) << "member " << i;
  }
  std::uint64_t retx = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    retx += switch_layer_of(h.group.stack(i)).stats().token_retransmissions;
  }
  EXPECT_GT(retx, 0u);
}

TEST(SwitchStressMisc, ConcurrentRequestsCoalesceViaToken) {
  // Several members request simultaneously; the ring serializes them: the
  // first NORMAL-token holder initiates, others initiate on later NORMAL
  // tokens (or their request is absorbed by already being on the other
  // protocol... the request flag persists, so each request eventually
  // produces a switch).
  GroupHarness h(4, make_hybrid_total_order_factory());
  h.sim.run_for(100 * kMillisecond);
  for (std::size_t i = 0; i < 4; ++i) switch_layer_of(h.group.stack(i)).request_switch();
  h.sim.run_for(10 * kSecond);
  // All four requests fire, one at a time: epoch advances by exactly 4.
  std::uint64_t epoch = switch_layer_of(h.group.stack(0)).epoch();
  EXPECT_EQ(epoch, 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(switch_layer_of(h.group.stack(i)).epoch(), epoch);
    EXPECT_FALSE(switch_layer_of(h.group.stack(i)).switching());
  }
}

}  // namespace
}  // namespace msw
