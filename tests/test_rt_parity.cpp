// Sim/real parity: the same seeded workload over the deterministic
// simulator and the threaded loopback backend must produce the same
// per-process delivery orders, and the streaming property monitors must
// return a clean verdict over both media. This is the acceptance test for
// "the medium is swappable": identical layer code, identical observable
// ordering semantics.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "monitor/monitor_set.hpp"
#include "rt/loopback_transport.hpp"
#include "rt/rt_group.hpp"
#include "rt/udp_transport.hpp"
#include "sim/simulation.hpp"
#include "stack/group.hpp"
#include "switch/hybrid.hpp"
#include "telemetry/hub.hpp"

#include "helpers.hpp"

namespace msw {
namespace {

/// (sender, seq) pairs in delivery order, one list per process.
using DeliveryOrder = std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>>;

constexpr std::size_t kN = 3;
constexpr std::uint64_t kMsgs = 200;

template <typename Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 10000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

/// Single-sender workload: member 0 multicasts kMsgs messages. With one
/// sender, reliable-FIFO pins every process's delivery order exactly —
/// making per-process order comparable across media with no tolerance.
DeliveryOrder run_single_sender_sim() {
  testing::GroupHarness h(kN, make_reliable_fifo_factory(), testing::lossy_net(0.05),
                          /*seed=*/7);
  DeliveryOrder order(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    h.group.stack(i).set_on_deliver([&order, i](const MsgId& id, std::span<const Byte>) {
      order[i].emplace_back(id.sender, id.seq);
    });
  }
  for (std::uint64_t m = 0; m < kMsgs; ++m) {
    h.group.send(0, Bytes{Byte{0x5a}});
    h.sim.run_for(2 * kMillisecond);
  }
  h.sim.run_for(2 * kSecond);
  return order;
}

DeliveryOrder run_single_sender_rt(ThreadedTransport& tr, Executor& ex) {
  RtGroup group(tr, kN, make_reliable_fifo_factory());
  DeliveryOrder order(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    group.stack(i).set_on_deliver([&order, i](const MsgId& id, std::span<const Byte>) {
      order[i].emplace_back(id.sender, id.seq);
    });
  }
  ex.start();
  group.start();
  for (std::uint64_t m = 0; m < kMsgs; ++m) group.send(0, Bytes{Byte{0x5a}});
  EXPECT_TRUE(eventually([&] { return group.total_delivered() == kN * kMsgs; }));
  ex.stop();
  return order;
}

TEST(RtParity, SingleSenderDeliveryOrderIdenticalSimVsLoopback) {
  const DeliveryOrder sim = run_single_sender_sim();
  Executor ex(2);
  LoopbackTransport tr(ex);
  const DeliveryOrder rt = run_single_sender_rt(tr, ex);
  ASSERT_EQ(sim.size(), rt.size());
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(sim[i].size(), kMsgs) << "sim process " << i;
    ASSERT_EQ(rt[i].size(), kMsgs) << "rt process " << i;
    EXPECT_EQ(sim[i], rt[i]) << "delivery order diverged at process " << i;
  }
}

TEST(RtParity, SingleSenderDeliveryOrderIdenticalSimVsUdp) {
  if (!UdpTransport::available()) {
    GTEST_SKIP() << "cannot bind loopback UDP sockets in this environment";
  }
  const DeliveryOrder sim = run_single_sender_sim();
  Executor ex(2);
  UdpTransport tr(ex);
  const DeliveryOrder rt = run_single_sender_rt(tr, ex);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(sim[i], rt[i]) << "delivery order diverged at process " << i;
  }
}

MonitorOptions sequencer_monitor_opts(std::size_t members) {
  MonitorOptions o;
  o.members = members;
  o.check_epoch_consistency = false;  // plain sequencer stack, no SP epochs
  return o;
}

/// Multi-sender total-order workload: every member sends interleaved. The
/// sequencer does not promise one specific interleaving across media — the
/// claim is the *property*: one total order, no loss, no duplicates. The
/// streaming monitors check exactly that on both backends.
TEST(RtParity, SequencerMonitorsVerdictCleanOverSim) {
  Simulation sim(/*seed=*/11);
  Network net(sim.scheduler(), sim.fork_rng(), testing::lossy_net(0.05));
  MonitorSet monitors(sim.telemetry(), sequencer_monitor_opts(4));
  monitors.add_total_order();
  monitors.add_reliable();
  Group group(sim, net, 4, make_sequencer_factory(), /*capture_trace=*/false);
  group.start();
  for (std::uint64_t m = 0; m < 100; ++m) {
    for (std::size_t i = 0; i < 4; ++i) group.send(i, Bytes{Byte{0x11}});
    sim.run_for(3 * kMillisecond);
  }
  sim.run_for(2 * kSecond);
  EXPECT_EQ(group.total_delivered(), 4u * 4u * 100u);
  monitors.finalize(sim.now());
  EXPECT_TRUE(monitors.ok()) << monitors.first_reason();
}

TEST(RtParity, SequencerMonitorsVerdictCleanOverLoopback) {
  TelemetryHub hub;
  MonitorSet monitors(hub, sequencer_monitor_opts(4));
  monitors.add_total_order();
  monitors.add_reliable();
  Executor ex(2);
  LoopbackTransport tr(ex);
  // One shard for the whole group: every telemetry emission (and so every
  // monitor callback) happens on that shard's thread — the monitors need
  // no locks over the real transport either.
  RtGroup group(tr, 4, make_sequencer_factory(), /*shard=*/0, /*capture_trace=*/false, &hub);
  ex.start();
  group.start();
  for (std::uint64_t m = 0; m < 100; ++m) {
    for (std::size_t i = 0; i < 4; ++i) group.send(i, Bytes{Byte{0x11}});
  }
  EXPECT_TRUE(eventually([&] { return group.total_delivered() == 4u * 4u * 100u; }));
  const Time end = tr.now();
  ex.stop();
  monitors.finalize(end);
  EXPECT_TRUE(monitors.ok()) << monitors.first_reason();
}

}  // namespace
}  // namespace msw
