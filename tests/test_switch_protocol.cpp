// The Switching Protocol (SP) — section 2 of the paper.
//
// Covers: transparency in normal mode, the three-rotation token switch,
// the old-before-new delivery guarantee, non-blocking sends mid-switch,
// repeated switches, loss tolerance, oracle-driven switching, and
// preservation of the six-meta-property class on captured traces (the
// Figure 1 claim: SWITCH ∘ SPEC ≡ SPEC).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "helpers.hpp"
#include "switch/hybrid.hpp"

namespace msw {
namespace {

using testing::GroupHarness;

LayerFactory hybrid(SwitchConfig sp = {}) {
  HybridConfig cfg;
  cfg.sp = sp;
  return make_hybrid_total_order_factory(cfg);
}

SwitchLayer& sl(GroupHarness& h, std::size_t i) { return switch_layer_of(h.group.stack(i)); }

/// Waits until every member reports the given epoch (or the deadline).
void run_until_epoch(GroupHarness& h, std::uint64_t epoch, Duration deadline = 10 * kSecond) {
  const Time end = h.sim.now() + deadline;
  while (h.sim.now() < end) {
    bool all = true;
    for (std::size_t i = 0; i < h.group.size(); ++i) {
      if (sl(h, i).epoch() < epoch) all = false;
    }
    if (all) return;
    h.sim.run_for(10 * kMillisecond);
  }
}

TEST(SwitchProtocol, TransparentInNormalMode) {
  GroupHarness h(4, hybrid());
  for (int i = 0; i < 8; ++i) h.group.send(i % 4, to_bytes("n" + std::to_string(i)));
  h.sim.run_for(2 * kSecond);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 8u) << "member " << p;
    EXPECT_EQ(sl(h, p).epoch(), 0u);
    EXPECT_EQ(sl(h, p).active_protocol(), 0);
  }
  EXPECT_TRUE(TotalOrderProperty().holds(h.group.trace()));
}

TEST(SwitchProtocol, ManualSwitchCompletesEverywhere) {
  GroupHarness h(4, hybrid());
  h.sim.run_for(100 * kMillisecond);
  sl(h, 2).request_switch();
  run_until_epoch(h, 1);
  h.sim.run_for(500 * kMillisecond);  // let the FLUSH rotation return
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(sl(h, p).epoch(), 1u) << "member " << p;
    EXPECT_EQ(sl(h, p).active_protocol(), 1);
    EXPECT_FALSE(sl(h, p).switching());
    EXPECT_EQ(sl(h, p).stats().switches_completed, 1u);
  }
  EXPECT_EQ(sl(h, 2).stats().switches_initiated, 1u);
  EXPECT_GT(sl(h, 2).stats().last_switch_duration, 0);
}

TEST(SwitchProtocol, SwitchPreservesTotalOrderUnderTraffic) {
  GroupHarness h(5, hybrid());
  // Continuous traffic while a switch happens in the middle.
  for (int k = 0; k < 40; ++k) {
    const std::size_t sender = k % 5;
    h.sim.scheduler().at(k * 5 * kMillisecond,
                         [&, sender, k] { h.group.send(sender, to_bytes("t" + std::to_string(k))); });
  }
  h.sim.scheduler().at(90 * kMillisecond, [&] { sl(h, 0).request_switch(); });
  h.sim.run_for(10 * kSecond);
  for (std::size_t p = 0; p < 5; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 40u) << "member " << p;
    EXPECT_EQ(sl(h, p).epoch(), 1u);
  }
  for (std::size_t p = 1; p < 5; ++p) {
    EXPECT_EQ(h.delivered_data(p), h.delivered_data(0)) << "member " << p << " diverged";
  }
  EXPECT_TRUE(TotalOrderProperty().holds(h.group.trace()));
  EXPECT_TRUE(NoReplayProperty().holds(h.group.trace()));
}

TEST(SwitchProtocol, OldProtocolDrainedBeforeNewDelivered) {
  GroupHarness h(4, hybrid());
  // Record the epoch each message is sent under; assert per-member
  // delivery order is non-decreasing in epoch (the SP guarantee).
  std::map<MsgId, std::uint64_t> epoch_of;
  const auto send_tagged = [&](std::size_t s) {
    const std::uint64_t e = sl(h, s).epoch_of_next_send();
    const MsgId id{h.group.node(s).v, h.group.stack(s).sent(), MsgId::Kind::kData};
    epoch_of[id] = e;
    h.group.send(s, to_bytes("e"));
  };
  for (int k = 0; k < 60; ++k) {
    const std::size_t sender = k % 4;
    h.sim.scheduler().at(k * 3 * kMillisecond, [&, sender] { send_tagged(sender); });
  }
  h.sim.scheduler().at(50 * kMillisecond, [&] { sl(h, 1).request_switch(); });
  h.sim.run_for(10 * kSecond);
  for (std::size_t p = 0; p < 4; ++p) {
    std::uint64_t max_seen = 0;
    for (const MsgId& id : h.delivered_data(p)) {
      ASSERT_TRUE(epoch_of.count(id));
      const std::uint64_t e = epoch_of[id];
      EXPECT_GE(e, max_seen) << "member " << p
                             << " delivered an old-epoch message after a new-epoch one";
      max_seen = std::max(max_seen, e);
    }
    EXPECT_EQ(h.delivered_data(p).size(), 60u);
  }
  // Some messages must actually have crossed the switch for the test to
  // mean anything.
  std::set<std::uint64_t> epochs_used;
  for (const auto& [id, e] : epoch_of) epochs_used.insert(e);
  EXPECT_EQ(epochs_used.size(), 2u);
}

TEST(SwitchProtocol, SendersNeverBlockedDuringSwitch) {
  GroupHarness h(3, hybrid());
  h.sim.run_for(50 * kMillisecond);
  sl(h, 0).request_switch();
  // Find the moment a member is mid-switch and send from it.
  bool sent_mid_switch = false;
  for (int i = 0; i < 2000 && !sent_mid_switch; ++i) {
    h.sim.run_for(1 * kMillisecond);
    for (std::size_t p = 0; p < 3; ++p) {
      if (sl(h, p).switching()) {
        h.group.send(p, to_bytes("mid-switch"));
        sent_mid_switch = true;
        break;
      }
    }
  }
  ASSERT_TRUE(sent_mid_switch) << "never observed a member in switching state";
  h.sim.run_for(5 * kSecond);
  // The mid-switch message is delivered everywhere (on the new protocol).
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 1u) << "member " << p;
    EXPECT_EQ(sl(h, p).epoch(), 1u);
  }
}

TEST(SwitchProtocol, RepeatedSwitchesToggleProtocols) {
  GroupHarness h(3, hybrid());
  h.sim.run_for(50 * kMillisecond);
  for (std::uint64_t target = 1; target <= 4; ++target) {
    sl(h, target % 3).request_switch();
    run_until_epoch(h, target);
    for (std::size_t p = 0; p < 3; ++p) {
      ASSERT_EQ(sl(h, p).epoch(), target) << "member " << p;
      EXPECT_EQ(sl(h, p).active_protocol(), static_cast<int>(target % 2));
    }
    // Traffic between switches keeps both protocols exercised.
    for (std::size_t s = 0; s < 3; ++s) h.group.send(s, to_bytes("between"));
    h.sim.run_for(kSecond);
  }
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 12u);
  }
  EXPECT_TRUE(TotalOrderProperty().holds(h.group.trace()));
}

TEST(SwitchProtocol, SwitchCompletesUnderLoss) {
  GroupHarness h(4, hybrid(), testing::lossy_net(0.15), /*seed=*/31);
  for (int k = 0; k < 20; ++k) {
    h.sim.scheduler().at(k * 10 * kMillisecond,
                         [&, k] { h.group.send(k % 4, to_bytes("loss")); });
  }
  h.sim.scheduler().at(70 * kMillisecond, [&] { sl(h, 3).request_switch(); });
  h.sim.run_for(30 * kSecond);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(sl(h, p).epoch(), 1u) << "member " << p;
    EXPECT_EQ(h.delivered_data(p).size(), 20u) << "member " << p;
  }
  EXPECT_TRUE(TotalOrderProperty().holds(h.group.trace()));
  // The token transport had to retransmit at least once under 15% loss.
  std::uint64_t retx = 0;
  for (std::size_t p = 0; p < 4; ++p) retx += sl(h, p).stats().token_retransmissions;
  EXPECT_GT(retx, 0u);
}

TEST(SwitchProtocol, StaleEpochDuplicatesDropped) {
  GroupHarness h(3, hybrid(), testing::lossy_net(0.2), /*seed=*/13);
  for (int k = 0; k < 10; ++k) {
    h.sim.scheduler().at(k * 8 * kMillisecond,
                         [&, k] { h.group.send(k % 3, to_bytes("s" + std::to_string(k))); });
  }
  h.sim.scheduler().at(40 * kMillisecond, [&] { sl(h, 0).request_switch(); });
  h.sim.run_for(30 * kSecond);
  // Late retransmissions of epoch-0 messages arriving after the switch are
  // dropped, never re-delivered.
  EXPECT_TRUE(NoReplayProperty().holds(h.group.trace()));
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 10u);
  }
}

TEST(SwitchProtocol, OracleTriggersSwitchUnderLoad) {
  HybridConfig cfg;
  cfg.oracle = [](NodeId) { return std::make_unique<ThresholdOracle>(5); };
  GroupHarness h(10, make_hybrid_total_order_factory(cfg), testing::era_net());
  // Light load: 2 senders — stays on the sequencer.
  for (int k = 0; k < 30; ++k) {
    h.sim.scheduler().at(k * 20 * kMillisecond,
                         [&, k] { h.group.send(k % 2, to_bytes("light")); });
  }
  h.sim.run_for(kSecond);
  for (std::size_t p = 0; p < 10; ++p) {
    ASSERT_EQ(sl(h, p).active_protocol(), 0) << "switched away under light load";
  }
  // Heavy load: 8 senders — the oracle must move the group to the token.
  // The load keeps flowing through the assertion point: with a bare
  // threshold oracle, the group hops straight back to the sequencer the
  // moment traffic stops (the oscillation the paper warns about; see the
  // hysteresis oracle and bench_oracle_ablation).
  for (int k = 0; k < 2000; ++k) {
    h.sim.scheduler().after(k * 2 * kMillisecond,
                            [&, k] { h.group.send(k % 8, to_bytes("heavy")); });
  }
  h.sim.run_for(2 * kSecond);  // 2 s into a 4 s heavy phase
  for (std::size_t p = 0; p < 10; ++p) {
    EXPECT_EQ(sl(h, p).active_protocol(), 1) << "member " << p << " still on sequencer";
  }
}

TEST(SwitchProtocol, ReliabilityAcrossSwitch) {
  GroupHarness h(4, hybrid());
  for (int k = 0; k < 30; ++k) {
    h.sim.scheduler().at(k * 4 * kMillisecond, [&, k] { h.group.send(k % 4, to_bytes("r")); });
  }
  h.sim.scheduler().at(60 * kMillisecond, [&] { sl(h, 2).request_switch(); });
  h.sim.run_for(10 * kSecond);
  std::vector<std::uint32_t> ids;
  for (std::size_t i = 0; i < 4; ++i) ids.push_back(h.group.node(i).v);
  EXPECT_TRUE(ReliabilityProperty(ids).holds(h.group.trace()));
}

TEST(SwitchProtocol, BufferHighWaterMarkReported) {
  GroupHarness h(4, hybrid());
  for (int k = 0; k < 80; ++k) {
    h.sim.scheduler().at(k * 2 * kMillisecond, [&, k] { h.group.send(k % 4, to_bytes("b")); });
  }
  h.sim.scheduler().at(40 * kMillisecond, [&] { sl(h, 0).request_switch(); });
  h.sim.run_for(10 * kSecond);
  // Under this traffic some member must have buffered new-epoch messages
  // while draining.
  std::uint64_t max_buffered = 0;
  for (std::size_t p = 0; p < 4; ++p) {
    max_buffered = std::max(max_buffered, sl(h, p).stats().max_buffered);
    EXPECT_EQ(sl(h, p).buffered(), 0u) << "buffer not drained";
  }
  EXPECT_GT(max_buffered, 0u);
}

TEST(SwitchProtocol, TokenKeepsCirculatingAfterSwitch) {
  GroupHarness h(3, hybrid());
  h.sim.run_for(100 * kMillisecond);
  sl(h, 1).request_switch();
  run_until_epoch(h, 1);
  const std::uint64_t hops_before = sl(h, 0).stats().token_hops;
  h.sim.run_for(kSecond);
  EXPECT_GT(sl(h, 0).stats().token_hops, hops_before)
      << "NORMAL token stopped circulating after the switch";
  // And a second switch is possible.
  sl(h, 2).request_switch();
  run_until_epoch(h, 2);
  EXPECT_EQ(sl(h, 0).epoch(), 2u);
}

TEST(SwitchProtocol, GroupOfTwo) {
  GroupHarness h(2, hybrid());
  h.group.send(0, to_bytes("a"));
  h.group.send(1, to_bytes("b"));
  h.sim.run_for(500 * kMillisecond);
  sl(h, 0).request_switch();
  run_until_epoch(h, 1);
  h.group.send(0, to_bytes("c"));
  h.sim.run_for(2 * kSecond);
  for (std::size_t p = 0; p < 2; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 3u);
    EXPECT_EQ(sl(h, p).epoch(), 1u);
  }
  EXPECT_TRUE(TotalOrderProperty().holds(h.group.trace()));
}

}  // namespace
}  // namespace msw
