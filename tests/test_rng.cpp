// Deterministic RNG: reproducibility, ranges, distribution sanity.
#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace msw {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowZeroIsZero) {
  Rng r(7);
  EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, BelowOneIsZero) {
  Rng r(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng r(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng r(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng r(19);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / 20000.0, 5.0, 0.25);
}

TEST(Rng, SplitIndependence) {
  Rng a(23);
  Rng b = a.split();
  // The split stream should not reproduce the parent's next values.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ShufflePermutes) {
  Rng r(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  r.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

}  // namespace
}  // namespace msw
