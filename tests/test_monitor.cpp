// Unit tests for the streaming property monitors (src/monitor/): one
// injected violation per property proving the report carries the right
// member/sender/seq/epoch identity, plus the bounded-state contract — a
// million events through the windowed monitors without the footprint
// moving.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "monitor/monitor.hpp"
#include "monitor/monitor_set.hpp"
#include "monitor/monitors.hpp"
#include "telemetry/hub.hpp"

namespace msw {
namespace {

DeliverObs obs(std::uint32_t node, std::uint32_t sender, std::uint64_t seq,
               std::uint64_t epoch = 0, Time t = 0) {
  DeliverObs d;
  d.node = node;
  d.sender = sender;
  d.seq = seq;
  d.epoch = epoch;
  d.t = t;
  return d;
}

TEST(FifoMonitor, ReorderNamesTheMemberAndSequence) {
  ViolationLog log;
  FifoMonitor m(log, 3);
  m.on_deliver(obs(/*node=*/0, /*sender=*/1, /*seq=*/0));
  m.on_deliver(obs(0, 1, 2));  // skipping ahead is fine for FIFO alone...
  m.on_deliver(obs(0, 1, 1));  // ...going backwards is not
  ASSERT_FALSE(log.ok());
  const Violation& v = log.kept().front();
  EXPECT_EQ(v.property, "fifo");
  EXPECT_EQ(v.node, 0u);
  EXPECT_EQ(v.sender, 1u);
  EXPECT_EQ(v.seq, 1u);
}

TEST(FifoMonitor, DuplicateIsAViolation) {
  ViolationLog log;
  FifoMonitor m(log, 2);
  m.on_deliver(obs(1, 0, 0));
  m.on_deliver(obs(1, 0, 0));
  EXPECT_EQ(log.total(), 1u);
  EXPECT_EQ(log.kept().front().property, "fifo");
}

TEST(TotalOrderMonitor, OrderDisagreementNamesBothMessages) {
  ViolationLog log;
  TotalOrderMonitor m(log, 2, /*window_cap=*/64, /*check_epoch=*/true);
  // Member 0 delivers (0,0) then (1,0); member 1 sees them swapped.
  m.on_deliver(obs(0, 0, 0));
  m.on_deliver(obs(0, 1, 0));
  m.on_deliver(obs(1, 1, 0));
  ASSERT_FALSE(log.ok());
  const Violation& v = log.kept().front();
  EXPECT_EQ(v.property, "total_order");
  EXPECT_EQ(v.node, 1u);   // the disagreeing member
  EXPECT_EQ(v.sender, 1u); // the message it delivered out of place
  EXPECT_EQ(v.seq, 0u);
  EXPECT_NE(v.detail.find("position"), std::string::npos);
}

TEST(TotalOrderMonitor, DuplicateOfInFlightMessageCaught) {
  ViolationLog log;
  TotalOrderMonitor m(log, 2, 64, true);
  m.on_deliver(obs(0, 0, 0));
  m.on_deliver(obs(0, 0, 0));
  ASSERT_FALSE(log.ok());
  EXPECT_NE(log.kept().front().detail.find("duplicate"), std::string::npos);
}

TEST(TotalOrderMonitor, DuplicateOfRetiredMessageCaughtAsPositionMismatch) {
  ViolationLog log;
  TotalOrderMonitor m(log, 2, 64, true);
  // Both members deliver (0,0) — it retires — then member 1 re-delivers it
  // while the group order has already moved on.
  m.on_deliver(obs(0, 0, 0));
  m.on_deliver(obs(1, 0, 0));
  EXPECT_EQ(m.window_size(), 0u);
  m.on_deliver(obs(0, 0, 1));
  m.on_deliver(obs(1, 0, 0));
  ASSERT_FALSE(log.ok());
  EXPECT_EQ(log.kept().front().node, 1u);
  EXPECT_NE(log.kept().front().detail.find("duplicate of a retired"), std::string::npos);
}

TEST(TotalOrderMonitor, PerMessageEpochMismatchAcrossMembers) {
  ViolationLog log;
  TotalOrderMonitor m(log, 2, 64, true);
  // The flush-bug shape: one member delivers a message under the old
  // epoch, another under the new one.
  m.on_deliver(obs(0, 0, 0, /*epoch=*/4));
  m.on_deliver(obs(1, 0, 0, /*epoch=*/5));
  ASSERT_FALSE(log.ok());
  const Violation& v = log.kept().front();
  EXPECT_EQ(v.property, "epoch");
  EXPECT_EQ(v.node, 1u);
  EXPECT_EQ(v.epoch, 5u);
  EXPECT_NE(v.detail.find("epoch 4"), std::string::npos);
}

TEST(EpochMonitor, NewBeforeOldRegressionNamesTheEpochs) {
  ViolationLog log;
  EpochMonitor m(log, 2);
  m.on_epoch_install(0, 3, 10);
  m.on_deliver(obs(0, 1, 0, /*epoch=*/2, /*t=*/20));  // delivery under an older epoch
  ASSERT_FALSE(log.ok());
  const Violation& v = log.kept().front();
  EXPECT_EQ(v.property, "epoch");
  EXPECT_EQ(v.node, 0u);
  EXPECT_EQ(v.epoch, 2u);
  EXPECT_EQ(v.t, 20);
}

TEST(EpochMonitor, WrapAroundIsNotARegression) {
  ViolationLog log;
  EpochMonitor m(log, 1);
  m.on_epoch_install(0, ~std::uint64_t{0}, 0);
  m.on_epoch_install(0, 0, 1);  // u64 wrap: monotone in epoch space
  EXPECT_TRUE(log.ok());
}

TEST(EpochMonitor, DivergedMembersFailConvergenceAtFinalize) {
  ViolationLog log;
  EpochMonitor m(log, 3);
  m.on_epoch_install(0, 7, 0);
  m.on_epoch_install(1, 8, 0);
  // Member 2 has no evidence at all: skipped, not diverged.
  m.finalize(100);
  ASSERT_FALSE(log.ok());
  EXPECT_NE(log.kept().front().detail.find("ended on epoch"), std::string::npos);
}

TEST(ReliableMonitor, DropAfterStabilityFiresOnStallScan) {
  ViolationLog log;
  ReliableMonitor m(log, 2, /*stall_window=*/100);
  m.on_send(0, 0, true, 0);
  m.on_send(0, 1, true, 0);
  m.on_send(0, 2, true, 0);
  // Member 1 delivers 0 and 2 — a hole at seq 1 behind later traffic.
  m.on_deliver(obs(1, 0, 0, 0, /*t=*/10));
  m.on_deliver(obs(1, 0, 2, 0, /*t=*/12));
  m.check_stalls(50);  // younger than the window: not yet a loss
  EXPECT_TRUE(log.ok());
  m.check_stalls(200);
  ASSERT_FALSE(log.ok());
  const Violation& v = log.kept().front();
  EXPECT_EQ(v.property, "reliable");
  EXPECT_EQ(v.node, 1u);
  EXPECT_EQ(v.sender, 0u);
  EXPECT_EQ(v.seq, 1u);  // the missing message
}

TEST(ReliableMonitor, MissingAtFinalizeNamesTheGap) {
  ViolationLog log;
  ReliableMonitor m(log, 2, 0);
  m.on_send(0, 0, true, 0);
  m.on_send(0, 1, true, 0);
  m.on_deliver(obs(1, 0, 0));
  m.on_deliver(obs(0, 0, 0));
  m.on_deliver(obs(0, 0, 1));  // member 1 never gets seq 1
  m.finalize(100);
  ASSERT_FALSE(log.ok());
  const Violation& v = log.kept().front();
  EXPECT_EQ(v.property, "reliable");
  EXPECT_EQ(v.node, 1u);
  EXPECT_EQ(v.seq, 1u);
}

TEST(ReliableMonitor, ExactDuplicateDetection) {
  ViolationLog log;
  ReliableMonitor m(log, 2, 0);
  m.on_send(0, 0, true, 0);
  m.on_deliver(obs(1, 0, 0));
  m.on_deliver(obs(1, 0, 0));
  ASSERT_FALSE(log.ok());
  EXPECT_NE(log.kept().front().detail.find("duplicate"), std::string::npos);
}

TEST(CausalMonitor, CausalOrderViolationNamesTheLateMessage) {
  ViolationLog log;
  CausalMonitor m(log, 3, 64);
  // Member 0 sends (0,0); member 1 delivers it, then sends (1,0) — which
  // causally follows (0,0). Member 2 delivers (1,0) FIRST.
  m.on_send(0, 0, true, 0);
  m.on_deliver(obs(1, 0, 0));
  m.on_deliver(obs(0, 0, 0));
  m.on_send(1, 0, true, 1);
  m.on_deliver(obs(2, 1, 0));  // before its cause (0,0)
  ASSERT_FALSE(log.ok());
  const Violation& v = log.kept().front();
  EXPECT_EQ(v.property, "causal");
  EXPECT_EQ(v.node, 2u);
  EXPECT_EQ(v.sender, 1u);
  EXPECT_EQ(v.seq, 0u);
}

TEST(CausalMonitor, ConcurrentMessagesInEitherOrderAreFine) {
  ViolationLog log;
  CausalMonitor m(log, 3, 64);
  m.on_send(0, 0, true, 0);
  m.on_send(1, 0, true, 0);  // concurrent with (0,0)
  m.on_deliver(obs(2, 1, 0));
  m.on_deliver(obs(2, 0, 0));
  m.on_deliver(obs(0, 0, 0));
  m.on_deliver(obs(0, 1, 0));
  m.on_deliver(obs(1, 1, 0));
  m.on_deliver(obs(1, 0, 0));
  EXPECT_TRUE(log.ok());
}

// The bounded-state contract: a clean million-event stream through the
// windowed monitors with members keeping pace leaves the footprint flat —
// cells never exceed a members-derived bound with NO message term.
TEST(MonitorBounds, MillionEventsFlatFootprint) {
  constexpr std::size_t kMembers = 8;
  constexpr std::uint64_t kMessages = 125'000;  // × 8 deliveries = 1M events
  ViolationLog log;
  TotalOrderMonitor total(log, kMembers, /*window_cap=*/1 << 10, true);
  ReliableMonitor rel(log, kMembers, /*stall_window=*/0);
  EpochMonitor ep(log, kMembers);

  std::size_t peak = 0;
  for (std::uint64_t i = 0; i < kMessages; ++i) {
    const std::uint32_t sender = static_cast<std::uint32_t>(i % kMembers);
    const std::uint64_t seq = i / kMembers;
    rel.on_send(sender, seq, true, static_cast<Time>(i));
    for (std::uint32_t node = 0; node < kMembers; ++node) {
      const DeliverObs d = obs(node, sender, seq, /*epoch=*/i / 1000, static_cast<Time>(i));
      total.on_deliver(d);
      rel.on_deliver(d);
      ep.on_deliver(d);
    }
    peak = std::max(peak, total.state_cells() + rel.state_cells() + ep.state_cells());
  }
  total.finalize(kMessages);
  rel.finalize(kMessages);
  ep.finalize(kMessages);

  EXPECT_TRUE(log.ok()) << log.first_reason();
  EXPECT_EQ(total.positions_assigned(), kMessages);
  // Every message retires as soon as all members deliver it, so the window
  // never holds more than the one in-flight message.
  EXPECT_LE(peak, kMembers + 2 + kMembers * kMembers * 3 + 3 * kMembers);
}

TEST(MonitorBounds, WindowOverflowReportedOnce) {
  ViolationLog log;
  TotalOrderMonitor m(log, 2, /*window_cap=*/4, true);
  // Member 0 races ahead; member 1 never delivers, so nothing retires.
  for (std::uint64_t s = 0; s < 10; ++s) m.on_deliver(obs(0, 0, s));
  EXPECT_EQ(log.total(), 1u);  // one overflow report, not one per event
  EXPECT_LE(m.window_size(), 4u);
}

// MonitorSet end-to-end over a hand-fed hub: the spurious check and the
// sampling knob live in the set, not the monitors.
TEST(MonitorSet, SpuriousDeliveryCaughtCentrally) {
  TelemetryHub hub;
  MonitorOptions o;
  o.members = 2;
  MonitorSet set(hub, o);
  set.attach_hybrid_suite();

  Tracer& tr0 = hub.tracer(0);
  Tracer& tr1 = hub.tracer(1);
  const std::uint32_t n_send = hub.names().intern("app.send");
  const std::uint32_t n_deliver = hub.names().intern("app.deliver");

  tr0.instant(n_send, TelemetryTrack::kData, /*seq=*/0);
  // Member 1 "delivers" seq 5 from sender 0, which was never sent.
  tr1.instant(n_deliver, TelemetryTrack::kData, /*seq=*/5, /*sender=*/0);
  EXPECT_FALSE(set.ok());
  EXPECT_NE(set.first_reason().find("spurious"), std::string::npos);
  EXPECT_EQ(set.sends_seen(), 1u);
  EXPECT_EQ(set.delivers_seen(), 1u);
}

TEST(MonitorSet, SamplingThinsWindowButNotCounts) {
  TelemetryHub hub;
  MonitorOptions o;
  o.members = 2;
  o.sample_period = 4;
  MonitorSet set(hub, o);
  set.add_total_order();
  set.add_reliable();

  const std::uint32_t n_send = hub.names().intern("app.send");
  const std::uint32_t n_deliver = hub.names().intern("app.deliver");
  for (std::uint64_t s = 0; s < 64; ++s) {
    hub.tracer(0).instant(n_send, TelemetryTrack::kData, s);
    hub.tracer(0).instant(n_deliver, TelemetryTrack::kData, s, 0);
    hub.tracer(1).instant(n_deliver, TelemetryTrack::kData, s, 0);
  }
  set.finalize(100);
  EXPECT_TRUE(set.ok()) << set.first_reason();
  EXPECT_GT(set.sampled_out(), 0u);
  // The order window only counted sampled messages...
  EXPECT_LT(set.total_order()->positions_assigned(), 64u);
  // ...while the reliability check still demanded all 64 (finalize above
  // would have failed otherwise).
}

}  // namespace
}  // namespace msw
