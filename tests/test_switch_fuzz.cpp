// The randomized switch fuzzer as a test subject: campaigns are
// deterministic, the clean stack survives the oracle, a deliberately
// injected SP drain bug is caught and shrunk to a tiny reproducer, and
// fault schedules round-trip through their one-line serialization.
#include <gtest/gtest.h>

#include "harness/fuzz.hpp"
#include "util/rng.hpp"

namespace msw {
namespace {

TEST(SwitchFuzz, CampaignIsDeterministic) {
  // Same base seed => bit-identical campaign: same per-iteration trace
  // digests, same pass/fail, same corpus digest.
  const auto campaign = [] {
    std::vector<std::uint64_t> digests;
    const FuzzSummary s =
        run_fuzz(101, 30, FuzzConfig{}, [&](const FuzzIteration& it) {
          digests.push_back(it.digest);
          return true;
        });
    return std::make_pair(s.corpus_digest, digests);
  };
  const auto first = campaign();
  const auto second = campaign();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
  EXPECT_EQ(first.second.size(), 30u);
}

TEST(SwitchFuzz, DifferentSeedsDiverge) {
  const FuzzIteration a = run_fuzz_iteration(7, FuzzConfig{});
  const FuzzIteration b = run_fuzz_iteration(8, FuzzConfig{});
  EXPECT_NE(a.digest, b.digest);
}

TEST(SwitchFuzz, CleanStackPassesOracle) {
  // No injected bug: a healthy campaign over faults (cuts, partitions,
  // dup/reorder, jitter bursts) must produce zero oracle violations.
  const FuzzSummary s = run_fuzz(201, 40, FuzzConfig{});
  for (const FuzzFailure& f : s.failures) {
    ADD_FAILURE() << "false positive: " << f.repro << " (" << f.reason << ")";
  }
  EXPECT_EQ(s.iterations, 40u);
}

TEST(SwitchFuzz, InjectedFlushBugCaughtAndShrunk) {
  // The deliberate SP bug — members skip sender 0's count in the drain
  // check — must be caught, and at least one reproducer must shrink to a
  // schedule of weight <= 3 (events + active knobs).
  FuzzConfig cfg;
  cfg.inject_flush_bug = true;
  const FuzzSummary s = run_fuzz(1, 15, cfg);
  ASSERT_FALSE(s.failures.empty()) << "oracle missed the injected drain bug";
  std::size_t min_weight = ~std::size_t{0};
  for (const FuzzFailure& f : s.failures) {
    min_weight = std::min(min_weight, f.weight);
    EXPECT_EQ(f.weight, f.schedule.weight());
    EXPECT_NE(f.repro.find("--schedule"), std::string::npos);
    // The shrunk schedule still reproduces, including through a
    // serialization round-trip (exactly what the repro command does).
    const auto parsed = FaultSchedule::parse(f.schedule.to_string());
    ASSERT_TRUE(parsed.has_value());
    const FuzzIteration replay = run_fuzz_iteration(f.seed, cfg, &*parsed);
    EXPECT_FALSE(replay.ok) << f.repro;
  }
  EXPECT_LE(min_weight, 3u);
}

TEST(SwitchFuzz, CrashedSequencerRecoversSelfGap) {
  // Regression for a real fuzzer find: crashing the sequencer node loses
  // its own loopback SEQUENCED copies; it never gap-nacks itself, so the
  // gap froze SP's drain forever. The sequencer now refills its own gaps
  // from local history. Original find: fuzz_switch --seed 13 --crash.
  FuzzConfig cfg;
  cfg.enable_crash = true;
  const auto schedule = FaultSchedule::parse("crash@188644:0;restart@426749:0");
  ASSERT_TRUE(schedule.has_value());
  const FuzzIteration it = run_fuzz_iteration(13, cfg, &*schedule);
  EXPECT_TRUE(it.ok) << it.reason;
  EXPECT_EQ(it.delivered, it.sent * it.members);
}

TEST(SwitchFuzz, CrashCampaignPassesStrictOracle) {
  // Crash/restart faults keep the full oracle: protocol state survives a
  // crash (only queued packets are lost), so every guarantee must hold.
  FuzzConfig cfg;
  cfg.enable_crash = true;
  const FuzzSummary s = run_fuzz(301, 25, cfg);
  for (const FuzzFailure& f : s.failures) {
    ADD_FAILURE() << "crash-mode failure: " << f.repro << " (" << f.reason << ")";
  }
}

TEST(SwitchFuzz, ScheduleSerializationRoundTrips) {
  Rng rng(99);
  FaultGenOptions opts;
  opts.max_crashes = 1;
  for (int i = 0; i < 50; ++i) {
    const FaultSchedule s = generate_fault_schedule(rng, 2 + i % 7, 1500 * kMillisecond, opts);
    const auto parsed = FaultSchedule::parse(s.to_string());
    ASSERT_TRUE(parsed.has_value()) << s.to_string();
    EXPECT_EQ(parsed->to_string(), s.to_string());
    EXPECT_EQ(parsed->weight(), s.weight());
  }
  const auto none = FaultSchedule::parse("none");
  ASSERT_TRUE(none.has_value());
  EXPECT_TRUE(none->empty());
  EXPECT_EQ(none->to_string(), "none");
  EXPECT_FALSE(FaultSchedule::parse("part@12").has_value());
  EXPECT_FALSE(FaultSchedule::parse("dup=notanumber@40000").has_value());
  EXPECT_FALSE(FaultSchedule::parse("frobnicate@10:1").has_value());
}

TEST(SwitchFuzz, AdaptiveOracleCampaignSurvivesChurn) {
  // Oracle-under-churn: the PolicyOracle drives every switch decision while
  // the schedule injects loss, partitions, crashes, and jitter. The trace
  // oracle must stay green, and the campaign only counts if the policy
  // engine actually switched somewhere under that load.
  FuzzConfig cfg;
  cfg.adaptive_oracle = true;
  cfg.enable_crash = true;
  std::uint64_t max_switches = 0;
  const FuzzSummary s = run_fuzz(7, 12, cfg, [&](const FuzzIteration& it) {
    max_switches = std::max(max_switches, it.switches);
    return true;
  });
  EXPECT_TRUE(s.failures.empty())
      << (s.failures.empty() ? "" : s.failures.front().repro);
  EXPECT_GE(max_switches, 1u);
}

TEST(SwitchFuzz, ShrinkerKeepsRecoveryWithOutage) {
  // Shrinking must treat an outage and its recovery as one atom: a shrunk
  // schedule never contains a partition without its heal (or a crash
  // without its restart), which would fail for the wrong reason.
  FuzzConfig cfg;
  cfg.inject_flush_bug = true;
  const FuzzSummary s = run_fuzz(1, 15, cfg);
  ASSERT_FALSE(s.failures.empty());
  for (const FuzzFailure& f : s.failures) {
    int balance_part = 0, balance_link = 0, balance_crash = 0;
    for (const FaultEvent& e : f.schedule.events) {
      switch (e.kind) {
        case FaultEvent::Kind::kPartition: ++balance_part; break;
        case FaultEvent::Kind::kHeal: --balance_part; break;
        case FaultEvent::Kind::kLinkDown: ++balance_link; break;
        case FaultEvent::Kind::kLinkUp: --balance_link; break;
        case FaultEvent::Kind::kCrash: ++balance_crash; break;
        case FaultEvent::Kind::kRestart: --balance_crash; break;
        case FaultEvent::Kind::kJitterBurst: break;
      }
    }
    EXPECT_EQ(balance_part, 0) << f.repro;
    EXPECT_EQ(balance_link, 0) << f.repro;
    EXPECT_EQ(balance_crash, 0) << f.repro;
  }
}

}  // namespace
}  // namespace msw
