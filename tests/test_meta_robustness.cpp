// Self-tests of the meta-property checker: determinism, witness
// soundness, vacuity handling, and behaviour on degenerate corpora.
#include <gtest/gtest.h>

#include "trace/generators.hpp"
#include "trace/meta.hpp"

namespace msw {
namespace {

TEST(MetaRobustness, MatrixIsDeterministicForASeed) {
  const auto run = [] {
    Rng rng(123);
    const auto corpus = standard_corpus(rng, 4, 4);
    const auto props = standard_properties(4);
    std::string fingerprint;
    for (const auto& row : compute_meta_matrix(props, corpus, rng, 16)) {
      fingerprint += row.property;
      for (const auto& res : row.results) fingerprint += verdict_mark(res.verdict);
    }
    return fingerprint;
  };
  EXPECT_EQ(run(), run());
}

TEST(MetaRobustness, EveryRefutationIsSound) {
  Rng rng(2024);
  const auto corpus = standard_corpus(rng, 6, 4);
  const auto props = standard_properties(4);
  for (const auto& row : compute_meta_matrix(props, corpus, rng, 16)) {
    const Property* prop = nullptr;
    for (const auto& p : props) {
      if (p->name() == row.property) prop = p.get();
    }
    ASSERT_NE(prop, nullptr);
    for (const auto& res : row.results) {
      if (res.verdict != MetaVerdict::kRefuted) continue;
      ASSERT_TRUE(res.below && res.above);
      EXPECT_TRUE(prop->holds(*res.below)) << row.property << ": below must satisfy";
      EXPECT_FALSE(prop->holds(*res.above)) << row.property << ": above must violate";
      EXPECT_TRUE(well_formed(*res.above)) << row.property << ": relations keep traces legal";
    }
  }
}

TEST(MetaRobustness, EmptyCorpusIsVacuousEverywhere) {
  Rng rng(1);
  const std::vector<Trace> empty;
  for (const auto& rel : standard_relations()) {
    const auto res = check_preservation(TotalOrderProperty(), *rel, empty, rng);
    EXPECT_EQ(res.verdict, MetaVerdict::kVacuous);
    EXPECT_EQ(res.pairs_checked, 0u);
  }
  EXPECT_EQ(check_composable(TotalOrderProperty(), empty, rng).verdict,
            MetaVerdict::kVacuous);
}

TEST(MetaRobustness, EmptyTraceInCorpusIsHarmless) {
  Rng rng(1);
  const std::vector<Trace> corpus = {Trace{}, {send_ev(0, 0), deliver_ev(0, 0, 0)}};
  for (const auto& rel : standard_relations()) {
    const auto res = check_preservation(IntegrityProperty({0}), *rel, corpus, rng);
    EXPECT_NE(res.verdict, MetaVerdict::kRefuted) << rel->name();
  }
}

TEST(MetaRobustness, SingleEventTraces) {
  Rng rng(1);
  const std::vector<Trace> corpus = {{send_ev(0, 0)}, {deliver_ev(1, 0, 7)}};
  // Nothing here can refute Total Order.
  for (const auto& rel : standard_relations()) {
    const auto res = check_preservation(TotalOrderProperty(), *rel, corpus, rng);
    EXPECT_NE(res.verdict, MetaVerdict::kRefuted);
  }
}

TEST(MetaRobustness, VariantBudgetIsRespected) {
  Rng rng(5);
  GenOptions opts;
  opts.n_msgs = 10;
  const Trace big = gen_total_order_trace(rng, opts);
  for (const auto& rel : standard_relations()) {
    EXPECT_LE(rel->relate(big, rng, 5).size(), 5u) << rel->name();
  }
}

TEST(MetaRobustness, MatrixColumnsMatchRelationOrder) {
  const auto cols = meta_matrix_columns();
  const auto rels = standard_relations();
  for (std::size_t i = 0; i < rels.size(); ++i) {
    EXPECT_EQ(cols[i], rels[i]->name());
  }
  EXPECT_EQ(cols[5], "Composable");
}

}  // namespace
}  // namespace msw
