// Batched-vs-unbatched equivalence: the batched data plane (MessageBatch
// dispatch, flat header encodes, one-scatter multicast fan-out, coalesced
// delivery) must be an *optimization*, not a semantics change. For the
// same seed and the same submitted sends, a run with batching on and a
// run with batching off must produce, at every process, the identical
// sequence of trace events — bodies, ids, order, and simulated
// timestamps — plus identical network statistics (bytes on wire, copies
// delivered) and identical protocol-layer counters.
//
// Comparison is per-process projection, not the global trace: coalescing
// legitimately merges same-instant events into fewer scheduler slots, so
// the interleaving *across* processes at one instant may differ while
// every per-process history (the paper's system model: a trace is what a
// process observes) is unchanged. See DESIGN.md section 11.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "proto/causal_layer.hpp"
#include "proto/link_layers.hpp"
#include "proto/reliable_layer.hpp"
#include "switch/hybrid.hpp"
#include "trace/trace.hpp"

namespace msw {
namespace {

using testing::GroupHarness;

// ---------------------------------------------------------------------------
// MessageBatch container basics
// ---------------------------------------------------------------------------

Message group_msg(const std::string& body) { return Message::group(to_bytes(body)); }

TEST(MessageBatchContainer, PreservesOrderAcrossSpill) {
  MessageBatch b;
  const std::size_t n = MessageBatch::kInline * 3 + 1;
  for (std::size_t i = 0; i < n; ++i) b.push_back(group_msg("m" + std::to_string(i)));
  ASSERT_EQ(b.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(b[i].data, to_bytes("m" + std::to_string(i))) << "slot " << i;
  }
  std::size_t i = 0;
  for (const Message& m : b) {
    EXPECT_EQ(m.data, to_bytes("m" + std::to_string(i++)));
  }
}

TEST(MessageBatchContainer, MoveEmptiesSource) {
  MessageBatch a;
  for (int i = 0; i < 20; ++i) a.push_back(group_msg("x"));
  MessageBatch b = std::move(a);
  EXPECT_EQ(b.size(), 20u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): asserted contract
  a.push_back(group_msg("fresh"));
  EXPECT_EQ(a.size(), 1u);
}

// ---------------------------------------------------------------------------
// Equivalence harness
// ---------------------------------------------------------------------------

struct RunResult {
  Trace trace;
  std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t> net;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t scheduler_events = 0;
  // Summed protocol counters where the scenario's stack has a ReliableLayer.
  std::uint64_t rel_nacks = 0, rel_retx = 0, rel_dups = 0;
};

/// One scenario run: `n` members on `cfg`, a fixed submission schedule
/// (each entry = (time ms, sender, batch size)), everything seeded
/// identically; only `batching` differs between the two arms.
RunResult run_scenario(const LayerFactory& factory, NetConfig cfg, bool batching,
                       std::size_t n, std::uint64_t seed, int reliable_at = -1) {
  GroupHarness h(n, factory, cfg, seed);
  h.group.set_batching(batching);
  int k = 0;
  for (int tick = 0; tick < 12; ++tick) {
    const std::size_t sender = static_cast<std::size_t>(tick) % n;
    const Time when = (10 + tick * 37) * kMillisecond;
    const std::size_t batch = 1 + static_cast<std::size_t>(tick) % 5;
    std::vector<Bytes> bodies;
    for (std::size_t j = 0; j < batch; ++j) bodies.push_back(to_bytes("b" + std::to_string(k++)));
    h.sim.scheduler().at(when, [&h, sender, bodies = std::move(bodies)]() mutable {
      h.group.send_batch(sender, std::move(bodies));
    });
  }
  h.sim.run_for(20 * kSecond);

  RunResult r;
  r.trace = h.group.trace();
  const auto& s = h.net.stats();
  r.net = {s.unicasts_sent, s.multicasts_sent, s.copies_delivered, s.copies_dropped_loss,
           s.bytes_on_wire};
  r.sent = h.group.total_sent();
  r.delivered = h.group.total_delivered();
  r.scheduler_events = h.sim.scheduler().executed();
  if (reliable_at >= 0) {
    for (std::size_t i = 0; i < n; ++i) {
      auto& rel = static_cast<ReliableLayer&>(
          h.group.stack(i).chain().layer(static_cast<std::size_t>(reliable_at)));
      r.rel_nacks += rel.stats().nacks_sent;
      r.rel_retx += rel.stats().retransmissions;
      r.rel_dups += rel.stats().duplicates_dropped;
    }
  }
  return r;
}

std::vector<TraceEvent> project(const Trace& t, std::uint32_t process) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : t) {
    if (e.process == process) out.push_back(e);
  }
  return out;
}

void expect_projections_identical(const Trace& batched, const Trace& unbatched) {
  ASSERT_EQ(processes_of(batched), processes_of(unbatched));
  for (std::uint32_t p : processes_of(unbatched)) {
    const auto a = project(batched, p);
    const auto b = project(unbatched, p);
    ASSERT_EQ(a.size(), b.size()) << "process " << p << " event count diverged";
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "process " << p << " event " << i << " diverged";
      EXPECT_EQ(a[i].time, b[i].time)
          << "process " << p << " event " << i << " shifted in simulated time";
    }
  }
}

void expect_equivalent(const RunResult& batched, const RunResult& unbatched) {
  EXPECT_GT(unbatched.delivered, 0u) << "scenario delivered nothing; vacuous";
  EXPECT_EQ(batched.sent, unbatched.sent);
  EXPECT_EQ(batched.delivered, unbatched.delivered);
  EXPECT_EQ(batched.net, unbatched.net)
      << "wire statistics diverged (bytes/copies/multicasts must be identical)";
  EXPECT_EQ(batched.rel_nacks, unbatched.rel_nacks);
  EXPECT_EQ(batched.rel_retx, unbatched.rel_retx);
  EXPECT_EQ(batched.rel_dups, unbatched.rel_dups);
  expect_projections_identical(batched.trace, unbatched.trace);
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

TEST(BatchEquivalence, ReliableFifoUnderRealisticLossyNet) {
  // The full-cost model: CPU charges, bandwidth serialization, jitter and
  // loss draws. Equivalence here proves the batched scatter consumes the
  // per-link RNG streams and transmit-time reservations in exactly the
  // per-message order.
  NetConfig cfg = testing::era_net();
  cfg.loss = 0.05;
  const auto on = run_scenario(make_reliable_fifo_factory(), cfg, true, 5, 42, 1);
  const auto off = run_scenario(make_reliable_fifo_factory(), cfg, false, 5, 42, 1);
  expect_equivalent(on, off);
}

TEST(BatchEquivalence, SequencerUnderLoss) {
  // Sequencer path: order requests, history retransmissions and gap NACKs
  // interleave with the batched sequenced multicasts.
  const auto on = run_scenario(make_sequencer_factory(), testing::lossy_net(0.1), true, 4, 7);
  const auto off = run_scenario(make_sequencer_factory(), testing::lossy_net(0.1), false, 4, 7);
  expect_equivalent(on, off);
}

TEST(BatchEquivalence, CausalOverReliable) {
  const LayerFactory factory = [](NodeId, const std::vector<NodeId>&) {
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::make_unique<CausalLayer>());
    layers.push_back(std::make_unique<ReliableLayer>());
    return layers;
  };
  NetConfig cfg = testing::era_net();
  cfg.loss = 0.03;
  const auto on = run_scenario(factory, cfg, true, 4, 11, 1);
  const auto off = run_scenario(factory, cfg, false, 4, 11, 1);
  expect_equivalent(on, off);
}

TEST(BatchEquivalence, HybridTotalOrderAcrossASwitch) {
  // The switching protocol mid-flight: batches straddle PREPARE/SWITCH
  // token rotations, exercising the batch split at the SP epoch boundary
  // and the control-frame flush rule in SwitchLayer::up_batch.
  const auto run = [](bool batching) {
    GroupHarness h(4, make_hybrid_total_order_factory(), testing::lossy_net(0.05), 99);
    h.group.set_batching(batching);
    int k = 0;
    for (int tick = 0; tick < 14; ++tick) {
      const std::size_t sender = static_cast<std::size_t>(tick) % 4;
      std::vector<Bytes> bodies;
      for (std::size_t j = 0; j < 3; ++j) bodies.push_back(to_bytes("s" + std::to_string(k++)));
      h.sim.scheduler().at((15 + tick * 29) * kMillisecond,
                           [&h, sender, bodies = std::move(bodies)]() mutable {
                             h.group.send_batch(sender, std::move(bodies));
                           });
    }
    h.sim.scheduler().at(150 * kMillisecond,
                         [&h] { switch_layer_of(h.group.stack(1)).request_switch(); });
    h.sim.run_for(20 * kSecond);
    return h.group.trace();
  };
  const Trace on = run(true);
  const Trace off = run(false);
  EXPECT_FALSE(off.empty());
  expect_projections_identical(on, off);
}

TEST(BatchEquivalence, StopAndWaitPointToPoint) {
  // The ARQ specialization, slowest arm: one frame in flight means a
  // submitted batch drains through the queue one RTT at a time, so the
  // batched path's only latitude is submission-side — the wire behaviour
  // (and every retransmission under loss) must be identical.
  const LayerFactory factory = [](NodeId, const std::vector<NodeId>&) {
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::make_unique<StopAndWaitLayer>());
    return layers;
  };
  NetConfig cfg = testing::era_net();
  cfg.loss = 0.05;
  const auto on = run_scenario(factory, cfg, true, 2, 17);
  const auto off = run_scenario(factory, cfg, false, 2, 17);
  expect_equivalent(on, off);
}

TEST(BatchEquivalence, GoBackNPointToPoint) {
  // Go-back-N: a submitted batch can fill the whole window at once, so the
  // batched path interleaves window pumps, cumulative acks, and full-window
  // retransmissions — all of which must match the scalar path frame for
  // frame.
  const LayerFactory factory = [](NodeId, const std::vector<NodeId>&) {
    LinkConfig cfg;
    cfg.window = 4;  // smaller than the biggest submitted batch: backlog spills
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::make_unique<GoBackNLayer>(cfg));
    return layers;
  };
  NetConfig net = testing::era_net();
  net.loss = 0.05;
  const auto on = run_scenario(factory, net, true, 2, 23);
  const auto off = run_scenario(factory, net, false, 2, 23);
  expect_equivalent(on, off);
}

TEST(BatchEquivalence, CoalescingReducesSchedulerEvents) {
  // Under the ideal cost model (no per-copy CPU, no serialization) the
  // batched plane coalesces a whole run's arrivals at one destination
  // into a single scheduler event — same deliveries, far fewer events.
  const auto on = run_scenario(make_reliable_fifo_factory(), testing::ideal_net(), true, 6, 3, 1);
  const auto off =
      run_scenario(make_reliable_fifo_factory(), testing::ideal_net(), false, 6, 3, 1);
  expect_equivalent(on, off);
  EXPECT_LT(on.scheduler_events, off.scheduler_events)
      << "batching under the ideal cost model must execute fewer scheduler events";
}

}  // namespace
}  // namespace msw
