// FifoLayer: per-sender ordering, gap buffering, duplicate suppression.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "proto/fifo_layer.hpp"
#include "proto/reliable_layer.hpp"

namespace msw {
namespace {

using testing::GroupHarness;

LayerFactory fifo_only() {
  return [](NodeId, const std::vector<NodeId>&) {
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::make_unique<FifoLayer>());
    return layers;
  };
}

TEST(FifoLayer, PerSenderOrderOnIdealNet) {
  GroupHarness h(3, fifo_only());
  for (int i = 0; i < 10; ++i) h.group.send(0, to_bytes("m" + std::to_string(i)));
  h.sim.run_for(kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    const auto got = h.delivered_data(p);
    ASSERT_EQ(got.size(), 10u);
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].seq, i) << "member " << p;
    }
  }
}

TEST(FifoLayer, InterleavedSendersEachFifo) {
  GroupHarness h(4, fifo_only());
  for (int i = 0; i < 6; ++i) {
    h.group.send(0, to_bytes("a"));
    h.group.send(1, to_bytes("b"));
  }
  h.sim.run_for(kSecond);
  for (std::size_t p = 0; p < 4; ++p) {
    std::uint64_t next0 = 0, next1 = 0;
    for (const auto& id : h.delivered_data(p)) {
      if (id.sender == h.group.node(0).v) {
        EXPECT_EQ(id.seq, next0++);
      }
      if (id.sender == h.group.node(1).v) {
        EXPECT_EQ(id.seq, next1++);
      }
    }
    EXPECT_EQ(next0, 6u);
    EXPECT_EQ(next1, 6u);
  }
}

// Drive a FifoLayer directly to exercise reordering paths precisely.
class DirectFifo : public ::testing::Test {
 protected:
  DirectFifo() {
    // A bare-bones Services for direct layer driving.
    sim_ = std::make_unique<Simulation>(1);
    net_ = std::make_unique<Network>(sim_->scheduler(), sim_->fork_rng(), testing::ideal_net());
    const NodeId self = net_->add_node();
    const NodeId peer = net_->add_node();
    stack_ = std::make_unique<Stack>(*net_, self, std::vector<NodeId>{self, peer},
                                     make_layers(), sim_->fork_rng());
  }

  std::vector<std::unique_ptr<Layer>> make_layers() {
    auto fifo = std::make_unique<FifoLayer>();
    fifo_ = fifo.get();
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::move(fifo));
    return layers;
  }

  /// Build the wire form of a data message from `origin` with `seq`.
  static Message data_msg(std::uint32_t origin, std::uint64_t seq) {
    Message m = Message::group(to_bytes("payload"));
    m.push_header([&](Writer& w) {
      w.u8(0);  // Type::kData
      w.u32(origin);
      w.u64(seq);
    });
    return m;
  }

  std::unique_ptr<Simulation> sim_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<Stack> stack_;
  FifoLayer* fifo_ = nullptr;
};

TEST_F(DirectFifo, BuffersGapThenDrains) {
  std::vector<Bytes> delivered;
  int count = 0;
  // Intercept deliveries above the layer by replacing the up route: we
  // drive the layer directly below the stack's app boundary, so deliveries
  // land in the stack app callback only if the app header exists. Instead,
  // count via the layer's buffered() accessor and a custom sink.
  fifo_->up(data_msg(9, 1));
  EXPECT_EQ(fifo_->buffered(), 1u);  // seq 1 waits for seq 0
  fifo_->up(data_msg(9, 2));
  EXPECT_EQ(fifo_->buffered(), 2u);
  fifo_->up(data_msg(9, 0));
  EXPECT_EQ(fifo_->buffered(), 0u);  // drained 0,1,2
  (void)delivered;
  (void)count;
}

TEST_F(DirectFifo, DuplicateOfDeliveredDropped) {
  fifo_->up(data_msg(9, 0));
  fifo_->up(data_msg(9, 0));  // duplicate: silently dropped
  EXPECT_EQ(fifo_->buffered(), 0u);
}

TEST_F(DirectFifo, DuplicateOfBufferedNotDoubled) {
  fifo_->up(data_msg(9, 3));
  fifo_->up(data_msg(9, 3));
  EXPECT_EQ(fifo_->buffered(), 1u);
}

TEST_F(DirectFifo, IndependentOrigins) {
  fifo_->up(data_msg(7, 1));
  fifo_->up(data_msg(8, 1));
  EXPECT_EQ(fifo_->buffered(), 2u);
  fifo_->up(data_msg(7, 0));
  EXPECT_EQ(fifo_->buffered(), 1u);  // origin 8 still gapped
}

TEST(FifoOverReliable, OrderedUnderLoss) {
  GroupHarness h(3,
                 [](NodeId, const std::vector<NodeId>&) {
                   std::vector<std::unique_ptr<Layer>> layers;
                   layers.push_back(std::make_unique<FifoLayer>());
                   layers.push_back(std::make_unique<ReliableLayer>());
                   return layers;
                 },
                 testing::lossy_net(0.2), /*seed=*/11);
  for (int i = 0; i < 15; ++i) h.group.send(0, to_bytes("x" + std::to_string(i)));
  h.sim.run_for(15 * kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    const auto got = h.delivered_data(p);
    ASSERT_EQ(got.size(), 15u) << "member " << p;
    for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i].seq, i);
  }
}

}  // namespace
}  // namespace msw
