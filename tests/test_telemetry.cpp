// Telemetry plane: metrics registry, event rings, span tracing, exporters,
// and the flight recorder (src/telemetry/, DESIGN.md section 9).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "harness/fuzz.hpp"
#include "helpers.hpp"
#include "switch/hybrid.hpp"
#include "telemetry/export.hpp"

namespace msw {
namespace {

using testing::GroupHarness;

LayerFactory hybrid() { return make_hybrid_total_order_factory(); }

SwitchLayer& sl(GroupHarness& h, std::size_t i) { return switch_layer_of(h.group.stack(i)); }

void run_until_epoch(GroupHarness& h, std::uint64_t epoch, Duration deadline = 10 * kSecond) {
  const Time stop = h.sim.now() + deadline;
  while (h.sim.now() < stop) {
    h.sim.run_for(10 * kMillisecond);
    bool all = true;
    for (std::size_t i = 0; i < h.group.size(); ++i) {
      if (sl(h, i).epoch() < epoch || sl(h, i).switching()) all = false;
    }
    if (all) return;
  }
  FAIL() << "group did not reach epoch " << epoch;
}

/// Sum of every same-named entry in the aggregate view.
double agg_value(const MetricsRegistry& reg, std::string_view name) {
  double total = 0;
  for (const auto& e : reg.entries()) {
    if (e.name == name) total += reg.value_of(e);
  }
  return total;
}

// ---------------------------------------------------------------- registry

TEST(MetricsRegistry, CounterGaugeHistogram) {
  MetricsRegistry reg;
  reg.counter("c").inc();
  reg.counter("c").inc(4);
  EXPECT_EQ(reg.counter("c").value(), 5u);

  reg.gauge("g").set(7);
  reg.gauge("g").add(-3);
  EXPECT_EQ(reg.gauge("g").value(), 4);
  EXPECT_EQ(reg.gauge("g").max(), 7);

  auto& h = reg.histogram("h");
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_NEAR(h.mean(), 50.5, 1e-9);
  // log2 buckets + interpolation: coarse, but the median must land in the
  // right half-decade and percentiles must be monotone.
  EXPECT_GT(h.p50(), 20.0);
  EXPECT_LT(h.p50(), 80.0);
  EXPECT_LE(h.p50(), h.p99());
  EXPECT_LE(h.p99(), static_cast<double>(h.max()) + 1);

  // Registration order is enumeration order.
  ASSERT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.entries()[0].name, "c");
  EXPECT_EQ(reg.entries()[1].name, "g");
  EXPECT_EQ(reg.entries()[2].name, "h");
}

TEST(Histogram, SmallValuesAreExact) {
  // The first octave (values 0..7) has unit-width buckets, so every small
  // value round-trips exactly and the percentiles are sharp.
  MetricsRegistry reg;
  auto& h = reg.histogram("h");
  for (std::uint64_t v = 0; v <= 7; ++v) h.record(v);
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 7u);
  EXPECT_LE(h.p50(), 4.0);
  EXPECT_GE(h.p50(), 3.0);
  EXPECT_LE(h.p99(), 7.0);
}

TEST(Histogram, LogLinearPercentilesHaveBoundedRelativeError) {
  // Log2 octaves with 8 linear sub-buckets: bucket width is at most 1/8 of
  // the bucket's lower edge, so any quantile estimate is within 12.5% of
  // the true value. Pin p50/p99/p999 on a uniform distribution, where the
  // true quantiles are known in closed form.
  MetricsRegistry reg;
  auto& h = reg.histogram("lat");
  constexpr std::uint64_t kMax = 100'000;
  for (std::uint64_t v = 1; v <= kMax; ++v) h.record(v);

  const auto check = [&](double p, double truth) {
    const double est = h.percentile(p);
    EXPECT_NEAR(est, truth, 0.13 * truth) << "p" << p;
  };
  check(50.0, 50'000.0);
  check(99.0, 99'000.0);
  check(99.9, 99'900.0);

  // Monotone, and bounded by the observed extremes.
  EXPECT_LE(h.p50(), h.p99());
  EXPECT_LE(h.p99(), h.p999());
  EXPECT_LE(h.p999(), static_cast<double>(h.max()));
  EXPECT_GE(h.p50(), static_cast<double>(h.min()));
}

TEST(Histogram, PercentilesClampToObservedRange) {
  MetricsRegistry reg;
  auto& h = reg.histogram("one");
  h.record(1000);
  // A single sample: every percentile is that sample, not a bucket edge.
  EXPECT_EQ(h.p50(), 1000.0);
  EXPECT_EQ(h.p99(), 1000.0);
  EXPECT_EQ(h.p999(), 1000.0);
  EXPECT_EQ(reg.histogram("empty").percentile(50.0), 0.0);
}

TEST(MetricsRegistry, ExternalViewsDedupWithStableSuffix) {
  MetricsRegistry reg;
  std::uint64_t a = 11, b = 22;
  reg.attach_counter("layer.hits", &a);
  reg.attach_counter("layer.hits", &b);  // second instance of the layer
  ASSERT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.entries()[0].name, "layer.hits");
  EXPECT_EQ(reg.entries()[1].name, "layer.hits#2");
  a = 100;
  EXPECT_EQ(reg.value_of(reg.entries()[0]), 100.0);  // live view, not a copy
  EXPECT_EQ(reg.value_of(reg.entries()[1]), 22.0);
}

TEST(MetricsRegistry, AggregateSumsAcrossRegistries) {
  MetricsRegistry a, b, total;
  a.counter("x").inc(3);
  b.counter("x").inc(4);
  std::uint64_t ext = 10;
  b.attach_counter("y", &ext);
  total.aggregate(a);
  total.aggregate(b);
  EXPECT_EQ(agg_value(total, "x"), 7.0);
  EXPECT_EQ(agg_value(total, "y"), 10.0);
}

TEST(MetricsView, ResolvesLazilyAndReadsZeroUntilRegistered) {
  // The signal plane declares the instruments it wants before the layers
  // that register them exist; a view slot must read 0 until the name shows
  // up, then track the live instrument without re-declaration.
  MetricsRegistry reg;
  MetricsView view(&reg);
  const std::size_t sent = view.add("app.sent");
  const std::size_t lat = view.add("app.lat");
  EXPECT_EQ(view.read(sent), 0.0);
  EXPECT_EQ(view.histogram(lat), nullptr);

  reg.counter("app.sent").inc(3);
  EXPECT_EQ(view.read(sent), 3.0);
  reg.counter("app.sent").inc(2);
  EXPECT_EQ(view.read(sent), 5.0);  // live view, not a copy

  reg.histogram("app.lat").record(7);
  ASSERT_NE(view.histogram(lat), nullptr);
  EXPECT_EQ(view.histogram(lat)->count(), 1u);
  EXPECT_EQ(view.read(lat), 1.0);  // histograms flatten to sample count
}

TEST(MetricsView, UnboundViewReadsZeroAndRebindsCleanly) {
  MetricsView view;
  const std::size_t slot = view.add("g");
  EXPECT_EQ(view.read(slot), 0.0);  // unbound: inert, not UB

  MetricsRegistry reg;
  reg.gauge("g").set(9);
  view.bind(&reg);
  EXPECT_EQ(view.read(slot), 9.0);  // previously added slots re-resolve
}

// -------------------------------------------------------------- event ring

TEST(EventRing, WrapsAroundKeepingNewest) {
  EventRing ring(4);
  for (std::uint64_t k = 0; k < 7; ++k) {
    TelemetryEvent e;
    e.arg = k;
    ring.push(e);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.dropped(), 3u);
  // Oldest surviving event is the 4th pushed (args 0..2 overwritten).
  EXPECT_EQ(ring.at(0).arg, 3u);
  EXPECT_EQ(ring.at(3).arg, 6u);
}

TEST(EventRing, ZeroCapacityClampsToOne) {
  EventRing ring(0);
  TelemetryEvent e;
  ring.push(e);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.capacity(), 1u);
}

// ------------------------------------------------------------- hub / tracer

TEST(TelemetryHub, TracingOffByDefaultButMetricsLive) {
  GroupHarness h(3, hybrid());
  sl(h, 1).request_switch();
  run_until_epoch(h, 1);
  // No rings were armed: every emit was a single-branch no-op.
  EXPECT_FALSE(h.sim.telemetry().tracing());
  EXPECT_EQ(h.sim.telemetry().total_events(), 0u);
  // Metrics attach at wiring time regardless and see the finished switch.
  const MetricsRegistry agg = h.sim.telemetry().aggregate_metrics();
  EXPECT_EQ(agg_value(agg, "sp.switches_completed"), 3.0);
  EXPECT_EQ(agg_value(agg, "sp.switches_initiated"), 1.0);
  EXPECT_GT(agg_value(agg, "net.copies_delivered"), 0.0);
  EXPECT_GT(agg_value(agg, "sched.executed"), 0.0);
}

TEST(Tracer, DisabledSingletonIsInert) {
  Tracer& t = Tracer::disabled();
  EXPECT_EQ(t.intern("anything"), 0u);
  t.begin(0);
  t.instant(0);
  t.end(0);
  EXPECT_EQ(t.ring(), nullptr);
}

// ------------------------------------------------------ switch-phase spans

TEST(SwitchSpans, AllThreeRotationsNestUnderSwitchOnEveryNode) {
  GroupHarness h(3, hybrid());
  h.sim.enable_tracing();
  sl(h, 1).request_switch();
  run_until_epoch(h, 1);
  // Members finish one hop before the FLUSH returns to the initiator,
  // which is what closes its flush/switch spans — let the token drain.
  h.sim.run_for(50 * kMillisecond);

  const TelemetryHub& hub = h.sim.telemetry();
  const NameTable& names = hub.names();
  for (std::uint32_t node = 0; node < 3; ++node) {
    const Tracer* tr = hub.find_tracer(node);
    ASSERT_NE(tr, nullptr) << "node " << node;
    const EventRing* ring = tr->ring();
    ASSERT_NE(ring, nullptr) << "node " << node;

    bool saw_prepare = false, saw_switch = false, saw_flush = false;
    std::vector<std::string> stack;  // open control-track spans
    for (std::size_t i = 0; i < ring->size(); ++i) {
      const TelemetryEvent& e = ring->at(i);
      if (e.track != TelemetryTrack::kControl) continue;
      const std::string nm(names.name(e.name));
      if (e.kind == EventKind::kBegin) {
        stack.push_back(nm);
      } else if (e.kind == EventKind::kEnd) {
        ASSERT_FALSE(stack.empty()) << "node " << node << ": end of " << nm << " with no begin";
        EXPECT_EQ(stack.back(), nm) << "node " << node << ": control spans not nested";
        if (nm == "sp.rotation.prepare" || nm == "sp.rotation.switch" ||
            nm == "sp.rotation.flush") {
          ASSERT_GE(stack.size(), 2u);
          EXPECT_EQ(stack[stack.size() - 2], "sp.switch")
              << "node " << node << ": rotation not nested in sp.switch";
          if (nm == "sp.rotation.prepare") saw_prepare = true;
          if (nm == "sp.rotation.switch") saw_switch = true;
          if (nm == "sp.rotation.flush") saw_flush = true;
        }
        stack.pop_back();
      }
    }
    EXPECT_TRUE(stack.empty()) << "node " << node << ": control spans left open";
    EXPECT_TRUE(saw_prepare && saw_switch && saw_flush)
        << "node " << node << ": prepare=" << saw_prepare << " switch=" << saw_switch
        << " flush=" << saw_flush;
  }
}

TEST(SwitchSpans, LocalPhasesAppearOnDataTrack) {
  GroupHarness h(3, hybrid());
  h.sim.enable_tracing();
  h.send_and_settle(0, to_bytes("warm"));
  sl(h, 0).request_switch();
  run_until_epoch(h, 1);
  h.sim.run_for(50 * kMillisecond);  // let the FLUSH return to the initiator

  const TelemetryHub& hub = h.sim.telemetry();
  std::ostringstream os;
  write_chrome_trace(hub, os);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  for (const char* nm : {"sp.switch.local", "sp.phase.prepare", "sp.phase.drain",
                         "sp.phase.release", "sp.rotation.prepare", "sp.rotation.switch",
                         "sp.rotation.flush"}) {
    EXPECT_NE(trace.find(nm), std::string::npos) << nm << " missing from Chrome trace";
  }
  // A finished run must not need the exporter's crash clamps.
  EXPECT_EQ(trace.find("unterminated"), std::string::npos);
  EXPECT_EQ(trace.find("orphan"), std::string::npos);
}

// ----------------------------------------------------- span-pairing repair

TEST(ChromeExport, OpenSpanAtExportIsClampedUnterminated) {
  Simulation sim(1);
  sim.enable_tracing(8);
  Tracer& tr = sim.telemetry().tracer(0);
  const std::uint32_t id = tr.intern("crashed.phase");
  tr.begin(id);  // node dies mid-phase: no matching end
  std::ostringstream os;
  write_chrome_trace(sim.telemetry(), os);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("crashed.phase"), std::string::npos);
  EXPECT_NE(trace.find("unterminated"), std::string::npos);
}

TEST(ChromeExport, EndWithOverwrittenBeginIsOrphan) {
  Simulation sim(1);
  sim.enable_tracing(2);  // tiny ring: the begin gets overwritten
  Tracer& tr = sim.telemetry().tracer(0);
  const std::uint32_t span = tr.intern("long.span");
  const std::uint32_t tick = tr.intern("tick");
  tr.begin(span);
  tr.instant(tick);
  tr.instant(tick);  // ring full: overwrites the begin
  tr.end(span);
  EXPECT_EQ(tr.ring()->dropped(), 2u);
  std::ostringstream os;
  write_chrome_trace(sim.telemetry(), os);
  EXPECT_NE(os.str().find("orphan"), std::string::npos);
}

// ------------------------------------------------------------ determinism

TEST(TelemetryExport, IdenticalSeededRunsProduceIdenticalBytes) {
  FuzzConfig cfg;
  cfg.capture_telemetry = true;
  const FuzzIteration a = run_fuzz_iteration(42, cfg);
  const FuzzIteration b = run_fuzz_iteration(42, cfg);
  ASSERT_TRUE(a.ok) << a.reason;
  EXPECT_FALSE(a.events_jsonl.empty());
  EXPECT_FALSE(a.chrome_trace.empty());
  EXPECT_FALSE(a.metrics_json.empty());
  EXPECT_EQ(a.events_jsonl, b.events_jsonl);
  EXPECT_EQ(a.chrome_trace, b.chrome_trace);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.metrics_summary, b.metrics_summary);

  // And a different seed diverges (the exports reflect the run, not the
  // schema).
  const FuzzIteration c = run_fuzz_iteration(43, cfg);
  EXPECT_NE(a.events_jsonl, c.events_jsonl);
}

TEST(TelemetryExport, CaptureOffLeavesIterationStringsEmpty) {
  const FuzzIteration it = run_fuzz_iteration(42, FuzzConfig{});
  EXPECT_TRUE(it.events_jsonl.empty());
  EXPECT_TRUE(it.chrome_trace.empty());
  EXPECT_TRUE(it.metrics_json.empty());
}

// --------------------------------------------------------- flight recorder

TEST(FlightRecorder, InjectedOracleFailureProducesDump) {
  FuzzConfig cfg;
  cfg.inject_flush_bug = true;
  cfg.shrink_budget = 20;  // keep the ddmin cheap; minimality is not the point here
  FuzzIteration bad;
  for (std::uint64_t seed = 1; seed <= 40 && bad.ok; ++seed) {
    bad = run_fuzz_iteration(seed, cfg);
  }
  ASSERT_FALSE(bad.ok) << "injected drain bug never tripped the oracle";

  const FuzzFailure f = shrink_failure(bad, cfg);
  ASSERT_FALSE(f.flight_record.empty());
  // Header line first, carrying the oracle's reason; then JSONL events.
  EXPECT_EQ(f.flight_record.find("{\"flight_recorder\""), 0u);
  EXPECT_NE(f.flight_record.find("\"reason\""), std::string::npos);
  EXPECT_NE(f.flight_record.find("sp."), std::string::npos)
      << "flight record has no SP events";
  // The dump replays the *shrunk* schedule — the artifact that sits next to
  // the one-line repro.
  EXPECT_NE(f.repro.find("--schedule"), std::string::npos);
}

}  // namespace
}  // namespace msw
