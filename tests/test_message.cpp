// Message header push/pop discipline, the application header, and the
// copy-on-write payload-sharing contract of the zero-copy message path.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "stack/message.hpp"

namespace msw {
namespace {

TEST(Message, GroupAndP2pConstruction) {
  const Message g = Message::group(to_bytes("body"));
  EXPECT_FALSE(g.is_p2p());
  const Message p = Message::p2p(NodeId{3}, to_bytes("body"));
  ASSERT_TRUE(p.is_p2p());
  EXPECT_EQ(p.point_to->v, 3u);
}

TEST(Message, PushPopSingleHeader) {
  Message m = Message::group(to_bytes("body"));
  m.push_header([](Writer& w) {
    w.u32(42);
    w.str("hdr");
  });
  std::uint32_t v = 0;
  std::string s;
  m.pop_header([&](Reader& r) {
    v = r.u32();
    s = r.str();
  });
  EXPECT_EQ(v, 42u);
  EXPECT_EQ(s, "hdr");
  EXPECT_EQ(m.data, to_bytes("body"));
}

TEST(Message, HeadersAreLifo) {
  Message m = Message::group(to_bytes("payload"));
  m.push_header([](Writer& w) { w.u8(1); });
  m.push_header([](Writer& w) { w.u8(2); });
  m.push_header([](Writer& w) { w.u8(3); });
  std::vector<int> popped;
  for (int i = 0; i < 3; ++i) {
    m.pop_header([&](Reader& r) { popped.push_back(r.u8()); });
  }
  EXPECT_EQ(popped, (std::vector<int>{3, 2, 1}));
  EXPECT_EQ(m.data, to_bytes("payload"));
}

TEST(Message, EmptyHeaderRoundTrips) {
  Message m = Message::group(to_bytes("x"));
  m.push_header([](Writer&) {});
  m.pop_header([](Reader&) {});
  EXPECT_EQ(m.data, to_bytes("x"));
}

TEST(Message, PopOnBareBufferThrows) {
  Message m = Message::group(to_bytes("ab"));  // 2 bytes < length word
  EXPECT_THROW(m.pop_header([](Reader&) {}), DecodeError);
}

TEST(Message, PopWithCorruptLengthThrows) {
  Message m = Message::group({});
  m.push_header([](Writer& w) { w.u32(7); });
  // Corrupt the trailing length word to exceed the buffer.
  m.data.mutable_view().back() = 0xff;
  EXPECT_THROW(m.pop_header([](Reader&) {}), DecodeError);
}

TEST(Message, PopMustConsumeExactly) {
  Message m = Message::group({});
  m.push_header([](Writer& w) { w.u32(7); });
  // Reading less than the full header is a format error.
  EXPECT_THROW(m.pop_header([](Reader& r) { r.u16(); }), DecodeError);
}

TEST(Message, LargeBodySurvivesHeaderCycle) {
  Bytes big(100'000, 0x5a);
  Message m = Message::group(big);
  m.push_header([](Writer& w) { w.u64(1); });
  m.pop_header([](Reader& r) { r.u64(); });
  EXPECT_EQ(m.data, big);
}

TEST(AppHeader, RoundTrip) {
  Message m = Message::group(to_bytes("body"));
  AppHeader::push(m, AppHeader{AppHeader::Kind::kData, 7, 123});
  const AppHeader h = AppHeader::pop(m);
  EXPECT_EQ(h.kind, AppHeader::Kind::kData);
  EXPECT_EQ(h.sender, 7u);
  EXPECT_EQ(h.seq, 123u);
  EXPECT_EQ(m.data, to_bytes("body"));
}

TEST(AppHeader, ViewKindRoundTrip) {
  Message m = Message::group({});
  AppHeader::push(m, AppHeader{AppHeader::Kind::kView, 0, 5});
  const AppHeader h = AppHeader::pop(m);
  EXPECT_EQ(h.kind, AppHeader::Kind::kView);
  EXPECT_EQ(h.seq, 5u);
}

// ---------------------------------------------------------------------------
// Payload sharing: the zero-copy contract of the data plane.
// ---------------------------------------------------------------------------

TEST(PayloadSharing, CopyAliasesOneBuffer) {
  Payload a{to_bytes("shared-bytes")};
  EXPECT_EQ(a.use_count(), 1);
  Payload b = a;
  Payload c = b;
  EXPECT_EQ(a.use_count(), 3);
  EXPECT_EQ(a.data(), c.data()) << "copies must alias, not duplicate";
}

TEST(PayloadSharing, MulticastFanOutAliasesOneBody) {
  // An N-destination multicast must deliver N packets that share one
  // buffer: the fan-out loop may bump refcounts but never copy bytes.
  Simulation sim(1);
  NetConfig cfg;
  cfg.jitter = 0;
  cfg.loss = 0.0;
  Network net(sim.scheduler(), sim.fork_rng(), cfg);
  constexpr int kNodes = 8;
  std::vector<NodeId> nodes;
  for (int i = 0; i < kNodes; ++i) nodes.push_back(net.add_node());
  std::vector<Payload> received;
  for (NodeId n : nodes) {
    net.set_handler(n, [&](Packet p) { received.push_back(std::move(p.data)); });
  }
  const std::uint64_t cows_before = Payload::cow_copies();
  net.multicast(nodes[0], nodes, to_bytes("one allocation, many receivers"));
  sim.run();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kNodes));
  // All receivers hold the same buffer: use_count counts every alias.
  EXPECT_GE(received[0].use_count(), kNodes);
  for (const Payload& p : received) {
    EXPECT_EQ(p.data(), received[0].data()) << "fan-out copied instead of aliasing";
  }
  EXPECT_EQ(Payload::cow_copies(), cows_before) << "fan-out triggered a copy";
}

TEST(PayloadSharing, ReceivePathPopNeverMutatesSharedBody) {
  // Build a wire-form message, share its buffer across two "receivers",
  // and pop the header at one of them. The other's bytes must be
  // untouched and no copy may occur: popping only shrinks the view.
  Message wire = Message::group(to_bytes("payload"));
  wire.push_header([](Writer& w) { w.u32(0xdeadbeef); });

  Message rx1 = Message::group(wire.data);  // shares
  Message rx2 = Message::group(wire.data);  // shares
  ASSERT_EQ(wire.data.use_count(), 3);
  const Bytes rx2_before = rx2.data.bytes();

  const std::uint64_t cows_before = Payload::cow_copies();
  std::uint32_t hdr = 0;
  rx1.pop_header([&](Reader& r) { hdr = r.u32(); });
  EXPECT_EQ(hdr, 0xdeadbeefu);
  EXPECT_EQ(rx1.data, to_bytes("payload"));

  EXPECT_EQ(Payload::cow_copies(), cows_before) << "pop_header copied a shared body";
  EXPECT_EQ(wire.data.use_count(), 3) << "pop_header released or duplicated the buffer";
  EXPECT_EQ(rx2.data.bytes(), rx2_before) << "pop_header mutated a shared body";
  // And rx2 can still pop its own header from the same shared buffer.
  rx2.pop_header([&](Reader& r) { EXPECT_EQ(r.u32(), 0xdeadbeefu); });
  EXPECT_EQ(rx2.data, to_bytes("payload"));
}

TEST(PayloadSharing, PushAfterSharingCopiesExactlyOnce) {
  Message m = Message::group(to_bytes("body"));
  Payload retained = m.data;  // e.g. a retransmission buffer holding a ref
  ASSERT_EQ(m.data.use_count(), 2);

  const std::uint64_t cows_before = Payload::cow_copies();
  m.push_header([](Writer& w) { w.u8(1); });
  EXPECT_EQ(Payload::cow_copies(), cows_before + 1)
      << "push_header on a shared buffer must copy-on-write exactly once";
  EXPECT_EQ(retained, to_bytes("body")) << "the shared holder saw the mutation";
  EXPECT_EQ(retained.use_count(), 1) << "the writer still aliases the retained buffer";

  // Once unique again, further pushes stay in place: no more copies.
  m.push_header([](Writer& w) { w.u8(2); });
  m.push_header([](Writer& w) { w.u8(3); });
  EXPECT_EQ(Payload::cow_copies(), cows_before + 1);
}

TEST(PayloadSharing, MutableViewCopiesSharedBufferOnly) {
  Payload a{to_bytes("abc")};
  const std::uint64_t cows_before = Payload::cow_copies();
  a.mutable_view()[0] = 'x';  // unique: in place
  EXPECT_EQ(Payload::cow_copies(), cows_before);
  Payload b = a;
  b.mutable_view()[0] = 'y';  // shared: copy-on-write
  EXPECT_EQ(Payload::cow_copies(), cows_before + 1);
  EXPECT_EQ(a, to_bytes("xbc"));
  EXPECT_EQ(b, to_bytes("ybc"));
}

TEST(PayloadSharing, PushAfterPopDiscardsPoppedTail) {
  // A pop followed by a push must not resurrect the popped header bytes.
  Message m = Message::group(to_bytes("data"));
  m.push_header([](Writer& w) { w.u8(0xaa); });
  m.pop_header([](Reader& r) { r.u8(); });
  m.push_header([](Writer& w) { w.u8(0xbb); });
  std::uint8_t got = 0;
  m.pop_header([&](Reader& r) { got = r.u8(); });
  EXPECT_EQ(got, 0xbb);
  EXPECT_EQ(m.data, to_bytes("data"));
}

}  // namespace
}  // namespace msw
