// Message header push/pop discipline and the application header.
#include <gtest/gtest.h>

#include "stack/message.hpp"

namespace msw {
namespace {

TEST(Message, GroupAndP2pConstruction) {
  const Message g = Message::group(to_bytes("body"));
  EXPECT_FALSE(g.is_p2p());
  const Message p = Message::p2p(NodeId{3}, to_bytes("body"));
  ASSERT_TRUE(p.is_p2p());
  EXPECT_EQ(p.point_to->v, 3u);
}

TEST(Message, PushPopSingleHeader) {
  Message m = Message::group(to_bytes("body"));
  m.push_header([](Writer& w) {
    w.u32(42);
    w.str("hdr");
  });
  std::uint32_t v = 0;
  std::string s;
  m.pop_header([&](Reader& r) {
    v = r.u32();
    s = r.str();
  });
  EXPECT_EQ(v, 42u);
  EXPECT_EQ(s, "hdr");
  EXPECT_EQ(m.data, to_bytes("body"));
}

TEST(Message, HeadersAreLifo) {
  Message m = Message::group(to_bytes("payload"));
  m.push_header([](Writer& w) { w.u8(1); });
  m.push_header([](Writer& w) { w.u8(2); });
  m.push_header([](Writer& w) { w.u8(3); });
  std::vector<int> popped;
  for (int i = 0; i < 3; ++i) {
    m.pop_header([&](Reader& r) { popped.push_back(r.u8()); });
  }
  EXPECT_EQ(popped, (std::vector<int>{3, 2, 1}));
  EXPECT_EQ(m.data, to_bytes("payload"));
}

TEST(Message, EmptyHeaderRoundTrips) {
  Message m = Message::group(to_bytes("x"));
  m.push_header([](Writer&) {});
  m.pop_header([](Reader&) {});
  EXPECT_EQ(m.data, to_bytes("x"));
}

TEST(Message, PopOnBareBufferThrows) {
  Message m = Message::group(to_bytes("ab"));  // 2 bytes < length word
  EXPECT_THROW(m.pop_header([](Reader&) {}), DecodeError);
}

TEST(Message, PopWithCorruptLengthThrows) {
  Message m = Message::group({});
  m.push_header([](Writer& w) { w.u32(7); });
  // Corrupt the trailing length word to exceed the buffer.
  m.data.back() = 0xff;
  EXPECT_THROW(m.pop_header([](Reader&) {}), DecodeError);
}

TEST(Message, PopMustConsumeExactly) {
  Message m = Message::group({});
  m.push_header([](Writer& w) { w.u32(7); });
  // Reading less than the full header is a format error.
  EXPECT_THROW(m.pop_header([](Reader& r) { r.u16(); }), DecodeError);
}

TEST(Message, LargeBodySurvivesHeaderCycle) {
  Bytes big(100'000, 0x5a);
  Message m = Message::group(big);
  m.push_header([](Writer& w) { w.u64(1); });
  m.pop_header([](Reader& r) { r.u64(); });
  EXPECT_EQ(m.data, big);
}

TEST(AppHeader, RoundTrip) {
  Message m = Message::group(to_bytes("body"));
  AppHeader::push(m, AppHeader{AppHeader::Kind::kData, 7, 123});
  const AppHeader h = AppHeader::pop(m);
  EXPECT_EQ(h.kind, AppHeader::Kind::kData);
  EXPECT_EQ(h.sender, 7u);
  EXPECT_EQ(h.seq, 123u);
  EXPECT_EQ(m.data, to_bytes("body"));
}

TEST(AppHeader, ViewKindRoundTrip) {
  Message m = Message::group({});
  AppHeader::push(m, AppHeader{AppHeader::Kind::kView, 0, 5});
  const AppHeader h = AppHeader::pop(m);
  EXPECT_EQ(h.kind, AppHeader::Kind::kView);
  EXPECT_EQ(h.seq, 5u);
}

}  // namespace
}  // namespace msw
