// Integrity, Confidentiality, and No Replay layers, including active
// adversaries: forged packets, spoofed senders, eavesdropping, and replay
// of recorded transmissions.
#include <gtest/gtest.h>

#include <algorithm>

#include "helpers.hpp"
#include "proto/confidentiality_layer.hpp"
#include "proto/integrity_layer.hpp"
#include "proto/noreplay_layer.hpp"
#include "util/digest.hpp"

namespace msw {
namespace {

using testing::GroupHarness;

constexpr std::uint64_t kGroupKey = 0xfeedface;

std::vector<IntegrityLayer*> g_integrity;
std::vector<NoReplayLayer*> g_noreplay;

LayerFactory integrity_stack(std::uint64_t key) {
  return [key](NodeId, const std::vector<NodeId>&) {
    auto l = std::make_unique<IntegrityLayer>(key);
    g_integrity.push_back(l.get());
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::move(l));
    return layers;
  };
}

/// Records every frame this node puts on the wire (below all layers).
class TapLayer : public Layer {
 public:
  std::string_view name() const override { return "tap"; }
  void down(Message m) override {
    frames.push_back(m.data);  // shares the wire buffer
    ctx().send_down(std::move(m));
  }
  std::vector<Payload> frames;
};

class SecurityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_integrity.clear();
    g_noreplay.clear();
  }
};

TEST_F(SecurityTest, LegitimateTrafficPassesIntegrity) {
  GroupHarness h(3, integrity_stack(kGroupKey));
  for (int i = 0; i < 5; ++i) h.group.send(0, to_bytes("ok"));
  h.sim.run_for(kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 5u);
  }
  for (auto* l : g_integrity) EXPECT_EQ(l->stats().rejected, 0u);
}

TEST_F(SecurityTest, ForgedMacRejected) {
  GroupHarness h(3, integrity_stack(kGroupKey));
  // Attacker node (not a member) crafts a wire-format message with a MAC
  // computed under the WRONG key.
  const NodeId attacker = h.net.add_node();
  Message forged = Message::group(to_bytes("evil"));
  AppHeader::push(forged, AppHeader{AppHeader::Kind::kData, 99, 0});
  const std::uint64_t bad_tag = mac(kGroupKey + 1, 99, forged.data);
  forged.push_header([&](Writer& w) {
    w.u32(99);
    w.u64(bad_tag);
  });
  h.net.multicast(attacker, h.group.members(), forged.data);
  h.sim.run_for(kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_TRUE(h.delivered_data(p).empty()) << "forged message delivered at member " << p;
  }
  std::uint64_t rejected = 0;
  for (auto* l : g_integrity) rejected += l->stats().rejected;
  EXPECT_EQ(rejected, 3u);
}

TEST_F(SecurityTest, SpoofedSenderRejected) {
  GroupHarness h(3, integrity_stack(kGroupKey));
  const NodeId attacker = h.net.add_node();
  // Attacker somehow learned a VALID tag for sender 99, then claims the
  // message came from member 0 instead: the MAC is bound to the sender id.
  Message spoofed = Message::group(to_bytes("evil"));
  AppHeader::push(spoofed, AppHeader{AppHeader::Kind::kData, 0, 0});
  const std::uint64_t tag_for_99 = mac(kGroupKey, 99, spoofed.data);
  spoofed.push_header([&](Writer& w) {
    w.u32(0);  // claimed sender
    w.u64(tag_for_99);
  });
  h.net.multicast(attacker, h.group.members(), spoofed.data);
  h.sim.run_for(kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_TRUE(h.delivered_data(p).empty());
  }
}

TEST_F(SecurityTest, CorruptedPayloadRejected) {
  // Record a genuine frame, flip a payload bit, re-inject.
  TapLayer* tap = nullptr;
  GroupHarness h2(3, [&](NodeId, const std::vector<NodeId>&) {
    auto integ = std::make_unique<IntegrityLayer>(kGroupKey);
    auto t = std::make_unique<TapLayer>();
    if (tap == nullptr) tap = t.get();
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::move(integ));
    layers.push_back(std::move(t));
    return layers;
  });
  h2.group.send(0, to_bytes("genuine"));
  h2.sim.run_for(100 * kMillisecond);
  ASSERT_NE(tap, nullptr);
  ASSERT_FALSE(tap->frames.empty());
  Bytes corrupted = tap->frames.front().bytes();
  corrupted[0] ^= 0x01;
  const NodeId attacker = h2.net.add_node();
  const std::size_t before = h2.delivered_data(1).size();
  h2.net.multicast(attacker, h2.group.members(), corrupted);
  h2.sim.run_for(kSecond);
  EXPECT_EQ(h2.delivered_data(1).size(), before);
}

TEST_F(SecurityTest, EavesdropperSeesOnlyCiphertext) {
  // Two keyed members plus a raw wiretap node included in the multicast
  // destination set (a hub network: everyone physically hears everything).
  Simulation sim(1);
  Network net(sim.scheduler(), sim.fork_rng(), testing::ideal_net());
  const NodeId a = net.add_node();
  const NodeId b = net.add_node();
  const NodeId spy = net.add_node();
  const std::vector<NodeId> wire_members = {a, b, spy};

  const auto keyed = [](std::uint64_t key) {
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::make_unique<ConfidentialityLayer>(key));
    return layers;
  };
  Stack sa(net, a, wire_members, keyed(kGroupKey), sim.fork_rng());
  Stack sb(net, b, wire_members, keyed(kGroupKey), sim.fork_rng());
  sa.start();
  sb.start();

  Bytes spied;
  net.set_handler(spy, [&](Packet p) { spied = p.data.bytes(); });
  Bytes plain_delivered;
  sb.set_on_deliver([&](const MsgId&, std::span<const Byte> body) { plain_delivered.assign(body.begin(), body.end()); });

  const std::string secret = "the missile launch code is 0000";
  sa.send(to_bytes(secret));
  sim.run();

  ASSERT_FALSE(spied.empty());
  const std::string wire(reinterpret_cast<const char*>(spied.data()), spied.size());
  EXPECT_EQ(wire.find(secret), std::string::npos) << "plaintext visible on the wire";
  EXPECT_EQ(plain_delivered, to_bytes(secret)) << "key holder failed to decrypt";
}

TEST_F(SecurityTest, WrongKeyMemberCannotDecode) {
  Simulation sim(1);
  Network net(sim.scheduler(), sim.fork_rng(), testing::ideal_net());
  const NodeId a = net.add_node();
  const NodeId b = net.add_node();
  const std::vector<NodeId> members = {a, b};
  const auto keyed = [](std::uint64_t key) {
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::make_unique<ConfidentialityLayer>(key));
    return layers;
  };
  Stack sa(net, a, members, keyed(kGroupKey), sim.fork_rng());
  Stack sb(net, b, members, keyed(kGroupKey + 1), sim.fork_rng());  // intruder
  sa.start();
  sb.start();
  Bytes intruder_got;
  bool intruder_delivered = false;
  sb.set_on_deliver([&](const MsgId&, std::span<const Byte> body) {
    intruder_delivered = true;
    intruder_got.assign(body.begin(), body.end());
  });
  sa.send(to_bytes("secret payload"));
  sim.run();
  // Decryption with the wrong key yields garbage: either the stack drops
  // the malformed result, or what arrives is not the plaintext.
  if (intruder_delivered) {
    EXPECT_NE(intruder_got, to_bytes("secret payload"));
  }
}

TEST_F(SecurityTest, ReplayedFrameDroppedOnce) {
  TapLayer* tap = nullptr;
  GroupHarness h(3, [&](NodeId, const std::vector<NodeId>&) {
    auto nr = std::make_unique<NoReplayLayer>();
    g_noreplay.push_back(nr.get());
    auto t = std::make_unique<TapLayer>();
    if (tap == nullptr) tap = t.get();
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::move(nr));
    layers.push_back(std::move(t));
    return layers;
  });
  h.group.send(0, to_bytes("pay $100 to mallory"));
  h.sim.run_for(kSecond);
  for (std::size_t p = 0; p < 3; ++p) EXPECT_EQ(h.delivered_data(p).size(), 1u);

  // Attacker replays the recorded frame verbatim.
  ASSERT_NE(tap, nullptr);
  ASSERT_FALSE(tap->frames.empty());
  const NodeId attacker = h.net.add_node();
  h.net.multicast(attacker, h.group.members(), tap->frames.front());
  h.sim.run_for(kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 1u) << "replay delivered at member " << p;
  }
  std::uint64_t drops = 0;
  for (auto* l : g_noreplay) drops += l->replays_dropped();
  EXPECT_EQ(drops, 3u);
  EXPECT_TRUE(NoReplayProperty().holds(h.group.trace()));
}

TEST_F(SecurityTest, FreshMessageWithRepeatedBodyPasses) {
  GroupHarness h(2, [&](NodeId, const std::vector<NodeId>&) {
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::make_unique<NoReplayLayer>());
    return layers;
  });
  h.group.send(0, to_bytes("same body"));
  h.group.send(0, to_bytes("same body"));  // new message, same content
  h.sim.run_for(kSecond);
  // Distinct app-level messages (different seq) both pass.
  EXPECT_EQ(h.delivered_data(1).size(), 2u);
}

TEST_F(SecurityTest, LayeredSecurityStackEndToEnd) {
  // Confidentiality over integrity over no-replay: all three combine.
  GroupHarness h(3, [&](NodeId, const std::vector<NodeId>&) {
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::make_unique<NoReplayLayer>());
    layers.push_back(std::make_unique<IntegrityLayer>(kGroupKey));
    layers.push_back(std::make_unique<ConfidentialityLayer>(kGroupKey ^ 0x1234));
    return layers;
  });
  for (int i = 0; i < 4; ++i) h.group.send(i % 3, to_bytes("combo" + std::to_string(i)));
  h.sim.run_for(kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 4u);
  }
}

}  // namespace
}  // namespace msw
