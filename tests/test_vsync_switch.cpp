// VsyncSwitchLayer — the future-work switching mechanism (section 8):
// switches protocols at a virtually-synchronous view boundary, blocking
// senders during the flush, and preserves Virtual Synchrony across the
// switch (which the token-based SP cannot).
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "switch/hybrid.hpp"
#include "switch/vsync_switch.hpp"

namespace msw {
namespace {

using testing::GroupHarness;

LayerFactory vswitch() {
  return make_vsync_switch_factory(make_sequencer_factory(), make_token_factory());
}

VsyncSwitchLayer& vs(GroupHarness& h, std::size_t i) {
  return vsync_switch_layer_of(h.group.stack(i));
}

TEST(VsyncSwitch, TransparentWithoutSwitch) {
  GroupHarness h(4, vswitch());
  for (int i = 0; i < 8; ++i) h.group.send(i % 4, to_bytes("n" + std::to_string(i)));
  h.sim.run_for(2 * kSecond);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 8u);
    EXPECT_EQ(vs(h, p).epoch(), 0u);
  }
  EXPECT_TRUE(TotalOrderProperty().holds(h.group.trace()));
}

TEST(VsyncSwitch, CoordinatedSwitchCompletes) {
  GroupHarness h(4, vswitch());
  h.sim.run_for(50 * kMillisecond);
  vs(h, 0).request_switch();
  h.sim.run_for(3 * kSecond);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(vs(h, p).epoch(), 1u) << "member " << p;
    EXPECT_EQ(vs(h, p).active_protocol(), 1);
    EXPECT_FALSE(vs(h, p).switching());
  }
  EXPECT_GT(vs(h, 0).stats().last_switch_duration, 0);
}

TEST(VsyncSwitch, NonCoordinatorForwardsRequest) {
  GroupHarness h(3, vswitch());
  h.sim.run_for(50 * kMillisecond);
  vs(h, 2).request_switch();  // relayed to the coordinator
  h.sim.run_for(3 * kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(vs(h, p).epoch(), 1u);
  }
}

TEST(VsyncSwitch, SendsAreBlockedDuringFlush) {
  GroupHarness h(3, vswitch());
  h.sim.run_for(50 * kMillisecond);
  vs(h, 0).request_switch();
  // Step in small increments until the coordinator is flushing, then send.
  bool observed_block = false;
  for (int i = 0; i < 500 && !observed_block; ++i) {
    h.sim.run_for(100);  // 0.1 ms
    for (std::size_t p = 0; p < 3; ++p) {
      if (vs(h, p).switching()) {
        h.group.send(p, to_bytes("blocked"));
        observed_block = vs(h, p).blocked_sends() > 0;
        break;
      }
    }
  }
  EXPECT_TRUE(observed_block) << "send was not queued during the flush";
  h.sim.run_for(3 * kSecond);
  // The queued message flows in the new epoch.
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 1u);
    EXPECT_EQ(vs(h, p).blocked_sends(), 0u);
  }
}

TEST(VsyncSwitch, VirtualSynchronyHeldAcrossSwitch) {
  GroupHarness h(4, vswitch());
  for (int k = 0; k < 30; ++k) {
    h.sim.scheduler().at(k * 5 * kMillisecond,
                         [&, k] { h.group.send(k % 4, to_bytes("v" + std::to_string(k))); });
  }
  h.sim.scheduler().at(70 * kMillisecond, [&] { vs(h, 0).request_switch(); });
  h.sim.run_for(10 * kSecond);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 30u) << "member " << p;
  }
  // The headline: the app trace is virtually synchronous across the
  // protocol switch — every member agrees which messages fell in epoch 0
  // vs epoch 1.
  EXPECT_TRUE(VirtualSynchronyProperty().holds(h.group.trace()));
  EXPECT_TRUE(TotalOrderProperty().holds(h.group.trace()));
}

TEST(VsyncSwitch, ViewMarkersDeliveredAtEveryEpoch) {
  GroupHarness h(3, vswitch());
  h.sim.run_for(50 * kMillisecond);
  vs(h, 0).request_switch();
  h.sim.run_for(3 * kSecond);
  vs(h, 0).request_switch();
  h.sim.run_for(3 * kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    std::vector<std::uint64_t> markers;
    for (const auto& e : h.group.trace()) {
      if (e.is_deliver() && e.process == h.group.node(p).v && e.is_view_marker()) {
        markers.push_back(e.msg.seq);
      }
    }
    EXPECT_EQ(markers, (std::vector<std::uint64_t>{0, 1, 2})) << "member " << p;
  }
}

TEST(VsyncSwitch, CompletesUnderLoss) {
  GroupHarness h(3, vswitch(), testing::lossy_net(0.15), /*seed=*/17);
  for (int k = 0; k < 12; ++k) {
    h.sim.scheduler().at(k * 10 * kMillisecond,
                         [&, k] { h.group.send(k % 3, to_bytes("l" + std::to_string(k))); });
  }
  h.sim.scheduler().at(60 * kMillisecond, [&] { vs(h, 0).request_switch(); });
  h.sim.run_for(30 * kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(vs(h, p).epoch(), 1u) << "member " << p;
    EXPECT_EQ(h.delivered_data(p).size(), 12u) << "member " << p;
  }
  EXPECT_TRUE(VirtualSynchronyProperty().holds(h.group.trace()));
}

TEST(VsyncSwitch, BackToBackSwitchesSerialize) {
  GroupHarness h(3, vswitch());
  h.sim.run_for(50 * kMillisecond);
  vs(h, 0).request_switch();
  vs(h, 0).request_switch();  // ignored: one switch at a time
  h.sim.run_for(3 * kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(vs(h, p).epoch(), 1u);
  }
  vs(h, 0).request_switch();
  h.sim.run_for(3 * kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(vs(h, p).epoch(), 2u);
    EXPECT_EQ(vs(h, p).active_protocol(), 0);
  }
}

}  // namespace
}  // namespace msw
