// Layer composition: wiring, pass-through defaults, ordering of headers
// across a chain, and the Services plumbing.
#include <gtest/gtest.h>

#include <set>

#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "stack/group.hpp"
#include "stack/layer.hpp"
#include "stack/stack.hpp"

namespace msw {
namespace {

/// Tags messages with its id going down; verifies and strips going up.
class TagLayer : public Layer {
 public:
  explicit TagLayer(std::uint8_t id) : id_(id) {}
  std::string_view name() const override { return "tag"; }

  void down(Message m) override {
    m.push_header([&](Writer& w) { w.u8(id_); });
    ctx().send_down(std::move(m));
  }
  void up(Message m) override {
    std::uint8_t got = 0;
    m.pop_header([&](Reader& r) { got = r.u8(); });
    EXPECT_EQ(got, id_) << "header of a different layer surfaced here";
    ++seen_;
    ctx().deliver_up(std::move(m));
  }

  int seen() const { return seen_; }

 private:
  std::uint8_t id_;
  int seen_ = 0;
};

/// Records start() invocations and context facts.
class ProbeLayer : public Layer {
 public:
  std::string_view name() const override { return "probe"; }
  void start() override {
    started_ = true;
    self_ = ctx().self();
    members_ = ctx().members().size();
    ring_next_ = ctx().ring_successor();
  }
  bool started_ = false;
  NodeId self_{};
  std::size_t members_ = 0;
  NodeId ring_next_{};
};

NetConfig fast_config() {
  NetConfig cfg;
  cfg.base_latency = 1 * kMillisecond;
  cfg.jitter = 0;
  cfg.cpu_send = 0;
  cfg.cpu_recv = 0;
  cfg.bandwidth_bps = 0;
  return cfg;
}

struct Fixture {
  Fixture() : sim(1), net(sim.scheduler(), sim.fork_rng(), fast_config()) {}
  Simulation sim;
  Network net;
};

TEST(LayerChain, HeadersNestCorrectlyAcrossGroup) {
  Fixture f;
  Group group(f.sim, f.net, 3, [](NodeId, const std::vector<NodeId>&) {
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::make_unique<TagLayer>(1));
    layers.push_back(std::make_unique<TagLayer>(2));
    layers.push_back(std::make_unique<TagLayer>(3));
    return layers;
  });
  group.start();

  int delivered = 0;
  Bytes got;
  group.stack(2).set_on_deliver([&](const MsgId&, std::span<const Byte> body) {
    ++delivered;
    got.assign(body.begin(), body.end());
  });
  group.send(0, to_bytes("hello"));
  f.sim.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(got, to_bytes("hello"));
}

TEST(LayerChain, EmptyChainStillDelivers) {
  Fixture f;
  Group group(f.sim, f.net, 2,
              [](NodeId, const std::vector<NodeId>&) {
                return std::vector<std::unique_ptr<Layer>>{};
              });
  group.start();
  int delivered = 0;
  group.stack(1).set_on_deliver([&](const MsgId&, std::span<const Byte>) { ++delivered; });
  group.send(0, to_bytes("x"));
  f.sim.run();
  EXPECT_EQ(delivered, 1);
}

TEST(LayerChain, StartReachesEveryLayerWithContext) {
  Fixture f;
  std::vector<ProbeLayer*> probes;
  Group group(f.sim, f.net, 3, [&](NodeId, const std::vector<NodeId>&) {
    auto probe = std::make_unique<ProbeLayer>();
    probes.push_back(probe.get());
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::move(probe));
    return layers;
  });
  group.start();
  ASSERT_EQ(probes.size(), 3u);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_TRUE(probes[i]->started_);
    EXPECT_EQ(probes[i]->self_, group.node(i));
    EXPECT_EQ(probes[i]->members_, 3u);
    EXPECT_EQ(probes[i]->ring_next_, group.node((i + 1) % 3));
  }
}

TEST(LayerChain, SelfDeliveryLoopsBack) {
  Fixture f;
  Group group(f.sim, f.net, 2,
              [](NodeId, const std::vector<NodeId>&) {
                return std::vector<std::unique_ptr<Layer>>{};
              });
  group.start();
  int self_delivered = 0;
  group.stack(0).set_on_deliver([&](const MsgId& id, std::span<const Byte>) {
    EXPECT_EQ(id.sender, group.node(0).v);
    ++self_delivered;
  });
  group.send(0, to_bytes("loop"));
  f.sim.run();
  EXPECT_EQ(self_delivered, 1);
}

TEST(LayerChain, CaptureRecordsSendsAndDelivers) {
  Fixture f;
  Group group(f.sim, f.net, 3,
              [](NodeId, const std::vector<NodeId>&) {
                return std::vector<std::unique_ptr<Layer>>{};
              });
  group.start();
  group.send(0, to_bytes("a"));
  group.send(1, to_bytes("b"));
  f.sim.run();
  const Trace& tr = group.trace();
  EXPECT_TRUE(well_formed(tr));
  EXPECT_EQ(group.capture().send_count(group.node(0)), 1u);
  EXPECT_EQ(group.capture().send_count(group.node(1)), 1u);
  EXPECT_EQ(group.total_delivered(), 6u);  // 2 messages x 3 members
}

TEST(LayerChain, MsgIdsAreUniquePerSender) {
  Fixture f;
  Group group(f.sim, f.net, 2,
              [](NodeId, const std::vector<NodeId>&) {
                return std::vector<std::unique_ptr<Layer>>{};
              });
  group.start();
  for (int i = 0; i < 5; ++i) group.send(0, to_bytes("m"));
  f.sim.run();
  std::set<MsgId> ids;
  for (const auto& e : group.trace()) {
    if (e.is_send()) {
      EXPECT_TRUE(ids.insert(e.msg).second);
    }
  }
  EXPECT_EQ(ids.size(), 5u);
}

}  // namespace
}  // namespace msw
