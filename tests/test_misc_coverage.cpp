// Cross-cutting edges: the CPU-consumption model, point-to-point
// pass-through across the switching protocol's nested chains, logging,
// and small rendering utilities.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "switch/hybrid.hpp"
#include "util/log.hpp"

namespace msw {
namespace {

using testing::GroupHarness;

TEST(ConsumeCpu, DelaysSubsequentWork) {
  Simulation sim(1);
  Network net(sim.scheduler(), sim.fork_rng(), testing::ideal_net());
  const NodeId a = net.add_node();
  const NodeId b = net.add_node();
  Time arrival = -1;
  net.set_handler(b, [&](Packet) { arrival = sim.now(); });
  net.consume_cpu(a, 5 * kMillisecond);  // a is busy for 5 ms
  net.send(a, b, to_bytes("x"));
  sim.run();
  EXPECT_EQ(arrival, 5 * kMillisecond + 1 * kMillisecond);
}

TEST(ConsumeCpu, ZeroAndNegativeAreNoops) {
  Simulation sim(1);
  Network net(sim.scheduler(), sim.fork_rng(), testing::ideal_net());
  const NodeId a = net.add_node();
  const NodeId b = net.add_node();
  Time arrival = -1;
  net.set_handler(b, [&](Packet) { arrival = sim.now(); });
  net.consume_cpu(a, 0);
  net.consume_cpu(a, -5);
  net.send(a, b, to_bytes("x"));
  sim.run();
  EXPECT_EQ(arrival, 1 * kMillisecond);
}

/// A layer above SP that exchanges point-to-point pings: exercises the
/// kPass path through the switch layer and both nested protocol chains.
class PingLayer : public Layer {
 public:
  std::string_view name() const override { return "ping"; }
  void up(Message m) override {
    std::uint8_t tag = 0;
    m.pop_header([&](Reader& r) { tag = r.u8(); });
    if (tag == 1) {
      ++pings_received;
      // Reply.
      Message reply = Message::p2p(m.wire_src, {});
      reply.push_header([](Writer& w) { w.u8(2); });
      ctx().send_down(std::move(reply));
    } else if (tag == 2) {
      ++pongs_received;
    }
  }
  void ping(NodeId to) {
    Message m = Message::p2p(to, {});
    m.push_header([](Writer& w) { w.u8(1); });
    ctx().send_down(std::move(m));
  }
  int pings_received = 0;
  int pongs_received = 0;
};

TEST(SwitchPassThrough, P2pControlOfUpperLayersCrossesSp) {
  std::vector<PingLayer*> pings;
  GroupHarness h(3, [&](NodeId self, const std::vector<NodeId>& members) {
    auto ping = std::make_unique<PingLayer>();
    pings.push_back(ping.get());
    HybridConfig cfg;
    auto inner = make_hybrid_total_order_factory(cfg)(self, members);
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::move(ping));
    for (auto& l : inner) layers.push_back(std::move(l));
    return layers;
  });
  pings[0]->ping(h.group.node(2));
  h.sim.run_for(kSecond);
  EXPECT_EQ(pings[2]->pings_received, 1);
  EXPECT_EQ(pings[0]->pongs_received, 1);

  // Still works after a switch (the pass-through rides whichever protocol
  // is active). The switch layer sits below the ping layer here.
  static_cast<SwitchLayer&>(h.group.stack(0).chain().layer(1)).request_switch();
  h.sim.run_for(2 * kSecond);
  pings[1]->ping(h.group.node(0));
  h.sim.run_for(kSecond);
  EXPECT_EQ(pings[0]->pings_received, 1);
  EXPECT_EQ(pings[1]->pongs_received, 1);
}

TEST(Logging, LevelGatesOutput) {
  const LogLevel before = Log::level();
  Log::set_level(LogLevel::kOff);
  MSW_LOG(kWarn, "test", 1000) << "suppressed";
  Log::set_level(LogLevel::kTrace);
  MSW_LOG(kTrace, "test", -1) << "emitted without a clock";
  Log::set_level(before);
  SUCCEED();
}

TEST(Rendering, IdsAndStats) {
  EXPECT_EQ(to_string(NodeId{7}), "n7");
  EXPECT_EQ(to_string(MsgId{3, 9, MsgId::Kind::kData}), "m(3,9)");
  EXPECT_EQ(to_string(MsgId{0, 2, MsgId::Kind::kView}), "view(0,2)");
  NetStats stats;
  stats.unicasts_sent = 5;
  EXPECT_NE(stats.summary().find("unicasts=5"), std::string::npos);
}

TEST(SchedulerEdge, CancelFromWithinAnotherHandler) {
  Scheduler s;
  bool second_ran = false;
  EventId second{};
  s.at(10, [&] { s.cancel(second); });
  second = s.at(20, [&] { second_ran = true; });
  s.run();
  EXPECT_FALSE(second_ran);
}

TEST(SchedulerEdge, SameTimeSchedulingFromHandlerRunsAfter) {
  Scheduler s;
  std::vector<int> order;
  s.at(10, [&] {
    order.push_back(1);
    s.at(10, [&] { order.push_back(3); });
  });
  s.at(10, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(HybridFacade, SwitchLayerOfReturnsTopLayer) {
  GroupHarness h(2, make_hybrid_total_order_factory());
  SwitchLayer& sp = switch_layer_of(h.group.stack(0));
  EXPECT_EQ(sp.name(), "switch");
  EXPECT_EQ(sp.epoch(), 0u);
}

TEST(HybridFacade, SubLayerAccess) {
  GroupHarness h(2, make_hybrid_total_order_factory());
  SwitchLayer& sp = switch_layer_of(h.group.stack(0));
  EXPECT_EQ(sp.sub_layer(0, 0).name(), "sequencer");
  EXPECT_EQ(sp.sub_layer(1, 0).name(), "token");
}

}  // namespace
}  // namespace msw
