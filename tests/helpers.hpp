// Shared fixtures for protocol tests: standard network configurations and
// a bundled simulation+network+group harness.
#pragma once

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "stack/group.hpp"
#include "trace/properties.hpp"

namespace msw::testing {

/// Idealized LAN: fixed 1 ms hops, no jitter/CPU/serialization costs.
/// Protocol logic tests use this so arrival times are exact.
inline NetConfig ideal_net() {
  NetConfig cfg;
  cfg.base_latency = 1 * kMillisecond;
  cfg.jitter = 0;
  cfg.loopback_latency = 20;
  cfg.cpu_send = 0;
  cfg.cpu_recv = 0;
  cfg.bandwidth_bps = 0;
  cfg.wire_overhead_bytes = 0;
  cfg.loss = 0.0;
  return cfg;
}

/// Same topology with independent per-copy loss.
inline NetConfig lossy_net(double loss) {
  NetConfig cfg = ideal_net();
  cfg.loss = loss;
  return cfg;
}

/// 1990s-era LAN matching the paper's testbed scale (see EXPERIMENTS.md).
inline NetConfig era_net() {
  NetConfig cfg;
  cfg.base_latency = 1 * kMillisecond;
  cfg.jitter = 100;
  cfg.loopback_latency = 20;
  cfg.cpu_send = 300;
  cfg.cpu_recv = 300;
  cfg.bandwidth_bps = 10'000'000;
  cfg.wire_overhead_bytes = 64;
  return cfg;
}

struct GroupHarness {
  GroupHarness(std::size_t n, const LayerFactory& factory, NetConfig cfg = ideal_net(),
               std::uint64_t seed = 1)
      : sim(seed), net(sim.scheduler(), sim.fork_rng(), cfg), group(sim, net, n, factory) {
    group.start();
  }

  /// Send from member i and run the simulation for `settle` afterwards.
  void send_and_settle(std::size_t i, Bytes body, Duration settle = 100 * kMillisecond) {
    group.send(i, std::move(body));
    sim.run_for(settle);
  }

  /// Deliveries of data (non-view) messages at member i, in order.
  std::vector<MsgId> delivered_data(std::size_t i) const {
    std::vector<MsgId> out;
    for (const auto& e : group.trace()) {
      if (e.is_deliver() && e.process == group.node(i).v && !e.is_view_marker()) {
        out.push_back(e.msg);
      }
    }
    return out;
  }

  Simulation sim;
  Network net;
  Group group;
};

/// Asserts that all members delivered exactly the same data messages in
/// exactly the same order (total order + agreement).
inline void expect_identical_delivery(GroupHarness& h) {
  const auto reference = h.delivered_data(0);
  for (std::size_t i = 1; i < h.group.size(); ++i) {
    EXPECT_EQ(h.delivered_data(i), reference) << "member " << i << " diverged";
  }
}

}  // namespace msw::testing
