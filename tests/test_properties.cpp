// The Table 1 property predicates on hand-built witness traces: one
// satisfying and at least one violating trace per property, plus edge
// cases of each formalization.
#include <gtest/gtest.h>

#include "trace/properties.hpp"

namespace msw {
namespace {

// ---------------------------------------------------------------- Reliability

TEST(Reliability, HoldsWhenAllDeliver) {
  const Trace tr = {send_ev(0, 0), deliver_ev(0, 0, 0), deliver_ev(1, 0, 0)};
  EXPECT_TRUE(ReliabilityProperty({0, 1}).holds(tr));
}

TEST(Reliability, FailsOnMissingReceiver) {
  const Trace tr = {send_ev(0, 0), deliver_ev(0, 0, 0)};
  EXPECT_FALSE(ReliabilityProperty({0, 1}).holds(tr));
}

TEST(Reliability, EmptyTraceHolds) {
  EXPECT_TRUE(ReliabilityProperty({0, 1, 2}).holds({}));
}

TEST(Reliability, DeliverBeforeSendStillCounts) {
  // The predicate is existential over the whole trace, not temporal.
  const Trace tr = {deliver_ev(1, 0, 0), send_ev(0, 0), deliver_ev(0, 0, 0)};
  EXPECT_TRUE(ReliabilityProperty({0, 1}).holds(tr));
}

TEST(Reliability, UnsentDeliveriesIrrelevant) {
  const Trace tr = {deliver_ev(0, 9, 7)};  // no Send in trace: vacuous
  EXPECT_TRUE(ReliabilityProperty({0, 1}).holds(tr));
}

// ---------------------------------------------------------------- Total Order

TEST(TotalOrder, AgreedOrderHolds) {
  const Trace tr = {send_ev(0, 0), send_ev(1, 0),     deliver_ev(0, 0, 0),
                    deliver_ev(0, 1, 0), deliver_ev(1, 0, 0), deliver_ev(1, 1, 0)};
  EXPECT_TRUE(TotalOrderProperty().holds(tr));
}

TEST(TotalOrder, DisagreementFails) {
  const Trace tr = {send_ev(0, 0), send_ev(1, 0),     deliver_ev(0, 0, 0),
                    deliver_ev(0, 1, 0), deliver_ev(1, 1, 0), deliver_ev(1, 0, 0)};
  EXPECT_FALSE(TotalOrderProperty().holds(tr));
}

TEST(TotalOrder, DisjointDeliverySetsHold) {
  // p delivers only m0, q only m1: no common pair, vacuously ordered.
  const Trace tr = {send_ev(0, 0), send_ev(1, 0), deliver_ev(0, 0, 0), deliver_ev(1, 1, 0)};
  EXPECT_TRUE(TotalOrderProperty().holds(tr));
}

TEST(TotalOrder, ThreeProcessCycleFails) {
  // Pairwise orders are cyclic: p: a<b, q: b<c, r: c<a — the pair (a,b) at
  // p and r disagrees only through c; the property is pairwise, so build a
  // direct disagreement on one pair.
  const Trace tr = {send_ev(0, 0), send_ev(0, 1), send_ev(0, 2),
                    // p: a, b   q: b, a
                    deliver_ev(1, 0, 0), deliver_ev(1, 0, 1),
                    deliver_ev(2, 0, 1), deliver_ev(2, 0, 0)};
  EXPECT_FALSE(TotalOrderProperty().holds(tr));
}

TEST(TotalOrder, SingleProcessAlwaysHolds) {
  const Trace tr = {send_ev(0, 0), send_ev(0, 1), deliver_ev(0, 0, 1), deliver_ev(0, 0, 0)};
  EXPECT_TRUE(TotalOrderProperty().holds(tr));
}

// ------------------------------------------------------------------ Integrity

TEST(Integrity, TrustedSendersOnly) {
  const Trace tr = {send_ev(0, 0), deliver_ev(1, 0, 0)};
  EXPECT_TRUE(IntegrityProperty({0, 1}).holds(tr));
}

TEST(Integrity, UntrustedSenderFails) {
  const Trace tr = {deliver_ev(1, 9, 0)};  // 9 is not trusted
  EXPECT_FALSE(IntegrityProperty({0, 1}).holds(tr));
}

TEST(Integrity, SendsByUntrustedAreNotViolations) {
  // Only deliveries matter: an untrusted Send that no one delivers is fine.
  const Trace tr = {send_ev(9, 0)};
  EXPECT_TRUE(IntegrityProperty({0, 1}).holds(tr));
}

// ------------------------------------------------------------- Confidentiality

TEST(Confidentiality, TrustedToTrustedOk) {
  const Trace tr = {send_ev(0, 0), deliver_ev(1, 0, 0)};
  EXPECT_TRUE(ConfidentialityProperty({0, 1}).holds(tr));
}

TEST(Confidentiality, TrustedToUntrustedFails) {
  const Trace tr = {send_ev(0, 0), deliver_ev(9, 0, 0)};
  EXPECT_FALSE(ConfidentialityProperty({0}).holds(tr));
}

TEST(Confidentiality, UntrustedTrafficUnconstrained) {
  const Trace tr = {send_ev(9, 0), deliver_ev(8, 9, 0)};
  EXPECT_TRUE(ConfidentialityProperty({0, 1}).holds(tr));
}

// ------------------------------------------------------------------ No Replay

TEST(NoReplay, DistinctBodiesOk) {
  const Trace tr = {deliver_ev(0, 1, 0, to_bytes("a")), deliver_ev(0, 1, 1, to_bytes("b"))};
  EXPECT_TRUE(NoReplayProperty().holds(tr));
}

TEST(NoReplay, SameBodyTwiceAtOneProcessFails) {
  const Trace tr = {deliver_ev(0, 1, 0, to_bytes("x")), deliver_ev(0, 2, 5, to_bytes("x"))};
  EXPECT_FALSE(NoReplayProperty().holds(tr));
}

TEST(NoReplay, SameBodyAtDifferentProcessesOk) {
  const Trace tr = {deliver_ev(0, 1, 0, to_bytes("x")), deliver_ev(1, 1, 0, to_bytes("x"))};
  EXPECT_TRUE(NoReplayProperty().holds(tr));
}

TEST(NoReplay, EmptyBodiesKeyedByMsgId) {
  const Trace dup = {deliver_ev(0, 1, 0), deliver_ev(0, 1, 0)};
  EXPECT_FALSE(NoReplayProperty().holds(dup));
  const Trace ok = {deliver_ev(0, 1, 0), deliver_ev(0, 1, 1)};
  EXPECT_TRUE(NoReplayProperty().holds(ok));
}

// -------------------------------------------------------- Prioritized Delivery

TEST(Prioritized, MasterFirstHolds) {
  const Trace tr = {send_ev(1, 0), deliver_ev(0, 1, 0), deliver_ev(2, 1, 0)};
  EXPECT_TRUE(PrioritizedDeliveryProperty(0).holds(tr));
}

TEST(Prioritized, NonMasterFirstFails) {
  const Trace tr = {send_ev(1, 0), deliver_ev(2, 1, 0), deliver_ev(0, 1, 0)};
  EXPECT_FALSE(PrioritizedDeliveryProperty(0).holds(tr));
}

TEST(Prioritized, MasterNeverDeliversFails) {
  const Trace tr = {send_ev(1, 0), deliver_ev(2, 1, 0)};
  EXPECT_FALSE(PrioritizedDeliveryProperty(0).holds(tr));
}

TEST(Prioritized, MasterOnlyTraceHolds) {
  const Trace tr = {send_ev(1, 0), deliver_ev(0, 1, 0)};
  EXPECT_TRUE(PrioritizedDeliveryProperty(0).holds(tr));
}

// --------------------------------------------------------------------- Amoeba

TEST(Amoeba, GatedSendsHold) {
  const Trace tr = {send_ev(0, 0), deliver_ev(0, 0, 0), send_ev(0, 1), deliver_ev(0, 0, 1)};
  EXPECT_TRUE(AmoebaProperty().holds(tr));
}

TEST(Amoeba, BackToBackSendsFail) {
  const Trace tr = {send_ev(0, 0), send_ev(0, 1)};
  EXPECT_FALSE(AmoebaProperty().holds(tr));
}

TEST(Amoeba, OtherDeliveriesDoNotUnblock) {
  // Delivery of someone ELSE's message does not release the sender.
  const Trace tr = {send_ev(0, 0), deliver_ev(0, 1, 7), send_ev(0, 1)};
  EXPECT_FALSE(AmoebaProperty().holds(tr));
}

TEST(Amoeba, IndependentProcessesInterleave) {
  const Trace tr = {send_ev(0, 0), send_ev(1, 0), deliver_ev(0, 0, 0), deliver_ev(1, 1, 0),
                    send_ev(0, 1)};
  EXPECT_TRUE(AmoebaProperty().holds(tr));
}

TEST(Amoeba, TrailingUnackedSendHolds) {
  const Trace tr = {send_ev(0, 0)};  // in flight at trace end: fine
  EXPECT_TRUE(AmoebaProperty().holds(tr));
}

// ---------------------------------------------------------- Virtual Synchrony

TEST(VirtualSynchrony, EqualEpochSetsHold) {
  const Trace tr = {
      view_deliver_ev(0, 0, 1), view_deliver_ev(1, 0, 1),
      send_ev(0, 0), deliver_ev(0, 0, 0), deliver_ev(1, 0, 0),
      view_deliver_ev(0, 0, 2), view_deliver_ev(1, 0, 2),
  };
  EXPECT_TRUE(VirtualSynchronyProperty().holds(tr));
}

TEST(VirtualSynchrony, UnequalEpochSetsFail) {
  const Trace tr = {
      view_deliver_ev(0, 0, 1), view_deliver_ev(1, 0, 1),
      send_ev(0, 0), deliver_ev(0, 0, 0),  // only process 0 delivers m
      view_deliver_ev(0, 0, 2), view_deliver_ev(1, 0, 2),
  };
  EXPECT_FALSE(VirtualSynchronyProperty().holds(tr));
}

TEST(VirtualSynchrony, NonCommonViewPairsUnconstrained) {
  // p passes through views 1,2,3; q skips view 2 entirely: their epochs
  // are not comparable, so differing contents are fine.
  const Trace tr = {
      view_deliver_ev(0, 0, 1), view_deliver_ev(1, 0, 1),
      send_ev(0, 0), deliver_ev(0, 0, 0), deliver_ev(1, 0, 0),
      view_deliver_ev(0, 0, 2),
      send_ev(0, 1), deliver_ev(0, 0, 1),  // only p delivers, inside view 2
      view_deliver_ev(0, 0, 3), view_deliver_ev(1, 0, 3),
  };
  EXPECT_TRUE(VirtualSynchronyProperty().holds(tr));
}

TEST(VirtualSynchrony, DeliveriesBeforeFirstViewUnconstrained) {
  const Trace tr = {send_ev(0, 0), deliver_ev(0, 0, 0), view_deliver_ev(0, 0, 1),
                    view_deliver_ev(1, 0, 1)};
  EXPECT_TRUE(VirtualSynchronyProperty().holds(tr));
}

TEST(VirtualSynchrony, NoViewsVacuouslyHolds) {
  const Trace tr = {send_ev(0, 0), deliver_ev(0, 0, 0), deliver_ev(1, 0, 0)};
  EXPECT_TRUE(VirtualSynchronyProperty().holds(tr));
}

// ------------------------------------------------------------------- Catalogue

TEST(Catalogue, StandardPropertiesMatchTable2RowOrder) {
  const auto props = standard_properties(4);
  ASSERT_EQ(props.size(), 8u);
  EXPECT_EQ(props[0]->name(), "Total Order");
  EXPECT_EQ(props[1]->name(), "Integrity");
  EXPECT_EQ(props[2]->name(), "Confidentiality");
  EXPECT_EQ(props[3]->name(), "Reliability");
  EXPECT_EQ(props[4]->name(), "Prioritized Delivery");
  EXPECT_EQ(props[5]->name(), "Amoeba");
  EXPECT_EQ(props[6]->name(), "Virtual Synchrony");
  EXPECT_EQ(props[7]->name(), "No Replay");
}

}  // namespace
}  // namespace msw
