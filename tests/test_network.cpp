// Simulated LAN: latency model, multicast fan-out, loss, partitions,
// CPU queueing (the sequencer-bottleneck mechanism), and endpoint timers.
#include <gtest/gtest.h>

#include <vector>

#include "net/endpoint.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace msw {
namespace {

struct Fixture {
  explicit Fixture(NetConfig cfg = {}, std::uint64_t seed = 1)
      : sim(seed), net(sim.scheduler(), sim.fork_rng(), cfg) {}

  Simulation sim;
  Network net;
};

NetConfig fast_config() {
  NetConfig cfg;
  cfg.base_latency = 1 * kMillisecond;
  cfg.jitter = 0;
  cfg.cpu_send = 0;
  cfg.cpu_recv = 0;
  cfg.bandwidth_bps = 0;  // no serialization delay
  cfg.wire_overhead_bytes = 0;
  return cfg;
}

TEST(Network, UnicastArrivesAfterBaseLatency) {
  Fixture f(fast_config());
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  Time arrival = -1;
  f.net.set_handler(b, [&](Packet p) {
    arrival = f.sim.now();
    EXPECT_EQ(p.src, a);
  });
  f.net.send(a, b, to_bytes("hi"));
  f.sim.run();
  EXPECT_EQ(arrival, 1 * kMillisecond);
}

TEST(Network, PayloadIntact) {
  Fixture f(fast_config());
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  Bytes got;
  f.net.set_handler(b, [&](Packet p) { got = p.data.bytes(); });
  f.net.send(a, b, to_bytes("payload-123"));
  f.sim.run();
  EXPECT_EQ(got, to_bytes("payload-123"));
}

TEST(Network, MulticastReachesAllIncludingSelf) {
  Fixture f(fast_config());
  std::vector<NodeId> nodes;
  for (int i = 0; i < 5; ++i) nodes.push_back(f.net.add_node());
  std::vector<int> got(5, 0);
  for (int i = 0; i < 5; ++i) {
    f.net.set_handler(nodes[i], [&, i](Packet) { ++got[i]; });
  }
  f.net.multicast(nodes[0], nodes, to_bytes("m"));
  f.sim.run();
  EXPECT_EQ(got, (std::vector<int>{1, 1, 1, 1, 1}));
}

TEST(Network, LoopbackFasterThanWire) {
  Fixture f(fast_config());
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  Time self_at = -1, peer_at = -1;
  f.net.set_handler(a, [&](Packet) { self_at = f.sim.now(); });
  f.net.set_handler(b, [&](Packet) { peer_at = f.sim.now(); });
  f.net.multicast(a, {a, b}, to_bytes("m"));
  f.sim.run();
  EXPECT_GE(self_at, 0);
  EXPECT_LT(self_at, peer_at);
}

TEST(Network, SerializationDelayScalesWithSize) {
  NetConfig cfg = fast_config();
  cfg.bandwidth_bps = 8'000'000;  // 1 byte per microsecond
  Fixture f(cfg);
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  Time arrival = -1;
  f.net.set_handler(b, [&](Packet) { arrival = f.sim.now(); });
  f.net.send(a, b, Bytes(1000, 0));  // 1000 us serialization
  f.sim.run();
  EXPECT_EQ(arrival, 1000 + 1 * kMillisecond);
}

TEST(Network, CpuCostQueuesAtReceiver) {
  NetConfig cfg = fast_config();
  cfg.cpu_recv = 500;  // 0.5 ms per packet
  Fixture f(cfg);
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  const NodeId c = f.net.add_node();
  std::vector<Time> arrivals;
  f.net.set_handler(c, [&](Packet) { arrivals.push_back(f.sim.now()); });
  // Two packets arrive simultaneously; the receiver works them off serially.
  f.net.send(a, c, to_bytes("1"));
  f.net.send(b, c, to_bytes("2"));
  f.sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1] - arrivals[0], 500);
}

TEST(Network, CpuCostQueuesAtSender) {
  NetConfig cfg = fast_config();
  cfg.cpu_send = 1000;
  Fixture f(cfg);
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  std::vector<Time> arrivals;
  f.net.set_handler(b, [&](Packet) { arrivals.push_back(f.sim.now()); });
  f.net.send(a, b, to_bytes("1"));
  f.net.send(a, b, to_bytes("2"));
  f.sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Second send waits for the first's CPU slot.
  EXPECT_EQ(arrivals[1] - arrivals[0], 1000);
}

TEST(Network, LossDropsApproximatelyAtRate) {
  NetConfig cfg = fast_config();
  cfg.loss = 0.3;
  Fixture f(cfg, 5);
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  int got = 0;
  f.net.set_handler(b, [&](Packet) { ++got; });
  for (int i = 0; i < 1000; ++i) f.net.send(a, b, to_bytes("x"));
  f.sim.run();
  EXPECT_NEAR(got, 700, 60);
  EXPECT_EQ(f.net.stats().copies_dropped_loss + got, 1000u);
}

TEST(Network, LoopbackNeverDropped) {
  NetConfig cfg = fast_config();
  cfg.loss = 1.0;
  Fixture f(cfg);
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  int self_got = 0, peer_got = 0;
  f.net.set_handler(a, [&](Packet) { ++self_got; });
  f.net.set_handler(b, [&](Packet) { ++peer_got; });
  f.net.multicast(a, {a, b}, to_bytes("m"));
  f.sim.run();
  EXPECT_EQ(self_got, 1);
  EXPECT_EQ(peer_got, 0);
}

TEST(Network, LinkDownBlocksDirectionally) {
  Fixture f(fast_config());
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  int a_got = 0, b_got = 0;
  f.net.set_handler(a, [&](Packet) { ++a_got; });
  f.net.set_handler(b, [&](Packet) { ++b_got; });
  f.net.set_link_up(a, b, false);
  f.net.send(a, b, to_bytes("x"));  // blocked
  f.net.send(b, a, to_bytes("y"));  // open
  f.sim.run();
  EXPECT_EQ(b_got, 0);
  EXPECT_EQ(a_got, 1);
  f.net.set_link_up(a, b, true);
  f.net.send(a, b, to_bytes("x"));
  f.sim.run();
  EXPECT_EQ(b_got, 1);
}

TEST(Network, CrashedNodeNeitherSendsNorReceives) {
  Fixture f(fast_config());
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  int b_got = 0;
  f.net.set_handler(b, [&](Packet) { ++b_got; });
  f.net.set_node_up(b, false);
  f.net.send(a, b, to_bytes("x"));
  f.sim.run();
  EXPECT_EQ(b_got, 0);
  f.net.set_node_up(b, true);
  f.net.set_node_up(a, false);
  f.net.send(a, b, to_bytes("x"));
  f.sim.run();
  EXPECT_EQ(b_got, 0);
}

TEST(Network, StatsCountTraffic) {
  Fixture f(fast_config());
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  f.net.set_handler(a, [](Packet) {});
  f.net.set_handler(b, [](Packet) {});
  f.net.send(a, b, to_bytes("x"));
  f.net.multicast(a, {a, b}, to_bytes("y"));
  f.sim.run();
  EXPECT_EQ(f.net.stats().unicasts_sent, 1u);
  EXPECT_EQ(f.net.stats().multicasts_sent, 1u);
  EXPECT_EQ(f.net.stats().copies_delivered, 3u);
}

TEST(Endpoint, TimerFiresOnce) {
  Fixture f(fast_config());
  Endpoint ep(f.net, f.net.add_node());
  int fired = 0;
  ep.set_timer(100, [&] { ++fired; });
  f.sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Endpoint, CancelledTimerDoesNotFire) {
  Fixture f(fast_config());
  Endpoint ep(f.net, f.net.add_node());
  int fired = 0;
  const TimerId id = ep.set_timer(100, [&] { ++fired; });
  ep.cancel_timer(id);
  f.sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Endpoint, DestructionCancelsTimers) {
  Fixture f(fast_config());
  int fired = 0;
  {
    Endpoint ep(f.net, f.net.add_node());
    ep.set_timer(100, [&] { ++fired; });
  }
  f.sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Network, JitterVariesArrivals) {
  NetConfig cfg = fast_config();
  cfg.jitter = 500;
  Fixture f(cfg, 3);
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  std::vector<Time> arrivals;
  f.net.set_handler(b, [&](Packet) { arrivals.push_back(f.sim.now()); });
  for (int i = 0; i < 20; ++i) {
    f.sim.scheduler().at(i * 10'000, [&, i] { f.net.send(a, b, to_bytes("x")); });
  }
  f.sim.run();
  ASSERT_EQ(arrivals.size(), 20u);
  // Inter-arrival latencies should not all be identical under jitter.
  bool varied = false;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const Time lat = arrivals[i] - static_cast<Time>(i) * 10'000;
    if (lat != arrivals[0]) varied = true;
    EXPECT_GE(lat, 1 * kMillisecond);
    EXPECT_LE(lat, 1 * kMillisecond + 500);
  }
  EXPECT_TRUE(varied);
}

TEST(Network, InjectedDuplicatesCountTowardWireBytes) {
  // Regression: duplicated copies occupy the wire like any other copy, so
  // bytes_on_wire must grow by payload + overhead per duplicate.
  struct AlwaysDuplicate : FaultInjector {
    CopyPlan on_copy(NodeId, NodeId, Time) override {
      CopyPlan p;
      p.duplicate = true;
      return p;
    }
  };
  NetConfig cfg = fast_config();
  cfg.wire_overhead_bytes = 10;
  Fixture f(cfg);
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  int got = 0;
  f.net.set_handler(b, [&](Packet) { ++got; });
  AlwaysDuplicate dup;
  f.net.set_fault_injector(&dup);
  f.net.send(a, b, to_bytes("12345"));  // 5 payload bytes
  f.sim.run();
  EXPECT_EQ(got, 2);
  EXPECT_EQ(f.net.stats().copies_duplicated, 1u);
  EXPECT_EQ(f.net.stats().bytes_on_wire, 2u * (5 + 10));
}

TEST(Network, DeliveryLatencySampledWhenEnabled) {
  NetConfig cfg = fast_config();
  cfg.sample_delivery_latency = true;
  Fixture f(cfg);
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  f.net.set_handler(b, [](Packet) {});
  f.net.send(a, b, to_bytes("x"));
  f.sim.run();
  ASSERT_EQ(f.net.stats().delivery_latency_ms.count(), 1u);
  EXPECT_DOUBLE_EQ(f.net.stats().delivery_latency_ms.max(), 1.0);  // base_latency 1 ms
  EXPECT_NE(f.net.stats().summary().find("latency_ms(p50/p99/max)"), std::string::npos);
}

TEST(Network, DeliveryLatencyNotSampledByDefault) {
  Fixture f(fast_config());
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  f.net.set_handler(b, [](Packet) {});
  f.net.send(a, b, to_bytes("x"));
  f.sim.run();
  EXPECT_TRUE(f.net.stats().delivery_latency_ms.empty());
  EXPECT_EQ(f.net.stats().summary().find("latency_ms"), std::string::npos);
}

}  // namespace
}  // namespace msw
