// SequencerLayer internals: request retransmission, history
// retransmission, garbage collection, duplicate handling, and the
// ordering-cost CPU model.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "proto/sequencer_layer.hpp"

namespace msw {
namespace {

using testing::GroupHarness;

std::vector<SequencerLayer*> g_seq;

LayerFactory seq_stack(SequencerConfig cfg = {}) {
  return [cfg](NodeId, const std::vector<NodeId>&) {
    auto l = std::make_unique<SequencerLayer>(cfg);
    g_seq.push_back(l.get());
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::move(l));
    return layers;
  };
}

class SequencerInternals : public ::testing::Test {
 protected:
  void SetUp() override { g_seq.clear(); }
};

TEST_F(SequencerInternals, FirstMemberIsSequencer) {
  GroupHarness h(3, seq_stack());
  EXPECT_TRUE(g_seq[0]->is_sequencer());
  EXPECT_FALSE(g_seq[1]->is_sequencer());
  EXPECT_FALSE(g_seq[2]->is_sequencer());
}

TEST_F(SequencerInternals, OnlySequencerAssignsOrder) {
  GroupHarness h(3, seq_stack());
  for (int i = 0; i < 6; ++i) h.group.send(i % 3, to_bytes("m" + std::to_string(i)));
  h.sim.run_for(kSecond);
  EXPECT_EQ(g_seq[0]->stats().sequenced, 6u);
  EXPECT_EQ(g_seq[1]->stats().sequenced, 0u);
  EXPECT_EQ(g_seq[2]->stats().sequenced, 0u);
}

TEST_F(SequencerInternals, LostOrderRequestIsRetransmitted) {
  SequencerConfig cfg;
  cfg.request_rto = 30 * kMillisecond;
  GroupHarness h(3, seq_stack(cfg));
  // Member 1's path to the sequencer is down when it sends.
  h.net.set_link_up(h.group.node(1), h.group.node(0), false);
  h.group.send(1, to_bytes("retry me"));
  h.sim.run_for(200 * kMillisecond);
  EXPECT_EQ(h.delivered_data(0).size(), 0u);
  h.net.set_link_up(h.group.node(1), h.group.node(0), true);
  h.sim.run_for(2 * kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 1u) << "member " << p;
  }
  EXPECT_GT(g_seq[1]->stats().requests_retransmitted, 0u);
}

TEST_F(SequencerInternals, DuplicateRequestResequencedExactlyOnce) {
  SequencerConfig cfg;
  cfg.request_rto = 20 * kMillisecond;
  GroupHarness h(3, seq_stack(cfg));
  // The sequencer's reply multicast toward member 1 is down: member 1 keeps
  // retransmitting its request (no implicit ack), the sequencer must not
  // sequence it twice.
  h.net.set_link_up(h.group.node(0), h.group.node(1), false);
  h.group.send(1, to_bytes("once"));
  h.sim.run_for(500 * kMillisecond);
  EXPECT_EQ(g_seq[0]->stats().sequenced, 1u);
  EXPECT_GT(g_seq[0]->stats().duplicates_dropped, 0u);
  h.net.set_link_up(h.group.node(0), h.group.node(1), true);
  h.sim.run_for(2 * kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 1u) << "member " << p;
  }
  EXPECT_TRUE(NoReplayProperty().holds(h.group.trace()));
}

TEST_F(SequencerInternals, GapNacksRecoverLostSequencedCopies) {
  GroupHarness h(3, seq_stack(), testing::lossy_net(0.3), /*seed=*/71);
  for (int i = 0; i < 15; ++i) h.group.send(0, to_bytes("g" + std::to_string(i)));
  h.sim.run_for(20 * kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 15u) << "member " << p;
  }
  std::uint64_t nacks = 0;
  for (auto* l : g_seq) nacks += l->stats().gap_nacks_sent;
  EXPECT_GT(g_seq[0]->stats().history_retransmissions + nacks, 0u);
}

TEST_F(SequencerInternals, OrderingCostSerializesAtSequencer) {
  // With a 5 ms ordering cost, two simultaneous submissions must be
  // sequenced at least 5 ms apart in delivery.
  SequencerConfig cfg;
  cfg.order_cost = 5 * kMillisecond;
  GroupHarness h(3, seq_stack(cfg));
  h.group.send(1, to_bytes("first"));
  h.group.send(2, to_bytes("second"));
  std::vector<Time> arrivals;
  h.group.stack(1).set_on_deliver([&](const MsgId&, std::span<const Byte>) {
    arrivals.push_back(h.sim.now());
  });
  h.sim.run_for(2 * kSecond);
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_GE(arrivals[1] - arrivals[0], 5 * kMillisecond);
}

TEST_F(SequencerInternals, SequencerAloneStillWorks) {
  GroupHarness h(1, seq_stack());
  h.group.send(0, to_bytes("solo"));
  h.sim.run_for(kSecond);
  EXPECT_EQ(h.delivered_data(0).size(), 1u);
  EXPECT_EQ(g_seq[0]->stats().sequenced, 1u);
}

TEST_F(SequencerInternals, FifoPerOriginPreservedThroughSequencing) {
  GroupHarness h(4, seq_stack());
  for (int i = 0; i < 12; ++i) h.group.send(1, to_bytes("f" + std::to_string(i)));
  h.sim.run_for(2 * kSecond);
  for (std::size_t p = 0; p < 4; ++p) {
    const auto got = h.delivered_data(p);
    ASSERT_EQ(got.size(), 12u);
    for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i].seq, i);
  }
}

}  // namespace
}  // namespace msw
