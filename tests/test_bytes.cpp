// Serialization primitives: Writer/Reader round trips, bounds checking,
// and the printable/hex renderers.
#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace msw {
namespace {

TEST(Bytes, RoundTripFixedWidth) {
  Bytes buf;
  Writer w(buf);
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.boolean(true);
  w.boolean(false);

  Reader r(buf);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(Bytes, LittleEndianLayout) {
  Bytes buf;
  Writer w(buf);
  w.u32(0x01020304);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[1], 0x03);
  EXPECT_EQ(buf[2], 0x02);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(Bytes, LengthPrefixedBytes) {
  Bytes buf;
  Writer w(buf);
  const Bytes payload = to_bytes("hello world");
  w.bytes(payload);
  w.str("tail");

  Reader r(buf);
  EXPECT_EQ(r.bytes(), payload);
  EXPECT_EQ(r.str(), "tail");
  EXPECT_TRUE(r.done());
}

TEST(Bytes, EmptyByteString) {
  Bytes buf;
  Writer w(buf);
  w.bytes(Bytes{});
  Reader r(buf);
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.done());
}

TEST(Bytes, RawPassThrough) {
  Bytes buf;
  Writer w(buf);
  const Bytes raw = {1, 2, 3};
  w.raw(raw);
  Reader r(buf);
  auto got = r.raw(3);
  EXPECT_EQ(Bytes(got.begin(), got.end()), raw);
}

TEST(Bytes, UnderflowThrows) {
  Bytes buf;
  Writer w(buf);
  w.u16(7);
  Reader r(buf);
  EXPECT_THROW(r.u32(), DecodeError);
}

TEST(Bytes, TruncatedLengthPrefixThrows) {
  Bytes buf;
  Writer w(buf);
  w.u32(100);  // claims 100 bytes follow
  w.u8(1);
  Reader r(buf);
  EXPECT_THROW(r.bytes(), DecodeError);
}

TEST(Bytes, ExpectDoneThrowsOnTrailing) {
  Bytes buf;
  Writer w(buf);
  w.u8(1);
  w.u8(2);
  Reader r(buf);
  r.u8();
  EXPECT_THROW(r.expect_done(), DecodeError);
  r.u8();
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Bytes, RemainingCountsDown) {
  Bytes buf;
  Writer w(buf);
  w.u64(1);
  Reader r(buf);
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(Bytes, PrintableRendering) {
  const Bytes b = {'a', 'b', 0x01};
  EXPECT_EQ(to_string(std::span<const Byte>(b)), "ab\\x01");
  EXPECT_EQ(to_hex(std::span<const Byte>(b)), "616201");
}

TEST(Bytes, ToBytesRoundTrip) {
  EXPECT_EQ(to_string(std::span<const Byte>(to_bytes("xyz"))), "xyz");
}

}  // namespace
}  // namespace msw
