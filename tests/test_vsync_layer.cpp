// VsyncLayer: view installation, flush cuts, send blocking during flush,
// and the Virtual Synchrony property on captured traces.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "proto/reliable_layer.hpp"
#include "proto/vsync_layer.hpp"

namespace msw {
namespace {

using testing::GroupHarness;

std::vector<VsyncLayer*> g_vsync;

LayerFactory vsync_stack() {
  return [](NodeId, const std::vector<NodeId>&) {
    auto v = std::make_unique<VsyncLayer>();
    g_vsync.push_back(v.get());
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::move(v));
    layers.push_back(std::make_unique<ReliableLayer>());
    return layers;
  };
}

class VsyncTest : public ::testing::Test {
 protected:
  void SetUp() override { g_vsync.clear(); }
};

std::vector<std::uint64_t> view_markers_at(const Trace& tr, std::uint32_t proc) {
  std::vector<std::uint64_t> out;
  for (const auto& e : tr) {
    if (e.is_deliver() && e.process == proc && e.is_view_marker()) out.push_back(e.msg.seq);
  }
  return out;
}

TEST_F(VsyncTest, InitialViewDeliveredEverywhere) {
  GroupHarness h(3, vsync_stack());
  h.sim.run_for(100 * kMillisecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(view_markers_at(h.group.trace(), h.group.node(p).v),
              (std::vector<std::uint64_t>{1}));
    EXPECT_EQ(g_vsync[p]->current_view(), 1u);
    EXPECT_EQ(g_vsync[p]->view_members().size(), 3u);
  }
}

TEST_F(VsyncTest, DataFlowsWithinView) {
  GroupHarness h(3, vsync_stack());
  for (int i = 0; i < 5; ++i) h.group.send(i % 3, to_bytes("d" + std::to_string(i)));
  h.sim.run_for(kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 5u);
  }
  EXPECT_TRUE(VirtualSynchronyProperty().holds(h.group.trace()));
}

TEST_F(VsyncTest, ViewChangeInstallsEverywhere) {
  GroupHarness h(3, vsync_stack());
  h.sim.run_for(50 * kMillisecond);
  ASSERT_TRUE(g_vsync[0]->request_view_change({h.group.node(0).v, h.group.node(1).v}));
  h.sim.run_for(2 * kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(g_vsync[p]->current_view(), 2u) << "member " << p;
    EXPECT_EQ(g_vsync[p]->view_members().size(), 2u);
    EXPECT_EQ(view_markers_at(h.group.trace(), h.group.node(p).v),
              (std::vector<std::uint64_t>{1, 2}));
  }
}

TEST_F(VsyncTest, OnlyCoordinatorMayChangeViews) {
  GroupHarness h(3, vsync_stack());
  h.sim.run_for(50 * kMillisecond);
  EXPECT_FALSE(g_vsync[1]->request_view_change({h.group.node(0).v}));
  EXPECT_FALSE(g_vsync[2]->request_view_change({h.group.node(0).v}));
}

TEST_F(VsyncTest, ConcurrentChangeRequestRejected) {
  GroupHarness h(3, vsync_stack());
  h.sim.run_for(50 * kMillisecond);
  EXPECT_TRUE(g_vsync[0]->request_view_change({h.group.node(0).v, h.group.node(1).v}));
  EXPECT_FALSE(g_vsync[0]->request_view_change({h.group.node(0).v}));
  h.sim.run_for(2 * kSecond);
  EXPECT_TRUE(g_vsync[0]->request_view_change({h.group.node(0).v}));
}

TEST_F(VsyncTest, MessagesCutCleanlyAtViewBoundary) {
  GroupHarness h(3, vsync_stack());
  // Traffic in view 1, then a view change racing with more traffic.
  for (int i = 0; i < 4; ++i) h.group.send(1, to_bytes("v1-" + std::to_string(i)));
  h.sim.run_for(200 * kMillisecond);
  g_vsync[0]->request_view_change({h.group.node(0).v, h.group.node(1).v, h.group.node(2).v});
  for (int i = 0; i < 4; ++i) h.group.send(2, to_bytes("race-" + std::to_string(i)));
  h.sim.run_for(3 * kSecond);
  // Everything is eventually delivered everywhere...
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 8u) << "member " << p;
  }
  // ...and every member agrees on which side of the boundary each message
  // fell: the trace is virtually synchronous.
  EXPECT_TRUE(VirtualSynchronyProperty().holds(h.group.trace()));
}

TEST_F(VsyncTest, SendsBlockedDuringFlushAreReleasedInNewView) {
  GroupHarness h(3, vsync_stack());
  h.sim.run_for(50 * kMillisecond);
  g_vsync[0]->request_view_change({h.group.node(0).v, h.group.node(1).v, h.group.node(2).v});
  // Immediately queue sends: the flush has not completed yet.
  h.group.send(0, to_bytes("queued1"));
  h.group.send(0, to_bytes("queued2"));
  h.sim.run_for(3 * kSecond);
  EXPECT_EQ(g_vsync[0]->current_view(), 2u);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 2u);
  }
  EXPECT_TRUE(VirtualSynchronyProperty().holds(h.group.trace()));
}

TEST_F(VsyncTest, MultipleSequentialViewChanges) {
  GroupHarness h(4, vsync_stack());
  h.sim.run_for(50 * kMillisecond);
  for (std::uint64_t target = 2; target <= 5; ++target) {
    std::vector<std::uint32_t> members;
    for (std::size_t p = 0; p < 4; ++p) members.push_back(h.group.node(p).v);
    ASSERT_TRUE(g_vsync[0]->request_view_change(members));
    h.group.send(1, to_bytes("between" + std::to_string(target)));
    h.sim.run_for(2 * kSecond);
    for (std::size_t p = 0; p < 4; ++p) {
      ASSERT_EQ(g_vsync[p]->current_view(), target) << "member " << p;
    }
  }
  EXPECT_TRUE(VirtualSynchronyProperty().holds(h.group.trace()));
}

TEST_F(VsyncTest, ViewBodyEncodesMembers) {
  const std::vector<std::uint32_t> members = {3, 1, 4, 1, 5};
  EXPECT_EQ(decode_view_body(encode_view_body(members)), members);
  EXPECT_TRUE(decode_view_body(encode_view_body({})).empty());
}

TEST_F(VsyncTest, AppSeesViewNotificationBody) {
  GroupHarness h(2, vsync_stack());
  std::vector<std::uint32_t> seen;
  h.group.stack(1).set_on_deliver([&](const MsgId& id, std::span<const Byte> body) {
    if (id.kind == MsgId::Kind::kView) seen = decode_view_body(body);
  });
  h.sim.run_for(50 * kMillisecond);
  g_vsync[0]->request_view_change({h.group.node(0).v});
  h.sim.run_for(2 * kSecond);
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{h.group.node(0).v}));
}

}  // namespace
}  // namespace msw
