// The section 6.3 theorem, as an executable check over the trace-level SP
// model: properties satisfying all six meta-properties hold on every
// SP-composable trace of two satisfying runs; properties outside the class
// are violated by some composite.
#include <gtest/gtest.h>

#include <algorithm>

#include "trace/generators.hpp"
#include "trace/properties.hpp"
#include "trace/sp_model.hpp"

namespace msw {
namespace {

class SpModelSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpModelSeeds, IdentityCompositeIsConcatenation) {
  Rng rng(GetParam());
  GenOptions a_opts, b_opts;
  a_opts.seq_base = 0;
  b_opts.seq_base = 10'000;
  const Trace a = gen_total_order_trace(rng, a_opts);
  const Trace b = gen_total_order_trace(rng, b_opts);
  const auto comps = sp_compositions(a, b, rng, 1);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].above.size(), a.size() + b.size());
}

TEST_P(SpModelSeeds, CompositesAreWellFormed) {
  Rng rng(GetParam());
  GenOptions a_opts, b_opts;
  a_opts.seq_base = 0;
  b_opts.seq_base = 10'000;
  const Trace a = gen_total_order_trace(rng, a_opts);
  const Trace b = gen_total_order_trace(rng, b_opts);
  for (const auto& c : sp_compositions(a, b, rng, 32)) {
    EXPECT_TRUE(well_formed(c.above)) << "steps: " << c.steps.size();
  }
}

TEST_P(SpModelSeeds, SixMetaPropertyClassSurvivesEveryComposite) {
  // The paper's theorem (proved in Nuprl, sampled here): Total Order,
  // Integrity, Confidentiality — all six meta-properties — hold on every
  // composite of satisfying runs.
  Rng rng(GetParam());
  GenOptions a_opts, b_opts;
  a_opts.seq_base = 0;
  b_opts.seq_base = 10'000;
  const Trace a = gen_total_order_trace(rng, a_opts);
  const Trace b = gen_total_order_trace(rng, b_opts);

  TotalOrderProperty total_order;
  IntegrityProperty integrity({0, 1, 2, 3});
  ConfidentialityProperty confidentiality({0, 1, 2, 3});
  ASSERT_TRUE(total_order.holds(a) && total_order.holds(b));

  for (const auto& c : sp_compositions(a, b, rng, 64)) {
    EXPECT_TRUE(total_order.holds(c.above)) << to_string(c.above);
    EXPECT_TRUE(integrity.holds(c.above));
    EXPECT_TRUE(confidentiality.holds(c.above));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpModelSeeds, ::testing::Values(1, 2, 3, 7, 11, 19, 31));

TEST(SpModel, NoReplayViolatedBySomeComposite) {
  // Two runs each No-Replay-clean, sharing a body under different ids: the
  // glued trace can deliver the body twice (the not-Composable cell).
  const Trace a = {send_ev(0, 1, to_bytes("x")), deliver_ev(1, 0, 1, to_bytes("x"))};
  const Trace b = {send_ev(0, 2, to_bytes("x")), deliver_ev(1, 0, 2, to_bytes("x"))};
  NoReplayProperty no_replay;
  ASSERT_TRUE(no_replay.holds(a) && no_replay.holds(b));
  Rng rng(5);
  bool violated = false;
  for (const auto& c : sp_compositions(a, b, rng, 16)) {
    if (!no_replay.holds(c.above)) violated = true;
  }
  EXPECT_TRUE(violated);
}

TEST(SpModel, VirtualSynchronyViolatedBySomeComposite) {
  // A run ending with an open, asymmetric epoch glued to a run whose view
  // marker closes it (the not-Composable cell of VS).
  const Trace a = {view_deliver_ev(0, 0, 1), view_deliver_ev(1, 0, 1),
                   send_ev(0, 100, to_bytes("m")), deliver_ev(0, 0, 100, to_bytes("m"))};
  const Trace b = {view_deliver_ev(0, 0, 2), view_deliver_ev(1, 0, 2)};
  VirtualSynchronyProperty vs;
  ASSERT_TRUE(vs.holds(a) && vs.holds(b));
  Rng rng(5);
  bool violated = false;
  for (const auto& c : sp_compositions(a, b, rng, 16)) {
    if (!vs.holds(c.above)) violated = true;
  }
  EXPECT_TRUE(violated);
}

TEST(SpModel, AmoebaViolatedBySomeComposite) {
  const Trace a = {send_ev(0, 1)};  // in flight at the switch
  const Trace b = {send_ev(0, 2), deliver_ev(0, 0, 2)};
  AmoebaProperty amoeba;
  ASSERT_TRUE(amoeba.holds(a) && amoeba.holds(b));
  Rng rng(5);
  bool violated = false;
  for (const auto& c : sp_compositions(a, b, rng, 16)) {
    if (!amoeba.holds(c.above)) violated = true;
  }
  EXPECT_TRUE(violated);
}

TEST(SpModel, StepsAreRecorded) {
  Rng rng(9);
  GenOptions a_opts, b_opts;
  a_opts.seq_base = 0;
  b_opts.seq_base = 10'000;
  const Trace a = gen_total_order_trace(rng, a_opts);
  const Trace b = gen_total_order_trace(rng, b_opts);
  bool saw_multi_step = false;
  for (const auto& c : sp_compositions(a, b, rng, 32)) {
    EXPECT_FALSE(c.steps.empty());
    EXPECT_NE(std::find(c.steps.begin(), c.steps.end(), "Composable"), c.steps.end());
    if (c.steps.size() >= 3) saw_multi_step = true;
  }
  EXPECT_TRUE(saw_multi_step);
}

}  // namespace
}  // namespace msw
