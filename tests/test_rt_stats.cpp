// Runtime observability plane (src/rt/stats/): seqlock snapshot integrity
// under write churn, loop-lag instrumentation, snapshot-under-load
// consistency, end-to-end latency accounting, JSONL byte-stability for
// deterministic runs, and the StatsPublisher thread lifecycle.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rt/event_loop.hpp"
#include "rt/executor.hpp"
#include "rt/loopback_transport.hpp"
#include "rt/rt_group.hpp"
#include "rt/sim_transport.hpp"
#include "rt/stats/publisher.hpp"
#include "rt/stats/seqlock.hpp"
#include "rt/stats/shard_stats.hpp"
#include "rt/stats/signal_adapter.hpp"
#include "rt/stats/stats_plane.hpp"
#include "sim/simulation.hpp"
#include "stack/stack.hpp"
#include "switch/hybrid.hpp"
#include "telemetry/stats_io.hpp"

#include "helpers.hpp"

namespace msw {
namespace {

Bytes body_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

/// Spin until `pred` holds or ~5 s elapse.
template <typename Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 5000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

// ----------------------------------------------------------------- seqlock

TEST(Seqlock, SnapshotsAreNeverTornUnderWriteChurn) {
  constexpr std::size_t kSlots = 64;
  SeqlockBuf buf;
  buf.resize(kSlots);

  // Writer publishes uniform arrays (all slots == k): any mix of two
  // publications in one read is detectable as non-uniformity.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t vals[kSlots];
    for (std::uint64_t k = 1; !stop.load(std::memory_order_relaxed); ++k) {
      for (auto& v : vals) v = k;
      buf.publish(vals, kSlots);
    }
  });

  std::uint64_t got[kSlots];
  for (int i = 0; i < 20000; ++i) {
    if (!buf.read(got, kSlots)) continue;  // every attempt raced; no claim
    for (std::size_t s = 1; s < kSlots; ++s) {
      ASSERT_EQ(got[s], got[0]) << "torn read at slot " << s;
    }
  }
  stop.store(true);
  writer.join();
  // A tight-loop writer on a loaded machine can race every mid-churn
  // attempt; only a quiescent writer makes a clean read guaranteed.
  ASSERT_TRUE(buf.read(got, kSlots));
  for (std::size_t s = 1; s < kSlots; ++s) {
    ASSERT_EQ(got[s], got[0]) << "torn read at slot " << s;
  }
  EXPECT_GT(buf.generation(), 0u);
}

TEST(Seqlock, GenerationCountsCompletedPublications) {
  SeqlockBuf buf;
  buf.resize(2);
  const std::uint64_t vals[2] = {3, 4};
  EXPECT_EQ(buf.generation(), 0u);
  buf.publish(vals, 2);
  buf.publish(vals, 2);
  EXPECT_EQ(buf.generation(), 2u);
  std::uint64_t got[2];
  EXPECT_TRUE(buf.read(got, 2));
  EXPECT_EQ(got[0], 3u);
  EXPECT_EQ(got[1], 4u);
}

// -------------------------------------------------------------- shard stats

#if MSW_RT_STATS_ENABLED
TEST(ShardStats, LoopLagFiresOnDelayedTimer) {
  EventLoop loop;
  ShardStats ss(loop, 0);
  ss.seal();
  // A timer whose deadline is already 60 ms in the past fires on the first
  // loop iteration with at least that much lag. The observer records the
  // lag before the callback runs, so the in-callback flush publishes it.
  loop.add_timer(EventLoop::now_ns() - 60'000'000, [&] {
    ss.flush();
    loop.stop();
  });
  loop.run();

  StatsSnapshot snap;
  ASSERT_TRUE(ss.snapshot(snap, 0));
  const auto* lag = snap.find_hist("rt.loop.lag_us");
  ASSERT_NE(lag, nullptr);
  EXPECT_GE(lag->count, 1u);
  EXPECT_GE(lag->max, 50'000u);  // 60 ms late, in µs, with scheduling slop
}
#endif

TEST(ShardStats, SnapshotDecodesLoopHealthCounters) {
  EventLoop loop;
  ShardStats ss(loop, 3);
  EXPECT_EQ(ss.source(), "shard3");
  ss.seal();
  std::thread runner([&] { loop.run(); });
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) loop.post([&ran] { ++ran; });
  ASSERT_TRUE(eventually([&] { return ran.load() == 50; }));
  std::atomic<bool> flushed{false};
  loop.post([&] {
    ss.flush();
    flushed.store(true);
  });
  ASSERT_TRUE(eventually([&] { return flushed.load(); }));
  loop.stop();
  runner.join();

  StatsSnapshot snap;
  ASSERT_TRUE(ss.snapshot(snap, 42));
  EXPECT_EQ(snap.t_us, 42u);
  const auto* tasks = snap.find_scalar("rt.loop.tasks");
  ASSERT_NE(tasks, nullptr);
  EXPECT_GE(tasks->value, 50u);
#if MSW_RT_STATS_ENABLED
  // The backlog probe is consumer-side (drained-per-pass); at least one
  // pass drained at least one task, so the HWM is >= 1.
  const auto* hwm = snap.find_scalar("rt.loop.inbox_hwm");
  ASSERT_NE(hwm, nullptr);
  EXPECT_GE(hwm->value, 1u);
#endif
}

// ----------------------------------------------------------- signal adapter

TEST(RtSignalAdapter, UnsealedStatsLeaveVectorUntouched) {
  // The adapter must be safe to install before the wiring phase finishes:
  // a not-yet-sealed stats plane contributes nothing rather than garbage.
  EventLoop loop;
  ShardStats ss(loop, 0);
  SignalVector v;
  v.loop_lag_p99_us = 42;
  v.inbox_depth = 7;
  rt_signal_source(ss)(v);
  EXPECT_EQ(v.loop_lag_p99_us, 42);
  EXPECT_EQ(v.inbox_depth, 7);
}

TEST(RtSignalAdapter, FillsLoopHealthFieldsFromSnapshot) {
  EventLoop loop;
  ShardStats ss(loop, 0);
  ss.seal();
  std::thread runner([&] { loop.run(); });
  std::atomic<bool> flushed{false};
  loop.post([&] {
    ss.flush();
    flushed.store(true);
  });
  ASSERT_TRUE(eventually([&] { return flushed.load(); }));
  loop.stop();
  runner.join();

  SignalVector v;
  rt_signal_source(ss)(v);
  // Loop-health fields decode from the sealed snapshot: whatever lag the
  // loop actually saw, the adapter must surface it as a finite, nonnegative
  // number (0 is fine on an idle loop without the stats-enabled probes).
  EXPECT_GE(v.loop_lag_p99_us, 0.0);
  EXPECT_GE(v.inbox_depth, 0.0);
}

// -------------------------------------------------------------- stats plane

TEST(RtStatsPlane, SnapshotUnderLoadIsConsistent) {
  constexpr std::size_t kN = 4;
  constexpr std::size_t kMsgs = 100;
  Executor ex(2);
  LoopbackTransport tr(ex);
  RtStatsPlane plane(ex, &tr, RtStatsConfig{5 * kMillisecond});
  RtGroup group(tr, kN, make_reliable_fifo_factory(), /*shard=*/0);
  plane.attach_group(group, "g0", /*sample_shift=*/0);  // exact accounting
  ex.start();
  plane.start();
  group.start();

  for (std::size_t m = 0; m < kMsgs; ++m) {
    for (std::size_t i = 0; i < kN; ++i) group.send(i, body_of("m" + std::to_string(m)));
  }

  // Collect concurrently with the traffic: every snapshot must be
  // internally consistent (histogram count == sum of its buckets) and
  // counters must be monotone across snapshots.
  std::uint64_t last_tasks = 0;
  const std::uint64_t expect = std::uint64_t{kN} * kN * kMsgs;
  for (int iter = 0; iter < 200; ++iter) {
    const std::vector<StatsSnapshot> snaps = plane.collect();
    ASSERT_EQ(snaps.size(), 2u);
    std::uint64_t tasks = 0;
    for (const StatsSnapshot& s : snaps) {
      for (const StatsSnapshot::Hist& h : s.hists) {
        std::uint64_t in_buckets = 0;
        for (const std::uint64_t b : h.buckets) in_buckets += b;
        ASSERT_EQ(in_buckets, h.count) << h.name << " torn";
      }
      if (const auto* t = s.find_scalar("rt.loop.tasks")) tasks += t->value;
    }
    ASSERT_GE(tasks, last_tasks) << "counter went backwards";
    last_tasks = tasks;
    if (group.total_delivered() >= expect) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(eventually([&] { return group.total_delivered() >= expect; }));
  ex.stop();

  plane.flush_all();
  const std::vector<StatsSnapshot> final_snaps = plane.collect();
  const StatsSnapshot transport = plane.transport_snapshot();
  EXPECT_EQ(transport.source, "transport");
  const auto* delivered = transport.find_scalar("rt.net.delivered");
  ASSERT_NE(delivered, nullptr);
  EXPECT_GT(delivered->value, 0u);
#if MSW_RT_STATS_ENABLED
  const StatsSnapshot::Hist e2e = merge_hists(final_snaps, "rt.latency_us.");
  EXPECT_EQ(e2e.count, expect);
#endif
}

#if MSW_RT_STATS_ENABLED
TEST(RtStatsPlane, LatencyAccountsEveryDelivery) {
  constexpr std::size_t kN = 3;
  constexpr std::size_t kMsgs = 50;
  Executor ex(1);
  LoopbackTransport tr(ex);
  RtStatsPlane plane(ex, &tr);
  RtGroup group(tr, kN, make_reliable_fifo_factory());
  // Default name ("g0"); shift 0 so every delivery must be accounted.
  LatencyTracker& lat = plane.attach_group(group, {}, /*sample_shift=*/0);
  ex.start();
  plane.start();
  group.start();
  for (std::size_t m = 0; m < kMsgs; ++m) {
    for (std::size_t i = 0; i < kN; ++i) group.send(i, body_of("x"));
  }
  const std::uint64_t expect = std::uint64_t{kN} * kN * kMsgs;
  ASSERT_TRUE(eventually([&] { return group.total_delivered() >= expect; }));
  ex.stop();

  // Every delivery matched a stamp: nothing untracked, nothing open.
  EXPECT_EQ(lat.hist().count(), expect);
  EXPECT_EQ(lat.untracked(), 0u);
  EXPECT_EQ(lat.open(), 0u);
  EXPECT_GE(lat.hist().min(), 0u);
  EXPECT_GT(lat.hist().max(), 0u);  // a real medium takes nonzero wall time
  EXPECT_LE(lat.hist().p50(), lat.hist().p99());

  plane.flush_all();
  const std::vector<StatsSnapshot> snaps = plane.collect();
  const auto* h = snaps[0].find_hist("rt.latency_us.g0");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, expect);
}

TEST(LatencyTracker, SamplingStampsOneInTwoToTheShift) {
  MetricsRegistry reg;
  LatencyTracker lat(reg, "s", /*fanout=*/1, /*sample_shift=*/4);
  for (std::uint64_t seq = 0; seq < 64; ++seq) {
    EXPECT_EQ(lat.sampled(seq), (seq & 15) == 0) << seq;
    lat.on_send(1, seq, static_cast<Time>(10));
    lat.on_deliver(1, seq, static_cast<Time>(25));
  }
  // 64 seqs at 1/16: exactly 0, 16, 32, 48 were stamped and matched.
  EXPECT_EQ(lat.hist().count(), 4u);
  EXPECT_EQ(lat.hist().min(), 15u);
  EXPECT_EQ(lat.hist().max(), 15u);
  EXPECT_EQ(lat.untracked(), 0u);  // unsampled deliveries are no-ops, not misses
  EXPECT_EQ(lat.open(), 0u);

  // A sampled delivery with no stamp IS a miss.
  lat.on_deliver(2, 0, static_cast<Time>(30));
  EXPECT_EQ(lat.untracked(), 1u);
}

TEST(LatencyTracker, EvictionUnderOverloadIsCountedNotSilent) {
  MetricsRegistry reg;
  // Fanout 2, shift 0: leave many entries open to force probe-window
  // evictions; the table holds 4096 slots with a probe window of 8.
  LatencyTracker lat(reg, "o", /*fanout=*/2, /*sample_shift=*/0);
  constexpr std::uint64_t kOpens = 8192;  // 2x table capacity
  for (std::uint64_t seq = 0; seq < kOpens; ++seq) {
    lat.on_send(1, seq, static_cast<Time>(seq));
  }
  EXPECT_LE(lat.open(), std::size_t{4096});
  // Deliver everything twice: evicted stamps miss (untracked), surviving
  // stamps retire. Accounting stays exact either way.
  std::uint64_t tracked = 0;
  for (std::uint64_t seq = 0; seq < kOpens; ++seq) {
    lat.on_deliver(1, seq, static_cast<Time>(seq + 100));
    lat.on_deliver(1, seq, static_cast<Time>(seq + 100));
  }
  tracked = lat.hist().count();
  EXPECT_EQ(tracked + lat.untracked(), 2 * kOpens);
  EXPECT_GT(lat.untracked(), 0u);  // overload really did evict
  EXPECT_EQ(lat.open(), 0u);
  EXPECT_EQ(lat.hist().min(), 100u);
  EXPECT_EQ(lat.hist().max(), 100u);
}
#endif

// ------------------------------------------------------- JSONL stability

TEST(StatsIo, GoldenLineFormatIsPinned) {
  MetricsRegistry reg;
  reg.counter("c").inc(2);
  reg.gauge("g").set(7);
  reg.histogram("h").record(5);
  const StatsSnapshot snap = snapshot_from_registry("src", 123, reg);
  std::ostringstream os;
  write_stats_line(os, snap);
  // Byte-for-byte: key order is registration order, doubles are fixed
  // 3-decimal, single-value percentiles clamp to the value.
  EXPECT_EQ(os.str(),
            "{\"t_us\":123,\"src\":\"src\",\"metrics\":{\"c\":2,\"g\":7,\"g.max\":7},"
            "\"hist\":{\"h\":{\"count\":1,\"min\":5,\"max\":5,\"mean\":5.000,"
            "\"p50\":5.000,\"p99\":5.000,\"p999\":5.000}}}\n");
}

/// One deterministic stats line: stacks over the SimTransport shim with a
/// LatencyTracker stamped from sim time, serialized after a fixed workload.
std::string deterministic_stats_line() {
  Simulation sim(/*seed=*/7);
  Network net(sim.scheduler(), sim.fork_rng(), testing::lossy_net(0.02));
  constexpr std::size_t kN = 3;
  const LayerFactory factory = make_reliable_fifo_factory();
  std::vector<NodeId> members;
  for (std::size_t i = 0; i < kN; ++i) members.push_back(net.add_node());
  SimTransport transport(net);

  MetricsRegistry reg;
  LatencyTracker lat(reg, "sim", kN);
  std::vector<std::unique_ptr<Stack>> stacks;
  for (std::size_t i = 0; i < kN; ++i) {
    stacks.push_back(std::make_unique<Stack>(transport, members[i], members,
                                             factory(members[i], members), sim.fork_rng()));
    stacks.back()->set_on_deliver(
        [&lat, &transport](const MsgId& id, std::span<const Byte>) {
          if (id.kind == MsgId::Kind::kData) {
            lat.on_deliver(id.sender, id.seq, transport.now());
          }
        });
  }
  for (auto& s : stacks) s->start();
  for (int round = 0; round < 20; ++round) {
    for (std::size_t i = 0; i < kN; ++i) {
      lat.on_send(members[i].v, stacks[i]->sent(), transport.now());
      stacks[i]->send(body_of("r" + std::to_string(round)));
    }
    sim.run_for(5 * kMillisecond);
  }
  sim.run_for(2 * kSecond);

  const StatsSnapshot snap =
      snapshot_from_registry("sim", static_cast<std::uint64_t>(sim.now()), reg);
  std::ostringstream os;
  write_stats_line(os, snap);
  return os.str();
}

TEST(StatsIo, DeterministicSimRunYieldsByteIdenticalLines) {
  const std::string a = deterministic_stats_line();
  const std::string b = deterministic_stats_line();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // The line is live, not vacuous: the sim's latencies actually landed.
  EXPECT_NE(a.find("\"rt.latency_us.sim\":{\"count\":"), std::string::npos) << a;
  EXPECT_EQ(a.find("\"count\":0,"), std::string::npos) << a;
}

// --------------------------------------------------------------- publisher

TEST(StatsPublisher, WritesJsonlTicksAndStopsCleanly) {
  constexpr std::size_t kN = 3;
  Executor ex(2);
  LoopbackTransport tr(ex);
  RtStatsPlane plane(ex, &tr, RtStatsConfig{5 * kMillisecond});
  RtGroup group(tr, kN, make_reliable_fifo_factory(), /*shard=*/1);
  plane.attach_group(group, {}, /*sample_shift=*/0);
  ex.start();
  plane.start();
  group.start();

  std::ostringstream jsonl;
  StatsPublisherConfig cfg;
  cfg.interval = 10 * kMillisecond;
  cfg.jsonl_stream = &jsonl;
  StatsPublisher pub(plane, cfg);
  pub.start();

  for (std::size_t m = 0; m < 50; ++m) {
    for (std::size_t i = 0; i < kN; ++i) group.send(i, body_of("p"));
  }
  const std::uint64_t expect = std::uint64_t{kN} * kN * 50;
  ASSERT_TRUE(eventually([&] { return group.total_delivered() >= expect; }));
  ASSERT_TRUE(eventually([&] { return pub.ticks() >= 2; }));
  pub.stop();
  pub.stop();  // idempotent
  ex.stop();

  const std::string text = jsonl.str();
  // Each tick emits one line per shard plus the transport totals line.
  EXPECT_GE(pub.ticks(), 2u);
  EXPECT_NE(text.find("\"src\":\"shard0\""), std::string::npos);
  EXPECT_NE(text.find("\"src\":\"shard1\""), std::string::npos);
  EXPECT_NE(text.find("\"src\":\"transport\""), std::string::npos);
  EXPECT_NE(text.find("\"rt.net.delivered\""), std::string::npos);
  // Every line is a complete object.
  std::istringstream lines(text);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_GE(count, 3u * pub.ticks());
}

}  // namespace
}  // namespace msw
