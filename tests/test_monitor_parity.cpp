// Oracle parity: the streaming monitors must reach the same verdict as the
// buffered trace oracle on the same runs — clean campaigns stay clean on
// both sides, and both injected historical bugs are caught by both. Tests
// named *Slow* carry the slow ctest label (see tests/CMakeLists.txt); the
// tier-1 filter runs the rest.
#include <gtest/gtest.h>

#include <cstdint>

#include "harness/fuzz.hpp"
#include "harness/soak.hpp"
#include "net/fault.hpp"

namespace msw {
namespace {

FuzzConfig monitored_config() {
  FuzzConfig cfg;
  cfg.enable_crash = true;
  cfg.attach_monitors = true;
  return cfg;
}

void expect_parity(std::uint64_t base_seed, std::size_t iters, const FuzzConfig& cfg,
                   std::size_t* failures = nullptr) {
  for (std::uint64_t s = base_seed; s < base_seed + iters; ++s) {
    const FuzzIteration it = run_fuzz_iteration(s, cfg);
    EXPECT_EQ(it.ok, it.monitor_ok)
        << "seed " << s << ": oracle says " << (it.ok ? "ok" : it.reason)
        << " but monitors say " << (it.monitor_ok ? "ok" : it.monitor_reason);
    EXPECT_GT(it.monitor_cells, 0u) << "seed " << s << ": monitors saw no traffic?";
    if (failures && !it.ok) ++*failures;
  }
}

TEST(MonitorParity, CleanCampaignAgrees) {
  std::size_t failures = 0;
  expect_parity(1, 30, monitored_config(), &failures);
  EXPECT_EQ(failures, 0u);
}

TEST(MonitorParity, CleanCampaignAgreesSlow) {
  std::size_t failures = 0;
  FuzzConfig cfg = monitored_config();
  expect_parity(1000, 90, cfg, &failures);
  cfg.reliable_base = true;
  expect_parity(2000, 30, cfg, &failures);
  EXPECT_EQ(failures, 0u);
}

TEST(MonitorParity, InjectedFlushBugCaughtByBoth) {
  FuzzConfig cfg = monitored_config();
  cfg.inject_flush_bug = true;
  std::size_t failures = 0;
  expect_parity(1, 20, cfg, &failures);
  // The drain-count bug fires on a decent fraction of schedules; parity
  // above already proved the monitors failed exactly the same seeds.
  EXPECT_GT(failures, 0u);
}

TEST(MonitorParity, InjectedSelfNackBugCaughtByBoth) {
  FuzzConfig cfg = monitored_config();
  cfg.inject_selfnack_bug = true;
  std::size_t failures = 0;
  expect_parity(1, 30, cfg, &failures);
  EXPECT_GT(failures, 0u);
}

// The historical crashed-sequencer reproducer (PR 5): seed 13's schedule
// crashes the sequencer mid-stream. With the self-refill bug re-injected
// the sequencer never fills its own gap — oracle and monitors must both
// call the loss; with the fix in place both must pass.
TEST(MonitorParity, CrashedSequencerReproAgrees) {
  const auto schedule = FaultSchedule::parse("crash@188644:0;restart@426749:0");
  ASSERT_TRUE(schedule.has_value());

  FuzzConfig cfg = monitored_config();
  cfg.inject_selfnack_bug = true;
  const FuzzIteration broken = run_fuzz_iteration(13, cfg, &*schedule);
  EXPECT_FALSE(broken.ok);
  EXPECT_FALSE(broken.monitor_ok);
  EXPECT_EQ(broken.ok, broken.monitor_ok);

  cfg.inject_selfnack_bug = false;
  const FuzzIteration fixed = run_fuzz_iteration(13, cfg, &*schedule);
  EXPECT_TRUE(fixed.ok) << fixed.reason;
  EXPECT_TRUE(fixed.monitor_ok) << fixed.monitor_reason;
}

// Soak harness end-to-end at test scale: clean verdict, all messages sent,
// and the monitor footprint inside the members-derived budget.
TEST(Soak, SmallRunCleanAndBounded) {
  SoakConfig cfg;
  cfg.messages = 20'000;
  cfg.members = 6;
  const SoakResult res = run_soak(cfg);
  EXPECT_TRUE(res.ok) << res.reason;
  EXPECT_EQ(res.sent, cfg.messages);
  EXPECT_EQ(res.delivered, cfg.messages * cfg.members);
  EXPECT_LE(res.peak_cells, res.cell_budget);
  EXPECT_TRUE(res.flight_record.empty());
}

// Long enough for churn (crash/restart pairs) and periodic switches to
// actually fire, with loss/dup/reorder on.
TEST(Soak, ChurnAndSwitchesCleanSlow) {
  SoakConfig cfg;
  cfg.messages = 200'000;
  const SoakResult res = run_soak(cfg);
  EXPECT_TRUE(res.ok) << res.reason;
  EXPECT_GT(res.crashes, 0u);
  EXPECT_GT(res.switches_installed, 0u);
  EXPECT_LE(res.peak_cells, res.cell_budget);
}

// The causal arm at tier-1 scale: 10^5 messages through the vector-clock
// causal stack with churn (crash/restart pairs), loss, dup, and reorder
// on. Clean causal+reliable verdict, bounded monitor state.
TEST(Soak, CausalChurnSmoke) {
  SoakConfig cfg;
  cfg.stack = SoakConfig::Stack::kCausal;
  cfg.messages = 100'000;
  cfg.members = 8;
  cfg.churn_interval = 4 * kSecond;  // activity ~12.5 s => a few pairs fire
  const SoakResult res = run_soak(cfg);
  EXPECT_TRUE(res.ok) << res.reason;
  EXPECT_EQ(res.sent, cfg.messages);
  EXPECT_GT(res.crashes, 0u);
  EXPECT_EQ(res.switches_installed, 0u);  // no SwitchLayer in this stack
  EXPECT_LE(res.peak_cells, res.cell_budget);
}

// Wall-clock budget mode: complete rounds until the deadline, aggregate
// verdict. A tiny budget must still complete at least one full round.
TEST(Soak, BudgetSecondsRunsWholeRounds) {
  SoakConfig cfg;
  cfg.messages = 5'000;
  cfg.members = 4;
  cfg.budget_seconds = 1.0;
  const SoakResult res = run_soak(cfg);
  EXPECT_TRUE(res.ok) << res.reason;
  EXPECT_GE(res.rounds, 1u);
  EXPECT_EQ(res.sent, res.rounds * cfg.messages);
  EXPECT_GE(res.wall_seconds, cfg.budget_seconds);
}

// Sampling keeps the soak verdict clean and shrinks the window footprint.
TEST(Soak, SampledRunStillClean) {
  SoakConfig cfg;
  cfg.messages = 20'000;
  cfg.members = 6;
  cfg.sample_period = 8;
  const SoakResult res = run_soak(cfg);
  EXPECT_TRUE(res.ok) << res.reason;
}

}  // namespace
}  // namespace msw
