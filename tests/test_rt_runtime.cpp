// Runtime-boundary unit tests: the event loop's MPSC inbox and timers, the
// executor lifecycle, the threaded loopback and UDP backends, and the
// SimTransport shim's byte-identical equivalence to the direct Network
// path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "rt/event_loop.hpp"
#include "rt/executor.hpp"
#include "rt/loopback_transport.hpp"
#include "rt/rt_group.hpp"
#include "rt/sim_transport.hpp"
#include "rt/udp_transport.hpp"
#include "sim/simulation.hpp"
#include "stack/group.hpp"
#include "switch/hybrid.hpp"

#include "helpers.hpp"

namespace msw {
namespace {

using testing::ideal_net;

Bytes body_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

/// Spin until `pred` holds or ~5 s elapse.
template <typename Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 5000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

TEST(EventLoop, RunsPostedTasksInFifoOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) loop.post([&order, i] { order.push_back(i); });
  loop.post([&loop] { loop.stop(); });
  loop.run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
  EXPECT_GE(loop.tasks_run(), 101u);
}

TEST(EventLoop, ManyProducersAllTasksArrive) {
  EventLoop loop;
  std::thread runner([&loop] { loop.run(); });
  std::atomic<int> count{0};
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&loop, &count] {
      for (int i = 0; i < kPerProducer; ++i) {
        loop.post([&count] { count.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : producers) t.join();
  ASSERT_TRUE(eventually([&] { return count.load() == kProducers * kPerProducer; }));
  loop.stop();
  runner.join();
  EXPECT_EQ(count.load(), kProducers * kPerProducer);
}

TEST(EventLoop, TimersFireInDeadlineOrder) {
  EventLoop loop;
  const std::int64_t now = EventLoop::now_ns();
  std::vector<int> order;
  // Registered out of order; must fire by deadline.
  loop.add_timer(now + 30'000'000, [&order] { order.push_back(3); });
  loop.add_timer(now + 10'000'000, [&order] { order.push_back(1); });
  loop.add_timer(now + 20'000'000, [&order] { order.push_back(2); });
  loop.add_timer(now + 40'000'000, [&loop] { loop.stop(); });
  loop.run();
  ASSERT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.timers_fired(), 4u);
}

TEST(EventLoop, CancelledTimerNeverFires) {
  EventLoop loop;
  const std::int64_t now = EventLoop::now_ns();
  bool fired = false;
  const std::uint64_t t = loop.add_timer(now + 5'000'000, [&fired] { fired = true; });
  loop.cancel_timer(t);
  loop.cancel_timer(t);  // double-cancel is a no-op
  loop.add_timer(now + 15'000'000, [&loop] { loop.stop(); });
  loop.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(loop.timers_fired(), 1u);
}

TEST(Executor, StartStopIsIdempotent) {
  Executor ex(3);
  EXPECT_EQ(ex.shards(), 3u);
  ex.start();
  std::atomic<int> ran{0};
  for (std::size_t s = 0; s < 3; ++s) ex.loop(s).post([&ran] { ++ran; });
  ASSERT_TRUE(eventually([&] { return ran.load() == 3; }));
  ex.stop();
  ex.stop();  // second stop is a no-op
  EXPECT_FALSE(ex.running());
}

TEST(LoopbackTransport, RawSendReachesHandlerOnOtherShard) {
  Executor ex(2);
  LoopbackTransport tr(ex);
  const NodeId a = tr.add_node(0);
  const NodeId b = tr.add_node(1);
  std::atomic<int> got{0};
  // Ping-pong: b echoes back to a; a counts.
  tr.set_handler(b, [&tr, a, b](Packet p) { tr.send(b, a, std::move(p.data)); });
  tr.set_handler(a, [&got](Packet) { got.fetch_add(1); });
  ex.start();
  for (int i = 0; i < 100; ++i) tr.send(a, b, Payload(body_of("ping")));
  ASSERT_TRUE(eventually([&] { return got.load() == 100; }));
  ex.stop();
  EXPECT_EQ(tr.packets_sent(), 200u);
  EXPECT_EQ(tr.packets_delivered(), 200u);
}

TEST(LoopbackTransport, ReliableFifoGroupDeliversEverythingInSenderOrder) {
  Executor ex(2);
  LoopbackTransport tr(ex);
  RtGroup group(tr, 3, make_reliable_fifo_factory(), /*shard=*/1);
  // Per-receiver, per-sender sequence log. Installed before start, read
  // after stop — the shard thread is the only writer in between.
  constexpr std::size_t kN = 3;
  std::vector<std::vector<std::vector<std::uint64_t>>> seqs(
      kN, std::vector<std::vector<std::uint64_t>>(kN));
  for (std::size_t i = 0; i < kN; ++i) {
    group.stack(i).set_on_deliver([&seqs, i](const MsgId& id, std::span<const Byte>) {
      seqs[i][id.sender].push_back(id.seq);
    });
  }
  ex.start();
  group.start();
  constexpr std::uint64_t kMsgs = 50;
  for (std::uint64_t m = 0; m < kMsgs; ++m) {
    for (std::size_t i = 0; i < kN; ++i) group.send(i, body_of("m"));
  }
  ASSERT_TRUE(eventually([&] { return group.total_delivered() == kN * kN * kMsgs; }));
  ex.stop();
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t s = 0; s < kN; ++s) {
      ASSERT_EQ(seqs[i][s].size(), kMsgs) << "receiver " << i << " sender " << s;
      for (std::uint64_t m = 0; m < kMsgs; ++m) {
        ASSERT_EQ(seqs[i][s][m], m) << "FIFO violated at receiver " << i;
      }
    }
  }
}

TEST(UdpTransport, ReliableFifoGroupDeliversOverRealSockets) {
  if (!UdpTransport::available()) {
    GTEST_SKIP() << "cannot bind loopback UDP sockets in this environment";
  }
  Executor ex(2);
  UdpTransport tr(ex);
  RtGroup group(tr, 4, make_reliable_fifo_factory());
  for (std::size_t i = 0; i < 4; ++i) EXPECT_GT(tr.port_of(group.node(i)), 0u);
  ex.start();
  group.start();
  constexpr std::uint64_t kMsgs = 100;
  for (std::uint64_t m = 0; m < kMsgs; ++m) {
    for (std::size_t i = 0; i < 4; ++i) group.send(i, body_of("udp"));
  }
  // The ReliableLayer's NACK/heartbeat machinery recovers kernel-dropped
  // datagrams, so full delivery is guaranteed, not probabilistic.
  ASSERT_TRUE(eventually([&] { return group.total_delivered() == 4u * 4u * kMsgs; }));
  ex.stop();
  EXPECT_EQ(group.total_sent(), 4u * kMsgs);
}

TEST(UdpTransport, OversizedDatagramCountsAsDropped) {
  if (!UdpTransport::available()) {
    GTEST_SKIP() << "cannot bind loopback UDP sockets in this environment";
  }
  Executor ex(1);
  UdpTransport tr(ex);
  const NodeId a = tr.add_node();
  const NodeId b = tr.add_node();
  tr.set_handler(b, [](Packet) {});
  ex.start();
  tr.send(a, b, Payload(Bytes(70000, Byte{0})));
  ex.stop();
  EXPECT_EQ(tr.packets_dropped(), 1u);
}

/// Drives an identical seeded workload over a group of stacks and returns
/// the captured trace. `use_transport` routes stack construction through a
/// SimTransport; otherwise stacks bind the Network directly (the
/// pre-runtime path). Everything else — seeds, RNG fork order, node
/// creation order, sends, settle times — is identical.
Trace sim_trace(bool use_transport) {
  Simulation sim(/*seed=*/42);
  Network net(sim.scheduler(), sim.fork_rng(), testing::lossy_net(0.05));
  constexpr std::size_t kN = 3;
  const LayerFactory factory = make_reliable_fifo_factory();
  TraceCapture capture;
  std::vector<NodeId> members;
  for (std::size_t i = 0; i < kN; ++i) members.push_back(net.add_node());
  SimTransport transport(net);
  std::vector<std::unique_ptr<Stack>> stacks;
  for (std::size_t i = 0; i < kN; ++i) {
    auto layers = factory(members[i], members);
    if (use_transport) {
      stacks.push_back(std::make_unique<Stack>(transport, members[i], members,
                                               std::move(layers), sim.fork_rng(), &capture));
    } else {
      stacks.push_back(std::make_unique<Stack>(net, members[i], members, std::move(layers),
                                               sim.fork_rng(), &capture));
    }
  }
  for (auto& s : stacks) s->start();
  for (int round = 0; round < 20; ++round) {
    for (std::size_t i = 0; i < kN; ++i) {
      stacks[i]->send(body_of("r" + std::to_string(round) + "n" + std::to_string(i)));
    }
    sim.run_for(5 * kMillisecond);
  }
  sim.run_for(2 * kSecond);
  return capture.trace();
}

TEST(SimTransport, ByteIdenticalTraceVersusDirectNetworkPath) {
  const Trace direct = sim_trace(/*use_transport=*/false);
  const Trace via_transport = sim_trace(/*use_transport=*/true);
  ASSERT_FALSE(direct.empty());
  ASSERT_EQ(direct.size(), via_transport.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    ASSERT_EQ(direct[i], via_transport[i]) << "event " << i << " diverged";
    // operator== ignores times; the boundary must not even shift an event
    // by a microsecond.
    ASSERT_EQ(direct[i].time, via_transport[i].time) << "event " << i << " time shifted";
  }
}

}  // namespace
}  // namespace msw
