// TokenLayer internals: token circulation, handoff retransmission, batch
// limits, stability-based garbage collection, and latency structure.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "proto/token_layer.hpp"

namespace msw {
namespace {

using testing::GroupHarness;

std::vector<TokenLayer*> g_tok;

LayerFactory tok_stack(TokenConfig cfg = {}) {
  return [cfg](NodeId, const std::vector<NodeId>&) {
    auto l = std::make_unique<TokenLayer>(cfg);
    g_tok.push_back(l.get());
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::move(l));
    return layers;
  };
}

class TokenInternals : public ::testing::Test {
 protected:
  void SetUp() override { g_tok.clear(); }
};

TEST_F(TokenInternals, TokenVisitsEveryMemberRepeatedly) {
  GroupHarness h(4, tok_stack());
  h.sim.run_for(kSecond);
  for (auto* l : g_tok) {
    EXPECT_GT(l->stats().token_visits, 10u);
  }
}

TEST_F(TokenInternals, SendWaitsForToken) {
  // A message queues locally until the token arrives.
  GroupHarness h(4, tok_stack());
  h.group.send(2, to_bytes("queued"));
  EXPECT_EQ(g_tok[2]->queued(), 1u);
  h.sim.run_for(kSecond);
  EXPECT_EQ(g_tok[2]->queued(), 0u);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 1u);
  }
}

TEST_F(TokenInternals, HandoffRetransmittedAcrossLossyRingEdge) {
  GroupHarness h(3, tok_stack(), testing::lossy_net(0.3), /*seed=*/53);
  h.sim.run_for(3 * kSecond);
  std::uint64_t retx = 0, visits = 0;
  for (auto* l : g_tok) {
    retx += l->stats().token_retransmissions;
    visits += l->stats().token_visits;
  }
  EXPECT_GT(retx, 0u) << "30% loss must hit some handoff";
  EXPECT_GT(visits, 30u) << "the ring must keep turning regardless";
}

TEST_F(TokenInternals, BatchLimitSpreadsBurstOverVisits) {
  TokenConfig cfg;
  cfg.batch_limit = 2;
  GroupHarness h(3, tok_stack(cfg));
  for (int i = 0; i < 7; ++i) h.group.send(1, to_bytes("b" + std::to_string(i)));
  h.sim.run_for(2 * kSecond);
  // All 7 delivered, in order, despite only 2 per token visit.
  for (std::size_t p = 0; p < 3; ++p) {
    const auto got = h.delivered_data(p);
    ASSERT_EQ(got.size(), 7u);
    for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i].seq, i);
  }
}

TEST_F(TokenInternals, HistoryGarbageCollectedViaTokenWatermark) {
  GroupHarness h(3, tok_stack());
  for (int i = 0; i < 10; ++i) h.group.send(0, to_bytes("w" + std::to_string(i)));
  // Enough rotations for everyone's delivered watermark to circulate.
  h.sim.run_for(3 * kSecond);
  // The sender's history should be empty once all members' watermarks pass.
  // (No public accessor for history size; use retransmission behaviour:
  // a NACK for an old gseq after GC cannot be served. Indirect check:
  // stability implies no gaps anywhere.)
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 10u);
  }
  EXPECT_TRUE(TotalOrderProperty().holds(h.group.trace()));
}

TEST_F(TokenInternals, LatencyScalesWithRingSize) {
  // Average wait for the token grows with the ring: a 12-member ring must
  // show higher single-sender latency than a 3-member ring.
  auto run = [](std::size_t n) {
    g_tok.clear();
    GroupHarness h(n, tok_stack(), testing::era_net(), /*seed=*/5);
    Summary lat;
    Time sent_at = 0;
    h.group.stack(1).set_on_deliver(
        [&](const MsgId&, std::span<const Byte>) { lat.add(to_ms(h.sim.now() - sent_at)); });
    for (int i = 0; i < 20; ++i) {
      h.sim.scheduler().at(i * 100 * kMillisecond, [&h, &sent_at] {
        sent_at = h.sim.now();
        h.group.send(1, to_bytes("x"));
      });
    }
    h.sim.run_for(5 * kSecond);
    return lat.mean();
  };
  const double small_ring = run(3);
  const double large_ring = run(12);
  EXPECT_GT(large_ring, small_ring * 1.5);
}

TEST_F(TokenInternals, IdleHoldSlowsRotation) {
  TokenConfig fast;
  TokenConfig slow;
  slow.idle_hold = 10 * kMillisecond;
  g_tok.clear();
  GroupHarness h1(3, tok_stack(fast));
  h1.sim.run_for(kSecond);
  const auto fast_visits = g_tok[0]->stats().token_visits;
  g_tok.clear();
  GroupHarness h2(3, tok_stack(slow));
  h2.sim.run_for(kSecond);
  const auto slow_visits = g_tok[0]->stats().token_visits;
  EXPECT_LT(slow_visits * 2, fast_visits);
}

TEST_F(TokenInternals, MulticastNackServedByOriginHistory) {
  GroupHarness h(3, tok_stack());
  // Cut the data path 0 -> 2, so member 2 misses member 0's multicast and
  // must NACK; member 0's history serves it once the link heals.
  h.net.set_link_up(h.group.node(0), h.group.node(2), false);
  h.group.send(0, to_bytes("lost data"));
  h.sim.run_for(300 * kMillisecond);
  h.net.set_link_up(h.group.node(0), h.group.node(2), true);
  h.sim.run_for(3 * kSecond);
  EXPECT_EQ(h.delivered_data(2).size(), 1u);
  EXPECT_GT(g_tok[0]->stats().history_retransmissions, 0u);
}

}  // namespace
}  // namespace msw
