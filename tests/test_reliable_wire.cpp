// Reliable-layer control-plane wire formats: varint edge values, range-NACK
// and delta-ack-vector round trips, truncation -> DecodeError, and the
// mixed-version rule (a legacy decoder drops the new frame types instead of
// misparsing them, and counts the drop).
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "proto/reliable_layer.hpp"
#include "util/bytes.hpp"

namespace msw {
namespace {

using relwire::AckVecFrame;
using relwire::NackFrame;
using testing::GroupHarness;

// ---------------------------------------------------------------- varint --

TEST(Varint, RoundTripEdgeValues) {
  const std::uint64_t values[] = {
      0,   1,   127,  128,  129,   255,        256,
      300, 16'383, 16'384, 1'000'000, ~std::uint64_t{0} >> 1, ~std::uint64_t{0}};
  for (std::uint64_t v : values) {
    Bytes buf;
    Writer w(buf);
    w.varint(v);
    Reader r(buf);
    EXPECT_EQ(r.varint(), v) << v;
    EXPECT_TRUE(r.done());
  }
}

TEST(Varint, SingleByteBelow128) {
  Bytes buf;
  Writer w(buf);
  w.varint(127);
  EXPECT_EQ(buf.size(), 1u);
  w.varint(128);
  EXPECT_EQ(buf.size(), 3u);  // second value took two bytes
}

TEST(Varint, TruncatedThrows) {
  Bytes buf;
  Writer w(buf);
  w.varint(1'000'000);  // multi-byte
  buf.pop_back();       // drop the terminating byte
  Reader r(buf);
  EXPECT_THROW(r.varint(), DecodeError);
}

TEST(Varint, OverlongThrows) {
  // 11 continuation bytes: no u64 needs that many.
  Bytes buf(11, 0x80);
  Reader r(buf);
  EXPECT_THROW(r.varint(), DecodeError);
}

// ------------------------------------------------------------ range NACK --

TEST(RelWire, NackRoundTrip) {
  NackFrame f;
  f.origin = 42;
  f.ranges = {{3, 7}, {10, 11}, {1'000'000, 1'000'050}};
  Bytes buf;
  Writer w(buf);
  relwire::encode_nack(w, f);
  Reader r(buf);
  const NackFrame d = relwire::decode_nack(r);
  r.expect_done();
  EXPECT_EQ(d.origin, f.origin);
  EXPECT_EQ(d.ranges, f.ranges);
}

TEST(RelWire, NackEmptyRangesRoundTrip) {
  NackFrame f;
  f.origin = 7;
  Bytes buf;
  Writer w(buf);
  relwire::encode_nack(w, f);
  Reader r(buf);
  const NackFrame d = relwire::decode_nack(r);
  EXPECT_EQ(d.origin, 7u);
  EXPECT_TRUE(d.ranges.empty());
}

TEST(RelWire, NackWideGapIsCompact) {
  // One huge contiguous hole costs a fixed handful of bytes; the legacy
  // encoding would need 8 bytes per missing sequence.
  NackFrame f;
  f.origin = 1;
  f.ranges = {{0, 100'000}};
  Bytes buf;
  Writer w(buf);
  relwire::encode_nack(w, f);
  EXPECT_LT(buf.size(), 16u);
  Reader r(buf);
  EXPECT_EQ(relwire::decode_nack(r).ranges, f.ranges);
}

TEST(RelWire, NackTruncatedHeaderThrows) {
  NackFrame f;
  f.origin = 9;
  f.ranges = {{5, 8}, {12, 20}};
  Bytes full;
  Writer w(full);
  relwire::encode_nack(w, f);
  // Every proper prefix must throw, never decode garbage.
  for (std::size_t len = 0; len < full.size(); ++len) {
    Bytes cut(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(len));
    Reader r(cut);
    EXPECT_THROW(relwire::decode_nack(r), DecodeError) << "prefix " << len;
  }
}

// ---------------------------------------------------------- delta ack vec --

TEST(RelWire, AckVecFullRoundTrip) {
  AckVecFrame f;
  f.sender = 3;
  f.full = true;
  f.cums = {{0, 17}, {2, 0}, {5, 1'000'000}, {1'000, 42}};
  Bytes buf;
  Writer w(buf);
  relwire::encode_ack_vec(w, f);
  Reader r(buf);
  const AckVecFrame d = relwire::decode_ack_vec(r);
  r.expect_done();
  EXPECT_EQ(d.sender, f.sender);
  EXPECT_EQ(d.full, f.full);
  EXPECT_EQ(d.cums, f.cums);
}

TEST(RelWire, AckVecDeltaRoundTrip) {
  AckVecFrame f;
  f.sender = 11;
  f.full = false;
  f.cums = {{4, 9}};
  Bytes buf;
  Writer w(buf);
  relwire::encode_ack_vec(w, f);
  Reader r(buf);
  const AckVecFrame d = relwire::decode_ack_vec(r);
  EXPECT_FALSE(d.full);
  EXPECT_EQ(d.cums, f.cums);
}

TEST(RelWire, AckVecEmptyRoundTrip) {
  AckVecFrame f;
  f.sender = 0;
  f.full = false;
  Bytes buf;
  Writer w(buf);
  relwire::encode_ack_vec(w, f);
  Reader r(buf);
  const AckVecFrame d = relwire::decode_ack_vec(r);
  EXPECT_TRUE(d.cums.empty());
}

TEST(RelWire, AckVecTruncatedThrows) {
  AckVecFrame f;
  f.sender = 1;
  f.full = true;
  f.cums = {{0, 5}, {1, 300}, {9, 12}};
  Bytes full;
  Writer w(full);
  relwire::encode_ack_vec(w, f);
  for (std::size_t len = 0; len < full.size(); ++len) {
    Bytes cut(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(len));
    Reader r(cut);
    EXPECT_THROW(relwire::decode_ack_vec(r), DecodeError) << "prefix " << len;
  }
}

TEST(RelWire, AckVecBadFlagsThrows) {
  AckVecFrame f;
  f.sender = 1;
  f.cums = {{0, 1}};
  Bytes buf;
  Writer w(buf);
  relwire::encode_ack_vec(w, f);
  buf[4] = 0x7e;  // flags byte after the u32 sender
  Reader r(buf);
  EXPECT_THROW(relwire::decode_ack_vec(r), DecodeError);
}

// -------------------------------------------------------- oversized frames --

TEST(RelWire, EncodeNackRefusesOversizedRangeList) {
  // The frame's range count is a u16; one entry past it must throw, never
  // silently truncate (a truncated frame disagrees with its own count).
  NackFrame f;
  f.origin = 1;
  f.ranges.resize(0x10000);
  Bytes buf;
  Writer w(buf);
  EXPECT_THROW(relwire::encode_nack(w, f), DecodeError);
}

TEST(RelWire, EncodeAckVecRefusesOversizedVector) {
  AckVecFrame f;
  f.sender = 1;
  f.cums.resize(0x10000);
  Bytes buf;
  Writer w(buf);
  EXPECT_THROW(relwire::encode_ack_vec(w, f), DecodeError);
}

// ----------------------------------------------------------- mixed version --

std::vector<ReliableLayer*> g_layers;

LayerFactory mixed_factory(std::size_t legacy_member, ReliableConfig base = {}) {
  return [legacy_member, base](NodeId, const std::vector<NodeId>& members) {
    ReliableConfig cfg = base;
    // The factory is called once per member in membership order; count calls
    // via g_layers so member `legacy_member` gets the legacy decoder.
    cfg.legacy_control = g_layers.size() == legacy_member;
    (void)members;
    auto layer = std::make_unique<ReliableLayer>(cfg);
    g_layers.push_back(layer.get());
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::move(layer));
    return layers;
  };
}

class MixedVersionTest : public ::testing::Test {
 protected:
  void SetUp() override { g_layers.clear(); }
};

TEST_F(MixedVersionTest, LegacyMemberDropsNewFramesWithoutCrashing) {
  // Member 0 runs the legacy decoder. New-format members lose frames from
  // member 0's stream so they emit range NACKs and delta ack vectors; the
  // legacy member must count those as decode drops, never misparse them.
  ReliableConfig base;
  base.ack_interval = 50 * kMillisecond;
  GroupHarness h(3, mixed_factory(/*legacy_member=*/0, base), testing::lossy_net(0.2),
                 /*seed=*/13);
  for (int i = 0; i < 15; ++i) h.group.send(0, to_bytes("x" + std::to_string(i)));
  for (int i = 0; i < 15; ++i) h.group.send(1, to_bytes("y" + std::to_string(i)));
  h.sim.run_for(20 * kSecond);
  // The legacy member converges fully: its own NACKs use the old format,
  // which new members still decode and serve.
  EXPECT_EQ(h.delivered_data(0).size(), 30u);
  // New members converge on each other's streams; holes in the *legacy
  // origin's* stream cannot heal (it drops their range NACKs — that is the
  // drop-don't-misparse contract, version negotiation is out of scope), so
  // they end at 15 + however many x-copies arrived first try.
  for (std::size_t p = 1; p < 3; ++p) {
    EXPECT_GE(h.delivered_data(p).size(), 25u) << "member " << p;
  }
  EXPECT_GT(g_layers[0]->stats().decode_drops, 0u);
  // New-format members never drop legacy frames.
  EXPECT_EQ(g_layers[1]->stats().decode_drops, 0u);
  EXPECT_EQ(g_layers[2]->stats().decode_drops, 0u);
}

TEST_F(MixedVersionTest, LegacyFramesWithHugeCountsAreDroppedNotCrash) {
  // The legacy kNack / kAckVec bodies carry a u32 entry count. A malformed
  // frame can claim ~4G entries while holding none; the decoder must check
  // the count against the bytes actually present BEFORE reserving storage,
  // or the "drop malformed frames" contract turns into a 64 GB allocation
  // attempt and an uncaught bad_alloc.
  GroupHarness h(3, mixed_factory(/*legacy_member=*/3));  // all new-format
  const NodeId attacker = h.net.add_node();
  Message evil_nack = Message::group({});
  evil_nack.push_header([](Writer& w) {
    w.u8(2);            // Type::kNack wire value
    w.u32(0);           // origin
    w.u32(0xFFFFFFFF);  // claimed entry count, no entries follow
  });
  h.net.multicast(attacker, h.group.members(), evil_nack.data);
  Message evil_ackvec = Message::group({});
  evil_ackvec.push_header([](Writer& w) {
    w.u8(5);            // Type::kAckVec wire value
    w.u32(7);           // claimed sender
    w.u32(0xFFFFFFFF);  // claimed entry count, no entries follow
  });
  h.net.multicast(attacker, h.group.members(), evil_ackvec.data);
  h.sim.run_for(kSecond);
  std::uint64_t drops = 0;
  for (ReliableLayer* l : g_layers) drops += l->stats().decode_drops;
  EXPECT_EQ(drops, 6u);  // two frames x three members, all counted drops
  // The group is unharmed and still converges.
  h.group.send(0, to_bytes("still-alive"));
  h.sim.run_for(kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 1u) << "member " << p;
  }
}

TEST_F(MixedVersionTest, AllLegacyGroupStillConverges) {
  // Sanity: the legacy encoding is still a complete protocol on its own.
  ReliableConfig base;
  base.legacy_control = true;
  GroupHarness h(3, mixed_factory(/*legacy_member=*/3, base), testing::lossy_net(0.2),
                 /*seed=*/17);
  for (int i = 0; i < 10; ++i) h.group.send(2, to_bytes("l" + std::to_string(i)));
  h.sim.run_for(15 * kSecond);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 10u) << "member " << p;
  }
  for (ReliableLayer* l : g_layers) EXPECT_EQ(l->stats().decode_drops, 0u);
}

}  // namespace
}  // namespace msw
