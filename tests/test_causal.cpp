// Causal order (extension): the property predicate, the vector-clock
// causal broadcast layer, the generator family, the meta-property
// classification (not Delayable), and the Reliability-style nuance that SP
// nevertheless preserves causal order operationally.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "proto/causal_layer.hpp"
#include "proto/fifo_layer.hpp"
#include "proto/reliable_layer.hpp"
#include "switch/hybrid.hpp"
#include "trace/generators.hpp"
#include "trace/meta.hpp"

namespace msw {
namespace {

using testing::GroupHarness;

// ----------------------------------------------------------- the predicate

TEST(CausalProperty, RelayChainOrdered) {
  // p0 sends m1; p1 delivers it, then sends m2: m1 -> m2. p2 must deliver
  // m1 first.
  const Trace good = {send_ev(0, 0), deliver_ev(1, 0, 0), send_ev(1, 0),
                      deliver_ev(2, 0, 0), deliver_ev(2, 1, 0)};
  EXPECT_TRUE(CausalOrderProperty().holds(good));
  const Trace bad = {send_ev(0, 0), deliver_ev(1, 0, 0), send_ev(1, 0),
                     deliver_ev(2, 1, 0), deliver_ev(2, 0, 0)};
  EXPECT_FALSE(CausalOrderProperty().holds(bad));
}

TEST(CausalProperty, ConcurrentMessagesUnconstrained) {
  // Neither sender saw the other's message: any delivery order is fine.
  const Trace tr = {send_ev(0, 0), send_ev(1, 0),
                    deliver_ev(2, 1, 0), deliver_ev(2, 0, 0),
                    deliver_ev(3, 0, 0), deliver_ev(3, 1, 0)};
  EXPECT_TRUE(CausalOrderProperty().holds(tr));
}

TEST(CausalProperty, TransitiveChainThroughUndeliveredMiddle) {
  // m1 -> m2 -> m3; process 3 delivers m1 and m3 but never m2: the path
  // still constrains it.
  const Trace bad = {
      send_ev(0, 0),                            // m1
      deliver_ev(1, 0, 0), send_ev(1, 0),       // m2 after delivering m1
      deliver_ev(2, 1, 0), send_ev(2, 0),       // m3 after delivering m2
      deliver_ev(3, 2, 0), deliver_ev(3, 0, 0)  // m3 before m1: violation
  };
  EXPECT_FALSE(CausalOrderProperty().holds(bad));
}

TEST(CausalProperty, OwnSendsArePredecessors) {
  // FIFO is a special case of causal: p0's second message after its first.
  const Trace bad = {send_ev(0, 0), send_ev(0, 1), deliver_ev(1, 0, 1), deliver_ev(1, 0, 0)};
  EXPECT_FALSE(CausalOrderProperty().holds(bad));
}

// ------------------------------------------------------------ the generator

class CausalGenSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CausalGenSeeds, FamilySatisfiesCausalAndReliability) {
  Rng rng(GetParam());
  GenOptions opts;
  opts.n_procs = 4;
  opts.n_msgs = 8;
  const Trace tr = gen_causal_trace(rng, opts);
  EXPECT_TRUE(well_formed(tr));
  EXPECT_TRUE(CausalOrderProperty().holds(tr));
  std::vector<std::uint32_t> group = {0, 1, 2, 3};
  EXPECT_TRUE(ReliabilityProperty(group).holds(tr));
}

TEST_P(CausalGenSeeds, FamilyIsNotTotallyOrderedInGeneral) {
  // Across several seeds, at least one trace must order concurrent
  // messages differently at different processes.
  Rng rng(GetParam());
  GenOptions opts;
  opts.n_procs = 4;
  opts.n_msgs = 10;
  bool any_unordered = false;
  for (int i = 0; i < 10; ++i) {
    opts.seq_base = static_cast<std::uint64_t>(i) * 100;
    if (!TotalOrderProperty().holds(gen_causal_trace(rng, opts))) any_unordered = true;
  }
  EXPECT_TRUE(any_unordered);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CausalGenSeeds, ::testing::Values(1, 2, 3, 5, 8));

// ------------------------------------------------------------ the layer

LayerFactory causal_stack() {
  return [](NodeId, const std::vector<NodeId>&) {
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::make_unique<CausalLayer>());
    layers.push_back(std::make_unique<ReliableLayer>());
    return layers;
  };
}

TEST(CausalLayer, DeliversEverythingCausally) {
  GroupHarness h(4, causal_stack());
  for (int k = 0; k < 12; ++k) {
    h.sim.scheduler().at(k * 7 * kMillisecond,
                         [&, k] { h.group.send(k % 4, to_bytes("c" + std::to_string(k))); });
  }
  h.sim.run_for(3 * kSecond);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 12u) << "member " << p;
  }
  EXPECT_TRUE(CausalOrderProperty().holds(h.group.trace()));
}

TEST(CausalLayer, BuffersRelayUntilDependencyArrives) {
  // The textbook scenario: m1 from 0 is delayed toward 2; 1 relays with
  // m2; member 2 must hold m2 until m1 shows up.
  GroupHarness h(3, causal_stack());
  h.net.set_link_up(h.group.node(0), h.group.node(2), false);
  h.group.send(0, to_bytes("m1"));
  h.sim.run_for(100 * kMillisecond);
  h.group.send(1, to_bytes("m2"));  // member 1 already delivered m1
  h.sim.run_for(200 * kMillisecond);
  EXPECT_TRUE(h.delivered_data(2).empty()) << "m2 delivered without its dependency";
  h.net.set_link_up(h.group.node(0), h.group.node(2), true);
  h.sim.run_for(3 * kSecond);
  const auto got = h.delivered_data(2);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].sender, h.group.node(0).v);
  EXPECT_EQ(got[1].sender, h.group.node(1).v);
  EXPECT_TRUE(CausalOrderProperty().holds(h.group.trace()));
}

TEST(CausalLayer, CausalUnderLoss) {
  GroupHarness h(4, causal_stack(), testing::lossy_net(0.15), /*seed=*/61);
  for (int k = 0; k < 16; ++k) {
    h.sim.scheduler().at(k * 9 * kMillisecond,
                         [&, k] { h.group.send(k % 4, to_bytes("l" + std::to_string(k))); });
  }
  h.sim.run_for(20 * kSecond);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 16u) << "member " << p;
  }
  EXPECT_TRUE(CausalOrderProperty().holds(h.group.trace()));
}

// ------------------------------------------- classification and the nuance

TEST(CausalMeta, NotDelayableWitness) {
  // Below: p1's send of m2 precedes its delivery of m1 (concurrent), and
  // p2 delivers m2 first — fine. Swapping the adjacent local pair makes
  // m1 causally precede m2, and p2's order becomes a violation.
  const Trace witness = {send_ev(0, 0),       send_ev(1, 0),       deliver_ev(1, 0, 0),
                         deliver_ev(2, 1, 0), deliver_ev(2, 0, 0), deliver_ev(1, 1, 0),
                         deliver_ev(0, 0, 0), deliver_ev(0, 1, 0)};
  ASSERT_TRUE(CausalOrderProperty().holds(witness));
  Rng rng(3);
  const std::vector<Trace> corpus = {witness};
  const auto res =
      check_preservation(CausalOrderProperty(), DelaySwapRelation(), corpus, rng, 64);
  EXPECT_EQ(res.verdict, MetaVerdict::kRefuted);
}

TEST(CausalMeta, FullRowOverCorpus) {
  Rng rng(404);
  const auto corpus = standard_corpus(rng, 10, 4);
  CausalOrderProperty causal;
  const auto relations = standard_relations();
  // Expected: Y Y Y n Y + composable Y.
  const char expected[5] = {'Y', 'Y', 'Y', 'n', 'Y'};
  for (std::size_t c = 0; c < relations.size(); ++c) {
    const auto res = check_preservation(causal, *relations[c], corpus, rng, 24);
    EXPECT_EQ(verdict_mark(res.verdict), expected[c])
        << "Causal Order / " << relations[c]->name();
  }
  const auto comp = check_composable(causal, corpus, rng);
  EXPECT_EQ(comp.verdict, MetaVerdict::kSupported);
}

TEST(CausalMeta, SpStillPreservesCausalOrderOperationally) {
  // Outside the six-meta-property class, yet preserved by the concrete SP
  // (like Reliability): the drain means no new-protocol message is
  // delivered anywhere before every old-protocol message — causality
  // cannot invert across the switch.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    GroupHarness h(4, make_switch_factory(causal_stack(), causal_stack()), testing::ideal_net(),
                   seed);
    Rng rng(seed * 31);
    for (int k = 0; k < 30; ++k) {
      const std::size_t sender = rng.index(4);
      h.sim.scheduler().at(static_cast<Time>(rng.below(600)) * kMillisecond, [&h, sender, k] {
        h.group.send(sender, to_bytes("x" + std::to_string(k)));
      });
    }
    h.sim.scheduler().at(200 * kMillisecond,
                         [&h] { switch_layer_of(h.group.stack(1)).request_switch(); });
    h.sim.run_for(15 * kSecond);
    EXPECT_EQ(switch_layer_of(h.group.stack(0)).epoch(), 1u) << "seed " << seed;
    EXPECT_TRUE(CausalOrderProperty().holds(h.group.trace())) << "seed " << seed;
  }
}

}  // namespace
}  // namespace msw
