// PriorityLayer (master-first delivery) and AmoebaLayer (sender blocked on
// its own outstanding message), checked against their Table 1 predicates.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "proto/amoeba_layer.hpp"
#include "proto/priority_layer.hpp"

namespace msw {
namespace {

using testing::GroupHarness;

std::vector<PriorityLayer*> g_priority;
std::vector<AmoebaLayer*> g_amoeba;

LayerFactory priority_stack() {
  return [](NodeId, const std::vector<NodeId>&) {
    auto l = std::make_unique<PriorityLayer>();
    g_priority.push_back(l.get());
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::move(l));
    return layers;
  };
}

LayerFactory amoeba_stack() {
  return [](NodeId, const std::vector<NodeId>&) {
    auto l = std::make_unique<AmoebaLayer>();
    g_amoeba.push_back(l.get());
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::move(l));
    return layers;
  };
}

class PropertyLayers : public ::testing::Test {
 protected:
  void SetUp() override {
    g_priority.clear();
    g_amoeba.clear();
  }
};

TEST_F(PropertyLayers, MasterDeliversFirstAlways) {
  GroupHarness h(4, priority_stack());
  for (int i = 0; i < 8; ++i) h.group.send(i % 4, to_bytes("p" + std::to_string(i)));
  h.sim.run_for(2 * kSecond);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 8u) << "member " << p;
  }
  EXPECT_TRUE(PrioritizedDeliveryProperty(h.group.node(0).v).holds(h.group.trace()));
}

TEST_F(PropertyLayers, NonMasterHoldsUntilRelease) {
  GroupHarness h(3, priority_stack());
  // Cut the master's outbound links so releases cannot propagate.
  h.net.set_link_up(h.group.node(0), h.group.node(1), false);
  h.net.set_link_up(h.group.node(0), h.group.node(2), false);
  h.group.send(1, to_bytes("held"));
  h.sim.run_for(kSecond);
  // The master delivered (it got the data from member 1 directly)...
  EXPECT_EQ(h.delivered_data(0).size(), 1u);
  // ...but no one else has, because the RELEASE is stuck.
  EXPECT_EQ(h.delivered_data(1).size(), 0u);
  EXPECT_EQ(h.delivered_data(2).size(), 0u);
  EXPECT_GT(g_priority[1]->held() + g_priority[2]->held(), 0u);
  // Heal; releases flow; property still holds.
  h.net.set_link_up(h.group.node(0), h.group.node(1), true);
  h.net.set_link_up(h.group.node(0), h.group.node(2), true);
  // The release was already multicast and lost; this layer relies on the
  // layer below for reliability. Re-sending data re-triggers a release.
  h.group.send(1, to_bytes("second"));
  h.sim.run_for(kSecond);
  EXPECT_TRUE(PrioritizedDeliveryProperty(h.group.node(0).v).holds(h.group.trace()));
}

TEST_F(PropertyLayers, ReleaseBeforeDataStillDelivers) {
  // If the release overtakes the data (possible with unordered transport),
  // the held message is delivered on arrival.
  GroupHarness h(2, priority_stack());
  h.group.send(0, to_bytes("x"));  // master's own message: releases flow out
  h.sim.run_for(kSecond);
  EXPECT_EQ(h.delivered_data(1).size(), 1u);
  EXPECT_TRUE(PrioritizedDeliveryProperty(h.group.node(0).v).holds(h.group.trace()));
}

TEST_F(PropertyLayers, AmoebaGatesSecondSend) {
  GroupHarness h(3, amoeba_stack());
  // Two back-to-back sends: the second must wait below the layer until the
  // first returns.
  h.group.send(0, to_bytes("first"));
  h.group.send(0, to_bytes("second"));
  EXPECT_EQ(g_amoeba[0]->queued(), 1u);
  EXPECT_FALSE(g_amoeba[0]->ready());
  h.sim.run_for(2 * kSecond);
  EXPECT_EQ(g_amoeba[0]->queued(), 0u);
  EXPECT_TRUE(g_amoeba[0]->ready());
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.delivered_data(p).size(), 2u);
  }
}

TEST_F(PropertyLayers, AmoebaCooperativeAppTraceSatisfiesProperty) {
  GroupHarness h(3, amoeba_stack());
  // A cooperative app: sends only when the layer reports ready, polling on
  // a timer — so Send events at the app boundary respect the property.
  int remaining = 6;
  std::function<void()> pump = [&] {
    if (remaining > 0 && g_amoeba[1]->ready()) {
      h.group.send(1, to_bytes("c" + std::to_string(remaining)));
      --remaining;
    }
    if (remaining > 0) h.sim.scheduler().after(2 * kMillisecond, pump);
  };
  h.sim.scheduler().after(0, pump);
  h.sim.run_for(5 * kSecond);
  EXPECT_EQ(remaining, 0);
  EXPECT_EQ(h.delivered_data(0).size(), 6u);
  EXPECT_TRUE(AmoebaProperty().holds(h.group.trace()));
}

TEST_F(PropertyLayers, AmoebaFreeSendingAppViolatesAtBoundary) {
  // The uncooperative app fires two sends back-to-back: the WIRE behaviour
  // is still gated, but the app-boundary trace (where Send events are
  // recorded at submission) shows the violation — exactly the distinction
  // between tr_below and tr_above in the paper's meta-property formalism.
  GroupHarness h(2, amoeba_stack());
  h.group.send(0, to_bytes("a"));
  h.group.send(0, to_bytes("b"));
  h.sim.run_for(kSecond);
  EXPECT_FALSE(AmoebaProperty().holds(h.group.trace()));
}

TEST_F(PropertyLayers, AmoebaQueueDrainsInOrder) {
  GroupHarness h(2, amoeba_stack());
  for (int i = 0; i < 5; ++i) h.group.send(0, to_bytes("q" + std::to_string(i)));
  EXPECT_EQ(g_amoeba[0]->queued(), 4u);
  h.sim.run_for(3 * kSecond);
  const auto got = h.delivered_data(1);
  ASSERT_EQ(got.size(), 5u);
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i].seq, i);
}

}  // namespace
}  // namespace msw
