// Million-message soak harness: the correctness plane at perf-plane scale.
//
// One run drives the hybrid switching stack with a continuous mixed
// workload (batched multicasts round-robin across senders), continuous
// membership churn (crash/restart pairs through the PR-2 fault plane, plus
// duplicate/reorder knobs and steady link loss), and periodic protocol
// switches — with the streaming monitors (src/monitor/) attached as the
// telemetry sink and the buffered TraceCapture OFF, so memory stays
// O(members + window) no matter how many messages flow.
//
// On the first violation the run stops and renders a PR-3 flight record
// (the last events per node) as the repro bundle. The result carries the
// peak monitor state-cell count against an O(members)-derived budget: the
// in-process form of the bounded-memory acceptance check.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/time.hpp"

namespace msw {

struct SoakConfig {
  /// Which protocol stack the soak drives.
  ///   kHybrid: the switching sequencer/token stack (periodic switches,
  ///            the hybrid monitor suite: total order + epochs + reliable).
  ///   kCausal: the vector-clock causal broadcast stack over the reliable
  ///            layer (no SwitchLayer, no epochs; causal + reliable
  ///            monitors).
  enum class Stack { kHybrid, kCausal };
  Stack stack = Stack::kHybrid;

  std::uint64_t seed = 1;
  std::size_t members = 12;
  /// Total application sends across the run. In wall-clock budget mode
  /// (budget_seconds > 0) this is the size of ONE round instead.
  std::uint64_t messages = 1'000'000;
  /// Messages per batched send call (the batched data plane is on).
  std::size_t batch = 8;
  /// Gap between send batches (round-robin over senders).
  Duration send_interval = 1 * kMillisecond;
  std::size_t payload_bytes = 32;

  /// Steady random loss on every link.
  double loss = 0.01;
  /// One crash/restart pair roughly this often (0 disables churn).
  Duration churn_interval = 10 * kSecond;
  Duration crash_downtime = 1 * kSecond;
  double dup_prob = 0.01;
  double reorder_prob = 0.02;

  /// A protocol switch is requested this often (0 disables switching).
  Duration switch_interval = 5 * kSecond;

  /// Monitor knobs (see MonitorOptions).
  std::uint64_t sample_period = 1;
  std::size_t window_cap = 1 << 15;
  Duration stall_window = 30 * kSecond;

  /// Flight-recorder ring capacity per node (rings stay armed so a
  /// violation can dump the tail of the run).
  std::size_t ring_capacity = 1024;

  /// Extra sim time allowed for drain/convergence after the last send.
  Duration drain_limit = 120 * kSecond;

  /// Wall-clock budget mode: when > 0, the soak runs complete rounds of
  /// `messages` sends (each a fresh simulation with a derived seed) until
  /// this many wall seconds have elapsed, then reports the aggregate. The
  /// nightly job uses this to fill its time slot regardless of how fast
  /// the host is; 0 keeps the fixed-message-count behavior.
  double budget_seconds = 0;

  /// Stats time-series: when stats_out is non-empty, one JSONL line (the
  /// stats_io format shared with the rt plane) is appended per
  /// stats_interval of sim time — the aggregate metrics registry plus the
  /// soak's own delivered/cells/violations scalars. The file is truncated
  /// once per run_soak call, so budget-mode rounds append to one series
  /// (t_us restarts per round; "soak.round" disambiguates).
  Duration stats_interval = 1 * kSecond;
  std::string stats_out;
};

struct SoakResult {
  bool ok = false;
  std::string reason;  // first violation (or harness failure) when !ok

  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t violations = 0;
  std::uint64_t switches_installed = 0;  // sp.epoch.install events
  std::size_t crashes = 0;
  Time sim_time = 0;
  /// Rounds completed (1 in fixed-count mode; >= 1 in budget mode).
  std::size_t rounds = 1;
  /// Wall seconds consumed (only populated in budget mode).
  double wall_seconds = 0;

  /// Monitor footprint: peak/final MonitorSet::state_cells() against the
  /// members-derived budget (no message-count term — that is the claim).
  std::size_t peak_cells = 0;
  std::size_t final_cells = 0;
  std::size_t cell_budget = 0;

  /// Peak resident set (VmHWM, kB) read from /proc/self/status; 0 when
  /// unavailable.
  std::size_t vm_hwm_kb = 0;

  /// Flight-recorder dump (JSONL), non-empty only on violation.
  std::string flight_record;

  /// One-line machine-grepable summary (also what soak_main prints).
  std::string summary_line;
};

/// The state-cell budget for a given configuration: linear in members and
/// window capacity, with NO term in the message count. The causal stack
/// adds the CausalMonitor's window term (W*(n+2), monitors.hpp).
std::size_t soak_cell_budget(std::size_t members, std::size_t window_cap, bool causal = false);

/// Run one soak. `progress` (optional) is called once per sim-second chunk
/// with the current sim time and total deliveries; return false to abort.
SoakResult run_soak(const SoakConfig& cfg,
                    const std::function<bool(Time, std::uint64_t)>& progress = {});

}  // namespace msw
