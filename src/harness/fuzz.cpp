#include "harness/fuzz.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "monitor/monitor_set.hpp"
#include "net/network.hpp"
#include "proto/reliable_layer.hpp"
#include "sim/simulation.hpp"
#include "stack/group.hpp"
#include "switch/hybrid.hpp"
#include "telemetry/export.hpp"
#include "trace/properties.hpp"
#include "trace/trace.hpp"

namespace msw {
namespace {

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr Time kActivityEnd = 1300 * kMillisecond;  // last send / switch request
constexpr Time kFaultHorizon = 1500 * kMillisecond; // every fault healed by here
constexpr Time kMaxSimTime = 120 * kSecond;

struct IterationPlan {
  std::size_t members = 0;
  NetConfig net;
  FaultSchedule schedule;
  std::vector<std::pair<Time, std::size_t>> sends;     // (when, sender)
  std::vector<std::pair<Time, std::size_t>> switches;  // (when, initiator)
  std::uint64_t initial_epoch = 0;
  bool inject_flush_bug = false;
  bool inject_selfnack_bug = false;
  bool reliable_base = false;
  bool adaptive_oracle = false;
  bool capture_telemetry = false;
  bool attach_monitors = false;
  std::size_t telemetry_ring = 4096;
  /// When non-empty, execute() also renders a flight record with this
  /// failure reason (the shrinker's final capture run).
  std::string flight_reason;
};

IterationPlan make_plan(std::uint64_t seed, const FuzzConfig& cfg) {
  Rng rng(mix64(seed ^ 0x5fa7f1ceULL));
  IterationPlan plan;
  plan.members = cfg.min_members + rng.index(cfg.max_members - cfg.min_members + 1);

  // Idealized-latency LAN with randomized jitter and loss: protocol logic
  // (not queueing) is what the fuzzer stresses, and zero CPU/serialization
  // cost keeps iterations fast.
  plan.net.base_latency = 1 * kMillisecond;
  plan.net.jitter = static_cast<Duration>(rng.below(2 * kMillisecond));
  plan.net.loopback_latency = 20;
  plan.net.cpu_send = 0;
  plan.net.cpu_recv = 0;
  plan.net.bandwidth_bps = 0;
  plan.net.wire_overhead_bytes = 0;
  plan.net.loss = rng.chance(0.5) ? rng.uniform() * 0.2 : 0.0;

  FaultGenOptions fopts;
  fopts.max_crashes = cfg.enable_crash ? 1 : 0;
  plan.schedule = generate_fault_schedule(rng, plan.members, kFaultHorizon, fopts);

  const std::size_t messages = 20 + rng.index(60);
  for (std::size_t k = 0; k < messages; ++k) {
    plan.sends.emplace_back(static_cast<Time>(rng.below(1200)) * kMillisecond,
                            rng.index(plan.members));
  }
  const std::size_t switches = 1 + rng.index(3);
  for (std::size_t s = 0; s < switches; ++s) {
    plan.switches.emplace_back(
        100 * kMillisecond + static_cast<Time>(rng.below(1200)) * kMillisecond,
        rng.index(plan.members));
  }
  plan.initial_epoch = rng.chance(0.5) ? 1 : 0;
  plan.inject_flush_bug = cfg.inject_flush_bug;
  plan.inject_selfnack_bug = cfg.inject_selfnack_bug;
  plan.reliable_base = cfg.reliable_base;
  plan.adaptive_oracle = cfg.adaptive_oracle;
  plan.capture_telemetry = cfg.capture_telemetry;
  plan.attach_monitors = cfg.attach_monitors;
  plan.telemetry_ring = cfg.telemetry_ring;
  return plan;
}

/// Everything the oracle needs from one run.
struct RunObservation {
  Trace trace;
  std::vector<std::vector<std::uint64_t>> epochs;  // per member, per delivery
  std::vector<std::uint64_t> final_epoch;
  std::vector<bool> switching;
  std::vector<std::size_t> buffered;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t switches = 0;
  // Streaming-monitor verdict (attach_monitors only).
  bool monitor_ok = true;
  std::string monitor_reason;
  std::size_t monitor_cells = 0;
  // Telemetry exports (capture_telemetry only). Rendered inside execute()
  // because the hub dies with the Simulation.
  std::string chrome_trace;
  std::string events_jsonl;
  std::string metrics_json;
  std::string metrics_summary;
  std::string flight_record;
};

RunObservation execute(std::uint64_t seed, const IterationPlan& plan) {
  Simulation sim(mix64(seed ^ 0xf00dULL));
  if (plan.capture_telemetry || !plan.flight_reason.empty()) {
    sim.enable_tracing(plan.telemetry_ring);
  }
  Network net(sim.scheduler(), sim.fork_rng(), plan.net);

  HybridConfig hybrid;
  hybrid.sp.initial_epoch = plan.initial_epoch;
  if (plan.inject_flush_bug) hybrid.sp.fault_skip_count_sender = 0;
  if (plan.inject_selfnack_bug) hybrid.sequencer.fault_skip_self_refill = true;
  if (plan.adaptive_oracle) {
    // Short iterations need a fast policy: sample quickly, aggregate over a
    // short window, and let the auto-dwell start (and floor) low enough
    // that the engine can actually decide within the activity window.
    PolicyConfig pcfg;
    pcfg.signals.sample_every = 50 * kMillisecond;
    pcfg.window = 500 * kMillisecond;
    pcfg.dwell.initial = 300 * kMillisecond;
    pcfg.dwell.floor = 200 * kMillisecond;
    hybrid.oracle = make_policy_oracle_factory(pcfg);
  }
  LayerFactory factory = make_hybrid_total_order_factory(hybrid);
  if (plan.reliable_base) {
    // Slot a ReliableLayer under the switching stack. Sequencer/token do
    // their own retransmission, so the base layer is exercised as extra
    // dedup + NACK machinery under the same loss — with a short eviction
    // horizon so GC eviction paths actually fire within an iteration.
    factory = [inner = std::move(factory)](NodeId id, const std::vector<NodeId>& members) {
      auto layers = inner(id, members);
      ReliableConfig rcfg;
      rcfg.eviction_horizon = 5 * kSecond;
      layers.push_back(std::make_unique<ReliableLayer>(rcfg));
      return layers;
    };
  }
  // The monitors consume the telemetry stream of the same run the oracle
  // will judge from the buffered trace. Constructed before the Group so
  // they see every event from the first send on; destroyed (detached) when
  // this frame unwinds, after the simulation stops running.
  std::unique_ptr<MonitorSet> monitors;
  if (plan.attach_monitors) {
    MonitorOptions mopts;
    mopts.members = plan.members;
    monitors = std::make_unique<MonitorSet>(sim.telemetry(), mopts);
    monitors->attach_hybrid_suite();
  }
  Group group(sim, net, plan.members, factory);

  RunObservation obs;
  obs.epochs.resize(plan.members);
  for (std::size_t i = 0; i < plan.members; ++i) {
    switch_layer_of(group.stack(i))
        .set_epoch_tap([&obs, i](std::uint64_t epoch) { obs.epochs[i].push_back(epoch); });
  }

  FaultPlane plane(net, sim.fork_rng(), plan.schedule);
  plane.install();
  group.start();

  for (std::size_t k = 0; k < plan.sends.size(); ++k) {
    const auto [at, sender] = plan.sends[k];
    sim.scheduler().at(at, [&group, sender, k] {
      group.send(sender, to_bytes("m" + std::to_string(k)));
    });
  }
  for (const auto& [at, initiator] : plan.switches) {
    sim.scheduler().at(at,
                       [&group, i = initiator] { switch_layer_of(group.stack(i)).request_switch(); });
  }

  // Run to quiescence: past the activity window, then in chunks until the
  // group has converged and the trace has been stable for two consecutive
  // chunks (retransmission RTOs are 10-100 ms, so 1 s chunks are ample).
  sim.run_until(kFaultHorizon + 500 * kMillisecond);
  std::size_t stable_chunks = 0;
  std::size_t last_trace_size = group.trace().size();
  while (sim.now() < kMaxSimTime && stable_chunks < 2) {
    sim.run_for(1 * kSecond);
    bool converged = true;
    const std::uint64_t epoch0 = switch_layer_of(group.stack(0)).epoch();
    for (std::size_t i = 0; i < plan.members; ++i) {
      SwitchLayer& sl = switch_layer_of(group.stack(i));
      if (sl.epoch() != epoch0 || sl.switching() || sl.buffered() != 0) converged = false;
    }
    if (converged && group.trace().size() == last_trace_size) {
      ++stable_chunks;
    } else {
      stable_chunks = 0;
    }
    last_trace_size = group.trace().size();
  }

  obs.trace = group.trace();
  for (std::size_t i = 0; i < plan.members; ++i) {
    SwitchLayer& sl = switch_layer_of(group.stack(i));
    obs.final_epoch.push_back(sl.epoch());
    obs.switching.push_back(sl.switching());
    obs.buffered.push_back(sl.buffered());
  }
  obs.sent = group.total_sent();
  obs.delivered = group.total_delivered();
  for (std::size_t i = 0; i < plan.members; ++i) {
    obs.switches =
        std::max(obs.switches, switch_layer_of(group.stack(i)).stats().switches_completed);
  }
  if (monitors) {
    monitors->finalize(sim.now());
    obs.monitor_ok = monitors->ok();
    obs.monitor_reason = monitors->first_reason();
    obs.monitor_cells = monitors->state_cells();
  }

  const TelemetryHub& hub = sim.telemetry();
  if (plan.capture_telemetry) {
    std::ostringstream chrome, jsonl, metrics;
    write_chrome_trace(hub, chrome);
    write_events_jsonl(hub, jsonl);
    write_metrics_json(hub, metrics);
    obs.chrome_trace = chrome.str();
    obs.events_jsonl = jsonl.str();
    obs.metrics_json = metrics.str();
    obs.metrics_summary = metrics_summary_line(hub);
  }
  if (!plan.flight_reason.empty()) {
    std::ostringstream flight;
    write_flight_record(hub, flight, plan.flight_reason);
    obs.flight_record = flight.str();
  }
  return obs;
}

std::string check_oracle(const IterationPlan& plan, const RunObservation& obs) {
  const std::size_t n = plan.members;
  std::ostringstream why;

  // Sends and per-member delivery sequences from the trace.
  std::vector<MsgId> sent_ids;
  std::vector<std::vector<MsgId>> delivered(n);
  for (const auto& e : obs.trace) {
    if (e.process >= n) return "trace references an unknown process";
    if (e.is_send()) {
      sent_ids.push_back(e.msg);
    } else {
      delivered[e.process].push_back(e.msg);
    }
  }

  // No spurious deliveries; at-most-once per process.
  {
    std::set<MsgId> sent_set(sent_ids.begin(), sent_ids.end());
    for (std::size_t i = 0; i < n; ++i) {
      std::set<MsgId> seen;
      for (const MsgId& id : delivered[i]) {
        if (!sent_set.count(id)) {
          why << "spurious delivery of " << to_string(id) << " at member " << i;
          return why.str();
        }
        if (!seen.insert(id).second) {
          why << "duplicate delivery of " << to_string(id) << " at member " << i;
          return why.str();
        }
      }
    }
  }

  // SP old-before-new: per-member delivery epochs are non-decreasing, and
  // every message is delivered under one epoch globally.
  std::map<MsgId, std::uint64_t> epoch_of;
  for (std::size_t i = 0; i < n; ++i) {
    if (obs.epochs[i].size() != delivered[i].size()) {
      why << "epoch tap recorded " << obs.epochs[i].size() << " deliveries but the trace has "
          << delivered[i].size() << " at member " << i;
      return why.str();
    }
    for (std::size_t k = 0; k < delivered[i].size(); ++k) {
      const std::uint64_t e = obs.epochs[i][k];
      if (k > 0 && e < obs.epochs[i][k - 1]) {
        // A drop by more than half the u64 range is the counter wrapping
        // (max -> 0), which is monotone in epoch space; anything else is a
        // genuine old-message-after-new delivery.
        const bool wrapped = obs.epochs[i][k - 1] - e > (~std::uint64_t{0} >> 1);
        if (!wrapped) {
          why << "old-before-new violated at member " << i << ": epoch " << obs.epochs[i][k - 1]
              << " then " << e << " (delivery " << k << ")";
          return why.str();
        }
      }
      const auto [it, fresh] = epoch_of.emplace(delivered[i][k], e);
      if (!fresh && it->second != e) {
        why << "message " << to_string(delivered[i][k]) << " delivered in epoch " << it->second
            << " at one member but " << e << " at member " << i;
        return why.str();
      }
    }
  }

  // Convergence: one epoch everywhere, no switch in flight, buffers empty.
  for (std::size_t i = 0; i < n; ++i) {
    if (obs.final_epoch[i] != obs.final_epoch[0]) {
      why << "member " << i << " ended on epoch " << obs.final_epoch[i] << " but member 0 on "
          << obs.final_epoch[0];
      return why.str();
    }
    if (obs.switching[i]) {
      why << "member " << i << " still mid-switch at quiescence";
      return why.str();
    }
    if (obs.buffered[i] != 0) {
      why << "member " << i << " ended with " << obs.buffered[i] << " buffered deliveries";
      return why.str();
    }
  }

  // Agreement (both sub-protocols are total order): identical delivery
  // sequences everywhere, covering every send.
  for (std::size_t i = 0; i < n; ++i) {
    if (delivered[i] != delivered[0]) {
      why << "member " << i << " delivery sequence diverged from member 0";
      return why.str();
    }
  }
  if (delivered[0].size() != sent_ids.size()) {
    why << "reliability violated: " << sent_ids.size() << " sends but " << delivered[0].size()
        << " deliveries per member";
    return why.str();
  }

  // The Table 1 properties the hybrid stack claims.
  if (!TotalOrderProperty().holds(obs.trace)) return "Total Order property violated";
  if (!NoReplayProperty().holds(obs.trace)) return "No Replay property violated";
  {
    std::vector<std::uint32_t> ids;
    for (std::uint32_t i = 0; i < n; ++i) ids.push_back(i);
    if (!ReliabilityProperty(ids).holds(obs.trace)) return "Reliability property violated";
  }
  return {};
}

std::string make_repro(std::uint64_t seed, const FuzzConfig& cfg, const FaultSchedule& sched) {
  std::ostringstream os;
  os << "fuzz_switch --seed " << seed;
  if (cfg.enable_crash) os << " --crash";
  if (cfg.inject_flush_bug) os << " --inject-flush-bug";
  if (cfg.inject_selfnack_bug) os << " --inject-selfnack-bug";
  if (cfg.reliable_base) os << " --reliable-base";
  if (cfg.adaptive_oracle) os << " --adaptive-oracle";
  // Member bounds feed the seed-derived plan, so non-default values are
  // part of the reproducer.
  const FuzzConfig defaults;
  if (cfg.min_members != defaults.min_members) os << " --members-min " << cfg.min_members;
  if (cfg.max_members != defaults.max_members) os << " --members-max " << cfg.max_members;
  os << " --schedule '" << sched.to_string() << "'";
  return os.str();
}

/// Group schedule events into shrink atoms: an outage and its recovery form
/// one atom (removing half of the pair would make the reduced schedule fail
/// for the trivial reason that the network never heals).
std::vector<std::vector<std::size_t>> shrink_atoms(const FaultSchedule& s) {
  std::vector<std::vector<std::size_t>> atoms;
  std::vector<bool> used(s.events.size(), false);
  const auto recovery_of = [](FaultEvent::Kind k) {
    switch (k) {
      case FaultEvent::Kind::kLinkDown: return FaultEvent::Kind::kLinkUp;
      case FaultEvent::Kind::kPartition: return FaultEvent::Kind::kHeal;
      case FaultEvent::Kind::kCrash: return FaultEvent::Kind::kRestart;
      default: return k;
    }
  };
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    if (used[i]) continue;
    used[i] = true;
    std::vector<std::size_t> atom{i};
    const FaultEvent& e = s.events[i];
    const FaultEvent::Kind rec = recovery_of(e.kind);
    if (rec != e.kind) {
      for (std::size_t j = i + 1; j < s.events.size(); ++j) {
        if (used[j]) continue;
        const FaultEvent& f = s.events[j];
        if (f.kind == rec && f.a == e.a && f.b == e.b && f.mask == e.mask) {
          used[j] = true;
          atom.push_back(j);
          break;
        }
      }
    }
    atoms.push_back(std::move(atom));
  }
  return atoms;
}

FaultSchedule without_atoms(const FaultSchedule& s,
                            const std::vector<std::vector<std::size_t>>& atoms,
                            const std::vector<bool>& keep) {
  FaultSchedule out = s;
  out.events.clear();
  std::vector<bool> keep_event(s.events.size(), false);
  for (std::size_t a = 0; a < atoms.size(); ++a) {
    if (!keep[a]) continue;
    for (std::size_t idx : atoms[a]) keep_event[idx] = true;
  }
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    if (keep_event[i]) out.events.push_back(s.events[i]);
  }
  return out;
}

}  // namespace

FuzzIteration run_fuzz_iteration(std::uint64_t seed, const FuzzConfig& cfg,
                                 const FaultSchedule* schedule_override) {
  IterationPlan plan = make_plan(seed, cfg);
  if (schedule_override) plan.schedule = *schedule_override;

  FuzzIteration it;
  it.seed = seed;
  it.members = plan.members;
  it.schedule = plan.schedule;

  RunObservation obs = execute(seed, plan);
  it.digest = trace_digest(obs.trace);
  it.sent = obs.sent;
  it.delivered = obs.delivered;
  it.switches = obs.switches;
  it.reason = check_oracle(plan, obs);
  it.ok = it.reason.empty();
  it.monitor_ok = obs.monitor_ok;
  it.monitor_reason = std::move(obs.monitor_reason);
  it.monitor_cells = obs.monitor_cells;
  it.chrome_trace = std::move(obs.chrome_trace);
  it.events_jsonl = std::move(obs.events_jsonl);
  it.metrics_json = std::move(obs.metrics_json);
  it.metrics_summary = std::move(obs.metrics_summary);
  std::ostringstream st;
  for (std::size_t i = 0; i < plan.members; ++i) {
    st << "  member " << i << ": epoch=" << obs.final_epoch[i]
       << " switching=" << (obs.switching[i] ? 1 : 0) << " buffered=" << obs.buffered[i]
       << " delivered=" << obs.epochs[i].size() << "\n";
  }
  it.state = st.str();
  return it;
}

FuzzFailure shrink_failure(const FuzzIteration& failed, const FuzzConfig& cfg) {
  FuzzFailure out;
  out.seed = failed.seed;
  out.reason = failed.reason;
  out.schedule = failed.schedule;

  std::size_t budget = cfg.shrink_budget;
  const auto still_fails = [&](const FaultSchedule& candidate) {
    if (budget == 0) return false;
    --budget;
    return !run_fuzz_iteration(failed.seed, cfg, &candidate).ok;
  };

  // Zero the continuous knobs first — each is one unit of weight.
  for (const bool zero_dup : {true, false}) {
    FaultSchedule candidate = out.schedule;
    double& knob = zero_dup ? candidate.dup_prob : candidate.reorder_prob;
    if (knob == 0.0) continue;
    knob = 0.0;
    if (still_fails(candidate)) out.schedule = candidate;
  }

  // Delta-debug over atoms: drop aligned chunks at halving granularity,
  // restarting whenever a reduction sticks.
  bool reduced = true;
  while (reduced) {
    reduced = false;
    const auto atoms = shrink_atoms(out.schedule);
    if (atoms.empty()) break;
    for (std::size_t chunk = atoms.size(); chunk >= 1 && !reduced; chunk = chunk / 2) {
      for (std::size_t begin = 0; begin < atoms.size(); begin += chunk) {
        std::vector<bool> keep(atoms.size(), true);
        for (std::size_t a = begin; a < std::min(begin + chunk, atoms.size()); ++a) {
          keep[a] = false;
        }
        const FaultSchedule candidate = without_atoms(out.schedule, atoms, keep);
        if (still_fails(candidate)) {
          out.schedule = candidate;
          reduced = true;
          break;
        }
      }
      if (chunk == 1) break;
    }
  }

  out.weight = out.schedule.weight();
  out.repro = make_repro(failed.seed, cfg, out.schedule);

  // Flight recorder: one more run of the shrunk schedule with tracing
  // armed, so the last events per node land next to the repro line. The
  // extra run is outside the shrink budget — failures are rare and the
  // dump is the main post-mortem artifact.
  {
    IterationPlan plan = make_plan(failed.seed, cfg);
    plan.schedule = out.schedule;
    plan.flight_reason = out.reason.empty() ? "oracle failure" : out.reason;
    out.flight_record = execute(failed.seed, plan).flight_record;
  }
  return out;
}

FuzzSummary run_fuzz(std::uint64_t base_seed, std::size_t iters, const FuzzConfig& cfg,
                     const std::function<bool(const FuzzIteration&)>& on_iteration) {
  FuzzSummary summary;
  summary.corpus_digest = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < iters; ++i) {
    FuzzIteration it = run_fuzz_iteration(base_seed + i, cfg);
    summary.corpus_digest = mix64(summary.corpus_digest ^ it.digest);
    ++summary.iterations;
    if (!it.ok) summary.failures.push_back(shrink_failure(it, cfg));
    if (on_iteration && !on_iteration(it)) break;
  }
  return summary;
}

}  // namespace msw
