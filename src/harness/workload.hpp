// Workload driver for experiments and integration tests.
//
// Reproduces the shape of the paper's section-7 experiment: a subgroup of
// k active senders each multicasting at a fixed rate; latency is measured
// from application Send to each application Deliver, over the steady-state
// window (after warmup, before the tail drain).
#pragma once

#include <cstdint>

#include "net/stats.hpp"
#include "sim/simulation.hpp"
#include "stack/group.hpp"

namespace msw {

struct WorkloadConfig {
  /// Members 0..senders-1 multicast; the rest only receive.
  std::size_t senders = 1;
  /// Messages per second per active sender (paper: 50).
  double rate_per_sender = 50.0;
  /// Total send phase length.
  Duration duration = 5 * kSecond;
  /// Deliveries of messages sent before this are excluded from stats.
  Duration warmup = 500 * kMillisecond;
  /// Extra simulated time after the send phase to drain in-flight traffic.
  Duration drain = 2 * kSecond;
  /// Application payload size in bytes.
  std::size_t body_size = 64;
  /// Randomize each sender's phase so senders do not fire in lockstep.
  bool jitter_phase = true;
  /// Poisson arrivals (exponential inter-send gaps at the same mean rate)
  /// instead of a fixed period. Application traffic is bursty; the paper's
  /// queueing behaviour at the sequencer assumes it.
  bool poisson = false;
};

struct WorkloadResult {
  /// Send-to-deliver latency over all (message, receiver) pairs in the
  /// steady-state window, in milliseconds.
  Summary latency_ms;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;  // across all members
  /// Messages sent in-window but never delivered somewhere by the end of
  /// the drain (0 for a correct reliable protocol).
  std::uint64_t missing_deliveries = 0;
};

/// Drives the workload on a started Group and returns latency statistics.
/// The group's TraceCapture is cleared first.
WorkloadResult run_workload(Simulation& sim, Group& group, const WorkloadConfig& cfg);

/// Compute per-delivery latencies from a captured trace (send time of the
/// message to each deliver time), restricted to messages sent within
/// [window_begin, window_end]. Also reports deliveries-per-message gaps
/// against `expected_receivers`.
struct TraceLatency {
  Summary latency_ms;
  std::uint64_t missing_deliveries = 0;
};
TraceLatency trace_latency(const Trace& tr, Time window_begin, Time window_end,
                           std::size_t expected_receivers);

}  // namespace msw
