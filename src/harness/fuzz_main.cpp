// fuzz_switch: standalone randomized switch fuzzer (see harness/fuzz.hpp).
//
//   fuzz_switch --seed 1 --iters 500            # deterministic campaign
//   fuzz_switch --seed 42 --schedule '...'      # replay one reproducer
//   fuzz_switch --seed 1 --iters 40 --inject-flush-bug   # oracle self-test
//
// Exit code 0 iff every iteration passed the oracle. Output is stable for
// a given seed (timing lines go to stderr), so the stdout of two runs with
// the same arguments must be byte-identical.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "harness/fuzz.hpp"
#include "util/log.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--iters N] [--crash] [--inject-flush-bug]\n"
               "          [--time-budget SECONDS] [--schedule STR] [--verbose]\n"
               "  --seed N            base seed (default 1)\n"
               "  --iters N           iterations (default 100); ignored with --schedule\n"
               "  --crash             include node crash/restart faults\n"
               "  --reliable-base     compose a ReliableLayer under the switching stack\n"
               "  --members-min N     smallest generated group (default 2)\n"
               "  --members-max N     largest generated group (default 8)\n"
               "  --inject-flush-bug  enable the deliberate SP drain-count bug; the oracle\n"
               "                      must then report failures (exit code flips: 0 iff caught)\n"
               "  --inject-selfnack-bug  enable the deliberate sequencer self-refill bug\n"
               "                      (reliability hole after a sequencer crash); exit code\n"
               "                      flips like --inject-flush-bug\n"
               "  --adaptive-oracle   drive the hybrid with the telemetry-driven PolicyOracle\n"
               "                      (switches come from the policy engine under the\n"
               "                      iteration's randomized load, loss, and churn)\n"
               "  --monitors          attach the streaming property monitors alongside the\n"
               "                      buffered oracle; exit 1 if their verdicts ever disagree\n"
               "  --time-budget S     stop early after S wall seconds (breaks digest\n"
               "                      comparability between runs that cut off differently)\n"
               "  --schedule STR      run a single iteration with this exact fault schedule\n"
               "  --trace-out F       write a Chrome trace_event JSON of the first iteration\n"
               "                      to F (open in Perfetto); forces --iters 1 unless\n"
               "                      --schedule is given\n"
               "  --metrics-out F     write the metrics JSON of the first iteration to F\n"
               "  --dump-dir D        directory for flight-recorder dumps on failure\n"
               "                      (flight_seed<N>.jsonl next to the repro; default .)\n"
               "  --verbose           one line per iteration instead of failures only;\n"
               "                      with --schedule, also dump per-member end state\n"
               "  --log-level L       trace|debug|info|warn (stderr; default warn)\n",
               argv0);
  std::exit(2);
}

bool write_file(const std::string& path, const std::string& body) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  os << body;
  return static_cast<bool>(os);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  std::size_t iters = 100;
  double time_budget = 0;
  std::string schedule_str;
  std::string trace_out;
  std::string metrics_out;
  std::string dump_dir = ".";
  bool verbose = false;
  msw::FuzzConfig cfg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--iters") {
      iters = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--crash") {
      cfg.enable_crash = true;
    } else if (arg == "--reliable-base") {
      cfg.reliable_base = true;
    } else if (arg == "--members-min") {
      cfg.min_members = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--members-max") {
      cfg.max_members = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--inject-flush-bug") {
      cfg.inject_flush_bug = true;
    } else if (arg == "--inject-selfnack-bug") {
      cfg.inject_selfnack_bug = true;
    } else if (arg == "--adaptive-oracle") {
      cfg.adaptive_oracle = true;
    } else if (arg == "--monitors") {
      cfg.attach_monitors = true;
    } else if (arg == "--time-budget") {
      time_budget = std::strtod(value(), nullptr);
    } else if (arg == "--schedule") {
      schedule_str = value();
    } else if (arg == "--trace-out") {
      trace_out = value();
    } else if (arg == "--metrics-out") {
      metrics_out = value();
    } else if (arg == "--dump-dir") {
      dump_dir = value();
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--log-level") {
      const std::string lvl = value();
      if (lvl == "trace") {
        msw::Log::set_level(msw::LogLevel::kTrace);
      } else if (lvl == "debug") {
        msw::Log::set_level(msw::LogLevel::kDebug);
      } else if (lvl == "info") {
        msw::Log::set_level(msw::LogLevel::kInfo);
      } else if (lvl == "warn") {
        msw::Log::set_level(msw::LogLevel::kWarn);
      } else {
        usage(argv[0]);
      }
    } else {
      usage(argv[0]);
    }
  }

  if (cfg.min_members < 2 || cfg.max_members < cfg.min_members) {
    std::fprintf(stderr, "need 2 <= --members-min <= --members-max\n");
    return 2;
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };

  if (!trace_out.empty() || !metrics_out.empty()) {
    cfg.capture_telemetry = true;
    if (schedule_str.empty() && iters != 1) {
      std::fprintf(stderr, "note: --trace-out/--metrics-out capture one iteration; forcing --iters 1\n");
      iters = 1;
    }
  }
  const auto write_exports = [&](const msw::FuzzIteration& it) {
    if (!trace_out.empty()) {
      if (!write_file(trace_out, it.chrome_trace)) {
        std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
        std::exit(2);
      }
      std::fprintf(stderr, "trace written to %s\n", trace_out.c_str());
    }
    if (!metrics_out.empty()) {
      if (!write_file(metrics_out, it.metrics_json)) {
        std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
        std::exit(2);
      }
      std::fprintf(stderr, "metrics written to %s (%s)\n", metrics_out.c_str(),
                   it.metrics_summary.c_str());
    }
  };

  if (!schedule_str.empty()) {
    // Replay mode: one iteration under an explicit schedule.
    const auto schedule = msw::FaultSchedule::parse(schedule_str);
    if (!schedule) {
      std::fprintf(stderr, "malformed --schedule string\n");
      return 2;
    }
    const msw::FuzzIteration it = msw::run_fuzz_iteration(seed, cfg, &*schedule);
    std::printf("seed=%llu members=%zu sent=%llu delivered=%llu digest=%016llx %s\n",
                static_cast<unsigned long long>(it.seed), it.members,
                static_cast<unsigned long long>(it.sent),
                static_cast<unsigned long long>(it.delivered),
                static_cast<unsigned long long>(it.digest),
                it.ok ? "OK" : ("FAIL: " + it.reason).c_str());
    if (cfg.attach_monitors) {
      std::printf("monitors: %s cells=%zu\n",
                  it.monitor_ok ? "OK" : ("FAIL: " + it.monitor_reason).c_str(),
                  it.monitor_cells);
      if (it.monitor_ok != it.ok) {
        std::printf("PARITY MISMATCH: oracle and monitors disagree\n");
        return 1;
      }
    }
    if (verbose) std::fputs(it.state.c_str(), stdout);
    write_exports(it);
    return it.ok ? 0 : 1;
  }

  std::size_t done = 0;
  std::size_t parity_mismatches = 0;
  const msw::FuzzSummary summary =
      msw::run_fuzz(seed, iters, cfg, [&](const msw::FuzzIteration& it) {
        ++done;
        if (done == 1 && cfg.capture_telemetry) write_exports(it);
        if (cfg.attach_monitors && it.monitor_ok != it.ok) {
          ++parity_mismatches;
          std::printf("PARITY MISMATCH seed=%llu oracle=%s monitors=%s\n",
                      static_cast<unsigned long long>(it.seed),
                      it.ok ? "ok" : it.reason.c_str(),
                      it.monitor_ok ? "ok" : it.monitor_reason.c_str());
        }
        if (verbose) {
          std::printf("iter seed=%llu members=%zu sent=%llu digest=%016llx %s\n",
                      static_cast<unsigned long long>(it.seed), it.members,
                      static_cast<unsigned long long>(it.sent),
                      static_cast<unsigned long long>(it.digest),
                      it.ok ? "ok" : ("FAIL: " + it.reason).c_str());
        }
        if (time_budget > 0 && elapsed() > time_budget && done < iters) {
          std::fprintf(stderr, "time budget exhausted after %zu/%zu iterations\n", done, iters);
          return false;
        }
        return true;
      });

  for (const msw::FuzzFailure& f : summary.failures) {
    std::printf("FAILURE seed=%llu weight=%zu reason=%s\n",
                static_cast<unsigned long long>(f.seed), f.weight, f.reason.c_str());
    std::printf("  repro: %s\n", f.repro.c_str());
    if (!f.flight_record.empty()) {
      const std::string path =
          dump_dir + "/flight_seed" + std::to_string(f.seed) + ".jsonl";
      if (write_file(path, f.flight_record)) {
        std::printf("  flight: %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "cannot write flight record %s\n", path.c_str());
      }
    }
  }
  std::printf("fuzz_switch: %zu iterations, %zu failures, corpus_digest=%016llx\n",
              summary.iterations, summary.failures.size(),
              static_cast<unsigned long long>(summary.corpus_digest));
  std::fprintf(stderr, "elapsed %.1f s (%.1f iters/s)\n", elapsed(),
               summary.iterations / std::max(elapsed(), 1e-9));

  if (cfg.attach_monitors) {
    std::printf("monitor parity: %zu/%zu iterations agree\n", done - parity_mismatches, done);
  }
  if (cfg.inject_flush_bug || cfg.inject_selfnack_bug) {
    // Oracle self-test: success means the deliberate bug WAS caught.
    const bool caught = !summary.failures.empty();
    std::printf("oracle self-test: injected %s bug %s\n",
                cfg.inject_flush_bug ? "FLUSH-count" : "sequencer self-refill",
                caught ? "caught" : "NOT caught");
    return caught && parity_mismatches == 0 ? 0 : 1;
  }
  return summary.failures.empty() && parity_mismatches == 0 ? 0 : 1;
}
