#include "harness/soak.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <chrono>

#include "monitor/monitor_set.hpp"
#include "net/fault.hpp"
#include "net/network.hpp"
#include "proto/causal_layer.hpp"
#include "proto/reliable_layer.hpp"
#include "sim/simulation.hpp"
#include "stack/group.hpp"
#include "switch/hybrid.hpp"
#include "switch/switch_layer.hpp"
#include "telemetry/export.hpp"
#include "telemetry/stats_io.hpp"

namespace msw {
namespace {

/// Peak resident set from /proc/self/status (kB); 0 off-Linux.
std::size_t read_vm_hwm_kb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<std::size_t>(std::strtoull(line.c_str() + 6, nullptr, 10));
    }
  }
  return 0;
}

/// Crash/restart churn: one pair per interval, node drawn from rng, never
/// two nodes down at once (the downtime fits inside the interval).
FaultSchedule make_churn_schedule(Rng& rng, const SoakConfig& cfg, Time activity_end,
                                  std::size_t* crashes) {
  FaultSchedule s;
  s.dup_prob = cfg.dup_prob;
  s.reorder_prob = cfg.reorder_prob;
  if (cfg.churn_interval == 0) return s;
  for (Time t = cfg.churn_interval; t + cfg.crash_downtime < activity_end;
       t += cfg.churn_interval) {
    FaultEvent crash;
    crash.kind = FaultEvent::Kind::kCrash;
    crash.at = t;
    crash.a = static_cast<std::uint32_t>(rng.index(cfg.members));
    FaultEvent restart = crash;
    restart.kind = FaultEvent::Kind::kRestart;
    restart.at = t + cfg.crash_downtime;
    s.events.push_back(crash);
    s.events.push_back(restart);
    ++*crashes;
  }
  return s;
}

/// The causal arm's stack: vector-clock causal broadcast over the
/// NACK-based reliable layer (tests/test_causal.cpp runs the same shape).
LayerFactory make_causal_factory() {
  return [](NodeId, const std::vector<NodeId>&) {
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::make_unique<CausalLayer>());
    layers.push_back(std::make_unique<ReliableLayer>());
    return layers;
  };
}

}  // namespace

std::size_t soak_cell_budget(std::size_t members, std::size_t window_cap, bool causal) {
  // Sum of the per-monitor bounds (monitors.hpp) with slack: MonitorSet n,
  // TotalOrder n + 2W, Epoch 3n, Reliable n + n^2 * (2 + runs) where the
  // interval runs per pair get 16 cells of fragmentation headroom. The
  // budget deliberately has NO term in the message count. The causal
  // stack swaps TotalOrder+Epoch for CausalMonitor, whose in-flight window
  // holds up to W entries of a vector clock each: W*(n+2) more cells.
  const std::size_t base = 6 * members + 18 * members * members + 2 * window_cap + 64;
  return causal ? base + window_cap * (members + 2) : base;
}

namespace {

SoakResult run_soak_once(const SoakConfig& cfg,
                         const std::function<bool(Time, std::uint64_t)>& progress,
                         std::ostream* stats_os, std::size_t round) {
  const bool causal = cfg.stack == SoakConfig::Stack::kCausal;
  SoakResult res;
  res.cell_budget = soak_cell_budget(cfg.members, cfg.window_cap, causal);

  Simulation sim(cfg.seed);
  sim.enable_tracing(cfg.ring_capacity);  // flight-recorder tail per node

  NetConfig nc;
  nc.base_latency = 1 * kMillisecond;
  nc.jitter = 500 * kMicrosecond;
  nc.loopback_latency = 20 * kMicrosecond;
  nc.cpu_send = 0;
  nc.cpu_recv = 0;
  nc.bandwidth_bps = 0;
  nc.wire_overhead_bytes = 0;
  nc.loss = cfg.loss;
  Network net(sim.scheduler(), sim.fork_rng(), nc);

  MonitorOptions mopts;
  mopts.members = cfg.members;
  mopts.sample_period = cfg.sample_period;
  mopts.window_cap = cfg.window_cap;
  mopts.stall_window = cfg.stall_window;
  mopts.check_epoch_consistency = !causal;  // no SwitchLayer, no SP epochs
  MonitorSet monitors(sim.telemetry(), mopts);
  if (causal) {
    monitors.add_causal();
    monitors.add_reliable();
  } else {
    monitors.attach_hybrid_suite();
  }

  // Buffered trace capture OFF: the monitors are the correctness plane.
  Group group(sim, net, cfg.members,
              causal ? make_causal_factory() : make_hybrid_total_order_factory(),
              /*capture_trace=*/false);
  Group* gp = &group;
  group.set_batching(true);

  const std::uint64_t total_batches =
      (cfg.messages + cfg.batch - 1) / std::max<std::size_t>(cfg.batch, 1);
  const Time send_start = 100 * kMillisecond;
  const Time activity_end = send_start + static_cast<Time>(total_batches) * cfg.send_interval;

  Rng churn_rng = sim.fork_rng();
  const FaultSchedule schedule = make_churn_schedule(churn_rng, cfg, activity_end, &res.crashes);
  FaultPlane plane(net, sim.fork_rng(), schedule);
  plane.install();
  group.start();

  // Self-rescheduling send pump (pre-scheduling 10^6+ closures would make
  // the scheduler itself the memory hog).
  struct Pump {
    Group* group;
    Scheduler* sched;
    Duration interval;
    std::size_t batch;
    std::uint64_t remaining;
    std::size_t next_sender = 0;
    Bytes payload;

    void tick() {
      const std::size_t k =
          static_cast<std::size_t>(std::min<std::uint64_t>(batch, remaining));
      std::vector<Bytes> bodies(k, payload);
      group->send_batch(next_sender, std::move(bodies));
      remaining -= k;
      next_sender = (next_sender + 1) % group->size();
      if (remaining > 0) sched->at(sched->now() + interval, [this] { tick(); });
    }
  };
  Pump pump{gp,        &sim.scheduler(),          cfg.send_interval,
            cfg.batch, cfg.messages,              0,
            Bytes(cfg.payload_bytes, Byte{0x5a})};
  sim.scheduler().at(send_start, [&pump] { pump.tick(); });

  if (cfg.switch_interval != 0 && !causal) {
    std::size_t initiator = 0;
    for (Time t = send_start + cfg.switch_interval; t < activity_end;
         t += cfg.switch_interval) {
      sim.scheduler().at(t, [gp, i = initiator] { switch_layer_of(gp->stack(i)).request_switch(); });
      initiator = (initiator + 1) % cfg.members;
    }
  }

  // Stats time-series: one stats_io JSONL line per stats_interval of sim
  // time, from the aggregate registry (counters; the aggregate view skips
  // gauges/histograms) plus the soak's own footprint scalars.
  Time next_stats = cfg.stats_interval;
  const auto emit_stats = [&] {
    if (stats_os == nullptr) return;
    StatsSnapshot snap = snapshot_from_registry("soak", static_cast<std::uint64_t>(sim.now()),
                                                sim.telemetry().aggregate_metrics());
    snap.scalars.push_back({"soak.round", static_cast<std::uint64_t>(round)});
    snap.scalars.push_back({"soak.delivered", group.total_delivered()});
    snap.scalars.push_back({"soak.monitor.cells",
                            static_cast<std::uint64_t>(monitors.state_cells())});
    snap.scalars.push_back({"soak.monitor.violations", monitors.violations().total()});
    write_stats_line(*stats_os, snap);
  };

  // Main loop: 1 s sim chunks; after each, scan for stalls, track the
  // monitor footprint, and stop on the first violation.
  bool aborted = false;
  const auto chunk = [&]() -> bool {
    sim.run_for(1 * kSecond);
    monitors.check_stalls(sim.now());
    res.peak_cells = std::max(res.peak_cells, monitors.state_cells());
    if (stats_os != nullptr && cfg.stats_interval > 0 && sim.now() >= next_stats) {
      next_stats = sim.now() + cfg.stats_interval;
      emit_stats();
    }
    if (progress && !progress(sim.now(), group.total_delivered())) {
      aborted = true;
      return false;
    }
    return monitors.ok();
  };
  while (sim.now() < activity_end && chunk()) {
  }

  // Drain to quiescence: converged epochs, empty SP buffers, delivery count
  // stable for two consecutive chunks.
  if (monitors.ok() && !aborted) {
    const Time drain_end = sim.now() + cfg.drain_limit;
    std::size_t stable = 0;
    std::uint64_t last_delivered = group.total_delivered();
    while (sim.now() < drain_end && stable < 2 && chunk()) {
      bool converged = true;
      if (!causal) {
        const std::uint64_t epoch0 = switch_layer_of(group.stack(0)).epoch();
        for (std::size_t i = 0; i < cfg.members; ++i) {
          SwitchLayer& sl = switch_layer_of(group.stack(i));
          if (sl.epoch() != epoch0 || sl.switching() || sl.buffered() != 0) converged = false;
        }
      }
      const std::uint64_t delivered = group.total_delivered();
      stable = converged && delivered == last_delivered ? stable + 1 : 0;
      last_delivered = delivered;
    }
    monitors.finalize(sim.now());
  }

  emit_stats();  // final settled line, so short runs still leave one sample

  res.sent = group.total_sent();
  res.delivered = group.total_delivered();
  res.sim_time = sim.now();
  res.switches_installed = monitors.epoch() ? monitors.epoch()->installs() : 0;
  res.final_cells = monitors.state_cells();
  res.peak_cells = std::max(res.peak_cells, res.final_cells);
  res.violations = monitors.violations().total();
  res.vm_hwm_kb = read_vm_hwm_kb();

  res.ok = monitors.ok() && !aborted;
  if (aborted) {
    res.reason = "aborted by progress callback";
  } else if (!monitors.ok()) {
    res.reason = monitors.first_reason();
  } else if (res.peak_cells > res.cell_budget) {
    // The bounded-memory acceptance check, asserted in-process.
    res.ok = false;
    std::ostringstream os;
    os << "monitor state exceeded budget: peak " << res.peak_cells << " cells > budget "
       << res.cell_budget;
    res.reason = os.str();
  } else if (res.sent != cfg.messages) {
    res.ok = false;
    std::ostringstream os;
    os << "harness sent " << res.sent << " of " << cfg.messages << " messages";
    res.reason = os.str();
  }

  if (!res.ok) {
    std::ostringstream flight;
    write_flight_record(sim.telemetry(), flight, res.reason);
    res.flight_record = flight.str();
  }

  std::ostringstream sum;
  sum << "soak stack=" << (causal ? "causal" : "hybrid") << " seed=" << cfg.seed
      << " members=" << cfg.members << " sent=" << res.sent
      << " delivered=" << res.delivered << " switches=" << res.switches_installed
      << " crashes=" << res.crashes << " violations=" << res.violations
      << " peak_cells=" << res.peak_cells << " cell_budget=" << res.cell_budget
      << " vm_hwm_kb=" << res.vm_hwm_kb << " sim_s=" << res.sim_time / kSecond << " "
      << (res.ok ? "OK" : "FAIL: " + res.reason);
  res.summary_line = sum.str();
  return res;
}

}  // namespace

SoakResult run_soak(const SoakConfig& cfg,
                    const std::function<bool(Time, std::uint64_t)>& progress) {
  std::ofstream stats_file;
  std::ostream* stats_os = nullptr;
  if (!cfg.stats_out.empty()) {
    stats_file.open(cfg.stats_out, std::ios::out | std::ios::trunc);
    if (stats_file.is_open()) stats_os = &stats_file;
  }

  if (cfg.budget_seconds <= 0) return run_soak_once(cfg, progress, stats_os, 0);

  // Wall-clock budget mode: complete rounds of cfg.messages sends, each a
  // fresh simulation under a derived seed, until the deadline. A round
  // always finishes (partial rounds would skew the sent/delivered
  // accounting); the budget steers how many rounds fit.
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };
  SoakResult agg;
  agg.ok = true;
  agg.rounds = 0;
  do {
    SoakConfig round_cfg = cfg;
    round_cfg.seed = cfg.seed + agg.rounds;
    round_cfg.budget_seconds = 0;
    const SoakResult r = run_soak_once(round_cfg, progress, stats_os, agg.rounds);
    ++agg.rounds;
    agg.sent += r.sent;
    agg.delivered += r.delivered;
    agg.violations += r.violations;
    agg.switches_installed += r.switches_installed;
    agg.crashes += r.crashes;
    agg.sim_time += r.sim_time;
    agg.peak_cells = std::max(agg.peak_cells, r.peak_cells);
    agg.final_cells = r.final_cells;
    agg.cell_budget = r.cell_budget;
    agg.vm_hwm_kb = std::max(agg.vm_hwm_kb, r.vm_hwm_kb);
    if (!r.ok) {
      agg.ok = false;
      agg.reason = "round " + std::to_string(agg.rounds - 1) + ": " + r.reason;
      agg.flight_record = r.flight_record;
      break;
    }
  } while (elapsed() < cfg.budget_seconds);
  agg.wall_seconds = elapsed();

  std::ostringstream sum;
  sum << "soak stack=" << (cfg.stack == SoakConfig::Stack::kCausal ? "causal" : "hybrid")
      << " budget_s=" << cfg.budget_seconds << " rounds=" << agg.rounds
      << " wall_s=" << agg.wall_seconds << " sent=" << agg.sent
      << " delivered=" << agg.delivered << " switches=" << agg.switches_installed
      << " crashes=" << agg.crashes << " violations=" << agg.violations
      << " peak_cells=" << agg.peak_cells << " cell_budget=" << agg.cell_budget
      << " vm_hwm_kb=" << agg.vm_hwm_kb << " sim_s=" << agg.sim_time / kSecond << " "
      << (agg.ok ? "OK" : "FAIL: " + agg.reason);
  agg.summary_line = sum.str();
  return agg;
}

}  // namespace msw
