// soak: million-message correctness soak (see harness/soak.hpp).
//
//   soak --messages 10000000                       # the full campaign run
//   soak --messages 1000000 --seed 7 --members 8   # smaller, different mix
//
// Exit code 0 iff the run completed with zero property violations and the
// monitor footprint stayed under the O(members)-derived cell budget. On
// failure the flight-recorder dump is written next to the binary (or to
// --dump-dir) as soak_flight_seed<N>.jsonl.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "harness/soak.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --stack S            hybrid (switching total order, default) or causal\n"
               "  --budget-seconds N   wall-clock budget mode: run complete rounds of\n"
               "                       --messages sends until N seconds elapse (0 = off)\n"
               "  --seed N             rng seed (default 1)\n"
               "  --members N          group size (default 12, max 64)\n"
               "  --messages N         total application sends (default 1000000)\n"
               "  --batch N            messages per batched send (default 8)\n"
               "  --payload N          payload bytes per message (default 32)\n"
               "  --loss P             per-link loss probability (default 0.01)\n"
               "  --dup P              duplicate probability (default 0.01)\n"
               "  --reorder P          reorder probability (default 0.02)\n"
               "  --churn-ms N         ms between crash/restart pairs (default 10000; 0 off)\n"
               "  --downtime-ms N      crash downtime ms (default 1000)\n"
               "  --switch-ms N        ms between protocol switches (default 5000; 0 off)\n"
               "  --sample N           monitor sampling period, 1 = check all (default 1)\n"
               "  --window N           monitor window cap (default 32768)\n"
               "  --stats-out F        append a stats JSONL line per interval of sim time\n"
               "  --stats-interval N   ms of sim time between stats lines (default 1000)\n"
               "  --quiet              suppress per-chunk progress on stderr\n"
               "  --dump-dir D         directory for the flight record on failure (default .)\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  msw::SoakConfig cfg;
  std::string dump_dir = ".";
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--stack") {
      const std::string s = value();
      if (s == "hybrid") {
        cfg.stack = msw::SoakConfig::Stack::kHybrid;
      } else if (s == "causal") {
        cfg.stack = msw::SoakConfig::Stack::kCausal;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--budget-seconds") {
      cfg.budget_seconds = std::strtod(value(), nullptr);
    } else if (arg == "--seed") {
      cfg.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--members") {
      cfg.members = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--messages") {
      cfg.messages = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--batch") {
      cfg.batch = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--payload") {
      cfg.payload_bytes = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--loss") {
      cfg.loss = std::strtod(value(), nullptr);
    } else if (arg == "--dup") {
      cfg.dup_prob = std::strtod(value(), nullptr);
    } else if (arg == "--reorder") {
      cfg.reorder_prob = std::strtod(value(), nullptr);
    } else if (arg == "--churn-ms") {
      cfg.churn_interval = std::strtoull(value(), nullptr, 10) * msw::kMillisecond;
    } else if (arg == "--downtime-ms") {
      cfg.crash_downtime = std::strtoull(value(), nullptr, 10) * msw::kMillisecond;
    } else if (arg == "--switch-ms") {
      cfg.switch_interval = std::strtoull(value(), nullptr, 10) * msw::kMillisecond;
    } else if (arg == "--sample") {
      cfg.sample_period = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--window") {
      cfg.window_cap = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--stats-out") {
      cfg.stats_out = value();
    } else if (arg == "--stats-interval") {
      cfg.stats_interval =
          static_cast<msw::Duration>(std::strtoull(value(), nullptr, 10)) * msw::kMillisecond;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--dump-dir") {
      dump_dir = value();
    } else {
      usage(argv[0]);
    }
  }
  if (cfg.members < 2 || cfg.members > 64 || cfg.messages == 0 || cfg.batch == 0 ||
      cfg.sample_period == 0) {
    std::fprintf(stderr, "need 2 <= --members <= 64, --messages/--batch/--sample > 0\n");
    return 2;
  }

  const auto t0 = std::chrono::steady_clock::now();
  msw::Time last_report = 0;
  const msw::SoakResult res =
      msw::run_soak(cfg, [&](msw::Time now, std::uint64_t delivered) {
        if (!quiet && now - last_report >= 10 * msw::kSecond) {
          last_report = now;
          const double wall =
              std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
          std::fprintf(stderr, "  t=%llus delivered=%llu wall=%.1fs\n",
                       static_cast<unsigned long long>(now / msw::kSecond),
                       static_cast<unsigned long long>(delivered), wall);
        }
        return true;
      });

  std::printf("%s\n", res.summary_line.c_str());
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::fprintf(stderr, "elapsed %.1f s (%.0f msgs/s)\n", wall,
               static_cast<double>(res.sent) / (wall > 0 ? wall : 1));

  if (!res.ok && !res.flight_record.empty()) {
    const std::string path =
        dump_dir + "/soak_flight_seed" + std::to_string(cfg.seed) + ".jsonl";
    std::ofstream os(path, std::ios::binary);
    if (os) {
      os << res.flight_record;
      std::printf("flight record: %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "cannot write flight record %s\n", path.c_str());
    }
  }
  return res.ok ? 0 : 1;
}
