#include "harness/workload.hpp"

#include <map>
#include <string>

namespace msw {

WorkloadResult run_workload(Simulation& sim, Group& group, const WorkloadConfig& cfg) {
  group.capture().clear();
  Scheduler& sched = sim.scheduler();
  const Time start = sched.now();
  const Time end_sends = start + cfg.duration;
  const auto interval = static_cast<Duration>(1e6 / cfg.rate_per_sender);

  Rng rng = sim.fork_rng();
  std::uint64_t sent = 0;
  for (std::size_t s = 0; s < cfg.senders && s < group.size(); ++s) {
    const Duration phase =
        cfg.jitter_phase ? static_cast<Duration>(rng.below(static_cast<std::uint64_t>(interval)))
                         : static_cast<Duration>(s);
    Time t = start + phase;
    while (t < end_sends) {
      sched.at(t, [&group, s, &sent, body_size = cfg.body_size] {
        Bytes body(body_size, static_cast<Byte>('a' + s % 26));
        group.send(s, std::move(body));
        ++sent;
      });
      if (cfg.poisson) {
        t += std::max<Duration>(1, static_cast<Duration>(
                                       rng.exponential(static_cast<double>(interval))));
      } else {
        t += interval;
      }
    }
  }

  sim.run_until(end_sends + cfg.drain);

  WorkloadResult res;
  res.sent = sent;
  res.delivered = 0;
  for (const auto& e : group.trace()) {
    if (e.is_deliver()) ++res.delivered;
  }
  const TraceLatency tl =
      trace_latency(group.trace(), start + cfg.warmup, end_sends, group.size());
  res.latency_ms = tl.latency_ms;
  res.missing_deliveries = tl.missing_deliveries;
  return res;
}

TraceLatency trace_latency(const Trace& tr, Time window_begin, Time window_end,
                           std::size_t expected_receivers) {
  struct SendInfo {
    Time time;
    std::size_t delivers = 0;
  };
  std::map<MsgId, SendInfo> sends;
  for (const auto& e : tr) {
    if (e.is_send() && e.time >= window_begin && e.time <= window_end) {
      sends.emplace(e.msg, SendInfo{e.time, 0});
    }
  }
  TraceLatency out;
  for (const auto& e : tr) {
    if (!e.is_deliver()) continue;
    auto it = sends.find(e.msg);
    if (it == sends.end()) continue;
    ++it->second.delivers;
    out.latency_ms.add(to_ms(e.time - it->second.time));
  }
  for (const auto& [id, info] : sends) {
    if (info.delivers < expected_receivers) {
      out.missing_deliveries += expected_receivers - info.delivers;
    }
  }
  return out;
}

}  // namespace msw
