// Randomized switch fuzzer with a trace-property oracle.
//
// Each iteration derives everything from one 64-bit seed: a random group
// size, network conditions, workload, switch-request timings, and a
// FaultSchedule (net/fault.hpp). It runs the hybrid switching stack to
// quiescence, then checks the captured trace against the executable
// oracle:
//
//   - no spurious deliveries (every Deliver has a matching Send),
//   - no duplicate deliveries (at-most-once per process),
//   - SP's old-before-new guarantee (per-process delivery epochs are
//     non-decreasing, and every message is delivered in one epoch
//     globally — via SwitchLayer's epoch tap),
//   - agreement + Total Order, No Replay, and Reliability (the Table 1
//     properties the active protocols claim),
//   - convergence (all members on one epoch, buffers drained).
//
// On failure the fault schedule is shrunk by delta-debugging over fault
// atoms (an outage and its recovery shrink together, so a reduced schedule
// never fails merely because a partition was left unhealed), producing a
// one-line reproducer: seed + shrunk schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/fault.hpp"

namespace msw {

struct FuzzConfig {
  std::size_t min_members = 2;
  std::size_t max_members = 8;
  /// Include node crash/restart faults in generated schedules.
  bool enable_crash = false;
  /// Compose a ReliableLayer underneath the hybrid switching stack so the
  /// campaign also exercises the NACK/ack control plane (range NACKs,
  /// delta ack vectors, GC eviction) under randomized loss and faults.
  bool reliable_base = false;
  /// DELIBERATE SP BUG (oracle self-test): members ignore sender 0's count
  /// in the drain check, so they can switch before draining its messages.
  bool inject_flush_bug = false;
  /// Maximum simulation re-runs the shrinker may spend per failure.
  std::size_t shrink_budget = 200;
  /// Arm per-node telemetry rings during execution and export the trace /
  /// metrics documents on every iteration (FuzzIteration string fields).
  /// Failures capture a flight record regardless of this flag.
  bool capture_telemetry = false;
  /// Ring capacity (events per node) when telemetry is armed.
  std::size_t telemetry_ring = 4096;
  /// Attach the streaming property monitors (src/monitor/) alongside the
  /// buffered trace oracle and record their independent verdict in
  /// FuzzIteration::monitor_ok / monitor_reason — the oracle-parity path.
  bool attach_monitors = false;
  /// DELIBERATE SEQUENCER BUG (monitor self-test): the sequencer never
  /// refills its own delivery gaps from local history, re-introducing the
  /// historical crashed-sequencer reliability bug.
  bool inject_selfnack_bug = false;
  /// Drive the hybrid with the adaptive PolicyOracle instead of the manual
  /// one: switches then come from the policy engine reacting to the
  /// iteration's randomized load/loss/churn (scripted switch requests still
  /// fire on top). The oracle-under-churn campaign.
  bool adaptive_oracle = false;
};

struct FuzzIteration {
  std::uint64_t seed = 0;
  bool ok = true;
  /// First oracle violation (empty when ok).
  std::string reason;
  /// trace_digest of the captured trace — the cross-run determinism
  /// fingerprint.
  std::uint64_t digest = 0;
  std::size_t members = 0;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  /// Local switchovers completed, maxed over members (every member switches
  /// on every epoch change, so this is the epoch distance travelled) — the
  /// oscillation signal for adaptive-oracle campaigns.
  std::uint64_t switches = 0;
  FaultSchedule schedule;
  /// Streaming-monitor verdict (meaningful only with cfg.attach_monitors):
  /// the monitors consume the same run as a telemetry stream and judge it
  /// independently of the buffered trace oracle.
  bool monitor_ok = true;
  std::string monitor_reason;
  /// MonitorSet::state_cells() at quiescence — the bounded-memory witness.
  std::size_t monitor_cells = 0;
  /// Per-member end state ("i: epoch=E switching=S buffered=B" lines) —
  /// diagnostic detail for replaying reproducers.
  std::string state;
  /// Telemetry exports, populated only when cfg.capture_telemetry: Chrome
  /// trace_event JSON, the JSONL event dump, the metrics JSON document,
  /// and the one-line metrics summary.
  std::string chrome_trace;
  std::string events_jsonl;
  std::string metrics_json;
  std::string metrics_summary;
};

struct FuzzFailure {
  std::uint64_t seed = 0;
  std::string reason;
  /// Shrunk schedule still reproducing the failure.
  FaultSchedule schedule;
  /// schedule.weight() after shrinking (events + active knobs).
  std::size_t weight = 0;
  /// One-line command reproducing the failure.
  std::string repro;
  /// Flight-recorder dump (JSONL, header line first): the last events per
  /// node from re-running the shrunk schedule with tracing armed. Written
  /// next to the repro by fuzz_switch as flight_seed<seed>.jsonl.
  std::string flight_record;
};

struct FuzzSummary {
  std::size_t iterations = 0;
  std::vector<FuzzFailure> failures;
  /// Hash-chain over every iteration's trace digest: equal across runs iff
  /// the whole campaign was bit-identical.
  std::uint64_t corpus_digest = 0;
};

/// Run one iteration. When `schedule_override` is non-null it replaces the
/// seed-derived fault schedule (repro and shrinking); everything else still
/// derives from `seed`.
FuzzIteration run_fuzz_iteration(std::uint64_t seed, const FuzzConfig& cfg,
                                 const FaultSchedule* schedule_override = nullptr);

/// Shrink a failing iteration's schedule to a locally-minimal one.
FuzzFailure shrink_failure(const FuzzIteration& failed, const FuzzConfig& cfg);

/// Run `iters` iterations seeded base_seed, base_seed + 1, ...; failures
/// are shrunk as they appear. `on_iteration` (optional) observes every
/// iteration (e.g. progress output) and may stop the campaign early by
/// returning false — used for wall-clock budgets.
FuzzSummary run_fuzz(std::uint64_t base_seed, std::size_t iters, const FuzzConfig& cfg,
                     const std::function<bool(const FuzzIteration&)>& on_iteration = {});

}  // namespace msw
