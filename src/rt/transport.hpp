// The transport/executor boundary of the runtime.
//
// A Transport is everything a protocol stack needs from the world below
// it: datagram send/multicast, a receive callback per node, one-shot
// timers, and a monotonic clock. The paper's SP and meta-property
// guarantees are properties of the layer stack, not of the medium, so the
// same src/stack layers (unchanged, no medium #ifdefs) run over any
// implementation of this interface:
//
//   SimTransport       the deterministic discrete-event simulator
//                      (src/sim + src/net), byte-identical to driving the
//                      Network directly — the test substrate.
//   LoopbackTransport  in-process delivery between real threads through
//                      lock-free MPSC inboxes — the threading substrate.
//   UdpTransport       real UDP sockets on an epoll event loop — the wire
//                      substrate.
//
// Execution contract shared by all backends: each node belongs to exactly
// one execution context (the sim's single thread, or one executor shard),
// and every callback into a node — packet handler, timer — runs on that
// context, one at a time. Per-node single-threadedness is the invariant
// that lets layers stay lock-free; the runtime provides it, the layers
// assume it.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "net/network.hpp"
#include "net/node_id.hpp"
#include "sim/time.hpp"
#include "util/payload.hpp"

namespace msw {

/// Handle for a pending transport timer. Backends mint tokens unique for
/// the transport's lifetime; 0 is never issued.
struct TransportTimer {
  std::uint64_t v = 0;
  bool valid() const { return v != 0; }
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Create a node. `shard_hint` asks threaded backends to place the node
  /// on a specific executor shard (a group pins all members to one shard);
  /// the sim ignores it. Nodes must be created during wiring, before
  /// traffic flows.
  virtual NodeId add_node(std::size_t shard_hint = 0) = 0;

  /// Install the receive callback for a node (required before traffic).
  /// Invoked on the node's execution context.
  virtual void set_handler(NodeId node, PacketHandler handler) = 0;

  /// Optional coalesced-run receive callback (see PacketRunHandler). Only
  /// the sim backend ever invokes it; threaded backends deliver per packet.
  virtual void set_run_handler(NodeId node, PacketRunHandler handler) { (void)node; (void)handler; }

  /// Point-to-point datagram.
  virtual void send(NodeId from, NodeId to, Payload data) = 0;

  /// Multicast: every listed destination (including `from`, if listed)
  /// receives a copy. Copies share `data`'s buffer where the backend can
  /// arrange it.
  virtual void multicast(NodeId from, const std::vector<NodeId>& to, Payload data) = 0;

  /// Batched multicast: like calling multicast() once per element of
  /// `msgs`, in order. The sim coalesces same-instant arrivals into one
  /// scatter; other backends may simply loop.
  virtual void multicast_run(NodeId from, const std::vector<NodeId>& to,
                             std::span<const Payload> msgs) {
    for (const Payload& p : msgs) multicast(from, to, p);
  }

  /// One-shot timer on the node's execution context. Threaded backends
  /// require the call to come from that same context (layer code always
  /// does); the sim accepts it from anywhere in its single thread.
  virtual TransportTimer set_timer(NodeId node, Duration delay, std::function<void()> fn) = 0;

  /// Cancel a pending timer; the callback is dropped. Cancelling an
  /// already-fired or unknown timer is a no-op.
  virtual void cancel_timer(NodeId node, TransportTimer timer) = 0;

  /// Monotonic clock in microseconds: simulated time on the sim backend,
  /// wall time since transport construction on real backends.
  virtual Time now() const = 0;

  /// Model protocol processing cost. The sim charges the node's serial
  /// CPU; real backends do nothing — processing time there is real.
  virtual void consume_cpu(NodeId node, Duration d) { (void)node; (void)d; }

  /// The sim scheduler's per-tick allocator, or nullptr on real backends
  /// (batch paths then fall back to per-context scratch buffers).
  virtual TickArena* tick_arena() { return nullptr; }

  /// True when this backend replays identically for a fixed seed (the sim).
  virtual bool deterministic() const = 0;
};

}  // namespace msw
