// In-process transport over real threads.
//
// A send posts the packet into the destination node's shard inbox (the
// EventLoop's lock-free MPSC queue); the shard thread pops it and invokes
// the receive handler. Multicast copies share the payload buffer via the
// Payload refcount, exactly like the sim's hardware-multicast model — the
// fan-out allocates inbox nodes, never byte copies.
//
// Semantics relative to the sim: no loss, no reorder on a (src, dst) pair
// (the MPSC queue is FIFO per producer), latency = scheduling delay. The
// asynchrony is real — a handler never runs inside the sender's call
// frame, even when sender and receiver share a shard, mirroring the sim's
// always-via-the-scheduler delivery.
#pragma once

#include "rt/threaded_transport.hpp"

namespace msw {

class LoopbackTransport final : public ThreadedTransport {
 public:
  explicit LoopbackTransport(Executor& ex) : ThreadedTransport(ex) {}

  void send(NodeId from, NodeId to, Payload data) override;
  void multicast(NodeId from, const std::vector<NodeId>& to, Payload data) override;
  const char* backend_name() const override { return "loopback"; }
};

}  // namespace msw
