// Real-socket transport: one UDP socket per node on 127.0.0.1, driven by
// the owning shard's epoll loop.
//
// Every node binds an ephemeral loopback port; the (port -> NodeId) map is
// built during wiring and read-only afterwards, so ingress resolves the
// sender without any header bytes on the wire — the datagram payload is
// exactly the protocol stack's bytes. Sends go out on the *sender's*
// socket from the sender's shard thread; receipt is level-triggered epoll
// on the destination's socket, drained to EAGAIN on the destination's
// shard thread. Kernel socket buffers are the only queue in between: a
// full receive buffer drops datagrams exactly like a real network, and the
// reliable layer's NACK/heartbeat machinery — unchanged — recovers them.
#pragma once

#include <netinet/in.h>

#include <unordered_map>
#include <vector>

#include "rt/threaded_transport.hpp"

namespace msw {

struct UdpConfig {
  /// SO_RCVBUF / SO_SNDBUF request per socket (the kernel may clamp).
  int rcvbuf_bytes = 1 << 22;
  int sndbuf_bytes = 1 << 21;
  /// Retries (with sched_yield) when sendto hits EAGAIN before the copy is
  /// counted as dropped — UDP semantics, recovery belongs to the layers.
  int send_retries = 3;
};

class UdpTransport final : public ThreadedTransport {
 public:
  /// Creates no sockets yet; add_node does. Throws std::runtime_error if
  /// socket creation/binding fails at add_node time (e.g. a sandbox with
  /// no network namespace).
  explicit UdpTransport(Executor& ex, UdpConfig cfg = {});
  ~UdpTransport() override;

  void send(NodeId from, NodeId to, Payload data) override;
  void multicast(NodeId from, const std::vector<NodeId>& to, Payload data) override;
  const char* backend_name() const override { return "udp"; }

  /// The UDP port a node is bound to (host byte order).
  std::uint16_t port_of(NodeId node) const { return ports_[node.v]; }

  /// True when this process can bind loopback UDP sockets — probe for
  /// environments (sandboxes) where the backend must be skipped.
  static bool available();

 protected:
  void on_node_added(NodeId node) override;

 private:
  void drain_socket(NodeId node);
  void send_datagram(NodeId from, NodeId to, std::span<const Byte> bytes);

  UdpConfig cfg_;
  std::vector<int> fds_;                  // per node
  std::vector<sockaddr_in> addrs_;        // per node, 127.0.0.1:port
  std::vector<std::uint16_t> ports_;      // per node, host order
  std::unordered_map<std::uint16_t, std::uint32_t> port_to_node_;
};

}  // namespace msw
