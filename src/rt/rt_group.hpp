// A process group running over the runtime boundary: n nodes on one
// ThreadedTransport, each with an identical stack, the whole group pinned
// to a single executor shard.
//
// Pinning the group to one shard is what keeps the layers lock-free: every
// packet delivery, timer callback, and posted send for this group runs on
// that shard's thread, so the per-process single-threaded execution
// contract the layers were written under holds unchanged. Different groups
// on different shards run genuinely in parallel.
//
// Construction and wiring happen on the caller's thread before the
// executor starts. After Executor::start, all interaction with the stacks
// goes through post()/call() so it executes on the shard thread.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "rt/threaded_transport.hpp"
#include "stack/capture.hpp"
#include "stack/layer.hpp"
#include "stack/stack.hpp"

namespace msw {

class TelemetryHub;
class LatencyTracker;

class RtGroup {
 public:
  /// Creates `n` nodes on `transport`, all pinned to `shard`, and one stack
  /// per node. Wiring phase only: call before Executor::start.
  /// `capture_trace` buffers the full send/deliver trace (O(messages)
  /// memory) for parity checks; leave off for throughput runs.
  RtGroup(ThreadedTransport& transport, std::size_t n, const LayerFactory& factory,
          std::size_t shard = 0, bool capture_trace = false, TelemetryHub* hub = nullptr,
          std::uint64_t seed = 0x9e3779b97f4a7c15ULL);
  ~RtGroup();

  RtGroup(const RtGroup&) = delete;
  RtGroup& operator=(const RtGroup&) = delete;

  std::size_t size() const { return stacks_.size(); }
  std::size_t shard() const { return shard_; }
  NodeId node(std::size_t i) const { return members_[i]; }
  const std::vector<NodeId>& members() const { return members_; }

  /// Start every stack, on the shard thread. Executor must be running.
  /// Blocks until the starts have executed.
  void start();

  /// Run `fn` on the group's shard thread (FIFO with packet/timer work).
  void post(std::function<void()> fn);

  /// Run `fn` on the shard thread and wait for it to finish. This is the
  /// only safe way to touch the stacks after the executor has started.
  void call(std::function<void()> fn);

  /// Multicast from member i, executed on the shard thread.
  void send(std::size_t i, Bytes body);

  /// Multicast a run from member i through the batched path.
  void send_batch(std::size_t i, std::vector<Bytes> bodies);

  /// Totals, read consistently on the shard thread.
  std::uint64_t total_delivered();
  std::uint64_t total_sent();
  std::uint64_t delivered_at(std::size_t i);

  /// The buffered trace. Only meaningful once the group is quiescent and
  /// the executor is stopped (or from within call()).
  TraceCapture& capture() { return capture_; }
  const Trace& trace() const { return capture_.trace(); }

  /// Direct stack access — wiring phase, or from within call(), only.
  Stack& stack(std::size_t i) { return *stacks_[i]; }

  ThreadedTransport& transport() { return transport_; }

  /// Wire end-to-end latency tracking (usually via RtStatsPlane::
  /// attach_group). Wiring phase only. Claims every stack's on_deliver
  /// hook and stamps each RtGroup::send/send_batch at post-execution time
  /// on the shard thread. Compiled to a no-op when MSW_RT_STATS is off.
  void attach_latency(LatencyTracker* t);

 private:
  ThreadedTransport& transport_;
  std::size_t shard_;
  std::vector<NodeId> members_;
  TraceCapture capture_;
  std::vector<std::unique_ptr<Stack>> stacks_;
  LatencyTracker* latency_ = nullptr;  // shard-thread use after wiring
};

}  // namespace msw
