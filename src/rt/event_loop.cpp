#include "rt/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <time.h>
#include <unistd.h>

#include <cstdlib>
#include <cstdio>

namespace msw {

namespace {
constexpr int kMaxEpollEvents = 64;
/// Upper bound on tasks drained per loop iteration, so a self-reposting
/// task (a send pump) cannot starve socket ingress or timers.
constexpr std::size_t kMaxDrainPerIter = 256;
/// Park at most this long even with an empty timer heap; a cheap backstop
/// against any lost-wakeup bug turning into a hang.
constexpr int kMaxParkMs = 100;
}  // namespace

EventLoop::EventLoop() {
  head_.store(&stub_, std::memory_order_relaxed);
  tail_ = &stub_;
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    std::perror("EventLoop: epoll_create1/eventfd");
    std::abort();
  }
  add_fd(wake_fd_, [this] { drain_wake_eventfd(); });
}

EventLoop::~EventLoop() {
  // Drain any never-run tasks so their closures are destroyed.
  while (TaskNode* n = pop_node()) delete n;
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

std::int64_t EventLoop::now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

void EventLoop::post(Task t) {
  auto* node = new TaskNode;
  node->fn = std::move(t);
  node->next.store(nullptr, std::memory_order_relaxed);
  TaskNode* prev = head_.exchange(node, std::memory_order_acq_rel);
  prev->next.store(node, std::memory_order_release);
  // Dekker-style pairing with run(): either this load sees sleeping_ (and
  // we wake the consumer), or the consumer's post-announce inbox check sees
  // the exchange above and skips the park.
  if (sleeping_.load(std::memory_order_seq_cst)) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
  }
}

EventLoop::TaskNode* EventLoop::pop_node() {
  TaskNode* tail = tail_;
  TaskNode* next = tail->next.load(std::memory_order_acquire);
  if (tail == &stub_) {
    if (next == nullptr) return nullptr;
    tail_ = next;
    tail = next;
    next = next->next.load(std::memory_order_acquire);
  }
  if (next != nullptr) {
    tail_ = next;
    return tail;
  }
  if (tail != head_.load(std::memory_order_acquire)) {
    return nullptr;  // producer mid-push; retry next iteration
  }
  // tail is the last real node: push the stub back so it can be unlinked.
  stub_.next.store(nullptr, std::memory_order_relaxed);
  TaskNode* prev = head_.exchange(&stub_, std::memory_order_acq_rel);
  prev->next.store(&stub_, std::memory_order_release);
  next = tail->next.load(std::memory_order_acquire);
  if (next != nullptr) {
    tail_ = next;
    return tail;
  }
  return nullptr;
}

bool EventLoop::inbox_empty_hint() const {
  if (head_.load(std::memory_order_seq_cst) != tail_) return false;
  return tail_->next.load(std::memory_order_acquire) == nullptr;
}

std::uint64_t EventLoop::add_timer(std::int64_t deadline_ns, Task t) {
  const std::uint64_t token = next_timer_token_++;
  timers_.emplace(token, std::move(t));
  timer_heap_.push(TimerEntry{deadline_ns, token});
  return token;
}

void EventLoop::cancel_timer(std::uint64_t token) {
  timers_.erase(token);  // the stale heap entry is skipped when popped
}

void EventLoop::add_fd(int fd, Task on_readable) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    std::perror("EventLoop: epoll_ctl ADD");
    std::abort();
  }
  fd_handlers_[fd] = std::move(on_readable);
}

void EventLoop::remove_fd(int fd) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  fd_handlers_.erase(fd);
}

void EventLoop::drain_wake_eventfd() {
  std::uint64_t count = 0;
  [[maybe_unused]] ssize_t n = ::read(wake_fd_, &count, sizeof count);
}

void EventLoop::fire_due_timers(std::int64_t now) {
  while (!timer_heap_.empty() && timer_heap_.top().deadline_ns <= now) {
    const TimerEntry e = timer_heap_.top();
    timer_heap_.pop();
    auto it = timers_.find(e.token);
    if (it == timers_.end()) continue;  // cancelled
    Task fn = std::move(it->second);
    timers_.erase(it);
    ++timers_fired_;
#if MSW_RT_STATS_ENABLED
    // Loop-lag: how late this fire is versus its scheduled deadline. `now`
    // is sampled once per drain pass, so same-pass timers share a stamp.
    if (observer_ != nullptr) observer_->on_timer_lag(now - e.deadline_ns);
#endif
    fn();
  }
}

int EventLoop::next_timeout_ms(std::int64_t now) const {
  if (timer_heap_.empty()) return kMaxParkMs;
  // Cancelled entries at the top would only shorten the park — harmless.
  const std::int64_t delta = timer_heap_.top().deadline_ns - now;
  if (delta <= 0) return 0;
  const std::int64_t ms = (delta + 999'999) / 1'000'000;  // round up
  return static_cast<int>(ms < kMaxParkMs ? ms : kMaxParkMs);
}

void EventLoop::run() {
  loop_thread_.store(std::this_thread::get_id(), std::memory_order_release);
  epoll_event events[kMaxEpollEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    fire_due_timers(now_ns());

    std::size_t drained = 0;
    while (drained < kMaxDrainPerIter) {
      TaskNode* n = pop_node();
      if (n == nullptr) break;
      Task fn = std::move(n->fn);
      delete n;
      ++tasks_run_;
      ++drained;
      fn();
    }
#if MSW_RT_STATS_ENABLED
    // Consumer-side backlog probe: what this pass drained is the loop's own
    // measure of how far behind it was, and costs the producers nothing.
    // Saturates at kMaxDrainPerIter under overload.
    inbox_last_ = static_cast<std::int64_t>(drained);
    if (inbox_last_ > inbox_hwm_) inbox_hwm_ = inbox_last_;
#endif
    if (stop_.load(std::memory_order_acquire)) break;

    int timeout_ms = 0;
    if (drained < kMaxDrainPerIter) {
      // Inbox looked dry: announce the park, then re-check — a producer
      // that missed the announcement must have pushed before it, and the
      // re-check sees that push.
      sleeping_.store(true, std::memory_order_seq_cst);
      if (inbox_empty_hint() && !stop_.load(std::memory_order_acquire)) {
        timeout_ms = next_timeout_ms(now_ns());
      }
    }
    const int nfds = epoll_wait(epoll_fd_, events, kMaxEpollEvents, timeout_ms);
    sleeping_.store(false, std::memory_order_seq_cst);
    if (timeout_ms > 0) ++wakeups_;
    for (int i = 0; i < nfds; ++i) {
      auto it = fd_handlers_.find(events[i].data.fd);
      if (it != fd_handlers_.end()) it->second();
    }
  }
  loop_thread_.store(std::thread::id{}, std::memory_order_release);
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

}  // namespace msw
