// Bridge from the runtime's per-shard stats plane into the switch policy's
// signal plane.
//
// A PolicyOracle running inside an RtGroup sees the same per-layer metrics
// it sees in the sim (the group's registry lives on its shard), but only
// the shard knows how healthy the event loop itself is: timer-lag
// quantiles and inbox backlog. This adapter packages a ShardStats reader
// as a SignalPlane::ExternalSource so every sampled SignalVector carries
// the shard's loop-health fields — a saturated loop inflates observed
// latencies for *both* protocols, and the policy engine can tell
// "the protocol is slow" apart from "the host is slow".
//
// The source reads through the shard's seqlock snapshot, so it is safe
// from the group's own loop thread (the common case: the sampling timer
// runs on the shard that owns the group) and from any other thread.
#pragma once

#include <cstddef>

#include "rt/stats/shard_stats.hpp"
#include "switch/policy/signal_plane.hpp"

namespace msw {

class RtStatsPlane;

/// ExternalSource reading loop-health signals from one shard's stats.
/// `stats` must be sealed before the first sample and outlive the source.
SignalPlane::ExternalSource rt_signal_source(const ShardStats& stats);

/// Convenience: the source for the shard an RtGroup is pinned to.
SignalPlane::ExternalSource rt_signal_source(RtStatsPlane& plane, std::size_t shard);

}  // namespace msw
