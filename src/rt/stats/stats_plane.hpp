// The runtime observability plane: binds an Executor (one ShardStats per
// shard), a ThreadedTransport (traffic totals + the wall clock), and any
// number of RtGroups (end-to-end latency) into one snapshot surface.
//
// Wiring order, all single-threaded:
//   Executor ex(shards);
//   LoopbackTransport net(ex);            // or Udp
//   RtStatsPlane stats(ex, &net);         // installs loop observers
//   RtGroup g(net, n, factory, shard);
//   stats.attach_group(g, "g0");          // latency histograms on g's shard
//   ex.start(); stats.start(); g.start(); // start() arms flush timers
//   ...
//   ex.stop();                            // then read/collect freely
//
// The plane must outlive Executor::stop(): shard flush timers capture it.
// collect() may run from any thread at any time — that is the point.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "rt/stats/latency.hpp"
#include "rt/stats/shard_stats.hpp"
#include "rt/threaded_transport.hpp"

namespace msw {

class RtGroup;

struct RtStatsConfig {
  /// Shard-local publish cadence: how often each loop thread mirrors its
  /// health counters and publishes through the seqlock.
  Duration flush_interval = 20 * kMillisecond;
};

class RtStatsPlane {
 public:
  /// Installs a ShardStats (and its LoopObserver) on every shard. Wiring
  /// phase only. `transport` may be null (loop health only, no traffic
  /// totals or wall timestamps).
  explicit RtStatsPlane(Executor& ex, ThreadedTransport* transport = nullptr,
                        RtStatsConfig cfg = {});

  RtStatsPlane(const RtStatsPlane&) = delete;
  RtStatsPlane& operator=(const RtStatsPlane&) = delete;

  std::size_t shards() const { return shards_.size(); }
  ShardStats& shard(std::size_t i) { return *shards_[i]; }

  /// Register end-to-end latency tracking for `g` on its shard's registry
  /// (histogram rt.latency_us.<name>). Wiring phase only, before start().
  /// Default name: "g<index>" in attachment order. Latency stamping samples
  /// 1 in 2^sample_shift multicasts (default 1/16 — quantiles are
  /// unaffected, and unsampled deliveries cost one compare, which is what
  /// keeps the instrumented data path inside the 3% overhead budget); pass
  /// 0 for exact every-message accounting (tests).
  LatencyTracker& attach_group(RtGroup& g, std::string name = {},
                               unsigned sample_shift = 4);

  /// Seal every shard's layout and arm the per-shard flush timers (posted
  /// to the running executor; a no-op scheduling-wise if it isn't running —
  /// call flush_all() manually in that case).
  void start();
  bool started() const { return started_; }

  /// Single-threaded contexts only (executor stopped): flush every shard
  /// from the caller's thread so collect() sees current values.
  void flush_all();

  /// Wall-clock µs since transport construction (0 with no transport).
  std::uint64_t t_us() const;
  /// Backend tag for labeling output ("loopback", "udp", "none").
  std::string backend() const;

  /// One consistent-per-shard snapshot each, stamped with t_us(). Any
  /// thread; never blocks writers.
  std::vector<StatsSnapshot> collect() const;
  /// Transport traffic totals as a snapshot (source "transport").
  StatsSnapshot transport_snapshot() const;

 private:
  void arm_flush(std::size_t s);

  Executor& ex_;
  ThreadedTransport* transport_;
  RtStatsConfig cfg_;
  std::vector<std::unique_ptr<ShardStats>> shards_;
  std::deque<LatencyTracker> trackers_;  // deque: stable references
  bool started_ = false;
};

}  // namespace msw
