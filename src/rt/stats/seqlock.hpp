// Seqlock-style snapshot buffer: one writer publishes a fixed-size array of
// 64-bit slots, any number of readers take consistent copies, and the
// writer NEVER blocks — there is no lock to take, only a sequence bump and
// plain relaxed stores. A reader that races a publication simply retries.
//
// This is the publication channel between a shard's loop thread (writer)
// and the StatsPublisher thread (reader). The writer side costs two atomic
// RMW-free stores plus N relaxed stores per publish; a reader pays a copy
// and, rarely, a retry. Every slot is a std::atomic with relaxed ordering
// bracketed by acquire/release fences on the sequence word — the classic
// Boehm "Can seqlocks get along with programming language memory models?"
// construction — so the protocol is data-race-free under TSan, not just in
// practice.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace msw {

class SeqlockBuf {
 public:
  SeqlockBuf() = default;

  SeqlockBuf(const SeqlockBuf&) = delete;
  SeqlockBuf& operator=(const SeqlockBuf&) = delete;

  /// Size the buffer. Single-threaded setup only (before the first
  /// publish/read); existing contents are discarded.
  void resize(std::size_t slots) {
    buf_ = std::make_unique<std::atomic<std::uint64_t>[]>(slots);
    for (std::size_t i = 0; i < slots; ++i) buf_[i].store(0, std::memory_order_relaxed);
    slots_ = slots;
  }

  std::size_t slots() const { return slots_; }

  /// Writer: publish `n` (== slots()) values. Wait-free; single writer.
  void publish(const std::uint64_t* src, std::size_t n) {
    const std::uint64_t s = seq_.load(std::memory_order_relaxed);
    seq_.store(s + 1, std::memory_order_relaxed);  // odd: publication open
    std::atomic_thread_fence(std::memory_order_release);
    for (std::size_t i = 0; i < n; ++i) buf_[i].store(src[i], std::memory_order_relaxed);
    seq_.store(s + 2, std::memory_order_release);  // even: publication closed
  }

  /// Reader: copy a consistent snapshot into `dst`. Returns false if every
  /// attempt raced a publication (only plausible when the writer publishes
  /// continuously); `dst` then holds the last, possibly torn, attempt.
  bool read(std::uint64_t* dst, std::size_t n, int max_attempts = 64) const {
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      const std::uint64_t s1 = seq_.load(std::memory_order_acquire);
      if ((s1 & 1) != 0) continue;  // publication in flight
      for (std::size_t i = 0; i < n; ++i) dst[i] = buf_[i].load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (seq_.load(std::memory_order_relaxed) == s1) return true;
    }
    return false;
  }

  /// Number of completed publications (even seq / 2). Any thread.
  std::uint64_t generation() const { return seq_.load(std::memory_order_acquire) / 2; }

 private:
  std::atomic<std::uint64_t> seq_{0};
  std::unique_ptr<std::atomic<std::uint64_t>[]> buf_;
  std::size_t slots_ = 0;
};

}  // namespace msw
