// End-to-end wall-clock latency per group: the delta between a multicast's
// submission at the Endpoint boundary and each member's app-level delivery.
//
// Everything here runs on the group's shard thread — the send stamp is
// taken inside the posted send lambda, deliveries arrive through the
// stack's on_deliver hook, and a group is pinned wholesale to one shard —
// so the open-message table needs no synchronization. Messages are keyed by
// (sender, seq), the same identity the trace plane uses; an entry retires
// after `fanout` deliveries (every member, sender included, delivers).
//
// Two things keep the probe off the per-message critical path:
//
//   * Sampling. With sample_shift = s, only multicasts whose seq has its
//     low s bits clear are stamped (1 in 2^s). Callers gate on sampled()
//     BEFORE reading the clock or touching the table, so an unsampled
//     delivery costs one mask-and-compare. Quantile estimates are
//     unaffected — the histogram just accumulates fewer samples — and
//     shift 0 restores exact every-message accounting (what the tests
//     use).
//   * A fixed open-addressing table instead of a node-based map. Open
//     stamps live in a flat power-of-two array probed linearly from a
//     multiplicative hash; lookups touch one or two cache lines and the
//     tracker never allocates after construction. If a probe window is
//     full (pathological in-flight load), the oldest stamp in the window
//     is evicted and its remaining deliveries land as `untracked` —
//     counted, not guessed at.
//
// Deliveries with no matching stamp (sends issued around the tracker's
// attachment, evictions, or direct stack(i).send() calls that bypassed
// RtGroup::send) are counted in `untracked`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "telemetry/metrics.hpp"

namespace msw {

class LatencyTracker {
 public:
  /// Registers `rt.latency_us.<name>` (histogram) and
  /// `rt.latency.untracked.<name>` (counter) on `reg` — the owning shard's
  /// registry. Wiring phase only. `fanout` is the group size;
  /// `sample_shift` selects 1-in-2^shift stamping (0 = every multicast).
  LatencyTracker(MetricsRegistry& reg, const std::string& name, std::size_t fanout,
                 unsigned sample_shift = 0);

  const std::string& name() const { return name_; }

  /// True when (sender, seq) would be stamped. Callers check this before
  /// paying for a clock read — the whole fast path for unsampled traffic.
  bool sampled(std::uint64_t seq) const { return (seq & sample_mask_) == 0; }
  /// The raw mask, for inline gating at the Stack hook (set_on_deliver's
  /// sample_mask) so unsampled deliveries skip the indirect call entirely.
  std::uint64_t sample_mask() const { return sample_mask_; }

  /// Shard thread: a multicast with (sender, seq) was submitted at `t_us`.
  /// No-op for unsampled seqs.
  void on_send(std::uint32_t sender, std::uint64_t seq, Time t_us);

  /// Shard thread: one member delivered (sender, seq) at `t_us`.
  /// No-op for unsampled seqs.
  void on_deliver(std::uint32_t sender, std::uint64_t seq, Time t_us);

  const MetricsRegistry::Histogram& hist() const { return hist_; }
  std::uint64_t untracked() const { return untracked_.value(); }
  /// Stamped multicasts not yet fully delivered (bounded by in-flight load).
  std::size_t open() const { return open_count_; }

 private:
  static constexpr std::size_t kSlotBits = 12;  // 4096 slots, ~96KB per group
  static constexpr std::size_t kSlots = std::size_t{1} << kSlotBits;
  static constexpr std::size_t kProbe = 8;  // linear probe window

  static std::uint64_t key(std::uint32_t sender, std::uint64_t seq) {
    return (static_cast<std::uint64_t>(sender) << 48) ^ seq;
  }
  static std::size_t index(std::uint64_t k) {
    return static_cast<std::size_t>((k * 0x9e3779b97f4a7c15ULL) >> (64 - kSlotBits));
  }

  struct Slot {
    std::uint64_t key = 0;
    Time t_send = 0;
    std::uint32_t remaining = 0;  // 0 = slot empty
  };

  std::string name_;
  MetricsRegistry::Histogram& hist_;
  MetricsRegistry::Counter& untracked_;
  std::uint32_t fanout_;
  std::uint64_t sample_mask_;
  std::vector<Slot> slots_;  // sized kSlots once; never reallocates
  std::size_t open_count_ = 0;
};

}  // namespace msw
