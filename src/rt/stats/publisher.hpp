// Background publication of the rt stats plane: a dedicated thread wakes on
// a configurable interval, takes seqlock snapshots of every shard (writers
// never block — see rt/stats/seqlock.hpp), and emits
//   - a JSONL time-series (one line per shard per tick, plus a transport
//     totals line), byte-stable for identical snapshots, and/or
//   - a live single-line ANSI dashboard on stderr (rates, inbox HWM, loop
//     lag p99, merged end-to-end latency p50/p99).
//
// stop() performs one final emission after the thread joins, so short runs
// always leave at least one complete tick in --stats-out.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>

#include "rt/stats/stats_plane.hpp"

namespace msw {

struct StatsPublisherConfig {
  /// Publication interval (wall µs between ticks).
  Duration interval = 500 * kMillisecond;
  /// JSONL time-series path; empty disables the file.
  std::string jsonl_path;
  /// Stream override for tests; takes precedence over jsonl_path.
  std::ostream* jsonl_stream = nullptr;
  /// Render the single-line dashboard to stderr.
  bool dashboard = false;
};

class StatsPublisher {
 public:
  /// The plane (and everything it observes) must outlive the publisher.
  StatsPublisher(RtStatsPlane& plane, StatsPublisherConfig cfg);
  ~StatsPublisher();  // stops if still running

  StatsPublisher(const StatsPublisher&) = delete;
  StatsPublisher& operator=(const StatsPublisher&) = delete;

  void start();
  /// Join the thread, emit one final tick, and (if the dashboard ran)
  /// terminate its line. Idempotent.
  void stop();

  std::uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

 private:
  void run();
  void tick();
  void render_dashboard(const std::vector<StatsSnapshot>& shards,
                        const StatsSnapshot& transport);

  RtStatsPlane& plane_;
  StatsPublisherConfig cfg_;
  std::ofstream file_;
  std::ostream* out_ = nullptr;

  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;
  std::atomic<std::uint64_t> ticks_{0};

  // Dashboard rate state (publisher thread only).
  std::uint64_t last_t_us_ = 0;
  std::uint64_t last_sent_ = 0;
  std::uint64_t last_delivered_ = 0;
  std::uint64_t last_tasks_ = 0;
};

}  // namespace msw
