#include "rt/stats/signal_adapter.hpp"

#include "rt/stats/stats_plane.hpp"
#include "telemetry/stats_io.hpp"

namespace msw {

SignalPlane::ExternalSource rt_signal_source(const ShardStats& stats) {
  return [&stats](SignalVector& v) {
    if (!stats.sealed()) return;
    StatsSnapshot snap;
    stats.snapshot(snap, 0);  // best-effort even when a publish raced
    if (const StatsSnapshot::Hist* lag = snap.find_hist("rt.loop.lag_us")) {
      v.loop_lag_p99_us = lag->p99;
    }
    if (const StatsSnapshot::Scalar* depth = snap.find_scalar("rt.loop.inbox_depth")) {
      v.inbox_depth = static_cast<double>(depth->value);
    }
  };
}

SignalPlane::ExternalSource rt_signal_source(RtStatsPlane& plane, std::size_t shard) {
  return rt_signal_source(plane.shard(shard));
}

}  // namespace msw
