#include "rt/stats/publisher.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace msw {
namespace {

/// Compact human rate: 12345 -> "12.3k", 1234567 -> "1.23M".
std::string fmt_rate(double v) {
  char buf[32];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  }
  return buf;
}

std::uint64_t scalar_sum(const std::vector<StatsSnapshot>& shards, std::string_view name) {
  std::uint64_t total = 0;
  for (const StatsSnapshot& s : shards) {
    if (const auto* sc = s.find_scalar(name)) total += sc->value;
  }
  return total;
}

std::uint64_t scalar_max(const std::vector<StatsSnapshot>& shards, std::string_view name) {
  std::uint64_t best = 0;
  for (const StatsSnapshot& s : shards) {
    if (const auto* sc = s.find_scalar(name)) best = std::max(best, sc->value);
  }
  return best;
}

}  // namespace

StatsPublisher::StatsPublisher(RtStatsPlane& plane, StatsPublisherConfig cfg)
    : plane_(plane), cfg_(std::move(cfg)) {
  if (cfg_.jsonl_stream != nullptr) {
    out_ = cfg_.jsonl_stream;
  } else if (!cfg_.jsonl_path.empty()) {
    file_.open(cfg_.jsonl_path, std::ios::out | std::ios::trunc);
    if (file_.is_open()) out_ = &file_;
  }
}

StatsPublisher::~StatsPublisher() { stop(); }

void StatsPublisher::start() {
  stopped_ = false;
  stop_requested_ = false;
  thread_ = std::thread([this] { run(); });
}

void StatsPublisher::stop() {
  if (stopped_) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  tick();  // final emission: short runs still leave one complete sample
  if (cfg_.dashboard) std::fputc('\n', stderr);
  if (file_.is_open()) file_.close();
  stopped_ = true;
}

void StatsPublisher::run() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_requested_) {
    const auto wait = std::chrono::microseconds(cfg_.interval);
    if (cv_.wait_for(lk, wait, [this] { return stop_requested_; })) break;
    lk.unlock();
    tick();
    lk.lock();
  }
}

void StatsPublisher::tick() {
  const std::vector<StatsSnapshot> shards = plane_.collect();
  const StatsSnapshot transport = plane_.transport_snapshot();
  if (out_ != nullptr) {
    for (const StatsSnapshot& s : shards) write_stats_line(*out_, s);
    write_stats_line(*out_, transport);
    out_->flush();
  }
  ticks_.fetch_add(1, std::memory_order_relaxed);
  if (cfg_.dashboard) render_dashboard(shards, transport);
}

void StatsPublisher::render_dashboard(const std::vector<StatsSnapshot>& shards,
                                      const StatsSnapshot& transport) {
  const std::uint64_t t_us = transport.t_us;
  const auto val = [&](std::string_view name) {
    const auto* s = transport.find_scalar(name);
    return s == nullptr ? std::uint64_t{0} : s->value;
  };
  const std::uint64_t sent = val("rt.net.sent");
  const std::uint64_t delivered = val("rt.net.delivered");
  const std::uint64_t dropped = val("rt.net.dropped");
  const std::uint64_t tasks = scalar_sum(shards, "rt.loop.tasks");

  const double dt_s = last_t_us_ == 0 || t_us <= last_t_us_
                          ? 0.0
                          : static_cast<double>(t_us - last_t_us_) / 1e6;
  const auto rate = [&](std::uint64_t now, std::uint64_t then) {
    return dt_s <= 0.0 ? 0.0 : static_cast<double>(now - then) / dt_s;
  };
  const double tx_rate = rate(sent, last_sent_);
  const double rx_rate = rate(delivered, last_delivered_);
  const double task_rate = rate(tasks, last_tasks_);
  last_t_us_ = t_us;
  last_sent_ = sent;
  last_delivered_ = delivered;
  last_tasks_ = tasks;

  const std::uint64_t inbox_hwm = scalar_max(shards, "rt.loop.inbox_hwm");
  const StatsSnapshot::Hist lag = merge_hists(shards, "rt.loop.lag_us");
  const StatsSnapshot::Hist e2e = merge_hists(shards, "rt.latency_us.");

  std::fprintf(stderr,
               "\r\x1b[2K[rt %s %7.1fs] tx %s/s rx %s/s drop %" PRIu64
               " | tasks %s/s | inbox^ %" PRIu64 " | lag p99 %.0fus | e2e p50/p99 %.0f/%.0fus",
               plane_.backend().c_str(), static_cast<double>(t_us) / 1e6,
               fmt_rate(tx_rate).c_str(), fmt_rate(rx_rate).c_str(), dropped,
               fmt_rate(task_rate).c_str(), inbox_hwm, lag.p99, e2e.p50, e2e.p99);
  std::fflush(stderr);
}

}  // namespace msw
