// Per-shard stats: one MetricsRegistry owned by (and written from) a
// shard's loop thread, published to readers through a seqlock buffer.
//
// Write side (loop thread):
//   - on_timer_lag() records scheduled-vs-actual timer fire deltas into the
//     rt.loop.lag_us histogram (installed as the loop's LoopObserver).
//   - Group latency trackers (rt/stats/latency.hpp) record end-to-end
//     deltas into rt.latency_us.* histograms on this registry — safe with
//     no locks because the group is pinned to this shard.
//   - flush() mirrors the EventLoop's health counters (tasks, timers,
//     wakeups, drain-pass inbox backlog + high-watermark, timer-heap size)
//     into the registry and publishes the whole flattened registry through
//     the seqlock. The stats plane arms a self-re-arming flush timer per
//     shard. Every counter is consumer-side: producers posting into the
//     loop pay nothing for any of this.
//
// Read side (StatsPublisher thread, or anyone): snapshot() copies the last
// published flat image (retrying if it races a publish — the writer never
// waits) and decodes it into a StatsSnapshot using the frozen layout.
//
// Lifecycle: construct + register instruments (attach_group) during the
// single-threaded wiring phase, seal() before the first flush, then the
// registry's instrument set is frozen — values keep changing, names never.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rt/event_loop.hpp"
#include "rt/stats/seqlock.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/stats_io.hpp"

namespace msw {

class ShardStats final : public LoopObserver {
 public:
  /// Registers the loop-health instruments and installs itself as `loop`'s
  /// observer. Wiring phase only.
  ShardStats(EventLoop& loop, std::size_t shard);

  std::size_t shard() const { return shard_; }
  std::string source() const { return "shard" + std::to_string(shard_); }

  /// Additional instruments (latency trackers) register here before seal().
  MetricsRegistry& registry() { return reg_; }

  // LoopObserver (loop thread).
  void on_timer_lag(std::int64_t lag_ns) override {
    lag_us_->record(static_cast<std::uint64_t>(lag_ns < 0 ? 0 : lag_ns) / 1000);
  }

  /// Freeze the instrument set and size the publication buffer. Call once,
  /// after all attach_group() calls, before the first flush().
  void seal();
  bool sealed() const { return sealed_; }

  /// Loop thread only: refresh loop-health mirrors and publish the
  /// registry's current values. Wait-free for this thread's other work.
  void flush();

  /// Any thread, after seal(): decode the most recent publication into
  /// `out` (source/t_us set by the caller's wrapper). Returns false when
  /// every read attempt raced a publish; `out` is then best-effort.
  bool snapshot(StatsSnapshot& out, std::uint64_t t_us) const;

  /// Flat slots one publication carries (valid after seal()).
  std::size_t slots() const { return slots_; }

 private:
  void encode();

  EventLoop& loop_;
  std::size_t shard_;
  MetricsRegistry reg_;

  // Mirrors of EventLoop counters, registered as external views so they
  // export under the uniform namespace; refreshed in flush().
  std::uint64_t m_tasks_ = 0;
  std::uint64_t m_timers_ = 0;
  std::uint64_t m_wakeups_ = 0;
  std::uint64_t m_inbox_hwm_ = 0;

  MetricsRegistry::Gauge* inbox_depth_ = nullptr;
  MetricsRegistry::Gauge* timer_heap_ = nullptr;
  MetricsRegistry::Histogram* lag_us_ = nullptr;

  bool sealed_ = false;
  std::size_t slots_ = 0;
  std::vector<std::uint64_t> scratch_;  // loop-thread encode staging
  SeqlockBuf buf_;
};

}  // namespace msw
