#include "rt/stats/stats_plane.hpp"

#include "rt/rt_group.hpp"

namespace msw {

RtStatsPlane::RtStatsPlane(Executor& ex, ThreadedTransport* transport, RtStatsConfig cfg)
    : ex_(ex), transport_(transport), cfg_(cfg) {
  shards_.reserve(ex.shards());
  for (std::size_t s = 0; s < ex.shards(); ++s) {
    shards_.push_back(std::make_unique<ShardStats>(ex.loop(s), s));
  }
}

LatencyTracker& RtStatsPlane::attach_group(RtGroup& g, std::string name,
                                           unsigned sample_shift) {
  if (name.empty()) name = "g" + std::to_string(trackers_.size());
  trackers_.emplace_back(shards_[g.shard()]->registry(), name, g.size(), sample_shift);
  g.attach_latency(&trackers_.back());
  return trackers_.back();
}

void RtStatsPlane::arm_flush(std::size_t s) {
  // Runs on shard s's loop thread (via start()'s post, then re-armed from
  // the timer itself). The plane outlives Executor::stop(), so `this` stays
  // valid for every firing; closures pending at teardown are destroyed
  // unrun with the loop.
  const std::int64_t interval_ns = cfg_.flush_interval * 1000;
  ex_.loop(s).add_timer(EventLoop::now_ns() + interval_ns, [this, s] {
    shards_[s]->flush();
    arm_flush(s);
  });
}

void RtStatsPlane::start() {
  for (auto& st : shards_) {
    if (!st->sealed()) st->seal();
  }
  started_ = true;
  if (!ex_.running()) return;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ex_.loop(s).post([this, s] {
      shards_[s]->flush();
      arm_flush(s);
    });
  }
}

void RtStatsPlane::flush_all() {
  for (auto& st : shards_) {
    if (!st->sealed()) st->seal();
    st->flush();
  }
}

std::uint64_t RtStatsPlane::t_us() const {
  if (transport_ == nullptr) return 0;
  const Time t = transport_->now();
  return static_cast<std::uint64_t>(t < 0 ? 0 : t);
}

std::string RtStatsPlane::backend() const {
  return transport_ == nullptr ? "none" : transport_->backend_name();
}

std::vector<StatsSnapshot> RtStatsPlane::collect() const {
  const std::uint64_t t = t_us();
  std::vector<StatsSnapshot> out;
  out.reserve(shards_.size());
  for (const auto& st : shards_) {
    StatsSnapshot snap;
    st->snapshot(snap, t);
    out.push_back(std::move(snap));
  }
  return out;
}

StatsSnapshot RtStatsPlane::transport_snapshot() const {
  StatsSnapshot snap;
  snap.source = "transport";
  snap.t_us = t_us();
  if (transport_ != nullptr) {
    snap.scalars.push_back({"rt.net.sent", transport_->packets_sent()});
    snap.scalars.push_back({"rt.net.delivered", transport_->packets_delivered()});
    snap.scalars.push_back({"rt.net.dropped", transport_->packets_dropped()});
  }
  return snap;
}

}  // namespace msw
