#include "rt/stats/latency.hpp"

namespace msw {

LatencyTracker::LatencyTracker(MetricsRegistry& reg, const std::string& name,
                               std::size_t fanout, unsigned sample_shift)
    : name_(name),
      hist_(reg.histogram("rt.latency_us." + name)),
      untracked_(reg.counter("rt.latency.untracked." + name)),
      fanout_(static_cast<std::uint32_t>(fanout)),
      sample_mask_((std::uint64_t{1} << sample_shift) - 1),
      slots_(kSlots) {}

void LatencyTracker::on_send(std::uint32_t sender, std::uint64_t seq, Time t_us) {
  if (!sampled(seq)) return;
  const std::uint64_t k = key(sender, seq);
  const std::size_t base = index(k);
  Slot* victim = nullptr;
  for (std::size_t i = 0; i < kProbe; ++i) {
    Slot& s = slots_[(base + i) & (kSlots - 1)];
    if (s.remaining == 0) {
      s = Slot{k, t_us, fanout_};
      ++open_count_;
      return;
    }
    if (victim == nullptr || s.t_send < victim->t_send) victim = &s;
  }
  // Probe window full: evict the oldest stamp. Its remaining deliveries
  // will miss and be counted as untracked; open_count_ is unchanged (one
  // open entry replaced by another).
  *victim = Slot{k, t_us, fanout_};
}

void LatencyTracker::on_deliver(std::uint32_t sender, std::uint64_t seq, Time t_us) {
  if (!sampled(seq)) return;
  const std::uint64_t k = key(sender, seq);
  const std::size_t base = index(k);
  for (std::size_t i = 0; i < kProbe; ++i) {
    Slot& s = slots_[(base + i) & (kSlots - 1)];
    if (s.remaining != 0 && s.key == k) {
      const Time delta = t_us - s.t_send;
      hist_.record(static_cast<std::uint64_t>(delta < 0 ? 0 : delta));
      if (--s.remaining == 0) --open_count_;
      return;
    }
  }
  untracked_.inc();
}

}  // namespace msw
