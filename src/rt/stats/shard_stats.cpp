#include "rt/stats/shard_stats.hpp"

#include <bit>

namespace msw {
namespace {

/// Slots a registry entry occupies in the flat publication image.
std::size_t slots_for(const MetricsRegistry& reg, const MetricsRegistry::Entry& e) {
  if (reg.histogram_of(e) != nullptr) {
    return 4 + MetricsRegistry::Histogram::kBuckets;  // count, sum, min, max, buckets
  }
  if (reg.gauge_of(e) != nullptr) return 2;  // value, max
  return 1;
}

}  // namespace

ShardStats::ShardStats(EventLoop& loop, std::size_t shard) : loop_(loop), shard_(shard) {
  reg_.attach_counter("rt.loop.tasks", &m_tasks_);
  reg_.attach_counter("rt.loop.timers_fired", &m_timers_);
  reg_.attach_counter("rt.loop.wakeups", &m_wakeups_);
  reg_.attach_counter("rt.loop.inbox_hwm", &m_inbox_hwm_);
  inbox_depth_ = &reg_.gauge("rt.loop.inbox_depth");
  timer_heap_ = &reg_.gauge("rt.loop.timer_heap");
  lag_us_ = &reg_.histogram("rt.loop.lag_us");
  loop_.set_observer(this);
}

void ShardStats::seal() {
  slots_ = 0;
  for (const auto& e : reg_.entries()) slots_ += slots_for(reg_, e);
  scratch_.assign(slots_, 0);
  buf_.resize(slots_);
  sealed_ = true;
}

void ShardStats::encode() {
  std::size_t o = 0;
  for (const auto& e : reg_.entries()) {
    if (const auto* h = reg_.histogram_of(e)) {
      scratch_[o++] = h->count();
      scratch_[o++] = h->sum();
      scratch_[o++] = h->min();
      scratch_[o++] = h->max();
      const std::uint64_t* b = h->buckets();
      for (std::size_t i = 0; i < MetricsRegistry::Histogram::kBuckets; ++i) {
        scratch_[o++] = b[i];
      }
    } else if (const auto* g = reg_.gauge_of(e)) {
      scratch_[o++] = std::bit_cast<std::uint64_t>(g->value());
      scratch_[o++] = std::bit_cast<std::uint64_t>(g->max());
    } else {
      scratch_[o++] = static_cast<std::uint64_t>(reg_.value_of(e));
    }
  }
}

void ShardStats::flush() {
  m_tasks_ = loop_.tasks_run();
  m_timers_ = loop_.timers_fired();
  m_wakeups_ = loop_.wakeups();
  const std::int64_t hwm = loop_.inbox_depth_hwm();
  m_inbox_hwm_ = static_cast<std::uint64_t>(hwm < 0 ? 0 : hwm);
  const std::int64_t depth = loop_.inbox_depth();
  inbox_depth_->set(depth < 0 ? 0 : depth);
  timer_heap_->set(static_cast<std::int64_t>(loop_.timer_heap_size()));
  encode();
  buf_.publish(scratch_.data(), slots_);
}

bool ShardStats::snapshot(StatsSnapshot& out, std::uint64_t t_us) const {
  out = StatsSnapshot{};
  out.source = source();
  out.t_us = t_us;
  std::vector<std::uint64_t> flat(slots_, 0);
  const bool clean = buf_.read(flat.data(), slots_);
  std::size_t o = 0;
  for (const auto& e : reg_.entries()) {
    if (reg_.histogram_of(e) != nullptr) {
      const std::uint64_t count = flat[o];
      const std::uint64_t sum = flat[o + 1];
      const std::uint64_t min = flat[o + 2];
      const std::uint64_t max = flat[o + 3];
      out.hists.push_back(
          summarize_hist_buckets(e.name, &flat[o + 4], count, sum, min, max));
      o += 4 + MetricsRegistry::Histogram::kBuckets;
    } else if (reg_.gauge_of(e) != nullptr) {
      const auto v = std::bit_cast<std::int64_t>(flat[o]);
      const auto m = std::bit_cast<std::int64_t>(flat[o + 1]);
      out.scalars.push_back({e.name, static_cast<std::uint64_t>(v < 0 ? 0 : v)});
      out.scalars.push_back({e.name + ".max", static_cast<std::uint64_t>(m < 0 ? 0 : m)});
      o += 2;
    } else {
      out.scalars.push_back({e.name, flat[o]});
      o += 1;
    }
  }
  return clean;
}

}  // namespace msw
