#include "rt/sim_transport.hpp"

namespace msw {

TransportTimer SimTransport::set_timer(NodeId /*node*/, Duration delay,
                                       std::function<void()> fn) {
  const std::uint64_t tid = next_timer_++;
  EventId ev = net_.scheduler().after(delay, [this, tid, fn = std::move(fn)]() {
    timers_.erase(tid);
    fn();
  });
  timers_.emplace(tid, ev);
  return TransportTimer{tid};
}

void SimTransport::cancel_timer(NodeId /*node*/, TransportTimer timer) {
  auto it = timers_.find(timer.v);
  if (it == timers_.end()) return;
  net_.scheduler().cancel(it->second);
  timers_.erase(it);
}

}  // namespace msw
