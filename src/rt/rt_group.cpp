#include "rt/rt_group.hpp"

#include <future>

#include "rt/stats/latency.hpp"
#include "telemetry/hub.hpp"
#include "util/rng.hpp"

namespace msw {

RtGroup::RtGroup(ThreadedTransport& transport, std::size_t n, const LayerFactory& factory,
                 std::size_t shard, bool capture_trace, TelemetryHub* hub, std::uint64_t seed)
    : transport_(transport), shard_(shard) {
  if (hub != nullptr) {
    // Runtime runs stamp telemetry with wall-clock microseconds since
    // transport construction. Attach before any tracer exists so every
    // event carries the wall domain.
    hub->attach_clock(&transport, ClockDomain::kWall);
  }
  members_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) members_.push_back(transport.add_node(shard));
  if (hub != nullptr) {
    // Shard pinning feeds the Chrome exporter's per-shard flight view.
    for (const NodeId m : members_) {
      hub->set_node_shard(m.v, static_cast<std::uint32_t>(shard));
    }
  }
  Rng root(seed);
  stacks_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    stacks_.push_back(std::make_unique<Stack>(transport, members_[i], members_,
                                              factory(members_[i], members_), root.split(),
                                              capture_trace ? &capture_ : nullptr, hub));
  }
}

RtGroup::~RtGroup() = default;

void RtGroup::post(std::function<void()> fn) {
  transport_.post(members_.front(), std::move(fn));
}

void RtGroup::call(std::function<void()> fn) {
  EventLoop& loop = transport_.loop_of(members_.front());
  // Inline when waiting would deadlock: already on the shard thread, or the
  // executor is stopped (wiring phase / post-join teardown, where the
  // caller is the only thread touching the stacks anyway).
  if (loop.on_loop_thread() || !transport_.executor().running()) {
    fn();
    return;
  }
  std::promise<void> done;
  std::future<void> wait = done.get_future();
  loop.post([&fn, &done] {
    fn();
    done.set_value();
  });
  wait.get();
}

void RtGroup::start() {
  call([this] {
    for (auto& s : stacks_) s->start();
  });
}

void RtGroup::attach_latency(LatencyTracker* t) {
#if MSW_RT_STATS_ENABLED
  latency_ = t;
  for (auto& s : stacks_) {
    // The tracker's sample mask gates the hook inline inside Stack, so an
    // unsampled delivery (the common case at sample_shift > 0) costs one
    // compare and never reaches this lambda or the clock read.
    s->set_on_deliver(
        [this](const MsgId& id, std::span<const Byte>) {
          if (id.kind == MsgId::Kind::kData) {
            latency_->on_deliver(id.sender, id.seq, transport_.now());
          }
        },
        t->sample_mask());
  }
#else
  (void)t;
#endif
}

void RtGroup::send(std::size_t i, Bytes body) {
  post([this, i, body = std::move(body)]() mutable {
#if MSW_RT_STATS_ENABLED
    if (latency_ != nullptr) {
      // stacks_[i]->sent() is the seq the imminent send will be assigned;
      // stamping here (on the shard thread, just before submission) keeps
      // the measurement at the Endpoint boundary without touching Stack.
      const std::uint64_t seq = stacks_[i]->sent();
      if (latency_->sampled(seq)) {
        latency_->on_send(members_[i].v, seq, transport_.now());
      }
    }
#endif
    stacks_[i]->send(std::move(body));
  });
}

void RtGroup::send_batch(std::size_t i, std::vector<Bytes> bodies) {
  post([this, i, bodies = std::move(bodies)]() mutable {
#if MSW_RT_STATS_ENABLED
    if (latency_ != nullptr) {
      const std::uint64_t base = stacks_[i]->sent();
      const Time now = transport_.now();
      for (std::size_t k = 0; k < bodies.size(); ++k) {
        if (latency_->sampled(base + k)) {
          latency_->on_send(members_[i].v, base + k, now);
        }
      }
    }
#endif
    stacks_[i]->send_batch(std::move(bodies));
  });
}

std::uint64_t RtGroup::total_delivered() {
  std::uint64_t n = 0;
  call([this, &n] {
    for (auto& s : stacks_) n += s->delivered();
  });
  return n;
}

std::uint64_t RtGroup::total_sent() {
  std::uint64_t n = 0;
  call([this, &n] {
    for (auto& s : stacks_) n += s->sent();
  });
  return n;
}

std::uint64_t RtGroup::delivered_at(std::size_t i) {
  std::uint64_t n = 0;
  call([this, i, &n] { n = stacks_[i]->delivered(); });
  return n;
}

}  // namespace msw
