// Transport backend over the deterministic discrete-event simulator.
//
// A pure forwarding shim: every operation maps 1:1 onto the call the
// pre-runtime code made directly on Network/Scheduler, in the same order,
// drawing the same RNG streams — so a stack built over a SimTransport
// produces byte-identical traces to one built over the Network, and the
// simulator remains the reproducible substrate for tests and fuzzing.
#pragma once

#include <unordered_map>

#include "rt/transport.hpp"
#include "sim/scheduler.hpp"

namespace msw {

class SimTransport final : public Transport {
 public:
  explicit SimTransport(Network& net) : net_(net) {}

  NodeId add_node(std::size_t /*shard_hint*/ = 0) override { return net_.add_node(); }

  void set_handler(NodeId node, PacketHandler handler) override {
    net_.set_handler(node, std::move(handler));
  }
  void set_run_handler(NodeId node, PacketRunHandler handler) override {
    net_.set_run_handler(node, std::move(handler));
  }

  void send(NodeId from, NodeId to, Payload data) override {
    net_.send(from, to, std::move(data));
  }
  void multicast(NodeId from, const std::vector<NodeId>& to, Payload data) override {
    net_.multicast(from, to, std::move(data));
  }
  void multicast_run(NodeId from, const std::vector<NodeId>& to,
                     std::span<const Payload> msgs) override {
    net_.multicast_run(from, to, msgs);
  }

  TransportTimer set_timer(NodeId /*node*/, Duration delay, std::function<void()> fn) override;
  void cancel_timer(NodeId node, TransportTimer timer) override;

  Time now() const override { return net_.scheduler().now(); }
  void consume_cpu(NodeId node, Duration d) override { net_.consume_cpu(node, d); }
  TickArena* tick_arena() override { return &net_.scheduler().tick_arena(); }
  bool deterministic() const override { return true; }

  Network& network() { return net_; }

 private:
  Network& net_;
  std::uint64_t next_timer_ = 1;
  std::unordered_map<std::uint64_t, EventId> timers_;
};

}  // namespace msw
