// Shared machinery of the real (threaded) transport backends.
//
// Owns the node table (handler + shard pinning), implements timers and the
// monotonic wall clock over the executor's event loops, and counts the
// transport-level traffic. Derived backends supply only the medium: how a
// payload physically moves from one node to another (in-process MPSC post,
// or a UDP datagram).
//
// The wall clock doubles as the TelemetryClock for runtime runs: a
// TelemetryHub attached to it stamps events with wall-clock microseconds
// since transport construction, next to (in the same schema as) the sim
// domain's simulated-microsecond stamps.
#pragma once

#include <atomic>
#include <deque>

#include "rt/executor.hpp"
#include "rt/transport.hpp"
#include "telemetry/clock.hpp"

namespace msw {

class ThreadedTransport : public Transport, public TelemetryClock {
 public:
  explicit ThreadedTransport(Executor& ex);

  /// Wiring phase only (single-threaded, before Executor::start).
  NodeId add_node(std::size_t shard_hint = 0) override;
  void set_handler(NodeId node, PacketHandler handler) override;

  TransportTimer set_timer(NodeId node, Duration delay, std::function<void()> fn) override;
  void cancel_timer(NodeId node, TransportTimer timer) override;

  /// Monotonic wall-clock microseconds since transport construction.
  Time now() const override;
  Time telemetry_now() const override { return now(); }
  bool deterministic() const override { return false; }

  /// Short backend tag for labeling stats/bench output ("loopback", "udp").
  virtual const char* backend_name() const = 0;

  Executor& executor() { return ex_; }
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t shard_of(NodeId node) const { return nodes_[node.v].shard; }
  EventLoop& loop_of(NodeId node) { return ex_.loop(nodes_[node.v].shard); }

  /// Run `fn` on the node's shard thread (FIFO with its packet/timer work).
  void post(NodeId node, EventLoop::Task fn) { loop_of(node).post(std::move(fn)); }

  // Traffic counters (relaxed atomics; exact after the executor stops).
  std::uint64_t packets_sent() const { return sent_.load(std::memory_order_relaxed); }
  std::uint64_t packets_delivered() const { return delivered_.load(std::memory_order_relaxed); }
  std::uint64_t packets_dropped() const { return dropped_.load(std::memory_order_relaxed); }

 protected:
  struct NodeRec {
    PacketHandler handler;
    std::size_t shard = 0;
  };

  /// Invoke the destination's handler. Must run on the destination's shard
  /// thread; derived backends arrange that (MPSC post / socket ingress).
  void deliver(NodeId dst, Packet p) {
    NodeRec& rec = nodes_[dst.v];
    if (!rec.handler) return;
    delivered_.fetch_add(1, std::memory_order_relaxed);
    rec.handler(std::move(p));
  }

  /// Backend hook: the node exists and is pinned; create its medium state.
  virtual void on_node_added(NodeId node) { (void)node; }

  void count_sent(std::uint64_t n = 1) { sent_.fetch_add(n, std::memory_order_relaxed); }
  void count_dropped(std::uint64_t n = 1) { dropped_.fetch_add(n, std::memory_order_relaxed); }

  Executor& ex_;
  std::deque<NodeRec> nodes_;  // deque: references stay stable as nodes append

 private:
  std::int64_t t0_ns_;
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace msw
