#include "rt/loopback_transport.hpp"

namespace msw {

void LoopbackTransport::send(NodeId from, NodeId to, Payload data) {
  count_sent();
  post(to, [this, from, to, data = std::move(data)]() mutable {
    deliver(to, Packet{from, std::move(data)});
  });
}

void LoopbackTransport::multicast(NodeId from, const std::vector<NodeId>& to, Payload data) {
  count_sent(to.size());
  for (const NodeId dst : to) {
    // The copy bumps the shared refcount; all destinations alias one buffer.
    post(dst, [this, from, dst, data]() mutable {
      deliver(dst, Packet{from, std::move(data)});
    });
  }
}

}  // namespace msw
