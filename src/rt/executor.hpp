// Sharded multithreaded executor: N worker threads, each running one
// EventLoop. A group of protocol stacks is pinned wholesale to one shard
// (Transport::add_node's shard_hint), so every callback into a group —
// packet, timer, injected task — runs on that group's single thread, and
// the layer code keeps the same single-threaded semantics it has in the
// simulator. Shards scale across groups, not within one: cross-shard
// traffic flows through each loop's lock-free MPSC inbox.
#pragma once

#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "rt/event_loop.hpp"

namespace msw {

class Executor {
 public:
  /// Creates `shards` event loops (>= 1) but no threads yet; wiring (node
  /// creation, fd registration) happens single-threaded before start().
  explicit Executor(std::size_t shards);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  std::size_t shards() const { return loops_.size(); }
  EventLoop& loop(std::size_t shard) { return *loops_[shard]; }

  /// Spawn one worker thread per shard.
  void start();

  /// Stop every loop and join the workers. Idempotent. After this the
  /// loops' state may be inspected or torn down single-threaded.
  void stop();

  bool running() const { return running_; }

 private:
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<std::thread> threads_;
  bool running_ = false;
};

}  // namespace msw
