#include "rt/udp_transport.hpp"

#include <fcntl.h>
#include <sched.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace msw {

namespace {

/// Largest datagram we attempt; beyond this the copy is dropped (a real
/// UDP stack would EMSGSIZE). Far above any frame the layers emit.
constexpr std::size_t kMaxDatagram = 65000;

int make_bound_socket(int rcvbuf, int sndbuf, sockaddr_in* bound) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof sndbuf);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof *bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(bound), &len) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

UdpTransport::UdpTransport(Executor& ex, UdpConfig cfg) : ThreadedTransport(ex), cfg_(cfg) {}

UdpTransport::~UdpTransport() {
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

bool UdpTransport::available() {
  sockaddr_in bound{};
  const int fd = make_bound_socket(1 << 16, 1 << 16, &bound);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

void UdpTransport::on_node_added(NodeId node) {
  sockaddr_in bound{};
  const int fd = make_bound_socket(cfg_.rcvbuf_bytes, cfg_.sndbuf_bytes, &bound);
  if (fd < 0) {
    throw std::runtime_error(std::string("UdpTransport: cannot create/bind UDP socket: ") +
                             std::strerror(errno));
  }
  fds_.push_back(fd);
  addrs_.push_back(bound);
  const std::uint16_t port = ntohs(bound.sin_port);
  ports_.push_back(port);
  port_to_node_.emplace(port, node.v);
  loop_of(node).add_fd(fd, [this, node] { drain_socket(node); });
}

void UdpTransport::send_datagram(NodeId from, NodeId to, std::span<const Byte> bytes) {
  count_sent();
  if (bytes.size() > kMaxDatagram) {
    count_dropped();
    return;
  }
  const sockaddr_in& dst = addrs_[to.v];
  for (int attempt = 0; attempt <= cfg_.send_retries; ++attempt) {
    const ssize_t n =
        ::sendto(fds_[from.v], bytes.data(), bytes.size(), 0,
                 reinterpret_cast<const sockaddr*>(&dst), sizeof dst);
    if (n >= 0) return;
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != ENOBUFS) break;
    ::sched_yield();  // transient: give the receiver a chance to drain
  }
  count_dropped();
}

void UdpTransport::send(NodeId from, NodeId to, Payload data) {
  send_datagram(from, to, data.view());
}

void UdpTransport::multicast(NodeId from, const std::vector<NodeId>& to, Payload data) {
  // Loopback "hardware multicast": one serialization of the bytes, one
  // sendto per destination (the kernel has no group fan-out for us here).
  const std::span<const Byte> bytes = data.view();
  for (const NodeId dst : to) send_datagram(from, dst, bytes);
}

void UdpTransport::drain_socket(NodeId node) {
  Byte buf[65536];
  const int fd = fds_[node.v];
  for (;;) {
    sockaddr_in src{};
    socklen_t src_len = sizeof src;
    const ssize_t n = ::recvfrom(fd, buf, sizeof buf, 0,
                                 reinterpret_cast<sockaddr*>(&src), &src_len);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      return;  // transient socket error: treat as an empty drain
    }
    const auto it = port_to_node_.find(ntohs(src.sin_port));
    if (it == port_to_node_.end()) continue;  // stray datagram, not ours
    Bytes bytes(buf, buf + n);
    deliver(node, Packet{NodeId{it->second}, Payload(std::move(bytes))});
  }
}

}  // namespace msw
