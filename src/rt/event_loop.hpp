// One executor shard's engine: an epoll event loop owning a lock-free MPSC
// task inbox, a one-shot timer heap, and any number of readable file
// descriptors (UDP sockets, the wakeup eventfd).
//
// Threading model:
//   - post() is the only cross-thread entry point: any thread may enqueue
//     a task; the loop thread dequeues and runs it. The inbox is a Vyukov
//     intrusive MPSC queue — producers contend on one atomic exchange,
//     the consumer never takes a lock.
//   - Everything else (timers, fd registration after start) belongs to the
//     loop thread, or to the single-threaded wiring phase before run() /
//     after the thread is joined. This mirrors the per-node
//     single-threadedness the protocol layers rely on: a shard's nodes
//     run only here, so their timers never need locking.
//   - The loop parks in epoll_wait when idle; producers wake it through an
//     eventfd, but only when the consumer has announced it is (or may be
//     about to start) sleeping — the loaded steady state posts with no
//     syscall at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

// Compile-time gate for the hot-path health instrumentation (drain-pass
// backlog probe, timer-lag observer calls). CMake defines it 0/1 from the
// MSW_RT_STATS option; OFF leaves the loop byte-for-byte at its PR-8 cost
// so the stats-overhead CI guard measures exactly the instrumentation
// delta. All probes are consumer-side: post() is identical either way.
#ifndef MSW_RT_STATS_ENABLED
#define MSW_RT_STATS_ENABLED 1
#endif

namespace msw {

/// Loop-health callback surface: installed during the single-threaded
/// wiring phase, invoked on the loop thread only. The rt stats plane's
/// per-shard registry implements it; keeping it an interface avoids an
/// rt -> rt/stats dependency cycle.
class LoopObserver {
 public:
  virtual ~LoopObserver() = default;
  /// A timer fired `lag_ns` after its scheduled deadline (>= 0).
  virtual void on_timer_lag(std::int64_t lag_ns) = 0;
};

class EventLoop {
 public:
  using Task = std::function<void()>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Enqueue a task for the loop thread. Thread-safe, lock-free, allocates
  /// one inbox node. Tasks run in FIFO order per producer (and in a single
  /// global order — the queue is totally ordered).
  void post(Task t);

  /// One-shot timer at an absolute CLOCK_MONOTONIC deadline (ns). Loop
  /// thread (or wiring phase) only. Returns a token for cancel_timer; 0 is
  /// never returned.
  std::uint64_t add_timer(std::int64_t deadline_ns, Task t);

  /// Drop a pending timer. Unknown/fired tokens are a no-op. Loop thread
  /// (or wiring phase / post-join teardown) only.
  void cancel_timer(std::uint64_t token);

  /// Watch `fd` for readability; `on_readable` runs on the loop thread
  /// whenever epoll reports it. Wiring phase or loop thread only.
  void add_fd(int fd, Task on_readable);
  void remove_fd(int fd);

  /// Run until stop(). Call from exactly one thread (the shard thread).
  void run();

  /// Ask the loop to exit; thread-safe, returns immediately.
  void stop();

  /// CLOCK_MONOTONIC now, nanoseconds.
  static std::int64_t now_ns();

  /// True when called from inside run() on the loop thread. Any thread may
  /// ask (RtGroup::call uses it to decide inline vs. post-and-wait), so the
  /// id is atomic: acquire pairs with run()'s release publication.
  bool on_loop_thread() const {
    return loop_thread_.load(std::memory_order_acquire) == std::this_thread::get_id();
  }

  /// Install the loop-health observer. Wiring phase only (before run()).
  void set_observer(LoopObserver* obs) { observer_ = obs; }

  // Observability (read from the loop thread, or after the thread joined).
  std::uint64_t tasks_run() const { return tasks_run_; }
  std::uint64_t timers_fired() const { return timers_fired_; }
  std::uint64_t wakeups() const { return wakeups_; }
  /// Pending + in-flight timers (live heap entries; cancelled-but-unpopped
  /// tokens are excluded). Loop thread or post-join only.
  std::size_t timer_heap_size() const { return timers_.size(); }

  // Consumer-side backlog probes, populated only when MSW_RT_STATS_ENABLED.
  // Producers pay nothing for these: the loop counts what it drains, so the
  // numbers are per-pass backlog observations, not an exact queue size.
  /// Tasks drained in the most recent completed drain pass — the loop's own
  /// view of how far behind it was when it came around. Saturates at the
  /// per-iteration drain cap under overload. Loop thread or post-join only.
  std::int64_t inbox_depth() const { return inbox_last_; }
  /// High-water mark of inbox_depth(). Loop thread or post-join only.
  std::int64_t inbox_depth_hwm() const { return inbox_hwm_; }

 private:
  struct TaskNode {
    std::atomic<TaskNode*> next{nullptr};
    Task fn;
  };
  struct TimerEntry {
    std::int64_t deadline_ns;
    std::uint64_t token;
    bool operator>(const TimerEntry& o) const {
      if (deadline_ns != o.deadline_ns) return deadline_ns > o.deadline_ns;
      return token > o.token;  // insertion order tiebreak: tokens ascend
    }
  };

  /// Dequeue one task; returns nullptr when empty (or when a producer is
  /// mid-push — the item will be visible on the next attempt).
  TaskNode* pop_node();
  bool inbox_empty_hint() const;
  void fire_due_timers(std::int64_t now);
  int next_timeout_ms(std::int64_t now) const;
  void drain_wake_eventfd();

  // MPSC inbox (Vyukov): producers exchange head_, consumer chases tail_.
  std::atomic<TaskNode*> head_;
  TaskNode* tail_;  // consumer-only
  TaskNode stub_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> sleeping_{false};

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::unordered_map<int, Task> fd_handlers_;

  std::priority_queue<TimerEntry, std::vector<TimerEntry>, std::greater<TimerEntry>> timer_heap_;
  std::unordered_map<std::uint64_t, Task> timers_;  // live timers by token
  std::uint64_t next_timer_token_ = 1;

  std::atomic<std::thread::id> loop_thread_{};
  std::uint64_t tasks_run_ = 0;
  std::uint64_t timers_fired_ = 0;
  std::uint64_t wakeups_ = 0;

  LoopObserver* observer_ = nullptr;  // wiring-phase set, loop-thread use
  std::int64_t inbox_last_ = 0;       // consumer-only
  std::int64_t inbox_hwm_ = 0;        // consumer-only
};

}  // namespace msw
