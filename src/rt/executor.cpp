#include "rt/executor.hpp"

namespace msw {

Executor::Executor(std::size_t shards) {
  loops_.reserve(shards == 0 ? 1 : shards);
  for (std::size_t i = 0; i < (shards == 0 ? 1 : shards); ++i) {
    loops_.push_back(std::make_unique<EventLoop>());
  }
}

Executor::~Executor() { stop(); }

void Executor::start() {
  if (running_) return;
  running_ = true;
  threads_.reserve(loops_.size());
  for (auto& loop : loops_) {
    threads_.emplace_back([l = loop.get()] { l->run(); });
  }
}

void Executor::stop() {
  if (!running_) return;
  for (auto& loop : loops_) loop->stop();
  for (auto& t : threads_) t.join();
  threads_.clear();
  running_ = false;
}

}  // namespace msw
