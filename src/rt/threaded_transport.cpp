#include "rt/threaded_transport.hpp"

namespace msw {

ThreadedTransport::ThreadedTransport(Executor& ex) : ex_(ex), t0_ns_(EventLoop::now_ns()) {}

NodeId ThreadedTransport::add_node(std::size_t shard_hint) {
  const NodeId id{static_cast<std::uint32_t>(nodes_.size())};
  NodeRec rec;
  rec.shard = shard_hint % ex_.shards();
  nodes_.push_back(std::move(rec));
  on_node_added(id);
  return id;
}

void ThreadedTransport::set_handler(NodeId node, PacketHandler handler) {
  nodes_[node.v].handler = std::move(handler);
}

TransportTimer ThreadedTransport::set_timer(NodeId node, Duration delay,
                                            std::function<void()> fn) {
  if (delay < 0) delay = 0;
  const std::int64_t deadline = EventLoop::now_ns() + delay * 1000;  // µs -> ns
  return TransportTimer{loop_of(node).add_timer(deadline, std::move(fn))};
}

void ThreadedTransport::cancel_timer(NodeId node, TransportTimer timer) {
  if (!timer.valid()) return;
  loop_of(node).cancel_timer(timer.v);
}

Time ThreadedTransport::now() const {
  return (EventLoop::now_ns() - t0_ns_) / 1000;  // ns -> µs
}

}  // namespace msw
