// Deterministic fault-injection plane.
//
// A FaultSchedule is declarative data: timed events (link cuts, partitions
// with heal, node crash/restart, jitter bursts) plus two continuous knobs
// (per-copy duplication and bounded reordering). A FaultPlane installs a
// schedule onto a Network: timed events run off the simulation scheduler,
// and the continuous knobs are applied per delivered copy through the
// Network's FaultInjector hook. All randomness comes from per-link streams
// forked off the plane's seeded Rng, so a schedule replayed under the same
// seed perturbs the simulation identically — the property the determinism
// tests and the fuzzer's minimal reproducers rely on.
//
// Schedules serialize to a compact one-line string (to_string/parse) so a
// fuzzer failure is reproducible from a command line:
//   fuzz_switch --seed 42 --schedule 'dup=0.05@40000;crash@800000:1;restart@1400000:1'
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace msw {

struct FaultEvent {
  enum class Kind : std::uint8_t {
    kLinkDown = 0,  // cut one directed link a -> b
    kLinkUp,        // restore it
    kPartition,     // isolate the nodes in `mask` from the rest (both ways)
    kHeal,          // undo a partition with the same mask
    kCrash,         // node a: down + receive queue lost
    kRestart,       // node a: back up
    kJitterBurst,   // for `duration`, every copy gains uniform [0, magnitude]
  };

  Kind kind = Kind::kLinkDown;
  Time at = 0;
  std::uint32_t a = 0;  // kLinkDown/kLinkUp: source; kCrash/kRestart: node
  std::uint32_t b = 0;  // kLinkDown/kLinkUp: destination
  std::uint64_t mask = 0;       // kPartition/kHeal: bit i == node i isolated
  Duration duration = 0;        // kJitterBurst: window length
  Duration magnitude = 0;       // kJitterBurst: max extra delay per copy
};

struct FaultSchedule {
  std::vector<FaultEvent> events;
  /// Probability that a surviving copy is delivered twice.
  double dup_prob = 0.0;
  /// The duplicate arrives up to this much after the original.
  Duration dup_delay_max = 40 * kMillisecond;
  /// Probability that a copy is held back by uniform [0, reorder_delay_max]
  /// — later packets on the link overtake it (bounded reordering).
  double reorder_prob = 0.0;
  Duration reorder_delay_max = 20 * kMillisecond;

  bool empty() const { return events.empty() && dup_prob == 0.0 && reorder_prob == 0.0; }
  /// Events plus one unit for each active continuous knob — the size the
  /// fuzzer's shrinker minimizes and reports.
  std::size_t weight() const {
    return events.size() + (dup_prob > 0.0 ? 1 : 0) + (reorder_prob > 0.0 ? 1 : 0);
  }

  /// Compact one-line form, parseable by parse(). Events are ';'-separated;
  /// an empty schedule renders as "none".
  std::string to_string() const;
  /// Inverse of to_string(); nullopt on malformed input.
  static std::optional<FaultSchedule> parse(std::string_view s);
};

/// Randomized-schedule generator for the fuzzer and robustness tests.
/// Every disruptive event is paired with its recovery (link up, heal,
/// restart) strictly before `horizon`, so a run given enough drain time
/// afterwards faces a healed network.
struct FaultGenOptions {
  std::size_t max_link_cuts = 2;
  std::size_t max_partitions = 1;
  std::size_t max_crashes = 0;  // off by default: opt in (fuzz_switch --crash)
  std::size_t max_jitter_bursts = 2;
  double dup_prob_max = 0.08;
  double reorder_prob_max = 0.15;
  Duration max_outage = 500 * kMillisecond;  // longest down/partition window
};

FaultSchedule generate_fault_schedule(Rng& rng, std::size_t n_nodes, Time horizon,
                                      const FaultGenOptions& opts = {});

/// Binds a FaultSchedule to a Network. install() arms the timed events and
/// registers the per-copy hook; the plane must outlive the simulation run
/// (the destructor cancels pending events and unregisters the hook).
class FaultPlane : public FaultInjector {
 public:
  FaultPlane(Network& net, Rng rng, FaultSchedule schedule);
  ~FaultPlane() override;

  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  void install();

  const FaultSchedule& schedule() const { return schedule_; }

  CopyPlan on_copy(NodeId from, NodeId to, Time now) override;

 private:
  void apply(const FaultEvent& e);
  Rng& link_stream(NodeId from, NodeId to);

  Network& net_;
  Rng rng_;
  std::uint64_t link_seed_base_;
  FaultSchedule schedule_;
  bool installed_ = false;
  std::vector<EventId> armed_;
  /// Active jitter-burst windows: (end time, max extra delay).
  std::vector<std::pair<Time, Duration>> bursts_;
  std::unordered_map<std::uint64_t, Rng> link_rngs_;
};

}  // namespace msw
