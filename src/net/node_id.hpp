// Strongly-typed process/node identifier.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace msw {

/// Identifies a simulated node (== a group member / process). Values are
/// dense indices assigned by the Network in creation order, which lets
/// components index per-node arrays directly.
struct NodeId {
  std::uint32_t v = 0;

  auto operator<=>(const NodeId&) const = default;
};

inline std::string to_string(NodeId id) { return "n" + std::to_string(id.v); }

}  // namespace msw

template <>
struct std::hash<msw::NodeId> {
  std::size_t operator()(const msw::NodeId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.v);
  }
};
