// Per-node transport handle.
//
// An Endpoint binds one NodeId to its medium and owns that node's timer
// registrations. Protocol stacks talk to the world below them exclusively
// through an Endpoint, which keeps both the Network and Transport
// interfaces free of per-node state.
//
// Two constructions, one behavior:
//   - Endpoint(Network&, id): the historical sim-only path. Calls go
//     straight to the Network/Scheduler — bit-for-bit the pre-runtime
//     behavior, no virtual dispatch added on the data plane.
//   - Endpoint(Transport&, id): the runtime boundary. Calls go through the
//     Transport interface, so the same stack runs over the sim adapter,
//     the threaded loopback backend, or real UDP sockets.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "net/node_id.hpp"

namespace msw {

class Transport;
struct TransportTimer;

/// Handle for a pending timer; see Endpoint::set_timer.
struct TimerId {
  std::uint64_t v = 0;
  bool valid() const { return v != 0; }
  friend bool operator==(TimerId a, TimerId b) { return a.v == b.v; }
};

class Endpoint {
 public:
  Endpoint(Network& net, NodeId id);
  Endpoint(Transport& transport, NodeId id);
  ~Endpoint();

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  NodeId id() const { return id_; }

  /// The simulated network — sim-backed endpoints only (benches and tests
  /// reach through this for NetStats/partition control). Null otherwise.
  Network* network_or_null() { return net_; }
  Network& network() { return *net_; }

  /// The transport boundary, when constructed over one. Null on the
  /// historical Network path.
  Transport* transport() { return transport_; }

  Time now() const;

  void set_handler(PacketHandler handler);
  void set_run_handler(PacketRunHandler handler);

  void send(NodeId to, Payload data);
  void multicast(const std::vector<NodeId>& to, Payload data);
  void multicast_run(const std::vector<NodeId>& to, std::span<const Payload> msgs);

  /// Model protocol processing cost (sim charges the node's serial CPU;
  /// real transports do nothing — their processing time is real).
  void consume_cpu(Duration d);

  /// Per-tick allocator for batch paths, or nullptr when the medium has no
  /// deterministic tick (real transports).
  TickArena* tick_arena();

  /// One-shot timer. The callback is dropped (not fired) if cancelled or if
  /// the Endpoint is destroyed first.
  TimerId set_timer(Duration delay, std::function<void()> fn);
  void cancel_timer(TimerId id);
  void cancel_all_timers();

 private:
  Network* net_ = nullptr;        // exactly one of net_ / transport_ is set
  Transport* transport_ = nullptr;
  NodeId id_;
  std::uint64_t next_timer_ = 1;
  /// Sim path: values are Scheduler EventIds packed (slot | gen << 32).
  /// Transport path: values are TransportTimer tokens.
  std::unordered_map<std::uint64_t, std::uint64_t> timers_;
};

}  // namespace msw
