// Per-node transport handle.
//
// An Endpoint binds one NodeId to the Network and owns that node's timer
// registrations. Protocol stacks talk to the network exclusively through
// an Endpoint, which keeps the Network interface free of per-node state.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "net/node_id.hpp"

namespace msw {

/// Handle for a pending timer; see Endpoint::set_timer.
struct TimerId {
  std::uint64_t v = 0;
  bool valid() const { return v != 0; }
  friend bool operator==(TimerId a, TimerId b) { return a.v == b.v; }
};

class Endpoint {
 public:
  Endpoint(Network& net, NodeId id);
  ~Endpoint();

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  NodeId id() const { return id_; }
  Network& network() { return net_; }
  Time now() const { return net_.scheduler().now(); }

  void set_handler(PacketHandler handler) { net_.set_handler(id_, std::move(handler)); }
  void set_run_handler(PacketRunHandler handler) { net_.set_run_handler(id_, std::move(handler)); }

  void send(NodeId to, Payload data) { net_.send(id_, to, std::move(data)); }
  void multicast(const std::vector<NodeId>& to, Payload data) {
    net_.multicast(id_, to, std::move(data));
  }
  void multicast_run(const std::vector<NodeId>& to, std::span<const Payload> msgs) {
    net_.multicast_run(id_, to, msgs);
  }

  /// One-shot timer. The callback is dropped (not fired) if cancelled or if
  /// the Endpoint is destroyed first.
  TimerId set_timer(Duration delay, std::function<void()> fn);
  void cancel_timer(TimerId id);
  void cancel_all_timers();

 private:
  Network& net_;
  NodeId id_;
  std::uint64_t next_timer_ = 1;
  std::unordered_map<std::uint64_t, EventId> timers_;
};

}  // namespace msw
