// Network counters and a small statistical summary helper used by the
// benchmark harness (mean / percentiles of latency samples).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace msw {

struct NetStats {
  std::uint64_t unicasts_sent = 0;
  std::uint64_t multicasts_sent = 0;
  std::uint64_t copies_delivered = 0;
  std::uint64_t copies_dropped_loss = 0;
  std::uint64_t copies_dropped_link = 0;
  std::uint64_t copies_dropped_node = 0;
  std::uint64_t copies_dropped_fault = 0;  // injected drops (net/fault.hpp)
  std::uint64_t copies_duplicated = 0;     // injected duplicates
  std::uint64_t bytes_on_wire = 0;

  void reset() { *this = NetStats{}; }
  std::string summary() const;
};

/// Accumulates double-valued samples; computes order statistics on demand.
class Summary {
 public:
  void add(double v);
  void clear();

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;
  /// p in [0,100]; nearest-rank on the sorted samples.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool dirty_ = false;
};

}  // namespace msw
