// Network counters and a small statistical summary helper used by the
// benchmark harness (mean / percentiles of latency samples).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace msw {

class MetricsRegistry;

/// Accumulates double-valued samples; computes order statistics on demand.
class Summary {
 public:
  void add(double v);
  void clear();

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;
  /// p in [0,100]; linear interpolation between the order statistics (the
  /// quantile at rank (n-1)p/100), so small sample counts no longer suffer
  /// the nearest-rank step bias. percentile(50) of {10,20} is 15, not 10.
  double percentile(double p) const;
  /// Nearest-rank percentile (the pre-interpolation behaviour), kept for
  /// callers that want an actually-observed sample back.
  double percentile_nearest(double p) const;
  double median() const { return percentile(50.0); }
  double p99() const { return percentile(99.0); }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool dirty_ = false;
};

struct NetStats {
  std::uint64_t unicasts_sent = 0;
  std::uint64_t multicasts_sent = 0;
  std::uint64_t copies_delivered = 0;
  std::uint64_t copies_dropped_loss = 0;
  std::uint64_t copies_dropped_link = 0;
  std::uint64_t copies_dropped_node = 0;
  std::uint64_t copies_dropped_fault = 0;  // injected drops (net/fault.hpp)
  std::uint64_t copies_duplicated = 0;     // injected duplicates
  /// Wire occupancy in bytes, including injected duplicate copies.
  std::uint64_t bytes_on_wire = 0;
  /// Per-copy send->handler latency in ms; populated only when
  /// NetConfig::sample_delivery_latency is set (off the hot path otherwise).
  Summary delivery_latency_ms;

  void reset() { *this = NetStats{}; }
  /// One-line counter summary; includes delivery-latency p99 when sampled.
  std::string summary() const;
  /// Register every counter on `reg` under the "net." prefix, making the
  /// registry the single export sink for network counters.
  void bind_metrics(MetricsRegistry& reg) const;
};

}  // namespace msw
