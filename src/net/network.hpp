// Simulated LAN.
//
// Models the paper's testbed (SparcStation-20s on a 10 Mbit Ethernet):
//   - per-hop propagation latency with uniform jitter,
//   - a shared-medium serialization delay proportional to packet size,
//   - hardware multicast: one transmission reaches every destination,
//   - per-node CPU cost for sending and receiving; the CPU is a serial
//     resource, so a busy node (e.g. the sequencer under load) queues work
//     and exhibits the queueing delay that drives Figure 2,
//   - independent per-destination packet loss,
//   - link up/down control for partition experiments.
//
// All delays are deterministic functions of the seeded Rng.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/node_id.hpp"
#include "net/stats.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "util/bytes.hpp"
#include "util/function_ref.hpp"
#include "util/payload.hpp"
#include "util/rng.hpp"

namespace msw {

/// A datagram in flight. `src` is trustworthy in the simulator (the network
/// stamps it); protocols must not rely on it for *authenticated* identity —
/// that is what the integrity layer is for. The payload is a shared
/// refcounted buffer: an N-destination multicast enqueues N Packets that
/// alias one allocation (hardware multicast in memory as on the wire).
struct Packet {
  NodeId src;
  Payload data;
};

struct NetConfig {
  /// One-way propagation latency between distinct nodes.
  Duration base_latency = 1 * kMillisecond;
  /// Additional uniform jitter in [0, jitter] per destination.
  Duration jitter = 100 * kMicrosecond;
  /// Latency for a node's own copy of its multicast (kernel loopback).
  Duration loopback_latency = 20 * kMicrosecond;
  /// Shared-medium bandwidth; serialization delay = bits / bandwidth.
  std::int64_t bandwidth_bps = 10'000'000;
  /// Fixed per-packet wire overhead (headers, framing) added to size.
  std::size_t wire_overhead_bytes = 64;
  /// CPU cost to hand one packet to the network (per send/multicast call).
  Duration cpu_send = 300 * kMicrosecond;
  /// CPU cost to process one received packet before the stack sees it.
  Duration cpu_recv = 300 * kMicrosecond;
  /// Independent per-destination drop probability (loopback never drops).
  double loss = 0.0;
  /// Record per-copy send-to-handler latency into
  /// NetStats::delivery_latency_ms. Off by default: sampling appends to a
  /// vector per delivered copy, which the multicast hot path must not pay.
  bool sample_delivery_latency = false;
};

/// Receiver callback installed per node. Move-only with inline storage:
/// installing a stack's receive hook never heap-allocates, and the
/// dispatch is one indirect call.
using PacketHandler = UniqueFunction<void(Packet)>;

/// Optional batched receive callback: a coalesced run of same-instant
/// packets from one sender, delivered in one scheduler event. Nodes without
/// one installed receive runs through their PacketHandler, one call per
/// packet, in the same order.
using PacketRunHandler = UniqueFunction<void(NodeId src, std::span<const Payload> run)>;

/// Per-copy perturbation hook consulted for every unicast/multicast copy
/// that survived the link and loss checks (loopback copies are exempt).
/// The fault plane (net/fault.hpp) implements this; the Network stays free
/// of fault policy and only applies the returned plan.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  struct CopyPlan {
    /// Drop the copy outright (burst loss beyond the base `loss` rate).
    bool drop = false;
    /// Duplicate the copy: a second identical Packet is delivered.
    bool duplicate = false;
    /// Added to the copy's arrival time (bounded reordering, jitter burst).
    Duration extra_delay = 0;
    /// Added on top of `extra_delay` for the duplicate's arrival.
    Duration duplicate_delay = 0;
  };

  virtual CopyPlan on_copy(NodeId from, NodeId to, Time now) = 0;
};

class Network {
 public:
  Network(Scheduler& sched, Rng rng, NetConfig cfg);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Create a new node; ids are dense and creation-ordered.
  NodeId add_node();

  std::size_t node_count() const { return nodes_.size(); }

  /// Install the receive callback for a node (required before traffic).
  void set_handler(NodeId node, PacketHandler handler);

  /// Install the batched receive callback for a node (optional; see
  /// PacketRunHandler). Only coalesced runs from multicast_run use it.
  void set_run_handler(NodeId node, PacketRunHandler handler);

  /// Point-to-point datagram. Sending to self uses the loopback path.
  void send(NodeId from, NodeId to, Payload data);

  /// Hardware multicast: one serialization on the wire, every destination
  /// (including `from` itself, if listed) receives a copy. The copies all
  /// share `data`'s buffer — fan-out is O(1) per destination, not O(bytes).
  void multicast(NodeId from, const std::vector<NodeId>& to, Payload data);

  /// Batched multicast: behaves exactly like calling multicast() once per
  /// element of `msgs`, in order — same per-link RNG draws, same fault
  /// decisions, same stats, same per-destination delivery order — but
  /// copies to one destination whose arrivals coincide are coalesced into
  /// one scheduler scatter event (and, when cpu_recv is zero, one handler
  /// event). With an ideal network config the whole fan-out costs one
  /// event per destination per tick instead of one per copy. Grouping
  /// tables live in the scheduler's tick arena; nothing per-message is
  /// allocated for the common all-arrivals-equal case beyond one shared
  /// payload vector.
  void multicast_run(NodeId from, const std::vector<NodeId>& to, std::span<const Payload> msgs);

  /// Partition control. Both directions are affected independently.
  void set_link_up(NodeId from, NodeId to, bool up);
  bool link_up(NodeId from, NodeId to) const;

  /// Pause/resume a node: while down it stops receiving and its sends are
  /// discarded; packets already queued behind its CPU survive a resume.
  void set_node_up(NodeId node, bool up);
  bool node_up(NodeId node) const;

  /// Crash a node: down as with set_node_up(false), plus its receive queue
  /// is lost — packets that had arrived but not yet cleared cpu_recv are
  /// discarded even if they would finish processing after a restart.
  void crash_node(NodeId node);
  /// Bring a crashed (or paused) node back. Protocol state above the
  /// network survives; only in-flight receive work was lost.
  void restart_node(NodeId node);

  /// Install (or clear, with nullptr) the per-copy fault hook. Not owned.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Crash count of a node — stamps telemetry events so a trace shows
  /// which incarnation of the node emitted them.
  std::uint64_t incarnation(NodeId node) const { return nodes_[node.v].incarnation; }

  /// Attach every NetStats counter to `reg` (prefix "net.") — the telemetry
  /// plane's single sink for network counters. The hot path keeps writing
  /// the plain NetStats fields; the registry holds views, so binding costs
  /// the send/multicast path nothing.
  void bind_metrics(MetricsRegistry& reg) const { stats_.bind_metrics(reg); }

  /// Occupy the node's CPU for `d` starting now (protocol processing such
  /// as the sequencer's ordering work). Subsequent sends and receive
  /// processing at this node queue behind it.
  void consume_cpu(NodeId node, Duration d);

  NetStats& stats() { return stats_; }
  const NetStats& stats() const { return stats_; }

  const NetConfig& config() const { return cfg_; }
  Scheduler& scheduler() { return sched_; }

 private:
  struct Node {
    PacketHandler handler;
    PacketRunHandler run_handler;
    Time cpu_free_at = 0;
    bool up = true;
    /// Bumped by crash_node; receive work scheduled under an older
    /// incarnation is dropped when it comes due.
    std::uint64_t incarnation = 0;
  };

  /// Reserve the sender's CPU + the shared wire; returns the time the
  /// packet is on the wire.
  Time transmit_time(NodeId from, std::size_t bytes);

  /// Schedule delivery of a copy at `dest` arriving at `arrive`.
  void deliver_copy(NodeId dest, Packet packet, Time arrive);

  /// Arrival-time body of deliver_copy: receive-CPU bookkeeping plus the
  /// handler event. Shared with deliver_run's serial-CPU path.
  void finish_copy(NodeId dest, Packet packet, Time sent_at);

  /// Schedule delivery of a coalesced run (>= 2 copies, one sender, equal
  /// arrival) at `dest`: one arrival event; one handler event too when
  /// cpu_recv is zero, per-copy handler events otherwise (the serial CPU
  /// gives each copy its own completion instant).
  void deliver_run(NodeId dest, NodeId from, std::shared_ptr<const std::vector<Payload>> run,
                   Time arrive);

  /// Per-copy checks + fault plan for one destination; returns false when
  /// the copy dies (link down, loss, injected drop). On success schedules
  /// the copy (and a possible injected duplicate).
  bool route_copy(NodeId from, NodeId dest, const Payload& data, Time on_wire);

  Duration serialization_delay(std::size_t bytes) const;
  Duration propagation(NodeId from, NodeId to);

  /// Independent random stream for the (from, to) link. Derived from a
  /// per-network base seed and the link key only, so draws on one link
  /// (loss, jitter) never perturb another's sequence no matter in which
  /// order nodes or traffic appear.
  Rng& link_rng(NodeId from, NodeId to);

  Scheduler& sched_;
  Rng rng_;
  std::uint64_t link_seed_base_;
  NetConfig cfg_;
  std::vector<Node> nodes_;
  Time wire_free_at_ = 0;
  NetStats stats_;
  FaultInjector* injector_ = nullptr;
  // Sparse set of down links, keyed (from << 32 | to).
  std::vector<std::uint64_t> down_links_;
  std::unordered_map<std::uint64_t, Rng> link_rngs_;
};

}  // namespace msw
