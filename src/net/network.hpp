// Simulated LAN.
//
// Models the paper's testbed (SparcStation-20s on a 10 Mbit Ethernet):
//   - per-hop propagation latency with uniform jitter,
//   - a shared-medium serialization delay proportional to packet size,
//   - hardware multicast: one transmission reaches every destination,
//   - per-node CPU cost for sending and receiving; the CPU is a serial
//     resource, so a busy node (e.g. the sequencer under load) queues work
//     and exhibits the queueing delay that drives Figure 2,
//   - independent per-destination packet loss,
//   - link up/down control for partition experiments.
//
// All delays are deterministic functions of the seeded Rng.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/node_id.hpp"
#include "net/stats.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "util/bytes.hpp"
#include "util/function_ref.hpp"
#include "util/payload.hpp"
#include "util/rng.hpp"

namespace msw {

/// A datagram in flight. `src` is trustworthy in the simulator (the network
/// stamps it); protocols must not rely on it for *authenticated* identity —
/// that is what the integrity layer is for. The payload is a shared
/// refcounted buffer: an N-destination multicast enqueues N Packets that
/// alias one allocation (hardware multicast in memory as on the wire).
struct Packet {
  NodeId src;
  Payload data;
};

struct NetConfig {
  /// One-way propagation latency between distinct nodes.
  Duration base_latency = 1 * kMillisecond;
  /// Additional uniform jitter in [0, jitter] per destination.
  Duration jitter = 100 * kMicrosecond;
  /// Latency for a node's own copy of its multicast (kernel loopback).
  Duration loopback_latency = 20 * kMicrosecond;
  /// Shared-medium bandwidth; serialization delay = bits / bandwidth.
  std::int64_t bandwidth_bps = 10'000'000;
  /// Fixed per-packet wire overhead (headers, framing) added to size.
  std::size_t wire_overhead_bytes = 64;
  /// CPU cost to hand one packet to the network (per send/multicast call).
  Duration cpu_send = 300 * kMicrosecond;
  /// CPU cost to process one received packet before the stack sees it.
  Duration cpu_recv = 300 * kMicrosecond;
  /// Independent per-destination drop probability (loopback never drops).
  double loss = 0.0;
};

/// Receiver callback installed per node. Move-only with inline storage:
/// installing a stack's receive hook never heap-allocates, and the
/// dispatch is one indirect call.
using PacketHandler = UniqueFunction<void(Packet)>;

class Network {
 public:
  Network(Scheduler& sched, Rng rng, NetConfig cfg);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Create a new node; ids are dense and creation-ordered.
  NodeId add_node();

  std::size_t node_count() const { return nodes_.size(); }

  /// Install the receive callback for a node (required before traffic).
  void set_handler(NodeId node, PacketHandler handler);

  /// Point-to-point datagram. Sending to self uses the loopback path.
  void send(NodeId from, NodeId to, Payload data);

  /// Hardware multicast: one serialization on the wire, every destination
  /// (including `from` itself, if listed) receives a copy. The copies all
  /// share `data`'s buffer — fan-out is O(1) per destination, not O(bytes).
  void multicast(NodeId from, const std::vector<NodeId>& to, Payload data);

  /// Partition control. Both directions are affected independently.
  void set_link_up(NodeId from, NodeId to, bool up);
  bool link_up(NodeId from, NodeId to) const;

  /// Crash a node: it stops receiving and its sends are discarded.
  void set_node_up(NodeId node, bool up);
  bool node_up(NodeId node) const;

  /// Occupy the node's CPU for `d` starting now (protocol processing such
  /// as the sequencer's ordering work). Subsequent sends and receive
  /// processing at this node queue behind it.
  void consume_cpu(NodeId node, Duration d);

  NetStats& stats() { return stats_; }
  const NetStats& stats() const { return stats_; }

  const NetConfig& config() const { return cfg_; }
  Scheduler& scheduler() { return sched_; }

 private:
  struct Node {
    PacketHandler handler;
    Time cpu_free_at = 0;
    bool up = true;
  };

  /// Reserve the sender's CPU + the shared wire; returns the time the
  /// packet is on the wire.
  Time transmit_time(NodeId from, std::size_t bytes);

  /// Schedule delivery of a copy at `dest` arriving at `arrive`.
  void deliver_copy(NodeId dest, Packet packet, Time arrive);

  Duration serialization_delay(std::size_t bytes) const;
  Duration propagation(NodeId from, NodeId to);

  Scheduler& sched_;
  Rng rng_;
  NetConfig cfg_;
  std::vector<Node> nodes_;
  Time wire_free_at_ = 0;
  NetStats stats_;
  // Sparse set of down links, keyed (from << 32 | to).
  std::vector<std::uint64_t> down_links_;
};

}  // namespace msw
