#include "net/network.hpp"

#include <algorithm>
#include <cassert>

namespace msw {
namespace {

std::uint64_t link_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from.v) << 32) | to.v;
}

// splitmix64 finalizer: spreads the structured link key over the seed space
// so adjacent links get unrelated streams.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Network::Network(Scheduler& sched, Rng rng, NetConfig cfg)
    : sched_(sched), rng_(rng), link_seed_base_(rng_.next()), cfg_(cfg) {}

Rng& Network::link_rng(NodeId from, NodeId to) {
  const std::uint64_t key = link_key(from, to);
  auto it = link_rngs_.find(key);
  if (it == link_rngs_.end()) {
    it = link_rngs_.emplace(key, Rng(link_seed_base_ ^ mix64(key))).first;
  }
  return it->second;
}

NodeId Network::add_node() {
  nodes_.push_back(Node{});
  return NodeId{static_cast<std::uint32_t>(nodes_.size() - 1)};
}

void Network::set_handler(NodeId node, PacketHandler handler) {
  assert(node.v < nodes_.size());
  nodes_[node.v].handler = std::move(handler);
}

void Network::set_run_handler(NodeId node, PacketRunHandler handler) {
  assert(node.v < nodes_.size());
  nodes_[node.v].run_handler = std::move(handler);
}

Duration Network::serialization_delay(std::size_t bytes) const {
  if (cfg_.bandwidth_bps <= 0) return 0;
  const auto bits = static_cast<std::int64_t>((bytes + cfg_.wire_overhead_bytes) * 8);
  return bits * kSecond / cfg_.bandwidth_bps;
}

Duration Network::propagation(NodeId from, NodeId to) {
  if (from == to) return cfg_.loopback_latency;
  Duration d = cfg_.base_latency;
  if (cfg_.jitter > 0) {
    d += static_cast<Duration>(
        link_rng(from, to).below(static_cast<std::uint64_t>(cfg_.jitter) + 1));
  }
  return d;
}

Time Network::transmit_time(NodeId from, std::size_t bytes) {
  Node& n = nodes_[from.v];
  // The sender's CPU is a serial resource: back-to-back sends queue.
  const Time cpu_start = std::max(sched_.now(), n.cpu_free_at);
  const Time cpu_done = cpu_start + cfg_.cpu_send;
  n.cpu_free_at = cpu_done;
  // The shared medium is likewise serial (CSMA/CD-style, without modelling
  // collisions): the packet occupies the wire after the CPU releases it.
  const Time wire_start = std::max(cpu_done, wire_free_at_);
  const Time wire_done = wire_start + serialization_delay(bytes);
  wire_free_at_ = wire_done;
  stats_.bytes_on_wire += bytes + cfg_.wire_overhead_bytes;
  return wire_done;
}

void Network::finish_copy(NodeId dest, Packet packet, Time sent_at) {
  Node& n = nodes_[dest.v];
  if (!n.up) {
    ++stats_.copies_dropped_node;
    return;
  }
  // Receive-side CPU cost; the node works packets off serially. A crash
  // between arrival and the end of processing loses the queued packet:
  // the incarnation recorded here no longer matches.
  const Time start = std::max(sched_.now(), n.cpu_free_at);
  const Time done = start + cfg_.cpu_recv;
  n.cpu_free_at = done;
  const std::uint64_t inc = n.incarnation;
  sched_.at(done, [this, dest, inc, sent_at, p = std::move(packet)]() mutable {
    Node& node = nodes_[dest.v];
    if (!node.up || node.incarnation != inc || !node.handler) {
      ++stats_.copies_dropped_node;
      return;
    }
    ++stats_.copies_delivered;
    if (cfg_.sample_delivery_latency) {
      stats_.delivery_latency_ms.add(
          static_cast<double>(sched_.now() - sent_at) / kMillisecond);
    }
    node.handler(std::move(p));
  });
}

void Network::deliver_copy(NodeId dest, Packet packet, Time arrive) {
  const Time sent_at = sched_.now();
  sched_.at(arrive, [this, dest, sent_at, p = std::move(packet)]() mutable {
    finish_copy(dest, std::move(p), sent_at);
  });
}

void Network::deliver_run(NodeId dest, NodeId from,
                          std::shared_ptr<const std::vector<Payload>> run, Time arrive) {
  const Time sent_at = sched_.now();
  sched_.at(arrive, [this, dest, from, sent_at, run = std::move(run)]() mutable {
    Node& n = nodes_[dest.v];
    if (!n.up) {
      stats_.copies_dropped_node += run->size();
      return;
    }
    if (cfg_.cpu_recv > 0) {
      // Serial receive CPU: every copy clears processing at its own
      // instant, so handler events stay per-copy — only the arrival event
      // was shared. finish_copy performs exactly the unbatched per-copy
      // bookkeeping, in run order.
      for (const Payload& p : *run) finish_copy(dest, Packet{from, p}, sent_at);
      return;
    }
    // Free receive CPU: the whole run clears processing at one instant, so
    // one handler event delivers it all.
    const Time done = std::max(sched_.now(), n.cpu_free_at);
    n.cpu_free_at = done;
    const std::uint64_t inc = n.incarnation;
    sched_.at(done, [this, dest, from, inc, sent_at, run = std::move(run)]() {
      Node& node = nodes_[dest.v];
      if (!node.up || node.incarnation != inc || (!node.handler && !node.run_handler)) {
        stats_.copies_dropped_node += run->size();
        return;
      }
      stats_.copies_delivered += run->size();
      if (cfg_.sample_delivery_latency) {
        const double ms = static_cast<double>(sched_.now() - sent_at) / kMillisecond;
        for (std::size_t i = 0; i < run->size(); ++i) stats_.delivery_latency_ms.add(ms);
      }
      if (node.run_handler) {
        node.run_handler(from, std::span<const Payload>(run->data(), run->size()));
      } else {
        for (const Payload& p : *run) node.handler(Packet{from, p});
      }
    });
  });
}

bool Network::route_copy(NodeId from, NodeId dest, const Payload& data, Time on_wire) {
  if (!link_up(from, dest)) {
    ++stats_.copies_dropped_link;
    return false;
  }
  const bool loopback = from == dest;
  if (!loopback && cfg_.loss > 0 && link_rng(from, dest).chance(cfg_.loss)) {
    ++stats_.copies_dropped_loss;
    return false;
  }
  FaultInjector::CopyPlan plan;
  if (injector_ && !loopback) plan = injector_->on_copy(from, dest, sched_.now());
  if (plan.drop) {
    ++stats_.copies_dropped_fault;
    return false;
  }
  const Time arrive = on_wire + propagation(from, dest) + plan.extra_delay;
  deliver_copy(dest, Packet{from, data}, arrive);
  if (plan.duplicate) {
    ++stats_.copies_duplicated;
    // The duplicate occupies the wire like any other copy; count its bytes
    // so bytes_on_wire reflects actual wire load under fault injection.
    stats_.bytes_on_wire += data.size() + cfg_.wire_overhead_bytes;
    deliver_copy(dest, Packet{from, data}, arrive + plan.duplicate_delay);
  }
  return true;
}

void Network::send(NodeId from, NodeId to, Payload data) {
  assert(from.v < nodes_.size() && to.v < nodes_.size());
  if (!nodes_[from.v].up) {
    ++stats_.copies_dropped_node;
    return;
  }
  ++stats_.unicasts_sent;
  const Time on_wire = transmit_time(from, data.size());
  route_copy(from, to, data, on_wire);
}

void Network::multicast(NodeId from, const std::vector<NodeId>& to, Payload data) {
  assert(from.v < nodes_.size());
  if (!nodes_[from.v].up) {
    ++stats_.copies_dropped_node;
    return;
  }
  ++stats_.multicasts_sent;
  // One serialization regardless of fan-out: hardware multicast. Every
  // delivered copy aliases `data`'s shared buffer; the fan-out loop only
  // bumps a refcount per destination.
  const Time on_wire = transmit_time(from, data.size());
  for (NodeId dest : to) {
    assert(dest.v < nodes_.size());
    route_copy(from, dest, data, on_wire);
  }
}

void Network::multicast_run(NodeId from, const std::vector<NodeId>& to,
                            std::span<const Payload> msgs) {
  assert(from.v < nodes_.size());
  const std::size_t k_count = msgs.size();
  if (k_count == 0) return;
  if (k_count == 1) {
    multicast(from, to, msgs[0]);
    return;
  }
  if (!nodes_[from.v].up) {
    stats_.copies_dropped_node += k_count;
    return;
  }
  stats_.multicasts_sent += k_count;

  TickArena& arena = sched_.tick_arena();
  // Each packet serializes in order — identical sender-CPU and wire
  // reservations to k_count back-to-back multicast() calls.
  Time* on_wire = arena.alloc_array<Time>(k_count);
  for (std::size_t k = 0; k < k_count; ++k) on_wire[k] = transmit_time(from, msgs[k].size());

  struct CopyRec {
    Time arrive;
    std::uint32_t pkt;
  };
  const std::size_t n_dest = to.size();
  const std::size_t cap = 2 * k_count;  // primary + possible injected duplicate
  CopyRec** recs = arena.alloc_array<CopyRec*>(n_dest);
  std::uint32_t* counts = arena.alloc_array<std::uint32_t>(n_dest);
  bool* clean = arena.alloc_array<bool>(n_dest);  // no drop or duplicate seen
  for (std::size_t d = 0; d < n_dest; ++d) {
    recs[d] = arena.alloc_array<CopyRec>(cap);
    counts[d] = 0;
    clean[d] = true;
  }

  // Packet-major routing, exactly the order k_count separate multicasts
  // would use: per-link RNG draws (loss, jitter) and fault-injector
  // callbacks happen in the same sequence, so every drop, delay and
  // duplicate decision is bit-identical to the unbatched run.
  for (std::size_t k = 0; k < k_count; ++k) {
    const auto pkt = static_cast<std::uint32_t>(k);
    for (std::size_t d = 0; d < n_dest; ++d) {
      const NodeId dest = to[d];
      assert(dest.v < nodes_.size());
      if (!link_up(from, dest)) {
        ++stats_.copies_dropped_link;
        clean[d] = false;
        continue;
      }
      const bool loopback = from == dest;
      if (!loopback && cfg_.loss > 0 && link_rng(from, dest).chance(cfg_.loss)) {
        ++stats_.copies_dropped_loss;
        clean[d] = false;
        continue;
      }
      FaultInjector::CopyPlan plan;
      if (injector_ && !loopback) plan = injector_->on_copy(from, dest, sched_.now());
      if (plan.drop) {
        ++stats_.copies_dropped_fault;
        clean[d] = false;
        continue;
      }
      const Time arrive = on_wire[k] + propagation(from, dest) + plan.extra_delay;
      recs[d][counts[d]++] = CopyRec{arrive, pkt};
      if (plan.duplicate) {
        ++stats_.copies_duplicated;
        stats_.bytes_on_wire += msgs[k].size() + cfg_.wire_overhead_bytes;
        recs[d][counts[d]++] = CopyRec{arrive + plan.duplicate_delay, pkt};
        clean[d] = false;
      }
    }
  }

  // One scatter per destination per distinct arrival instant: coalesce
  // maximal runs of consecutive same-arrival copies. Per-destination
  // records are already in the order the unbatched world would have
  // scheduled them, and equal-time events execute in insertion order, so
  // each destination observes the exact unbatched packet sequence.
  std::shared_ptr<const std::vector<Payload>> full;  // shared full-run storage, built lazily
  for (std::size_t d = 0; d < n_dest; ++d) {
    const NodeId dest = to[d];
    const CopyRec* r = recs[d];
    const std::uint32_t cnt = counts[d];
    std::uint32_t i = 0;
    while (i < cnt) {
      std::uint32_t j = i + 1;
      while (j < cnt && r[j].arrive == r[i].arrive) ++j;
      const std::uint32_t len = j - i;
      if (len == 1) {
        deliver_copy(dest, Packet{from, msgs[r[i].pkt]}, r[i].arrive);
      } else if (len == k_count && clean[d]) {
        // The destination receives the entire run unperturbed — the common
        // case on a healthy network. All such destinations alias one
        // immutable payload vector: O(1) refcounts per destination.
        if (!full) {
          full = std::make_shared<const std::vector<Payload>>(msgs.begin(), msgs.end());
        }
        deliver_run(dest, from, full, r[i].arrive);
      } else {
        auto owned = std::make_shared<std::vector<Payload>>();
        owned->reserve(len);
        for (std::uint32_t x = i; x < j; ++x) owned->push_back(msgs[r[x].pkt]);
        deliver_run(dest, from, std::move(owned), r[i].arrive);
      }
      i = j;
    }
  }
}

void Network::set_link_up(NodeId from, NodeId to, bool up) {
  const auto key = link_key(from, to);
  auto it = std::find(down_links_.begin(), down_links_.end(), key);
  if (up) {
    if (it != down_links_.end()) down_links_.erase(it);
  } else {
    if (it == down_links_.end()) down_links_.push_back(key);
  }
}

bool Network::link_up(NodeId from, NodeId to) const {
  if (from == to) return true;
  return std::find(down_links_.begin(), down_links_.end(), link_key(from, to)) ==
         down_links_.end();
}

void Network::set_node_up(NodeId node, bool up) {
  assert(node.v < nodes_.size());
  nodes_[node.v].up = up;
}

bool Network::node_up(NodeId node) const {
  assert(node.v < nodes_.size());
  return nodes_[node.v].up;
}

void Network::crash_node(NodeId node) {
  assert(node.v < nodes_.size());
  Node& n = nodes_[node.v];
  n.up = false;
  ++n.incarnation;  // invalidates every packet queued behind cpu_recv
  n.cpu_free_at = 0;
}

void Network::restart_node(NodeId node) {
  assert(node.v < nodes_.size());
  nodes_[node.v].up = true;
}

void Network::consume_cpu(NodeId node, Duration d) {
  assert(node.v < nodes_.size());
  if (d <= 0) return;
  Node& n = nodes_[node.v];
  n.cpu_free_at = std::max(sched_.now(), n.cpu_free_at) + d;
}

}  // namespace msw
