#include "net/endpoint.hpp"

#include "rt/transport.hpp"

namespace msw {

namespace {
std::uint64_t pack(EventId ev) {
  return std::uint64_t{ev.slot} | (std::uint64_t{ev.gen} << 32);
}
EventId unpack(std::uint64_t v) {
  return EventId{static_cast<std::uint32_t>(v), static_cast<std::uint32_t>(v >> 32)};
}
}  // namespace

Endpoint::Endpoint(Network& net, NodeId id) : net_(&net), id_(id) {}

Endpoint::Endpoint(Transport& transport, NodeId id) : transport_(&transport), id_(id) {}

Endpoint::~Endpoint() { cancel_all_timers(); }

Time Endpoint::now() const {
  return net_ ? net_->scheduler().now() : transport_->now();
}

void Endpoint::set_handler(PacketHandler handler) {
  if (net_) {
    net_->set_handler(id_, std::move(handler));
  } else {
    transport_->set_handler(id_, std::move(handler));
  }
}

void Endpoint::set_run_handler(PacketRunHandler handler) {
  if (net_) {
    net_->set_run_handler(id_, std::move(handler));
  } else {
    transport_->set_run_handler(id_, std::move(handler));
  }
}

void Endpoint::send(NodeId to, Payload data) {
  if (net_) {
    net_->send(id_, to, std::move(data));
  } else {
    transport_->send(id_, to, std::move(data));
  }
}

void Endpoint::multicast(const std::vector<NodeId>& to, Payload data) {
  if (net_) {
    net_->multicast(id_, to, std::move(data));
  } else {
    transport_->multicast(id_, to, std::move(data));
  }
}

void Endpoint::multicast_run(const std::vector<NodeId>& to, std::span<const Payload> msgs) {
  if (net_) {
    net_->multicast_run(id_, to, msgs);
  } else {
    transport_->multicast_run(id_, to, msgs);
  }
}

void Endpoint::consume_cpu(Duration d) {
  if (net_) {
    net_->consume_cpu(id_, d);
  } else {
    transport_->consume_cpu(id_, d);
  }
}

TickArena* Endpoint::tick_arena() {
  return net_ ? &net_->scheduler().tick_arena() : transport_->tick_arena();
}

TimerId Endpoint::set_timer(Duration delay, std::function<void()> fn) {
  const std::uint64_t tid = next_timer_++;
  auto wrapped = [this, tid, fn = std::move(fn)]() {
    timers_.erase(tid);
    fn();
  };
  if (net_) {
    const EventId ev = net_->scheduler().after(delay, std::move(wrapped));
    timers_.emplace(tid, pack(ev));
  } else {
    const TransportTimer t = transport_->set_timer(id_, delay, std::move(wrapped));
    timers_.emplace(tid, t.v);
  }
  return TimerId{tid};
}

void Endpoint::cancel_timer(TimerId id) {
  auto it = timers_.find(id.v);
  if (it == timers_.end()) return;
  if (net_) {
    net_->scheduler().cancel(unpack(it->second));
  } else {
    transport_->cancel_timer(id_, TransportTimer{it->second});
  }
  timers_.erase(it);
}

void Endpoint::cancel_all_timers() {
  for (auto& [tid, handle] : timers_) {
    if (net_) {
      net_->scheduler().cancel(unpack(handle));
    } else {
      transport_->cancel_timer(id_, TransportTimer{handle});
    }
  }
  timers_.clear();
}

}  // namespace msw
