#include "net/endpoint.hpp"

namespace msw {

Endpoint::Endpoint(Network& net, NodeId id) : net_(net), id_(id) {}

Endpoint::~Endpoint() { cancel_all_timers(); }

TimerId Endpoint::set_timer(Duration delay, std::function<void()> fn) {
  const std::uint64_t tid = next_timer_++;
  EventId ev = net_.scheduler().after(delay, [this, tid, fn = std::move(fn)]() {
    timers_.erase(tid);
    fn();
  });
  timers_.emplace(tid, ev);
  return TimerId{tid};
}

void Endpoint::cancel_timer(TimerId id) {
  auto it = timers_.find(id.v);
  if (it == timers_.end()) return;
  net_.scheduler().cancel(it->second);
  timers_.erase(it);
}

void Endpoint::cancel_all_timers() {
  for (auto& [tid, ev] : timers_) net_.scheduler().cancel(ev);
  timers_.clear();
}

}  // namespace msw
