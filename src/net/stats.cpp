#include "net/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "telemetry/metrics.hpp"

namespace msw {

std::string NetStats::summary() const {
  std::ostringstream os;
  os << "unicasts=" << unicasts_sent << " multicasts=" << multicasts_sent
     << " delivered=" << copies_delivered << " dropped(loss/link/node/fault)=" << copies_dropped_loss
     << "/" << copies_dropped_link << "/" << copies_dropped_node << "/" << copies_dropped_fault
     << " duplicated=" << copies_duplicated << " bytes=" << bytes_on_wire;
  if (!delivery_latency_ms.empty()) {
    os << " latency_ms(p50/p99/max)=" << delivery_latency_ms.median() << "/"
       << delivery_latency_ms.p99() << "/" << delivery_latency_ms.max();
  }
  return os.str();
}

void NetStats::bind_metrics(MetricsRegistry& reg) const {
  reg.attach_counter("net.unicasts_sent", &unicasts_sent);
  reg.attach_counter("net.multicasts_sent", &multicasts_sent);
  reg.attach_counter("net.copies_delivered", &copies_delivered);
  reg.attach_counter("net.copies_dropped_loss", &copies_dropped_loss);
  reg.attach_counter("net.copies_dropped_link", &copies_dropped_link);
  reg.attach_counter("net.copies_dropped_node", &copies_dropped_node);
  reg.attach_counter("net.copies_dropped_fault", &copies_dropped_fault);
  reg.attach_counter("net.copies_duplicated", &copies_duplicated);
  reg.attach_counter("net.bytes_on_wire", &bytes_on_wire);
}

void Summary::add(double v) {
  samples_.push_back(v);
  dirty_ = true;
}

void Summary::clear() {
  samples_.clear();
  sorted_.clear();
  dirty_ = false;
}

double Summary::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double v : samples_) s += v;
  return s / static_cast<double>(samples_.size());
}

double Summary::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  p = std::clamp(p, 0.0, 100.0);
  // Quantile at fractional rank (n-1)p/100, linearly interpolated between
  // the two bracketing order statistics. Nearest-rank stepped to a single
  // sample (p99 of 10 samples == max), badly biased at small counts.
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[lo + 1] - sorted_[lo]);
}

double Summary::percentile_nearest(double p) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted_.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

void Summary::ensure_sorted() const {
  if (dirty_ || sorted_.size() != samples_.size()) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    dirty_ = false;
  }
}

}  // namespace msw
