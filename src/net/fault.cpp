#include "net/fault.hpp"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <iomanip>
#include <sstream>

namespace msw {
namespace {

std::uint64_t link_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from.v) << 32) | to.v;
}

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool in_mask(std::uint64_t mask, std::uint32_t node) {
  return node < 64 && (mask >> node) & 1;
}

void render_double(std::ostringstream& os, double v) {
  os << std::setprecision(17) << v << std::setprecision(6);
}

// --- parsing helpers ------------------------------------------------------

bool parse_u64(std::string_view s, std::uint64_t& out, int base = 10) {
  const auto* end = s.data() + s.size();
  const auto res = std::from_chars(s.data(), end, out, base);
  return res.ec == std::errc{} && res.ptr == end;
}

bool parse_i64(std::string_view s, std::int64_t& out) {
  const auto* end = s.data() + s.size();
  const auto res = std::from_chars(s.data(), end, out);
  return res.ec == std::errc{} && res.ptr == end;
}

bool parse_double(std::string_view s, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(std::string(s), &used);
    return used == s.size();
  } catch (...) {
    return false;
  }
}

/// Split `s` once at the first `sep`; returns false if absent.
bool split_at(std::string_view s, char sep, std::string_view& head, std::string_view& tail) {
  const auto pos = s.find(sep);
  if (pos == std::string_view::npos) return false;
  head = s.substr(0, pos);
  tail = s.substr(pos + 1);
  return true;
}

}  // namespace

// --------------------------------------------------------------------------
// FaultSchedule serialization
// --------------------------------------------------------------------------

std::string FaultSchedule::to_string() const {
  if (empty()) return "none";
  std::ostringstream os;
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ';';
    first = false;
  };
  if (dup_prob > 0.0) {
    sep();
    os << "dup=";
    render_double(os, dup_prob);
    os << '@' << dup_delay_max;
  }
  if (reorder_prob > 0.0) {
    sep();
    os << "reorder=";
    render_double(os, reorder_prob);
    os << '@' << reorder_delay_max;
  }
  for (const FaultEvent& e : events) {
    sep();
    switch (e.kind) {
      case FaultEvent::Kind::kLinkDown:
        os << "linkdown@" << e.at << ':' << e.a << '-' << e.b;
        break;
      case FaultEvent::Kind::kLinkUp:
        os << "linkup@" << e.at << ':' << e.a << '-' << e.b;
        break;
      case FaultEvent::Kind::kPartition:
        os << "part@" << e.at << ":x" << std::hex << e.mask << std::dec;
        break;
      case FaultEvent::Kind::kHeal:
        os << "heal@" << e.at << ":x" << std::hex << e.mask << std::dec;
        break;
      case FaultEvent::Kind::kCrash:
        os << "crash@" << e.at << ':' << e.a;
        break;
      case FaultEvent::Kind::kRestart:
        os << "restart@" << e.at << ':' << e.a;
        break;
      case FaultEvent::Kind::kJitterBurst:
        os << "jitter@" << e.at << ':' << e.duration << ':' << e.magnitude;
        break;
    }
  }
  return os.str();
}

std::optional<FaultSchedule> FaultSchedule::parse(std::string_view s) {
  FaultSchedule out;
  if (s == "none" || s.empty()) return out;
  while (!s.empty()) {
    std::string_view item = s;
    const auto pos = s.find(';');
    if (pos == std::string_view::npos) {
      s = {};
    } else {
      item = s.substr(0, pos);
      s = s.substr(pos + 1);
    }
    std::string_view head, tail;
    if (split_at(item, '=', head, tail)) {
      // Continuous knob: <name>=<prob>@<maxdelay>
      std::string_view prob_s, delay_s;
      double prob = 0.0;
      std::int64_t delay = 0;
      if (!split_at(tail, '@', prob_s, delay_s) || !parse_double(prob_s, prob) ||
          !parse_i64(delay_s, delay) || prob < 0.0 || prob > 1.0 || delay < 0) {
        return std::nullopt;
      }
      if (head == "dup") {
        out.dup_prob = prob;
        out.dup_delay_max = delay;
      } else if (head == "reorder") {
        out.reorder_prob = prob;
        out.reorder_delay_max = delay;
      } else {
        return std::nullopt;
      }
      continue;
    }
    // Timed event: <name>@<t>:<args>
    if (!split_at(item, '@', head, tail)) return std::nullopt;
    std::string_view time_s, args;
    if (!split_at(tail, ':', time_s, args)) return std::nullopt;
    FaultEvent e;
    if (!parse_i64(time_s, e.at) || e.at < 0) return std::nullopt;
    if (head == "linkdown" || head == "linkup") {
      e.kind = head == "linkdown" ? FaultEvent::Kind::kLinkDown : FaultEvent::Kind::kLinkUp;
      std::string_view a_s, b_s;
      std::uint64_t a = 0, b = 0;
      if (!split_at(args, '-', a_s, b_s) || !parse_u64(a_s, a) || !parse_u64(b_s, b)) {
        return std::nullopt;
      }
      e.a = static_cast<std::uint32_t>(a);
      e.b = static_cast<std::uint32_t>(b);
    } else if (head == "part" || head == "heal") {
      e.kind = head == "part" ? FaultEvent::Kind::kPartition : FaultEvent::Kind::kHeal;
      if (args.size() < 2 || args[0] != 'x' || !parse_u64(args.substr(1), e.mask, 16)) {
        return std::nullopt;
      }
    } else if (head == "crash" || head == "restart") {
      e.kind = head == "crash" ? FaultEvent::Kind::kCrash : FaultEvent::Kind::kRestart;
      std::uint64_t a = 0;
      if (!parse_u64(args, a)) return std::nullopt;
      e.a = static_cast<std::uint32_t>(a);
    } else if (head == "jitter") {
      e.kind = FaultEvent::Kind::kJitterBurst;
      std::string_view dur_s, mag_s;
      if (!split_at(args, ':', dur_s, mag_s) || !parse_i64(dur_s, e.duration) ||
          !parse_i64(mag_s, e.magnitude) || e.duration < 0 || e.magnitude < 0) {
        return std::nullopt;
      }
    } else {
      return std::nullopt;
    }
    out.events.push_back(e);
  }
  return out;
}

// --------------------------------------------------------------------------
// Schedule generation
// --------------------------------------------------------------------------

FaultSchedule generate_fault_schedule(Rng& rng, std::size_t n_nodes, Time horizon,
                                      const FaultGenOptions& opts) {
  assert(n_nodes >= 2 && n_nodes <= 64);
  FaultSchedule s;
  const Duration min_outage = 10 * kMillisecond;
  const auto outage_window = [&](Time& begin, Time& end) {
    const Duration len =
        min_outage + static_cast<Duration>(
                         rng.below(static_cast<std::uint64_t>(opts.max_outage - min_outage) + 1));
    begin = static_cast<Time>(rng.below(static_cast<std::uint64_t>(horizon - len)));
    end = begin + len;
  };

  const std::size_t cuts = rng.index(opts.max_link_cuts + 1);
  for (std::size_t i = 0; i < cuts; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.index(n_nodes));
    auto b = static_cast<std::uint32_t>(rng.index(n_nodes - 1));
    if (b >= a) ++b;
    Time begin = 0, end = 0;
    outage_window(begin, end);
    s.events.push_back({FaultEvent::Kind::kLinkDown, begin, a, b, 0, 0, 0});
    s.events.push_back({FaultEvent::Kind::kLinkUp, end, a, b, 0, 0, 0});
  }

  const std::size_t parts = rng.index(opts.max_partitions + 1);
  for (std::size_t i = 0; i < parts; ++i) {
    // Isolate a strict, non-empty minority side.
    const std::size_t k = 1 + rng.index(std::max<std::size_t>(n_nodes / 2, 1));
    std::uint64_t mask = 0;
    while (static_cast<std::size_t>(__builtin_popcountll(mask)) < k) {
      mask |= std::uint64_t{1} << rng.index(n_nodes);
    }
    Time begin = 0, end = 0;
    outage_window(begin, end);
    s.events.push_back({FaultEvent::Kind::kPartition, begin, 0, 0, mask, 0, 0});
    s.events.push_back({FaultEvent::Kind::kHeal, end, 0, 0, mask, 0, 0});
  }

  const std::size_t crashes = rng.index(opts.max_crashes + 1);
  for (std::size_t i = 0; i < crashes; ++i) {
    const auto node = static_cast<std::uint32_t>(rng.index(n_nodes));
    Time begin = 0, end = 0;
    outage_window(begin, end);
    s.events.push_back({FaultEvent::Kind::kCrash, begin, node, 0, 0, 0, 0});
    s.events.push_back({FaultEvent::Kind::kRestart, end, node, 0, 0, 0, 0});
  }

  const std::size_t bursts = rng.index(opts.max_jitter_bursts + 1);
  for (std::size_t i = 0; i < bursts; ++i) {
    Time begin = 0, end = 0;
    outage_window(begin, end);
    const Duration magnitude =
        1 * kMillisecond + static_cast<Duration>(rng.below(30 * kMillisecond));
    s.events.push_back(
        {FaultEvent::Kind::kJitterBurst, begin, 0, 0, 0, end - begin, magnitude});
  }

  if (rng.chance(0.5)) s.dup_prob = rng.uniform() * opts.dup_prob_max;
  if (rng.chance(0.5)) s.reorder_prob = rng.uniform() * opts.reorder_prob_max;

  std::stable_sort(s.events.begin(), s.events.end(),
                   [](const FaultEvent& x, const FaultEvent& y) { return x.at < y.at; });
  return s;
}

// --------------------------------------------------------------------------
// FaultPlane
// --------------------------------------------------------------------------

FaultPlane::FaultPlane(Network& net, Rng rng, FaultSchedule schedule)
    : net_(net), rng_(rng), link_seed_base_(rng_.next()), schedule_(std::move(schedule)) {}

FaultPlane::~FaultPlane() {
  if (!installed_) return;
  for (EventId id : armed_) net_.scheduler().cancel(id);
  net_.set_fault_injector(nullptr);
}

void FaultPlane::install() {
  assert(!installed_);
  installed_ = true;
  Scheduler& sched = net_.scheduler();
  for (const FaultEvent& e : schedule_.events) {
    armed_.push_back(sched.at(std::max(e.at, sched.now()), [this, e] { apply(e); }));
  }
  net_.set_fault_injector(this);
}

void FaultPlane::apply(const FaultEvent& e) {
  const std::size_t n = net_.node_count();
  switch (e.kind) {
    case FaultEvent::Kind::kLinkDown:
    case FaultEvent::Kind::kLinkUp: {
      if (e.a >= n || e.b >= n) return;
      net_.set_link_up(NodeId{e.a}, NodeId{e.b}, e.kind == FaultEvent::Kind::kLinkUp);
      return;
    }
    case FaultEvent::Kind::kPartition:
    case FaultEvent::Kind::kHeal: {
      const bool up = e.kind == FaultEvent::Kind::kHeal;
      for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t j = 0; j < n; ++j) {
          if (i == j || in_mask(e.mask, i) == in_mask(e.mask, j)) continue;
          net_.set_link_up(NodeId{i}, NodeId{j}, up);
        }
      }
      return;
    }
    case FaultEvent::Kind::kCrash:
      if (e.a < n) net_.crash_node(NodeId{e.a});
      return;
    case FaultEvent::Kind::kRestart:
      if (e.a < n) net_.restart_node(NodeId{e.a});
      return;
    case FaultEvent::Kind::kJitterBurst:
      bursts_.emplace_back(net_.scheduler().now() + e.duration, e.magnitude);
      return;
  }
}

Rng& FaultPlane::link_stream(NodeId from, NodeId to) {
  const std::uint64_t key = link_key(from, to);
  auto it = link_rngs_.find(key);
  if (it == link_rngs_.end()) {
    it = link_rngs_.emplace(key, Rng(link_seed_base_ ^ mix64(key))).first;
  }
  return it->second;
}

FaultInjector::CopyPlan FaultPlane::on_copy(NodeId from, NodeId to, Time now) {
  CopyPlan plan;
  Rng& rng = link_stream(from, to);
  if (schedule_.dup_prob > 0.0 && rng.chance(schedule_.dup_prob)) {
    plan.duplicate = true;
    plan.duplicate_delay = static_cast<Duration>(
        rng.below(static_cast<std::uint64_t>(schedule_.dup_delay_max) + 1));
  }
  if (schedule_.reorder_prob > 0.0 && rng.chance(schedule_.reorder_prob)) {
    plan.extra_delay += static_cast<Duration>(
        rng.below(static_cast<std::uint64_t>(schedule_.reorder_delay_max) + 1));
  }
  // Jitter bursts: expired windows are pruned lazily; overlapping windows
  // contribute the strongest magnitude.
  std::erase_if(bursts_, [now](const auto& b) { return b.first <= now; });
  Duration burst = 0;
  for (const auto& b : bursts_) burst = std::max(burst, b.second);
  if (burst > 0) {
    plan.extra_delay +=
        static_cast<Duration>(rng.below(static_cast<std::uint64_t>(burst) + 1));
  }
  return plan;
}

}  // namespace msw
