#include "stack/layer.hpp"

#include <cassert>

namespace msw {

std::size_t LayerContext::self_index() const {
  const auto& m = members();
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m[i] == self()) return i;
  }
  assert(false && "self not in member list");
  return 0;
}

NodeId LayerContext::ring_successor() const {
  const auto& m = members();
  return m[(self_index() + 1) % m.size()];
}

LayerChain::LayerChain(Services& services, std::vector<std::unique_ptr<Layer>> layers,
                       LayerContext::Route to_network, LayerContext::Route to_app)
    : layers_(std::move(layers)),
      to_network_(std::move(to_network)),
      to_app_(std::move(to_app)) {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    // Down from layer i goes to layer i+1 (or out the bottom); up from
    // layer i goes to layer i-1 (or out the top). Raw pointers into
    // layers_ are stable: the vector is never resized after construction.
    LayerContext::Route down_route;
    if (i + 1 < layers_.size()) {
      Layer* below = layers_[i + 1].get();
      down_route = [below](Message m) { below->down(std::move(m)); };
    } else {
      down_route = [this](Message m) { to_network_(std::move(m)); };
    }
    LayerContext::Route up_route;
    if (i > 0) {
      Layer* above = layers_[i - 1].get();
      up_route = [above](Message m) { above->up(std::move(m)); };
    } else {
      up_route = [this](Message m) { to_app_(std::move(m)); };
    }
    layers_[i]->bind(LayerContext(&services, std::move(down_route), std::move(up_route)));
  }
}

void LayerChain::start() {
  for (auto& l : layers_) l->start();
}

void LayerChain::down_from_top(Message m) {
  if (layers_.empty()) {
    to_network_(std::move(m));
  } else {
    layers_.front()->down(std::move(m));
  }
}

void LayerChain::up_from_bottom(Message m) {
  if (layers_.empty()) {
    to_app_(std::move(m));
  } else {
    layers_.back()->up(std::move(m));
  }
}

}  // namespace msw
