#include "stack/layer.hpp"

#include <cassert>

#include "util/log.hpp"

namespace msw {

void Layer::down_batch(MessageBatch b) {
  for (Message& m : b) down(std::move(m));
}

void Layer::up_batch(MessageBatch b) {
  for (Message& m : b) {
    const NodeId src = m.wire_src;
    try {
      up(std::move(m));
    } catch (const DecodeError& e) {
      // Same drop-at-the-point-of-failure rule as Stack::on_packet: a
      // malformed packet aborts its own traversal, never its runmates'.
      MSW_LOG(kDebug, "layer", ctx_.now())
          << to_string(ctx_.self()) << " dropped malformed packet from " << to_string(src)
          << " in batch: " << e.what();
    }
  }
}

std::size_t LayerContext::self_index() const {
  const auto& m = members();
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m[i] == self()) return i;
  }
  assert(false && "self not in member list");
  return 0;
}

NodeId LayerContext::ring_successor() const {
  const auto& m = members();
  return m[(self_index() + 1) % m.size()];
}

LayerChain::LayerChain(Services& services, std::vector<std::unique_ptr<Layer>> layers,
                       LayerContext::Route to_network, LayerContext::Route to_app,
                       LayerContext::BatchRoute to_network_batch,
                       LayerContext::BatchRoute to_app_batch)
    : layers_(std::move(layers)),
      to_network_(std::move(to_network)),
      to_app_(std::move(to_app)),
      to_network_batch_(std::move(to_network_batch)),
      to_app_batch_(std::move(to_app_batch)) {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    // Down from layer i goes to layer i+1 (or out the bottom); up from
    // layer i goes to layer i-1 (or out the top). Raw pointers into
    // layers_ are stable: the vector is never resized after construction.
    // Batch routes mirror the per-message wiring; a missing boundary batch
    // route leaves the batch route empty, so LayerContext unrolls there.
    LayerContext::Route down_route;
    LayerContext::BatchRoute down_batch_route;
    if (i + 1 < layers_.size()) {
      Layer* below = layers_[i + 1].get();
      down_route = [below](Message m) { below->down(std::move(m)); };
      down_batch_route = [below](MessageBatch b) { below->down_batch(std::move(b)); };
    } else {
      down_route = [this](Message m) { to_network_(std::move(m)); };
      if (to_network_batch_) {
        down_batch_route = [this](MessageBatch b) { to_network_batch_(std::move(b)); };
      }
    }
    LayerContext::Route up_route;
    LayerContext::BatchRoute up_batch_route;
    if (i > 0) {
      Layer* above = layers_[i - 1].get();
      up_route = [above](Message m) { above->up(std::move(m)); };
      up_batch_route = [above](MessageBatch b) { above->up_batch(std::move(b)); };
    } else {
      up_route = [this](Message m) { to_app_(std::move(m)); };
      if (to_app_batch_) {
        up_batch_route = [this](MessageBatch b) { to_app_batch_(std::move(b)); };
      }
    }
    layers_[i]->bind(LayerContext(&services, std::move(down_route), std::move(up_route),
                                  std::move(down_batch_route), std::move(up_batch_route)));
  }
}

void LayerChain::start() {
  for (auto& l : layers_) l->start();
}

void LayerChain::down_from_top(Message m) {
  if (layers_.empty()) {
    to_network_(std::move(m));
  } else {
    layers_.front()->down(std::move(m));
  }
}

void LayerChain::up_from_bottom(Message m) {
  if (layers_.empty()) {
    to_app_(std::move(m));
  } else {
    layers_.back()->up(std::move(m));
  }
}

void LayerChain::down_from_top_batch(MessageBatch b) {
  if (layers_.empty()) {
    if (to_network_batch_) {
      to_network_batch_(std::move(b));
    } else {
      for (Message& m : b) to_network_(std::move(m));
    }
  } else {
    layers_.front()->down_batch(std::move(b));
  }
}

void LayerChain::up_from_bottom_batch(MessageBatch b) {
  if (layers_.empty()) {
    if (to_app_batch_) {
      to_app_batch_(std::move(b));
    } else {
      for (Message& m : b) to_app_(std::move(m));
    }
  } else {
    layers_.back()->up_batch(std::move(b));
  }
}

}  // namespace msw
