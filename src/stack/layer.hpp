// Layer composition framework in the style of Horus / Ensemble.
//
// A Layer sees two streams of messages: `down(m)` carries sends from the
// layer above toward the network, `up(m)` carries deliveries from the layer
// below toward the application. The default implementations pass through,
// so a layer overrides only the directions it cares about. Layers are
// composed into a LayerChain; a chain between the application and the
// network is a Stack, and because a chain presents the same two-sided
// interface as a single layer, chains nest — the switching protocol hosts
// one chain per underlying protocol (Figure 1 of the paper).
//
// Every process in a group runs the same sequence of layer types (the
// paper's uniform-stack requirement); Group enforces this by constructing
// all stacks from one factory.
#pragma once

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "net/endpoint.hpp"
#include "net/node_id.hpp"
#include "sim/time.hpp"
#include "stack/message.hpp"
#include "telemetry/tracer.hpp"
#include "util/rng.hpp"

namespace msw {

class MetricsRegistry;

/// Per-process services a layer may use: identity, membership, virtual
/// time, timers, and a deterministic random stream. Provided by the Stack
/// and shared by every layer in the process, including nested chains.
class Services {
 public:
  virtual ~Services() = default;

  virtual NodeId self() const = 0;
  virtual const std::vector<NodeId>& members() const = 0;
  virtual Time now() const = 0;
  virtual TimerId set_timer(Duration delay, std::function<void()> fn) = 0;
  virtual void cancel_timer(TimerId id) = 0;
  virtual Rng& rng() = 0;
  /// Model protocol processing time: occupy this node's CPU for `d`.
  virtual void consume_cpu(Duration d) = 0;
  /// Per-node span emitter. Defaults to the disabled singleton so layers
  /// may emit unconditionally; stacks wired to a TelemetryHub override.
  virtual Tracer& tracer() { return Tracer::disabled(); }
  /// Per-node metrics registry, or nullptr when the stack was constructed
  /// without telemetry. Layers attach their counters in start().
  virtual MetricsRegistry* metrics() { return nullptr; }
};

/// Wiring handed to each layer: where its output messages go.
class LayerContext {
 public:
  using Route = std::function<void(Message)>;

  LayerContext() = default;
  LayerContext(Services* services, Route send_down, Route deliver_up)
      : services_(services), send_down_(std::move(send_down)), deliver_up_(std::move(deliver_up)) {}

  /// Pass a message to the layer below (toward the network).
  void send_down(Message m) { send_down_(std::move(m)); }
  /// Pass a message to the layer above (toward the application).
  void deliver_up(Message m) { deliver_up_(std::move(m)); }

  NodeId self() const { return services_->self(); }
  const std::vector<NodeId>& members() const { return services_->members(); }
  std::size_t member_count() const { return services_->members().size(); }
  Time now() const { return services_->now(); }
  TimerId set_timer(Duration delay, std::function<void()> fn) {
    return services_->set_timer(delay, std::move(fn));
  }
  void cancel_timer(TimerId id) { services_->cancel_timer(id); }
  Rng& rng() { return services_->rng(); }
  void consume_cpu(Duration d) { services_->consume_cpu(d); }
  Tracer& tracer() { return services_->tracer(); }
  MetricsRegistry* metrics() { return services_->metrics(); }

  /// Index of this process in the member list (ring position).
  std::size_t self_index() const;
  /// Ring successor of this process in the member list.
  NodeId ring_successor() const;

  /// The per-process service provider — needed by layers that host nested
  /// chains (the switching protocol) to wire their sub-layers.
  Services* services() const { return services_; }

 private:
  Services* services_ = nullptr;
  Route send_down_;
  Route deliver_up_;
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual std::string_view name() const = 0;

  /// Called once after the whole stack (and group) is wired; layers start
  /// timers or originate tokens here.
  virtual void start() {}

  /// A message from the layer above, heading toward the network.
  virtual void down(Message m) { ctx_.send_down(std::move(m)); }

  /// A message from the layer below, heading toward the application.
  virtual void up(Message m) { ctx_.deliver_up(std::move(m)); }

  /// Wire this layer. Called by LayerChain (or tests driving a layer
  /// directly).
  void bind(LayerContext ctx) { ctx_ = std::move(ctx); }

 protected:
  LayerContext& ctx() { return ctx_; }
  const LayerContext& ctx() const { return ctx_; }

 private:
  LayerContext ctx_;
};

/// An ordered sequence of layers (index 0 = top) wired between a pair of
/// boundary routes. Presents the same down/up interface as a single layer.
class LayerChain {
 public:
  /// `to_network` receives messages leaving the bottom of the chain;
  /// `to_app` receives messages leaving the top.
  LayerChain(Services& services, std::vector<std::unique_ptr<Layer>> layers,
             LayerContext::Route to_network, LayerContext::Route to_app);

  LayerChain(const LayerChain&) = delete;
  LayerChain& operator=(const LayerChain&) = delete;

  void start();

  /// Inject a send at the top of the chain.
  void down_from_top(Message m);

  /// Inject a delivery at the bottom of the chain.
  void up_from_bottom(Message m);

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  LayerContext::Route to_network_;
  LayerContext::Route to_app_;
};

/// Factory producing one process's layer stack, top first. Invoked once per
/// member so every process runs an identical stack.
using LayerFactory =
    std::function<std::vector<std::unique_ptr<Layer>>(NodeId self, const std::vector<NodeId>& members)>;

}  // namespace msw
