// Layer composition framework in the style of Horus / Ensemble.
//
// A Layer sees two streams of messages: `down(m)` carries sends from the
// layer above toward the network, `up(m)` carries deliveries from the layer
// below toward the application. The default implementations pass through,
// so a layer overrides only the directions it cares about. Layers are
// composed into a LayerChain; a chain between the application and the
// network is a Stack, and because a chain presents the same two-sided
// interface as a single layer, chains nest — the switching protocol hosts
// one chain per underlying protocol (Figure 1 of the paper).
//
// Every process in a group runs the same sequence of layer types (the
// paper's uniform-stack requirement); Group enforces this by constructing
// all stacks from one factory.
#pragma once

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "net/endpoint.hpp"
#include "net/node_id.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "stack/batch.hpp"
#include "stack/message.hpp"
#include "telemetry/tracer.hpp"
#include "util/rng.hpp"

namespace msw {

class MetricsRegistry;

/// Per-process services a layer may use: identity, membership, virtual
/// time, timers, and a deterministic random stream. Provided by the Stack
/// and shared by every layer in the process, including nested chains.
class Services {
 public:
  virtual ~Services() = default;

  virtual NodeId self() const = 0;
  virtual const std::vector<NodeId>& members() const = 0;
  virtual Time now() const = 0;
  virtual TimerId set_timer(Duration delay, std::function<void()> fn) = 0;
  virtual void cancel_timer(TimerId id) = 0;
  virtual Rng& rng() = 0;
  /// Model protocol processing time: occupy this node's CPU for `d`.
  virtual void consume_cpu(Duration d) = 0;
  /// Per-node span emitter. Defaults to the disabled singleton so layers
  /// may emit unconditionally; stacks wired to a TelemetryHub override.
  virtual Tracer& tracer() { return Tracer::disabled(); }
  /// Per-node metrics registry, or nullptr when the stack was constructed
  /// without telemetry. Layers attach their counters in start().
  virtual MetricsRegistry* metrics() { return nullptr; }
  /// Whether the batched data plane is enabled for this process. When
  /// false, every batch route decays to a per-message loop, reproducing the
  /// unbatched execution exactly — the equivalence test's control arm.
  virtual bool batching() const { return true; }
  /// The scheduler's per-tick allocator, or nullptr when the process is not
  /// driven by a simulation scheduler (unit tests driving a layer bare).
  virtual TickArena* tick_arena() { return nullptr; }
};

/// Wiring handed to each layer: where its output messages go.
class LayerContext {
 public:
  using Route = std::function<void(Message)>;
  using BatchRoute = std::function<void(MessageBatch)>;

  LayerContext() = default;
  LayerContext(Services* services, Route send_down, Route deliver_up,
               BatchRoute send_down_batch = nullptr, BatchRoute deliver_up_batch = nullptr)
      : services_(services),
        send_down_(std::move(send_down)),
        deliver_up_(std::move(deliver_up)),
        send_down_batch_(std::move(send_down_batch)),
        deliver_up_batch_(std::move(deliver_up_batch)) {}

  /// Pass a message to the layer below (toward the network).
  void send_down(Message m) { send_down_(std::move(m)); }
  /// Pass a message to the layer above (toward the application).
  void deliver_up(Message m) { deliver_up_(std::move(m)); }

  /// Pass a whole run to the layer below. Falls back to the per-message
  /// route (preserving order) when no batch route is wired or batching is
  /// disabled for this process.
  void send_down(MessageBatch b) {
    if (b.empty()) return;
    if (send_down_batch_ && services_->batching()) {
      send_down_batch_(std::move(b));
    } else {
      for (Message& m : b) send_down_(std::move(m));
    }
  }
  /// Pass a whole run to the layer above; same fallback rule.
  void deliver_up(MessageBatch b) {
    if (b.empty()) return;
    if (deliver_up_batch_ && services_->batching()) {
      deliver_up_batch_(std::move(b));
    } else {
      for (Message& m : b) deliver_up_(std::move(m));
    }
  }

  NodeId self() const { return services_->self(); }
  const std::vector<NodeId>& members() const { return services_->members(); }
  std::size_t member_count() const { return services_->members().size(); }
  Time now() const { return services_->now(); }
  TimerId set_timer(Duration delay, std::function<void()> fn) {
    return services_->set_timer(delay, std::move(fn));
  }
  void cancel_timer(TimerId id) { services_->cancel_timer(id); }
  Rng& rng() { return services_->rng(); }
  void consume_cpu(Duration d) { services_->consume_cpu(d); }
  Tracer& tracer() { return services_->tracer(); }
  MetricsRegistry* metrics() { return services_->metrics(); }
  bool batching() const { return services_->batching(); }
  TickArena* tick_arena() { return services_->tick_arena(); }

  /// Flat scratch for batched header encodes: from the tick arena when one
  /// is available (recycled across ticks, zero steady-state allocation),
  /// otherwise a per-context fallback buffer. Either way the reference is
  /// valid only until the next scratch() call on a path without an arena,
  /// or until the tick ends with one — never stash it.
  Bytes& scratch() {
    if (TickArena* a = services_->tick_arena()) return a->scratch();
    fallback_scratch_.clear();
    return fallback_scratch_;
  }

  /// Index of this process in the member list (ring position).
  std::size_t self_index() const;
  /// Ring successor of this process in the member list.
  NodeId ring_successor() const;

  /// The per-process service provider — needed by layers that host nested
  /// chains (the switching protocol) to wire their sub-layers.
  Services* services() const { return services_; }

 private:
  Services* services_ = nullptr;
  Route send_down_;
  Route deliver_up_;
  BatchRoute send_down_batch_;
  BatchRoute deliver_up_batch_;
  Bytes fallback_scratch_;
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual std::string_view name() const = 0;

  /// Called once after the whole stack (and group) is wired; layers start
  /// timers or originate tokens here.
  virtual void start() {}

  /// A message from the layer above, heading toward the network.
  virtual void down(Message m) { ctx_.send_down(std::move(m)); }

  /// A message from the layer below, heading toward the application.
  virtual void up(Message m) { ctx_.deliver_up(std::move(m)); }

  /// A run of messages heading toward the network. The default feeds each
  /// message through down() in order, so a layer without a batch
  /// implementation behaves exactly as if the run arrived message by
  /// message. Overrides must preserve that equivalence: same outputs, same
  /// order, same CPU charge total, same observable side effects.
  virtual void down_batch(MessageBatch b);

  /// A run of messages heading toward the application. The default feeds
  /// each message through up(), isolating failures per message: a
  /// DecodeError aborts only that message's traversal (logged and dropped),
  /// matching the unbatched world where each packet climbs the stack in its
  /// own handler event and Stack::on_packet drops it at the catch.
  virtual void up_batch(MessageBatch b);

  /// Wire this layer. Called by LayerChain (or tests driving a layer
  /// directly).
  void bind(LayerContext ctx) { ctx_ = std::move(ctx); }

 protected:
  LayerContext& ctx() { return ctx_; }
  const LayerContext& ctx() const { return ctx_; }

 private:
  LayerContext ctx_;
};

/// An ordered sequence of layers (index 0 = top) wired between a pair of
/// boundary routes. Presents the same down/up interface as a single layer.
class LayerChain {
 public:
  /// `to_network` receives messages leaving the bottom of the chain;
  /// `to_app` receives messages leaving the top. The batch boundary routes
  /// are optional: when absent, a batch reaching that boundary is unrolled
  /// through the per-message route in order.
  LayerChain(Services& services, std::vector<std::unique_ptr<Layer>> layers,
             LayerContext::Route to_network, LayerContext::Route to_app,
             LayerContext::BatchRoute to_network_batch = nullptr,
             LayerContext::BatchRoute to_app_batch = nullptr);

  LayerChain(const LayerChain&) = delete;
  LayerChain& operator=(const LayerChain&) = delete;

  void start();

  /// Inject a send at the top of the chain.
  void down_from_top(Message m);

  /// Inject a delivery at the bottom of the chain.
  void up_from_bottom(Message m);

  /// Inject a run of sends at the top of the chain. Callers gate on
  /// Services::batching(); the chain itself routes unconditionally.
  void down_from_top_batch(MessageBatch b);

  /// Inject a run of deliveries at the bottom of the chain.
  void up_from_bottom_batch(MessageBatch b);

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  LayerContext::Route to_network_;
  LayerContext::Route to_app_;
  LayerContext::BatchRoute to_network_batch_;
  LayerContext::BatchRoute to_app_batch_;
};

/// Factory producing one process's layer stack, top first. Invoked once per
/// member so every process runs an identical stack.
using LayerFactory =
    std::function<std::vector<std::unique_ptr<Layer>>(NodeId self, const std::vector<NodeId>& members)>;

}  // namespace msw
