// Trace capture at the application boundary.
//
// One TraceCapture is shared by every stack in a group; Send and Deliver
// events are appended in simulated-time order (the scheduler serializes
// all activity), yielding exactly the global traces of the paper's system
// model, ready for the property checkers in trace/.
#pragma once

#include <span>

#include "net/node_id.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

namespace msw {

class TraceCapture {
 public:
  void record_send(NodeId sender, const MsgId& id, std::span<const Byte> body, Time t);
  void record_deliver(NodeId process, const MsgId& id, std::span<const Byte> body, Time t);

  const Trace& trace() const { return trace_; }
  void clear() { trace_.clear(); }

  /// Number of Deliver events recorded for the given process.
  std::size_t deliver_count(NodeId process) const;
  /// Number of Send events recorded for the given process.
  std::size_t send_count(NodeId process) const;

 private:
  Trace trace_;
};

}  // namespace msw
