#include "stack/stack.hpp"

#include "telemetry/hub.hpp"
#include "util/log.hpp"

namespace msw {

Stack::Stack(Network& net, NodeId self, std::vector<NodeId> members,
             std::vector<std::unique_ptr<Layer>> layers, Rng rng, TraceCapture* capture,
             TelemetryHub* hub)
    : endpoint_(net, self), members_(std::move(members)), rng_(rng), capture_(capture) {
  wire(std::move(layers), hub);
}

Stack::Stack(Transport& transport, NodeId self, std::vector<NodeId> members,
             std::vector<std::unique_ptr<Layer>> layers, Rng rng, TraceCapture* capture,
             TelemetryHub* hub)
    : endpoint_(transport, self), members_(std::move(members)), rng_(rng), capture_(capture) {
  wire(std::move(layers), hub);
}

void Stack::wire(std::vector<std::unique_ptr<Layer>> layers, TelemetryHub* hub) {
  const NodeId self = endpoint_.id();
  if (hub != nullptr) {
    tracer_ = &hub->tracer(self.v);
    metrics_ = &hub->node_metrics(self.v);
    metrics_->attach_counter("app.sent", &next_seq_);
    metrics_->attach_counter("app.delivered", &delivered_);
    n_app_send_ = tracer_->intern("app.send");
    n_app_deliver_ = tracer_->intern("app.deliver");
  } else {
    tracer_ = &Tracer::disabled();
    metrics_ = nullptr;
  }
  chain_ = std::make_unique<LayerChain>(
      *this, std::move(layers), [this](Message m) { to_network(std::move(m)); },
      [this](Message m) { to_app(std::move(m)); },
      [this](MessageBatch b) { to_network_batch(std::move(b)); },
      [this](MessageBatch b) { to_app_batch(std::move(b)); });
  endpoint_.set_handler([this](Packet p) { on_packet(std::move(p)); });
  endpoint_.set_run_handler(
      [this](NodeId src, std::span<const Payload> run) { on_packet_run(src, run); });
}

void Stack::start() { chain_->start(); }

void Stack::send(Bytes body) {
  const MsgId id{self().v, next_seq_++, MsgId::Kind::kData};
  tracer_->instant(n_app_send_, TelemetryTrack::kData, id.seq);
  if (capture_ != nullptr) capture_->record_send(self(), id, body, now());
  Message m = Message::group(std::move(body));
  AppHeader::push(m, AppHeader{AppHeader::Kind::kData, id.sender, id.seq});
  chain_->down_from_top(std::move(m));
}

void Stack::send_batch(std::vector<Bytes> bodies) {
  if (!batching_ || bodies.size() == 1) {
    for (Bytes& body : bodies) send(std::move(body));
    return;
  }
  MessageBatch batch;
  batch.reserve(bodies.size());
  for (Bytes& body : bodies) {
    const MsgId id{self().v, next_seq_++, MsgId::Kind::kData};
    tracer_->instant(n_app_send_, TelemetryTrack::kData, id.seq);
    if (capture_ != nullptr) capture_->record_send(self(), id, body, now());
    Message m = Message::group(std::move(body));
    AppHeader::push(m, AppHeader{AppHeader::Kind::kData, id.sender, id.seq});
    batch.push_back(std::move(m));
  }
  chain_->down_from_top_batch(std::move(batch));
}

void Stack::to_network(Message m) {
  if (m.is_p2p()) {
    endpoint_.send(*m.point_to, std::move(m.data));
  } else {
    endpoint_.multicast(members_, std::move(m.data));
  }
}

void Stack::to_network_batch(MessageBatch b) {
  // Consecutive group messages leave as one batched scatter; point-to-point
  // messages are sent individually in place, preserving emission order.
  std::vector<Payload>& group_run = payload_scratch_;
  group_run.clear();
  auto flush = [&] {
    if (group_run.empty()) return;
    endpoint_.multicast_run(members_, group_run);
    group_run.clear();
  };
  for (Message& m : b) {
    if (m.is_p2p()) {
      flush();
      endpoint_.send(*m.point_to, std::move(m.data));
    } else {
      group_run.push_back(std::move(m.data));
    }
  }
  flush();
}

void Stack::to_app(Message m) {
  AppHeader h;
  try {
    h = AppHeader::pop(m);
  } catch (const DecodeError& e) {
    MSW_LOG(kWarn, "stack", now()) << to_string(self()) << " malformed app header: " << e.what();
    return;
  }
  const MsgId id{h.sender, h.seq,
                 h.kind == AppHeader::Kind::kView ? MsgId::Kind::kView : MsgId::Kind::kData};
  ++delivered_;
  // arg2 carries the sender id with bit 32 flagging view messages, so
  // streaming monitors can reconstruct the full MsgId from the event alone.
  tracer_->instant(n_app_deliver_, TelemetryTrack::kData, id.seq,
                   std::uint64_t{id.sender} |
                       (id.kind == MsgId::Kind::kView ? kDeliverViewFlag : 0));
  if (capture_ != nullptr) capture_->record_deliver(self(), id, m.data.view(), now());
  if (on_deliver_ && (id.seq & deliver_mask_) == 0) on_deliver_(id, m.data.view());
}

void Stack::to_app_batch(MessageBatch b) {
  // App delivery is inherently per-message (capture, counters, callback);
  // the batch only saved the trip through the layers.
  for (Message& m : b) to_app(std::move(m));
}

void Stack::on_packet_run(NodeId src, std::span<const Payload> run) {
  if (!batching_) {
    // The sender batched but this process opted out: unroll the run in
    // order, exactly as if the copies had arrived back to back.
    for (const Payload& p : run) on_packet(Packet{src, p});
    return;
  }
  MessageBatch batch;
  batch.reserve(run.size());
  for (const Payload& p : run) {
    Message m;
    m.data = p;
    m.wire_src = src;
    batch.push_back(std::move(m));
  }
  try {
    chain_->up_from_bottom_batch(std::move(batch));
  } catch (const DecodeError& e) {
    // Layers isolate malformed messages per message (Layer::up_batch); this
    // is the backstop for an empty chain or a batch-unaware throw.
    MSW_LOG(kDebug, "stack", now())
        << to_string(self()) << " dropped malformed packet run from " << to_string(src) << ": "
        << e.what();
  }
}

void Stack::on_packet(Packet p) {
  Message m;
  m.data = std::move(p.data);
  m.wire_src = p.src;
  try {
    chain_->up_from_bottom(std::move(m));
  } catch (const DecodeError& e) {
    // Malformed wire data (corruption, or ciphertext decrypted with the
    // wrong key): real stacks drop such packets at the point of failure.
    MSW_LOG(kDebug, "stack", now())
        << to_string(self()) << " dropped malformed packet from " << to_string(p.src) << ": "
        << e.what();
  }
}

}  // namespace msw
