#include "stack/stack.hpp"

#include "telemetry/hub.hpp"
#include "util/log.hpp"

namespace msw {

Stack::Stack(Network& net, NodeId self, std::vector<NodeId> members,
             std::vector<std::unique_ptr<Layer>> layers, Rng rng, TraceCapture* capture,
             TelemetryHub* hub)
    : endpoint_(net, self), members_(std::move(members)), rng_(rng), capture_(capture) {
  if (hub != nullptr) {
    tracer_ = &hub->tracer(self.v);
    metrics_ = &hub->node_metrics(self.v);
    metrics_->attach_counter("app.sent", &next_seq_);
    metrics_->attach_counter("app.delivered", &delivered_);
    n_app_send_ = tracer_->intern("app.send");
    n_app_deliver_ = tracer_->intern("app.deliver");
  } else {
    tracer_ = &Tracer::disabled();
    metrics_ = nullptr;
  }
  chain_ = std::make_unique<LayerChain>(
      *this, std::move(layers), [this](Message m) { to_network(std::move(m)); },
      [this](Message m) { to_app(std::move(m)); });
  endpoint_.set_handler([this](Packet p) { on_packet(std::move(p)); });
}

void Stack::start() { chain_->start(); }

void Stack::send(Bytes body) {
  const MsgId id{self().v, next_seq_++, MsgId::Kind::kData};
  tracer_->instant(n_app_send_, TelemetryTrack::kData, id.seq);
  if (capture_ != nullptr) capture_->record_send(self(), id, body, now());
  Message m = Message::group(std::move(body));
  AppHeader::push(m, AppHeader{AppHeader::Kind::kData, id.sender, id.seq});
  chain_->down_from_top(std::move(m));
}

void Stack::to_network(Message m) {
  if (m.is_p2p()) {
    endpoint_.send(*m.point_to, std::move(m.data));
  } else {
    endpoint_.multicast(members_, std::move(m.data));
  }
}

void Stack::to_app(Message m) {
  AppHeader h;
  try {
    h = AppHeader::pop(m);
  } catch (const DecodeError& e) {
    MSW_LOG(kWarn, "stack", now()) << to_string(self()) << " malformed app header: " << e.what();
    return;
  }
  const MsgId id{h.sender, h.seq,
                 h.kind == AppHeader::Kind::kView ? MsgId::Kind::kView : MsgId::Kind::kData};
  ++delivered_;
  tracer_->instant(n_app_deliver_, TelemetryTrack::kData, id.seq);
  if (capture_ != nullptr) capture_->record_deliver(self(), id, m.data.view(), now());
  if (on_deliver_) on_deliver_(id, m.data.view());
}

void Stack::on_packet(Packet p) {
  Message m;
  m.data = std::move(p.data);
  m.wire_src = p.src;
  try {
    chain_->up_from_bottom(std::move(m));
  } catch (const DecodeError& e) {
    // Malformed wire data (corruption, or ciphertext decrypted with the
    // wrong key): real stacks drop such packets at the point of failure.
    MSW_LOG(kDebug, "stack", now())
        << to_string(self()) << " dropped malformed packet from " << to_string(p.src) << ": "
        << e.what();
  }
}

}  // namespace msw
