#include "stack/capture.hpp"

namespace msw {

void TraceCapture::record_send(NodeId sender, const MsgId& id, std::span<const Byte> body,
                               Time t) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kSend;
  e.process = sender.v;
  e.msg = id;
  e.body.assign(body.begin(), body.end());
  e.time = t;
  trace_.push_back(std::move(e));
}

void TraceCapture::record_deliver(NodeId process, const MsgId& id, std::span<const Byte> body,
                                  Time t) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kDeliver;
  e.process = process.v;
  e.msg = id;
  e.body.assign(body.begin(), body.end());
  e.time = t;
  trace_.push_back(std::move(e));
}

std::size_t TraceCapture::deliver_count(NodeId process) const {
  std::size_t n = 0;
  for (const auto& e : trace_) {
    if (e.is_deliver() && e.process == process.v) ++n;
  }
  return n;
}

std::size_t TraceCapture::send_count(NodeId process) const {
  std::size_t n = 0;
  for (const auto& e : trace_) {
    if (e.is_send() && e.process == process.v) ++n;
  }
  return n;
}

}  // namespace msw
