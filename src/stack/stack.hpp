// One process's protocol stack: application boundary on top, network
// endpoint at the bottom, a LayerChain in between.
//
// The Stack stamps every application send with a global identity
// (AppHeader) and reports Send/Deliver events to the group's TraceCapture,
// so captured traces match the paper's system model exactly.
#pragma once

#include <functional>
#include <memory>

#include "net/endpoint.hpp"
#include "stack/capture.hpp"
#include "stack/layer.hpp"

namespace msw {

class TelemetryHub;

/// Application-side delivery callback. For ordinary messages `id.kind` is
/// kData and `body` is the payload; membership layers may also deliver
/// view notifications (kind kView, body = encoded member list). The body
/// is a borrowed view of the (possibly shared) receive buffer — copy it if
/// it must outlive the callback.
using DeliverFn = std::function<void(const MsgId& id, std::span<const Byte> body)>;

class Stack : public Services {
 public:
  /// `self` must already exist on `net`. `members` is the full group
  /// (including self), identical at every member.
  /// `hub`, when given, wires this node's Tracer and MetricsRegistry into
  /// the simulation's telemetry plane; layers reach them via Services.
  Stack(Network& net, NodeId self, std::vector<NodeId> members,
        std::vector<std::unique_ptr<Layer>> layers, Rng rng, TraceCapture* capture = nullptr,
        TelemetryHub* hub = nullptr);

  /// Same stack over the runtime boundary: `self` must already exist on
  /// `transport`. The layers are identical — the medium is the only thing
  /// that changes (sim adapter, threaded loopback, or UDP sockets).
  Stack(Transport& transport, NodeId self, std::vector<NodeId> members,
        std::vector<std::unique_ptr<Layer>> layers, Rng rng, TraceCapture* capture = nullptr,
        TelemetryHub* hub = nullptr);

  Stack(const Stack&) = delete;
  Stack& operator=(const Stack&) = delete;

  /// Start all layers. Call after every stack in the group is constructed
  /// (layers may message peers from start()).
  void start();

  /// Multicast an application payload to the group.
  void send(Bytes body);

  /// Multicast a run of application payloads submitted at one instant. With
  /// batching enabled the run rides the batched data plane — one layer
  /// dispatch per layer and one network scatter for the whole run; with it
  /// disabled this is exactly a loop over send().
  void send_batch(std::vector<Bytes> bodies);

  /// Toggle the batched data plane for this process (default on). Turning
  /// it off makes every batch route decay to the per-message path — the
  /// control arm of the batched-vs-unbatched equivalence test.
  void set_batching(bool on) { batching_ = on; }

  /// Optional app-delivery hook. `sample_mask` gates it inline: the hook
  /// fires only for seqs with (seq & sample_mask) == 0, so a sampling
  /// consumer (rt latency stamping) costs unsampled deliveries one
  /// compare instead of an indirect call. 0 (default) = every delivery.
  void set_on_deliver(DeliverFn fn, std::uint64_t sample_mask = 0) {
    on_deliver_ = std::move(fn);
    deliver_mask_ = sample_mask;
  }

  /// Messages this process has submitted.
  std::uint64_t sent() const { return next_seq_; }
  /// Messages delivered to the application at this process.
  std::uint64_t delivered() const { return delivered_; }

  // Services interface (used by layers).
  NodeId self() const override { return endpoint_.id(); }
  const std::vector<NodeId>& members() const override { return members_; }
  Time now() const override { return endpoint_.now(); }
  TimerId set_timer(Duration delay, std::function<void()> fn) override {
    return endpoint_.set_timer(delay, std::move(fn));
  }
  void cancel_timer(TimerId id) override { endpoint_.cancel_timer(id); }
  Rng& rng() override { return rng_; }
  void consume_cpu(Duration d) override { endpoint_.consume_cpu(d); }
  Tracer& tracer() override { return *tracer_; }
  MetricsRegistry* metrics() override { return metrics_; }
  bool batching() const override { return batching_; }
  TickArena* tick_arena() override { return endpoint_.tick_arena(); }

  LayerChain& chain() { return *chain_; }
  Endpoint& endpoint() { return endpoint_; }

 private:
  /// Shared constructor body: telemetry wiring, chain construction, and
  /// receive-handler installation (identical for every medium).
  void wire(std::vector<std::unique_ptr<Layer>> layers, TelemetryHub* hub);

  void to_network(Message m);
  void to_app(Message m);
  void on_packet(Packet p);
  void to_network_batch(MessageBatch b);
  void to_app_batch(MessageBatch b);
  void on_packet_run(NodeId src, std::span<const Payload> run);

  Endpoint endpoint_;
  std::vector<NodeId> members_;
  Rng rng_;
  TraceCapture* capture_;
  Tracer* tracer_;            // never null; the disabled singleton without a hub
  MetricsRegistry* metrics_;  // null without a hub
  std::uint32_t n_app_send_ = 0;
  std::uint32_t n_app_deliver_ = 0;
  std::unique_ptr<LayerChain> chain_;
  DeliverFn on_deliver_;
  std::uint64_t deliver_mask_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t delivered_ = 0;
  bool batching_ = true;
  std::vector<Payload> payload_scratch_;  // reused by to_network_batch
};

}  // namespace msw
