// A process group: n nodes on one network, each running an identical
// protocol stack built from a single LayerFactory (the paper's requirement
// that every process have the same stack), sharing one TraceCapture.
#pragma once

#include <memory>
#include <vector>

#include "sim/simulation.hpp"
#include "stack/stack.hpp"

namespace msw {

class Group {
 public:
  /// Creates `n` nodes on `net` and one stack per node. Call start() before
  /// sending. `capture_trace = false` skips the buffered TraceCapture
  /// entirely (O(messages) memory) — soak-scale runs rely on the streaming
  /// monitors instead; trace() then stays empty.
  Group(Simulation& sim, Network& net, std::size_t n, const LayerFactory& factory,
        bool capture_trace = true);

  Group(const Group&) = delete;
  Group& operator=(const Group&) = delete;

  void start();

  std::size_t size() const { return stacks_.size(); }
  Stack& stack(std::size_t i) { return *stacks_[i]; }
  NodeId node(std::size_t i) const { return members_[i]; }
  const std::vector<NodeId>& members() const { return members_; }

  /// Multicast from member i.
  void send(std::size_t i, Bytes body) { stacks_[i]->send(std::move(body)); }

  /// Multicast a same-instant run from member i through the batched path.
  void send_batch(std::size_t i, std::vector<Bytes> bodies) {
    stacks_[i]->send_batch(std::move(bodies));
  }

  /// Toggle the batched data plane group-wide (see Stack::set_batching).
  void set_batching(bool on) {
    for (auto& s : stacks_) s->set_batching(on);
  }

  TraceCapture& capture() { return capture_; }
  const Trace& trace() const { return capture_.trace(); }

  /// Total application-level deliveries across all members.
  std::uint64_t total_delivered() const;
  /// Total application-level sends across all members.
  std::uint64_t total_sent() const;

 private:
  std::vector<NodeId> members_;
  TraceCapture capture_;
  std::vector<std::unique_ptr<Stack>> stacks_;
};

}  // namespace msw
