#include "stack/message.hpp"

namespace msw {

Message Message::group(Bytes payload) {
  Message m;
  m.data = std::move(payload);
  return m;
}

Message Message::p2p(NodeId to, Bytes payload) {
  Message m;
  m.data = std::move(payload);
  m.point_to = to;
  return m;
}

void Message::push_header(const std::function<void(Writer&)>& fill) {
  const std::size_t before = data.size();
  Writer w(data);
  fill(w);
  const auto header_len = static_cast<std::uint32_t>(data.size() - before);
  w.u32(header_len);
}

void Message::pop_header(const std::function<void(Reader&)>& read) {
  if (data.size() < 4) throw DecodeError("pop_header: buffer too small for length word");
  Reader len_reader(std::span<const Byte>(data).last(4));
  const std::uint32_t header_len = len_reader.u32();
  if (data.size() < 4 + static_cast<std::size_t>(header_len)) {
    throw DecodeError("pop_header: header length exceeds buffer");
  }
  const std::size_t header_begin = data.size() - 4 - header_len;
  Reader r(std::span<const Byte>(data).subspan(header_begin, header_len));
  read(r);
  r.expect_done();
  data.resize(header_begin);
}

void AppHeader::push(Message& m, const AppHeader& h) {
  m.push_header([&](Writer& w) {
    w.u8(static_cast<std::uint8_t>(h.kind));
    w.u32(h.sender);
    w.u64(h.seq);
  });
}

AppHeader AppHeader::pop(Message& m) {
  AppHeader h;
  m.pop_header([&](Reader& r) {
    h.kind = static_cast<Kind>(r.u8());
    h.sender = r.u32();
    h.seq = r.u64();
  });
  return h;
}

}  // namespace msw
