#include "stack/message.hpp"

namespace msw {

Message Message::group(Payload payload) {
  Message m;
  m.data = std::move(payload);
  return m;
}

Message Message::p2p(NodeId to, Payload payload) {
  Message m;
  m.data = std::move(payload);
  m.point_to = to;
  return m;
}

void Message::push_header(FunctionRef<void(Writer&)> fill) {
  Bytes& out = data.begin_append();
  const std::size_t before = out.size();
  Writer w(out);
  fill(w);
  w.u32(static_cast<std::uint32_t>(out.size() - before));
  data.end_append();
}

void Message::push_header_raw(std::span<const Byte> header) {
  Bytes& out = data.begin_append();
  out.insert(out.end(), header.begin(), header.end());
  Writer w(out);
  w.u32(static_cast<std::uint32_t>(header.size()));
  data.end_append();
}

void Message::pop_header(FunctionRef<void(Reader&)> read) {
  const std::span<const Byte> v = data.view();
  if (v.size() < 4) throw DecodeError("pop_header: buffer too small for length word");
  Reader len_reader(v.last(4));
  const std::uint32_t header_len = len_reader.u32();
  if (v.size() < 4 + static_cast<std::size_t>(header_len)) {
    throw DecodeError("pop_header: header length exceeds buffer");
  }
  const std::size_t header_begin = v.size() - 4 - header_len;
  Reader r(v.subspan(header_begin, header_len));
  read(r);
  r.expect_done();
  data.shrink(header_begin);
}

void AppHeader::push(Message& m, const AppHeader& h) {
  m.push_header([&](Writer& w) {
    w.reserve(13);
    w.u8(static_cast<std::uint8_t>(h.kind));
    w.u32(h.sender);
    w.u64(h.seq);
  });
}

AppHeader AppHeader::pop(Message& m) {
  AppHeader h;
  m.pop_header([&](Reader& r) {
    h.kind = static_cast<Kind>(r.u8());
    h.sender = r.u32();
    h.seq = r.u64();
  });
  return h;
}

}  // namespace msw
