// Messages travelling through a protocol stack.
//
// A Message carries a copy-on-write Payload (see util/payload.hpp). On the
// way down a stack each layer appends its header to the *tail* (with a
// trailing length word); on the way up each layer pops its header off the
// tail. This is functionally identical to the classic prepend-a-header
// discipline but keeps every operation O(header) instead of O(message) —
// and because popping only shrinks the payload's logical view, the receive
// path of an N-way multicast strips headers from one shared buffer with
// zero copies.
//
// Header callbacks are taken by FunctionRef: the callee invokes them before
// returning, so no ownership (and no std::function allocation) is needed,
// and the per-layer fill/read lambdas inline into the push/pop bodies.
//
// Routing intent (group multicast vs. point-to-point) travels alongside the
// bytes; only the bottom of the stack interprets it. On the receive path
// `wire_src` records which node the enclosing packet physically came from —
// simulator ground truth, usable for routing replies but not for
// authenticated identity (that is the integrity layer's job).
#pragma once

#include <optional>

#include "net/node_id.hpp"
#include "util/bytes.hpp"
#include "util/function_ref.hpp"
#include "util/payload.hpp"

namespace msw {

struct Message {
  Payload data;

  /// When set, the bottom layer unicasts to this node instead of
  /// multicasting to the group.
  std::optional<NodeId> point_to;

  /// Receive path only: the node the packet physically arrived from.
  NodeId wire_src{};

  static Message group(Payload payload);
  static Message p2p(NodeId to, Payload payload);

  bool is_p2p() const { return point_to.has_value(); }
  std::size_t size() const { return data.size(); }

  /// Append a header: `fill` writes the header fields; a u32 length word is
  /// appended after them so pop_header can find the boundary. If the
  /// payload buffer is shared, this is the one place the send path pays a
  /// copy (copy-on-write).
  void push_header(FunctionRef<void(Writer&)> fill);

  /// Append an already-encoded header verbatim (plus the trailing length
  /// word). Batched layer paths encode one flat header into arena scratch
  /// and stamp it onto every message of the run through this, skipping the
  /// per-message Writer setup.
  void push_header_raw(std::span<const Byte> header);

  /// Pop the tail header: `read` receives a Reader scoped to exactly the
  /// header bytes and must consume all of them. Throws DecodeError on a
  /// malformed buffer. Never copies and never mutates a shared buffer —
  /// the consumed header is discarded by shrinking the logical view.
  void pop_header(FunctionRef<void(Reader&)> read);
};

/// The header the Stack itself pushes at the application boundary. It gives
/// every application message a global identity (origin, per-origin sequence
/// number) and marks view-change notifications synthesized by membership
/// layers. The format is public so that layers (e.g. vsync) can deliver
/// synthetic app-level messages.
struct AppHeader {
  enum class Kind : std::uint8_t { kData = 0, kView = 1 };

  Kind kind = Kind::kData;
  std::uint32_t sender = 0;
  std::uint64_t seq = 0;

  static void push(Message& m, const AppHeader& h);
  static AppHeader pop(Message& m);
};

}  // namespace msw
