// Messages travelling through a protocol stack.
//
// A Message owns a flat byte buffer. On the way down a stack each layer
// appends its header to the *tail* (with a trailing length word); on the
// way up each layer pops its header off the tail. This is functionally
// identical to the classic prepend-a-header discipline but keeps every
// operation O(header) instead of O(message).
//
// Routing intent (group multicast vs. point-to-point) travels alongside the
// bytes; only the bottom of the stack interprets it. On the receive path
// `wire_src` records which node the enclosing packet physically came from —
// simulator ground truth, usable for routing replies but not for
// authenticated identity (that is the integrity layer's job).
#pragma once

#include <functional>
#include <optional>

#include "net/node_id.hpp"
#include "util/bytes.hpp"

namespace msw {

struct Message {
  Bytes data;

  /// When set, the bottom layer unicasts to this node instead of
  /// multicasting to the group.
  std::optional<NodeId> point_to;

  /// Receive path only: the node the packet physically arrived from.
  NodeId wire_src{};

  static Message group(Bytes payload);
  static Message p2p(NodeId to, Bytes payload);

  bool is_p2p() const { return point_to.has_value(); }
  std::size_t size() const { return data.size(); }

  /// Append a header: `fill` writes the header fields; a u32 length word is
  /// appended after them so pop_header can find the boundary.
  void push_header(const std::function<void(Writer&)>& fill);

  /// Pop the tail header: `read` receives a Reader scoped to exactly the
  /// header bytes and must consume all of them. Throws DecodeError on a
  /// malformed buffer.
  void pop_header(const std::function<void(Reader&)>& read);
};

/// The header the Stack itself pushes at the application boundary. It gives
/// every application message a global identity (origin, per-origin sequence
/// number) and marks view-change notifications synthesized by membership
/// layers. The format is public so that layers (e.g. vsync) can deliver
/// synthetic app-level messages.
struct AppHeader {
  enum class Kind : std::uint8_t { kData = 0, kView = 1 };

  Kind kind = Kind::kData;
  std::uint32_t sender = 0;
  std::uint64_t seq = 0;

  static void push(Message& m, const AppHeader& h);
  static AppHeader pop(Message& m);
};

}  // namespace msw
