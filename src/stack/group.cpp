#include "stack/group.hpp"

namespace msw {

Group::Group(Simulation& sim, Network& net, std::size_t n, const LayerFactory& factory,
             bool capture_trace) {
  TelemetryHub& hub = sim.telemetry();
  if (hub.network() != &net) {
    // First group on this network: make it the incarnation source and hook
    // its counters into the simulation-scope registry.
    hub.attach_network(&net);
    net.bind_metrics(hub.global());
  }
  members_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) members_.push_back(net.add_node());
  stacks_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    stacks_.push_back(std::make_unique<Stack>(net, members_[i], members_,
                                              factory(members_[i], members_), sim.fork_rng(),
                                              capture_trace ? &capture_ : nullptr, &hub));
  }
}

void Group::start() {
  for (auto& s : stacks_) s->start();
}

std::uint64_t Group::total_delivered() const {
  std::uint64_t n = 0;
  for (const auto& s : stacks_) n += s->delivered();
  return n;
}

std::uint64_t Group::total_sent() const {
  std::uint64_t n = 0;
  for (const auto& s : stacks_) n += s->sent();
  return n;
}

}  // namespace msw
