// A run of Messages travelling through the stack together.
//
// MessageBatch is the unit of the batched data plane: one virtual
// dispatch, one CPU charge, and one flat header encode move a whole run of
// messages through a layer instead of paying each cost per message. The
// container is a small-vector: runs up to kInline messages (the common
// case — a gap-fill release, a handful of same-tick sends) live entirely
// in the batch object; larger runs spill wholesale to a heap vector so
// iteration stays contiguous either way.
//
// A batch is an ordering promise, not a semantic boundary: layers must
// process its messages exactly as if they had arrived back-to-back through
// the per-message hooks, in order. Layers that cannot keep that promise
// for a particular run (a mixed p2p/group run, an SP epoch boundary
// mid-batch) fall back to the per-message path for it — see DESIGN.md
// section 11 for the batch-transparency rules.
#pragma once

#include <array>
#include <cstddef>
#include <utility>

#include "stack/message.hpp"

namespace msw {

class MessageBatch {
 public:
  /// Runs up to this long never touch the heap.
  static constexpr std::size_t kInline = 8;

  MessageBatch() = default;
  explicit MessageBatch(Message m) { push_back(std::move(m)); }

  MessageBatch(const MessageBatch&) = delete;
  MessageBatch& operator=(const MessageBatch&) = delete;

  MessageBatch(MessageBatch&& other) noexcept
      : inline_(std::move(other.inline_)),
        heap_(std::move(other.heap_)),
        size_(other.size_) {
    other.size_ = 0;
    other.heap_.clear();
  }
  MessageBatch& operator=(MessageBatch&& other) noexcept {
    if (this != &other) {
      inline_ = std::move(other.inline_);
      heap_ = std::move(other.heap_);
      size_ = other.size_;
      other.size_ = 0;
      other.heap_.clear();
    }
    return *this;
  }

  void push_back(Message m) {
    if (size_ < kInline && heap_.empty()) {
      inline_[size_] = std::move(m);
    } else {
      spill();
      heap_.push_back(std::move(m));
    }
    ++size_;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Message* data() { return heap_.empty() ? inline_.data() : heap_.data(); }
  const Message* data() const { return heap_.empty() ? inline_.data() : heap_.data(); }

  Message& operator[](std::size_t i) { return data()[i]; }
  const Message& operator[](std::size_t i) const { return data()[i]; }
  Message& front() { return data()[0]; }
  Message& back() { return data()[size_ - 1]; }

  Message* begin() { return data(); }
  Message* end() { return data() + size_; }
  const Message* begin() const { return data(); }
  const Message* end() const { return data() + size_; }

  void clear() {
    for (std::size_t i = 0; i < size_ && i < kInline; ++i) inline_[i] = Message{};
    heap_.clear();
    size_ = 0;
  }

  void reserve(std::size_t n) {
    if (n > kInline) {
      spill();
      heap_.reserve(n);
    }
  }

 private:
  /// Move every inline element to the heap vector so storage is contiguous
  /// past kInline. After this, heap_ holds all messages.
  void spill() {
    if (!heap_.empty() || size_ == 0) return;
    heap_.reserve(size_ * 2);
    for (std::size_t i = 0; i < size_; ++i) heap_.push_back(std::move(inline_[i]));
  }

  std::array<Message, kInline> inline_;
  std::vector<Message> heap_;  // holds *all* messages once size_ > kInline
  std::size_t size_ = 0;
};

}  // namespace msw
