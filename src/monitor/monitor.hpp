// Streaming, bounded-memory property monitors.
//
// The trace oracle (trace/properties.hpp + harness/fuzz.cpp) buffers whole
// runs and judges them post-hoc — exact, but O(messages) memory, which is
// unusable at soak scale. The monitors here consume the same run as a
// stream of typed telemetry events (app.send / app.deliver /
// sp.epoch.install, see telemetry/events.hpp) and keep only
// O(members + window) state, so the correctness plane runs at the same
// scale as the perf plane.
//
// Verdict model: a monitor never buffers history to re-examine; each event
// either advances bounded state or fires a Violation. Violations are
// appended to a shared capped log (first kMaxViolations kept verbatim, the
// rest counted), so a pathological run cannot make the checker itself
// unbounded. finalize() runs end-of-stream checks (completeness,
// convergence) once the harness has reached quiescence.
//
// Sampling: MonitorSet can thin the windowed order checks by message
// identity — all events of a kept message are kept at every member, so
// window positions stay consistent across the group. Counting checks
// (reliability totals, per-member epoch monotonicity) always see every
// event; only the per-message window state is thinned.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace msw {

/// One property failure, with enough identity to act on the report: which
/// member observed it, which message (sender/seq) and epoch were involved.
struct Violation {
  std::string property;  // "fifo", "causal", "total_order", "epoch", "reliable"
  std::string detail;    // human-readable explanation
  std::uint32_t node = 0;
  std::uint32_t sender = 0;
  std::uint64_t seq = 0;
  std::uint64_t epoch = 0;
  Time t = 0;
};

/// Capped violation sink shared by all monitors of a MonitorSet.
class ViolationLog {
 public:
  static constexpr std::size_t kMaxViolations = 64;

  void report(Violation v) {
    ++total_;
    if (kept_.size() < kMaxViolations) kept_.push_back(std::move(v));
  }

  bool ok() const { return total_ == 0; }
  std::uint64_t total() const { return total_; }
  const std::vector<Violation>& kept() const { return kept_; }
  /// First violation rendered as "property: detail", or "" when clean —
  /// shaped like the trace oracle's reason string.
  std::string first_reason() const;

 private:
  std::vector<Violation> kept_;
  std::uint64_t total_ = 0;
};

/// Typed view of one app.deliver event.
struct DeliverObs {
  std::uint32_t node = 0;    // receiving member
  std::uint32_t sender = 0;  // originating member
  std::uint64_t seq = 0;     // per-sender dense sequence number
  std::uint64_t epoch = 0;   // SP epoch the delivery ran under
  std::uint64_t incarnation = 0;
  bool view = false;  // membership message, not application data
  bool sampled = true;  // false when the sampling knob thinned this message
  Time t = 0;
};

/// Streaming property checker. Handlers must be O(1) or O(members) per
/// event and must not buffer unbounded history; state_cells() reports the
/// current footprint so harnesses can assert flatness.
class Monitor {
 public:
  explicit Monitor(ViolationLog& log) : log_(log) {}
  virtual ~Monitor() = default;

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  virtual std::string_view property() const = 0;

  virtual void on_send(std::uint32_t node, std::uint64_t seq, bool sampled, Time t) {
    (void)node, (void)seq, (void)sampled, (void)t;
  }
  virtual void on_deliver(const DeliverObs& d) { (void)d; }
  virtual void on_epoch_install(std::uint32_t node, std::uint64_t epoch, Time t) {
    (void)node, (void)epoch, (void)t;
  }
  /// End-of-stream checks, called once at quiescence. now = sim time then.
  virtual void finalize(Time now) { (void)now; }

  /// Current state footprint in cells (map entries, window slots, interval
  /// runs...). The unit is deliberately coarse: the contract is that this
  /// number stays flat as messages flow, not what exactly a cell costs.
  virtual std::size_t state_cells() const = 0;

 protected:
  void report(Violation v) { log_.report(std::move(v)); }
  ViolationLog& log_;
};

}  // namespace msw
