// MonitorSet: the bridge between the telemetry plane and the property
// monitors. It is the one TelemetrySink of a run — attached via
// TelemetryHub::attach_sink, it decodes the typed app.send / app.deliver /
// sp.epoch.install instants and fans them out to whichever monitors were
// added, applying the sampling knob and the shared spurious-delivery check
// (a delivered seq at or beyond the sender's observed send count was never
// sent — O(members) state, no sent-set needed because Stack seqs are
// dense).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "monitor/monitors.hpp"
#include "telemetry/events.hpp"

namespace msw {

class TelemetryHub;

struct MonitorOptions {
  std::size_t members = 0;  // required; monitors support up to 64 members
  /// Keep 1-in-N messages (by identity hash, consistent across members) in
  /// the windowed order/causal checks. 1 = check everything. Counting
  /// checks (reliable, epoch, fifo) always see every event.
  std::uint64_t sample_period = 1;
  /// Max in-flight entries held by the order/causal windows. Overflow is
  /// itself reported as a violation (a member lagging unboundedly).
  std::size_t window_cap = 1 << 16;
  /// Age after which a delivery hole behind later traffic is a loss
  /// (ReliableMonitor::check_stalls). 0 disables streaming stall checks.
  Time stall_window = 0;
  /// Cross-check that all members deliver a message under one SP epoch
  /// (needs a SwitchLayer in the stack to be meaningful).
  bool check_epoch_consistency = true;
};

class MonitorSet : public TelemetrySink {
 public:
  /// Interns the event names it dispatches on and attaches itself as the
  /// hub's sink. Detaches on destruction. The set must outlive the last
  /// telemetry emission or be destroyed after the Simulation stops running.
  MonitorSet(TelemetryHub& hub, MonitorOptions opts);
  ~MonitorSet() override;

  /// Property attachment — add what the stack under test claims.
  /// The hybrid sequencer/token stack claims total order + epochs +
  /// reliability (it does NOT claim per-sender FIFO: the sequencer orders
  /// whatever reaches it first).
  void add_total_order();
  void add_epoch();
  void add_reliable();
  void add_fifo();
  void add_causal();
  void attach_hybrid_suite();

  void on_telemetry(const TelemetryEvent& e) override;

  /// End-of-stream checks; call once at quiescence.
  void finalize(Time now);
  /// Streaming stall scan; call once per harness chunk.
  void check_stalls(Time now);

  bool ok() const { return log_.ok(); }
  const ViolationLog& violations() const { return log_; }
  std::string first_reason() const { return log_.first_reason(); }

  /// Current footprint across all monitors plus the set's own state.
  std::size_t state_cells() const;
  std::uint64_t sends_seen() const { return sends_seen_; }
  std::uint64_t delivers_seen() const { return delivers_seen_; }
  std::uint64_t sampled_out() const { return sampled_out_; }

  TotalOrderMonitor* total_order() { return total_order_; }
  ReliableMonitor* reliable() { return reliable_; }
  EpochMonitor* epoch() { return epoch_; }

 private:
  bool keep(std::uint32_t sender, std::uint64_t seq) const;

  TelemetryHub& hub_;
  MonitorOptions opts_;
  ViolationLog log_;
  std::vector<std::unique_ptr<Monitor>> monitors_;
  TotalOrderMonitor* total_order_ = nullptr;
  ReliableMonitor* reliable_ = nullptr;
  EpochMonitor* epoch_ = nullptr;

  std::uint32_t n_send_ = 0;
  std::uint32_t n_deliver_ = 0;
  std::uint32_t n_epoch_install_ = 0;

  std::vector<std::uint64_t> sent_count_;  // per sender: dense send count
  std::uint64_t sends_seen_ = 0;
  std::uint64_t delivers_seen_ = 0;
  std::uint64_t view_delivers_ = 0;
  std::uint64_t sampled_out_ = 0;
};

}  // namespace msw
