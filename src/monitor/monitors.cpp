#include "monitor/monitors.hpp"

#include <algorithm>
#include <sstream>

namespace msw {

std::string ViolationLog::first_reason() const {
  if (kept_.empty()) return {};
  return kept_.front().property + ": " + kept_.front().detail;
}

namespace {

std::uint64_t bit(std::uint32_t node) { return std::uint64_t{1} << node; }

std::uint64_t full_mask_for(std::size_t members) {
  return members >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << members) - 1;
}

std::string msg_str(std::uint32_t sender, std::uint64_t seq) {
  std::ostringstream os;
  os << "(" << sender << "," << seq << ")";
  return os.str();
}

/// Epoch counters may wrap u64; a drop by more than half the range is the
/// wrap (monotone in epoch space), anything else is a genuine regression.
bool epoch_regressed(std::uint64_t prev, std::uint64_t next) {
  return next < prev && prev - next <= (~std::uint64_t{0} >> 1);
}

}  // namespace

// ---------------------------------------------------------------- FIFO

FifoMonitor::FifoMonitor(ViolationLog& log, std::size_t members)
    : Monitor(log), n_(members), last_(members * members, 0) {}

void FifoMonitor::on_deliver(const DeliverObs& d) {
  if (d.view || d.node >= n_ || d.sender >= n_) return;
  std::uint64_t& last = last_[d.node * n_ + d.sender];
  if (last != 0 && d.seq < last) {
    std::ostringstream os;
    os << "member " << d.node << " delivered " << msg_str(d.sender, d.seq)
       << (d.seq + 1 == last ? " again (duplicate)" : " after a later one")
       << " (last seq " << last - 1 << ")";
    report({"fifo", os.str(), d.node, d.sender, d.seq, d.epoch, d.t});
    return;
  }
  last = d.seq + 1;
}

// -------------------------------------------------------------- causal

CausalMonitor::CausalMonitor(ViolationLog& log, std::size_t members, std::size_t window_cap)
    : Monitor(log),
      n_(members),
      window_cap_(window_cap == 0 ? 1 : window_cap),
      full_mask_(full_mask_for(members)),
      delivered_(members * members, 0) {}

void CausalMonitor::on_send(std::uint32_t node, std::uint64_t seq, bool /*sampled*/, Time t) {
  if (node >= n_) return;
  Entry e;
  e.sender = node;
  e.seq = seq;
  // Causal deps: everything the sender had delivered, plus its own earlier
  // sends (FIFO makes those a dependency even before self-delivery).
  e.vc.assign(delivered_.begin() + node * n_, delivered_.begin() + (node + 1) * n_);
  e.vc[node] = std::max(e.vc[node], seq);
  if (window_.size() >= window_cap_) {
    if (!overflow_reported_) {
      overflow_reported_ = true;
      report({"causal", "dependency window overflowed its cap — some member lags unboundedly",
              node, node, seq, 0, t});
    }
    index_.erase(msg_key(window_.front().sender, window_.front().seq));
    window_.pop_front();
    ++front_serial_;
  }
  index_.emplace(msg_key(node, seq), next_serial_++);
  window_.push_back(std::move(e));
}

void CausalMonitor::on_deliver(const DeliverObs& d) {
  if (d.view || d.node >= n_ || d.sender >= n_) return;
  const auto it = index_.find(msg_key(d.sender, d.seq));
  if (it != index_.end()) {
    Entry& e = window_[it->second - front_serial_];
    for (std::size_t a = 0; a < n_; ++a) {
      if (delivered_[d.node * n_ + a] < e.vc[a]) {
        std::ostringstream os;
        os << "member " << d.node << " delivered " << msg_str(d.sender, d.seq)
           << " before its dependency from sender " << a << " (has "
           << delivered_[d.node * n_ + a] << ", needs " << e.vc[a] << ")";
        report({"causal", os.str(), d.node, d.sender, d.seq, d.epoch, d.t});
        break;
      }
    }
    e.mask |= bit(d.node);
    while (!window_.empty() && window_.front().mask == full_mask_) {
      index_.erase(msg_key(window_.front().sender, window_.front().seq));
      window_.pop_front();
      ++front_serial_;
    }
  }
  ++delivered_[d.node * n_ + d.sender];
}

std::size_t CausalMonitor::state_cells() const {
  return delivered_.size() + window_.size() * (n_ + 2);
}

// --------------------------------------------------------- total order

TotalOrderMonitor::TotalOrderMonitor(ViolationLog& log, std::size_t members,
                                     std::size_t window_cap, bool check_epoch_consistency)
    : Monitor(log),
      n_(members),
      window_cap_(window_cap == 0 ? 1 : window_cap),
      check_epoch_(check_epoch_consistency),
      full_mask_(full_mask_for(members)),
      pos_(members, 0) {}

void TotalOrderMonitor::retire_front() {
  index_.erase(msg_key(window_.front().sender, window_.front().seq));
  window_.pop_front();
  ++front_pos_;
}

void TotalOrderMonitor::on_deliver(const DeliverObs& d) {
  if (d.view || !d.sampled || d.node >= n_ || d.sender >= n_) return;
  const std::uint64_t p = pos_[d.node];
  const auto it = index_.find(msg_key(d.sender, d.seq));
  if (it == index_.end()) {
    // First delivery anywhere: this member extends the group order, so its
    // own position must be the tip. A mismatch is either order divergence
    // or a re-delivery of an already-retired message.
    if (p != next_pos_) {
      std::ostringstream os;
      os << "member " << d.node << " delivered " << msg_str(d.sender, d.seq)
         << " as its delivery #" << p << " but the group order has " << next_pos_
         << " messages (divergent order or duplicate of a retired message)";
      report({"total_order", os.str(), d.node, d.sender, d.seq, d.epoch, d.t});
    }
    if (window_.size() >= window_cap_) {
      if (!overflow_reported_) {
        overflow_reported_ = true;
        report({"total_order",
                "order window overflowed its cap — some member lags unboundedly", d.node,
                d.sender, d.seq, d.epoch, d.t});
      }
      retire_front();
    }
    index_.emplace(msg_key(d.sender, d.seq), next_pos_);
    window_.push_back(Entry{d.sender, d.seq, d.epoch, bit(d.node)});
    ++next_pos_;
    pos_[d.node] = p + 1;
    return;
  }
  const std::uint64_t g = it->second;
  Entry& e = window_[g - front_pos_];
  if (e.mask & bit(d.node)) {
    std::ostringstream os;
    os << "duplicate delivery of " << msg_str(d.sender, d.seq) << " at member " << d.node;
    report({"total_order", os.str(), d.node, d.sender, d.seq, d.epoch, d.t});
    return;  // a duplicate does not advance the member's position
  }
  if (g != p) {
    std::ostringstream os;
    os << "member " << d.node << " delivered " << msg_str(d.sender, d.seq) << " as its delivery #"
       << p << " but the group order has it at position " << g;
    report({"total_order", os.str(), d.node, d.sender, d.seq, d.epoch, d.t});
  }
  if (check_epoch_ && e.epoch != d.epoch) {
    std::ostringstream os;
    os << "message " << msg_str(d.sender, d.seq) << " delivered in epoch " << e.epoch
       << " at one member but " << d.epoch << " at member " << d.node;
    report({"epoch", os.str(), d.node, d.sender, d.seq, d.epoch, d.t});
  }
  e.mask |= bit(d.node);
  pos_[d.node] = p + 1;
  while (!window_.empty() && window_.front().mask == full_mask_) retire_front();
}

void TotalOrderMonitor::finalize(Time now) {
  if (window_.empty()) return;
  const Entry& e = window_.front();
  std::uint32_t missing = 0;
  for (std::uint32_t i = 0; i < n_; ++i) {
    if (!(e.mask & bit(i))) {
      missing = i;
      break;
    }
  }
  std::ostringstream os;
  os << window_.size() << " message(s) not delivered by every member at quiescence; oldest is "
     << msg_str(e.sender, e.seq) << ", first missing member " << missing;
  report({"total_order", os.str(), missing, e.sender, e.seq, e.epoch, now});
}

// --------------------------------------------------------------- epoch

EpochMonitor::EpochMonitor(ViolationLog& log, std::size_t members)
    : Monitor(log), n_(members), last_epoch_(members, 0), has_(members, false) {}

void EpochMonitor::observe(std::uint32_t node, std::uint64_t epoch, Time t, bool install) {
  if (node >= n_) return;
  if (has_[node] && epoch_regressed(last_epoch_[node], epoch)) {
    std::ostringstream os;
    os << "old-before-new violated at member " << node << ": epoch " << last_epoch_[node]
       << " then " << epoch << (install ? " (install)" : " (delivery)");
    report({"epoch", os.str(), node, node, 0, epoch, t});
  }
  last_epoch_[node] = epoch;
  has_[node] = true;
}

void EpochMonitor::on_deliver(const DeliverObs& d) {
  if (d.view) return;
  observe(d.node, d.epoch, d.t, false);
}

void EpochMonitor::on_epoch_install(std::uint32_t node, std::uint64_t epoch, Time t) {
  ++installs_;
  observe(node, epoch, t, true);
}

void EpochMonitor::finalize(Time now) {
  // Convergence: all members with any epoch evidence ended on one epoch.
  // Members with no evidence (never delivered, never switched) are skipped
  // — the stream cannot know their initial epoch.
  bool have_ref = false;
  std::uint64_t ref = 0;
  std::uint32_t ref_node = 0;
  for (std::uint32_t i = 0; i < n_; ++i) {
    if (!has_[i]) continue;
    if (!have_ref) {
      have_ref = true;
      ref = last_epoch_[i];
      ref_node = i;
    } else if (last_epoch_[i] != ref) {
      std::ostringstream os;
      os << "member " << i << " ended on epoch " << last_epoch_[i] << " but member " << ref_node
         << " on " << ref;
      report({"epoch", os.str(), i, i, 0, last_epoch_[i], now});
      return;
    }
  }
}

// ------------------------------------------------------------ reliable

ReliableMonitor::ReliableMonitor(ViolationLog& log, std::size_t members, Time stall_window)
    : Monitor(log),
      n_(members),
      stall_window_(stall_window),
      sent_(members, 0),
      cells_(members * members) {}

void ReliableMonitor::on_send(std::uint32_t node, std::uint64_t seq, bool /*sampled*/,
                              Time /*t*/) {
  if (node >= n_) return;
  sent_[node] = std::max(sent_[node], seq + 1);
}

void ReliableMonitor::on_deliver(const DeliverObs& d) {
  if (d.view || d.node >= n_ || d.sender >= n_) return;
  Cell& c = cell(d.node, d.sender);
  const std::uint64_t before = c.seen.contiguous();
  if (!c.seen.insert(d.seq)) {
    std::ostringstream os;
    os << "duplicate delivery of " << msg_str(d.sender, d.seq) << " at member " << d.node;
    report({"reliable", os.str(), d.node, d.sender, d.seq, d.epoch, d.t});
    return;
  }
  if (c.seen.contiguous() != before) c.last_progress = d.t;
}

void ReliableMonitor::check_stalls(Time now) {
  if (stall_window_ == 0) return;
  for (std::uint32_t r = 0; r < n_; ++r) {
    for (std::uint32_t s = 0; s < n_; ++s) {
      Cell& c = cell(r, s);
      // A hole with traffic already delivered past it that has not filled
      // within the stability window is a loss, not latency. (A merely
      // stuck prefix with nothing beyond it is an idle sender.)
      if (!c.seen.has_gaps() || now - c.last_progress <= stall_window_) continue;
      const auto holes = c.seen.missing_ranges(sent_[s], 1);
      std::ostringstream os;
      os << "member " << r << " still missing " << msg_str(s, holes.empty() ? 0 : holes[0].begin)
         << " after " << (now - c.last_progress) / kMillisecond
         << " ms with later messages delivered";
      report({"reliable", os.str(), r, s, holes.empty() ? 0 : holes[0].begin, 0, now});
      c.last_progress = now;  // re-arm instead of firing every scan
    }
  }
}

void ReliableMonitor::finalize(Time now) {
  for (std::uint32_t r = 0; r < n_; ++r) {
    for (std::uint32_t s = 0; s < n_; ++s) {
      const Cell& c = cell(r, s);
      if (c.seen.contiguous() == sent_[s] && !c.seen.has_gaps()) continue;
      const auto holes = c.seen.missing_ranges(sent_[s], 1);
      const std::uint64_t first = holes.empty() ? c.seen.contiguous() : holes[0].begin;
      std::ostringstream os;
      os << "reliability violated: member " << r << " never delivered " << msg_str(s, first)
         << " (" << sent_[s] << " sent)";
      report({"reliable", os.str(), r, s, first, 0, now});
      return;  // one representative failure, like the oracle
    }
  }
}

std::size_t ReliableMonitor::state_cells() const {
  std::size_t cells = sent_.size();
  for (const Cell& c : cells_) {
    // contiguous counter + progress stamp + one cell per interval run.
    cells += 2 + c.seen.runs();
  }
  return cells;
}

}  // namespace msw
