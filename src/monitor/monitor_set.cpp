#include "monitor/monitor_set.hpp"

#include <sstream>

#include "telemetry/hub.hpp"

namespace msw {
namespace {

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

MonitorSet::MonitorSet(TelemetryHub& hub, MonitorOptions opts)
    : hub_(hub), opts_(opts), sent_count_(opts.members, 0) {
  // Interning is idempotent per NameTable, so the ids match whatever the
  // stacks intern at wiring time — before or after this constructor runs.
  n_send_ = hub.names().intern("app.send");
  n_deliver_ = hub.names().intern("app.deliver");
  n_epoch_install_ = hub.names().intern("sp.epoch.install");
  hub.attach_sink(this);
}

MonitorSet::~MonitorSet() {
  if (hub_.sink() == this) hub_.detach_sink();
}

void MonitorSet::add_total_order() {
  auto m = std::make_unique<TotalOrderMonitor>(log_, opts_.members, opts_.window_cap,
                                               opts_.check_epoch_consistency);
  total_order_ = m.get();
  monitors_.push_back(std::move(m));
}

void MonitorSet::add_epoch() {
  auto m = std::make_unique<EpochMonitor>(log_, opts_.members);
  epoch_ = m.get();
  monitors_.push_back(std::move(m));
}

void MonitorSet::add_reliable() {
  auto m = std::make_unique<ReliableMonitor>(log_, opts_.members, opts_.stall_window);
  reliable_ = m.get();
  monitors_.push_back(std::move(m));
}

void MonitorSet::add_fifo() {
  monitors_.push_back(std::make_unique<FifoMonitor>(log_, opts_.members));
}

void MonitorSet::add_causal() {
  monitors_.push_back(std::make_unique<CausalMonitor>(log_, opts_.members, opts_.window_cap));
}

void MonitorSet::attach_hybrid_suite() {
  add_total_order();
  add_epoch();
  add_reliable();
}

bool MonitorSet::keep(std::uint32_t sender, std::uint64_t seq) const {
  if (opts_.sample_period <= 1) return true;
  return mix64(msg_key(sender, seq)) % opts_.sample_period == 0;
}

void MonitorSet::on_telemetry(const TelemetryEvent& e) {
  if (e.kind != EventKind::kInstant) return;
  if (e.name == n_send_) {
    ++sends_seen_;
    if (e.node < sent_count_.size()) {
      sent_count_[e.node] = std::max(sent_count_[e.node], e.arg + 1);
    }
    const bool sampled = keep(e.node, e.arg);
    if (!sampled) ++sampled_out_;
    for (auto& m : monitors_) m->on_send(e.node, e.arg, sampled, e.t);
    return;
  }
  if (e.name == n_deliver_) {
    ++delivers_seen_;
    DeliverObs d;
    d.node = e.node;
    d.sender = static_cast<std::uint32_t>(e.arg2 & kDeliverSenderMask);
    d.seq = e.arg;
    d.epoch = e.epoch;
    d.incarnation = e.incarnation;
    d.view = (e.arg2 & kDeliverViewFlag) != 0;
    d.t = e.t;
    if (d.view) {
      ++view_delivers_;
    } else if (d.sender >= sent_count_.size() || d.seq >= sent_count_[d.sender]) {
      std::ostringstream os;
      os << "spurious delivery of (" << d.sender << "," << d.seq << ") at member " << d.node
         << " (sender has sent "
         << (d.sender < sent_count_.size() ? sent_count_[d.sender] : 0) << ")";
      log_.report({"agreement", os.str(), d.node, d.sender, d.seq, d.epoch, d.t});
      return;
    }
    d.sampled = keep(d.sender, d.seq);
    for (auto& m : monitors_) m->on_deliver(d);
    return;
  }
  if (e.name == n_epoch_install_) {
    for (auto& m : monitors_) m->on_epoch_install(e.node, e.arg, e.t);
  }
}

void MonitorSet::finalize(Time now) {
  for (auto& m : monitors_) m->finalize(now);
}

void MonitorSet::check_stalls(Time now) {
  if (reliable_) reliable_->check_stalls(now);
}

std::size_t MonitorSet::state_cells() const {
  std::size_t cells = sent_count_.size();
  for (const auto& m : monitors_) cells += m->state_cells();
  return cells;
}

}  // namespace msw
