// The concrete property monitors. See monitor.hpp for the verdict model
// and DESIGN.md §12 for the state machines.
//
// Bounds at a glance (n = members, W = order-window cap, R = interval runs):
//   FifoMonitor        n^2 cells
//   CausalMonitor      n^2 + W*(n+2) cells
//   TotalOrderMonitor  n + 2W cells
//   EpochMonitor       O(n) cells
//   ReliableMonitor    n^2*(2+R) cells, R ~ 1 in steady state
// None of them grows with the number of messages.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "monitor/monitor.hpp"
#include "util/seq_tracker.hpp"

namespace msw {

/// Key for a message identity in hash maps. Seqs are bounded well below
/// 2^34 even at soak scale (10^7 sends), so the packing is collision-free.
inline std::uint64_t msg_key(std::uint32_t sender, std::uint64_t seq) {
  return (std::uint64_t{sender} << 34) | seq;
}

/// FIFO delivery: messages from one sender are delivered in send order at
/// every member. Checks every event (sampling-independent: a subsequence
/// of an increasing sequence is increasing). Also flags duplicates, which
/// break the strict-increase.
class FifoMonitor : public Monitor {
 public:
  FifoMonitor(ViolationLog& log, std::size_t members);
  std::string_view property() const override { return "fifo"; }
  void on_deliver(const DeliverObs& d) override;
  std::size_t state_cells() const override { return last_.size(); }

 private:
  std::size_t n_;
  // last_[receiver * n_ + sender] = last delivered seq + 1 (0 = none yet).
  std::vector<std::uint64_t> last_;
};

/// Causal delivery: if the sender had delivered message M before sending
/// N, every member delivers M before N. Each in-flight message holds the
/// sender's delivery vector at send time; a delivery is checked against
/// the receiver's own delivery counts, then the entry retires once every
/// member has it. Requires sample_period == 1 (the vector counts assume
/// gap-free per-sender counting).
class CausalMonitor : public Monitor {
 public:
  CausalMonitor(ViolationLog& log, std::size_t members, std::size_t window_cap);
  std::string_view property() const override { return "causal"; }
  void on_send(std::uint32_t node, std::uint64_t seq, bool sampled, Time t) override;
  void on_deliver(const DeliverObs& d) override;
  std::size_t state_cells() const override;

 private:
  struct Entry {
    std::uint32_t sender = 0;
    std::uint64_t seq = 0;
    std::uint64_t mask = 0;          // members that delivered it
    std::vector<std::uint64_t> vc;   // sender's delivery counts at send time
  };

  std::size_t n_;
  std::size_t window_cap_;
  std::uint64_t full_mask_;
  // delivered_[member * n_ + sender] = messages from sender delivered so far.
  std::vector<std::uint64_t> delivered_;
  std::deque<Entry> window_;
  std::unordered_map<std::uint64_t, std::size_t> index_;  // msg_key -> serial
  std::size_t front_serial_ = 0;  // serial of window_.front()
  std::size_t next_serial_ = 0;
  bool overflow_reported_ = false;
};

/// Total order + agreement-on-set, windowed: the first member to deliver a
/// message assigns it the next global position; every member's k-th
/// delivery must then be the position-k message. Entries retire once all
/// members delivered them, so the window holds only in-flight messages.
/// Optionally cross-checks that every member delivers a message under the
/// same SP epoch (the first deliverer's epoch is authoritative).
///
/// The position discipline subsumes duplicate detection for retired
/// messages: re-delivering an old message mismatches the member's current
/// position. Respects sampling (positions count only sampled messages,
/// which are kept or dropped by identity, so they agree across members).
class TotalOrderMonitor : public Monitor {
 public:
  TotalOrderMonitor(ViolationLog& log, std::size_t members, std::size_t window_cap,
                    bool check_epoch_consistency);
  std::string_view property() const override { return "total_order"; }
  void on_deliver(const DeliverObs& d) override;
  void finalize(Time now) override;
  std::size_t state_cells() const override { return n_ + 2 * window_.size(); }

  std::size_t window_size() const { return window_.size(); }
  std::uint64_t positions_assigned() const { return next_pos_; }

 private:
  struct Entry {
    std::uint32_t sender = 0;
    std::uint64_t seq = 0;
    std::uint64_t epoch = 0;  // epoch of the first delivery
    std::uint64_t mask = 0;   // members that delivered it
  };

  void retire_front();

  std::size_t n_;
  std::size_t window_cap_;
  bool check_epoch_;
  std::uint64_t full_mask_;
  std::vector<std::uint64_t> pos_;  // per member: sampled deliveries so far
  std::deque<Entry> window_;        // positions [front_pos_, next_pos_)
  std::unordered_map<std::uint64_t, std::uint64_t> index_;  // msg_key -> position
  std::uint64_t front_pos_ = 0;
  std::uint64_t next_pos_ = 0;
  bool overflow_reported_ = false;
};

/// SP old-before-new: per member, delivery epochs never step backwards
/// (a drop by more than half the u64 range is the counter wrapping, which
/// is monotone in epoch space — same rule as the trace oracle). Tracks
/// sp.epoch.install events for the convergence check at finalize: every
/// member with any epoch evidence must end on the same epoch.
class EpochMonitor : public Monitor {
 public:
  EpochMonitor(ViolationLog& log, std::size_t members);
  std::string_view property() const override { return "epoch"; }
  void on_deliver(const DeliverObs& d) override;
  void on_epoch_install(std::uint32_t node, std::uint64_t epoch, Time t) override;
  void finalize(Time now) override;
  std::size_t state_cells() const override { return 3 * n_; }

  std::uint64_t installs() const { return installs_; }

 private:
  void observe(std::uint32_t node, std::uint64_t epoch, Time t, bool install);

  std::size_t n_;
  std::vector<std::uint64_t> last_epoch_;  // latest epoch evidence per member
  std::vector<bool> has_;                  // any evidence yet?
  std::uint64_t installs_ = 0;
};

/// Reliability / no-loss-after-stability: every sent message is delivered
/// exactly once by every member. Per (receiver, sender) interval-coded
/// SeqTracker; duplicates are exact (insert returns false), completeness
/// is checked at finalize against the observed send counts, and
/// check_stalls() flags holes that sit behind later deliveries for longer
/// than the stability window — the streaming form of "no loss after
/// stability" (a hole with traffic past it that never fills is a loss,
/// not latency).
class ReliableMonitor : public Monitor {
 public:
  ReliableMonitor(ViolationLog& log, std::size_t members, Time stall_window);
  std::string_view property() const override { return "reliable"; }
  void on_send(std::uint32_t node, std::uint64_t seq, bool sampled, Time t) override;
  void on_deliver(const DeliverObs& d) override;
  void finalize(Time now) override;
  std::size_t state_cells() const override;

  /// Scan for holes older than the stability window. Cheap enough to call
  /// once per harness chunk (O(n^2) map walks), not per event.
  void check_stalls(Time now);

 private:
  struct Cell {
    SeqTracker seen;
    Time last_progress = 0;  // last time the contiguous prefix advanced
  };

  Cell& cell(std::uint32_t receiver, std::uint32_t sender) {
    return cells_[receiver * n_ + sender];
  }

  std::size_t n_;
  Time stall_window_;
  std::vector<std::uint64_t> sent_;  // per sender: observed send count
  std::vector<Cell> cells_;
};

}  // namespace msw
