// A pure trace-level model of the switching protocol — the paper's
// section 6.3 argument, mechanized.
//
// When SP switches from a run of protocol A to a run of protocol B, the
// application-boundary trace it produces is (the paper argues, and Nuprl
// proves) reachable from the two protocols' traces by composing exactly
// the six meta-property relations:
//
//   1. Safety      — only a prefix of A's behaviour happens before the cut;
//   2. Memoryless  — messages straddling the cut may vanish from B's view;
//   3. Composable  — the surviving A-prefix is glued to B's trace;
//   4. Asynchronous— layering delays reorder events of different processes;
//   5. Delayable   — SP's buffering reorders local sends vs. deliveries;
//   6. Send Enabled— sends submitted at the end are not yet processed.
//
// sp_compositions() enumerates random composites via those steps. The
// accompanying tests state the paper's theorem as an executable check: a
// property satisfying all six meta-properties holds on EVERY composite of
// two traces it holds on — while properties outside the class (Virtual
// Synchrony, No Replay, Amoeba) are violated by some composite.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace msw {

struct SpComposition {
  /// The two protocol runs being switched between.
  Trace below_a;
  Trace below_b;
  /// One application-boundary trace SP could produce.
  Trace above;
  /// Which relation steps were applied, in order (diagnostics).
  std::vector<std::string> steps;
};

/// Up to `limit` composites of `a` then `b` (which must be message-
/// disjoint). Each composite applies the six steps with randomized
/// parameters; the identity composite (plain concatenation) is always
/// included first.
std::vector<SpComposition> sp_compositions(const Trace& a, const Trace& b, Rng& rng,
                                           std::size_t limit);

}  // namespace msw
