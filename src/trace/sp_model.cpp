#include "trace/sp_model.hpp"

#include <algorithm>
#include <cassert>
#include <set>

#include "trace/relations.hpp"

namespace msw {
namespace {

/// One random variant under a unary relation (or the input unchanged when
/// the relation has no variants for it).
Trace one_variant(const Relation& r, const Trace& tr, Rng& rng, bool& applied) {
  auto variants = r.relate(tr, rng, 4);
  if (variants.empty()) {
    applied = false;
    return tr;
  }
  applied = true;
  return std::move(variants[rng.index(variants.size())]);
}

}  // namespace

std::vector<SpComposition> sp_compositions(const Trace& a, const Trace& b, Rng& rng,
                                           std::size_t limit) {
  assert(messages_disjoint(a, b) && "switch glues runs of distinct message sets");

  std::vector<SpComposition> out;
  if (limit == 0) return out;

  // The identity composite: switch exactly at the end of A.
  {
    SpComposition c;
    c.below_a = a;
    c.below_b = b;
    c.above = concatenate(a, b);
    c.steps = {"Composable"};
    out.push_back(std::move(c));
  }

  const PrefixRelation prefix;
  const RemoveMessagesRelation remove;
  const AsyncSwapRelation async_swap;
  const DelaySwapRelation delay_swap;
  const AppendSendsRelation append_sends;

  while (out.size() < limit) {
    SpComposition c;
    c.below_a = a;
    c.below_b = b;
    bool applied = false;

    // 1. Safety: the switch cuts A somewhere (keep a prefix, sometimes all
    //    of it — reflexivity).
    Trace cut_a = a;
    if (rng.chance(0.7)) {
      cut_a = one_variant(prefix, a, rng, applied);
      if (applied) c.steps.push_back("Safety");
    }
    // 2. Memoryless: messages half-processed at the cut disappear.
    if (rng.chance(0.5)) {
      cut_a = one_variant(remove, cut_a, rng, applied);
      if (applied) c.steps.push_back("Memoryless");
    }
    // 3. Composable: glue to B's run.
    Trace glued = concatenate(cut_a, b);
    c.steps.push_back("Composable");
    // 4. Asynchrony: global reordering by delays.
    if (rng.chance(0.7)) {
      glued = one_variant(async_swap, glued, rng, applied);
      if (applied) c.steps.push_back("Asynchronous");
    }
    // 5. Delayable: local send/deliver reordering by SP's buffering.
    if (rng.chance(0.7)) {
      glued = one_variant(delay_swap, glued, rng, applied);
      if (applied) c.steps.push_back("Delayable");
    }
    // 6. Send Enabled: fresh sends at the end, not yet processed by either
    //    protocol.
    if (rng.chance(0.5)) {
      glued = one_variant(append_sends, glued, rng, applied);
      if (applied) c.steps.push_back("Send Enabled");
    }

    c.above = std::move(glued);
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace msw
