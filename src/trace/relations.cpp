#include "trace/relations.hpp"

#include <algorithm>
#include <set>

namespace msw {
namespace {

/// Apply up to `steps` random swaps at positions accepted by `swappable`;
/// returns true if at least one swap happened.
template <typename SwappablePred>
bool random_swaps(Trace& tr, Rng& rng, std::size_t steps, const SwappablePred& swappable) {
  if (tr.size() < 2) return false;
  bool any = false;
  for (std::size_t s = 0; s < steps; ++s) {
    // Collect currently swappable adjacent positions.
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i + 1 < tr.size(); ++i) {
      if (swappable(tr[i], tr[i + 1])) candidates.push_back(i);
    }
    if (candidates.empty()) break;
    const std::size_t i = candidates[rng.index(candidates.size())];
    std::swap(tr[i], tr[i + 1]);
    any = true;
  }
  return any;
}

}  // namespace

std::vector<Trace> PrefixRelation::relate(const Trace& below, Rng& rng,
                                          std::size_t limit) const {
  std::vector<Trace> out;
  if (below.empty()) return out;
  if (below.size() <= limit) {
    // Enumerate every proper prefix (plus the empty trace).
    for (std::size_t n = 0; n < below.size() && out.size() < limit; ++n) {
      out.emplace_back(below.begin(), below.begin() + static_cast<std::ptrdiff_t>(n));
    }
  } else {
    for (std::size_t k = 0; k < limit; ++k) {
      const std::size_t n = rng.index(below.size());
      out.emplace_back(below.begin(), below.begin() + static_cast<std::ptrdiff_t>(n));
    }
  }
  return out;
}

std::vector<Trace> AsyncSwapRelation::relate(const Trace& below, Rng& rng,
                                             std::size_t limit) const {
  const auto swappable = [](const TraceEvent& a, const TraceEvent& b) {
    return a.process != b.process;
  };
  std::vector<Trace> out;
  // Systematic single swaps first.
  for (std::size_t i = 0; i + 1 < below.size() && out.size() < limit; ++i) {
    if (swappable(below[i], below[i + 1])) {
      Trace t = below;
      std::swap(t[i], t[i + 1]);
      out.push_back(std::move(t));
    }
  }
  // Then random multi-step compositions.
  while (out.size() < limit) {
    Trace t = below;
    if (!random_swaps(t, rng, 1 + rng.index(below.size() + 1), swappable)) break;
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<Trace> AppendSendsRelation::relate(const Trace& below, Rng& rng,
                                               std::size_t limit) const {
  // Fresh message ids: continue past the largest seq in the trace.
  std::uint64_t next_seq = 0;
  for (const auto& e : below) next_seq = std::max(next_seq, e.msg.seq + 1);
  auto procs = processes_of(below);
  if (procs.empty()) procs.push_back(0);

  std::vector<Trace> out;
  for (std::size_t k = 0; k < limit; ++k) {
    Trace t = below;
    const std::size_t extra = 1 + rng.index(3);
    for (std::size_t i = 0; i < extra; ++i) {
      const std::uint32_t sender = procs[rng.index(procs.size())];
      t.push_back(send_ev(sender, next_seq++, to_bytes("appended")));
    }
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<Trace> DelaySwapRelation::relate(const Trace& below, Rng& rng,
                                             std::size_t limit) const {
  const auto swappable = [](const TraceEvent& a, const TraceEvent& b) {
    return a.process == b.process && a.kind != b.kind;
  };
  std::vector<Trace> out;
  for (std::size_t i = 0; i + 1 < below.size() && out.size() < limit; ++i) {
    if (swappable(below[i], below[i + 1])) {
      Trace t = below;
      std::swap(t[i], t[i + 1]);
      out.push_back(std::move(t));
    }
  }
  while (out.size() < limit) {
    Trace t = below;
    if (!random_swaps(t, rng, 1 + rng.index(below.size() + 1), swappable)) break;
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<Trace> RemoveMessagesRelation::relate(const Trace& below, Rng& rng,
                                                  std::size_t limit) const {
  const auto msgs = messages_of(below);
  if (msgs.empty()) return {};

  const auto without = [&](const std::set<MsgId>& victims) {
    Trace t;
    for (const auto& e : below) {
      if (victims.count(e.msg) == 0) t.push_back(e);
    }
    return t;
  };

  std::vector<Trace> out;
  // Every single-message removal (the paper's minimal step).
  for (const auto& m : msgs) {
    if (out.size() >= limit) break;
    out.push_back(without({m}));
  }
  // Random subset removals (transitive closure).
  while (out.size() < limit && msgs.size() > 1) {
    std::set<MsgId> victims;
    const std::size_t k = 1 + rng.index(msgs.size());
    for (std::size_t i = 0; i < k; ++i) victims.insert(msgs[rng.index(msgs.size())]);
    out.push_back(without(victims));
  }
  return out;
}

std::vector<std::unique_ptr<Relation>> standard_relations() {
  std::vector<std::unique_ptr<Relation>> rels;
  rels.push_back(std::make_unique<PrefixRelation>());
  rels.push_back(std::make_unique<AsyncSwapRelation>());
  rels.push_back(std::make_unique<AppendSendsRelation>());
  rels.push_back(std::make_unique<DelaySwapRelation>());
  rels.push_back(std::make_unique<RemoveMessagesRelation>());
  return rels;
}

Trace concatenate(const Trace& a, const Trace& b) {
  Trace t = a;
  t.insert(t.end(), b.begin(), b.end());
  return t;
}

bool messages_disjoint(const Trace& a, const Trace& b) {
  const auto ma = messages_of(a);
  std::set<MsgId> sa(ma.begin(), ma.end());
  for (const auto& e : b) {
    if (sa.count(e.msg) > 0) return false;
  }
  return true;
}

}  // namespace msw
