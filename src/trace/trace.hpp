// The system model of the paper, section 3.
//
// Processes multicast messages; a trace is an ordered sequence of Send and
// Deliver events with no duplicate Sends. Properties (trace/properties.hpp)
// are predicates over traces; meta-properties (trace/meta.hpp) are
// predicates over properties defined by preservation under trace relations.
//
// This module has no dependency on the simulator or protocol stack: traces
// can be hand-built, generated, or captured from live protocol runs.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/bytes.hpp"

namespace msw {

/// Globally unique message identity. `kind` separates ordinary data
/// messages from view-change notifications (used by the Virtual Synchrony
/// property), so the two never collide in one id space.
struct MsgId {
  enum class Kind : std::uint8_t { kData = 0, kView = 1 };

  std::uint32_t sender = 0;
  std::uint64_t seq = 0;
  Kind kind = Kind::kData;

  auto operator<=>(const MsgId&) const = default;
};

std::string to_string(const MsgId& id);

struct TraceEvent {
  enum class Kind : std::uint8_t { kSend = 0, kDeliver = 1 };

  Kind kind = Kind::kSend;
  /// For kSend this equals msg.sender; for kDeliver it is the delivering
  /// process.
  std::uint32_t process = 0;
  MsgId msg;
  /// Message body. Properties that inspect content (No Replay) compare
  /// bodies; others ignore it.
  Bytes body;
  /// Simulated wall-clock time of the event; informational only — no
  /// property in the paper's model may depend on real time.
  Time time = 0;

  bool is_send() const { return kind == Kind::kSend; }
  bool is_deliver() const { return kind == Kind::kDeliver; }
  bool is_view_marker() const { return msg.kind == MsgId::Kind::kView; }

  friend bool operator==(const TraceEvent& a, const TraceEvent& b) {
    return a.kind == b.kind && a.process == b.process && a.msg == b.msg && a.body == b.body;
    // `time` intentionally excluded: event identity is position + content.
  }
};

using Trace = std::vector<TraceEvent>;

/// Convenience constructors for hand-built traces in tests and corpora.
TraceEvent send_ev(std::uint32_t sender, std::uint64_t seq, Bytes body = {});
TraceEvent deliver_ev(std::uint32_t process, std::uint32_t sender, std::uint64_t seq,
                      Bytes body = {});
TraceEvent view_send_ev(std::uint32_t coordinator, std::uint64_t view_id);
TraceEvent view_deliver_ev(std::uint32_t process, std::uint32_t coordinator,
                           std::uint64_t view_id);

/// True when no two Send events carry the same MsgId (the paper's
/// well-formedness condition on traces).
bool well_formed(const Trace& tr);

/// All process ids appearing in the trace (sorted, unique).
std::vector<std::uint32_t> processes_of(const Trace& tr);

/// All distinct message ids appearing in the trace (sorted, unique).
std::vector<MsgId> messages_of(const Trace& tr);

/// Human-readable one-line-per-event rendering, for counterexample output.
std::string to_string(const Trace& tr);

/// Order-sensitive 64-bit digest over every event field, timestamps
/// included. Two runs produce the same digest iff they produced the same
/// trace at the same simulated instants — the fingerprint the determinism
/// tests and the fuzzer compare across runs.
std::uint64_t trace_digest(const Trace& tr);

}  // namespace msw
