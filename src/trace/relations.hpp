// The trace relations of sections 5 and 6.
//
// Each meta-property is "preservation of P under relation R":
//     P(tr_below)  ∧  tr_above R tr_below   ⇒   P(tr_above).
// A Relation here generates, from a given tr_below, sample traces related
// above it — single steps and random multi-step compositions (the paper's
// relations are reflexive-transitive closures of the single steps).
// Composability is the odd one out: it relates a *pair* of traces to their
// concatenation, and is handled by the checker directly.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace msw {

class Relation {
 public:
  virtual ~Relation() = default;
  virtual std::string_view name() const = 0;

  /// Up to `limit` traces related above `below`. May return fewer (e.g. a
  /// trace with no swappable pair has no asynchrony variants).
  virtual std::vector<Trace> relate(const Trace& below, Rng& rng, std::size_t limit) const = 0;
};

/// R_safety: tr_above is a prefix of tr_below.
class PrefixRelation : public Relation {
 public:
  std::string_view name() const override { return "Safety"; }
  std::vector<Trace> relate(const Trace& below, Rng& rng, std::size_t limit) const override;
};

/// R_asynchrony: swap adjacent events belonging to different processes.
class AsyncSwapRelation : public Relation {
 public:
  std::string_view name() const override { return "Asynchronous"; }
  std::vector<Trace> relate(const Trace& below, Rng& rng, std::size_t limit) const override;
};

/// R_send_enabled: append new Send events at the end.
class AppendSendsRelation : public Relation {
 public:
  std::string_view name() const override { return "Send Enabled"; }
  std::vector<Trace> relate(const Trace& below, Rng& rng, std::size_t limit) const override;
};

/// R_delayable: swap an adjacent same-process Send/Deliver pair.
class DelaySwapRelation : public Relation {
 public:
  std::string_view name() const override { return "Delayable"; }
  std::vector<Trace> relate(const Trace& below, Rng& rng, std::size_t limit) const override;
};

/// R_memoryless: remove all events pertaining to some set of messages.
class RemoveMessagesRelation : public Relation {
 public:
  std::string_view name() const override { return "Memoryless"; }
  std::vector<Trace> relate(const Trace& below, Rng& rng, std::size_t limit) const override;
};

/// The five unary relations in Table 2 column order (Composable, the sixth
/// column, is binary — see check_composable in trace/meta.hpp).
std::vector<std::unique_ptr<Relation>> standard_relations();

/// Concatenation for the composability check.
Trace concatenate(const Trace& a, const Trace& b);

/// True when two traces share no message ids ("no messages in common").
bool messages_disjoint(const Trace& a, const Trace& b);

}  // namespace msw
