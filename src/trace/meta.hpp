// The meta-property checker (sections 5 and 6).
//
// The paper proves with Nuprl that properties satisfying all six
// meta-properties are preserved by the switching protocol. This module is
// the executable counterpart: for a property P and relation R it *tests*
// preservation over a corpus of P-satisfying traces, producing either
// "no counterexample found over N pairs" or a concrete (tr_below,
// tr_above) witness of non-preservation. Every ✗ entry of Table 2 is
// re-derived as such a witness (benchmark E2); ✓ entries are supported by
// exhaustive-for-small-traces plus randomized sampling.
#pragma once

#include <array>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "trace/properties.hpp"
#include "trace/relations.hpp"

namespace msw {

enum class MetaVerdict {
  /// No counterexample over the sampled pairs (consistent with "satisfies
  /// the meta-property").
  kSupported,
  /// A concrete counterexample was found: the property does NOT satisfy
  /// the meta-property.
  kRefuted,
  /// The corpus contained no trace satisfying the property — the check is
  /// vacuous and the corpus must be extended.
  kVacuous,
};

char verdict_mark(MetaVerdict v);

struct MetaCheckResult {
  MetaVerdict verdict = MetaVerdict::kVacuous;
  std::size_t traces_used = 0;   // corpus traces satisfying P
  std::size_t pairs_checked = 0;
  /// Present iff refuted: the witness pair.
  std::optional<Trace> below;
  std::optional<Trace> above;
};

/// Preservation of `p` under unary relation `r` over the corpus.
MetaCheckResult check_preservation(const Property& p, const Relation& r,
                                   std::span<const Trace> corpus, Rng& rng,
                                   std::size_t variants_per_trace = 16);

/// Composability: P(tr1) ∧ P(tr2) ∧ disjoint ⇒ P(tr1 · tr2), over corpus
/// pairs.
MetaCheckResult check_composable(const Property& p, std::span<const Trace> corpus, Rng& rng,
                                 std::size_t max_pairs = 4096);

/// One Table 2 row: the five unary relations in standard order, then
/// Composable.
struct MetaMatrixRow {
  std::string property;
  std::array<MetaCheckResult, 6> results;
};

/// The full Table 2: every standard property against every meta-property.
std::vector<MetaMatrixRow> compute_meta_matrix(
    const std::vector<std::unique_ptr<Property>>& properties, std::span<const Trace> corpus,
    Rng& rng, std::size_t variants_per_trace = 16);

/// Column headers matching MetaMatrixRow::results order.
std::array<std::string_view, 6> meta_matrix_columns();

}  // namespace msw
