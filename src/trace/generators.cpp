#include "trace/generators.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace msw {
namespace {

/// Message blueprint before events are laid out.
struct Blue {
  std::uint32_t sender;
  std::uint64_t seq;
  Bytes body;
};

std::vector<Blue> make_messages(Rng& rng, const GenOptions& opts,
                                const std::vector<std::uint32_t>& senders) {
  // Bodies: unique by default, or sampled without replacement from the
  // shared pool (unique within the trace either way, so No Replay holds).
  std::vector<std::uint32_t> pool;
  if (opts.body_pool > 0) {
    pool.resize(std::max<std::uint32_t>(opts.body_pool, opts.n_msgs));
    for (std::uint32_t i = 0; i < pool.size(); ++i) pool[i] = i;
    rng.shuffle(pool);
  }
  std::vector<Blue> msgs;
  msgs.reserve(opts.n_msgs);
  for (std::uint32_t i = 0; i < opts.n_msgs; ++i) {
    Blue b;
    b.sender = senders[rng.index(senders.size())];
    b.seq = opts.seq_base + i;
    if (opts.body_pool > 0) {
      b.body = to_bytes("pool" + std::to_string(pool[i]));
    } else {
      b.body = to_bytes("m" + std::to_string(b.sender) + ":" + std::to_string(b.seq));
    }
    msgs.push_back(std::move(b));
  }
  return msgs;
}

std::vector<std::uint32_t> all_procs(std::uint32_t n) {
  std::vector<std::uint32_t> p(n);
  for (std::uint32_t i = 0; i < n; ++i) p[i] = i;
  return p;
}

/// Lay out a totally-ordered trace: `deliverers[g]` lists the processes
/// that deliver message g (in global-order position g). If `master_first`,
/// process 0 delivers each message before anyone else.
Trace layout_total_order(Rng& rng, const std::vector<Blue>& msgs,
                         const std::vector<std::vector<std::uint32_t>>& deliverers,
                         bool master_first) {
  const std::size_t m = msgs.size();
  // Per-process global-order pointer.
  std::vector<std::vector<std::uint32_t>> queue_of(m);
  Trace tr;
  std::size_t sent = 0;
  // remaining[p] = next global index process p will deliver (skip messages
  // p does not deliver).
  struct Cursor {
    std::uint32_t proc;
    std::size_t next = 0;  // index into its own delivery list
    std::vector<std::size_t> list;  // global indices it delivers, ascending
  };
  std::vector<Cursor> cursors;
  {
    std::map<std::uint32_t, std::vector<std::size_t>> lists;
    for (std::size_t g = 0; g < m; ++g) {
      for (std::uint32_t p : deliverers[g]) lists[p].push_back(g);
    }
    for (auto& [p, list] : lists) cursors.push_back(Cursor{p, 0, std::move(list)});
  }
  std::vector<bool> master_done(m, false);

  const auto can_deliver = [&](const Cursor& c) {
    if (c.next >= c.list.size()) return false;
    const std::size_t g = c.list[c.next];
    if (g >= sent) return false;  // not sent yet
    if (master_first && c.proc != 0 && !master_done[g]) return false;
    return true;
  };

  while (true) {
    std::vector<std::size_t> ready;
    for (std::size_t i = 0; i < cursors.size(); ++i) {
      if (can_deliver(cursors[i])) ready.push_back(i);
    }
    const bool can_send = sent < m;
    if (!can_send && ready.empty()) break;
    // Bias toward delivering so sends and deliveries interleave.
    if (can_send && (ready.empty() || rng.chance(0.4))) {
      const Blue& b = msgs[sent];
      tr.push_back(send_ev(b.sender, b.seq, b.body));
      ++sent;
      continue;
    }
    Cursor& c = cursors[ready[rng.index(ready.size())]];
    const Blue& b = msgs[c.list[c.next]];
    if (master_first && c.proc == 0) master_done[c.list[c.next]] = true;
    tr.push_back(deliver_ev(c.proc, b.sender, b.seq, b.body));
    ++c.next;
  }
  return tr;
}

std::vector<std::vector<std::uint32_t>> full_delivery(const GenOptions& opts,
                                                      const std::vector<std::uint32_t>& procs,
                                                      Rng& rng) {
  std::vector<std::vector<std::uint32_t>> d(opts.n_msgs, procs);
  if (opts.delivery == GenOptions::Delivery::kPrefix) {
    // Each process delivers a random prefix of the global order.
    for (std::uint32_t p : procs) {
      const std::size_t cut = rng.index(opts.n_msgs + 1);
      for (std::size_t g = cut; g < opts.n_msgs; ++g) {
        auto& v = d[g];
        v.erase(std::remove(v.begin(), v.end(), p), v.end());
      }
    }
  }
  return d;
}

}  // namespace

Trace gen_total_order_trace(Rng& rng, const GenOptions& opts) {
  const auto procs = all_procs(opts.n_procs);
  const auto msgs = make_messages(rng, opts, procs);
  return layout_total_order(rng, msgs, full_delivery(opts, procs, rng), false);
}

Trace gen_priority_trace(Rng& rng, const GenOptions& opts) {
  const auto procs = all_procs(opts.n_procs);
  const auto msgs = make_messages(rng, opts, procs);
  return layout_total_order(rng, msgs, full_delivery(opts, procs, rng), true);
}

Trace gen_amoeba_trace(Rng& rng, const GenOptions& opts) {
  const auto procs = all_procs(opts.n_procs);
  const auto msgs = make_messages(rng, opts, procs);
  Trace tr;
  for (std::size_t g = 0; g < msgs.size(); ++g) {
    const Blue& b = msgs[g];
    tr.push_back(send_ev(b.sender, b.seq, b.body));
    const bool in_flight = g + 1 == msgs.size() && rng.chance(0.5);
    if (in_flight) break;  // final message may stay undelivered
    // Everyone delivers; the sender often delivers LAST so that the next
    // send (frequently by the same process) is adjacent to the sender's
    // own delivery — the Delayable counterexample shape.
    std::vector<std::uint32_t> order;
    for (std::uint32_t p : procs) {
      if (p != b.sender) order.push_back(p);
    }
    rng.shuffle(order);
    order.push_back(b.sender);
    for (std::uint32_t p : order) tr.push_back(deliver_ev(p, b.sender, b.seq, b.body));
  }
  return tr;
}

Trace gen_vsync_trace(Rng& rng, const GenOptions& opts) {
  const std::uint32_t views = 2 + static_cast<std::uint32_t>(rng.index(3));  // 2..4 views
  Trace tr;
  std::uint64_t next_seq = opts.seq_base;
  for (std::uint32_t v = 1; v <= views; ++v) {
    // Some processes skip this view (but at least two stay).
    std::vector<std::uint32_t> members = all_procs(opts.n_procs);
    if (opts.n_procs > 2 && rng.chance(0.5)) {
      members.erase(members.begin() +
                    static_cast<std::ptrdiff_t>(1 + rng.index(members.size() - 1)));
    }
    // View notification: delivered (no Send) at each member, like the
    // membership layer's synthesized notifications.
    for (std::uint32_t p : members) {
      tr.push_back(view_deliver_ev(p, 0, opts.seq_base + v));
    }
    // Data of this view: sent and delivered within it, same set everywhere.
    const std::uint32_t data = 1 + static_cast<std::uint32_t>(rng.index(opts.n_msgs));
    for (std::uint32_t i = 0; i < data; ++i) {
      const std::uint32_t sender = members[rng.index(members.size())];
      const std::uint64_t seq = next_seq++;
      const Bytes body = to_bytes("v" + std::to_string(v) + "m" + std::to_string(seq));
      tr.push_back(send_ev(sender, seq, body));
      std::vector<std::uint32_t> order = members;
      rng.shuffle(order);
      for (std::uint32_t p : order) tr.push_back(deliver_ev(p, sender, seq, body));
    }
    // Sometimes end the trace mid-epoch: trailing data that only a subset
    // has delivered so far. Legal under Virtual Synchrony (the epoch is
    // still open) — and exactly the raw material of the composability
    // counterexample, where concatenation CLOSES the epoch with the next
    // trace's view marker and exposes the asymmetry.
    if (v == views && rng.chance(0.5) && members.size() >= 2) {
      const std::uint32_t sender = members[rng.index(members.size())];
      const std::uint64_t seq = next_seq++;
      const Bytes body = to_bytes("tail" + std::to_string(seq));
      tr.push_back(send_ev(sender, seq, body));
      const std::size_t receivers = 1 + rng.index(members.size() - 1);
      for (std::size_t i = 0; i < receivers; ++i) {
        tr.push_back(deliver_ev(members[i], sender, seq, body));
      }
    }
  }
  return tr;
}

Trace gen_cluster_trace(Rng& rng, const GenOptions& opts,
                        const std::set<std::uint32_t>& cluster) {
  std::vector<std::uint32_t> procs(cluster.begin(), cluster.end());
  const auto msgs = make_messages(rng, opts, procs);
  std::vector<std::vector<std::uint32_t>> deliverers(opts.n_msgs, procs);
  return layout_total_order(rng, msgs, deliverers, false);
}

Trace gen_sparse_trace(Rng& rng, const GenOptions& opts) {
  const auto procs = all_procs(opts.n_procs);
  const auto msgs = make_messages(rng, opts, procs);
  Trace tr;
  for (const Blue& b : msgs) {
    tr.push_back(send_ev(b.sender, b.seq, b.body));
  }
  // Deliver each message at a random subset, spliced at random positions
  // after the send.
  for (const Blue& b : msgs) {
    for (std::uint32_t p : procs) {
      if (!rng.chance(0.6)) continue;
      // Position strictly after the send of b.
      std::size_t send_pos = 0;
      for (std::size_t i = 0; i < tr.size(); ++i) {
        if (tr[i].is_send() && tr[i].msg.sender == b.sender && tr[i].msg.seq == b.seq) {
          send_pos = i;
          break;
        }
      }
      const std::size_t pos = send_pos + 1 + rng.index(tr.size() - send_pos);
      tr.insert(tr.begin() + static_cast<std::ptrdiff_t>(pos),
                deliver_ev(p, b.sender, b.seq, b.body));
    }
  }
  return tr;
}

Trace gen_causal_trace(Rng& rng, const GenOptions& opts) {
  const auto procs = all_procs(opts.n_procs);
  const auto msgs = make_messages(rng, opts, procs);
  Trace tr;
  // ancestors[g]: transitive causal predecessors of message g (indices).
  std::vector<std::set<std::size_t>> ancestors(msgs.size());
  // Per process: indices sent or delivered, in order (the causal context),
  // and the set of delivered indices.
  std::vector<std::set<std::size_t>> delivered_at(opts.n_procs);
  std::vector<std::vector<std::size_t>> context(opts.n_procs);
  std::size_t next_send = 0;
  std::size_t remaining_deliveries = msgs.size() * opts.n_procs;

  const auto deliverable = [&](std::uint32_t q, std::size_t g) {
    if (next_send <= g) return false;                // not sent yet
    if (delivered_at[q].count(g) > 0) return false;  // already delivered
    for (std::size_t anc : ancestors[g]) {
      if (delivered_at[q].count(anc) == 0) return false;
    }
    return true;
  };

  while (next_send < msgs.size() || remaining_deliveries > 0) {
    // Collect possible deliveries.
    std::vector<std::pair<std::uint32_t, std::size_t>> ready;
    for (std::uint32_t q = 0; q < opts.n_procs; ++q) {
      for (std::size_t g = 0; g < next_send; ++g) {
        if (deliverable(q, g)) ready.emplace_back(q, g);
      }
    }
    const bool can_send = next_send < msgs.size();
    if (can_send && (ready.empty() || rng.chance(0.35))) {
      const std::size_t g = next_send++;
      const Blue& b = msgs[g];
      // Causal context of the send: everything its sender has seen.
      for (std::size_t seen : context[b.sender]) {
        ancestors[g].insert(seen);
        ancestors[g].insert(ancestors[seen].begin(), ancestors[seen].end());
      }
      context[b.sender].push_back(g);
      tr.push_back(send_ev(b.sender, b.seq, b.body));
      continue;
    }
    if (ready.empty()) break;  // all done
    const auto [q, g] = ready[rng.index(ready.size())];
    const Blue& b = msgs[g];
    delivered_at[q].insert(g);
    context[q].push_back(g);
    --remaining_deliveries;
    tr.push_back(deliver_ev(q, b.sender, b.seq, b.body));
  }
  return tr;
}

std::vector<Trace> standard_corpus(Rng& rng, std::size_t per_family, std::uint32_t n_procs) {
  std::vector<Trace> corpus;
  std::uint64_t base = 0;
  constexpr std::uint64_t kStride = 1000;  // keeps trace id-spaces disjoint

  std::set<std::uint32_t> cluster;
  for (std::uint32_t p = 0; p < n_procs; ++p) cluster.insert(p);

  for (std::size_t k = 0; k < per_family; ++k) {
    GenOptions opts;
    opts.n_procs = n_procs;
    opts.n_msgs = 2 + static_cast<std::uint32_t>(rng.index(6));

    opts.seq_base = base += kStride;
    opts.delivery = GenOptions::Delivery::kAll;
    corpus.push_back(gen_total_order_trace(rng, opts));

    opts.seq_base = base += kStride;
    opts.delivery = GenOptions::Delivery::kPrefix;
    corpus.push_back(gen_total_order_trace(rng, opts));
    opts.delivery = GenOptions::Delivery::kAll;

    opts.seq_base = base += kStride;
    corpus.push_back(gen_priority_trace(rng, opts));

    opts.seq_base = base += kStride;
    corpus.push_back(gen_amoeba_trace(rng, opts));

    opts.seq_base = base += kStride;
    corpus.push_back(gen_vsync_trace(rng, opts));

    opts.seq_base = base += kStride;
    corpus.push_back(gen_cluster_trace(rng, opts, cluster));

    // Sparse traces with a shared small body pool: different traces can
    // carry equal bodies under different ids (No Replay composability).
    opts.seq_base = base += kStride;
    opts.body_pool = 4;
    corpus.push_back(gen_sparse_trace(rng, opts));
    opts.body_pool = 0;

    opts.seq_base = base += kStride;
    corpus.push_back(gen_causal_trace(rng, opts));
  }
  return corpus;
}

}  // namespace msw
