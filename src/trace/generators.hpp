// Trace corpora for the meta-property checker.
//
// check_preservation only uses corpus traces on which the property under
// test already holds, so the corpus mixes several structured families —
// each family constructed to satisfy a cluster of Table 1 properties while
// exhibiting the event adjacencies that expose the ✗ entries of Table 2
// (e.g. a master delivery immediately followed by another process's
// delivery of the same message, or a process that skips a view).
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace msw {

struct GenOptions {
  std::uint32_t n_procs = 4;
  std::uint32_t n_msgs = 6;
  /// Message ids start here; distinct bases make corpus traces pairwise
  /// message-disjoint, as the composability check requires.
  std::uint64_t seq_base = 0;
  /// 0: every message gets a unique body. >0: bodies are drawn without
  /// replacement from a shared pool of this size, so different *traces*
  /// can deliver equal bodies under different message ids — the raw
  /// material of the No Replay composability counterexample.
  std::uint32_t body_pool = 0;

  enum class Delivery {
    kAll,     // every process delivers every message (reliable)
    kPrefix,  // each process delivers a random prefix of the global order
  };
  Delivery delivery = Delivery::kAll;
};

/// Totally ordered delivery: all processes deliver common messages in one
/// global order. Satisfies Total Order, Integrity/Confidentiality (all
/// processes trusted), No Replay; Reliability too with Delivery::kAll.
Trace gen_total_order_trace(Rng& rng, const GenOptions& opts);

/// As above, but process 0 (the master) always delivers first, with other
/// deliveries often immediately adjacent. Satisfies Prioritized Delivery.
Trace gen_priority_trace(Rng& rng, const GenOptions& opts);

/// Senders gated on the delivery of their own previous message; own
/// deliveries frequently immediately precede the next send. The final
/// message of a process is sometimes left in flight. Satisfies Amoeba.
Trace gen_amoeba_trace(Rng& rng, const GenOptions& opts);

/// View-partitioned delivery with view notifications; some processes skip
/// views (they are not members of every view). Satisfies Virtual
/// Synchrony.
Trace gen_vsync_trace(Rng& rng, const GenOptions& opts);

/// Only processes in `cluster` send and deliver. Satisfies Integrity and
/// Confidentiality with respect to trusted = cluster.
Trace gen_cluster_trace(Rng& rng, const GenOptions& opts,
                        const std::set<std::uint32_t>& cluster);

/// Unstructured: random sends, each delivered at a random subset of
/// processes somewhere after its send. Satisfies No Replay and little else.
Trace gen_sparse_trace(Rng& rng, const GenOptions& opts);

/// Causally ordered but deliberately NOT totally ordered: every process
/// delivers every message in some random linear extension of the causal
/// order, so concurrent messages are delivered in different orders at
/// different processes. Satisfies Causal Order and Reliability.
Trace gen_causal_trace(Rng& rng, const GenOptions& opts);

/// The default mixed corpus: `per_family` traces of each family above with
/// varied sizes, pairwise disjoint message-id spaces.
std::vector<Trace> standard_corpus(Rng& rng, std::size_t per_family,
                                   std::uint32_t n_procs = 4);

}  // namespace msw
