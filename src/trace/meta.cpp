#include "trace/meta.hpp"

namespace msw {

char verdict_mark(MetaVerdict v) {
  switch (v) {
    case MetaVerdict::kSupported: return 'Y';
    case MetaVerdict::kRefuted: return 'n';
    case MetaVerdict::kVacuous: return '?';
  }
  return '?';
}

MetaCheckResult check_preservation(const Property& p, const Relation& r,
                                   std::span<const Trace> corpus, Rng& rng,
                                   std::size_t variants_per_trace) {
  MetaCheckResult res;
  for (const Trace& below : corpus) {
    if (!p.holds(below)) continue;
    ++res.traces_used;
    for (Trace& above : r.relate(below, rng, variants_per_trace)) {
      ++res.pairs_checked;
      if (!p.holds(above)) {
        res.verdict = MetaVerdict::kRefuted;
        res.below = below;
        res.above = std::move(above);
        return res;
      }
    }
  }
  res.verdict = res.pairs_checked > 0 ? MetaVerdict::kSupported : MetaVerdict::kVacuous;
  return res;
}

MetaCheckResult check_composable(const Property& p, std::span<const Trace> corpus, Rng& rng,
                                 std::size_t max_pairs) {
  MetaCheckResult res;
  std::vector<const Trace*> holding;
  for (const Trace& tr : corpus) {
    if (p.holds(tr)) holding.push_back(&tr);
  }
  res.traces_used = holding.size();
  if (holding.size() < 2) {
    res.verdict = MetaVerdict::kVacuous;
    return res;
  }
  // Systematic over ordered pairs up to the budget, then random.
  for (std::size_t i = 0; i < holding.size() && res.pairs_checked < max_pairs; ++i) {
    for (std::size_t j = 0; j < holding.size() && res.pairs_checked < max_pairs; ++j) {
      if (i == j) continue;
      const Trace& a = *holding[i];
      const Trace& b = *holding[j];
      if (!messages_disjoint(a, b)) continue;
      ++res.pairs_checked;
      Trace glued = concatenate(a, b);
      if (!p.holds(glued)) {
        res.verdict = MetaVerdict::kRefuted;
        res.below = a;  // convention: below = first operand
        res.above = std::move(glued);
        return res;
      }
    }
  }
  (void)rng;
  res.verdict = res.pairs_checked > 0 ? MetaVerdict::kSupported : MetaVerdict::kVacuous;
  return res;
}

std::vector<MetaMatrixRow> compute_meta_matrix(
    const std::vector<std::unique_ptr<Property>>& properties, std::span<const Trace> corpus,
    Rng& rng, std::size_t variants_per_trace) {
  const auto relations = standard_relations();
  std::vector<MetaMatrixRow> rows;
  rows.reserve(properties.size());
  for (const auto& prop : properties) {
    MetaMatrixRow row;
    row.property = std::string(prop->name());
    for (std::size_t c = 0; c < relations.size(); ++c) {
      row.results[c] =
          check_preservation(*prop, *relations[c], corpus, rng, variants_per_trace);
    }
    row.results[5] = check_composable(*prop, corpus, rng);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::array<std::string_view, 6> meta_matrix_columns() {
  return {"Safety", "Asynchronous", "Send Enabled", "Delayable", "Memoryless", "Composable"};
}

}  // namespace msw
