#include "trace/trace.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/digest.hpp"

namespace msw {

std::string to_string(const MsgId& id) {
  std::ostringstream os;
  os << (id.kind == MsgId::Kind::kView ? "view" : "m") << "(" << id.sender << "," << id.seq
     << ")";
  return os.str();
}

TraceEvent send_ev(std::uint32_t sender, std::uint64_t seq, Bytes body) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kSend;
  e.process = sender;
  e.msg = MsgId{sender, seq, MsgId::Kind::kData};
  e.body = std::move(body);
  return e;
}

TraceEvent deliver_ev(std::uint32_t process, std::uint32_t sender, std::uint64_t seq,
                      Bytes body) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kDeliver;
  e.process = process;
  e.msg = MsgId{sender, seq, MsgId::Kind::kData};
  e.body = std::move(body);
  return e;
}

TraceEvent view_send_ev(std::uint32_t coordinator, std::uint64_t view_id) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kSend;
  e.process = coordinator;
  e.msg = MsgId{coordinator, view_id, MsgId::Kind::kView};
  return e;
}

TraceEvent view_deliver_ev(std::uint32_t process, std::uint32_t coordinator,
                           std::uint64_t view_id) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kDeliver;
  e.process = process;
  e.msg = MsgId{coordinator, view_id, MsgId::Kind::kView};
  return e;
}

bool well_formed(const Trace& tr) {
  std::set<MsgId> sent;
  for (const auto& e : tr) {
    if (e.is_send() && !sent.insert(e.msg).second) return false;
  }
  return true;
}

std::vector<std::uint32_t> processes_of(const Trace& tr) {
  std::set<std::uint32_t> s;
  for (const auto& e : tr) s.insert(e.process);
  return {s.begin(), s.end()};
}

std::vector<MsgId> messages_of(const Trace& tr) {
  std::set<MsgId> s;
  for (const auto& e : tr) s.insert(e.msg);
  return {s.begin(), s.end()};
}

std::uint64_t trace_digest(const Trace& tr) {
  Bytes buf;
  Writer w(buf);
  w.u64(tr.size());
  for (const auto& e : tr) {
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.u32(e.process);
    w.u32(e.msg.sender);
    w.u64(e.msg.seq);
    w.u8(static_cast<std::uint8_t>(e.msg.kind));
    w.u64(static_cast<std::uint64_t>(e.time));
    w.u64(e.body.size());
    w.bytes(e.body);
  }
  return fnv1a(buf);
}

std::string to_string(const Trace& tr) {
  std::ostringstream os;
  for (std::size_t i = 0; i < tr.size(); ++i) {
    const auto& e = tr[i];
    os << "  [" << i << "] " << (e.is_send() ? "Send   " : "Deliver") << " p" << e.process
       << " " << to_string(e.msg);
    if (!e.body.empty()) os << " body=\"" << to_string(std::span<const Byte>(e.body)) << "\"";
    os << "\n";
  }
  return os.str();
}

}  // namespace msw
