#include "trace/properties.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>

namespace msw {
namespace {

/// First-occurrence delivery position of each message at each process.
std::map<std::uint32_t, std::map<MsgId, std::size_t>> deliver_positions(const Trace& tr) {
  std::map<std::uint32_t, std::map<MsgId, std::size_t>> pos;
  std::map<std::uint32_t, std::size_t> counter;
  for (const auto& e : tr) {
    if (!e.is_deliver()) continue;
    auto& per_proc = pos[e.process];
    const std::size_t rank = counter[e.process]++;
    per_proc.emplace(e.msg, rank);  // keep first occurrence
  }
  return pos;
}

}  // namespace

bool ReliabilityProperty::holds(const Trace& tr) const {
  for (const auto& e : tr) {
    if (!e.is_send()) continue;
    for (std::uint32_t p : group_) {
      const bool delivered = std::any_of(tr.begin(), tr.end(), [&](const TraceEvent& d) {
        return d.is_deliver() && d.process == p && d.msg == e.msg;
      });
      if (!delivered) return false;
    }
  }
  return true;
}

bool TotalOrderProperty::holds(const Trace& tr) const {
  const auto pos = deliver_positions(tr);
  // For every pair of processes and every pair of messages both deliver,
  // the relative orders must agree.
  for (auto p = pos.begin(); p != pos.end(); ++p) {
    for (auto q = std::next(p); q != pos.end(); ++q) {
      const auto& dp = p->second;
      const auto& dq = q->second;
      for (auto m1 = dp.begin(); m1 != dp.end(); ++m1) {
        const auto q1 = dq.find(m1->first);
        if (q1 == dq.end()) continue;
        for (auto m2 = std::next(m1); m2 != dp.end(); ++m2) {
          const auto q2 = dq.find(m2->first);
          if (q2 == dq.end()) continue;
          const bool p_order = m1->second < m2->second;
          const bool q_order = q1->second < q2->second;
          if (p_order != q_order) return false;
        }
      }
    }
  }
  return true;
}

bool IntegrityProperty::holds(const Trace& tr) const {
  for (const auto& e : tr) {
    if (e.is_deliver() && trusted_.count(e.msg.sender) == 0) return false;
  }
  return true;
}

bool ConfidentialityProperty::holds(const Trace& tr) const {
  for (const auto& e : tr) {
    if (e.is_deliver() && trusted_.count(e.msg.sender) > 0 && trusted_.count(e.process) == 0) {
      return false;
    }
  }
  return true;
}

bool NoReplayProperty::holds(const Trace& tr) const {
  // Per process: the set of delivered body keys must have no duplicates.
  std::map<std::uint32_t, std::set<Bytes>> seen_bodies;
  std::map<std::uint32_t, std::set<MsgId>> seen_ids;
  for (const auto& e : tr) {
    if (!e.is_deliver()) continue;
    if (e.body.empty()) {
      if (!seen_ids[e.process].insert(e.msg).second) return false;
    } else {
      if (!seen_bodies[e.process].insert(e.body).second) return false;
    }
  }
  return true;
}

bool PrioritizedDeliveryProperty::holds(const Trace& tr) const {
  std::set<MsgId> master_delivered;
  for (const auto& e : tr) {
    if (!e.is_deliver()) continue;
    if (e.process == master_) {
      master_delivered.insert(e.msg);
    } else if (master_delivered.count(e.msg) == 0) {
      return false;
    }
  }
  return true;
}

bool AmoebaProperty::holds(const Trace& tr) const {
  // Per process: walk events; after a Send, the next Send by the same
  // process is legal only once the earlier message has been delivered
  // back to that process.
  std::map<std::uint32_t, MsgId> awaiting;        // process -> outstanding msg
  std::map<std::uint32_t, bool> has_outstanding;  // process -> blocked?
  for (const auto& e : tr) {
    if (e.is_send()) {
      auto& blocked = has_outstanding[e.process];
      if (blocked) return false;  // sent while awaiting its own message
      blocked = true;
      awaiting[e.process] = e.msg;
    } else {
      auto it = has_outstanding.find(e.process);
      if (it != has_outstanding.end() && it->second && awaiting[e.process] == e.msg) {
        it->second = false;
      }
    }
  }
  return true;
}

bool VirtualSynchronyProperty::holds(const Trace& tr) const {
  // Per process: the sequence of view markers delivered, and the set of
  // data messages delivered between consecutive markers.
  struct Epochs {
    std::vector<MsgId> views;                  // markers in delivery order
    std::vector<std::set<MsgId>> between;      // between[i]: after views[i],
                                               // before views[i+1]
    std::set<MsgId> current;
  };
  std::map<std::uint32_t, Epochs> per_proc;
  for (const auto& e : tr) {
    if (!e.is_deliver()) continue;
    auto& ep = per_proc[e.process];
    if (e.is_view_marker()) {
      if (!ep.views.empty()) ep.between.push_back(ep.current);
      ep.current.clear();
      ep.views.push_back(e.msg);
    } else if (!ep.views.empty()) {
      ep.current.insert(e.msg);
    }
    // Data delivered before any view marker is unconstrained (no common
    // epoch to compare).
  }
  // Compare all pairs of processes on common consecutive view pairs.
  for (auto p = per_proc.begin(); p != per_proc.end(); ++p) {
    for (auto q = std::next(p); q != per_proc.end(); ++q) {
      const auto& ep = p->second;
      const auto& eq = q->second;
      for (std::size_t i = 0; i + 1 < ep.views.size(); ++i) {
        for (std::size_t j = 0; j + 1 < eq.views.size(); ++j) {
          if (ep.views[i] == eq.views[j] && ep.views[i + 1] == eq.views[j + 1]) {
            if (ep.between[i] != eq.between[j]) return false;
          }
        }
      }
    }
  }
  return true;
}

bool CausalOrderProperty::holds(const Trace& tr) const {
  // Direct causal predecessors of each sent message: everything in the
  // sender's context (its earlier sends and deliveries) at send time.
  std::map<MsgId, std::vector<MsgId>> direct;
  std::map<std::uint32_t, std::vector<MsgId>> context;
  for (const auto& e : tr) {
    if (e.is_send()) {
      direct[e.msg] = context[e.process];
      context[e.process].push_back(e.msg);
    } else {
      context[e.process].push_back(e.msg);
    }
  }
  // Transitive closure, memoized: ancestors(m) = direct(m) ∪ their
  // ancestors. Needed because a process may deliver m1 and m3 with the
  // intermediate m2 of the chain m1 -> m2 -> m3 never delivered there.
  std::map<MsgId, std::set<MsgId>> ancestors;
  std::function<const std::set<MsgId>&(const MsgId&)> closure =
      [&](const MsgId& m) -> const std::set<MsgId>& {
    auto it = ancestors.find(m);
    if (it != ancestors.end()) return it->second;
    auto& anc = ancestors[m];  // inserted empty first: cycles impossible in
                               // well-formed traces, this guards regardless
    const auto d = direct.find(m);
    if (d != direct.end()) {
      for (const MsgId& p : d->second) {
        anc.insert(p);
        const auto& deeper = closure(p);
        anc.insert(deeper.begin(), deeper.end());
      }
    }
    return ancestors[m];
  };

  const auto pos = deliver_positions(tr);
  for (const auto& [proc, delivered] : pos) {
    for (const auto& [m2, pos2] : delivered) {
      for (const MsgId& m1 : closure(m2)) {
        const auto it1 = delivered.find(m1);
        // Only delivered pairs are order-constrained (the ordering reading
        // of causal order; completeness is Reliability's business).
        if (it1 != delivered.end() && it1->second > pos2) return false;
      }
    }
  }
  return true;
}

std::vector<std::unique_ptr<Property>> standard_properties(std::uint32_t n_procs) {
  std::vector<std::uint32_t> group(n_procs);
  std::iota(group.begin(), group.end(), 0);
  std::set<std::uint32_t> trusted(group.begin(), group.end());

  std::vector<std::unique_ptr<Property>> props;
  props.push_back(std::make_unique<TotalOrderProperty>());
  props.push_back(std::make_unique<IntegrityProperty>(trusted));
  props.push_back(std::make_unique<ConfidentialityProperty>(trusted));
  props.push_back(std::make_unique<ReliabilityProperty>(group));
  props.push_back(std::make_unique<PrioritizedDeliveryProperty>(0));
  props.push_back(std::make_unique<AmoebaProperty>(/*master irrelevant*/));
  props.push_back(std::make_unique<VirtualSynchronyProperty>());
  props.push_back(std::make_unique<NoReplayProperty>());
  return props;
}

std::vector<std::unique_ptr<Property>> extended_properties(std::uint32_t n_procs) {
  auto props = standard_properties(n_procs);
  props.push_back(std::make_unique<CausalOrderProperty>());
  return props;
}

}  // namespace msw
