// The eight communication properties of Table 1, as executable predicates
// on traces.
//
// Each formalization is chosen to match the paper's one-line description
// and its meta-property classification (Table 2); where the paper's prose
// leaves slack, EXPERIMENTS.md records the choice made. None of these
// predicates may depend on event timestamps — only on event order and
// content, as in the paper's system model (section 3).
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trace.hpp"

namespace msw {

class Property {
 public:
  virtual ~Property() = default;
  virtual std::string_view name() const = 0;
  virtual bool holds(const Trace& tr) const = 0;
};

/// "Every message that is sent is delivered to all receivers": for every
/// Send there is a Deliver at every process of the given group.
class ReliabilityProperty : public Property {
 public:
  explicit ReliabilityProperty(std::vector<std::uint32_t> group) : group_(std::move(group)) {}
  std::string_view name() const override { return "Reliability"; }
  bool holds(const Trace& tr) const override;

 private:
  std::vector<std::uint32_t> group_;
};

/// "Processes that deliver the same two messages deliver them in the same
/// order."
class TotalOrderProperty : public Property {
 public:
  std::string_view name() const override { return "Total Order"; }
  bool holds(const Trace& tr) const override;
};

/// "Messages cannot be forged; they are sent by trusted processes": every
/// Deliver event carries a trusted sender.
class IntegrityProperty : public Property {
 public:
  explicit IntegrityProperty(std::set<std::uint32_t> trusted) : trusted_(std::move(trusted)) {}
  std::string_view name() const override { return "Integrity"; }
  bool holds(const Trace& tr) const override;

 private:
  std::set<std::uint32_t> trusted_;
};

/// "Non-trusted processes cannot see messages from trusted processes": a
/// message from a trusted sender is delivered only at trusted processes.
class ConfidentialityProperty : public Property {
 public:
  explicit ConfidentialityProperty(std::set<std::uint32_t> trusted)
      : trusted_(std::move(trusted)) {}
  std::string_view name() const override { return "Confidentiality"; }
  bool holds(const Trace& tr) const override;

 private:
  std::set<std::uint32_t> trusted_;
};

/// "A message body can be delivered at most once to a process": no process
/// delivers two messages with the same body. (Messages with empty bodies
/// are keyed by message id instead, so id-only traces are not all
/// vacuously replays of each other.)
class NoReplayProperty : public Property {
 public:
  std::string_view name() const override { return "No Replay"; }
  bool holds(const Trace& tr) const override;
};

/// "The master process always delivers a message before anyone else."
class PrioritizedDeliveryProperty : public Property {
 public:
  explicit PrioritizedDeliveryProperty(std::uint32_t master) : master_(master) {}
  std::string_view name() const override { return "Prioritized Delivery"; }
  bool holds(const Trace& tr) const override;

 private:
  std::uint32_t master_;
};

/// "A process is blocked from sending while it is awaiting its own
/// messages": between two consecutive Sends by a process there is a
/// Deliver, at that process, of the earlier message.
class AmoebaProperty : public Property {
 public:
  std::string_view name() const override { return "Amoeba"; }
  bool holds(const Trace& tr) const override;
};

/// "A process only delivers messages from processes in some common view":
/// view notifications (MsgId::Kind::kView) partition each process's
/// deliveries into epochs; any two processes that deliver the same two
/// view notifications consecutively deliver the same set of data messages
/// between them.
class VirtualSynchronyProperty : public Property {
 public:
  std::string_view name() const override { return "Virtual Synchrony"; }
  bool holds(const Trace& tr) const override;
};

/// EXTENSION (not in the paper's Table 1): causal order. Send(m1) causally
/// precedes Send(m2) when the same process sent both in that order, or
/// m2's sender delivered m1 before sending m2 (transitively closed). The
/// property: every process that delivers both delivers m1 before m2.
/// The meta-property checker classifies it as NOT Delayable — delaying a
/// delivery past a send manufactures causality — so it sits outside the
/// paper's switch-safe class; yet, like Reliability, the concrete SP
/// preserves it operationally (all old-protocol messages drain before any
/// new-protocol delivery, so cross-switch causality cannot invert).
class CausalOrderProperty : public Property {
 public:
  std::string_view name() const override { return "Causal Order"; }
  bool holds(const Trace& tr) const override;
};

/// The Table 1 catalogue with standard parameters: group/trusted = all of
/// 0..n_procs-1, master = 0. Order matches the paper's Table 2 rows.
std::vector<std::unique_ptr<Property>> standard_properties(std::uint32_t n_procs);

/// The catalogue plus extension properties analyzed with the same
/// machinery (currently: Causal Order).
std::vector<std::unique_ptr<Property>> extended_properties(std::uint32_t n_procs);

}  // namespace msw
