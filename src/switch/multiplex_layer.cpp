#include "switch/multiplex_layer.hpp"

namespace msw {

void Mux::push(Message& m, std::uint16_t channel) {
  m.push_header([&](Writer& w) { w.u16(channel); });
}

std::uint16_t Mux::pop(Message& m) {
  std::uint16_t channel = 0;
  m.pop_header([&](Reader& r) { channel = r.u16(); });
  return channel;
}

void MultiplexLayer::down(Message m) {
  Mux::push(m, kDefaultChannel);
  ctx().send_down(std::move(m));
}

void MultiplexLayer::up(Message m) {
  std::uint16_t channel = 0;
  try {
    channel = Mux::pop(m);
  } catch (const DecodeError&) {
    ++dropped_;
    return;
  }
  if (channel == kDefaultChannel) {
    ctx().deliver_up(std::move(m));
    return;
  }
  auto it = handlers_.find(channel);
  if (it == handlers_.end()) {
    ++dropped_;
    return;
  }
  it->second(std::move(m));
}

void MultiplexLayer::send_on(std::uint16_t channel, Message m) {
  Mux::push(m, channel);
  ctx().send_down(std::move(m));
}

void MultiplexLayer::set_channel_handler(std::uint16_t channel,
                                         std::function<void(Message)> handler) {
  handlers_[channel] = std::move(handler);
}

}  // namespace msw
