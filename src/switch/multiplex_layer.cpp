#include "switch/multiplex_layer.hpp"

namespace msw {

void Mux::push(Message& m, std::uint16_t channel) {
  m.push_header([&](Writer& w) { w.u16(channel); });
}

std::uint16_t Mux::pop(Message& m) {
  std::uint16_t channel = 0;
  m.pop_header([&](Reader& r) { channel = r.u16(); });
  return channel;
}

void MultiplexLayer::down(Message m) {
  Mux::push(m, kDefaultChannel);
  ctx().send_down(std::move(m));
}

void MultiplexLayer::up(Message m) {
  std::uint16_t channel = 0;
  try {
    channel = Mux::pop(m);
  } catch (const DecodeError&) {
    ++dropped_;
    return;
  }
  if (channel == kDefaultChannel) {
    ctx().deliver_up(std::move(m));
    return;
  }
  auto it = handlers_.find(channel);
  if (it == handlers_.end()) {
    ++dropped_;
    return;
  }
  it->second(std::move(m));
}

void MultiplexLayer::down_batch(MessageBatch b) {
  // Every message gets the same constant tag: encode it once, stamp K times.
  Byte tag[2];
  Bytes tmp;
  Writer w(tmp);
  w.u16(kDefaultChannel);
  tag[0] = tmp[0];
  tag[1] = tmp[1];
  for (Message& m : b) m.push_header_raw(std::span<const Byte>(tag, 2));
  ctx().send_down(std::move(b));
}

void MultiplexLayer::up_batch(MessageBatch b) {
  // Contiguous default-channel runs continue upward as one batch;
  // side-channel and malformed messages peel off in place.
  MessageBatch out;
  for (Message& m : b) {
    std::uint16_t channel = 0;
    try {
      channel = Mux::pop(m);
    } catch (const DecodeError&) {
      ++dropped_;
      continue;
    }
    if (channel == kDefaultChannel) {
      out.push_back(std::move(m));
      continue;
    }
    auto it = handlers_.find(channel);
    if (it == handlers_.end()) {
      ++dropped_;
      continue;
    }
    // Side-channel handlers may send or mutate switch state; flush queued
    // deliveries first so their effects interleave exactly as per-message.
    ctx().deliver_up(std::move(out));
    out = MessageBatch{};
    it->second(std::move(m));
  }
  ctx().deliver_up(std::move(out));
}

void MultiplexLayer::send_on(std::uint16_t channel, Message m) {
  Mux::push(m, channel);
  ctx().send_down(std::move(m));
}

void MultiplexLayer::set_channel_handler(std::uint16_t channel,
                                         std::function<void(Message)> handler) {
  handlers_[channel] = std::move(handler);
}

}  // namespace msw
