// Virtually-synchronous protocol switching — the paper's future-work
// alternative (section 8): "virtually synchronous view changes can be used
// to switch protocols, and this more complicated mechanism does support
// the Virtual Synchrony property."
//
// Like SwitchLayer, this layer hosts two underlying protocol chains over
// private mux channels and an epoch-tagged data path. The difference is
// the switch mechanism: a coordinator-driven flush in the style of the
// membership layer (proto/vsync_layer.hpp):
//
//   FLUSH_REQ — every member STOPS SENDING (sends queue; this is the cost
//               relative to SP, which never blocks senders) and reports its
//               sent count;
//   CUT       — the coordinator disseminates the exact per-member counts;
//               a member that has delivered the whole cut installs the new
//               epoch, delivers a view notification to the application,
//               switches protocols, and releases its queued sends.
//
// Because every member delivers exactly the cut between consecutive view
// notifications, the application-boundary trace is virtually synchronous
// ACROSS the protocol switch — which the token-based SP cannot guarantee
// (Virtual Synchrony is not Memoryless, Table 2). Benchmark E7 contrasts
// the two.
//
// Control messages ride the raw control channel; the coordinator
// retransmits the current phase until every member confirms, and members
// treat duplicates idempotently, so the switch completes on a fair-lossy
// network.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "stack/layer.hpp"
#include "switch/multiplex_layer.hpp"

namespace msw {

struct VsyncSwitchConfig {
  /// Coordinator's control retransmission interval during a switch.
  Duration control_rto = 20 * kMillisecond;
};

class VsyncSwitchLayer : public Layer {
 public:
  VsyncSwitchLayer(std::vector<std::unique_ptr<Layer>> proto_a,
                   std::vector<std::unique_ptr<Layer>> proto_b, VsyncSwitchConfig cfg = {});
  ~VsyncSwitchLayer() override;

  std::string_view name() const override { return "vsync-switch"; }

  void start() override;
  void down(Message m) override;
  void up(Message m) override;

  /// Initiate a switch. On the coordinator this starts the flush; on any
  /// other member it forwards the request to the coordinator.
  void request_switch();

  std::uint64_t epoch() const { return epoch_; }
  int active_protocol() const { return static_cast<int>(epoch_ % 2); }
  bool switching() const { return flushing_; }
  /// Application sends queued while the flush blocks sending.
  std::size_t blocked_sends() const { return queued_.size(); }

  struct Stats {
    std::uint64_t switches_completed = 0;
    Duration last_switch_duration = 0;  // coordinator: request to all-done
    std::uint64_t control_retransmissions = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  bool is_coordinator() const { return ctx().self() == ctx().members().front(); }
  NodeId coordinator() const { return ctx().members().front(); }

  void on_subprotocol_deliver(int protocol, Message m);
  void deliver_counted(std::uint32_t sender, Message m);
  void maybe_install();
  void install_epoch();

  void on_control(Message m);
  void begin_flush(std::uint64_t closing_epoch);
  void send_flush_ok();
  void coordinator_tick();
  void send_cut();

  LayerChain& chain(int protocol) { return protocol == 0 ? *chain_a_ : *chain_b_; }

  VsyncSwitchConfig cfg_;
  std::vector<std::unique_ptr<Layer>> layers_a_;
  std::vector<std::unique_ptr<Layer>> layers_b_;
  std::unique_ptr<LayerChain> chain_a_;
  std::unique_ptr<LayerChain> chain_b_;

  // Epoch / data state (as in SwitchLayer).
  std::uint64_t epoch_ = 0;
  std::uint64_t sent_this_epoch_ = 0;
  std::map<std::uint32_t, std::uint64_t> delivered_this_epoch_;
  struct BufferedDeliver {
    std::uint32_t sender;
    Message m;
  };
  std::vector<BufferedDeliver> buffered_next_;

  // Flush state (member side).
  bool flushing_ = false;
  bool have_cut_ = false;
  std::map<std::uint32_t, std::uint64_t> cut_counts_;
  std::deque<Message> queued_;

  // Coordinator state.
  enum class Phase : std::uint8_t { kIdle, kCollectingOks, kAwaitingDone };
  Phase phase_ = Phase::kIdle;
  std::uint64_t closing_epoch_ = 0;
  std::map<std::uint32_t, std::uint64_t> flush_oks_;
  std::set<std::uint32_t> done_;
  Time switch_started_ = 0;

  Stats stats_;
};

/// Factory: vsync switching over two sub-protocol factories.
LayerFactory make_vsync_switch_factory(LayerFactory proto_a, LayerFactory proto_b,
                                       VsyncSwitchConfig cfg = {});

/// The VsyncSwitchLayer of a member stack built by the factory above.
VsyncSwitchLayer& vsync_switch_layer_of(class Stack& stack);

}  // namespace msw
