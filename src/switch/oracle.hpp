// The switching oracle.
//
// The paper deliberately leaves *when* to switch out of scope ("we assume
// that some kind of oracle decides when a switch is necessary") but its
// section 7 discusses the two pitfalls of a naive oracle: switching too
// aggressively causes oscillation, and hysteresis fixes it at the cost of
// sometimes lingering on the slower protocol. These implementations
// reproduce that discussion (benchmark E5).
//
// The oracle is consulted by the switching layer whenever a NORMAL token
// visits this member; returning true makes this member the initiator of a
// switch away from `view.active_protocol`.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace msw {

class Services;

/// Snapshot of local conditions handed to the oracle.
struct OracleView {
  NodeId self{};
  /// Index (0/1) of the currently active protocol.
  int active_protocol = 0;
  Time now = 0;
  /// Distinct senders whose messages were delivered here within the
  /// measurement window (the load signal of Figure 2's x-axis). Pruned at
  /// consult time against `now`, so a slow token rotation never widens the
  /// window the count covers.
  std::size_t active_senders = 0;
  Time since_last_switch = 0;
  /// Duration of the most recent full NORMAL-token ring rotation observed
  /// at this member (0 until two consecutive NORMAL visits have been seen
  /// since the last switch). A live proxy for token-protocol latency: the
  /// SP control token crosses the same ring the token protocol would use,
  /// whichever protocol carries the data.
  Duration normal_rotation = 0;
  /// PREPARE-to-install span of this member's most recent local switchover
  /// (0 before the first) — the observed switch-overhead signal the
  /// auto-hysteresis controller tunes dwell time from.
  Duration last_switch_overhead = 0;
  /// Completed local switchovers at this member, so an oracle can detect
  /// "a new switch finished since my last consult" without extra wiring.
  std::uint64_t switches_completed = 0;
};

class Oracle {
 public:
  virtual ~Oracle() = default;
  virtual bool should_switch(const OracleView& view) = 0;

  /// Wire the oracle to its process. SwitchLayer calls this once from
  /// start(), after the stack's services (timers, metrics, tracer) are
  /// live; policy oracles bind their telemetry readers and arm sampling
  /// timers here. The default is a no-op so threshold oracles stay plain.
  virtual void attach(Services& services) { (void)services; }
};

/// Never switches on its own; tests and examples trigger switches through
/// SwitchLayer::request_switch().
class ManualOracle : public Oracle {
 public:
  bool should_switch(const OracleView&) override { return false; }
};

/// Single-threshold oracle: protocol 0 (e.g. sequencer) below the
/// threshold, protocol 1 (e.g. token) at or above it. With load sitting
/// near the threshold this oracle oscillates — the failure mode the paper
/// reports when "switching too aggressively".
class ThresholdOracle : public Oracle {
 public:
  explicit ThresholdOracle(std::size_t threshold) : threshold_(threshold) {}
  bool should_switch(const OracleView& view) override;

 private:
  std::size_t threshold_;
};

/// Dual-threshold oracle with a minimum dwell time: switch 0 -> 1 only at
/// or above `high`, 1 -> 0 only at or below `low`, and never within
/// `min_dwell` of the previous switch. The paper's hysteresis fix.
class HysteresisOracle : public Oracle {
 public:
  HysteresisOracle(std::size_t low, std::size_t high, Duration min_dwell)
      : low_(low), high_(high), min_dwell_(min_dwell) {}
  bool should_switch(const OracleView& view) override;

 private:
  std::size_t low_;
  std::size_t high_;
  Duration min_dwell_;
};

using OracleFactory = std::function<std::unique_ptr<Oracle>(NodeId self)>;

}  // namespace msw
