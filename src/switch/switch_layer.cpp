#include "switch/switch_layer.hpp"

#include <algorithm>
#include <cassert>

#include "telemetry/metrics.hpp"
#include "util/log.hpp"

namespace msw {
namespace {

// Mux channels (Figure 1: each protocol, and SP itself, gets a private
// channel over the shared endpoint).
constexpr std::uint16_t kChanProtoA = 0;
constexpr std::uint16_t kChanProtoB = 1;
constexpr std::uint16_t kChanControl = 2;

// SP data-path header type.
enum class DataType : std::uint8_t { kData = 0, kPass = 1 };

// SP control-channel message type.
enum class CtlType : std::uint8_t { kToken = 0, kAck = 1 };

}  // namespace

SwitchLayer::SwitchLayer(std::vector<std::unique_ptr<Layer>> proto_a,
                         std::vector<std::unique_ptr<Layer>> proto_b,
                         std::unique_ptr<Oracle> oracle, SwitchConfig cfg)
    : cfg_(cfg),
      oracle_(std::move(oracle)),
      layers_a_(std::move(proto_a)),
      layers_b_(std::move(proto_b)),
      epoch_(cfg.initial_epoch) {}

SwitchLayer::~SwitchLayer() = default;

void SwitchLayer::start() {
  Services* services = ctx().services();
  tr_ = &services->tracer();
  tr_->set_epoch(epoch_);
  n_sp_switch_ = tr_->intern("sp.switch");
  n_rot_prepare_ = tr_->intern("sp.rotation.prepare");
  n_rot_switch_ = tr_->intern("sp.rotation.switch");
  n_rot_flush_ = tr_->intern("sp.rotation.flush");
  n_local_ = tr_->intern("sp.switch.local");
  n_ph_prepare_ = tr_->intern("sp.phase.prepare");
  n_ph_drain_ = tr_->intern("sp.phase.drain");
  n_ph_release_ = tr_->intern("sp.phase.release");
  n_tok_forward_ = tr_->intern("sp.token.forward");
  n_tok_retx_ = tr_->intern("sp.token.retransmit");
  n_stale_ = tr_->intern("sp.stale_drop");
  n_buf_ = tr_->intern("sp.buffer.enqueue");
  n_epoch_install_ = tr_->intern("sp.epoch.install");
  if (MetricsRegistry* reg = services->metrics()) {
    reg->attach_counter("sp.switches_completed", &stats_.switches_completed);
    reg->attach_counter("sp.switches_initiated", &stats_.switches_initiated);
    reg->attach_counter("sp.token_hops", &stats_.token_hops);
    reg->attach_counter("sp.token_retransmissions", &stats_.token_retransmissions);
    reg->attach_counter("sp.stale_dropped", &stats_.stale_dropped);
    reg->attach_counter("sp.max_buffered", &stats_.max_buffered);
  }
  chain_a_ = std::make_unique<LayerChain>(
      *services, std::move(layers_a_),
      [this](Message m) {
        Mux::push(m, kChanProtoA);
        ctx().send_down(std::move(m));
      },
      [this](Message m) { on_subprotocol_deliver(0, std::move(m)); },
      [this](MessageBatch b) {
        for (Message& m : b) Mux::push(m, kChanProtoA);
        ctx().send_down(std::move(b));
      },
      [this](MessageBatch b) {
        for (Message& m : b) on_subprotocol_deliver(0, std::move(m));
      });
  chain_b_ = std::make_unique<LayerChain>(
      *services, std::move(layers_b_),
      [this](Message m) {
        Mux::push(m, kChanProtoB);
        ctx().send_down(std::move(m));
      },
      [this](Message m) { on_subprotocol_deliver(1, std::move(m)); },
      [this](MessageBatch b) {
        for (Message& m : b) Mux::push(m, kChanProtoB);
        ctx().send_down(std::move(b));
      },
      [this](MessageBatch b) {
        for (Message& m : b) on_subprotocol_deliver(1, std::move(m));
      });
  chain_a_->start();
  chain_b_->start();

  // Seed the dwell clock: "time since last switch" is measured from layer
  // start until the first real switch. Without this the first consult sees
  // since_last_switch == now, which under a nonzero time base (wall-clock
  // runtime, delayed group start) vacuously satisfies any dwell guard.
  last_switch_time_ = ctx().now();
  oracle_->attach(*services);

  if (ctx().self_index() == 0) {
    // Originate the perpetually-circulating NORMAL token.
    Token t;
    t.mode = TokenMode::kNormal;
    t.serial = 1;
    t.epoch = epoch_;
    last_serial_seen_ = 1;
    handle_token(std::move(t));
  }
}

Layer& SwitchLayer::sub_layer(int protocol, std::size_t i) {
  return chain(protocol).layer(i);
}

// --------------------------------------------------------------------------
// Telemetry helpers: rotation spans on the control track, phase spans on
// the data track. Both tracks keep strict begin/end nesting so the Chrome
// exporter renders them as clean nested slices.
// --------------------------------------------------------------------------

void SwitchLayer::trace_rotation(std::uint32_t name, std::uint64_t arg) {
  if (open_rotation_ != 0) {
    tr_->end(open_rotation_, TelemetryTrack::kControl);
  } else {
    // First rotation seen for this switch on this node: open the enclosing
    // whole-switch span.
    tr_->begin(n_sp_switch_, TelemetryTrack::kControl, arg);
  }
  tr_->begin(name, TelemetryTrack::kControl, arg);
  open_rotation_ = name;
}

void SwitchLayer::trace_rotation_done(bool close_switch) {
  if (open_rotation_ == 0) return;
  tr_->end(open_rotation_, TelemetryTrack::kControl);
  open_rotation_ = 0;
  if (close_switch) tr_->end(n_sp_switch_, TelemetryTrack::kControl);
}

void SwitchLayer::trace_counts_arrived() {
  tr_->end(n_ph_prepare_, TelemetryTrack::kData);
  tr_->begin(n_ph_drain_, TelemetryTrack::kData);
}

// --------------------------------------------------------------------------
// Data path
// --------------------------------------------------------------------------

void SwitchLayer::down(Message m) {
  if (m.is_p2p()) {
    m.push_header([](Writer& w) { w.u8(static_cast<std::uint8_t>(DataType::kPass)); });
    chain(active_protocol()).down_from_top(std::move(m));
    return;
  }
  // Sends submitted after PREPARE travel on the NEW protocol under the next
  // epoch — the application is never blocked (paper section 2/7).
  const std::uint64_t target_epoch = prepared_ ? epoch_ + 1 : epoch_;
  const std::uint64_t seq = prepared_ ? sent_next_epoch_++ : sent_this_epoch_++;
  const std::uint32_t sender = ctx().self().v;
  m.push_header([&](Writer& w) {
    w.u8(static_cast<std::uint8_t>(DataType::kData));
    w.u64(target_epoch);
    w.u32(sender);
    w.u64(seq);
  });
  chain(static_cast<int>(target_epoch % 2)).down_from_top(std::move(m));
}

void SwitchLayer::down_batch(MessageBatch b) {
  for (const Message& m : b) {
    if (m.is_p2p()) {
      Layer::down_batch(std::move(b));
      return;
    }
  }
  // prepared_ only flips on token processing, never mid-batch, so the whole
  // batch targets one epoch and one sub-protocol chain. Sends straddling a
  // PREPARE necessarily arrive in different batches (the SP epoch boundary
  // is a batch split by construction).
  const std::uint64_t target_epoch = prepared_ ? epoch_ + 1 : epoch_;
  const std::uint32_t sender = ctx().self().v;
  constexpr std::size_t kHdr = 1 + 8 + 4 + 8;
  Bytes& scratch = ctx().scratch();
  Writer w(scratch);
  w.reserve(kHdr * b.size());
  for (std::size_t i = 0; i < b.size(); ++i) {
    w.u8(static_cast<std::uint8_t>(DataType::kData));
    w.u64(target_epoch);
    w.u32(sender);
    w.u64(prepared_ ? sent_next_epoch_++ : sent_this_epoch_++);
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i].push_header_raw(std::span<const Byte>(scratch.data() + i * kHdr, kHdr));
  }
  chain(static_cast<int>(target_epoch % 2)).down_from_top_batch(std::move(b));
}

void SwitchLayer::up_batch(MessageBatch b) {
  // Forward consecutive same-channel runs as sub-batches; control frames
  // flush the pending run first so wire-visible side effects (acks, token
  // forwards, buffered releases) keep their unbatched ordering.
  MessageBatch run;
  std::uint16_t run_chan = 0;
  auto flush = [&] {
    if (run.empty()) return;
    if (run_chan == kChanProtoA) chain_a_->up_from_bottom_batch(std::move(run));
    else chain_b_->up_from_bottom_batch(std::move(run));
    run = MessageBatch{};
  };
  for (Message& m : b) {
    std::uint16_t channel = 0;
    try {
      channel = Mux::pop(m);
    } catch (const DecodeError&) {
      continue;
    }
    switch (channel) {
      case kChanProtoA:
      case kChanProtoB:
        if (!run.empty() && run_chan != channel) flush();
        run_chan = channel;
        run.push_back(std::move(m));
        break;
      case kChanControl:
        flush();
        on_control(std::move(m));
        break;
      default:
        break;
    }
  }
  flush();
}

void SwitchLayer::up(Message m) {
  std::uint16_t channel = 0;
  try {
    channel = Mux::pop(m);
  } catch (const DecodeError&) {
    return;
  }
  switch (channel) {
    case kChanProtoA:
      chain_a_->up_from_bottom(std::move(m));
      break;
    case kChanProtoB:
      chain_b_->up_from_bottom(std::move(m));
      break;
    case kChanControl:
      on_control(std::move(m));
      break;
    default:
      break;
  }
}

void SwitchLayer::on_subprotocol_deliver(int protocol, Message m) {
  DataType type{};
  std::uint64_t epoch = 0;
  std::uint32_t sender = 0;
  try {
    m.pop_header([&](Reader& r) {
      type = static_cast<DataType>(r.u8());
      if (type == DataType::kData) {
        epoch = r.u64();
        sender = r.u32();
        r.u64();  // per-epoch sequence, diagnostic only
      }
    });
  } catch (const DecodeError&) {
    return;
  }
  if (type == DataType::kPass) {
    ctx().deliver_up(std::move(m));
    return;
  }
  if (static_cast<int>(epoch % 2) != protocol) {
    // A message tagged for one protocol surfaced from the other: a bug in
    // the composition, not a runtime condition.
    assert(false && "epoch/protocol mismatch");
    return;
  }
  if (epoch == epoch_) {
    deliver_counted(sender, std::move(m));
    maybe_complete_switch();
  } else if (epoch == epoch_ + 1) {
    // The sender has already moved on; we are still draining. Buffer in
    // arrival order, which is the new protocol's delivery order.
    buffered_next_.push_back(BufferedDeliver{sender, std::move(m)});
    tr_->instant(n_buf_, TelemetryTrack::kData, buffered_next_.size());
    stats_.max_buffered = std::max(stats_.max_buffered,
                                   static_cast<std::uint64_t>(buffered_next_.size()));
  } else {
    // Older epochs: late retransmissions, already delivered before we
    // switched — the at-most-once assumption makes these safe to drop.
    ++stats_.stale_dropped;
    tr_->instant(n_stale_, TelemetryTrack::kData, epoch);
  }
}

void SwitchLayer::deliver_counted(std::uint32_t sender, Message m) {
  ++delivered_this_epoch_[sender];
  last_seen_sender_[sender] = ctx().now();
  if (epoch_tap_) epoch_tap_(epoch_);
  ctx().deliver_up(std::move(m));
}

void SwitchLayer::maybe_complete_switch() {
  if (!prepared_ || !have_counts_) return;
  const auto& members = ctx().members();
  for (std::size_t j = 0; j < members.size(); ++j) {
    if (members[j].v == cfg_.fault_skip_count_sender) continue;  // injected bug
    const auto it = delivered_this_epoch_.find(members[j].v);
    const std::uint64_t delivered = it == delivered_this_epoch_.end() ? 0 : it->second;
    if (delivered < counts_[j]) return;  // still draining the old protocol
  }
  complete_local_switch();
}

void SwitchLayer::complete_local_switch() {
  tr_->end(n_ph_drain_, TelemetryTrack::kData);
  ++epoch_;
  tr_->set_epoch(epoch_);
  // Streaming monitors key epoch-lifecycle state off this instant: arg is
  // the epoch now installed, arg2 the protocol index it runs.
  tr_->instant(n_epoch_install_, TelemetryTrack::kMembership, epoch_, active_protocol());
  sent_this_epoch_ = sent_next_epoch_;
  sent_next_epoch_ = 0;
  delivered_this_epoch_.clear();
  prepared_ = false;
  have_counts_ = false;
  counts_.clear();
  ++stats_.switches_completed;
  stats_.last_local_switch_duration = ctx().now() - local_switch_started_;
  last_switch_time_ = ctx().now();
  MSW_LOG(kInfo, "switch", ctx().now())
      << to_string(ctx().self()) << " switched to epoch " << epoch_ << " (protocol "
      << active_protocol() << "), releasing " << buffered_next_.size() << " buffered";

  // Release new-epoch deliveries in the new protocol's order.
  std::vector<BufferedDeliver> buffered = std::move(buffered_next_);
  buffered_next_.clear();
  tr_->begin(n_ph_release_, TelemetryTrack::kData, buffered.size());
  for (auto& b : buffered) deliver_counted(b.sender, std::move(b.m));
  tr_->end(n_ph_release_, TelemetryTrack::kData, buffered.size());
  tr_->end(n_local_, TelemetryTrack::kData);

  if (held_flush_) {
    Token flush = std::move(*held_flush_);
    held_flush_.reset();
    forward_token(std::move(flush));
    // The FLUSH has left this node; unless we initiated (and so await its
    // return), the switch is over here — close the rotation spans.
    if (!i_am_initiator_) trace_rotation_done(/*close_switch=*/true);
  }
}

// --------------------------------------------------------------------------
// Control path: the three-rotation switch token
// --------------------------------------------------------------------------

Payload SwitchLayer::encode_token(const Token& t) const {
  Message m = Message::group({});
  m.push_header([&](Writer& w) {
    w.u8(static_cast<std::uint8_t>(CtlType::kToken));
    w.u8(static_cast<std::uint8_t>(t.mode));
    w.u64(t.serial);
    w.u64(t.epoch);
    w.u32(t.initiator);
    w.u32(static_cast<std::uint32_t>(t.counts.size()));
    for (std::uint64_t c : t.counts) w.u64(c);
  });
  return std::move(m.data);
}

SwitchLayer::Token SwitchLayer::decode_token(Reader& r) {
  Token t;
  t.mode = static_cast<TokenMode>(r.u8());
  t.serial = r.u64();
  t.epoch = r.u64();
  t.initiator = r.u32();
  const std::uint32_t n = r.u32();
  t.counts.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) t.counts.push_back(r.u64());
  return t;
}

void SwitchLayer::on_control(Message m) {
  CtlType type{};
  Token token;
  std::uint64_t ack_serial = 0;
  try {
    m.pop_header([&](Reader& r) {
      type = static_cast<CtlType>(r.u8());
      if (type == CtlType::kToken) {
        token = decode_token(r);
      } else {
        ack_serial = r.u64();
      }
    });
  } catch (const DecodeError&) {
    return;
  }
  if (type == CtlType::kAck) {
    if (ack_serial == outstanding_serial_) {
      outstanding_serial_ = 0;
      outstanding_bytes_.clear();
    }
    return;
  }
  on_token(std::move(token), m.wire_src);
}

void SwitchLayer::on_token(Token t, NodeId from) {
  // Ack unconditionally; the predecessor retransmits until it hears us.
  {
    Message ack = Message::p2p(from, {});
    const std::uint64_t serial = t.serial;
    ack.push_header([&](Writer& w) {
      w.u8(static_cast<std::uint8_t>(CtlType::kAck));
      w.u64(serial);
    });
    Mux::push(ack, kChanControl);
    ctx().send_down(std::move(ack));
  }
  if (t.serial <= last_serial_seen_) return;  // duplicate handoff
  last_serial_seen_ = t.serial;
  handle_token(std::move(t));
}

void SwitchLayer::begin_prepare_local() {
  prepared_ = true;
  local_switch_started_ = ctx().now();
  last_normal_visit_ = -1;  // rotation measurements restart after the switch
  tr_->begin(n_local_, TelemetryTrack::kData, epoch_);
  tr_->begin(n_ph_prepare_, TelemetryTrack::kData, epoch_);
  // sent_this_epoch_ is now frozen: subsequent sends count toward the next
  // epoch and travel on the new protocol.
}

void SwitchLayer::handle_token(Token t) {
  const std::uint32_t self = ctx().self().v;
  switch (t.mode) {
    case TokenMode::kNormal: {
      const Time now = ctx().now();
      // Ring-rotation measurement: consecutive NORMAL arrivals here are one
      // full rotation apart. Reset across switches (begin_prepare_local),
      // so post-switch samples never include switch-rotation time.
      if (last_normal_visit_ >= 0) normal_rotation_ = now - last_normal_visit_;
      last_normal_visit_ = now;
      prune_sender_window(now);
      OracleView view;
      view.self = ctx().self();
      view.active_protocol = active_protocol();
      view.now = now;
      view.active_senders = active_senders();
      view.since_last_switch = now - last_switch_time_;
      view.normal_rotation = normal_rotation_;
      view.last_switch_overhead = stats_.last_local_switch_duration;
      view.switches_completed = stats_.switches_completed;
      const bool initiate = switch_requested_ || oracle_->should_switch(view);
      if (initiate) {
        switch_requested_ = false;
        i_am_initiator_ = true;
        switch_started_ = ctx().now();
        ++stats_.switches_initiated;
        MSW_LOG(kInfo, "switch", ctx().now())
            << to_string(ctx().self()) << " initiating switch away from protocol "
            << active_protocol() << " (epoch " << epoch_ << ")";
        t.mode = TokenMode::kPrepare;
        t.epoch = epoch_;
        t.initiator = self;
        t.counts.assign(ctx().member_count(), 0);
        trace_rotation(n_rot_prepare_, epoch_);
        begin_prepare_local();
        t.counts[ctx().self_index()] = sent_this_epoch_;
        forward_token(std::move(t));
        return;
      }
      if (cfg_.normal_hold > 0) {
        ctx().set_timer(cfg_.normal_hold,
                        [this, t = std::move(t)]() mutable { forward_token(std::move(t)); });
      } else {
        forward_token(std::move(t));
      }
      return;
    }

    case TokenMode::kPrepare: {
      if (t.initiator == self) {
        // Second rotation: every member's count is on board.
        t.mode = TokenMode::kSwitch;
        counts_ = t.counts;
        have_counts_ = true;
        trace_rotation(n_rot_switch_, t.epoch);
        trace_counts_arrived();
        forward_token(std::move(t));
        maybe_complete_switch();
        return;
      }
      if (t.epoch == epoch_ && !prepared_) {
        trace_rotation(n_rot_prepare_, t.epoch);
        begin_prepare_local();
        t.counts[ctx().self_index()] = sent_this_epoch_;
      }
      forward_token(std::move(t));
      return;
    }

    case TokenMode::kSwitch: {
      if (t.initiator == self) {
        // Third rotation: disseminate FLUSH, but only once we ourselves
        // have completed the local switch. A member's epoch is t.epoch
        // until it switches and t.epoch + 1 after, so the wrap-safe test
        // for "switched" is inequality, not ordering.
        t.mode = TokenMode::kFlush;
        trace_rotation(n_rot_flush_, t.epoch);
        if (epoch_ != t.epoch) {
          forward_token(std::move(t));
        } else {
          held_flush_ = std::move(t);
        }
        return;
      }
      if (t.epoch == epoch_ && prepared_) {
        counts_ = t.counts;
        const bool counts_were_new = !have_counts_;
        have_counts_ = true;
        trace_rotation(n_rot_switch_, t.epoch);
        if (counts_were_new) trace_counts_arrived();
      }
      forward_token(std::move(t));
      maybe_complete_switch();
      return;
    }

    case TokenMode::kFlush: {
      if (t.initiator == self) {
        // The FLUSH made it through every member: the switch has truly
        // completed at each member (paper section 2).
        trace_rotation_done(/*close_switch=*/true);
        stats_.last_switch_duration = ctx().now() - switch_started_;
        stats_.switch_durations.add(to_ms(stats_.last_switch_duration));
        i_am_initiator_ = false;
        MSW_LOG(kInfo, "switch", ctx().now())
            << to_string(ctx().self()) << " switch complete in "
            << to_ms(stats_.last_switch_duration) << " ms";
        t.mode = TokenMode::kNormal;
        t.epoch = epoch_;
        t.initiator = 0;
        t.counts.clear();
        forward_token(std::move(t));
        return;
      }
      trace_rotation(n_rot_flush_, t.epoch);
      if (epoch_ != t.epoch) {
        forward_token(std::move(t));
        trace_rotation_done(/*close_switch=*/true);
      } else {
        // Still draining; forward once the local switch completes (which
        // also closes the flush rotation span).
        held_flush_ = std::move(t);
      }
      return;
    }
  }
}

void SwitchLayer::forward_token(Token t, bool count_hop) {
  if (count_hop) ++stats_.token_hops;
  ++t.serial;
  tr_->instant(n_tok_forward_, TelemetryTrack::kControl, t.serial);
  outstanding_serial_ = t.serial;
  outstanding_bytes_ = encode_token(t);
  Message m = Message::p2p(ctx().ring_successor(), outstanding_bytes_);
  Mux::push(m, kChanControl);
  ctx().send_down(std::move(m));
  arm_token_retransmit(t.serial);
}

void SwitchLayer::arm_token_retransmit(std::uint64_t serial) {
  ctx().set_timer(cfg_.token_rto, [this, serial] {
    if (outstanding_serial_ != serial) return;  // acked meanwhile
    ++stats_.token_retransmissions;
    tr_->instant(n_tok_retx_, TelemetryTrack::kControl, serial);
    Message m = Message::p2p(ctx().ring_successor(), outstanding_bytes_);
    Mux::push(m, kChanControl);
    ctx().send_down(std::move(m));
    arm_token_retransmit(serial);
  });
}

void SwitchLayer::prune_sender_window(Time now) {
  for (auto it = last_seen_sender_.begin(); it != last_seen_sender_.end();) {
    if (now - it->second > cfg_.sender_window) {
      it = last_seen_sender_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t SwitchLayer::active_senders() const {
  // Count against the consult-time clock instead of trusting the last
  // prune: a member whose token visits are slow (large normal_hold, lossy
  // ring) must not report senders that went quiet a whole window ago.
  const Time now = ctx().now();
  std::size_t n = 0;
  for (const auto& [sender, seen] : last_seen_sender_) {
    if (now - seen <= cfg_.sender_window) ++n;
  }
  return n;
}

}  // namespace msw
