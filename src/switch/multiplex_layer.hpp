// MULTIPLEX (Figure 1): several logical channels over one communication
// endpoint.
//
// `Mux` is the wire mechanism — a one-word channel tag pushed/popped like
// any other header. The switching protocol uses it directly to give each
// underlying protocol (and its own control traffic) a private channel.
// `MultiplexLayer` additionally packages the mechanism as a standalone
// composable layer: ordinary stack traffic flows through channel 0, and
// other components may register side channels.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "stack/layer.hpp"

namespace msw {

struct Mux {
  static void push(Message& m, std::uint16_t channel);
  /// Throws DecodeError on a malformed buffer.
  static std::uint16_t pop(Message& m);
};

class MultiplexLayer : public Layer {
 public:
  /// Channel used for the pass-through traffic of the stack above.
  static constexpr std::uint16_t kDefaultChannel = 0;

  std::string_view name() const override { return "multiplex"; }

  void down(Message m) override;
  void up(Message m) override;
  void down_batch(MessageBatch b) override;
  void up_batch(MessageBatch b) override;

  /// Send on a side channel (bypasses the layers above).
  void send_on(std::uint16_t channel, Message m);

  /// Receive side-channel traffic. Unregistered channels are dropped and
  /// counted.
  void set_channel_handler(std::uint16_t channel, std::function<void(Message)> handler);

  std::uint64_t dropped_unroutable() const { return dropped_; }

 private:
  std::unordered_map<std::uint16_t, std::function<void(Message)>> handlers_;
  std::uint64_t dropped_ = 0;
};

}  // namespace msw
