// Stack factories for the paper's experiments.
//
// A LayerFactory builds one process's stack; Group applies it uniformly.
// The hybrid factory composes the paper's section-7 system: the switching
// protocol over the sequencer-based and token-based total-order protocols,
// driven by a pluggable oracle — "the best of both worlds" at every load.
#pragma once

#include "proto/fifo_layer.hpp"
#include "proto/reliable_layer.hpp"
#include "proto/sequencer_layer.hpp"
#include "proto/token_layer.hpp"
#include "stack/layer.hpp"
#include "switch/oracle.hpp"
#include "switch/policy/policy_oracle.hpp"
#include "switch/switch_layer.hpp"

namespace msw {

/// Plain sequencer total order.
LayerFactory make_sequencer_factory(SequencerConfig cfg = {});

/// Plain token-ring total order.
LayerFactory make_token_factory(TokenConfig cfg = {});

/// Reliable FIFO multicast (no total order): FifoLayer over ReliableLayer.
LayerFactory make_reliable_fifo_factory(ReliableConfig cfg = {});

struct HybridConfig {
  SequencerConfig sequencer;
  TokenConfig token;
  SwitchConfig sp;
  /// Per-member oracle; defaults to ManualOracle (switch on request only).
  OracleFactory oracle;
};

/// The switching protocol over {sequencer, token} total order.
/// Protocol 0 (initially active) is the sequencer; protocol 1 the token.
LayerFactory make_hybrid_total_order_factory(HybridConfig cfg = {});

/// Per-member PolicyOracle factory: every node runs its own adaptive
/// policy engine over its own signal plane. `ext` (optional) merges
/// external fields — e.g. rt_signal_source() — into every sampled vector.
OracleFactory make_policy_oracle_factory(PolicyConfig cfg = {},
                                         SignalPlane::ExternalSource ext = {});

/// The hybrid total-order stack driven by the adaptive PolicyOracle —
/// make_hybrid_total_order_factory with the policy engine plugged in.
LayerFactory make_adaptive_hybrid_factory(HybridConfig cfg = {}, PolicyConfig policy = {});

/// The switching protocol over two arbitrary sub-protocol factories.
/// Each sub-factory builds the (top-first) layer list of one underlying
/// protocol for the given process.
LayerFactory make_switch_factory(LayerFactory proto_a, LayerFactory proto_b,
                                 OracleFactory oracle = {}, SwitchConfig cfg = {});

/// The SwitchLayer of member-stack built by a switch/hybrid factory (it is
/// the topmost layer). Convenience for tests and benches.
SwitchLayer& switch_layer_of(class Stack& stack);

}  // namespace msw
