#include "switch/oracle.hpp"

namespace msw {

bool ThresholdOracle::should_switch(const OracleView& view) {
  if (view.active_protocol == 0) return view.active_senders >= threshold_;
  return view.active_senders < threshold_;
}

bool HysteresisOracle::should_switch(const OracleView& view) {
  if (view.since_last_switch < min_dwell_) return false;
  if (view.active_protocol == 0) return view.active_senders >= high_;
  return view.active_senders <= low_;
}

}  // namespace msw
