#include "switch/policy/policy_oracle.hpp"

#include <algorithm>
#include <string>

#include "stack/layer.hpp"

namespace msw {

std::string_view to_string(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kSequencer: return "sequencer";
    case ProtocolKind::kToken: return "token";
    case ProtocolKind::kCausal: return "causal";
    case ProtocolKind::kPriority: return "priority";
    case ProtocolKind::kReliableFifo: return "reliable_fifo";
  }
  return "?";
}

PolicyOracle::PolicyOracle(PolicyConfig cfg, SignalPlane::ExternalSource ext)
    : cfg_(cfg), signals_(cfg.signals), hysteresis_(cfg.dwell) {
  if (ext) signals_.set_external_source(std::move(ext));
}

void PolicyOracle::attach(Services& services) {
  services_ = &services;
  members_ = services.members().size();
  signals_.bind(services);
  if (MetricsRegistry* reg = services.metrics()) {
    for (std::size_t k = 0; k < kProtocolKinds; ++k) {
      g_score_[k] = &reg->gauge(std::string("policy.score_us.") +
                                std::string(to_string(static_cast<ProtocolKind>(k))));
    }
    g_dwell_ = &reg->gauge("policy.dwell_us");
  }
}

double PolicyOracle::score_us(ProtocolKind kind, const SignalVector& s,
                              std::size_t members, double net_inflation) const {
  const PolicyPriors& pr = cfg_.priors;
  switch (kind) {
    case ProtocolKind::kSequencer: {
      // M/M/1 queueing at the sequencer. Utilisation comes from the larger
      // of two load estimates: the measured group order rate (every member
      // delivers every multicast, so the local delivery rate ~ the rate
      // crossing the sequencer's CPU), and the *offered* load — this node's
      // own send rate times the group's active-sender count. The second
      // estimate is what sees saturation: once the sequencer is the
      // bottleneck the delivered rate is clamped at capacity and its rho
      // stays politely sub-critical while queues diverge. Both inputs keep
      // updating whichever protocol is active. The node's own unsequenced
      // backlog (seq.pending) adds its drain time on top.
      const double offered =
          std::max(s.delivered_rate, s.send_rate * std::max(s.active_senders, 1.0));
      const double mu = pr.seq_service_us > 0 ? 1e6 / pr.seq_service_us : 1e9;
      const double rho = std::clamp(offered / mu, 0.0, pr.rho_cap);
      return pr.seq_base_us * net_inflation + pr.seq_service_us * rho / (1.0 - rho) +
             s.seq_pending * pr.seq_backlog_us;
    }
    case ProtocolKind::kToken: {
      // Expected wait for the rotating token is half a rotation; use the
      // measured NORMAL-token rotation when available (the SP control token
      // crosses the same ring), else the calibrated per-hop prior.
      const double rotation = s.rotation_us > 0
                                  ? s.rotation_us
                                  : static_cast<double>(members) * pr.token_hop_us;
      return pr.token_base_us + rotation / 2.0;
    }
    case ProtocolKind::kCausal:
      // One multicast hop plus vector-clock work growing with concurrency;
      // no total order, so no queueing term.
      return pr.causal_base_us * net_inflation + s.active_senders * pr.causal_sender_us;
    case ProtocolKind::kPriority: {
      // Sequencer-shaped with a heap surcharge on the service time.
      const double offered =
          std::max(s.delivered_rate, s.send_rate * std::max(s.active_senders, 1.0));
      const double service = pr.seq_service_us * pr.priority_service_factor;
      const double mu = service > 0 ? 1e6 / service : 1e9;
      const double rho = std::clamp(offered / mu, 0.0, pr.rho_cap);
      return pr.seq_base_us * net_inflation + service * rho / (1.0 - rho) +
             s.seq_pending * pr.seq_backlog_us * pr.priority_service_factor;
    }
    case ProtocolKind::kReliableFifo:
      // Per-source FIFO: no ordering coordination at all.
      return pr.fifo_base_us * net_inflation;
  }
  return 0;
}

bool PolicyOracle::should_switch(const OracleView& view) {
  ++stats_.consults;
  signals_.push_consult(static_cast<double>(view.active_senders), view.normal_rotation);

  // A switch completed since the last consult: feed its overhead span to
  // the dwell controller.
  if (view.switches_completed > seen_switches_) {
    seen_switches_ = view.switches_completed;
    hysteresis_.observe(view.last_switch_overhead);
  }
  const Duration dwell = hysteresis_.dwell();
  if (g_dwell_) g_dwell_->set(dwell);

  // Signal vector for this decision: windowed aggregates once the plane is
  // sampling, else a synthetic vector from consult-time signals alone
  // (bare-layer tests, stacks without telemetry).
  SignalVector s;
  if (!signals_.empty()) {
    s = signals_.windowed(cfg_.window);
  } else {
    s.t = view.now;
    s.active_senders = static_cast<double>(view.active_senders);
    s.rotation_us = static_cast<double>(view.normal_rotation);
  }

  const std::size_t members = members_ > 0 ? members_ : 1;
  const ProtocolKind active_kind = cfg_.slot[view.active_protocol & 1];

  // The measured ring rotation is a self-measurement only while the token
  // protocol is the one driving the ring. Under the sequencer, the SP
  // control token crosses CPUs saturated by *sequencer* work, so the
  // inflated rotation is an artifact of the protocol being escaped, not a
  // forecast of the token ring's own behaviour — scoring the escape route
  // with it would make the exit look worse the more the active protocol
  // struggles. Fall back to the calibrated prior in that case.
  SignalVector s_tok = s;
  if (active_kind != ProtocolKind::kToken) s_tok.rotation_us = 0;

  // While the token protocol drives the ring, the measured rotation is a
  // clean probe of current network conditions (jitter, loss-induced delay),
  // and those conditions degrade every protocol's hop latency, not just the
  // one being measured. Scale the prior-scored kinds' base terms by the
  // same observed slowdown; otherwise a jitter burst inflates only the live
  // measurement and the engine switches toward whichever side is blind.
  double net_inflation = 1.0;
  if (active_kind == ProtocolKind::kToken && s.rotation_us > 0) {
    const double prior_rotation =
        static_cast<double>(members) * cfg_.priors.token_hop_us;
    if (prior_rotation > 0)
      net_inflation = std::max(1.0, s.rotation_us / prior_rotation);
  }

  std::array<double, kProtocolKinds> score{};
  for (std::size_t k = 0; k < kProtocolKinds; ++k) {
    const auto kind = static_cast<ProtocolKind>(k);
    score[k] = score_us(kind, kind == ProtocolKind::kToken ? s_tok : s, members,
                        net_inflation);
    if (g_score_[k]) g_score_[k]->set(static_cast<std::int64_t>(score[k]));
  }

  // Oscillation guards come after scoring so the published ranking stays
  // live even while vetoed.
  if (view.since_last_switch < dwell) {
    ++stats_.vetoed_dwell;
    return false;
  }
  if (s.token_retx_rate > cfg_.churn_veto_token_retx) {
    ++stats_.vetoed_churn;
    return false;
  }

  const double active = score[static_cast<std::size_t>(cfg_.slot[view.active_protocol & 1])];
  const double alt = score[static_cast<std::size_t>(cfg_.slot[1 - (view.active_protocol & 1)])];
  if (active > cfg_.switch_margin * alt + cfg_.switch_cost_us) {
    ++stats_.switch_decisions;
    return true;
  }
  return false;
}

}  // namespace msw
