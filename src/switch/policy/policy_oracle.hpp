// PolicyOracle: the telemetry-driven adaptive switch policy engine.
//
// The paper assumes "some kind of oracle decides when a switch is
// necessary" and benchmark E5 showed what a naive one costs: the
// single-signal ThresholdOracle oscillates and the HysteresisOracle fixes
// it only after a human picks low/high/min_dwell for one specific workload.
// This oracle replaces the lone sender count with the node's whole signal
// surface (SignalPlane vectors: rates, queue depths, NACK/retransmission
// pressure, measured ring rotation) and replaces the hand-tuned dwell with
// the AutoHysteresis controller fed by observed switch-overhead spans.
//
// Decision pipeline, run on every NORMAL-token consult:
//   1. push consult-time signals (sender count, measured rotation) into the
//      plane and feed any newly completed switch's overhead span to the
//      dwell controller;
//   2. dwell veto — never switch within the auto-tuned dwell of the last
//      switch (the paper's oscillation guard, now self-calibrating);
//   3. churn veto — never *initiate* a switch while the SP control ring is
//      itself retransmitting tokens (a drain started under loss is exactly
//      the "unexpected hitch" the paper warns about);
//   4. score every protocol kind in expected delivery latency (µs) from
//      the windowed signal vector, and switch only when the active slot's
//      score exceeds the alternative's by the configured margin.
//
// Scores for the two hybrid slots come from live signals (M/M/1 queueing on
// the measured order rate for the sequencer; the measured NORMAL-token
// rotation for the token ring — the SP control token crosses the same ring
// the token protocol would use, whichever protocol carries data). The
// remaining kinds (causal / priority / reliable-FIFO) are scored from
// calibrated priors so the full ranking is always published for exporters,
// benches, and future hybrid pairings.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "switch/oracle.hpp"
#include "switch/policy/auto_hysteresis.hpp"
#include "switch/policy/signal_plane.hpp"
#include "telemetry/metrics.hpp"

namespace msw {

/// Every protocol family the policy engine ranks. The first two are the
/// live hybrid slots; the rest are modelled candidates.
enum class ProtocolKind : std::uint8_t {
  kSequencer = 0,
  kToken,
  kCausal,
  kPriority,
  kReliableFifo,
};
inline constexpr std::size_t kProtocolKinds = 5;

std::string_view to_string(ProtocolKind k);

/// Calibrated cost-model priors, in microseconds of expected delivery
/// latency. Defaults match bench/calibration.hpp's era testbed (10-node
/// group, 1 ms hops, ~3 ms sequencer service time).
///
/// Scores deliberately use only signals that keep updating whichever
/// protocol is active (delivery rate, SP ring rotation, sender count) plus
/// the active side's own backlog. Per-layer NACK/retransmission rates are
/// NOT scored: a protocol's repair chatter only accrues while it is
/// active, and penalising the active side for signals the inactive side
/// cannot emit is a built-in oscillator (the active protocol always looks
/// worse than the idle one).
struct PolicyPriors {
  // Sequencer: two hops + ordering work, queueing as an M/M/1 server.
  double seq_base_us = 7000;     // low-load latency (~2 network hops + order)
  double seq_service_us = 3000;  // per-message sequencer service time
  double rho_cap = 0.95;         // utilisation cap keeping the queue term finite
  /// Drain cost per locally pending (unsequenced) order request. The
  /// utilisation term alone cannot see saturation — once the sequencer is
  /// the bottleneck, the *delivered* rate is clamped at capacity and the
  /// measured rho stays politely below 1 while queues diverge. The
  /// sender-side backlog (seq.pending) is the divergence detector.
  double seq_backlog_us = 3000;

  // Token ring: expected wait is half a rotation plus per-visit processing.
  double token_base_us = 2000;   // deliver hop + token bookkeeping
  double token_hop_us = 1800;    // per-member rotation prior (no measurement yet)

  // Modelled kinds (not yet live hybrid slots).
  double causal_base_us = 3500;  // one multicast hop + vector-clock work
  double causal_sender_us = 150; // VC compare/merge cost per concurrent sender
  double priority_service_factor = 1.15;  // heap overhead atop sequencer service
  double fifo_base_us = 4500;    // per-source FIFO, no global coordination
};

struct PolicyConfig {
  /// Which protocol kind lives in each hybrid slot (index = the switch
  /// layer's protocol index).
  std::array<ProtocolKind, 2> slot{ProtocolKind::kSequencer, ProtocolKind::kToken};
  SignalPlaneConfig signals;
  /// Aggregation span for windowed signal vectors at decision time.
  Duration window = 2 * kSecond;
  /// The active protocol must score worse than `margin` times the
  /// alternative before a switch is initiated. This is the score-space
  /// analogue of the hysteresis deadband: at mid load the two protocols
  /// genuinely cost within ~30% of each other and signal noise (a pending
  /// blip, one slow rotation) alternately favours either side — the band
  /// must be wider than that noise or the engine ping-pongs every dwell.
  double switch_margin = 1.5;
  /// Absolute score gap (µs) the switch must clear on top of the relative
  /// margin. A switch has a fixed disruption cost (PREPARE/FLUSH rotations,
  /// drain stall) regardless of how small the modelled per-message gain is,
  /// and at low absolute scores a relative margin alone is thinner than
  /// signal noise — a few-ms estimation blip on either side would trigger a
  /// real multi-rotation drain to chase a phantom gain.
  double switch_cost_us = 4000;
  AutoHysteresisConfig dwell;
  /// SP token retransmissions/s above which switch initiation is vetoed —
  /// a drain started while the control ring is itself dropping tokens is
  /// the paper's "unexpected hitch" at its worst. The default only trips
  /// on genuine retransmission storms: ordinary loss, and even a saturated
  /// sequencer slowing the ring, sit well below it.
  double churn_veto_token_retx = 25.0;
  PolicyPriors priors;
};

class PolicyOracle : public Oracle {
 public:
  explicit PolicyOracle(PolicyConfig cfg = {}, SignalPlane::ExternalSource ext = {});

  /// Bind the signal plane to the process (metrics reads + sampling timer)
  /// and register the policy's own observability gauges.
  void attach(Services& services) override;

  bool should_switch(const OracleView& view) override;

  /// Expected delivery latency (µs) of `kind` under signal vector `s` for a
  /// `members`-sized group. Pure function of config priors + signals;
  /// exposed for tests and the ablation bench. `net_inflation` scales the
  /// model-based base terms by the observed network slowdown (measured ring
  /// rotation / calibrated prior) so that prior-scored kinds degrade in
  /// step with the live-measured one — without it, a jitter burst inflates
  /// only the protocol that is actually being measured and the engine
  /// switches toward whichever side is blind.
  double score_us(ProtocolKind kind, const SignalVector& s, std::size_t members,
                  double net_inflation = 1.0) const;

  const SignalPlane& signals() const { return signals_; }
  SignalPlane& signals() { return signals_; }
  const AutoHysteresis& hysteresis() const { return hysteresis_; }
  Duration dwell() const { return hysteresis_.dwell(); }

  struct Stats {
    std::uint64_t consults = 0;
    std::uint64_t vetoed_dwell = 0;
    std::uint64_t vetoed_churn = 0;
    std::uint64_t switch_decisions = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  PolicyConfig cfg_;
  SignalPlane signals_;
  AutoHysteresis hysteresis_;
  Services* services_ = nullptr;
  std::size_t members_ = 0;
  std::uint64_t seen_switches_ = 0;
  Stats stats_;

  // Observability (null without a metrics registry).
  std::array<MetricsRegistry::Gauge*, kProtocolKinds> g_score_{};
  MetricsRegistry::Gauge* g_dwell_ = nullptr;
};

}  // namespace msw
