#include "switch/policy/auto_hysteresis.hpp"

#include <algorithm>

namespace msw {

AutoHysteresis::AutoHysteresis(AutoHysteresisConfig cfg) : cfg_(cfg) {
  if (cfg_.window == 0) cfg_.window = 1;
  ring_.resize(cfg_.window, 0);
}

void AutoHysteresis::observe(Duration overhead) {
  if (overhead <= 0) return;
  ring_[next_] = overhead;
  next_ = (next_ + 1) % ring_.size();
  if (count_ < ring_.size()) ++count_;
}

Duration AutoHysteresis::overhead_mean() const {
  if (count_ == 0) return 0;
  Duration sum = 0;
  for (std::size_t i = 0; i < count_; ++i) sum += ring_[i];
  return sum / static_cast<Duration>(count_);
}

Duration AutoHysteresis::dwell() const {
  if (count_ == 0) return std::clamp(cfg_.initial, cfg_.floor, cfg_.ceil);
  const double d = static_cast<double>(overhead_mean()) / cfg_.duty;
  return std::clamp(static_cast<Duration>(d), cfg_.floor, cfg_.ceil);
}

}  // namespace msw
