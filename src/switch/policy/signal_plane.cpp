#include "switch/policy/signal_plane.hpp"

#include "stack/layer.hpp"

namespace msw {

SignalPlane::SignalPlane(SignalPlaneConfig cfg) : cfg_(cfg) {
  if (cfg_.ring == 0) cfg_.ring = 1;
  ring_.resize(cfg_.ring);
}

void SignalPlane::bind(Services& services) {
  services_ = &services;
  view_.bind(services.metrics());

  s_sent_ = view_.add("app.sent");
  s_delivered_ = view_.add("app.delivered");
  s_seq_pending_ = view_.add("seq.pending");
  s_seq_nacks_ = view_.add("seq.gap_nacks_sent");
  s_token_nacks_ = view_.add("token.gap_nacks_sent");
  s_rel_nacks_ = view_.add("rel.nacks_sent");
  s_seq_retx_ = view_.add("seq.history_retransmissions");
  s_token_retx_hist_ = view_.add("token.history_retransmissions");
  s_rel_retx_ = view_.add("rel.retransmissions");
  s_req_retx_ = view_.add("seq.requests_retransmitted");
  s_sp_token_retx_ = view_.add("sp.token_retransmissions");
  s_sp_stale_ = view_.add("sp.stale_dropped");

  last_sample_ = services.now();
  arm_timer();
}

void SignalPlane::arm_timer() {
  services_->set_timer(cfg_.sample_every, [this] {
    sample();
    arm_timer();
  });
}

double SignalPlane::rate(std::size_t slot, double* prev, double dt_s) {
  const double cur = view_.read(slot);
  const double delta = cur - *prev;
  *prev = cur;
  return dt_s > 0 ? delta / dt_s : 0.0;
}

void SignalPlane::sample() {
  if (services_ == nullptr) return;
  const Time now = services_->now();
  const double dt_s = last_sample_ >= 0 ? to_sec(now - last_sample_) : 0.0;
  last_sample_ = now;

  SignalVector v;
  v.t = now;
  v.dt_s = dt_s;
  v.send_rate = rate(s_sent_, &p_sent_, dt_s);
  v.delivered_rate = rate(s_delivered_, &p_delivered_, dt_s);
  v.seq_pending = view_.read(s_seq_pending_);  // gauge: level, not rate
  v.nack_rate = rate(s_seq_nacks_, &p_seq_nacks_, dt_s) +
                rate(s_token_nacks_, &p_token_nacks_, dt_s) +
                rate(s_rel_nacks_, &p_rel_nacks_, dt_s);
  v.retx_rate = rate(s_seq_retx_, &p_seq_retx_, dt_s) +
                rate(s_token_retx_hist_, &p_token_retx_hist_, dt_s) +
                rate(s_rel_retx_, &p_rel_retx_, dt_s) +
                rate(s_req_retx_, &p_req_retx_, dt_s);
  v.token_retx_rate = rate(s_sp_token_retx_, &p_sp_token_retx_, dt_s);
  v.stale_rate = rate(s_sp_stale_, &p_sp_stale_, dt_s);
  v.active_senders = consult_senders_;
  v.rotation_us = consult_rotation_us_;
  if (external_) external_(v);

  ring_[next_] = v;
  next_ = (next_ + 1) % ring_.size();
  if (count_ < ring_.size()) ++count_;
  ++total_samples_;
}

void SignalPlane::push_consult(double active_senders, Duration rotation) {
  consult_senders_ = active_senders;
  if (rotation > 0) consult_rotation_us_ = static_cast<double>(rotation);
  if (count_ > 0) {
    SignalVector& latest = ring_[(next_ + ring_.size() - 1) % ring_.size()];
    latest.active_senders = consult_senders_;
    if (consult_rotation_us_ > 0) latest.rotation_us = consult_rotation_us_;
  }
}

const SignalVector& SignalPlane::latest() const {
  if (count_ == 0) return zero_;
  return ring_[(next_ + ring_.size() - 1) % ring_.size()];
}

SignalVector SignalPlane::windowed(Duration span) const {
  if (count_ == 0) return zero_;
  const SignalVector& newest = latest();
  SignalVector out;
  out.t = newest.t;
  double wsum = 0;  // total window time aggregated (rate weighting)
  std::size_t n = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    const SignalVector& v = ring_[i];
    if (newest.t - v.t > span) continue;
    const double w = v.dt_s;
    out.dt_s += v.dt_s;
    out.send_rate += v.send_rate * w;
    out.delivered_rate += v.delivered_rate * w;
    out.nack_rate += v.nack_rate * w;
    out.retx_rate += v.retx_rate * w;
    out.token_retx_rate += v.token_retx_rate * w;
    out.stale_rate += v.stale_rate * w;
    wsum += w;
    out.seq_pending += v.seq_pending;
    out.loop_lag_p99_us += v.loop_lag_p99_us;
    out.inbox_depth += v.inbox_depth;
    ++n;
  }
  if (n == 0) return newest;
  if (wsum > 0) {
    out.send_rate /= wsum;
    out.delivered_rate /= wsum;
    out.nack_rate /= wsum;
    out.retx_rate /= wsum;
    out.token_retx_rate /= wsum;
    out.stale_rate /= wsum;
  }
  out.seq_pending /= static_cast<double>(n);
  out.loop_lag_p99_us /= static_cast<double>(n);
  out.inbox_depth /= static_cast<double>(n);
  // Consult-pushed levels: the freshest value is the right one.
  out.active_senders = newest.active_senders;
  out.rotation_us = newest.rotation_us;
  return out;
}

}  // namespace msw
