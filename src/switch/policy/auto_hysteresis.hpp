// Auto-tuned hysteresis: dwell time derived from observed switch cost.
//
// The paper's section-7 fix for oscillation is a hand-tuned minimum dwell
// between switches. The right dwell, though, is a function of what a switch
// actually costs *right now*: SP's overhead is dominated by draining the
// protocol being switched away from, so it varies with load, loss, and
// group size (the paper's "unexpected hitch"). This controller keeps a
// small ring of the most recent observed switch-overhead spans (a member's
// PREPARE-to-install windows) and sets
//
//   dwell = clamp(overhead_mean / duty, floor, ceil)
//
// where `duty` is the fraction of time the group is allowed to spend
// switching (default 0.4%: a 31 ms switch then forbids another for ~8 s,
// and a cheap 3 ms switch only for ~0.75 s). Costly switches — long drains
// under loss or heavy load — automatically stretch the guard exactly when
// flapping would hurt most; until the first switch has been observed the
// configured initial dwell applies.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/time.hpp"

namespace msw {

struct AutoHysteresisConfig {
  /// Dwell used before any switch overhead has been observed.
  Duration initial = 1 * kSecond;
  /// Target duty cycle: fraction of wall time spent inside switchovers.
  double duty = 0.004;
  Duration floor = 300 * kMillisecond;
  Duration ceil = 10 * kSecond;
  /// Observed-overhead ring capacity (most recent spans win).
  std::size_t window = 8;
};

class AutoHysteresis {
 public:
  explicit AutoHysteresis(AutoHysteresisConfig cfg = {});

  /// Record one completed switch's overhead span (PREPARE -> install).
  void observe(Duration overhead);

  /// Current minimum time between switches.
  Duration dwell() const;

  /// Mean of the retained overhead spans (0 before the first observation).
  Duration overhead_mean() const;

  std::size_t observed() const { return count_; }

 private:
  AutoHysteresisConfig cfg_;
  std::vector<Duration> ring_;
  std::size_t next_ = 0;
  std::size_t count_ = 0;
};

}  // namespace msw
