// SignalPlane: the telemetry-to-oracle bridge.
//
// PR 3 gave every node a metrics registry and PR 9 gave the real-transport
// runtime a per-shard stats plane, but the switching oracle still read a
// single hand-maintained sender count. The SignalPlane closes that loop: it
// samples the node's live per-layer instruments (application send/deliver
// counters, sequencer queue depth, gap-NACK and retransmission counters
// across seq/token/rel, SP token retransmissions) on a fixed cadence,
// differences the monotonic counters into per-second rates, and keeps the
// windowed vectors in a bounded ring. The PolicyOracle scores protocols
// from aggregates over that ring; exporters and tests read the same
// vectors for observability.
//
// Two signal paths feed one vector:
//   - sampled: timer-driven reads through a MetricsView (cheap resolved
//     slots; names unresolved until a layer registers them read as 0);
//   - consult-pushed: values only the switch layer knows (active senders in
//     the configured window, measured NORMAL-token ring rotation), pushed
//     on each oracle consult.
// An optional external source lets the runtime's per-shard stats plane
// (rt/stats) add loop-health fields — see rt/stats/signal_adapter.hpp.
//
// Everything runs on the owning process's thread (in the runtime, groups
// are pinned to one shard), so there is no locking anywhere.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/time.hpp"
#include "telemetry/metrics.hpp"

namespace msw {

class Services;

/// One windowed sample of a node's signal surface. Rates are per second
/// over the window that ended at `t`; levels are instantaneous at `t`.
struct SignalVector {
  Time t = 0;
  double dt_s = 0;  // window length in seconds (0 = not a sampled vector)

  // Sampled from the metrics registry.
  double send_rate = 0;       // app.sent/s at this node
  double delivered_rate = 0;  // app.delivered/s at this node (~ group order rate)
  double seq_pending = 0;     // sequencer queue depth: unsequenced order requests
  double nack_rate = 0;       // gap NACKs/s across seq + token + rel layers
  double retx_rate = 0;       // data retransmissions/s across layers
  double token_retx_rate = 0; // SP control-token retransmissions/s (ring health)
  double stale_rate = 0;      // old-epoch duplicates dropped/s

  // Pushed by the switch layer at consult time.
  double active_senders = 0;
  double rotation_us = 0;     // measured NORMAL-token ring rotation

  // Filled by an external source (rt stats plane adapter); 0 in the sim.
  double loop_lag_p99_us = 0;
  double inbox_depth = 0;
};

struct SignalPlaneConfig {
  /// Sampling cadence. Each sample covers exactly the time since the
  /// previous one, so rates stay exact under timer jitter.
  Duration sample_every = 100 * kMillisecond;
  /// Bounded ring of retained windowed vectors.
  std::size_t ring = 32;
};

class SignalPlane {
 public:
  /// Extra fields merged into every sampled vector (the rt stats adapter).
  using ExternalSource = std::function<void(SignalVector&)>;

  explicit SignalPlane(SignalPlaneConfig cfg = {});

  /// Wire to a process and arm the sampling timer. Without a metrics
  /// registry the plane still works off consult-pushed signals (bare-layer
  /// tests); without services entirely it is inert.
  void bind(Services& services);

  void set_external_source(ExternalSource src) { external_ = std::move(src); }

  /// Take one sample covering the time since the previous sample (or since
  /// bind). Timer-driven after bind(); callable directly in tests.
  void sample();

  /// Record consult-time signals; they ride along with subsequent samples
  /// and update the latest vector immediately.
  void push_consult(double active_senders, Duration rotation);

  bool empty() const { return count_ == 0; }
  std::size_t samples() const { return total_samples_; }
  std::size_t ring_size() const { return count_; }

  /// Most recent vector (zero vector before the first sample).
  const SignalVector& latest() const;

  /// Mean over the ring's vectors whose window ended within `span` of the
  /// newest sample (rates averaged weighted by their window lengths,
  /// levels averaged evenly). Falls back to latest() when nothing is in
  /// range.
  SignalVector windowed(Duration span) const;

 private:
  void arm_timer();
  double rate(std::size_t slot, double* prev, double dt_s);

  SignalPlaneConfig cfg_;
  Services* services_ = nullptr;
  MetricsView view_;
  ExternalSource external_;

  // MetricsView slots.
  std::size_t s_sent_ = 0, s_delivered_ = 0, s_seq_pending_ = 0;
  std::size_t s_seq_nacks_ = 0, s_token_nacks_ = 0, s_rel_nacks_ = 0;
  std::size_t s_seq_retx_ = 0, s_token_retx_hist_ = 0, s_rel_retx_ = 0;
  std::size_t s_req_retx_ = 0, s_sp_token_retx_ = 0, s_sp_stale_ = 0;

  // Previous cumulative counter values (for deltas).
  double p_sent_ = 0, p_delivered_ = 0, p_seq_nacks_ = 0, p_token_nacks_ = 0,
         p_rel_nacks_ = 0, p_seq_retx_ = 0, p_token_retx_hist_ = 0, p_rel_retx_ = 0,
         p_req_retx_ = 0, p_sp_token_retx_ = 0, p_sp_stale_ = 0;

  Time last_sample_ = -1;
  double consult_senders_ = 0;
  double consult_rotation_us_ = 0;

  std::vector<SignalVector> ring_;
  std::size_t next_ = 0;
  std::size_t count_ = 0;
  std::size_t total_samples_ = 0;
  SignalVector zero_{};
};

}  // namespace msw
