#include "switch/vsync_switch.hpp"

#include <algorithm>
#include <cassert>

#include "proto/vsync_layer.hpp"  // encode_view_body
#include "stack/stack.hpp"
#include "util/log.hpp"

namespace msw {
namespace {

constexpr std::uint16_t kChanProtoA = 0;
constexpr std::uint16_t kChanProtoB = 1;
constexpr std::uint16_t kChanControl = 2;

enum class DataType : std::uint8_t { kData = 0, kPass = 1 };

enum class CtlType : std::uint8_t {
  kReq = 0,       // member -> coordinator: please switch
  kFlushReq = 1,  // coordinator -> all: stop sending, report counts
  kFlushOk = 2,   // member -> coordinator: my sent count
  kCut = 3,       // coordinator -> all: the exact per-member counts
  kDone = 4,      // member -> coordinator: installed the new epoch
};

}  // namespace

VsyncSwitchLayer::VsyncSwitchLayer(std::vector<std::unique_ptr<Layer>> proto_a,
                                   std::vector<std::unique_ptr<Layer>> proto_b,
                                   VsyncSwitchConfig cfg)
    : cfg_(cfg), layers_a_(std::move(proto_a)), layers_b_(std::move(proto_b)) {}

VsyncSwitchLayer::~VsyncSwitchLayer() = default;

void VsyncSwitchLayer::start() {
  Services* services = ctx().services();
  chain_a_ = std::make_unique<LayerChain>(
      *services, std::move(layers_a_),
      [this](Message m) {
        Mux::push(m, kChanProtoA);
        ctx().send_down(std::move(m));
      },
      [this](Message m) { on_subprotocol_deliver(0, std::move(m)); });
  chain_b_ = std::make_unique<LayerChain>(
      *services, std::move(layers_b_),
      [this](Message m) {
        Mux::push(m, kChanProtoB);
        ctx().send_down(std::move(m));
      },
      [this](Message m) { on_subprotocol_deliver(1, std::move(m)); });
  chain_a_->start();
  chain_b_->start();

  // Initial view marker, so traces open with a consistent epoch boundary.
  std::vector<std::uint32_t> ids;
  for (NodeId m : ctx().members()) ids.push_back(m.v);
  Message note = Message::group(encode_view_body(ids));
  AppHeader::push(note, AppHeader{AppHeader::Kind::kView, coordinator().v, 0});
  ctx().deliver_up(std::move(note));
}

// --------------------------------------------------------------------------
// Data path
// --------------------------------------------------------------------------

void VsyncSwitchLayer::down(Message m) {
  if (m.is_p2p()) {
    m.push_header([](Writer& w) { w.u8(static_cast<std::uint8_t>(DataType::kPass)); });
    chain(active_protocol()).down_from_top(std::move(m));
    return;
  }
  if (flushing_) {
    // Unlike SP, senders ARE blocked during a vsync switch.
    queued_.push_back(std::move(m));
    return;
  }
  const std::uint64_t epoch = epoch_;
  const std::uint64_t seq = sent_this_epoch_++;
  const std::uint32_t sender = ctx().self().v;
  m.push_header([&](Writer& w) {
    w.u8(static_cast<std::uint8_t>(DataType::kData));
    w.u64(epoch);
    w.u32(sender);
    w.u64(seq);
  });
  chain(static_cast<int>(epoch % 2)).down_from_top(std::move(m));
}

void VsyncSwitchLayer::up(Message m) {
  std::uint16_t channel = 0;
  try {
    channel = Mux::pop(m);
  } catch (const DecodeError&) {
    return;
  }
  switch (channel) {
    case kChanProtoA:
      chain_a_->up_from_bottom(std::move(m));
      break;
    case kChanProtoB:
      chain_b_->up_from_bottom(std::move(m));
      break;
    case kChanControl:
      on_control(std::move(m));
      break;
    default:
      break;
  }
}

void VsyncSwitchLayer::on_subprotocol_deliver(int protocol, Message m) {
  DataType type{};
  std::uint64_t epoch = 0;
  std::uint32_t sender = 0;
  try {
    m.pop_header([&](Reader& r) {
      type = static_cast<DataType>(r.u8());
      if (type == DataType::kData) {
        epoch = r.u64();
        sender = r.u32();
        r.u64();  // per-epoch sequence, diagnostic only
      }
    });
  } catch (const DecodeError&) {
    return;
  }
  if (type == DataType::kPass) {
    ctx().deliver_up(std::move(m));
    return;
  }
  if (static_cast<int>(epoch % 2) != protocol) {
    assert(false && "epoch/protocol mismatch");
    return;
  }
  if (epoch == epoch_) {
    deliver_counted(sender, std::move(m));
    maybe_install();
  } else if (epoch == epoch_ + 1) {
    buffered_next_.push_back(BufferedDeliver{sender, std::move(m)});
  }
  // Older epochs: late duplicates, drop.
}

void VsyncSwitchLayer::deliver_counted(std::uint32_t sender, Message m) {
  ++delivered_this_epoch_[sender];
  ctx().deliver_up(std::move(m));
}

void VsyncSwitchLayer::maybe_install() {
  if (!flushing_ || !have_cut_) return;
  for (const auto& [member, count] : cut_counts_) {
    const auto it = delivered_this_epoch_.find(member);
    const std::uint64_t delivered = it == delivered_this_epoch_.end() ? 0 : it->second;
    if (delivered < count) return;
  }
  install_epoch();
}

void VsyncSwitchLayer::install_epoch() {
  ++epoch_;
  sent_this_epoch_ = 0;
  delivered_this_epoch_.clear();
  flushing_ = false;
  have_cut_ = false;
  cut_counts_.clear();
  ++stats_.switches_completed;
  MSW_LOG(kInfo, "vswitch", ctx().now())
      << to_string(ctx().self()) << " installed epoch " << epoch_ << " (protocol "
      << active_protocol() << ")";

  // The view notification is the epoch boundary every member shares.
  std::vector<std::uint32_t> ids;
  for (NodeId m : ctx().members()) ids.push_back(m.v);
  Message note = Message::group(encode_view_body(ids));
  AppHeader::push(note, AppHeader{AppHeader::Kind::kView, coordinator().v, epoch_});
  ctx().deliver_up(std::move(note));

  // New-epoch deliveries buffered while draining.
  std::vector<BufferedDeliver> buffered = std::move(buffered_next_);
  buffered_next_.clear();
  for (auto& b : buffered) deliver_counted(b.sender, std::move(b.m));

  // Sends blocked during the flush go out in the new epoch.
  std::deque<Message> queued = std::move(queued_);
  queued_.clear();
  for (auto& q : queued) down(std::move(q));

  // Tell the coordinator we are done.
  Message done = Message::p2p(coordinator(), {});
  const std::uint64_t closing = epoch_ - 1;
  const std::uint32_t self = ctx().self().v;
  done.push_header([&](Writer& w) {
    w.u8(static_cast<std::uint8_t>(CtlType::kDone));
    w.u64(closing);
    w.u32(self);
  });
  Mux::push(done, kChanControl);
  ctx().send_down(std::move(done));
}

// --------------------------------------------------------------------------
// Control path
// --------------------------------------------------------------------------

void VsyncSwitchLayer::request_switch() {
  if (is_coordinator()) {
    if (phase_ != Phase::kIdle || flushing_) return;  // one switch at a time
    phase_ = Phase::kCollectingOks;
    closing_epoch_ = epoch_;
    flush_oks_.clear();
    done_.clear();
    switch_started_ = ctx().now();
    Message m = Message::group({});
    const std::uint64_t closing = closing_epoch_;
    m.push_header([&](Writer& w) {
      w.u8(static_cast<std::uint8_t>(CtlType::kFlushReq));
      w.u64(closing);
    });
    Mux::push(m, kChanControl);
    ctx().send_down(std::move(m));
    ctx().set_timer(cfg_.control_rto, [this] { coordinator_tick(); });
    return;
  }
  Message m = Message::p2p(coordinator(), {});
  m.push_header([](Writer& w) { w.u8(static_cast<std::uint8_t>(CtlType::kReq)); });
  Mux::push(m, kChanControl);
  ctx().send_down(std::move(m));
}

void VsyncSwitchLayer::coordinator_tick() {
  if (phase_ == Phase::kIdle) return;
  ++stats_.control_retransmissions;
  if (phase_ == Phase::kCollectingOks) {
    Message m = Message::group({});
    const std::uint64_t closing = closing_epoch_;
    m.push_header([&](Writer& w) {
      w.u8(static_cast<std::uint8_t>(CtlType::kFlushReq));
      w.u64(closing);
    });
    Mux::push(m, kChanControl);
    ctx().send_down(std::move(m));
  } else {
    send_cut();
  }
  ctx().set_timer(cfg_.control_rto, [this] { coordinator_tick(); });
}

void VsyncSwitchLayer::begin_flush(std::uint64_t closing_epoch) {
  if (closing_epoch < epoch_) {
    // Already installed; remind the coordinator.
    Message done = Message::p2p(coordinator(), {});
    const std::uint32_t self = ctx().self().v;
    done.push_header([&](Writer& w) {
      w.u8(static_cast<std::uint8_t>(CtlType::kDone));
      w.u64(closing_epoch);
      w.u32(self);
    });
    Mux::push(done, kChanControl);
    ctx().send_down(std::move(done));
    return;
  }
  if (closing_epoch != epoch_) return;  // future epoch: impossible by phases
  flushing_ = true;
  send_flush_ok();
}

void VsyncSwitchLayer::send_flush_ok() {
  Message ok = Message::p2p(coordinator(), {});
  const std::uint64_t closing = epoch_;
  const std::uint32_t self = ctx().self().v;
  const std::uint64_t sent = sent_this_epoch_;
  ok.push_header([&](Writer& w) {
    w.u8(static_cast<std::uint8_t>(CtlType::kFlushOk));
    w.u64(closing);
    w.u32(self);
    w.u64(sent);
  });
  Mux::push(ok, kChanControl);
  ctx().send_down(std::move(ok));
}

void VsyncSwitchLayer::send_cut() {
  Message m = Message::group({});
  const std::uint64_t closing = closing_epoch_;
  const auto counts = flush_oks_;
  m.push_header([&](Writer& w) {
    w.u8(static_cast<std::uint8_t>(CtlType::kCut));
    w.u64(closing);
    w.u32(static_cast<std::uint32_t>(counts.size()));
    for (const auto& [member, count] : counts) {
      w.u32(member);
      w.u64(count);
    }
  });
  Mux::push(m, kChanControl);
  ctx().send_down(std::move(m));
}

void VsyncSwitchLayer::on_control(Message m) {
  CtlType type{};
  std::uint64_t closing = 0;
  std::uint32_t from = 0;
  std::uint64_t sent = 0;
  std::map<std::uint32_t, std::uint64_t> counts;
  try {
    m.pop_header([&](Reader& r) {
      type = static_cast<CtlType>(r.u8());
      switch (type) {
        case CtlType::kReq:
          break;
        case CtlType::kFlushReq:
          closing = r.u64();
          break;
        case CtlType::kFlushOk:
          closing = r.u64();
          from = r.u32();
          sent = r.u64();
          break;
        case CtlType::kCut: {
          closing = r.u64();
          const std::uint32_t n = r.u32();
          for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint32_t member = r.u32();
            const std::uint64_t count = r.u64();
            counts.emplace(member, count);
          }
          break;
        }
        case CtlType::kDone:
          closing = r.u64();
          from = r.u32();
          break;
      }
    });
  } catch (const DecodeError&) {
    return;
  }
  switch (type) {
    case CtlType::kReq:
      if (is_coordinator()) request_switch();
      return;
    case CtlType::kFlushReq:
      begin_flush(closing);
      return;
    case CtlType::kFlushOk:
      if (!is_coordinator() || phase_ != Phase::kCollectingOks || closing != closing_epoch_)
        return;
      flush_oks_.emplace(from, sent);
      if (flush_oks_.size() == ctx().member_count()) {
        phase_ = Phase::kAwaitingDone;
        send_cut();
      }
      return;
    case CtlType::kCut:
      if (closing == epoch_ && flushing_) {
        have_cut_ = true;
        cut_counts_ = std::move(counts);
        maybe_install();
      } else if (closing < epoch_) {
        // Duplicate of a completed switch; re-confirm.
        Message done = Message::p2p(coordinator(), {});
        const std::uint32_t self = ctx().self().v;
        done.push_header([&](Writer& w) {
          w.u8(static_cast<std::uint8_t>(CtlType::kDone));
          w.u64(closing);
          w.u32(self);
        });
        Mux::push(done, kChanControl);
        ctx().send_down(std::move(done));
      }
      return;
    case CtlType::kDone:
      if (!is_coordinator() || phase_ != Phase::kAwaitingDone || closing != closing_epoch_)
        return;
      done_.insert(from);
      if (done_.size() == ctx().member_count()) {
        phase_ = Phase::kIdle;
        stats_.last_switch_duration = ctx().now() - switch_started_;
        MSW_LOG(kInfo, "vswitch", ctx().now())
            << "coordinated switch complete in " << to_ms(stats_.last_switch_duration) << " ms";
      }
      return;
  }
}

LayerFactory make_vsync_switch_factory(LayerFactory proto_a, LayerFactory proto_b,
                                       VsyncSwitchConfig cfg) {
  return [proto_a = std::move(proto_a), proto_b = std::move(proto_b),
          cfg](NodeId self, const std::vector<NodeId>& members) {
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::make_unique<VsyncSwitchLayer>(proto_a(self, members),
                                                        proto_b(self, members), cfg));
    return layers;
  };
}

VsyncSwitchLayer& vsync_switch_layer_of(Stack& stack) {
  return static_cast<VsyncSwitchLayer&>(stack.chain().layer(0));
}

}  // namespace msw
