#include "switch/hybrid.hpp"

#include "stack/stack.hpp"

namespace msw {

LayerFactory make_sequencer_factory(SequencerConfig cfg) {
  return [cfg](NodeId, const std::vector<NodeId>&) {
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::make_unique<SequencerLayer>(cfg));
    return layers;
  };
}

LayerFactory make_token_factory(TokenConfig cfg) {
  return [cfg](NodeId, const std::vector<NodeId>&) {
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::make_unique<TokenLayer>(cfg));
    return layers;
  };
}

LayerFactory make_reliable_fifo_factory(ReliableConfig cfg) {
  return [cfg](NodeId, const std::vector<NodeId>&) {
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::make_unique<FifoLayer>());
    layers.push_back(std::make_unique<ReliableLayer>(cfg));
    return layers;
  };
}

LayerFactory make_switch_factory(LayerFactory proto_a, LayerFactory proto_b,
                                 OracleFactory oracle, SwitchConfig cfg) {
  return [proto_a = std::move(proto_a), proto_b = std::move(proto_b),
          oracle = std::move(oracle), cfg](NodeId self, const std::vector<NodeId>& members) {
    std::unique_ptr<Oracle> o =
        oracle ? oracle(self) : std::make_unique<ManualOracle>();
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::make_unique<SwitchLayer>(proto_a(self, members),
                                                   proto_b(self, members), std::move(o), cfg));
    return layers;
  };
}

LayerFactory make_hybrid_total_order_factory(HybridConfig cfg) {
  return make_switch_factory(make_sequencer_factory(cfg.sequencer),
                             make_token_factory(cfg.token), cfg.oracle, cfg.sp);
}

OracleFactory make_policy_oracle_factory(PolicyConfig cfg, SignalPlane::ExternalSource ext) {
  return [cfg, ext = std::move(ext)](NodeId) {
    return std::make_unique<PolicyOracle>(cfg, ext);
  };
}

LayerFactory make_adaptive_hybrid_factory(HybridConfig cfg, PolicyConfig policy) {
  cfg.oracle = make_policy_oracle_factory(policy);
  return make_hybrid_total_order_factory(cfg);
}

SwitchLayer& switch_layer_of(Stack& stack) {
  return static_cast<SwitchLayer&>(stack.chain().layer(0));
}

}  // namespace msw
