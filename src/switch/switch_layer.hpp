// The Switching Protocol (SP) — the paper's primary contribution
// (section 2).
//
// SP is layered over two protocols of interest and is transparent to the
// application: in normal mode it forwards sends to the current protocol
// and deliveries from it. It guarantees that, when switching, every
// process delivers ALL messages of the old protocol before any message of
// the new one — senders are never blocked (sends submitted mid-switch
// travel on the new protocol and are buffered at receivers still
// draining).
//
// As in the paper's implementation, control does not use network-level
// broadcast: a token rotates on the logical ring of group members, in one
// of four modes. A member wishing to switch awaits a NORMAL token and, as
// initiator, drives it through three rotations:
//
//   PREPARE  — each member freezes and piggybacks the count of messages it
//              sent over the current protocol, starts sending new data on
//              the new protocol, and buffers new-protocol deliveries;
//   SWITCH   — disseminates the complete count vector; a member that has
//              delivered every counted old-protocol message switches over
//              and releases its buffer;
//   FLUSH    — travels only through members that have completed the local
//              switch, so its return to the initiator certifies the switch
//              is complete everywhere, and the token reverts to NORMAL.
//
// Epochs: each completed switch increments an epoch number carried on
// every data message, so late retransmissions of an old epoch are
// recognized as duplicates and early arrivals of the next epoch are
// buffered — at most two epochs can ever be live at once because a new
// switch requires the NORMAL token, which only reappears after the
// previous FLUSH rotation completes.
//
// Assumptions on the underlying protocols (paper section 2): no spurious
// deliveries, at-most-once delivery; exactly-once for switch liveness.
// Token handoffs are acknowledged and retransmitted, so SP itself
// tolerates a fair-lossy network.
//
// Each underlying protocol, and SP's control traffic, gets a private
// channel over the shared endpoint via Mux (Figure 1's MULTIPLEX).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "net/stats.hpp"
#include "stack/capture.hpp"
#include "stack/layer.hpp"
#include "switch/multiplex_layer.hpp"
#include "switch/oracle.hpp"

namespace msw {

struct SwitchConfig {
  /// Token handoff retransmission interval.
  Duration token_rto = 15 * kMillisecond;
  /// Extra hold per member per hop of the NORMAL token. 0 = rotate at
  /// network speed; raising it reduces idle control traffic at the cost of
  /// switch-initiation latency.
  Duration normal_hold = 0;
  /// Window over which "active senders" is measured for the oracle.
  Duration sender_window = 200 * kMillisecond;
  /// Starting epoch (identical at every member). Parity selects the
  /// initially active protocol; values near UINT64_MAX exercise wraparound.
  std::uint64_t initial_epoch = 0;
  /// DELIBERATE FAULT INJECTION (tests only): when set to a member id, the
  /// drain check ignores that sender's count — the member switches without
  /// draining its old-protocol messages. The trace-property oracle must
  /// catch the resulting old-before-new violation; see test_switch_fuzz.
  static constexpr std::uint32_t kNoInjectedFault = 0xffffffffu;
  std::uint32_t fault_skip_count_sender = kNoInjectedFault;
};

class SwitchLayer : public Layer {
 public:
  /// `proto_a` / `proto_b` are the two underlying protocol stacks (top
  /// first), constructed per process exactly like host-stack layers.
  /// Protocol A is active initially at every member.
  SwitchLayer(std::vector<std::unique_ptr<Layer>> proto_a,
              std::vector<std::unique_ptr<Layer>> proto_b,
              std::unique_ptr<Oracle> oracle = std::make_unique<ManualOracle>(),
              SwitchConfig cfg = {});
  ~SwitchLayer() override;

  std::string_view name() const override { return "switch"; }

  void start() override;
  void down(Message m) override;
  void up(Message m) override;
  void down_batch(MessageBatch b) override;
  void up_batch(MessageBatch b) override;

  /// Ask this member to initiate a switch at the next NORMAL token,
  /// regardless of the oracle.
  void request_switch() { switch_requested_ = true; }

  std::uint64_t epoch() const { return epoch_; }
  /// Epoch a send submitted right now would be tagged with (epoch_ + 1
  /// once PREPARE has been processed — new sends ride the new protocol).
  std::uint64_t epoch_of_next_send() const { return prepared_ ? epoch_ + 1 : epoch_; }
  /// Index (0/1) of the protocol data currently travels on.
  int active_protocol() const { return static_cast<int>(epoch_ % 2); }
  /// True between processing PREPARE and completing the local switchover.
  bool switching() const { return prepared_; }
  /// New-epoch deliveries buffered while draining the old protocol.
  std::size_t buffered() const { return buffered_next_.size(); }

  /// Direct access to a sub-protocol layer (for tests and demos).
  Layer& sub_layer(int protocol, std::size_t i);

  struct Stats {
    std::uint64_t switches_completed = 0;       // local switchovers
    std::uint64_t switches_initiated = 0;       // this member was initiator
    std::uint64_t token_hops = 0;               // tokens this member forwarded
    std::uint64_t token_retransmissions = 0;
    std::uint64_t stale_dropped = 0;            // old-epoch duplicates
    std::uint64_t max_buffered = 0;             // high-water mark of buffer
    /// Initiator-side duration of the last completed switch, from NORMAL
    /// token capture to FLUSH return (the paper's ~31 ms overhead).
    Duration last_switch_duration = 0;
    Summary switch_durations;                   // all initiated switches, ms
    /// Member-side duration of the last local switch (PREPARE seen to
    /// switchover).
    Duration last_local_switch_duration = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Distinct senders delivered within cfg.sender_window of now (oracle
  /// signal). Pure count — expired entries are pruned on the non-const
  /// consult path, not here.
  std::size_t active_senders() const;

  /// Duration of the most recent full NORMAL-token ring rotation observed
  /// at this member; 0 until two consecutive NORMAL visits have been seen
  /// since start (or since the last switch reset the measurement).
  Duration normal_rotation() const { return normal_rotation_; }

  /// Observer invoked once per application delivery with the epoch the
  /// message travelled under (in delivery order). The fuzzer's oracle zips
  /// this stream with the captured trace to check SP's old-before-new
  /// guarantee; unset in production stacks.
  void set_epoch_tap(std::function<void(std::uint64_t epoch)> tap) { epoch_tap_ = std::move(tap); }

 private:
  enum class TokenMode : std::uint8_t { kNormal = 0, kPrepare = 1, kSwitch = 2, kFlush = 3 };

  struct Token {
    TokenMode mode = TokenMode::kNormal;
    std::uint64_t serial = 0;
    std::uint64_t epoch = 0;       // epoch being closed by this switch
    std::uint32_t initiator = 0;   // member id driving the switch
    /// PREPARE: per-member sent counts, filled as the token travels
    /// (slot i == members()[i]); SWITCH: the complete vector.
    std::vector<std::uint64_t> counts;
  };

  // --- data path -----------------------------------------------------
  void on_subprotocol_deliver(int protocol, Message m);
  void deliver_counted(std::uint32_t sender, Message m);
  void maybe_complete_switch();
  void complete_local_switch();

  // --- control path ----------------------------------------------------
  void on_control(Message m);
  void on_token(Token t, NodeId from);
  void handle_token(Token t);
  void begin_prepare_local();
  void forward_token(Token t, bool count_hop = true);
  void arm_token_retransmit(std::uint64_t serial);
  Payload encode_token(const Token& t) const;
  static Token decode_token(Reader& r);

  LayerChain& chain(int protocol) { return protocol == 0 ? *chain_a_ : *chain_b_; }

  SwitchConfig cfg_;
  std::unique_ptr<Oracle> oracle_;

  // Sub-protocol layers, wrapped into chains at start().
  std::vector<std::unique_ptr<Layer>> layers_a_;
  std::vector<std::unique_ptr<Layer>> layers_b_;
  std::unique_ptr<LayerChain> chain_a_;
  std::unique_ptr<LayerChain> chain_b_;

  // --- epoch state -----------------------------------------------------
  std::uint64_t epoch_ = 0;
  std::uint64_t sent_this_epoch_ = 0;
  std::uint64_t sent_next_epoch_ = 0;
  std::map<std::uint32_t, std::uint64_t> delivered_this_epoch_;

  // --- switch-in-progress state -----------------------------------------
  bool prepared_ = false;      // saw PREPARE for epoch_; sends go to epoch_+1
  bool have_counts_ = false;   // saw SWITCH vector
  std::vector<std::uint64_t> counts_;
  struct BufferedDeliver {
    std::uint32_t sender;
    Message m;
  };
  std::vector<BufferedDeliver> buffered_next_;  // next-epoch deliveries, in order
  std::optional<Token> held_flush_;  // FLUSH token held until local switch done
  bool i_am_initiator_ = false;
  Time switch_started_ = 0;        // initiator: NORMAL captured
  Time local_switch_started_ = 0;  // member: PREPARE processed

  // --- token transport ---------------------------------------------------
  std::uint64_t last_serial_seen_ = 0;
  std::uint64_t outstanding_serial_ = 0;
  Payload outstanding_bytes_;
  bool switch_requested_ = false;
  /// Dwell-clock anchor: seeded to the layer's start time in start() so the
  /// first consult measures dwell from a real instant, not from time 0 —
  /// under a wall-clock runtime `now - 0` is enormous and a bursty first
  /// window could flap immediately.
  Time last_switch_time_ = 0;

  // --- oracle signal -------------------------------------------------
  /// Drop entries older than cfg.sender_window as of `now`. Runs on the
  /// non-const consult path (NORMAL token) so active_senders() stays a
  /// plain const read with no const-laundered mutation.
  void prune_sender_window(Time now);
  std::map<std::uint32_t, Time> last_seen_sender_;
  Time last_normal_visit_ = -1;    // previous NORMAL token arrival, -1 = none
  Duration normal_rotation_ = 0;   // latest full ring-rotation measurement
  std::function<void(std::uint64_t)> epoch_tap_;

  // --- telemetry -------------------------------------------------------
  /// Counts arrived (initiator: PREPARE returned; member: SWITCH token):
  /// close the prepare phase span and open the drain phase span.
  void trace_counts_arrived();
  /// Open the per-node rotation span `name` on the control track, closing
  /// whichever rotation span is currently open (they are sequential).
  void trace_rotation(std::uint32_t name, std::uint64_t arg);
  /// Close the open rotation span and, when `close_switch`, the enclosing
  /// sp.switch span (FLUSH left this node: the switch is over here).
  void trace_rotation_done(bool close_switch);

  Tracer* tr_ = &Tracer::disabled();  // cached from Services in start()
  std::uint32_t n_sp_switch_ = 0;     // control track: whole switch, per node
  std::uint32_t n_rot_prepare_ = 0, n_rot_switch_ = 0, n_rot_flush_ = 0;
  std::uint32_t n_local_ = 0;         // data track: local switchover
  std::uint32_t n_ph_prepare_ = 0, n_ph_drain_ = 0, n_ph_release_ = 0;
  std::uint32_t n_tok_forward_ = 0, n_tok_retx_ = 0, n_stale_ = 0, n_buf_ = 0;
  std::uint32_t n_epoch_install_ = 0;  // membership track: epoch now installed
  std::uint32_t open_rotation_ = 0;   // interned name of the open rotation span

  Stats stats_;
};

}  // namespace msw
