#include "util/rng.hpp"

#include <cmath>

namespace msw {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return v % bound;
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  // 53 significant bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

std::size_t Rng::index(std::size_t size) {
  return static_cast<std::size_t>(below(size));
}

Rng Rng::split() {
  return Rng(next());
}

}  // namespace msw
