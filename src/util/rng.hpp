// Deterministic pseudo-random number generation.
//
// Every source of randomness in the library (network jitter, loss,
// workload generation, trace corpora) flows from a seeded Rng so that
// simulations, tests, and benchmarks are exactly reproducible.
#pragma once

#include <cstdint>
#include <vector>

namespace msw {

/// xoshiro256** seeded via splitmix64. Not cryptographic; see util/digest.hpp
/// for the (simulated) keyed primitives.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform over the full 64-bit range.
  std::uint64_t next();

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform();

  /// True with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponentially distributed with the given mean (> 0).
  double exponential(double mean);

  /// Pick an index into a non-empty container of the given size.
  std::size_t index(std::size_t size);

  /// Fork an independent stream (for per-node generators).
  Rng split();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace msw
