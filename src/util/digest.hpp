// Simulated cryptographic primitives.
//
// The paper's Integrity and Confidentiality layers depend only on the
// *presence* of a verifiable tag and a key-reversible transform, not on
// cryptographic strength (see DESIGN.md, substitution table). These
// primitives are FNV/xorshift based: deterministic, collision-resistant
// enough for simulation, and emphatically NOT secure.
#pragma once

#include <cstdint>
#include <span>

#include "util/bytes.hpp"

namespace msw {

/// FNV-1a 64-bit digest of a byte range.
std::uint64_t fnv1a(std::span<const Byte> data);

/// Keyed message-authentication code: digest bound to a 64-bit key and to
/// the claimed sender id, so a forger without the key (or lying about the
/// sender) produces a tag that fails verification.
std::uint64_t mac(std::uint64_t key, std::uint32_t sender, std::span<const Byte> data);

/// In-place keyed stream cipher (xorshift keystream seeded by key and nonce).
/// Applying twice with the same key and nonce restores the plaintext.
void stream_crypt(std::uint64_t key, std::uint64_t nonce, std::span<Byte> data);

}  // namespace msw
