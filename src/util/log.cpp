#include "util/log.hpp"

#include <cstdio>

namespace msw {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

LogLevel Log::level() { return g_level; }

void Log::set_level(LogLevel lvl) { g_level = lvl; }

void Log::write(LogLevel lvl, std::string_view component, std::int64_t sim_time_us,
                std::string_view message) {
  if (lvl < g_level) return;
  if (sim_time_us >= 0) {
    std::fprintf(stderr, "[%s] %10.3fms %-10.*s %.*s\n", level_name(lvl),
                 static_cast<double>(sim_time_us) / 1000.0, static_cast<int>(component.size()),
                 component.data(), static_cast<int>(message.size()), message.data());
  } else {
    std::fprintf(stderr, "[%s] %-10.*s %.*s\n", level_name(lvl), static_cast<int>(component.size()),
                 component.data(), static_cast<int>(message.size()), message.data());
  }
}

}  // namespace msw
