#include "util/digest.hpp"

namespace msw {

std::uint64_t fnv1a(std::span<const Byte> data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (Byte b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t mac(std::uint64_t key, std::uint32_t sender, std::span<const Byte> data) {
  std::uint64_t h = fnv1a(data);
  // Mix in key and sender with a couple of avalanche rounds.
  h ^= key;
  h ^= static_cast<std::uint64_t>(sender) * 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

void stream_crypt(std::uint64_t key, std::uint64_t nonce, std::span<Byte> data) {
  std::uint64_t state = key ^ (nonce * 0xda942042e4dd58b5ULL);
  if (state == 0) state = 0x2545f4914f6cdd1dULL;
  std::uint64_t ks = 0;
  int avail = 0;
  for (Byte& b : data) {
    if (avail == 0) {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      ks = state;
      avail = 8;
    }
    b ^= static_cast<Byte>(ks & 0xff);
    ks >>= 8;
    --avail;
  }
}

}  // namespace msw
