// Byte-buffer primitives and forward-only serialization.
//
// All wire formats in this library are built from the little-endian
// fixed-width encoders below. Headers are appended to the *tail* of a
// message buffer on the way down a protocol stack and popped from the tail
// on the way up (see stack/message.hpp), so both Writer and Reader here are
// simple forward cursors over a contiguous byte range.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace msw {

using Byte = std::uint8_t;
using Bytes = std::vector<Byte>;

/// Thrown when a Reader runs past the end of its buffer or a length prefix
/// is inconsistent. Protocol layers treat this as a malformed packet.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends fixed-width little-endian values to a Bytes buffer.
class Writer {
 public:
  explicit Writer(Bytes& out) : out_(out) {}

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// LEB128 variable-width unsigned integer: 1 byte for values < 128,
  /// growing 7 bits per byte (max 10 bytes). The control-plane encodings
  /// (range NACKs, delta ack vectors) are built on this.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<Byte>(v) | 0x80);
      v >>= 7;
    }
    out_.push_back(static_cast<Byte>(v));
  }

  /// Raw bytes, no length prefix. The caller must know the length on read.
  void raw(std::span<const Byte> b) { out_.insert(out_.end(), b.begin(), b.end()); }

  /// Length-prefixed (u32) byte string.
  void bytes(std::span<const Byte> b);

  /// Length-prefixed (u32) character string.
  void str(std::string_view s);

  /// Pre-size the buffer for `n` more bytes; a header of known width pays
  /// one capacity check instead of one per field.
  void reserve(std::size_t n) { out_.reserve(out_.size() + n); }

  /// Number of bytes written through this Writer so far is not tracked;
  /// callers needing sizes should snapshot out().size().
  const Bytes& out() const { return out_; }

 private:
  template <typename T>
  void put_le(T v) {
    // Single resize + direct stores: the little-endian byte spread compiles
    // to one unaligned store, vs. sizeof(T) push_back capacity checks.
    const std::size_t n = out_.size();
    out_.resize(n + sizeof(T));
    Byte* p = out_.data() + n;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      p[i] = static_cast<Byte>((v >> (8 * i)) & 0xff);
    }
  }

  Bytes& out_;
};

/// Forward cursor over a byte range. Throws DecodeError on underflow.
class Reader {
 public:
  explicit Reader(std::span<const Byte> in) : in_(in) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return get_le<std::uint16_t>(); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(get_le<std::uint64_t>()); }
  bool boolean() { return u8() != 0; }

  /// LEB128 varint. Throws DecodeError on underflow or an encoding longer
  /// than 10 bytes (a u64 never needs more).
  std::uint64_t varint();

  /// Raw bytes of known length.
  std::span<const Byte> raw(std::size_t n) { return take(n); }

  /// Length-prefixed (u32) byte string, copied out.
  Bytes bytes();

  /// Length-prefixed (u32) character string.
  std::string str();

  std::size_t remaining() const { return in_.size() - pos_; }
  bool done() const { return remaining() == 0; }

  /// Asserts the buffer is fully consumed; protocol layers call this after
  /// decoding a header to catch format drift early.
  void expect_done() const;

 private:
  std::span<const Byte> take(std::size_t n);

  template <typename T>
  T get_le() {
    auto b = take(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(b[i]) << (8 * i));
    }
    return v;
  }

  std::span<const Byte> in_;
  std::size_t pos_ = 0;
};

/// Convenience: build a Bytes from a string literal / string_view body.
Bytes to_bytes(std::string_view s);

/// Convenience: render bytes as printable text (non-printables escaped).
std::string to_string(std::span<const Byte> b);

/// Hex dump, for diagnostics.
std::string to_hex(std::span<const Byte> b);

}  // namespace msw
