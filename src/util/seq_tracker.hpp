// Tracks which sequence numbers from a dense stream have been seen:
// a contiguous prefix [0, contiguous) plus a sparse set beyond it.
// Used for duplicate suppression and gap detection by the reliable,
// sequencer, and token layers.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

namespace msw {

class SeqTracker {
 public:
  /// Marks seq as seen. Returns false if it was already seen (duplicate).
  bool insert(std::uint64_t seq) {
    if (seen(seq)) return false;
    if (seq == contiguous_) {
      ++contiguous_;
      while (!sparse_.empty() && *sparse_.begin() == contiguous_) {
        sparse_.erase(sparse_.begin());
        ++contiguous_;
      }
    } else {
      sparse_.insert(seq);
    }
    return true;
  }

  bool seen(std::uint64_t seq) const {
    return seq < contiguous_ || sparse_.count(seq) > 0;
  }

  /// One past the largest seq in the fully-seen prefix.
  std::uint64_t contiguous() const { return contiguous_; }

  /// Sequences in [contiguous, bound) not yet seen, up to `limit` of them.
  std::vector<std::uint64_t> missing_below(std::uint64_t bound, std::size_t limit) const {
    std::vector<std::uint64_t> out;
    for (std::uint64_t s = contiguous_; s < bound && out.size() < limit; ++s) {
      if (!seen(s)) out.push_back(s);
    }
    return out;
  }

  bool has_gaps() const { return !sparse_.empty(); }
  std::size_t sparse_count() const { return sparse_.size(); }

 private:
  std::uint64_t contiguous_ = 0;
  std::set<std::uint64_t> sparse_;
};

}  // namespace msw
