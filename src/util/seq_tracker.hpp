// Tracks which sequence numbers from a dense stream have been seen:
// a contiguous prefix [0, contiguous) plus run-length-coded intervals
// beyond it. Used for duplicate suppression and gap detection by the
// reliable, sequencer, and token layers.
//
// The interval representation is what keeps the control plane cheap at
// scale: after a long partition the missing set is a handful of *ranges*,
// so gap enumeration walks the stored runs — O(runs + output) — instead
// of probing every sequence in [contiguous, announced) one by one.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

namespace msw {

/// Half-open range [begin, end) of sequence numbers.
struct SeqRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  std::uint64_t size() const { return end - begin; }
  bool operator==(const SeqRange&) const = default;
};

class SeqTracker {
 public:
  /// Marks seq as seen. Returns false if it was already seen (duplicate).
  bool insert(std::uint64_t seq) {
    if (seq < contiguous_) return false;
    if (seq == contiguous_) {
      ++contiguous_;
      // Absorb a run that now touches the prefix.
      const auto it = runs_.begin();
      if (it != runs_.end() && it->first == contiguous_) {
        contiguous_ = it->second;
        sparse_count_ -= it->second - it->first;
        runs_.erase(it);
      }
      return true;
    }
    // First run at or after seq; `left` is the run before it (if any).
    auto right = runs_.lower_bound(seq);
    if (right != runs_.end() && right->first == seq) return false;  // run start
    if (right != runs_.begin()) {
      const auto left = std::prev(right);
      if (seq < left->second) return false;  // inside an existing run
      if (seq == left->second) {
        // Extends `left`; maybe bridges the gap to `right`.
        ++left->second;
        ++sparse_count_;
        if (right != runs_.end() && right->first == left->second) {
          left->second = right->second;
          runs_.erase(right);
        }
        return true;
      }
    }
    if (right != runs_.end() && right->first == seq + 1) {
      // Extends `right` downward: re-key the run.
      const std::uint64_t end = right->second;
      runs_.erase(right);
      runs_.emplace(seq, end);
      ++sparse_count_;
      return true;
    }
    runs_.emplace(seq, seq + 1);
    ++sparse_count_;
    return true;
  }

  bool seen(std::uint64_t seq) const {
    if (seq < contiguous_) return true;
    auto it = runs_.upper_bound(seq);
    if (it == runs_.begin()) return false;
    return seq < std::prev(it)->second;
  }

  /// One past the largest seq in the fully-seen prefix.
  std::uint64_t contiguous() const { return contiguous_; }

  /// Missing ranges in [contiguous, bound), capped at `max_seqs` total
  /// sequences (the last range is truncated to fit). Walks the stored
  /// runs, so the cost is independent of the width of the gaps.
  std::vector<SeqRange> missing_ranges(std::uint64_t bound, std::uint64_t max_seqs) const {
    std::vector<SeqRange> out;
    std::uint64_t budget = max_seqs;
    std::uint64_t cursor = contiguous_;
    for (auto it = runs_.begin(); it != runs_.end() && cursor < bound && budget > 0; ++it) {
      if (it->first > cursor) {
        // min(bound - cursor, budget) first: cursor + budget itself can wrap.
        const std::uint64_t take = std::min(bound - cursor, budget);
        const std::uint64_t end = std::min(it->first, cursor + take);
        out.push_back({cursor, end});
        budget -= end - cursor;
      }
      cursor = std::max(cursor, it->second);
    }
    if (cursor < bound && budget > 0) {
      out.push_back({cursor, cursor + std::min(bound - cursor, budget)});
    }
    return out;
  }

  /// Sequences in [contiguous, bound) not yet seen, up to `limit` of them.
  std::vector<std::uint64_t> missing_below(std::uint64_t bound, std::size_t limit) const {
    std::vector<std::uint64_t> out;
    for (const SeqRange& r : missing_ranges(bound, limit)) {
      for (std::uint64_t s = r.begin; s < r.end; ++s) out.push_back(s);
    }
    return out;
  }

  bool has_gaps() const { return !runs_.empty(); }
  /// Number of sequences seen beyond the contiguous prefix.
  std::size_t sparse_count() const { return sparse_count_; }
  /// Number of stored interval runs — the tracker's actual memory footprint.
  std::size_t runs() const { return runs_.size(); }

 private:
  std::uint64_t contiguous_ = 0;
  // Disjoint, non-adjacent runs of seen sequences beyond contiguous_,
  // keyed by start, value = one-past-the-end. Out-of-order arrival mostly
  // extends an existing run, so insert is O(log runs), not O(log seqs).
  std::map<std::uint64_t, std::uint64_t> runs_;
  std::size_t sparse_count_ = 0;
};

/// Missing ranges in [from, bound) for a reorder buffer held as an ordered
/// map keyed by sequence number (sequencer / token receiver state). Walks
/// the map entries from `from`, so a wide horizon gap after a partition
/// costs O(held + output ranges), never O(bound - from).
template <typename OrderedMap>
std::vector<SeqRange> missing_ranges_in(const OrderedMap& held, std::uint64_t from,
                                        std::uint64_t bound, std::uint64_t max_seqs) {
  std::vector<SeqRange> out;
  std::uint64_t budget = max_seqs;
  std::uint64_t cursor = from;
  for (auto it = held.lower_bound(from); it != held.end() && it->first < bound && budget > 0;
       ++it) {
    if (it->first > cursor) {
      // min(bound - cursor, budget) first: cursor + budget itself can wrap.
      const std::uint64_t take = std::min(bound - cursor, budget);
      const std::uint64_t end = std::min(it->first, cursor + take);
      out.push_back({cursor, end});
      budget -= end - cursor;
    }
    cursor = std::max(cursor, it->first + 1);
  }
  if (cursor < bound && budget > 0) {
    out.push_back({cursor, cursor + std::min(bound - cursor, budget)});
  }
  return out;
}

}  // namespace msw
