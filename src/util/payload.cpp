#include "util/payload.hpp"

#include <cassert>

namespace msw {

std::uint64_t Payload::cow_copies_ = 0;

Payload::Payload(Bytes b) {
  if (!b.empty()) {
    len_ = b.size();
    buf_ = std::make_shared<Bytes>(std::move(b));
  }
}

void Payload::shrink(std::size_t new_len) {
  assert(new_len <= len_ && "shrink may only reduce the logical length");
  len_ = new_len;
}

std::span<Byte> Payload::mutable_view() {
  if (!buf_) return {};
  make_unique_trimmed();
  return std::span<Byte>(buf_->data(), len_);
}

Bytes& Payload::begin_append() {
  if (!buf_) {
    buf_ = std::make_shared<Bytes>();
    len_ = 0;
    return *buf_;
  }
  make_unique_trimmed();
  return *buf_;
}

void Payload::make_unique_trimmed() {
  if (buf_.use_count() > 1) {
    ++cow_copies_;
    buf_ = std::make_shared<Bytes>(buf_->data(), buf_->data() + len_);
  } else if (buf_->size() != len_) {
    buf_->resize(len_);
  }
}

}  // namespace msw
