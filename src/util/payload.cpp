#include "util/payload.hpp"

#include <cassert>

namespace msw {

std::uint64_t Payload::cow_copies_ = 0;

Payload::Payload(Bytes b) : own_(std::move(b)), len_(own_.size()) {}

void Payload::shrink(std::size_t new_len) {
  assert(new_len <= len_ && "shrink may only reduce the logical length");
  len_ = new_len;
}

void Payload::promote() const {
  if (shared_ || own_.empty()) return;
  shared_ = std::make_shared<Bytes>(std::move(own_));
  own_.clear();
}

std::span<Byte> Payload::mutable_view() {
  if (!shared_ && own_.empty()) return {};
  Bytes& b = begin_append();
  return std::span<Byte>(b.data(), len_);
}

Bytes& Payload::begin_append() {
  if (!shared_) {
    own_.resize(len_);  // trim any popped tail headers
    return own_;
  }
  if (shared_.use_count() > 1) {
    // Copy-on-write: clone the logical bytes back into the unique
    // representation and let the shared buffer go.
    ++cow_copies_;
    own_.assign(shared_->data(), shared_->data() + len_);
    shared_.reset();
    return own_;
  }
  shared_->resize(len_);
  return *shared_;
}

}  // namespace msw
