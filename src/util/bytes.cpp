#include "util/bytes.hpp"

#include <array>

namespace msw {

void Writer::bytes(std::span<const Byte> b) {
  u32(static_cast<std::uint32_t>(b.size()));
  raw(b);
}

void Writer::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.insert(out_.end(), s.begin(), s.end());
}

Bytes Reader::bytes() {
  const auto n = u32();
  auto b = take(n);
  return Bytes(b.begin(), b.end());
}

std::string Reader::str() {
  const auto n = u32();
  auto b = take(n);
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 70; shift += 7) {
    const Byte b = u8();
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
  }
  throw DecodeError("varint longer than 10 bytes");
}

void Reader::expect_done() const {
  if (!done()) {
    throw DecodeError("trailing bytes after decode: " + std::to_string(remaining()));
  }
}

std::span<const Byte> Reader::take(std::size_t n) {
  if (pos_ + n > in_.size()) {
    throw DecodeError("buffer underflow: need " + std::to_string(n) + ", have " +
                      std::to_string(in_.size() - pos_));
  }
  auto s = in_.subspan(pos_, n);
  pos_ += n;
  return s;
}

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(std::span<const Byte> b) {
  std::string s;
  s.reserve(b.size());
  for (Byte c : b) {
    if (c >= 0x20 && c < 0x7f) {
      s.push_back(static_cast<char>(c));
    } else {
      s.push_back('\\');
      s.push_back('x');
      static constexpr char kHex[] = "0123456789abcdef";
      s.push_back(kHex[c >> 4]);
      s.push_back(kHex[c & 0xf]);
    }
  }
  return s;
}

std::string to_hex(std::span<const Byte> b) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string s;
  s.reserve(b.size() * 2);
  for (Byte c : b) {
    s.push_back(kHex[c >> 4]);
    s.push_back(kHex[c & 0xf]);
  }
  return s;
}

}  // namespace msw
