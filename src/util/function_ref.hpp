// Lightweight callable vocabulary types for the hot message/event path.
//
// FunctionRef is a non-owning view of a callable: two words, trivially
// copyable, no allocation, no virtual dispatch beyond one indirect call.
// It is the right parameter type for "call me back before I return"
// interfaces (Message::push_header / pop_header): the callee never stores
// it, so lifetime is the caller's stack frame and a std::function's
// ownership (and potential heap allocation per call site) is pure waste.
//
// UniqueFunction is an owning, move-only callable with a small-buffer
// optimization: captures up to kInlineSize bytes live inline (typical
// scheduler closures: a this-pointer, a NodeId, a refcounted Payload),
// larger ones fall back to the heap. Unlike std::function it never
// requires copyability of the target, so closures may own move-only
// state, and moving it never allocates. The scheduler stores these in
// its slot pool; the network stores one per node as the receive handler.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace msw {

template <typename Sig>
class FunctionRef;

/// Non-owning reference to a callable with signature R(Args...). The
/// referenced callable must outlive every invocation — bind only to
/// lvalues or to temporaries that live for the full expression (the
/// normal "call a lambda passed as an argument" pattern).
template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT: implicit by design, mirrors std::function_ref
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::add_pointer_t<std::remove_reference_t<F>>>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const { return call_(obj_, std::forward<Args>(args)...); }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

namespace detail {

/// Inline capture capacity of UniqueFunction. 48 bytes holds every closure
/// the simulator schedules on its hot paths (delivery continuations carry
/// a this-pointer, a NodeId, a Time and a refcounted Payload).
inline constexpr std::size_t kInlineSize = 48;

enum class FnOp { kMove, kDestroy };

}  // namespace detail

template <typename Sig>
class UniqueFunction;

/// Owning move-only callable with inline storage for small captures.
template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
 public:
  UniqueFunction() noexcept = default;
  UniqueFunction(std::nullptr_t) noexcept {}  // NOLINT: mirror std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>>>
  UniqueFunction(F&& f) {  // NOLINT: implicit by design, mirrors std::function
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= detail::kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      call_ = [](void* obj, Args... args) -> R {
        return (*static_cast<Fn*>(obj))(std::forward<Args>(args)...);
      };
      manage_ = [](detail::FnOp op, void* dst, void* src) {
        if (op == detail::FnOp::kMove) {
          ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
          static_cast<Fn*>(src)->~Fn();
        } else {
          static_cast<Fn*>(dst)->~Fn();
        }
      };
    } else {
      // Heap fallback: storage_ holds a single pointer to the target.
      auto* p = new Fn(std::forward<F>(f));
      ::new (static_cast<void*>(storage_)) Fn*(p);
      call_ = [](void* obj, Args... args) -> R {
        return (**static_cast<Fn**>(obj))(std::forward<Args>(args)...);
      };
      manage_ = [](detail::FnOp op, void* dst, void* src) {
        if (op == detail::FnOp::kMove) {
          ::new (dst) Fn*(*static_cast<Fn**>(src));
        } else {
          delete *static_cast<Fn**>(dst);
        }
      };
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { move_from(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  UniqueFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  explicit operator bool() const noexcept { return call_ != nullptr; }

  R operator()(Args... args) {
    return call_(static_cast<void*>(storage_), std::forward<Args>(args)...);
  }

 private:
  using Call = R (*)(void*, Args...);
  using Manage = void (*)(detail::FnOp, void* dst, void* src);

  void reset() noexcept {
    if (manage_ != nullptr) manage_(detail::FnOp::kDestroy, storage_, nullptr);
    call_ = nullptr;
    manage_ = nullptr;
  }

  void move_from(UniqueFunction& other) noexcept {
    call_ = other.call_;
    manage_ = other.manage_;
    if (manage_ != nullptr) manage_(detail::FnOp::kMove, storage_, other.storage_);
    other.call_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[detail::kInlineSize];
  Call call_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace msw
