// Refcounted copy-on-write byte buffer — the currency of the data plane.
//
// A Payload is a logical byte string [0, size()) backed by a shared,
// immutable-while-shared buffer. Copying a Payload shares the buffer (a
// refcount bump), so multicast fan-out, retransmission buffers and
// peer-assist stores all alias one allocation instead of deep-copying.
// Two operations stay cheap even on shared buffers:
//
//   - shrink(): popping a tail header only moves this view's logical
//     length; other holders of the buffer are untouched. The receive path
//     of an N-way multicast therefore strips headers with zero copies.
//   - view(): a read-only span over the logical bytes.
//
// Mutation (appending a header, in-place encryption) requires unique
// ownership: if the buffer is shared, the logical bytes are first cloned
// into a fresh buffer (copy-on-write, counted in cow_copies() so tests
// and benches can assert copy behaviour). See DESIGN.md, "Performance
// architecture", for the ownership rules.
//
// Ownership is promoted lazily: a freshly built Payload owns its bytes as
// a plain vector (no refcount allocation); only the first copy moves the
// buffer behind a shared_ptr. The common single-owner path — build, stamp
// headers, hand to the wire, pop headers, deliver — therefore never pays
// for a control block it does not use.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "util/bytes.hpp"

namespace msw {

class Payload {
 public:
  Payload() noexcept = default;

  /// Wrap (by move) a flat buffer. Implicit: Bytes call sites keep working.
  Payload(Bytes b);  // NOLINT: implicit by design

  /// Copying shares the underlying buffer; no bytes move (the source is
  /// promoted to the shared representation if it was still unique).
  Payload(const Payload& other) : len_(other.len_) {
    other.promote();
    shared_ = other.shared_;
  }
  Payload& operator=(const Payload& other) {
    if (this != &other) {
      other.promote();
      own_.clear();
      shared_ = other.shared_;
      len_ = other.len_;
    }
    return *this;
  }
  Payload(Payload&& other) noexcept
      : own_(std::move(other.own_)), shared_(std::move(other.shared_)), len_(other.len_) {
    other.own_.clear();
    other.len_ = 0;
  }
  Payload& operator=(Payload&& other) noexcept {
    if (this != &other) {
      own_ = std::move(other.own_);
      shared_ = std::move(other.shared_);
      len_ = other.len_;
      other.own_.clear();
      other.len_ = 0;
    }
    return *this;
  }

  /// Read-only view of the logical bytes.
  std::span<const Byte> view() const {
    return std::span<const Byte>(shared_ ? shared_->data() : own_.data(), len_);
  }
  operator std::span<const Byte>() const { return view(); }  // NOLINT: implicit by design

  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }

  /// Drop this view's reference to the buffer.
  void clear() {
    own_.clear();
    shared_.reset();
    len_ = 0;
  }
  const Byte* data() const {
    return shared_ ? shared_->data() : (own_.empty() ? nullptr : own_.data());
  }

  /// Materialize a flat copy of the logical bytes.
  Bytes bytes() const {
    const auto v = view();
    return Bytes(v.begin(), v.end());
  }

  /// Number of Payloads sharing this buffer (0 for an empty payload).
  /// Used by tests to assert multicast fan-out aliases one body.
  long use_count() const { return shared_ ? shared_.use_count() : (own_.empty() ? 0 : 1); }

  /// Zero-copy logical truncation to the first `new_len` bytes. This is
  /// how pop_header discards a consumed tail header without touching the
  /// (possibly shared) buffer.
  void shrink(std::size_t new_len);

  /// Writable fixed-size access to the logical bytes (in-place transforms
  /// such as the confidentiality layer's stream cipher). Clones first if
  /// the buffer is shared.
  std::span<Byte> mutable_view();

  /// Append protocol used by Message::push_header: begin_append() returns
  /// a uniquely-owned vector trimmed to the logical length, ready to grow;
  /// end_append() re-syncs the logical length after the caller appended.
  /// No other mutation of the returned vector is permitted.
  Bytes& begin_append();
  void end_append() { len_ = shared_ ? shared_->size() : own_.size(); }

  /// Global count of copy-on-write clones since process start. The data
  /// plane's copy budget is observable: tests pin it down ("push_header
  /// after sharing costs exactly one copy"), benches report it.
  static std::uint64_t cow_copies() { return cow_copies_; }

  friend bool operator==(const Payload& a, const Payload& b) {
    const auto va = a.view();
    const auto vb = b.view();
    return std::equal(va.begin(), va.end(), vb.begin(), vb.end()) && va.size() == vb.size();
  }
  friend bool operator==(const Payload& a, const Bytes& b) {
    const auto v = a.view();
    return v.size() == b.size() && std::equal(v.begin(), v.end(), b.begin());
  }
  friend bool operator==(const Bytes& a, const Payload& b) { return b == a; }

 private:
  /// Move a still-unique buffer behind the shared_ptr so copies can alias
  /// it. Logically const: the bytes are unchanged, only the representation
  /// shifts (hence the mutable members).
  void promote() const;

  // The sim is single-threaded by construction (one Scheduler serializes
  // everything), so a plain counter suffices.
  static std::uint64_t cow_copies_;

  // Exactly one representation is active: `own_` while uniquely owned
  // (never copied since the last mutation), `shared_` once copied. Both
  // empty <=> empty payload.
  mutable Bytes own_;
  mutable std::shared_ptr<Bytes> shared_;
  std::size_t len_ = 0;  // logical length; invariant len_ <= buffer size
};

}  // namespace msw
