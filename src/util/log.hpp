// Minimal leveled logger for simulation diagnostics.
//
// Logging is off by default (kWarn) so tests and benches stay quiet;
// examples turn on kInfo to narrate protocol behaviour. Messages carry the
// simulated timestamp when the caller supplies one.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace msw {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel lvl);

  /// Emit a line if lvl is at or above the global threshold. `sim_time_us`
  /// < 0 means "no simulated clock available".
  static void write(LogLevel lvl, std::string_view component, std::int64_t sim_time_us,
                    std::string_view message);
};

/// Stream-style helper: MSW_LOG(kInfo, "switch", now) << "entering PREPARE";
class LogLine {
 public:
  LogLine(LogLevel lvl, std::string_view component, std::int64_t sim_time_us)
      : lvl_(lvl), component_(component), time_(sim_time_us) {}
  ~LogLine() { Log::write(lvl_, component_, time_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (lvl_ >= Log::level()) os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::string component_;
  std::int64_t time_;
  std::ostringstream os_;
};

}  // namespace msw

#define MSW_LOG(lvl, component, sim_time_us) ::msw::LogLine(::msw::LogLevel::lvl, component, sim_time_us)
