// Discrete-event scheduler.
//
// Events execute in (time, insertion-sequence) order, so simultaneous
// events run in a deterministic order and the whole simulation is exactly
// reproducible for a given seed. Cancellation is lazy: cancelled events
// stay in the heap but are skipped when popped.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace msw {

/// Handle for a scheduled event, usable with Scheduler::cancel.
struct EventId {
  std::uint64_t v = 0;
  bool valid() const { return v != 0; }
  friend bool operator==(EventId a, EventId b) { return a.v == b.v; }
};

class Scheduler {
 public:
  using Fn = std::function<void()>;

  /// Schedule fn at absolute time t (>= now).
  EventId at(Time t, Fn fn);

  /// Schedule fn after a relative delay (>= 0).
  EventId after(Duration d, Fn fn);

  /// Cancel a pending event. Cancelling an already-run or unknown event is
  /// a no-op, so layers may cancel timers unconditionally in teardown.
  void cancel(EventId id);

  /// Run the next pending event. Returns false when the queue is empty.
  bool step();

  /// Run events until the queue is empty or the next event is after t;
  /// the clock is then advanced to t (if t is ahead).
  void run_until(Time t);

  /// Run events until the queue is empty.
  void run();

  /// Run at most `limit` events; returns the number actually run. Guards
  /// against livelock in tests exercising pathological configurations.
  std::size_t run_bounded(std::size_t limit);

  Time now() const { return now_; }
  std::size_t pending() const { return size_; }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Ev {
    Time t;
    std::uint64_t seq;
    std::uint64_t id;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  bool pop_one();

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t size_ = 0;  // live (non-cancelled) events
  std::priority_queue<Ev, std::vector<Ev>, Later> queue_;
  std::unordered_map<std::uint64_t, Fn> handlers_;
};

}  // namespace msw
