// Discrete-event scheduler.
//
// Events execute in (time, insertion-sequence) order, so simultaneous
// events run in a deterministic order and the whole simulation is exactly
// reproducible for a given seed.
//
// Handlers live in a slot pool indexed by the heap entries: an EventId is
// a (slot, generation) pair, and every scheduling operation is an O(1)
// array access instead of a hash-map probe. Cancellation destroys the
// handler eagerly and bumps the slot's generation; the stale heap entry
// is skipped when popped because its recorded generation no longer
// matches. Slots are recycled through a free list, so the steady-state
// hot loop (schedule, dispatch, retire) performs no allocation at all
// when handler captures fit UniqueFunction's inline buffer.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"
#include "telemetry/clock.hpp"
#include "util/bytes.hpp"
#include "util/function_ref.hpp"

namespace msw {

class MetricsRegistry;

/// Bump allocator scoped to one scheduler tick. Batch paths draw transient
/// storage from it — header-encode scratch, fan-out grouping tables — and
/// the whole arena is released wholesale when simulated time advances, so
/// the steady-state batch hot loop performs no per-message allocation.
///
/// Only trivially-destructible data may live here (nothing runs destructors
/// on reset), and nothing allocated from the arena may outlive the tick:
/// anything that crosses a scheduler event boundary (in-flight packets,
/// retained frames) must own its storage the ordinary way.
class TickArena {
 public:
  /// Raw allocation, aligned for any scalar type. Valid until the clock
  /// next advances.
  void* alloc(std::size_t bytes);

  /// Typed array allocation; T must be trivially destructible (nothing is
  /// destroyed on reset). The memory is uninitialized.
  template <typename T>
  T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "TickArena never runs destructors");
    return static_cast<T*>(alloc(n * sizeof(T)));
  }

  /// A pooled, cleared Bytes buffer valid until the clock next advances —
  /// the flat scratch space batched header encoders write through. The
  /// vectors themselves are recycled across ticks, so their capacity (and
  /// thus the encode path's allocation count) amortizes to zero.
  Bytes& scratch();

  /// Release everything allocated this tick. Blocks and scratch vectors are
  /// retained for reuse; only the bump cursor and pool index rewind.
  void reset();

  /// Bytes handed out since the last reset (scratch excluded).
  std::size_t used() const { return used_; }
  /// Largest `used()` ever observed — sizing signal for the block list.
  std::size_t high_water() const { return high_water_; }
  std::uint64_t resets() const { return resets_; }

 private:
  struct Block {
    std::unique_ptr<Byte[]> mem;
    std::size_t cap = 0;
  };

  static constexpr std::size_t kBlockSize = 64 * 1024;

  std::vector<Block> blocks_;
  std::size_t cur_block_ = 0;
  std::size_t off_ = 0;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t resets_ = 0;
  std::vector<std::unique_ptr<Bytes>> scratch_pool_;
  std::size_t scratch_used_ = 0;
};

/// Handle for a scheduled event, usable with Scheduler::cancel. A default
/// constructed id is invalid; ids are never reused (generations advance
/// when a slot is recycled).
struct EventId {
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;
  bool valid() const { return gen != 0; }
  friend bool operator==(EventId a, EventId b) { return a.slot == b.slot && a.gen == b.gen; }
};

class Scheduler : public TelemetryClock {
 public:
  using Fn = UniqueFunction<void()>;

  /// Schedule fn at absolute time t (>= now).
  EventId at(Time t, Fn fn);

  /// Schedule fn after a relative delay (>= 0).
  EventId after(Duration d, Fn fn);

  /// Cancel a pending event; its handler (and any resources its closure
  /// owns) is destroyed immediately. Cancelling an already-run or unknown
  /// event is a no-op, so layers may cancel timers unconditionally in
  /// teardown.
  void cancel(EventId id);

  /// Run the next pending event. Returns false when the queue is empty.
  bool step();

  /// Run events until the queue is empty or the next event is after t;
  /// the clock is then advanced to t (if t is ahead).
  void run_until(Time t);

  /// Run events until the queue is empty.
  void run();

  /// Run at most `limit` events; returns the number actually run. Guards
  /// against livelock in tests exercising pathological configurations.
  std::size_t run_bounded(std::size_t limit);

  Time now() const { return now_; }
  /// TelemetryClock: event timestamps in the sim domain are simulated time.
  Time telemetry_now() const override { return now_; }
  std::size_t pending() const { return size_; }
  std::uint64_t executed() const { return executed_; }
  std::uint64_t cancelled() const { return cancelled_; }
  /// High-water mark of simultaneously pending events.
  std::uint64_t peak_pending() const { return peak_pending_; }

  /// Register the scheduler's counters on `reg` under "sched." names.
  void bind_metrics(MetricsRegistry& reg) const;

  /// Per-tick allocator for batch paths. Reset automatically whenever the
  /// clock advances to a new tick; see TickArena for lifetime rules.
  TickArena& tick_arena() { return arena_; }

 private:
  struct Ev {
    Time t;
    std::uint64_t seq;   // global insertion order, the deterministic tiebreak
    std::uint32_t slot;  // handler location
    std::uint32_t gen;   // must match the slot's generation to be live
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  struct Slot {
    Fn fn;
    std::uint32_t gen = 1;  // 0 is reserved for the invalid EventId
  };

  bool pop_one();

  /// Free a slot for reuse: advance its generation (invalidating any ids
  /// and heap entries that reference the old one) and push it on the free
  /// list. The handler must already be moved out or destroyed.
  void retire_slot(std::uint32_t slot);

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t size_ = 0;  // live (non-cancelled) events
  std::uint64_t peak_pending_ = 0;
  std::priority_queue<Ev, std::vector<Ev>, Later> queue_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  TickArena arena_;
};

}  // namespace msw
