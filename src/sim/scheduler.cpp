#include "sim/scheduler.hpp"

#include <algorithm>
#include <cassert>

#include "telemetry/metrics.hpp"

namespace msw {

void* TickArena::alloc(std::size_t bytes) {
  // Round up so every allocation is aligned for any scalar type.
  constexpr std::size_t kAlign = alignof(std::max_align_t);
  bytes = (bytes + kAlign - 1) & ~(kAlign - 1);
  while (true) {
    if (cur_block_ < blocks_.size()) {
      Block& b = blocks_[cur_block_];
      if (off_ + bytes <= b.cap) {
        Byte* p = b.mem.get() + off_;
        off_ += bytes;
        used_ += bytes;
        high_water_ = std::max(high_water_, used_);
        return p;
      }
      ++cur_block_;
      off_ = 0;
      continue;
    }
    const std::size_t cap = std::max(kBlockSize, bytes);
    blocks_.push_back(Block{std::make_unique<Byte[]>(cap), cap});
  }
}

Bytes& TickArena::scratch() {
  if (scratch_used_ == scratch_pool_.size()) {
    scratch_pool_.push_back(std::make_unique<Bytes>());
  }
  Bytes& b = *scratch_pool_[scratch_used_++];
  b.clear();
  return b;
}

void TickArena::reset() {
  cur_block_ = 0;
  off_ = 0;
  used_ = 0;
  scratch_used_ = 0;
  ++resets_;
}

void Scheduler::bind_metrics(MetricsRegistry& reg) const {
  reg.attach_counter("sched.executed", &executed_);
  reg.attach_counter("sched.cancelled", &cancelled_);
  reg.attach_counter("sched.peak_pending", &peak_pending_);
}

EventId Scheduler::at(Time t, Fn fn) {
  assert(t >= now_ && "cannot schedule into the past");
  if (t < now_) t = now_;
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  const std::uint32_t gen = s.gen;
  queue_.push(Ev{t, next_seq_++, slot, gen});
  ++size_;
  peak_pending_ = std::max<std::uint64_t>(peak_pending_, size_);
  return EventId{slot, gen};
}

EventId Scheduler::after(Duration d, Fn fn) {
  assert(d >= 0 && "negative delay");
  if (d < 0) d = 0;
  return at(now_ + d, std::move(fn));
}

void Scheduler::retire_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  if (++s.gen == 0) s.gen = 1;  // skip the reserved invalid generation
  free_slots_.push_back(slot);
}

void Scheduler::cancel(EventId id) {
  if (!id.valid() || id.slot >= slots_.size()) return;
  Slot& s = slots_[id.slot];
  if (s.gen != id.gen) return;  // already run, cancelled, or recycled
  // Destroy the handler now: a cancelled closure's captures (buffers,
  // refcounts) must not linger until the stale heap entry drains.
  s.fn = nullptr;
  retire_slot(id.slot);
  --size_;
  ++cancelled_;
}

bool Scheduler::pop_one() {
  while (!queue_.empty()) {
    const Ev ev = queue_.top();
    Slot& s = slots_[ev.slot];
    if (s.gen != ev.gen) {
      queue_.pop();  // cancelled; handler was already destroyed
      continue;
    }
    if (ev.t != now_) arena_.reset();  // tick ended: release batch scratch
    now_ = ev.t;
    Fn fn = std::move(s.fn);
    retire_slot(ev.slot);
    queue_.pop();
    --size_;
    ++executed_;
    if (fn) fn();
    return true;
  }
  return false;
}

bool Scheduler::step() { return pop_one(); }

void Scheduler::run_until(Time t) {
  while (!queue_.empty()) {
    // Skip cancelled heads without advancing the clock.
    if (slots_[queue_.top().slot].gen != queue_.top().gen) {
      queue_.pop();
      continue;
    }
    if (queue_.top().t > t) break;
    pop_one();
  }
  if (now_ < t) now_ = t;
}

void Scheduler::run() {
  while (pop_one()) {
  }
}

std::size_t Scheduler::run_bounded(std::size_t limit) {
  std::size_t n = 0;
  while (n < limit && pop_one()) ++n;
  return n;
}

}  // namespace msw
