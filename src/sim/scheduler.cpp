#include "sim/scheduler.hpp"

#include <cassert>

namespace msw {

EventId Scheduler::at(Time t, Fn fn) {
  assert(t >= now_ && "cannot schedule into the past");
  if (t < now_) t = now_;
  const std::uint64_t id = next_seq_++;
  queue_.push(Ev{t, id, id});
  handlers_.emplace(id, std::move(fn));
  ++size_;
  return EventId{id};
}

EventId Scheduler::after(Duration d, Fn fn) {
  assert(d >= 0 && "negative delay");
  if (d < 0) d = 0;
  return at(now_ + d, std::move(fn));
}

void Scheduler::cancel(EventId id) {
  if (!id.valid()) return;
  auto it = handlers_.find(id.v);
  if (it == handlers_.end()) return;
  handlers_.erase(it);
  --size_;
}

bool Scheduler::pop_one() {
  while (!queue_.empty()) {
    Ev ev = queue_.top();
    auto it = handlers_.find(ev.id);
    if (it == handlers_.end()) {
      queue_.pop();  // cancelled
      continue;
    }
    now_ = ev.t;
    Fn fn = std::move(it->second);
    handlers_.erase(it);
    queue_.pop();
    --size_;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

bool Scheduler::step() { return pop_one(); }

void Scheduler::run_until(Time t) {
  while (!queue_.empty()) {
    // Skip cancelled heads without advancing the clock.
    if (handlers_.find(queue_.top().id) == handlers_.end()) {
      queue_.pop();
      continue;
    }
    if (queue_.top().t > t) break;
    pop_one();
  }
  if (now_ < t) now_ = t;
}

void Scheduler::run() {
  while (pop_one()) {
  }
}

std::size_t Scheduler::run_bounded(std::size_t limit) {
  std::size_t n = 0;
  while (n < limit && pop_one()) ++n;
  return n;
}

}  // namespace msw
