// Simulation driver: bundles the scheduler with the root random stream.
//
// A Simulation is the top-level object every experiment constructs first;
// the network, stacks, and workloads all borrow its scheduler and fork
// random streams from its root Rng.
#pragma once

#include <cstdint>

#include "sim/scheduler.hpp"
#include "telemetry/hub.hpp"
#include "util/rng.hpp"

namespace msw {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1);

  Scheduler& scheduler() { return scheduler_; }
  const Scheduler& scheduler() const { return scheduler_; }

  /// Root random stream. Components should usually call fork_rng() instead
  /// so that adding a consumer does not perturb unrelated draws.
  Rng& rng() { return rng_; }

  /// Independent random stream derived from the root.
  Rng fork_rng() { return rng_.split(); }

  Time now() const { return scheduler_.now(); }

  void run() { scheduler_.run(); }
  void run_until(Time t) { scheduler_.run_until(t); }
  void run_for(Duration d) { scheduler_.run_until(scheduler_.now() + d); }

  /// Telemetry aggregation point: per-node tracers and metric registries,
  /// plus the simulation-scope registry the scheduler's counters attach to.
  TelemetryHub& telemetry() { return telemetry_; }
  const TelemetryHub& telemetry() const { return telemetry_; }

  /// Arm per-node event rings (spans/instants start recording).
  void enable_tracing(std::size_t ring_capacity = TelemetryHub::kDefaultRingCapacity) {
    telemetry_.enable_tracing(ring_capacity);
  }

 private:
  Scheduler scheduler_;
  Rng rng_;
  TelemetryHub telemetry_;
};

}  // namespace msw
