// Simulated time.
//
// All simulated clocks are 64-bit microsecond counts from simulation start.
// Strong aliases plus literal-style helpers keep unit mistakes visible at
// call sites (e.g. `5 * kMillisecond`).
#pragma once

#include <cstdint>

namespace msw {

/// Absolute simulated time in microseconds since simulation start.
using Time = std::int64_t;

/// Relative simulated time in microseconds.
using Duration = std::int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000;
inline constexpr Duration kSecond = 1000 * 1000;

constexpr double to_ms(Duration d) { return static_cast<double>(d) / 1000.0; }
constexpr double to_sec(Duration d) { return static_cast<double>(d) / 1e6; }
constexpr Duration from_ms(double ms) { return static_cast<Duration>(ms * 1000.0); }

}  // namespace msw
