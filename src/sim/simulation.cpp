#include "sim/simulation.hpp"

namespace msw {

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

}  // namespace msw
