#include "sim/simulation.hpp"

namespace msw {

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {
  telemetry_.attach_clock(&scheduler_);
  scheduler_.bind_metrics(telemetry_.global());
}

}  // namespace msw
