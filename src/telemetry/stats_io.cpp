#include "telemetry/stats_io.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace msw {
namespace {

/// Fixed-precision double formatting so stats lines are byte-stable across
/// runs and platforms (ostream's default %g is locale/width dependent).
void append_fixed(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out += buf;
}

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

const StatsSnapshot::Scalar* StatsSnapshot::find_scalar(std::string_view name) const {
  for (const Scalar& s : scalars) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const StatsSnapshot::Hist* StatsSnapshot::find_hist(std::string_view name) const {
  for (const Hist& h : hists) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

StatsSnapshot::Hist summarize_hist_buckets(std::string name, const std::uint64_t* buckets,
                                           std::uint64_t count, std::uint64_t sum,
                                           std::uint64_t min, std::uint64_t max) {
  StatsSnapshot::Hist h;
  h.name = std::move(name);
  h.count = count;
  h.min = count == 0 ? 0 : min;
  h.max = max;
  h.mean = count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  using Histo = MetricsRegistry::Histogram;
  h.p50 = Histo::percentile_from(buckets, count, h.min, max, 50.0);
  h.p99 = Histo::percentile_from(buckets, count, h.min, max, 99.0);
  h.p999 = Histo::percentile_from(buckets, count, h.min, max, 99.9);
  h.buckets.assign(buckets, buckets + Histo::kBuckets);
  return h;
}

StatsSnapshot::Hist merge_hists(const std::vector<StatsSnapshot>& snaps,
                                std::string_view prefix) {
  using Histo = MetricsRegistry::Histogram;
  std::vector<std::uint64_t> buckets(Histo::kBuckets, 0);
  std::uint64_t count = 0;
  std::uint64_t min = ~std::uint64_t{0};
  std::uint64_t max = 0;
  for (const StatsSnapshot& s : snaps) {
    for (const StatsSnapshot::Hist& h : s.hists) {
      if (h.name.compare(0, prefix.size(), prefix) != 0) continue;
      if (h.count == 0 || h.buckets.size() != Histo::kBuckets) continue;
      for (std::size_t i = 0; i < Histo::kBuckets; ++i) buckets[i] += h.buckets[i];
      count += h.count;
      min = std::min(min, h.min);
      max = std::max(max, h.max);
    }
  }
  return summarize_hist_buckets(std::string(prefix) + "*", buckets.data(), count, 0,
                                count == 0 ? 0 : min, max);
}

StatsSnapshot snapshot_from_registry(std::string source, std::uint64_t t_us,
                                     const MetricsRegistry& reg) {
  StatsSnapshot snap;
  snap.source = std::move(source);
  snap.t_us = t_us;
  for (const auto& entry : reg.entries()) {
    if (const auto* h = reg.histogram_of(entry)) {
      snap.hists.push_back(summarize_hist_buckets(entry.name, h->buckets(), h->count(),
                                                  h->sum(), h->min(), h->max()));
    } else if (const auto* g = reg.gauge_of(entry)) {
      snap.scalars.push_back({entry.name, static_cast<std::uint64_t>(g->value())});
      snap.scalars.push_back({entry.name + ".max", static_cast<std::uint64_t>(g->max())});
    } else {
      snap.scalars.push_back({entry.name, static_cast<std::uint64_t>(reg.value_of(entry))});
    }
  }
  return snap;
}

void write_stats_line(std::ostream& os, const StatsSnapshot& snap) {
  std::string line;
  line.reserve(256);
  line += "{\"t_us\":";
  line += std::to_string(snap.t_us);
  line += ",\"src\":\"";
  append_escaped(line, snap.source);
  line += "\",\"metrics\":{";
  bool first = true;
  for (const StatsSnapshot::Scalar& s : snap.scalars) {
    if (!first) line += ",";
    first = false;
    line += "\"";
    append_escaped(line, s.name);
    line += "\":";
    line += std::to_string(s.value);
  }
  line += "},\"hist\":{";
  first = true;
  for (const StatsSnapshot::Hist& h : snap.hists) {
    if (!first) line += ",";
    first = false;
    line += "\"";
    append_escaped(line, h.name);
    line += "\":{\"count\":";
    line += std::to_string(h.count);
    line += ",\"min\":";
    line += std::to_string(h.min);
    line += ",\"max\":";
    line += std::to_string(h.max);
    line += ",\"mean\":";
    append_fixed(line, h.mean);
    line += ",\"p50\":";
    append_fixed(line, h.p50);
    line += ",\"p99\":";
    append_fixed(line, h.p99);
    line += ",\"p999\":";
    append_fixed(line, h.p999);
    line += "}";
  }
  line += "}}\n";
  os << line;
}

}  // namespace msw
