// Typed telemetry events and the bounded per-node ring that stores them.
//
// An event is 48 bytes of plain data: simulated timestamp, node id, node
// incarnation, SP epoch, an interned name id, a track, a kind, and two
// free arguments. Names are interned once at wiring time in a NameTable
// shared across the whole simulation, so the hot path never touches a
// string.
//
// The ring is bounded (flight-recorder semantics): when full, the oldest
// event is overwritten and a drop counter advances. Everything a crashed
// run needs to explain itself is the tail of the ring.
//
// Besides rings, events can flow to a TelemetrySink: a streaming consumer
// (the property monitors in src/monitor/) that sees every event exactly
// once, at emission time, with no buffering and no drops — the feed for
// online bounded-memory checking at soak scale, where rings would
// overwrite the history a checker needs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace msw {

enum class EventKind : std::uint8_t { kBegin = 0, kEnd = 1, kInstant = 2 };

/// Rendering track within a node. Spans on one track are emitted strictly
/// nested (or zero-duration), so exporters can pair begin/end with a stack.
enum class TelemetryTrack : std::uint8_t {
  kData = 0,        // data-path phases (SP drain, buffer release, ...)
  kControl = 1,     // control traffic (token rotations, NACKs, ...)
  kMembership = 2,  // view changes / flushes
};

struct TelemetryEvent {
  Time t = 0;
  std::uint64_t epoch = 0;        // SP epoch at emission
  std::uint64_t incarnation = 0;  // node incarnation (bumped by crashes)
  std::uint64_t arg = 0;          // event-specific payload (count, seq, ...)
  std::uint64_t arg2 = 0;         // second payload (sender id, flags, ...)
  std::uint32_t name = 0;         // NameTable id
  std::uint32_t node = 0;
  EventKind kind = EventKind::kInstant;
  TelemetryTrack track = TelemetryTrack::kData;
};

/// Well-known arg2 encoding for app.deliver events: low 32 bits carry the
/// sender id, bit 32 flags a view (membership) message. Together with arg
/// (the sequence number) this reconstructs the full message identity.
inline constexpr std::uint64_t kDeliverSenderMask = 0xFFFFFFFFull;
inline constexpr std::uint64_t kDeliverViewFlag = 1ull << 32;

/// Streaming consumer of telemetry events. Attached simulation-wide via
/// TelemetryHub::attach_sink; every armed tracer forwards each event at
/// emission time. Implementations must be cheap (called on the data path)
/// and must not re-enter the telemetry plane.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void on_telemetry(const TelemetryEvent& e) = 0;
};

/// Interns event names to dense u32 ids. Shared by every tracer of a run so
/// the merged export resolves ids uniformly. Interning happens at layer
/// start-up; lookup order never affects export order (ids are positional).
class NameTable {
 public:
  std::uint32_t intern(std::string_view name) {
    const auto it = index_.find(std::string(name));
    if (it != index_.end()) return it->second;
    names_.emplace_back(name);
    const auto id = static_cast<std::uint32_t>(names_.size() - 1);
    index_.emplace(names_.back(), id);
    return id;
  }

  std::string_view name(std::uint32_t id) const {
    return id < names_.size() ? std::string_view(names_[id]) : std::string_view("?");
  }
  std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> index_;
};

/// Bounded ring of TelemetryEvents; overwrites the oldest when full.
class EventRing {
 public:
  explicit EventRing(std::size_t capacity) : buf_(capacity == 0 ? 1 : capacity) {}

  void push(const TelemetryEvent& e) {
    if (size_ < buf_.size()) {
      buf_[(head_ + size_) % buf_.size()] = e;
      ++size_;
    } else {
      buf_[head_] = e;
      head_ = (head_ + 1) % buf_.size();
      ++dropped_;
    }
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buf_.size(); }
  /// Events overwritten since the ring filled up.
  std::uint64_t dropped() const { return dropped_; }

  /// i-th surviving event, oldest first.
  const TelemetryEvent& at(std::size_t i) const { return buf_[(head_ + i) % buf_.size()]; }

 private:
  std::vector<TelemetryEvent> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace msw
