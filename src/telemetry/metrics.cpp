#include "telemetry/metrics.hpp"

#include <algorithm>
#include <bit>

namespace msw {

void MetricsRegistry::Histogram::record(std::uint64_t v) {
  const auto bucket = static_cast<std::size_t>(std::bit_width(v));  // 0 -> 0, else 1+log2
  buckets_[std::min(bucket, kBuckets - 1)] += 1;
  ++count_;
  sum_ += v;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
}

double MetricsRegistry::Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_ - 1);
  std::uint64_t below = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const double first = static_cast<double>(below);
    const double last = static_cast<double>(below + buckets_[b] - 1);
    if (target <= last) {
      // Interpolate within [lo, hi), the value range this bucket covers,
      // clamped to the observed extremes.
      const double lo = b == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << (b - 1));
      const double hi = b == 0 ? 1.0 : lo * 2.0;
      const double frac =
          buckets_[b] == 1 ? 0.0 : (target - first) / static_cast<double>(buckets_[b] - 1);
      const double v = lo + frac * (hi - lo);
      return std::clamp(v, static_cast<double>(min()), static_cast<double>(max_));
    }
    below += buckets_[b];
  }
  return static_cast<double>(max_);
}

std::string MetricsRegistry::unique_name(std::string_view name) {
  std::string candidate(name);
  int suffix = 2;
  while (by_name_.count(candidate) != 0) {
    candidate = std::string(name) + "#" + std::to_string(suffix++);
  }
  return candidate;
}

std::size_t MetricsRegistry::add_entry(std::string_view name, Kind kind, std::size_t index) {
  entries_.push_back(Entry{std::string(name), kind, index});
  by_name_.emplace(entries_.back().name, entries_.size() - 1);
  return entries_.size() - 1;
}

MetricsRegistry::Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end() && entries_[it->second].kind == Kind::kCounter) {
    return counters_[entries_[it->second].index];
  }
  counters_.emplace_back();
  add_entry(it == by_name_.end() ? std::string(name) : unique_name(name), Kind::kCounter,
            counters_.size() - 1);
  return counters_.back();
}

MetricsRegistry::Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end() && entries_[it->second].kind == Kind::kGauge) {
    return gauges_[entries_[it->second].index];
  }
  gauges_.emplace_back();
  add_entry(it == by_name_.end() ? std::string(name) : unique_name(name), Kind::kGauge,
            gauges_.size() - 1);
  return gauges_.back();
}

MetricsRegistry::Histogram& MetricsRegistry::histogram(std::string_view name) {
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end() && entries_[it->second].kind == Kind::kHistogram) {
    return histograms_[entries_[it->second].index];
  }
  histograms_.emplace_back();
  add_entry(it == by_name_.end() ? std::string(name) : unique_name(name), Kind::kHistogram,
            histograms_.size() - 1);
  return histograms_.back();
}

void MetricsRegistry::attach_counter(std::string_view name, const std::uint64_t* src) {
  externals_.push_back(src);
  add_entry(unique_name(name), Kind::kExternal, externals_.size() - 1);
}

double MetricsRegistry::value_of(const Entry& e) const {
  switch (e.kind) {
    case Kind::kCounter:
      return static_cast<double>(counters_[e.index].value());
    case Kind::kGauge:
      return static_cast<double>(gauges_[e.index].value());
    case Kind::kHistogram:
      return static_cast<double>(histograms_[e.index].count());
    case Kind::kExternal:
      return static_cast<double>(*externals_[e.index]);
  }
  return 0.0;
}

void MetricsRegistry::aggregate(const MetricsRegistry& other) {
  for (const Entry& e : other.entries()) {
    if (e.kind == Kind::kGauge || e.kind == Kind::kHistogram) continue;
    // Strip any "#k" de-duplication suffix so both instances of one layer
    // type fold into a single total.
    std::string name = e.name;
    const auto hash = name.rfind('#');
    if (hash != std::string::npos) name.resize(hash);
    counter(name).inc(static_cast<std::uint64_t>(other.value_of(e)));
  }
}

}  // namespace msw
