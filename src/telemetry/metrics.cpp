#include "telemetry/metrics.hpp"

#include <algorithm>
#include <bit>

namespace msw {

std::size_t MetricsRegistry::Histogram::bucket_of(std::uint64_t v) {
  // Octave index: 0 for the exact range [0,8), else bit_width beyond the
  // low kSubBits bits. Max input maps to bucket 495, so no clamp is needed.
  const auto e = static_cast<std::size_t>(std::bit_width(v >> kSubBits));
  const auto shift = e - static_cast<std::size_t>(e != 0);
  return (e << kSubBits) + static_cast<std::size_t>((v >> shift) & 7);
}

std::uint64_t MetricsRegistry::Histogram::bucket_lo(std::size_t b) {
  const std::size_t e = b >> kSubBits;
  const std::uint64_t s = b & 7;
  return e == 0 ? s : (std::uint64_t{8} + s) << (e - 1);
}

std::uint64_t MetricsRegistry::Histogram::bucket_width(std::size_t b) {
  const std::size_t e = b >> kSubBits;
  return e == 0 ? 1 : std::uint64_t{1} << (e - 1);
}

void MetricsRegistry::Histogram::record(std::uint64_t v) {
  buckets_[bucket_of(v)] += 1;
  ++count_;
  sum_ += v;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
}

double MetricsRegistry::Histogram::percentile_from(const std::uint64_t* buckets,
                                                   std::uint64_t count, std::uint64_t min,
                                                   std::uint64_t max, double p) {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count - 1);
  std::uint64_t below = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const double first = static_cast<double>(below);
    const double last = static_cast<double>(below + buckets[b] - 1);
    if (target <= last) {
      // Interpolate within [lo, lo+width), the value range this sub-bucket
      // covers, clamped to the observed extremes. Doubles, because the top
      // bucket's upper edge (2^64) overflows std::uint64_t.
      const double lo = static_cast<double>(bucket_lo(b));
      const double width = static_cast<double>(bucket_width(b));
      const double frac =
          buckets[b] == 1 ? 0.0 : (target - first) / static_cast<double>(buckets[b] - 1);
      const double v = lo + frac * width;
      return std::clamp(v, static_cast<double>(min), static_cast<double>(max));
    }
    below += buckets[b];
  }
  return static_cast<double>(max);
}

double MetricsRegistry::Histogram::percentile(double p) const {
  return percentile_from(buckets_, count_, min(), max_, p);
}

std::string MetricsRegistry::unique_name(std::string_view name) {
  std::string candidate(name);
  int suffix = 2;
  while (by_name_.count(candidate) != 0) {
    candidate = std::string(name) + "#" + std::to_string(suffix++);
  }
  return candidate;
}

std::size_t MetricsRegistry::add_entry(std::string_view name, Kind kind, std::size_t index) {
  entries_.push_back(Entry{std::string(name), kind, index});
  by_name_.emplace(entries_.back().name, entries_.size() - 1);
  return entries_.size() - 1;
}

MetricsRegistry::Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end() && entries_[it->second].kind == Kind::kCounter) {
    return counters_[entries_[it->second].index];
  }
  counters_.emplace_back();
  add_entry(it == by_name_.end() ? std::string(name) : unique_name(name), Kind::kCounter,
            counters_.size() - 1);
  return counters_.back();
}

MetricsRegistry::Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end() && entries_[it->second].kind == Kind::kGauge) {
    return gauges_[entries_[it->second].index];
  }
  gauges_.emplace_back();
  add_entry(it == by_name_.end() ? std::string(name) : unique_name(name), Kind::kGauge,
            gauges_.size() - 1);
  return gauges_.back();
}

MetricsRegistry::Histogram& MetricsRegistry::histogram(std::string_view name) {
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end() && entries_[it->second].kind == Kind::kHistogram) {
    return histograms_[entries_[it->second].index];
  }
  histograms_.emplace_back();
  add_entry(it == by_name_.end() ? std::string(name) : unique_name(name), Kind::kHistogram,
            histograms_.size() - 1);
  return histograms_.back();
}

void MetricsRegistry::attach_counter(std::string_view name, const std::uint64_t* src) {
  externals_.push_back(src);
  add_entry(unique_name(name), Kind::kExternal, externals_.size() - 1);
}

double MetricsRegistry::value_of(const Entry& e) const {
  switch (e.kind) {
    case Kind::kCounter:
      return static_cast<double>(counters_[e.index].value());
    case Kind::kGauge:
      return static_cast<double>(gauges_[e.index].value());
    case Kind::kHistogram:
      return static_cast<double>(histograms_[e.index].count());
    case Kind::kExternal:
      return static_cast<double>(*externals_[e.index]);
  }
  return 0.0;
}

const MetricsRegistry::Entry* MetricsRegistry::find(std::string_view name) const {
  const std::size_t i = index_of(name);
  return i == npos ? nullptr : &entries_[i];
}

std::size_t MetricsRegistry::index_of(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? npos : it->second;
}

void MetricsView::bind(const MetricsRegistry* reg) {
  reg_ = reg;
  for (Slot& s : slots_) s.entry = MetricsRegistry::npos;
}

std::size_t MetricsView::add(std::string_view name) {
  slots_.push_back(Slot{std::string(name), MetricsRegistry::npos});
  return slots_.size() - 1;
}

const MetricsRegistry::Entry* MetricsView::resolve(std::size_t slot) const {
  if (reg_ == nullptr || slot >= slots_.size()) return nullptr;
  Slot& s = slots_[slot];
  if (s.entry == MetricsRegistry::npos) s.entry = reg_->index_of(s.name);
  if (s.entry == MetricsRegistry::npos) return nullptr;
  return &reg_->entries()[s.entry];
}

double MetricsView::read(std::size_t slot) const {
  const MetricsRegistry::Entry* e = resolve(slot);
  return e == nullptr ? 0.0 : reg_->value_of(*e);
}

const MetricsRegistry::Histogram* MetricsView::histogram(std::size_t slot) const {
  const MetricsRegistry::Entry* e = resolve(slot);
  return e == nullptr ? nullptr : reg_->histogram_of(*e);
}

void MetricsRegistry::aggregate(const MetricsRegistry& other) {
  for (const Entry& e : other.entries()) {
    if (e.kind == Kind::kGauge || e.kind == Kind::kHistogram) continue;
    // Strip any "#k" de-duplication suffix so both instances of one layer
    // type fold into a single total.
    std::string name = e.name;
    const auto hash = name.rfind('#');
    if (hash != std::string::npos) name.resize(hash);
    counter(name).inc(static_cast<std::uint64_t>(other.value_of(e)));
  }
}

}  // namespace msw
