// Simulation-wide telemetry aggregation point.
//
// The hub owns one MetricsRegistry per node (handed to the node's Stack at
// construction), one global registry (network + scheduler counters attach
// here), one Tracer per node, and the shared NameTable. A Simulation owns
// exactly one hub; exporters (telemetry/export.hpp) walk it to produce the
// JSONL dump, the Chrome trace, the metrics summary, and the flight
// record.
//
// Tracing is off by default — tracers exist but have no ring, so span
// emission is a single branch. enable_tracing() arms every tracer (current
// and future) with a bounded ring of the given capacity.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "telemetry/clock.hpp"
#include "telemetry/events.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tracer.hpp"

namespace msw {

class Network;

class TelemetryHub {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 4096;

  TelemetryHub() = default;
  TelemetryHub(const TelemetryHub&) = delete;
  TelemetryHub& operator=(const TelemetryHub&) = delete;

  /// Clock used to stamp events: the Simulation's scheduler (sim domain) or
  /// the runtime's wall clock (wall domain). Events emitted by tracers
  /// created before this call keep the old clock, so attach before wiring.
  void attach_clock(const TelemetryClock* clock, ClockDomain domain = ClockDomain::kSim) {
    clock_ = clock;
    clock_domain_ = domain;
  }
  /// Whether this run's timestamps are simulated or wall-clock time.
  ClockDomain clock_domain() const { return clock_domain_; }
  /// Network supplying node incarnations (and whose NetStats feed the
  /// global registry via Network::bind_metrics). Last writer wins when a
  /// simulation runs several networks.
  void attach_network(const Network* net);
  const Network* network() const { return net_; }

  /// Arm every tracer with a bounded per-node ring.
  void enable_tracing(std::size_t ring_capacity = kDefaultRingCapacity);
  bool tracing() const { return tracing_; }
  std::size_t ring_capacity() const { return ring_capacity_; }

  /// Attach a streaming sink to every tracer (current and future). The sink
  /// sees each event at emission time regardless of whether rings are armed;
  /// it must outlive the hub or be detached first. One sink at a time.
  void attach_sink(TelemetrySink* sink);
  void detach_sink() { attach_sink(nullptr); }
  TelemetrySink* sink() const { return sink_; }

  /// Per-node accessors create on first use; references stay stable.
  Tracer& tracer(std::uint32_t node);
  MetricsRegistry& node_metrics(std::uint32_t node);
  /// Simulation-scope registry (network, scheduler).
  MetricsRegistry& global() { return global_; }
  const MetricsRegistry& global() const { return global_; }

  NameTable& names() { return names_; }
  const NameTable& names() const { return names_; }

  /// Executor shard a node is pinned to in runtime (wall-domain) runs.
  /// RtGroup fills this during wiring; the Chrome exporter uses it to lay
  /// rt spans out on one track group per EventLoop thread (the per-shard
  /// flight view). Empty for pure sim runs.
  void set_node_shard(std::uint32_t node, std::uint32_t shard) { node_shards_[node] = shard; }
  const std::map<std::uint32_t, std::uint32_t>& node_shards() const { return node_shards_; }

  /// Node ids with any telemetry state, ascending.
  std::vector<std::uint32_t> nodes() const;
  const Tracer* find_tracer(std::uint32_t node) const;
  const MetricsRegistry* find_node_metrics(std::uint32_t node) const;

  /// Sum of all per-node registries plus the global one — the
  /// per-Simulation aggregate view.
  MetricsRegistry aggregate_metrics() const;

  /// Total events currently held across all rings.
  std::size_t total_events() const;

 private:
  NameTable names_;
  MetricsRegistry global_;
  std::map<std::uint32_t, std::unique_ptr<Tracer>> tracers_;
  std::map<std::uint32_t, std::unique_ptr<MetricsRegistry>> node_metrics_;
  std::map<std::uint32_t, std::uint32_t> node_shards_;
  const TelemetryClock* clock_ = nullptr;
  ClockDomain clock_domain_ = ClockDomain::kSim;
  const Network* net_ = nullptr;
  TelemetrySink* sink_ = nullptr;
  bool tracing_ = false;
  std::size_t ring_capacity_ = kDefaultRingCapacity;
};

}  // namespace msw
