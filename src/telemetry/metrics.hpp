// Per-node metrics registry: named counters / gauges / histograms with
// allocation-free hot-path handles.
//
// A MetricsRegistry is the single export sink for a node's (or the
// simulation's) counters. Instruments are created once — by name, at wiring
// time — and the returned reference is a stable handle: recording through
// it is a plain integer operation with no lookup, lock, or allocation.
// Existing hand-rolled counter blobs (NetStats, per-layer Stats structs)
// plug in through attach_counter(), which registers a *view* of an external
// std::uint64_t so the hot path that already increments the field pays
// nothing extra and exporters still see one uniform namespace.
//
// Enumeration order is registration order, which is construction order and
// therefore deterministic for a given build — two identical seeded runs
// export byte-identical metric listings.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace msw {

class MetricsRegistry {
 public:
  /// Monotonic event count.
  class Counter {
   public:
    void inc(std::uint64_t n = 1) { v_ += n; }
    std::uint64_t value() const { return v_; }

   private:
    std::uint64_t v_ = 0;
  };

  /// Instantaneous level (buffer depth, queue length) with a high-water mark.
  class Gauge {
   public:
    void set(std::int64_t v) {
      v_ = v;
      if (v > max_) max_ = v;
    }
    void add(std::int64_t d) { set(v_ + d); }
    std::int64_t value() const { return v_; }
    std::int64_t max() const { return max_; }

   private:
    std::int64_t v_ = 0;
    std::int64_t max_ = 0;
  };

  /// Fixed-footprint log-linear histogram of unsigned samples (durations in
  /// microseconds, sizes in bytes): values 0..7 get exact unit buckets;
  /// larger values land in a log2 major bucket split into 8 linear
  /// sub-buckets, so a sub-bucket spans 1/8 of its octave and quantile
  /// estimates carry at most 12.5% relative error — good enough for
  /// p50/p99/p999. record() is branch-free bucket arithmetic; percentiles
  /// are estimated by interpolating within the containing sub-bucket.
  class Histogram {
   public:
    static constexpr std::size_t kSubBits = 3;  // 8 linear sub-buckets per octave
    static constexpr std::size_t kBuckets = 496;

    void record(std::uint64_t v);
    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
    std::uint64_t max() const { return max_; }
    double mean() const { return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_; }
    /// p in [0,100]; estimate by rank over buckets, linear within a bucket.
    double percentile(double p) const;
    double p50() const { return percentile(50.0); }
    double p99() const { return percentile(99.0); }
    double p999() const { return percentile(99.9); }
    const std::uint64_t* buckets() const { return buckets_; }

    /// Bucket `b` covers values [bucket_lo(b), bucket_lo(b) + bucket_width(b)).
    static std::size_t bucket_of(std::uint64_t v);
    static std::uint64_t bucket_lo(std::size_t b);
    static std::uint64_t bucket_width(std::size_t b);
    /// Percentile estimate over a raw bucket array in buckets() layout, so
    /// snapshot readers can reconstruct quantiles without a live Histogram.
    static double percentile_from(const std::uint64_t* buckets, std::uint64_t count,
                                  std::uint64_t min, std::uint64_t max, double p);

   private:
    std::uint64_t buckets_[kBuckets] = {};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
    std::uint64_t max_ = 0;
  };

  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram, kExternal };

  /// One registered instrument, in registration order.
  struct Entry {
    std::string name;
    Kind kind;
    std::size_t index;  // into the matching instrument pool
  };

  /// Create-or-get by name. Returned references are stable for the life of
  /// the registry (instruments live in deques).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Register a read-only view of an external counter field (e.g. a
  /// NetStats or layer-Stats member). `src` must outlive the registry's
  /// exports. Duplicate names get a deterministic "#2", "#3"... suffix so
  /// two instances of one layer type in a stack stay distinguishable.
  void attach_counter(std::string_view name, const std::uint64_t* src);

  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

  /// Read-side lookup by exact registered name (no "#k" folding); nullptr
  /// when nothing registered under `name` yet. The pointer stays valid for
  /// the life of the registry but may be invalidated by later
  /// registrations — resolve to an index (entries() position) to hold on.
  const Entry* find(std::string_view name) const;
  /// entries() index of `name`, or npos when absent.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t index_of(std::string_view name) const;

  /// Current value of an entry, flattened to a double (counters/externals:
  /// the count; gauges: the level; histograms: the sample count).
  double value_of(const Entry& e) const;
  const Histogram* histogram_of(const Entry& e) const {
    return e.kind == Kind::kHistogram ? &histograms_[e.index] : nullptr;
  }
  const Gauge* gauge_of(const Entry& e) const {
    return e.kind == Kind::kGauge ? &gauges_[e.index] : nullptr;
  }

  /// Sum every counter-like entry of `other` into same-named counters here
  /// (creating them as needed) — per-Simulation aggregation over per-node
  /// registries.
  void aggregate(const MetricsRegistry& other);

 private:
  std::size_t add_entry(std::string_view name, Kind kind, std::size_t index);
  std::string unique_name(std::string_view name);

  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<const std::uint64_t*> externals_;
  std::vector<Entry> entries_;
  std::unordered_map<std::string, std::size_t> by_name_;  // name -> entries_ index
};

/// Cheap read-side view over a registry: declare the instrument names once,
/// then read current values through stable slots with no string lookups on
/// the steady path. Names that are not registered yet resolve lazily (layers
/// attach their counters in start(), which may run after the reader is
/// wired) and read as 0.0 until they appear. Consumers that sample
/// periodically — the switch policy's SignalPlane — pay one hash probe per
/// unresolved name per sample and a plain indexed load afterwards.
class MetricsView {
 public:
  MetricsView() = default;
  explicit MetricsView(const MetricsRegistry* reg) : reg_(reg) {}

  /// (Re)bind to a registry; previously added slots re-resolve against it.
  void bind(const MetricsRegistry* reg);

  /// Declare an instrument to watch; returns the slot to read through.
  std::size_t add(std::string_view name);

  std::size_t slots() const { return slots_.size(); }

  /// Current flattened value (counters/externals: count; gauges: level;
  /// histograms: sample count). 0.0 while unbound or unresolved.
  double read(std::size_t slot) const;

  /// The live histogram behind a slot, or nullptr if the slot is not a
  /// histogram (or not resolved yet).
  const MetricsRegistry::Histogram* histogram(std::size_t slot) const;

 private:
  struct Slot {
    std::string name;
    std::size_t entry = MetricsRegistry::npos;  // entries() index once resolved
  };
  const MetricsRegistry::Entry* resolve(std::size_t slot) const;

  const MetricsRegistry* reg_ = nullptr;
  mutable std::vector<Slot> slots_;
};

}  // namespace msw
