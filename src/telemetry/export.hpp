// Exporters for the telemetry plane.
//
// Three formats, all deterministic for a given run (events are ordered by
// (sim time, node, ring position) and metric listings by registration
// order), so two identical seeded runs produce byte-identical output:
//
//   - JSONL: one JSON object per event — the machine-diffable dump and the
//     flight-recorder format;
//   - Chrome trace_event JSON: open in Perfetto / chrome://tracing; each
//     node renders as a process, each TelemetryTrack as a named thread,
//     spans as complete ("X") events, instants as "i";
//   - metrics: a JSON document (global + per-node + aggregate) and a
//     one-line human summary.
//
// Span pairing: spans are emitted strictly nested per (node, track), so a
// stack suffices. A Begin still open at export time becomes a span clamped
// to the last timestamp with "unterminated": true (node crashed or the run
// stopped mid-phase); an End whose Begin was overwritten in the bounded
// ring becomes a zero-length span flagged "orphan": true.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "telemetry/hub.hpp"

namespace msw {

/// All events of all nodes, merged and time-ordered, one JSON object per
/// line. `last_n_per_node` 0 = everything; >0 keeps only each node's most
/// recent N events (flight-recorder view).
void write_events_jsonl(const TelemetryHub& hub, std::ostream& os,
                        std::size_t last_n_per_node = 0);

/// Chrome trace_event JSON (the "traceEvents" array form).
void write_chrome_trace(const TelemetryHub& hub, std::ostream& os);

/// Metrics as JSON: {"global": {...}, "nodes": {"0": {...}, ...},
/// "aggregate": {...}}. Histograms expand to count/mean/p50/p99/max.
void write_metrics_json(const TelemetryHub& hub, std::ostream& os);

/// One-line human summary of the aggregate registry (top counters).
std::string metrics_summary_line(const TelemetryHub& hub);

/// Flight record: a header line ({"flight_recorder": ..., "reason": ...})
/// followed by the last `last_n_per_node` events per node in JSONL form.
void write_flight_record(const TelemetryHub& hub, std::ostream& os, const std::string& reason,
                         std::size_t last_n_per_node = 256);

}  // namespace msw
