// Clock boundary for the telemetry plane.
//
// Tracers stamp events through this interface so the same layer code can
// run under the deterministic simulator (timestamps are simulated
// microseconds, byte-reproducible for a seed) or under the real-transport
// runtime (timestamps are monotonic wall-clock microseconds since runtime
// start). A TelemetryHub records which domain its clock measures so
// exporters and humans can tell a sim trace from a wall trace.
#pragma once

#include "sim/time.hpp"

namespace msw {

class TelemetryClock {
 public:
  virtual ~TelemetryClock() = default;

  /// Current time in microseconds. Sim domain: simulated time since
  /// simulation start. Wall domain: monotonic time since runtime start.
  virtual Time telemetry_now() const = 0;
};

/// Which physical quantity a run's timestamps measure.
enum class ClockDomain : std::uint8_t {
  kSim = 0,   // deterministic simulated microseconds
  kWall = 1,  // monotonic wall-clock microseconds
};

constexpr const char* to_string(ClockDomain d) {
  return d == ClockDomain::kSim ? "sim" : "wall";
}

}  // namespace msw
