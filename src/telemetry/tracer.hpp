// Per-node span/instant emitter.
//
// A Tracer is cheap enough to hand to every layer unconditionally: while
// tracing is disabled (no ring attached) every emit call is one branch on a
// null pointer, and when the build sets MSW_TELEMETRY_ENABLED=0 the calls
// compile away entirely — the guard for "telemetry adds zero instructions
// to the hot path" builds.
//
// Events are stamped with the simulated clock, the node's current
// incarnation (pulled from the Network, so crash/restart boundaries are
// visible in the trace), and the SP epoch last published via set_epoch.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "telemetry/clock.hpp"
#include "telemetry/events.hpp"

#ifndef MSW_TELEMETRY_ENABLED
#define MSW_TELEMETRY_ENABLED 1
#endif

namespace msw {

class Network;

class Tracer {
 public:
  Tracer() = default;

  /// Shared fallback for stacks wired without telemetry: interning returns
  /// 0, emission is a no-op.
  static Tracer& disabled();

  /// Wire identity and clock sources. `names` may be shared across nodes;
  /// `net` supplies the incarnation stamp and may be null. The clock may be
  /// a sim scheduler or a wall clock (see telemetry/clock.hpp).
  void configure(NameTable* names, const TelemetryClock* clock, std::uint32_t node,
                 const Network* net);

  /// Attach a bounded ring and start recording.
  void enable(std::size_t ring_capacity);
  void disable() { ring_.reset(); }
  bool enabled() const { return ring_ != nullptr; }

  /// Attach a streaming sink (monitors). Independent of the ring: events
  /// flow to the sink even when no ring is armed, so a soak run can monitor
  /// without buffering history. Null detaches.
  void set_sink(TelemetrySink* sink) { sink_ = sink; }
  TelemetrySink* sink() const { return sink_; }

  std::uint32_t node() const { return node_; }
  std::uint32_t intern(std::string_view name) { return names_ ? names_->intern(name) : 0; }

  void set_epoch(std::uint64_t e) { epoch_ = e; }
  std::uint64_t epoch() const { return epoch_; }

#if MSW_TELEMETRY_ENABLED
  void begin(std::uint32_t name, TelemetryTrack track = TelemetryTrack::kData,
             std::uint64_t arg = 0, std::uint64_t arg2 = 0) {
    if (ring_ || sink_) emit(EventKind::kBegin, name, track, arg, arg2);
  }
  void end(std::uint32_t name, TelemetryTrack track = TelemetryTrack::kData,
           std::uint64_t arg = 0, std::uint64_t arg2 = 0) {
    if (ring_ || sink_) emit(EventKind::kEnd, name, track, arg, arg2);
  }
  void instant(std::uint32_t name, TelemetryTrack track = TelemetryTrack::kData,
               std::uint64_t arg = 0, std::uint64_t arg2 = 0) {
    if (ring_ || sink_) emit(EventKind::kInstant, name, track, arg, arg2);
  }
#else
  void begin(std::uint32_t, TelemetryTrack = TelemetryTrack::kData, std::uint64_t = 0,
             std::uint64_t = 0) {}
  void end(std::uint32_t, TelemetryTrack = TelemetryTrack::kData, std::uint64_t = 0,
           std::uint64_t = 0) {}
  void instant(std::uint32_t, TelemetryTrack = TelemetryTrack::kData, std::uint64_t = 0,
               std::uint64_t = 0) {}
#endif

  const EventRing* ring() const { return ring_.get(); }
  const NameTable* names() const { return names_; }

 private:
  void emit(EventKind kind, std::uint32_t name, TelemetryTrack track, std::uint64_t arg,
            std::uint64_t arg2);

  std::unique_ptr<EventRing> ring_;
  TelemetrySink* sink_ = nullptr;
  NameTable* names_ = nullptr;
  const TelemetryClock* clock_ = nullptr;
  const Network* net_ = nullptr;
  std::uint32_t node_ = 0;
  std::uint64_t epoch_ = 0;
};

/// RAII span: begins on construction, ends on destruction. For spans that
/// open and close inside one call frame.
class SpanScope {
 public:
  SpanScope(Tracer& t, std::uint32_t name, TelemetryTrack track = TelemetryTrack::kData,
            std::uint64_t arg = 0)
      : t_(t), name_(name), track_(track) {
    t_.begin(name_, track_, arg);
  }
  ~SpanScope() { t_.end(name_, track_); }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  Tracer& t_;
  std::uint32_t name_;
  TelemetryTrack track_;
};

}  // namespace msw
