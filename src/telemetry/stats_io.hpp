// Periodic stats snapshots and their byte-stable JSONL serialization.
//
// A StatsSnapshot is one flattened observation of a MetricsRegistry at a
// point in time: scalar values (counters, externals, gauges + their
// high-water marks) plus full histogram summaries. The rt stats plane
// decodes snapshots out of seqlock buffers (rt/stats/), the soak harness
// builds them straight from its aggregate registry, and both serialize
// through write_stats_line so `--stats-out` time-series files share one
// format regardless of domain.
//
// Serialization rules mirror the PR-3 exporters: keys appear in registry
// registration order (deterministic per build), and doubles are printed
// with fixed 3-decimal precision, so two identical runs produce
// byte-identical lines (the golden-line test pins this).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace msw {

struct StatsSnapshot {
  struct Scalar {
    std::string name;
    std::uint64_t value = 0;
  };
  struct Hist {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
    /// Raw bucket array (Histogram::kBuckets entries) when the producer kept
    /// it — lets readers merge histograms across shards. Not serialized.
    std::vector<std::uint64_t> buckets;
  };

  std::string source;      // "shard0", "transport", "soak", ...
  std::uint64_t t_us = 0;  // timestamp in the producer's clock domain (µs)
  std::vector<Scalar> scalars;
  std::vector<Hist> hists;

  const Scalar* find_scalar(std::string_view name) const;
  const Hist* find_hist(std::string_view name) const;
};

/// Flatten a registry into a snapshot: counters/externals and gauges (each
/// gauge also contributes "<name>.max") become scalars, histograms become
/// summaries with raw buckets retained.
StatsSnapshot snapshot_from_registry(std::string source, std::uint64_t t_us,
                                     const MetricsRegistry& reg);

/// One JSONL object:
///   {"t_us":N,"src":"...","metrics":{...},"hist":{"name":{...}}}
/// Byte-stable for identical snapshots; trailing newline included.
void write_stats_line(std::ostream& os, const StatsSnapshot& snap);

/// Summarize raw buckets (plus count/min/max) into a Hist — shared by the
/// seqlock decoder and cross-shard merges.
StatsSnapshot::Hist summarize_hist_buckets(std::string name, const std::uint64_t* buckets,
                                           std::uint64_t count, std::uint64_t sum,
                                           std::uint64_t min, std::uint64_t max);

/// Merge every histogram whose name starts with `prefix` across snapshots by
/// summing raw bucket arrays, then re-estimate the quantiles — how per-shard
/// latency histograms combine into one system-wide view. The merged sum (and
/// so mean) is not reconstructed; quantiles, count, min, max are.
StatsSnapshot::Hist merge_hists(const std::vector<StatsSnapshot>& snaps,
                                std::string_view prefix);

}  // namespace msw
