#include "telemetry/hub.hpp"

#include <algorithm>

namespace msw {

void TelemetryHub::attach_network(const Network* net) {
  net_ = net;
  for (auto& [node, tracer] : tracers_) {
    tracer->configure(&names_, clock_, node, net_);
  }
}

void TelemetryHub::enable_tracing(std::size_t ring_capacity) {
  tracing_ = true;
  ring_capacity_ = ring_capacity == 0 ? 1 : ring_capacity;
  for (auto& [node, tracer] : tracers_) {
    if (!tracer->enabled()) tracer->enable(ring_capacity_);
  }
}

void TelemetryHub::attach_sink(TelemetrySink* sink) {
  sink_ = sink;
  for (auto& [node, tracer] : tracers_) tracer->set_sink(sink_);
}

Tracer& TelemetryHub::tracer(std::uint32_t node) {
  auto it = tracers_.find(node);
  if (it == tracers_.end()) {
    it = tracers_.emplace(node, std::make_unique<Tracer>()).first;
    it->second->configure(&names_, clock_, node, net_);
    if (tracing_) it->second->enable(ring_capacity_);
    if (sink_) it->second->set_sink(sink_);
  }
  return *it->second;
}

MetricsRegistry& TelemetryHub::node_metrics(std::uint32_t node) {
  auto it = node_metrics_.find(node);
  if (it == node_metrics_.end()) {
    it = node_metrics_.emplace(node, std::make_unique<MetricsRegistry>()).first;
  }
  return *it->second;
}

std::vector<std::uint32_t> TelemetryHub::nodes() const {
  std::vector<std::uint32_t> out;
  for (const auto& [node, tracer] : tracers_) out.push_back(node);
  for (const auto& [node, reg] : node_metrics_) {
    if (tracers_.count(node) == 0) out.push_back(node);
  }
  std::sort(out.begin(), out.end());
  return out;
}

const Tracer* TelemetryHub::find_tracer(std::uint32_t node) const {
  const auto it = tracers_.find(node);
  return it == tracers_.end() ? nullptr : it->second.get();
}

const MetricsRegistry* TelemetryHub::find_node_metrics(std::uint32_t node) const {
  const auto it = node_metrics_.find(node);
  return it == node_metrics_.end() ? nullptr : it->second.get();
}

MetricsRegistry TelemetryHub::aggregate_metrics() const {
  MetricsRegistry total;
  total.aggregate(global_);
  for (const auto& [node, reg] : node_metrics_) total.aggregate(*reg);
  return total;
}

std::size_t TelemetryHub::total_events() const {
  std::size_t n = 0;
  for (const auto& [node, tracer] : tracers_) {
    if (tracer->ring()) n += tracer->ring()->size();
  }
  return n;
}

}  // namespace msw
