#include "telemetry/export.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

namespace msw {
namespace {

const char* kind_str(EventKind k) {
  switch (k) {
    case EventKind::kBegin:
      return "B";
    case EventKind::kEnd:
      return "E";
    case EventKind::kInstant:
      return "I";
  }
  return "?";
}

const char* track_str(TelemetryTrack t) {
  switch (t) {
    case TelemetryTrack::kData:
      return "data";
    case TelemetryTrack::kControl:
      return "control";
    case TelemetryTrack::kMembership:
      return "membership";
  }
  return "?";
}

/// JSON string escaping for the small, known-safe name set.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out.push_back(c);
    }
  }
  return out;
}

struct MergedEvent {
  TelemetryEvent e;
  std::size_t ring_pos;  // tiebreak within equal timestamps
};

/// Collect every node's events (optionally only the last N per node) in a
/// deterministic order: (time, node, ring position).
std::vector<MergedEvent> merged_events(const TelemetryHub& hub, std::size_t last_n_per_node) {
  std::vector<MergedEvent> out;
  for (const std::uint32_t node : hub.nodes()) {
    const Tracer* tr = hub.find_tracer(node);
    if (tr == nullptr || tr->ring() == nullptr) continue;
    const EventRing& ring = *tr->ring();
    const std::size_t n = ring.size();
    const std::size_t first =
        last_n_per_node > 0 && n > last_n_per_node ? n - last_n_per_node : 0;
    for (std::size_t i = first; i < n; ++i) out.push_back(MergedEvent{ring.at(i), i});
  }
  std::stable_sort(out.begin(), out.end(), [](const MergedEvent& a, const MergedEvent& b) {
    if (a.e.t != b.e.t) return a.e.t < b.e.t;
    if (a.e.node != b.e.node) return a.e.node < b.e.node;
    return a.ring_pos < b.ring_pos;
  });
  return out;
}

void write_event_line(const TelemetryHub& hub, std::ostream& os, const TelemetryEvent& e) {
  os << "{\"t\":" << e.t << ",\"node\":" << e.node << ",\"kind\":\"" << kind_str(e.kind)
     << "\",\"track\":\"" << track_str(e.track) << "\",\"name\":\""
     << json_escape(hub.names().name(e.name)) << "\",\"epoch\":" << e.epoch
     << ",\"inc\":" << e.incarnation << ",\"arg\":" << e.arg;
  // arg2 is omitted when zero so pre-existing golden lines stay byte-stable.
  if (e.arg2 != 0) os << ",\"arg2\":" << e.arg2;
  os << "}\n";
}

void write_registry_json(const MetricsRegistry& reg, std::ostream& os) {
  os << "{";
  bool first = true;
  for (const auto& entry : reg.entries()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(entry.name) << "\":";
    if (const auto* h = reg.histogram_of(entry)) {
      os << "{\"count\":" << h->count() << ",\"mean\":" << h->mean() << ",\"p50\":" << h->p50()
         << ",\"p99\":" << h->p99() << ",\"max\":" << h->max() << "}";
    } else if (const auto* g = reg.gauge_of(entry)) {
      os << "{\"value\":" << g->value() << ",\"max\":" << g->max() << "}";
    } else {
      os << static_cast<std::uint64_t>(reg.value_of(entry));
    }
  }
  os << "}";
}

}  // namespace

void write_events_jsonl(const TelemetryHub& hub, std::ostream& os,
                        std::size_t last_n_per_node) {
  for (const MergedEvent& m : merged_events(hub, last_n_per_node)) {
    write_event_line(hub, os, m.e);
  }
}

void write_chrome_trace(const TelemetryHub& hub, std::ostream& os) {
  const std::vector<MergedEvent> events = merged_events(hub, 0);
  Time horizon = 0;
  for (const MergedEvent& m : events) horizon = std::max(horizon, m.e.t);

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& line) {
    if (!first) os << ",";
    first = false;
    os << "\n" << line;
  };

  // Process/thread naming metadata: one process per node, one thread per
  // track actually used by that node.
  std::vector<std::pair<std::uint32_t, std::uint8_t>> named_tracks;
  for (const MergedEvent& m : events) {
    const auto key = std::make_pair(m.e.node, static_cast<std::uint8_t>(m.e.track));
    if (std::find(named_tracks.begin(), named_tracks.end(), key) != named_tracks.end()) {
      continue;
    }
    named_tracks.push_back(key);
  }
  std::sort(named_tracks.begin(), named_tracks.end());
  std::uint32_t last_node = ~std::uint32_t{0};
  for (const auto& [node, track] : named_tracks) {
    std::ostringstream line;
    if (node != last_node) {
      line << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << node
           << ",\"tid\":0,\"args\":{\"name\":\"node " << node << "\"}}";
      emit(line.str());
      line.str({});
      last_node = node;
    }
    line << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << node
         << ",\"tid\":" << static_cast<int>(track) << ",\"args\":{\"name\":\""
         << track_str(static_cast<TelemetryTrack>(track)) << "\"}}";
    emit(line.str());
  }

  // Shard flight view: when the hub knows node -> shard pinning (runtime
  // runs — RtGroup registers it), every event is mirrored into a "shard k"
  // process (pid = kShardViewPidBase + shard, tid = node), so Perfetto
  // shows one process group per EventLoop thread and shard imbalance reads
  // directly off the wall-clock timeline. Protocol phases of different
  // nodes on one shard can overlap in wall time (they are logical spans,
  // not CPU spans), hence one tid per node inside the shard group rather
  // than a single collapsed track.
  const auto& shard_map = hub.node_shards();
  constexpr std::int64_t kShardViewPidBase = 1'000'000;
  if (!shard_map.empty()) {
    std::vector<std::uint32_t> shard_ids;
    for (const auto& [node, shard] : shard_map) shard_ids.push_back(shard);
    std::sort(shard_ids.begin(), shard_ids.end());
    shard_ids.erase(std::unique(shard_ids.begin(), shard_ids.end()), shard_ids.end());
    for (const std::uint32_t shard : shard_ids) {
      std::ostringstream line;
      line << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":"
           << kShardViewPidBase + shard << ",\"tid\":0,\"args\":{\"name\":\"shard " << shard
           << " (executor)\"}}";
      emit(line.str());
    }
    for (const auto& [node, shard] : shard_map) {
      std::ostringstream line;
      line << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << kShardViewPidBase + shard
           << ",\"tid\":" << node << ",\"args\":{\"name\":\"node " << node << "\"}}";
      emit(line.str());
    }
  }
  /// Emit an event line under the node's own process, plus the shard-view
  /// mirror when the node is pinned. `prefix` ends just before "pid":,
  /// `suffix` starts at its trailing comma.
  const auto emit_dual = [&](const std::string& prefix, std::uint32_t node, int tid,
                             const std::string& suffix) {
    emit(prefix + "\"pid\":" + std::to_string(node) + ",\"tid\":" + std::to_string(tid) +
         suffix);
    const auto it = shard_map.find(node);
    if (it != shard_map.end()) {
      emit(prefix + "\"pid\":" + std::to_string(kShardViewPidBase + it->second) +
           ",\"tid\":" + std::to_string(node) + suffix);
    }
  };

  // Pair begin/end per (node, track) with a stack; emission discipline is
  // strictly nested per track, so name mismatches mean ring truncation.
  struct Open {
    TelemetryEvent begin;
  };
  std::map<std::pair<std::uint32_t, std::uint8_t>, std::vector<Open>> stacks;
  const auto emit_span = [&](const TelemetryEvent& b, Time end_t, bool unterminated,
                             std::uint64_t end_arg) {
    std::ostringstream prefix;
    prefix << "{\"ph\":\"X\",\"name\":\"" << json_escape(hub.names().name(b.name))
           << "\",\"cat\":\"" << track_str(b.track) << "\",";
    std::ostringstream suffix;
    suffix << ",\"ts\":" << b.t << ",\"dur\":" << std::max<Time>(end_t - b.t, 0)
           << ",\"args\":{\"epoch\":" << b.epoch << ",\"inc\":" << b.incarnation
           << ",\"arg\":" << b.arg << ",\"end_arg\":" << end_arg;
    if (unterminated) suffix << ",\"unterminated\":true";
    suffix << "}}";
    emit_dual(prefix.str(), b.node, static_cast<int>(b.track), suffix.str());
  };

  for (const MergedEvent& m : events) {
    const TelemetryEvent& e = m.e;
    const auto key = std::make_pair(e.node, static_cast<std::uint8_t>(e.track));
    switch (e.kind) {
      case EventKind::kBegin:
        stacks[key].push_back(Open{e});
        break;
      case EventKind::kEnd: {
        auto& stack = stacks[key];
        if (!stack.empty() && stack.back().begin.name == e.name) {
          emit_span(stack.back().begin, e.t, false, e.arg);
          stack.pop_back();
        } else {
          // Begin lost to ring wraparound (or to a crash that predates the
          // ring): render a zero-length marker so the End stays visible.
          std::ostringstream prefix;
          prefix << "{\"ph\":\"X\",\"name\":\"" << json_escape(hub.names().name(e.name))
                 << "\",\"cat\":\"" << track_str(e.track) << "\",";
          std::ostringstream suffix;
          suffix << ",\"ts\":" << e.t << ",\"dur\":0,\"args\":{\"epoch\":" << e.epoch
                 << ",\"inc\":" << e.incarnation << ",\"arg\":" << e.arg
                 << ",\"orphan\":true}}";
          emit_dual(prefix.str(), e.node, static_cast<int>(e.track), suffix.str());
        }
        break;
      }
      case EventKind::kInstant: {
        std::ostringstream prefix;
        prefix << "{\"ph\":\"i\",\"s\":\"t\",\"name\":\""
               << json_escape(hub.names().name(e.name)) << "\",\"cat\":\""
               << track_str(e.track) << "\",";
        std::ostringstream suffix;
        suffix << ",\"ts\":" << e.t << ",\"args\":{\"epoch\":" << e.epoch
               << ",\"inc\":" << e.incarnation << ",\"arg\":" << e.arg << "}}";
        emit_dual(prefix.str(), e.node, static_cast<int>(e.track), suffix.str());
        break;
      }
    }
  }

  // Spans still open at export time (crash mid-phase, or the run simply
  // stopped): clamp to the horizon and flag.
  for (auto& [key, stack] : stacks) {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      emit_span(it->begin, std::max(horizon, it->begin.t), true, 0);
    }
  }

  os << "\n]}\n";
}

void write_metrics_json(const TelemetryHub& hub, std::ostream& os) {
  os << "{\"global\":";
  write_registry_json(hub.global(), os);
  os << ",\"nodes\":{";
  bool first = true;
  for (const std::uint32_t node : hub.nodes()) {
    const MetricsRegistry* reg = hub.find_node_metrics(node);
    if (reg == nullptr) continue;
    if (!first) os << ",";
    first = false;
    os << "\"" << node << "\":";
    write_registry_json(*reg, os);
  }
  os << "},\"aggregate\":";
  const MetricsRegistry total = hub.aggregate_metrics();
  write_registry_json(total, os);
  os << ",\"trace\":{\"events\":" << hub.total_events() << ",\"names\":" << hub.names().size()
     << "}}\n";
}

std::string metrics_summary_line(const TelemetryHub& hub) {
  const MetricsRegistry total = hub.aggregate_metrics();
  std::ostringstream os;
  os << "telemetry:";
  std::size_t shown = 0;
  for (const auto& entry : total.entries()) {
    const auto v = static_cast<std::uint64_t>(total.value_of(entry));
    if (v == 0) continue;
    os << " " << entry.name << "=" << v;
    if (++shown >= 12) {
      os << " ...(" << total.entries().size() << " metrics)";
      break;
    }
  }
  if (shown == 0) os << " (no nonzero metrics)";
  return os.str();
}

void write_flight_record(const TelemetryHub& hub, std::ostream& os, const std::string& reason,
                         std::size_t last_n_per_node) {
  std::uint64_t dropped = 0;
  for (const std::uint32_t node : hub.nodes()) {
    const Tracer* tr = hub.find_tracer(node);
    if (tr != nullptr && tr->ring() != nullptr) dropped += tr->ring()->dropped();
  }
  os << "{\"flight_recorder\":true,\"reason\":\"" << json_escape(reason)
     << "\",\"last_n_per_node\":" << last_n_per_node << ",\"ring_dropped\":" << dropped
     << ",\"summary\":\"" << json_escape(metrics_summary_line(hub)) << "\"}\n";
  write_events_jsonl(hub, os, last_n_per_node);
}

}  // namespace msw
