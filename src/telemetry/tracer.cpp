#include "telemetry/tracer.hpp"

#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace msw {

Tracer& Tracer::disabled() {
  static Tracer t;
  return t;
}

void Tracer::configure(NameTable* names, const TelemetryClock* clock, std::uint32_t node,
                       const Network* net) {
  names_ = names;
  clock_ = clock;
  node_ = node;
  net_ = net;
}

void Tracer::enable(std::size_t ring_capacity) {
  ring_ = std::make_unique<EventRing>(ring_capacity);
}

void Tracer::emit(EventKind kind, std::uint32_t name, TelemetryTrack track, std::uint64_t arg,
                  std::uint64_t arg2) {
  TelemetryEvent e;
  e.t = clock_ ? clock_->telemetry_now() : 0;
  e.epoch = epoch_;
  e.incarnation = net_ ? net_->incarnation(NodeId{node_}) : 0;
  e.arg = arg;
  e.arg2 = arg2;
  e.name = name;
  e.node = node_;
  e.kind = kind;
  e.track = track;
  if (ring_) ring_->push(e);
  if (sink_) sink_->on_telemetry(e);
}

}  // namespace msw
