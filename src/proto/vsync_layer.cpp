#include "proto/vsync_layer.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"
#include "util/log.hpp"

namespace msw {
namespace {

enum class Type : std::uint8_t {
  kData = 0,
  kFlushReq = 1,
  kFlushOk = 2,
  kCut = 3,
  kPass = 4,
};

}  // namespace

Bytes encode_view_body(const std::vector<std::uint32_t>& members) {
  Bytes b;
  Writer w(b);
  w.u32(static_cast<std::uint32_t>(members.size()));
  for (std::uint32_t m : members) w.u32(m);
  return b;
}

std::vector<std::uint32_t> decode_view_body(std::span<const Byte> body) {
  Reader r(body);
  const std::uint32_t n = r.u32();
  std::vector<std::uint32_t> members;
  members.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) members.push_back(r.u32());
  return members;
}

void VsyncLayer::start() {
  tr_ = &ctx().tracer();
  n_flush_ = tr_->intern("vsync.flush");
  n_view_ = tr_->intern("vsync.view_installed");
  if (MetricsRegistry* reg = ctx().metrics()) {
    reg->attach_counter("vsync.views_installed", &views_installed_);
  }
  view_members_.clear();
  for (NodeId m : ctx().members()) view_members_.push_back(m.v);
  // Every member delivers the initial view notification so captured traces
  // open with a consistent view marker.
  Message note = Message::group(encode_view_body(view_members_));
  AppHeader::push(note, AppHeader{AppHeader::Kind::kView, ctx().members().front().v, view_id_});
  ctx().deliver_up(std::move(note));
}

void VsyncLayer::down(Message m) {
  if (m.is_p2p()) {
    m.push_header([](Writer& w) { w.u8(static_cast<std::uint8_t>(Type::kPass)); });
    ctx().send_down(std::move(m));
    return;
  }
  if (flushing_) {
    queued_.push_back(std::move(m));
    return;
  }
  const std::uint64_t view = view_id_;
  const std::uint32_t origin = ctx().self().v;
  ++sent_in_view_;
  m.push_header([&](Writer& w) {
    w.u8(static_cast<std::uint8_t>(Type::kData));
    w.u64(view);
    w.u32(origin);
  });
  ctx().send_down(std::move(m));
}

void VsyncLayer::up(Message m) {
  Type type{};
  std::uint64_t view_id = 0;
  std::uint32_t origin = 0;
  std::uint64_t sent = 0;
  std::vector<std::uint32_t> member_list;
  std::map<std::uint32_t, std::uint64_t> counts;
  m.pop_header([&](Reader& r) {
    type = static_cast<Type>(r.u8());
    switch (type) {
      case Type::kData:
        view_id = r.u64();
        origin = r.u32();
        break;
      case Type::kFlushReq: {
        view_id = r.u64();
        const std::uint32_t n = r.u32();
        member_list.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) member_list.push_back(r.u32());
        break;
      }
      case Type::kFlushOk: {
        view_id = r.u64();
        origin = r.u32();
        sent = r.u64();
        const std::uint32_t n = r.u32();
        for (std::uint32_t i = 0; i < n; ++i) {
          const std::uint32_t o = r.u32();
          const std::uint64_t delivered = r.u64();
          counts.emplace(o, delivered);
        }
        break;
      }
      case Type::kCut: {
        view_id = r.u64();
        const std::uint32_t mn = r.u32();
        member_list.reserve(mn);
        for (std::uint32_t i = 0; i < mn; ++i) member_list.push_back(r.u32());
        const std::uint32_t n = r.u32();
        for (std::uint32_t i = 0; i < n; ++i) {
          const std::uint32_t member = r.u32();
          const std::uint64_t count = r.u64();
          counts.emplace(member, count);
        }
        break;
      }
      case Type::kPass:
        break;
    }
  });
  switch (type) {
    case Type::kData:
      on_data(view_id, origin, std::move(m));
      break;
    case Type::kFlushReq:
      on_flush_req(view_id, std::move(member_list));
      break;
    case Type::kFlushOk:
      on_flush_ok(view_id, origin, sent, std::move(counts));
      break;
    case Type::kCut:
      on_cut(view_id, std::move(member_list), std::move(counts));
      break;
    case Type::kPass:
      ctx().deliver_up(std::move(m));
      break;
  }
}

bool VsyncLayer::request_view_change(std::vector<std::uint32_t> new_members) {
  if (!is_coordinator() || change_in_progress_) return false;
  change_in_progress_ = true;
  const std::uint64_t new_view_id = view_id_ + 1;
  Message m = Message::group({});
  m.push_header([&](Writer& w) {
    w.u8(static_cast<std::uint8_t>(Type::kFlushReq));
    w.u64(new_view_id);
    w.u32(static_cast<std::uint32_t>(new_members.size()));
    for (std::uint32_t member : new_members) w.u32(member);
  });
  ctx().send_down(std::move(m));
  if (cfg_.flush_timeout > 0) {
    flush_timer_ = ctx().set_timer(cfg_.flush_timeout, [this, new_view_id] {
      // Not everyone replied in time: exclude the silent members and cut
      // with what the survivors reported.
      if (!change_in_progress_ || pending_view_id_ != new_view_id || have_cut_) return;
      if (flush_oks_.empty()) return;  // not even our own loopback yet
      MSW_LOG(kInfo, "vsync", ctx().now())
          << "flush timeout: cutting view " << new_view_id << " with "
          << flush_oks_.size() << " responsive members";
      send_cut();
    });
  }
  return true;
}

void VsyncLayer::on_data(std::uint64_t view_id, std::uint32_t origin, Message m) {
  if (view_id < view_id_) return;  // stale duplicate from a past view
  if (view_id > view_id_) {
    // Sent in a view we have not installed yet; hold until we catch up.
    future_.push_back(FutureMsg{view_id, origin, std::move(m)});
    return;
  }
  if (flushing_ && !have_cut_) {
    // After our FLUSH_OK snapshot, deliveries pause: the cut decides how
    // far each stream goes in this view.
    held_.push_back(FutureMsg{view_id, origin, std::move(m)});
    return;
  }
  if (flushing_ && have_cut_) {
    const auto it = cut_counts_.find(origin);
    const std::uint64_t allowed = it == cut_counts_.end() ? 0 : it->second;
    const std::uint64_t delivered = delivered_in_view_[origin];
    if (delivered >= allowed) return;  // beyond the agreed cut: discard
    deliver_counted(origin, std::move(m));
    maybe_install_view();
    return;
  }
  deliver_counted(origin, std::move(m));
}

void VsyncLayer::deliver_counted(std::uint32_t origin, Message m) {
  ++delivered_in_view_[origin];
  ctx().deliver_up(std::move(m));
}

void VsyncLayer::on_flush_req(std::uint64_t new_view_id, std::vector<std::uint32_t> new_members) {
  if (new_view_id <= view_id_ || (flushing_ && new_view_id == pending_view_id_)) return;
  // Membership track keeps the flush span clear of data-track nesting (the
  // flush delivers buffered data mid-span).
  tr_->begin(n_flush_, TelemetryTrack::kMembership, new_view_id);
  flushing_ = true;
  pending_view_id_ = new_view_id;
  pending_members_ = std::move(new_members);
  have_cut_ = false;
  // Report how many messages we sent in the closing view, and how much of
  // every stream we have delivered (the exclusion cut needs the latter).
  Message ok = Message::p2p(ctx().members().front(), {});
  const std::uint32_t self = ctx().self().v;
  const std::uint64_t sent = sent_in_view_;
  const auto delivered = delivered_in_view_;
  ok.push_header([&](Writer& w) {
    w.u8(static_cast<std::uint8_t>(Type::kFlushOk));
    w.u64(new_view_id);
    w.u32(self);
    w.u64(sent);
    w.u32(static_cast<std::uint32_t>(delivered.size()));
    for (const auto& [origin, count] : delivered) {
      w.u32(origin);
      w.u64(count);
    }
  });
  ctx().send_down(std::move(ok));
}

void VsyncLayer::on_flush_ok(std::uint64_t new_view_id, std::uint32_t from, std::uint64_t sent,
                             std::map<std::uint32_t, std::uint64_t> delivered) {
  if (!is_coordinator() || new_view_id != pending_view_id_ || have_cut_) return;
  flush_oks_.emplace(from, FlushOk{sent, std::move(delivered)});
  if (flush_oks_.size() < ctx().member_count()) return;
  ctx().cancel_timer(flush_timer_);
  send_cut();
}

void VsyncLayer::send_cut() {
  // Responsive members close the view at their reported sent count;
  // excluded members' streams close at the furthest any survivor got
  // (peer-assisted retransmission below recovers the difference).
  std::map<std::uint32_t, std::uint64_t> counts;
  std::vector<std::uint32_t> responsive;
  for (const auto& [member, ok] : flush_oks_) {
    responsive.push_back(member);
    counts[member] = ok.sent;
  }
  for (const NodeId member : ctx().members()) {
    if (counts.count(member.v) > 0) continue;  // responsive
    std::uint64_t max_delivered = 0;
    for (const auto& [from, ok] : flush_oks_) {
      const auto it = ok.delivered.find(member.v);
      if (it != ok.delivered.end()) max_delivered = std::max(max_delivered, it->second);
    }
    counts[member.v] = max_delivered;
  }
  std::vector<std::uint32_t> final_members;
  for (std::uint32_t m : pending_members_) {
    if (std::find(responsive.begin(), responsive.end(), m) != responsive.end()) {
      final_members.push_back(m);
    }
  }

  Message m = Message::group({});
  const std::uint64_t view_id = pending_view_id_;
  m.push_header([&](Writer& w) {
    w.u8(static_cast<std::uint8_t>(Type::kCut));
    w.u64(view_id);
    w.u32(static_cast<std::uint32_t>(final_members.size()));
    for (std::uint32_t member : final_members) w.u32(member);
    w.u32(static_cast<std::uint32_t>(counts.size()));
    for (const auto& [member, count] : counts) {
      w.u32(member);
      w.u64(count);
    }
  });
  flush_oks_.clear();
  ctx().send_down(std::move(m));
}

void VsyncLayer::on_cut(std::uint64_t new_view_id, std::vector<std::uint32_t> final_members,
                        std::map<std::uint32_t, std::uint64_t> counts) {
  if (new_view_id != pending_view_id_ || !flushing_ || have_cut_) return;
  have_cut_ = true;
  cut_counts_ = std::move(counts);
  cut_members_ = std::move(final_members);
  // Release held deliveries up to the cut; discard beyond it.
  std::vector<FutureMsg> held = std::move(held_);
  held_.clear();
  for (auto& h : held) {
    const auto it = cut_counts_.find(h.origin);
    const std::uint64_t allowed = it == cut_counts_.end() ? 0 : it->second;
    if (delivered_in_view_[h.origin] < allowed) {
      deliver_counted(h.origin, std::move(h.m));
    }
  }
  maybe_install_view();
}

void VsyncLayer::maybe_install_view() {
  if (!flushing_ || !have_cut_) return;
  for (const auto& [member, count] : cut_counts_) {
    auto it = delivered_in_view_.find(member);
    const std::uint64_t delivered = it == delivered_in_view_.end() ? 0 : it->second;
    if (delivered < count) return;  // still draining the closing view
  }
  install_view();
}

void VsyncLayer::install_view() {
  tr_->end(n_flush_, TelemetryTrack::kMembership, pending_view_id_);
  tr_->instant(n_view_, TelemetryTrack::kMembership, pending_view_id_);
  ++views_installed_;
  view_id_ = pending_view_id_;
  view_members_ = cut_members_;
  sent_in_view_ = 0;
  delivered_in_view_.clear();
  flushing_ = false;
  have_cut_ = false;
  cut_counts_.clear();
  change_in_progress_ = false;
  MSW_LOG(kInfo, "vsync", ctx().now())
      << to_string(ctx().self()) << " installed view " << view_id_ << " ("
      << view_members_.size() << " members)";

  // Deliver the view notification before any new-view data.
  Message note = Message::group(encode_view_body(view_members_));
  AppHeader::push(note, AppHeader{AppHeader::Kind::kView, ctx().members().front().v, view_id_});
  ctx().deliver_up(std::move(note));

  // Release sends queued during the flush into the new view.
  std::deque<Message> queued = std::move(queued_);
  queued_.clear();
  for (auto& m : queued) down(std::move(m));

  // Re-process data buffered for this (or a later) view.
  std::vector<FutureMsg> future = std::move(future_);
  future_.clear();
  for (auto& f : future) on_data(f.view_id, f.origin, std::move(f.m));
}

}  // namespace msw
