#include "proto/amoeba_layer.hpp"

namespace msw {
namespace {

enum class Type : std::uint8_t { kData = 0, kPass = 1 };

}  // namespace

void AmoebaLayer::down(Message m) {
  if (m.is_p2p()) {
    m.push_header([](Writer& w) { w.u8(static_cast<std::uint8_t>(Type::kPass)); });
    ctx().send_down(std::move(m));
    return;
  }
  if (awaiting_) {
    queued_.push_back(std::move(m));
    return;
  }
  release(std::move(m));
}

void AmoebaLayer::release(Message m) {
  const std::uint32_t origin = ctx().self().v;
  const std::uint64_t aseq = next_aseq_++;
  m.push_header([&](Writer& w) {
    w.u8(static_cast<std::uint8_t>(Type::kData));
    w.u32(origin);
    w.u64(aseq);
  });
  awaiting_ = true;
  ctx().send_down(std::move(m));
}

void AmoebaLayer::up(Message m) {
  Type type{};
  std::uint32_t origin = 0;
  m.pop_header([&](Reader& r) {
    type = static_cast<Type>(r.u8());
    if (type == Type::kData) {
      origin = r.u32();
      r.u64();  // aseq, informational
    }
  });
  if (type == Type::kPass) {
    ctx().deliver_up(std::move(m));
    return;
  }
  const bool own = origin == ctx().self().v;
  ctx().deliver_up(std::move(m));
  if (own) {
    awaiting_ = false;
    if (!queued_.empty()) {
      Message next = std::move(queued_.front());
      queued_.pop_front();
      release(std::move(next));
    }
  }
}

}  // namespace msw
