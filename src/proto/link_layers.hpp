// Point-to-point specialization (paper section 1: "our work can easily be
// specialized for point-to-point communication").
//
// Two classic ARQ link protocols for a TWO-member group, with the same
// kind of trade-off the paper's total-order pair exhibits:
//
//   - StopAndWaitLayer: one frame in flight, positive ack, retransmit on
//     timeout. Minimal state and buffering; throughput capped at 1/RTT,
//     so latency explodes when the offered rate exceeds it.
//   - GoBackNLayer: a sliding window of frames in flight, cumulative acks,
//     timeout resends the whole window. Sustains high rates at the cost
//     of buffering and wasted retransmissions under loss.
//
// Both deliver the peer's frames in order, exactly once, and loop a local
// copy of each sent message back to their own application (like the group
// layers' self-delivery — which is also what the switching protocol's
// drain accounting expects). Switch between them with SwitchLayer exactly
// as with the multicast protocols; see bench_p2p_switching.
#pragma once

#include <cstdint>
#include <deque>
#include <map>

#include "stack/layer.hpp"

namespace msw {

struct LinkConfig {
  /// Retransmission timeout (both protocols).
  Duration rto = 10 * kMillisecond;
  /// Frames in flight (GoBackN only).
  std::size_t window = 16;
};

/// Common plumbing: peer resolution and local loopback for a 2-member
/// group. Group messages go to the peer; p2p pass-through is transparent.
class LinkLayerBase : public Layer {
 protected:
  NodeId peer() const;
  /// Schedule local self-delivery of an outgoing message's copy.
  void loop_back(const Message& m);
};

class StopAndWaitLayer : public LinkLayerBase {
 public:
  StopAndWaitLayer() = default;
  explicit StopAndWaitLayer(LinkConfig cfg) : cfg_(cfg) {}

  std::string_view name() const override { return "stop-and-wait"; }

  void down(Message m) override;
  void up(Message m) override;
  void down_batch(MessageBatch b) override;

  struct Stats {
    std::uint64_t retransmissions = 0;
    std::uint64_t duplicates_dropped = 0;
  };
  const Stats& stats() const { return stats_; }
  std::size_t queued() const { return queue_.size(); }

 private:
  void send_front();
  void arm_timer(std::uint64_t seq);

  LinkConfig cfg_;
  std::deque<Payload> queue_;  // wire-form frames awaiting their turn (shared buffers)
  bool awaiting_ack_ = false;
  std::uint64_t send_seq_ = 0;   // seq of the frame currently in flight
  std::uint64_t next_seq_ = 0;   // next seq to assign
  std::uint64_t expect_ = 0;     // next seq expected from the peer
  Stats stats_;
};

class GoBackNLayer : public LinkLayerBase {
 public:
  GoBackNLayer() = default;
  explicit GoBackNLayer(LinkConfig cfg) : cfg_(cfg) {}

  std::string_view name() const override { return "go-back-n"; }

  void down(Message m) override;
  void up(Message m) override;
  void down_batch(MessageBatch b) override;

  struct Stats {
    std::uint64_t retransmissions = 0;
    std::uint64_t duplicates_dropped = 0;
  };
  const Stats& stats() const { return stats_; }
  std::size_t in_flight() const { return window_.size(); }
  std::size_t queued() const { return backlog_.size(); }

 private:
  void pump();
  void arm_timer();
  void transmit(std::uint64_t seq, const Payload& frame);

  LinkConfig cfg_;
  std::deque<Payload> backlog_;               // frames beyond the window
  std::map<std::uint64_t, Payload> window_;   // unacked frames in flight (shared)
  std::uint64_t next_seq_ = 0;
  std::uint64_t base_ = 0;     // lowest unacked seq
  std::uint64_t expect_ = 0;   // receiver side: next expected
  std::uint64_t timer_epoch_ = 0;
  Stats stats_;
};

}  // namespace msw
