// EXTENSION (not one of the paper's Table 1 layers): causal broadcast via
// vector clocks, in the style of the ISIS cbcast.
//
// Each multicast carries the sender's vector clock: entry k is how many of
// member k's messages the sender had delivered when it sent (own entry =
// how many it had sent before). A receiver delivers a message from member
// j only when it is the next in j's stream and every other entry of the
// vector is already covered locally — so delivery order extends the causal
// order of sends.
//
// Compose above ReliableLayer (this layer orders, it does not retransmit).
// Analyzed with the paper's machinery, Causal Order fails the Delayable
// meta-property, yet — like Reliability — the concrete SP preserves it
// operationally (see tests/test_causal.cpp and EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <vector>

#include "stack/layer.hpp"

namespace msw {

class CausalLayer : public Layer {
 public:
  std::string_view name() const override { return "causal"; }

  void start() override;
  void down(Message m) override;
  void up(Message m) override;
  void down_batch(MessageBatch b) override;
  void up_batch(MessageBatch b) override;

  /// Messages buffered waiting for causal predecessors.
  std::size_t buffered() const { return pending_.size(); }

 private:
  struct Pending {
    std::size_t origin_idx;
    std::vector<std::uint64_t> vc;
    Message m;
  };

  bool deliverable(const Pending& p) const;
  /// `out` non-null collects deliveries into a batch (batched receive path).
  void drain(MessageBatch* out = nullptr);
  std::size_t index_of(std::uint32_t member) const;

  std::vector<std::uint64_t> delivered_;  // per member index
  std::uint64_t sent_ = 0;
  std::vector<Pending> pending_;

  Tracer* tr_ = &Tracer::disabled();
  std::uint32_t n_blocked_ = 0;
  std::uint64_t blocked_total_ = 0;
};

}  // namespace msw
