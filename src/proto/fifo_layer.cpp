#include "proto/fifo_layer.hpp"

#include "telemetry/metrics.hpp"

namespace msw {
namespace {

enum class Type : std::uint8_t { kData = 0, kPass = 1 };

}  // namespace

void FifoLayer::start() {
  tr_ = &ctx().tracer();
  n_gap_ = tr_->intern("fifo.gap_buffer");
  if (MetricsRegistry* reg = ctx().metrics()) {
    reg->attach_counter("fifo.gaps_buffered", &gaps_buffered_);
  }
}

void FifoLayer::down(Message m) {
  if (m.is_p2p()) {
    m.push_header([](Writer& w) { w.u8(static_cast<std::uint8_t>(Type::kPass)); });
    ctx().send_down(std::move(m));
    return;
  }
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t origin = ctx().self().v;
  m.push_header([&](Writer& w) {
    w.u8(static_cast<std::uint8_t>(Type::kData));
    w.u32(origin);
    w.u64(seq);
  });
  ctx().send_down(std::move(m));
}

void FifoLayer::up(Message m) {
  Type type{};
  std::uint32_t origin = 0;
  std::uint64_t seq = 0;
  m.pop_header([&](Reader& r) {
    type = static_cast<Type>(r.u8());
    if (type == Type::kData) {
      origin = r.u32();
      seq = r.u64();
    }
  });
  if (type == Type::kPass) {
    ctx().deliver_up(std::move(m));
    return;
  }
  Origin& o = origins_[origin];
  if (seq < o.next_expected) return;  // duplicate of an already-delivered message
  if (seq != o.next_expected) {
    ++gaps_buffered_;
    tr_->instant(n_gap_, TelemetryTrack::kData, seq - o.next_expected);
  }
  o.pending.emplace(seq, std::move(m));
  // Drain the contiguous run starting at next_expected.
  for (auto it = o.pending.find(o.next_expected); it != o.pending.end();
       it = o.pending.find(o.next_expected)) {
    Message ready = std::move(it->second);
    o.pending.erase(it);
    ++o.next_expected;
    ctx().deliver_up(std::move(ready));
  }
}

std::size_t FifoLayer::buffered() const {
  std::size_t n = 0;
  for (const auto& [origin, o] : origins_) n += o.pending.size();
  return n;
}

}  // namespace msw
