#include "proto/fifo_layer.hpp"

#include "telemetry/metrics.hpp"

namespace msw {
namespace {

enum class Type : std::uint8_t { kData = 0, kPass = 1 };

}  // namespace

void FifoLayer::start() {
  tr_ = &ctx().tracer();
  n_gap_ = tr_->intern("fifo.gap_buffer");
  if (MetricsRegistry* reg = ctx().metrics()) {
    reg->attach_counter("fifo.gaps_buffered", &gaps_buffered_);
  }
}

void FifoLayer::down(Message m) {
  if (m.is_p2p()) {
    m.push_header([](Writer& w) { w.u8(static_cast<std::uint8_t>(Type::kPass)); });
    ctx().send_down(std::move(m));
    return;
  }
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t origin = ctx().self().v;
  m.push_header([&](Writer& w) {
    w.u8(static_cast<std::uint8_t>(Type::kData));
    w.u32(origin);
    w.u64(seq);
  });
  ctx().send_down(std::move(m));
}

void FifoLayer::up(Message m) {
  Type type{};
  std::uint32_t origin = 0;
  std::uint64_t seq = 0;
  m.pop_header([&](Reader& r) {
    type = static_cast<Type>(r.u8());
    if (type == Type::kData) {
      origin = r.u32();
      seq = r.u64();
    }
  });
  if (type == Type::kPass) {
    ctx().deliver_up(std::move(m));
    return;
  }
  Origin& o = origins_[origin];
  if (seq < o.next_expected) return;  // duplicate of an already-delivered message
  if (seq != o.next_expected) {
    ++gaps_buffered_;
    tr_->instant(n_gap_, TelemetryTrack::kData, seq - o.next_expected);
  }
  o.pending.emplace(seq, std::move(m));
  // Drain the contiguous run starting at next_expected.
  for (auto it = o.pending.find(o.next_expected); it != o.pending.end();
       it = o.pending.find(o.next_expected)) {
    Message ready = std::move(it->second);
    o.pending.erase(it);
    ++o.next_expected;
    ctx().deliver_up(std::move(ready));
  }
}

void FifoLayer::down_batch(MessageBatch b) {
  for (const Message& m : b) {
    if (m.is_p2p()) {
      // Mixed run: rare, and the pass-through stamp differs per kind. Take
      // the per-message path for the whole run.
      Layer::down_batch(std::move(b));
      return;
    }
  }
  // Pure group run: one flat encode of every header into tick scratch, then
  // one raw stamp per message — no per-message Writer setup.
  const std::uint32_t origin = ctx().self().v;
  const std::uint64_t first_seq = next_seq_;
  next_seq_ += b.size();
  constexpr std::size_t kHdr = 13;  // u8 type + u32 origin + u64 seq
  Bytes& scratch = ctx().scratch();
  Writer w(scratch);
  w.reserve(kHdr * b.size());
  for (std::size_t i = 0; i < b.size(); ++i) {
    w.u8(static_cast<std::uint8_t>(Type::kData));
    w.u32(origin);
    w.u64(first_seq + i);
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i].push_header_raw(std::span<const Byte>(scratch.data() + i * kHdr, kHdr));
  }
  ctx().send_down(std::move(b));
}

void FifoLayer::up_batch(MessageBatch b) {
  // Same logic as up(), but contiguous releases from the whole run leave as
  // one batch: the drain of a filled gap rides one dispatch upward.
  MessageBatch out;
  for (Message& m : b) {
    Type type{};
    std::uint32_t origin = 0;
    std::uint64_t seq = 0;
    try {
      m.pop_header([&](Reader& r) {
        type = static_cast<Type>(r.u8());
        if (type == Type::kData) {
          origin = r.u32();
          seq = r.u64();
        }
      });
    } catch (const DecodeError&) {
      continue;  // drop the malformed message, keep its runmates
    }
    if (type == Type::kPass) {
      out.push_back(std::move(m));
      continue;
    }
    Origin& o = origins_[origin];
    if (seq < o.next_expected) continue;  // duplicate of an already-delivered message
    if (seq != o.next_expected) {
      ++gaps_buffered_;
      tr_->instant(n_gap_, TelemetryTrack::kData, seq - o.next_expected);
    }
    o.pending.emplace(seq, std::move(m));
    for (auto it = o.pending.find(o.next_expected); it != o.pending.end();
         it = o.pending.find(o.next_expected)) {
      out.push_back(std::move(it->second));
      o.pending.erase(it);
      ++o.next_expected;
    }
  }
  ctx().deliver_up(std::move(out));
}

std::size_t FifoLayer::buffered() const {
  std::size_t n = 0;
  for (const auto& [origin, o] : origins_) n += o.pending.size();
  return n;
}

}  // namespace msw
