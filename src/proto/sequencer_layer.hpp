// Sequencer-based total order (the fixed-sequencer scheme of Kaashoek's
// Amoeba broadcast, the first mechanism of the paper's section 7).
//
// The first group member acts as sequencer. A sender forwards its message
// point-to-point to the sequencer, which assigns the next global sequence
// number and multicasts the sequenced message; every member (sender and
// sequencer included) delivers in global-sequence order. Latency under low
// load is therefore roughly two network hops — but every message crosses
// the sequencer's CPU twice (receive + multicast), so the sequencer
// saturates as the number of active senders grows. That queueing delay is
// the rising curve of Figure 2.
//
// The protocol is self-contained under a fair-lossy network:
//   - senders retransmit their order-request until they see their own
//     message come back sequenced (implicit ack);
//   - receivers NACK global-sequence gaps to the sequencer, which
//     retransmits from history;
//   - receivers periodically ack their contiguous prefix so the sequencer
//     can garbage-collect history.
//
// Point-to-point traffic of layers above passes through unmodified.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>

#include "stack/layer.hpp"
#include "telemetry/metrics.hpp"
#include "util/seq_tracker.hpp"

namespace msw {

struct SequencerConfig {
  /// Sender-side order-request retransmission interval.
  Duration request_rto = 20 * kMillisecond;
  /// Receiver-side gap NACK interval.
  Duration nack_interval = 10 * kMillisecond;
  /// Receiver-side history ack (garbage collection) interval.
  Duration ack_interval = 100 * kMillisecond;
  /// Sequencer heartbeat advertising the global-sequence horizon, so a
  /// receiver that lost the *last* sequenced message still detects the gap.
  Duration heartbeat_interval = 50 * kMillisecond;
  /// CPU time the sequencer spends ordering one message (sequence-number
  /// allocation, history bookkeeping, retransmission state) in addition to
  /// the network model's per-packet costs. This serial work is what makes
  /// the sequencer a bottleneck under many active senders (Figure 2).
  Duration order_cost = 0;
  /// Fault injection for monitor self-tests: re-introduces the historical
  /// crashed-sequencer bug where the sequencer never refilled its own
  /// delivery gaps from local history after a restart (fixed alongside the
  /// fuzzer that found it). Never set outside tests.
  bool fault_skip_self_refill = false;
};

class SequencerLayer : public Layer {
 public:
  SequencerLayer() = default;
  explicit SequencerLayer(SequencerConfig cfg) : cfg_(cfg) {}

  std::string_view name() const override { return "sequencer"; }

  void start() override;
  void down(Message m) override;
  void up(Message m) override;
  void down_batch(MessageBatch b) override;
  void up_batch(MessageBatch b) override;

  bool is_sequencer() const { return ctx().self() == sequencer(); }

  struct Stats {
    std::uint64_t requests_retransmitted = 0;
    std::uint64_t gap_nacks_sent = 0;
    std::uint64_t history_retransmissions = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t sequenced = 0;  // messages this node assigned order to
  };
  const Stats& stats() const { return stats_; }

 private:
  NodeId sequencer() const { return ctx().members().front(); }

  void on_order_req(std::uint32_t origin, std::uint64_t oseq, Message m);
  /// `out` non-null collects deliveries into a batch instead of delivering
  /// each immediately (the batched receive path).
  void on_sequenced(std::uint64_t gseq, std::uint32_t origin, std::uint64_t oseq, Message m,
                    MessageBatch* out = nullptr);
  void on_gap_nack(NodeId requester, const std::vector<std::uint64_t>& gseqs);
  void on_gc_ack(std::uint32_t from, std::uint64_t contiguous);

  void sequence_and_multicast(std::uint32_t origin, std::uint64_t oseq, Message m);
  void retransmit_pending();
  void send_gap_nacks();
  void send_gc_ack();
  void send_heartbeat();

  SequencerConfig cfg_;

  // Sender state.
  std::uint64_t next_oseq_ = 0;
  std::map<std::uint64_t, Payload> pending_;  // oseq -> order-request frame (shared)
  /// "seq.pending" queue-depth gauge (null without a metrics registry):
  /// pending_.size(), the sender-visible sequencer backlog.
  MetricsRegistry::Gauge* pending_gauge_ = nullptr;

  // Sequencer state.
  std::uint64_t next_gseq_ = 0;
  std::unordered_map<std::uint32_t, SeqTracker> sequenced_oseqs_;
  std::map<std::uint64_t, Payload> history_;  // gseq -> sequenced frame (shared)
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t> assigned_;  // (origin,oseq)->gseq
  std::unordered_map<std::uint32_t, std::uint64_t> gc_acked_;

  // Receiver state.
  std::uint64_t next_deliver_ = 0;
  std::uint64_t highest_gseq_seen_ = 0;  // exclusive bound for gap NACKs
  std::map<std::uint64_t, Message> reorder_;
  Stats stats_;

  Tracer* tr_ = &Tracer::disabled();
  std::uint32_t n_gap_nack_ = 0, n_retx_ = 0;
};

}  // namespace msw
