// Integrity (Table 1): messages cannot be forged; delivered messages were
// sent by trusted processes.
//
// Trusted processes share a group key. On the way down the layer appends a
// MAC binding the payload to the sender's identity; on the way up it
// verifies the MAC against the *claimed* sender and silently drops
// messages that fail — whether corrupted, forged by a non-key-holder, or
// carrying a spoofed sender id. The MAC is simulated (util/digest.hpp);
// the property depends only on unforgeability-by-non-key-holders, which
// the keyed digest provides against the simulator's adversaries.
#pragma once

#include <cstdint>

#include "stack/layer.hpp"

namespace msw {

class IntegrityLayer : public Layer {
 public:
  explicit IntegrityLayer(std::uint64_t group_key) : key_(group_key) {}

  std::string_view name() const override { return "integrity"; }

  void down(Message m) override;
  void up(Message m) override;

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  std::uint64_t key_;
  Stats stats_;
};

}  // namespace msw
